package matopt

import (
	"math/rand"
	"strings"
	"testing"

	"matopt/internal/costmodel"
	"matopt/internal/tensor"
)

// TestPlanCacheEngineInvariance is the regression test for engine-safe
// plan-cache reuse: the lowered physical IR carries no engine kind and
// no shard count, so a plan optimized once (and cached) must replay
// bit-identically under the sequential engine and under the dist
// runtime at every shard count. If lowering ever grows an
// engine-dependent decision without the cache key growing with it, the
// dist replays here diverge from the sequential golden and this test
// fails.
func TestPlanCacheEngineInvariance(t *testing.T) {
	build := func() *Builder {
		b := NewBuilder()
		x := b.Input("X", 120, 400, RowStrips(100))
		w := b.Input("W", 400, 80, Single())
		h := b.ReLU(b.MatMul(x, w))
		b.MatMul(b.Transpose(h), h)
		return b
	}
	cl := costmodel.LocalTest(3)
	o := NewOptimizer(cl)
	cold, err := o.Optimize(build())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	inputs := map[string]*Dense{
		"X": tensor.RandNormal(rng, 120, 400),
		"W": tensor.RandNormal(rng, 400, 80),
	}
	want, err := NewExecutor(cl).Run(cold, inputs)
	if err != nil {
		t.Fatal(err)
	}

	// A second Optimize of the identical computation hits the cache and
	// must share the cold plan's lowered IR, not re-derive its own.
	hot, err := o.Optimize(build())
	if err != nil {
		t.Fatal(err)
	}
	if !hot.Cached() {
		t.Fatal("identical computation missed the plan cache")
	}
	coldIR, err := cold.Physical()
	if err != nil {
		t.Fatal(err)
	}
	hotIR, err := hot.Physical()
	if err != nil {
		t.Fatal(err)
	}
	if coldIR != hotIR {
		t.Fatal("cache hit lowered its own physical plan instead of sharing the cached one")
	}

	// The cached plan — lowered once, under no particular engine — must
	// execute bit-identically on the dist runtime at every shard count.
	for _, shards := range []int{1, 2, 7} {
		exec := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(shards))
		got, err := exec.Run(hot, inputs)
		if err != nil {
			t.Fatalf("cached plan on dist @%d shards: %v", shards, err)
		}
		requireBitIdentical(t, "cached plan on dist", got, want)
	}
}

// TestPlanExplainAPI pins the public Explain surface: the rendered
// physical plan names every chosen implementation and carries the node
// census header the CLI prints for -explain.
func TestPlanExplainAPI(t *testing.T) {
	b := NewBuilder()
	x := b.Input("X", 200, 300, Single())
	y := b.Input("Y", 300, 100, Single())
	b.MatMul(x, y)
	p, err := NewOptimizer(costmodel.LocalTest(3)).Optimize(b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty explain output")
	}
	for _, wantSub := range []string{"physical plan:", "scan", "compute", "predicted"} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("Explain output lacks %q:\n%s", wantSub, out)
		}
	}
}
