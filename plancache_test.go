package matopt

import (
	"context"
	"errors"
	"testing"
	"time"
)

// motivatingBuilder rebuilds the §2.1 motivating chain; density lets the
// cache-key tests vary one fingerprint component.
func motivatingBuilder(density float64) *Builder {
	b := NewBuilder()
	a := b.SparseInput("A", 100, 10000, density, RowStrips(10))
	m := b.Input("B", 10000, 100, ColStrips(10))
	c := b.Input("C", 100, 1000000, ColStrips(10000))
	b.MatMul(b.MatMul(a, m), c)
	return b
}

func TestPlanCacheHit(t *testing.T) {
	o := NewOptimizer(ClusterR5D(5))
	cold, err := o.Optimize(motivatingBuilder(1))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached() {
		t.Fatal("first Optimize reported a cache hit")
	}
	// A fresh Builder with the identical computation must hit.
	hot, err := o.Optimize(motivatingBuilder(1))
	if err != nil {
		t.Fatal(err)
	}
	if !hot.Cached() {
		t.Fatal("identical computation missed the plan cache")
	}
	if cold.Describe() != hot.Describe() {
		t.Errorf("cached plan differs:\n%s\nvs\n%s", cold.Describe(), hot.Describe())
	}
	if cold.PredictedSeconds() != hot.PredictedSeconds() {
		t.Errorf("cached cost %v differs from cold %v", hot.PredictedSeconds(), cold.PredictedSeconds())
	}
	if err := hot.Verify(); err != nil {
		t.Errorf("cached plan does not verify: %v", err)
	}
	if n := o.CachedPlans(); n != 1 {
		t.Errorf("CachedPlans() = %d, want 1", n)
	}
}

func TestPlanCacheBypass(t *testing.T) {
	o := NewOptimizer(ClusterR5D(5), WithoutPlanCache())
	for i := 0; i < 2; i++ {
		p, err := o.Optimize(motivatingBuilder(1))
		if err != nil {
			t.Fatal(err)
		}
		if p.Cached() {
			t.Fatalf("run %d served from cache despite WithoutPlanCache", i)
		}
	}
	if n := o.CachedPlans(); n != 0 {
		t.Errorf("CachedPlans() = %d with cache disabled", n)
	}
}

// TestPlanCacheKeyedOnDensity: the adaptive executor re-optimizes
// remainder graphs with measured densities, so two computations that
// differ only in a density estimate must not share a cache slot.
func TestPlanCacheKeyedOnDensity(t *testing.T) {
	o := NewOptimizer(ClusterR5D(5))
	if _, err := o.Optimize(motivatingBuilder(1)); err != nil {
		t.Fatal(err)
	}
	p, err := o.Optimize(motivatingBuilder(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cached() {
		t.Fatal("computation with a different density hit the cache")
	}
	if n := o.CachedPlans(); n != 2 {
		t.Errorf("CachedPlans() = %d, want 2", n)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	o := NewOptimizer(ClusterR5D(5), WithPlanCacheSize(1))
	if _, err := o.Optimize(motivatingBuilder(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Optimize(motivatingBuilder(0.5)); err != nil {
		t.Fatal(err) // evicts the density-1 plan
	}
	p, err := o.Optimize(motivatingBuilder(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cached() {
		t.Fatal("evicted plan still served from a capacity-1 cache")
	}
	if n := o.CachedPlans(); n != 1 {
		t.Errorf("CachedPlans() = %d, want 1", n)
	}
}

// TestOptionOrderIndependence is the WithFormats/WithModel regression:
// options are recorded first and the environment built once, so the
// model survives regardless of option order.
func TestOptionOrderIndependence(t *testing.T) {
	cl := ClusterR5D(5)
	m := NewOptimizer(cl).Env().Model // any distinct *Model pointer works
	ab := NewOptimizer(cl, WithModel(m), WithFormats(SingleBlockFormats))
	ba := NewOptimizer(cl, WithFormats(SingleBlockFormats), WithModel(m))
	if ab.Env().Model != m || ba.Env().Model != m {
		t.Fatalf("WithModel dropped: order ab kept=%v, order ba kept=%v",
			ab.Env().Model == m, ba.Env().Model == m)
	}
	if len(ab.Env().Formats) != len(ba.Env().Formats) {
		t.Fatalf("format universes differ by option order: %d vs %d",
			len(ab.Env().Formats), len(ba.Env().Formats))
	}
}

func TestOptimizeCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := NewOptimizer(ClusterR5D(5), WithoutPlanCache())
	if _, err := o.OptimizeCtx(ctx, motivatingBuilder(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

func TestOptimizeCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	o := NewOptimizer(ClusterR5D(5), WithoutPlanCache())
	if _, err := o.OptimizeCtx(ctx, motivatingBuilder(1)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}
