package matopt

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"matopt/internal/core"
	"matopt/internal/plan"
)

// DefaultPlanCacheSize is the number of distinct computations an
// Optimizer's plan cache retains before evicting least-recently-used
// entries; override it with WithPlanCacheSize.
const DefaultPlanCacheSize = 128

// planCache is a thread-safe LRU of optimized annotations keyed by the
// canonical fingerprint of (graph, environment). Repeated Optimize calls
// on identical computations — the heavy-traffic serving case — hit the
// cache and skip the search entirely. Each entry also carries the
// lazily-lowered physical plan, shared across every cache hit: the
// lowered IR is engine-invariant (plan.Lower takes no engine kind or
// shard count), so one cached lowering serves SequentialEngine and
// DistEngine runs at any shard count alike.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type planCacheEntry struct {
	key string
	ann *core.Annotation
	low *loweredPlan
}

// loweredPlan lowers an annotation to the physical IR exactly once and
// shares the result (or the lowering error) with every caller.
type loweredPlan struct {
	once sync.Once
	p    *plan.Plan
	err  error
}

// lower returns the shared lowered plan, lowering on first use.
func (l *loweredPlan) lower(env *core.Env, ann *core.Annotation) (*plan.Plan, error) {
	l.once.Do(func() { l.p, l.err = plan.Lower(ann.Graph, env, ann) })
	return l.p, l.err
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *planCache) get(key string) (*core.Annotation, *loweredPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*planCacheEntry)
	return e.ann, e.low, true
}

func (c *planCache) put(key string, ann *core.Annotation, low *loweredPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*planCacheEntry)
		e.ann, e.low = ann, low
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&planCacheEntry{key: key, ann: ann, low: low})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*planCacheEntry).key)
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup coalesces concurrent optimizations of the same plan-cache
// key: the first caller (the leader) runs the search, every concurrent
// caller with the same key (a waiter) blocks until the leader finishes
// and shares its annotation and lowered plan. This closes the plan
// cache's thundering-herd window — without it, N identical requests
// arriving before the first one populates the cache all run the full
// Frontier search.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight optimization; done is closed when the
// leader's result fields are final.
type flightCall struct {
	done  chan struct{}
	ann   *core.Annotation
	low   *loweredPlan
	stats core.Stats
	err   error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers. The leader's result
// is shared with every waiter; leader reports which role this caller
// played. A waiter whose own context dies stops waiting and returns the
// context's error. A leader abandoned by its context leaves waiters
// free to retry: its call slot is removed before done is closed, so a
// still-live waiter loops and either finds the cache populated (via the
// caller's re-lookup) or becomes the new leader.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*core.Annotation, *loweredPlan, core.Stats, error)) (ann *core.Annotation, low *loweredPlan, stats core.Stats, leader bool, err error) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if abandonedErr(c.err) && ctx.Err() == nil {
					// The leader died of its own context or budget, not
					// ours — try again rather than surfacing a
					// stranger's cancellation.
					continue
				}
				return c.ann, c.low, c.stats, false, c.err
			case <-ctx.Done():
				return nil, nil, core.Stats{}, false, waitErr(ctx)
			}
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()
		c.ann, c.low, c.stats, c.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		return c.ann, c.low, c.stats, true, c.err
	}
}

// abandonedErr reports whether a leader's error came from its own
// context or search budget rather than from the computation itself —
// the cases a waiter with a live context should not inherit.
func abandonedErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrTimeout))
}

// waitErr maps a waiter's dead context to the same error OptimizeCtx
// reports for its own search: ErrTimeout on an expired deadline, the
// context's error on cancellation.
func waitErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrTimeout
	}
	return ctx.Err()
}
