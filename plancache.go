package matopt

import (
	"container/list"
	"sync"

	"matopt/internal/core"
)

// DefaultPlanCacheSize is the number of distinct computations an
// Optimizer's plan cache retains before evicting least-recently-used
// entries; override it with WithPlanCacheSize.
const DefaultPlanCacheSize = 128

// planCache is a thread-safe LRU of optimized annotations keyed by the
// canonical fingerprint of (graph, environment). Repeated Optimize calls
// on identical computations — the heavy-traffic serving case — hit the
// cache and skip the search entirely.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type planCacheEntry struct {
	key string
	ann *core.Annotation
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *planCache) get(key string) (*core.Annotation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planCacheEntry).ann, true
}

func (c *planCache) put(key string, ann *core.Annotation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planCacheEntry).ann = ann
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&planCacheEntry{key: key, ann: ann})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*planCacheEntry).key)
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
