package matopt

import (
	"container/list"
	"sync"

	"matopt/internal/core"
	"matopt/internal/plan"
)

// DefaultPlanCacheSize is the number of distinct computations an
// Optimizer's plan cache retains before evicting least-recently-used
// entries; override it with WithPlanCacheSize.
const DefaultPlanCacheSize = 128

// planCache is a thread-safe LRU of optimized annotations keyed by the
// canonical fingerprint of (graph, environment). Repeated Optimize calls
// on identical computations — the heavy-traffic serving case — hit the
// cache and skip the search entirely. Each entry also carries the
// lazily-lowered physical plan, shared across every cache hit: the
// lowered IR is engine-invariant (plan.Lower takes no engine kind or
// shard count), so one cached lowering serves SequentialEngine and
// DistEngine runs at any shard count alike.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type planCacheEntry struct {
	key string
	ann *core.Annotation
	low *loweredPlan
}

// loweredPlan lowers an annotation to the physical IR exactly once and
// shares the result (or the lowering error) with every caller.
type loweredPlan struct {
	once sync.Once
	p    *plan.Plan
	err  error
}

// lower returns the shared lowered plan, lowering on first use.
func (l *loweredPlan) lower(env *core.Env, ann *core.Annotation) (*plan.Plan, error) {
	l.once.Do(func() { l.p, l.err = plan.Lower(ann.Graph, env, ann) })
	return l.p, l.err
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *planCache) get(key string) (*core.Annotation, *loweredPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*planCacheEntry)
	return e.ann, e.low, true
}

func (c *planCache) put(key string, ann *core.Annotation, low *loweredPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*planCacheEntry)
		e.ann, e.low = ann, low
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&planCacheEntry{key: key, ann: ann, low: low})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*planCacheEntry).key)
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
