package matopt

import (
	"errors"
	"net"
	"testing"
	"time"

	"matopt/internal/costmodel"
	"matopt/internal/netfabric"
	"matopt/internal/testutil"
)

// startPeerWorker runs an in-process worker on a loopback listener —
// the same server `matoptd -worker` hosts, spawned hermetically.
func startPeerWorker(t *testing.T, opts ...netfabric.ServerOption) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := netfabric.NewServer(opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("worker Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestExecutorWithPeers runs the DistEngine over real loopback TCP
// workers through the public API and requires bit-identical outputs
// plus wire traffic on the DistReport.
func TestExecutorWithPeers(t *testing.T) {
	plan, inputs, want := faultGolden(t)
	cl := costmodel.LocalTest(3)
	addr1 := startPeerWorker(t)
	addr2 := startPeerWorker(t)
	for _, peers := range [][]string{
		{addr1},
		{addr1, addr2},
		{LocalPeer, addr1},
	} {
		x := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4), WithPeers(peers...))
		got, err := x.Run(plan, inputs)
		if err != nil {
			t.Fatalf("peers %v: %v", peers, err)
		}
		requireBitIdentical(t, "dist over tcp", got, want)
		rep := x.DistReport()
		if rep == nil || rep.Transport != "tcp" {
			t.Fatalf("peers %v: report %+v lacks tcp transport", peers, rep)
		}
		if rep.WireBytes == 0 || rep.WireDials == 0 {
			t.Fatalf("peers %v: no wire traffic metered: %+v", peers, rep)
		}
		if rep.Degraded {
			t.Fatalf("peers %v: healthy run degraded: %+v", peers, rep)
		}
	}
}

// TestChaosNetFallbackOnDeadPeer points the executor at a worker that
// leaves after its first session: without fallback the run must fail
// through the typed retry ladder; with fallback it must degrade to the
// sequential engine and still produce bit-identical output.
func TestChaosNetFallbackOnDeadPeer(t *testing.T) {
	plan, inputs, want := faultGolden(t)
	cl := costmodel.LocalTest(3)

	addr := startPeerWorker(t, netfabric.CloseAfterSessions(1))
	hard := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4),
		WithPeers(addr), WithMaxRetries(1))
	if _, err := hard.Run(plan, inputs); err == nil {
		t.Fatal("run succeeded against a departed worker")
	} else {
		var rex *RetriesExhaustedError
		if !errors.As(err, &rex) {
			t.Fatalf("wire failure did not exhaust typed retries: %v", err)
		}
	}

	addr = startPeerWorker(t, netfabric.CloseAfterSessions(1))
	soft := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4),
		WithPeers(addr), WithMaxRetries(1), WithFallback())
	got, err := soft.Run(plan, inputs)
	if err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	requireBitIdentical(t, "degraded over dead peer", got, want)
	rep := soft.DistReport()
	if rep == nil || !rep.Degraded {
		t.Fatalf("report not degraded: %+v", rep)
	}
}

// TestExecutorPeersLeakFree checks a full public-API TCP run leaves no
// goroutines behind once its worker is closed — the per-run transport
// must tear down its pooled connections with the run.
func TestExecutorPeersLeakFree(t *testing.T) {
	plan, inputs, want := faultGolden(t)
	cl := costmodel.LocalTest(3)
	testutil.CheckGoroutines(t, func() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := netfabric.NewServer()
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		x := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(3),
			WithPeers(LocalPeer, ln.Addr().String()))
		got, err := x.Run(plan, inputs)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, "leak-checked tcp run", got, want)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("worker Serve: %v", err)
		}
		// The executor's per-run transport closed with the run; give
		// lingering TCP teardown a moment before the leak check.
		time.Sleep(10 * time.Millisecond)
	})
}
