package matopt

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"matopt/internal/tensor"
)

func TestQuickstartFlow(t *testing.T) {
	b := NewBuilder()
	a := b.Input("matA", 100, 10000, RowStrips(10))
	m := b.Input("matB", 10000, 100, ColStrips(10))
	c := b.Input("matC", 100, 1000000, ColStrips(10000))
	out := b.MatMul(b.MatMul(a, m), c)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 100 || out.Cols() != 1000000 {
		t.Fatalf("output shape %dx%d", out.Rows(), out.Cols())
	}
	plan, err := NewOptimizer(ClusterR5D(5)).Optimize(b, out)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.PredictedSeconds() <= 0 {
		t.Fatal("no predicted cost")
	}
	if len(plan.Describe()) == 0 {
		t.Fatal("empty description")
	}
	rep, err := Simulate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestBuilderErrorsAreDeferred(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 10, 20, Single())
	y := b.Input("y", 30, 40, Single())
	bad := b.MatMul(x, y) // 10x20 × 30x40 is ⊥
	_ = b.Add(bad, bad)   // keeps composing without panicking
	if b.Err() == nil {
		t.Fatal("shape error not recorded")
	}
	if _, err := NewOptimizer(ClusterR5D(2)).Optimize(b, bad); err == nil {
		t.Fatal("Optimize must surface the builder error")
	}
}

func TestBuilderRejectsForeignMatrices(t *testing.T) {
	b1 := NewBuilder()
	b2 := NewBuilder()
	x := b1.Input("x", 10, 10, Single())
	y := b2.Input("y", 10, 10, Single())
	b1.Add(x, y)
	if b1.Err() == nil {
		t.Fatal("cross-builder use must error")
	}
}

func TestExecuteSmallPlan(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 120, 80, Tiles(100))
	y := b.Input("y", 80, 60, Single())
	out := b.ReLU(b.MatMul(x, y))
	plan, err := NewOptimizer(ClusterR5D(3)).Optimize(b, out)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ins := map[string]*Dense{
		"x": tensor.RandNormal(rng, 120, 80),
		"y": tensor.RandNormal(rng, 80, 60),
	}
	exec := NewExecutor(ClusterR5D(3))
	got, err := exec.RunSingle(plan, ins)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.ReLU(tensor.MatMul(ins["x"], ins["y"]))
	if diff := tensor.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("deviates by %g", diff)
	}
	if exec.Stats().FLOPs == 0 {
		t.Fatal("no work recorded")
	}
}

func TestFormatSetsAndBrute(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 2000, 2000, Tiles(1000))
	y := b.Input("y", 2000, 2000, Tiles(1000))
	out := b.MatMul(x, y)
	auto, err := NewOptimizer(ClusterR5D(4), WithFormats(SingleBlockFormats)).Optimize(b, out)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := NewOptimizer(ClusterR5D(4), WithFormats(SingleBlockFormats),
		WithAlgorithm(BruteForce), WithBudget(time.Minute)).Optimize(b, out)
	if err != nil {
		t.Fatal(err)
	}
	if d := auto.PredictedSeconds() - brute.PredictedSeconds(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("DP %.6f vs brute %.6f", auto.PredictedSeconds(), brute.PredictedSeconds())
	}
	// A tiny budget must time out on a deep chain.
	deep := NewBuilder()
	cur := deep.Input("m0", 4000, 4000, Tiles(1000))
	for i := 0; i < 10; i++ {
		nxt := deep.Input(string(rune('a'+i)), 4000, 4000, Tiles(1000))
		cur = deep.MatMul(cur, nxt)
	}
	_, err = NewOptimizer(ClusterR5D(4), WithAlgorithm(BruteForce),
		WithBudget(time.Millisecond)).Optimize(deep, cur)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestSparseInputPlan(t *testing.T) {
	b := NewBuilder()
	x := b.SparseInput("x", 10000, 597540, 1.7e-4, SparseCSR())
	w := b.Input("w", 597540, 4000, Tiles(1000))
	out := b.MatMul(x, w)
	plan, err := NewOptimizer(ClusterR5DN(5)).Optimize(b, out)
	if err != nil {
		t.Fatal(err)
	}
	densePlan, err := func() (*Plan, error) {
		b2 := NewBuilder()
		x2 := b2.Input("x", 10000, 597540, ColStrips(1000))
		w2 := b2.Input("w", 597540, 4000, Tiles(1000))
		return NewOptimizer(ClusterR5DN(5), WithFormats(DenseFormats)).Optimize(b2, b2.MatMul(x2, w2))
	}()
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedSeconds() >= densePlan.PredictedSeconds() {
		t.Fatalf("sparse plan %.2fs not cheaper than dense %.2fs",
			plan.PredictedSeconds(), densePlan.PredictedSeconds())
	}
}

func TestOptimizeRejectsEmptyComputation(t *testing.T) {
	b := NewBuilder()
	b.Input("x", 10, 10, Single())
	if _, err := NewOptimizer(ClusterR5D(2)).Optimize(b); err == nil {
		t.Fatal("computation without operations must be rejected")
	}
}
