package matopt_test

import (
	"fmt"
	"log"

	"matopt"
)

// Example reproduces the paper's §2.1 motivating example: the optimizer
// discovers that the small product matA×matB should collapse into a
// single tuple and be broadcast against matC's column strips.
func Example() {
	b := matopt.NewBuilder()
	matA := b.Input("matA", 100, 10000, matopt.RowStrips(10))
	matB := b.Input("matB", 10000, 100, matopt.ColStrips(10))
	matC := b.Input("matC", 100, 1000000, matopt.ColStrips(10000))
	ab := b.MatMul(matA, matB)
	out := b.MatMul(ab, matC)

	plan, err := matopt.NewOptimizer(matopt.ClusterR5D(5)).Optimize(b, out)
	if err != nil {
		log.Fatal(err)
	}
	ann := plan.Annotation()
	fmt.Println("matAB:", ann.VertexFormat[3], "via", ann.VertexImpl[3].Name)
	fmt.Println("matABC:", ann.VertexFormat[4], "via", ann.VertexImpl[4].Name)
	// Output:
	// matAB: single via mm-colstrip-rowstrip-agg
	// matABC: colstrip[10000] via mm-bcast-single-colstrip
}
