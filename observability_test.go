package matopt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"matopt/internal/costmodel"
)

// spanNames collects the names present in a trace.
func spanNames(tr *Trace) map[string]int {
	out := make(map[string]int)
	for _, s := range tr.Spans {
		out[s.Name]++
	}
	return out
}

// TestTracedOptimizeAndExecute shares one tracer across the optimizer
// and a dist executor and checks the span taxonomy of a full run.
func TestTracedOptimizeAndExecute(t *testing.T) {
	b := NewBuilder()
	x := b.Input("X", 120, 400, RowStrips(100))
	w := b.Input("W", 400, 80, Single())
	h := b.ReLU(b.MatMul(x, w))
	b.MatMul(b.Transpose(h), h)
	cl := costmodel.LocalTest(3)
	_, inputs, want := faultGolden(t)

	tracer := NewTracer()
	plan, err := NewOptimizer(cl, WithTracer(tracer)).Optimize(b)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4), WithTracing(tracer))
	got, err := exec.Run(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "traced dist", got, want)

	tr := exec.Trace()
	if tr == nil {
		t.Fatal("Trace() returned nil on a traced executor")
	}
	names := spanNames(tr)
	nv := len(plan.Annotation().Graph.Vertices)
	for name, min := range map[string]int{
		"optimize": 1, "plancache.lookup": 1, "execute": 1,
		"dist.run": 1, "vertex": nv, "attempt": nv, "exchange": 1,
	} {
		if names[name] < min {
			t.Errorf("trace has %d %q spans, want ≥ %d (all: %v)", names[name], name, min, names)
		}
	}
	// The graph is a DAG (shared h), so the Frontier ran, one round per
	// non-source vertex.
	if names["frontier"] != 1 || names["frontier.round"] != nv-2 {
		t.Errorf("want 1 frontier span and %d rounds, got %v", nv-2, names)
	}
	// Every span must be closed and parented to a span in the snapshot.
	ids := make(map[int64]bool)
	for _, s := range tr.Spans {
		ids[s.ID] = true
	}
	for _, s := range tr.Spans {
		if s.End.IsZero() {
			t.Errorf("span %q left open", s.Name)
		}
		if s.Parent != 0 && !ids[s.Parent] {
			t.Errorf("span %q has dangling parent %d", s.Name, s.Parent)
		}
	}
	// The exporters must render it: tree text and a loadable Chrome file.
	if tree := tr.Tree(); !strings.Contains(tree, "dist.run") {
		t.Errorf("tree rendering missing dist.run:\n%s", tree)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != len(tr.Spans) {
		t.Errorf("chrome trace has %d events for %d spans", len(f.TraceEvents), len(tr.Spans))
	}
	// Root spans (optimize + execute) must account for essentially the
	// whole traced window — the acceptance bar for the CLI's -trace-out.
	if cov := tr.WallCoverage(); cov < 0.95 {
		t.Errorf("root spans cover %.2f of the trace window, want ≥ 0.95", cov)
	}
}

// TestUntracedRunsProduceNoTrace: executors and optimizers without a
// tracer behave exactly as before and report a nil trace.
func TestUntracedRunsProduceNoTrace(t *testing.T) {
	plan, inputs, want := faultGolden(t)
	cl := costmodel.LocalTest(3)
	exec := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(2))
	got, err := exec.Run(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "untraced dist", got, want)
	if exec.Trace() != nil {
		t.Error("untraced executor must return a nil Trace")
	}
}

// TestPlanCacheMetrics: cache lookups are counted into the process
// registry and the lookup span records the hit.
func TestPlanCacheMetrics(t *testing.T) {
	cl := costmodel.LocalTest(3)
	build := func() *Builder {
		b := NewBuilder()
		x := b.Input("X", 50, 60, Single())
		w := b.Input("W", 60, 40, Single())
		b.MatMul(x, w)
		return b
	}
	hits0 := Metrics().Counter("matopt.plancache.hits").Value()
	misses0 := Metrics().Counter("matopt.plancache.misses").Value()

	tracer := NewTracer()
	o := NewOptimizer(cl, WithTracer(tracer))
	if _, err := o.Optimize(build()); err != nil {
		t.Fatal(err)
	}
	p2, err := o.Optimize(build())
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Cached() {
		t.Fatal("second optimize of an identical graph should hit the plan cache")
	}
	if d := Metrics().Counter("matopt.plancache.hits").Value() - hits0; d != 1 {
		t.Errorf("hits grew by %d, want 1", d)
	}
	if d := Metrics().Counter("matopt.plancache.misses").Value() - misses0; d != 1 {
		t.Errorf("misses grew by %d, want 1", d)
	}
	var hitAttrs []bool
	for _, s := range tracer.Snapshot().Spans {
		if s.Name != "plancache.lookup" {
			continue
		}
		for _, a := range s.Attrs {
			if a.Key == "hit" {
				hitAttrs = append(hitAttrs, a.Value() == true)
			}
		}
	}
	if len(hitAttrs) != 2 || hitAttrs[0] || !hitAttrs[1] {
		t.Errorf("plancache.lookup hit attrs = %v, want [false true]", hitAttrs)
	}
}

// TestDegradedReportKeepsMeters is the regression test for the
// degraded-run report: after WithFallback kicks in, DistReport must
// carry the attempted dist run's meters — the traffic it shipped, the
// retries it took, the faults that fired — not a zeroed report.
func TestDegradedReportKeepsMeters(t *testing.T) {
	plan, inputs, want := faultGolden(t)
	cl := costmodel.LocalTest(3)
	// Crash one non-source vertex on every allowed attempt so the dist
	// run does real work (sources load, peers execute, exchanges ship)
	// before retries exhaust and the executor degrades.
	var victim int
	for _, v := range plan.Annotation().Graph.Vertices {
		if !v.IsSource {
			victim = v.ID
		}
	}
	exec := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4),
		WithFaults(NewFaultPlan(
			Fault{Kind: FaultCrash, Vertex: victim, Attempt: 0},
			Fault{Kind: FaultCrash, Vertex: victim, Attempt: 1},
		)),
		WithMaxRetries(1), WithFallback())
	got, err := exec.Run(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "degraded run", got, want)
	rep := exec.DistReport()
	if rep == nil || !rep.Degraded || rep.DegradedCause == "" {
		t.Fatalf("degradation not reported: %+v", rep)
	}
	if rep.Shards != 4 {
		t.Errorf("degraded report lost the shard count: %d", rep.Shards)
	}
	if rep.FaultsInjected != 2 {
		t.Errorf("degraded report counts %d faults, want 2", rep.FaultsInjected)
	}
	if rep.Retries != 1 || rep.RetriesByVertex[victim] != 1 {
		t.Errorf("degraded report retries = %d (%v), want 1 on vertex %d",
			rep.Retries, rep.RetriesByVertex, victim)
	}
	if rep.NetBytes == 0 || rep.Messages == 0 || len(rep.Exchanges) == 0 {
		t.Errorf("degraded report zeroed its exchange meters: bytes=%d msgs=%d exchanges=%d",
			rep.NetBytes, rep.Messages, len(rep.Exchanges))
	}
	if rep.PeakBytes == 0 {
		t.Error("degraded report zeroed its peak-memory meter")
	}
}

// TestDistRunPopulatesDefaultRegistry: a dist run's meters merge into
// the process-wide registry when its report is built.
func TestDistRunPopulatesDefaultRegistry(t *testing.T) {
	plan, inputs, want := faultGolden(t)
	cl := costmodel.LocalTest(3)
	before := Metrics().Counter("dist.exchange.bytes",
		L("vertex", "?"), L("kind", "?"), L("label", "?")) // distinct identity; just forces registry init
	_ = before
	exec := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(2))
	got, err := exec.Run(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "registry dist", got, want)
	rep := exec.DistReport()
	var total int64
	for _, m := range Metrics().Snapshot() {
		if m.Name == "dist.exchange.bytes" {
			total += m.Value
		}
	}
	if total < rep.NetBytes || rep.NetBytes == 0 {
		t.Errorf("default registry has %d exchange bytes, report says %d", total, rep.NetBytes)
	}
}
