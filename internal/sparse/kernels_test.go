package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"matopt/internal/tensor"
)

func bitsEqualDense(a, b *tensor.Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// csrIdentical compares two CSR matrices byte for byte: structure and
// value bits. The threaded Gustavson kernel promises exactly this.
func csrIdentical(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.RowPtr) != len(b.RowPtr) ||
		len(a.ColIdx) != len(b.ColIdx) || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	for i := range a.Val {
		if math.Float64bits(a.Val[i]) != math.Float64bits(b.Val[i]) {
			return false
		}
	}
	return true
}

// TestMulDenseKBitIdenticalAcrossThreads: CSR×dense partitions output
// rows; every thread budget reproduces the serial bits.
func TestMulDenseKBitIdenticalAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dim := range [][3]int{{1, 1, 1}, {37, 53, 29}, {200, 150, 64}} {
		a := FromDense(tensor.RandSparse(rng, dim[0], dim[1], 0.2))
		b := tensor.RandNormal(rng, dim[1], dim[2])
		want := a.MulDense(b)
		for _, threads := range []int{2, 3, 8} {
			got := a.MulDenseK(tensor.K{Threads: threads}, b)
			if !bitsEqualDense(got, want) {
				t.Fatalf("%v threads=%d: MulDenseK differs from serial", dim, threads)
			}
		}
	}
}

// TestMulKByteIdenticalAcrossThreads: sparse×sparse emits per-chunk
// segments concatenated in chunk order — the assembled CSR must be
// byte-identical to serial Gustavson at every thread count.
func TestMulKByteIdenticalAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dim := range [][3]int{{1, 1, 1}, {40, 60, 35}, {150, 100, 120}} {
		a := FromDense(tensor.RandSparse(rng, dim[0], dim[1], 0.15))
		b := FromDense(tensor.RandSparse(rng, dim[1], dim[2], 0.15))
		want := a.Mul(b)
		for _, threads := range []int{2, 3, 8} {
			got := a.MulK(tensor.K{Threads: threads}, b)
			if !csrIdentical(got, want) {
				t.Fatalf("%v threads=%d: MulK differs from serial Gustavson", dim, threads)
			}
		}
	}
}

// TestTransposeMulDenseKHonorsTimerOnly: the scatter-add kernel stays
// serial at any budget (no order-preserving partition exists) but still
// reports its time, and matches the package-level entry point.
func TestTransposeMulDenseKHonorsTimerOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := FromDense(tensor.RandSparse(rng, 50, 40, 0.2))
	b := tensor.RandNormal(rng, 50, 30)
	want := a.TransposeMulDense(b)
	var calls int
	got := a.TransposeMulDenseK(tensor.K{Threads: 8, Timer: func(int64) { calls++ }}, b)
	if !bitsEqualDense(got, want) {
		t.Fatal("TransposeMulDenseK differs from serial")
	}
	if calls != 1 {
		t.Fatalf("timer saw %d invocations, want 1", calls)
	}
}

// TestSparseKernelTimers: every sparse kernel reports through the
// context's timer.
func TestSparseKernelTimers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := FromDense(tensor.RandSparse(rng, 30, 30, 0.3))
	d := tensor.RandNormal(rng, 30, 30)
	var calls int
	kc := tensor.K{Threads: 2, Timer: func(int64) { calls++ }}
	a.MulDenseK(kc, d)
	a.MulK(kc, a)
	if calls != 2 {
		t.Fatalf("timer saw %d kernels, want 2", calls)
	}
}

// TestSparseShapeErrors: mis-shaped sparse kernels panic with typed
// *tensor.ShapeError values carrying the sparse.-prefixed kernel name.
func TestSparseShapeErrors(t *testing.T) {
	a := &CSR{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	d42 := tensor.NewDense(4, 2)
	s42 := &CSR{Rows: 4, Cols: 2, RowPtr: []int{0, 0, 0, 0, 0}}
	cases := []struct {
		kernel string
		call   func()
	}{
		{"sparse.MulDense", func() { a.MulDense(d42) }},
		{"sparse.TransposeMulDense", func() { a.TransposeMulDense(d42) }},
		{"sparse.Mul", func() { a.Mul(s42) }},
	}
	for _, tc := range cases {
		t.Run(tc.kernel, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic from mis-shaped call")
				}
				se, ok := r.(*tensor.ShapeError)
				if !ok {
					t.Fatalf("panic value is %T, want *tensor.ShapeError", r)
				}
				if se.Kernel != tc.kernel {
					t.Fatalf("ShapeError.Kernel = %q, want %q", se.Kernel, tc.kernel)
				}
				if !strings.Contains(se.Error(), tc.kernel) {
					t.Fatalf("error string lacks kernel name: %q", se.Error())
				}
			}()
			tc.call()
		})
	}
}
