package sparse

import (
	"time"

	"matopt/internal/tensor"
)

// shapePanic panics with a typed *tensor.ShapeError for a sparse kernel.
func shapePanic(kernel, want string, dims ...string) {
	panic(&tensor.ShapeError{Kernel: "sparse." + kernel, Want: want, Dims: dims})
}

// kernDone reports a kernel's wall time to the context's timer, if one
// is attached. Use as `defer kernDone(kc, time.Now())`.
func kernDone(kc tensor.K, t0 time.Time) {
	if kc.Timer != nil {
		kc.Timer(time.Since(t0).Nanoseconds())
	}
}

// avgRowWork estimates the scalar operations one CSR row contributes to
// a product with width output columns — the pool grain is sized from it
// so sparse kernels keep the same serial-size cutoff as the dense ones.
func (m *CSR) avgRowWork(width int) int {
	if m.Rows == 0 {
		return 1
	}
	return 2 * (m.NNZ()/m.Rows + 1) * width
}

// MulDense returns the dense product a×b for CSR a and dense b,
// serially. The output of a sparse-data × dense-model multiply is dense
// (§7 of the paper), so the result is materialized densely.
func (m *CSR) MulDense(b *tensor.Dense) *tensor.Dense { return m.MulDenseK(tensor.K{}, b) }

// MulDenseK is MulDense under a kernel context: output rows are
// partitioned into contiguous chunks (a CSR row is owned by exactly one
// chunk, and its accumulation order over stored entries is unchanged),
// so any thread count is bit-identical to serial.
func (m *CSR) MulDenseK(kc tensor.K, b *tensor.Dense) *tensor.Dense {
	if m.Cols != b.Rows {
		shapePanic("MulDense", "inner dimensions must agree (a.Cols == b.Rows)",
			tensor.Dim("a", m.Rows, m.Cols), tensor.Dim("b", b.Rows, b.Cols))
	}
	defer kernDone(kc, time.Now())
	out := tensor.NewDense(m.Rows, b.Cols)
	kc.Par(m.Rows, m.avgRowWork(b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				av := m.Val[k]
				brow := b.Data[m.ColIdx[k]*b.Cols : (m.ColIdx[k]+1)*b.Cols]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// TransposeMulDense returns aᵀ×b for CSR a and dense b, without
// materializing aᵀ — the access pattern scatter-adds each sparse row.
func (m *CSR) TransposeMulDense(b *tensor.Dense) *tensor.Dense {
	return m.TransposeMulDenseK(tensor.K{}, b)
}

// TransposeMulDenseK is TransposeMulDense under a kernel context. It
// runs serially regardless of the thread budget: the kernel
// scatter-adds into output rows indexed by ColIdx, so output ownership
// follows the (unpredictable) sparsity pattern rather than a row range
// — there is no partition that is both disjoint and
// accumulation-order-preserving. Only the context's timer is honored.
func (m *CSR) TransposeMulDenseK(kc tensor.K, b *tensor.Dense) *tensor.Dense {
	if m.Rows != b.Rows {
		shapePanic("TransposeMulDense", "row counts must agree (aᵀ×b needs a.Rows == b.Rows)",
			tensor.Dim("a", m.Rows, m.Cols), tensor.Dim("b", b.Rows, b.Cols))
	}
	defer kernDone(kc, time.Now())
	out := tensor.NewDense(m.Cols, b.Cols)
	for i := 0; i < m.Rows; i++ {
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			av := m.Val[k]
			orow := out.Data[m.ColIdx[k]*b.Cols : (m.ColIdx[k]+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Mul returns the sparse product a×b for two CSR matrices, serially,
// using the classical Gustavson row-merge algorithm.
func (m *CSR) Mul(b *CSR) *CSR { return m.MulK(tensor.K{}, b) }

// MulK is Mul under a kernel context. Output rows are split into
// contiguous chunks; each chunk runs the serial Gustavson row loop into
// its own accumulator and emits a private (colIdx, val) segment, and the
// segments are concatenated in chunk order — so the assembled CSR is
// byte-identical to the serial result for any thread count.
func (m *CSR) MulK(kc tensor.K, b *CSR) *CSR {
	if m.Cols != b.Rows {
		shapePanic("Mul", "inner dimensions must agree (a.Cols == b.Rows)",
			tensor.Dim("a", m.Rows, m.Cols), tensor.Dim("b", b.Rows, b.Cols))
	}
	defer kernDone(kc, time.Now())
	// Work per row ≈ 2 · nnz(a)/rows · nnz(b)/rows flops through the
	// accumulator map (map ops dominate, hence the extra factor).
	workPerRow := 1
	if m.Rows > 0 && b.Rows > 0 {
		workPerRow = 8 * (m.NNZ()/m.Rows + 1) * (b.NNZ()/b.Rows + 1)
	}
	nch := kc.NumChunks(m.Rows, workPerRow)
	type segment struct {
		rowNNZ []int // entries per output row in this chunk
		colIdx []int
		val    []float64
	}
	segs := make([]segment, nch)
	kc.ParChunks(m.Rows, workPerRow, func(chunk, lo, hi int) {
		acc := make(map[int]float64)
		cols := make([]int, 0, 64)
		seg := segment{rowNNZ: make([]int, 0, hi-lo)}
		for i := lo; i < hi; i++ {
			for k := range acc {
				delete(acc, k)
			}
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				av := m.Val[k]
				r := m.ColIdx[k]
				for kb := b.RowPtr[r]; kb < b.RowPtr[r+1]; kb++ {
					acc[b.ColIdx[kb]] += av * b.Val[kb]
				}
			}
			cols = cols[:0]
			for c, v := range acc {
				if v != 0 {
					cols = append(cols, c)
				}
			}
			insertionSort(cols)
			for _, c := range cols {
				seg.colIdx = append(seg.colIdx, c)
				seg.val = append(seg.val, acc[c])
			}
			seg.rowNNZ = append(seg.rowNNZ, len(cols))
		}
		segs[chunk] = seg
	})
	rowPtr := make([]int, m.Rows+1)
	var total int
	for _, seg := range segs {
		total += len(seg.val)
	}
	colIdx := make([]int, 0, total)
	val := make([]float64, 0, total)
	row := 0
	for _, seg := range segs {
		for _, nnz := range seg.rowNNZ {
			rowPtr[row+1] = rowPtr[row] + nnz
			row++
		}
		colIdx = append(colIdx, seg.colIdx...)
		val = append(val, seg.val...)
	}
	return &CSR{Rows: m.Rows, Cols: b.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// EstimateMatMulDensity predicts the density of a×b from input densities
// and the inner dimension, under the standard independence assumption:
// P(out non-zero) = 1 − (1 − da·db)^k. This is the simple estimator the
// cost model uses in lieu of the MNC sketches the paper defers to future
// work.
func EstimateMatMulDensity(da, db float64, k int64) float64 {
	if da <= 0 || db <= 0 {
		return 0
	}
	if da >= 1 && db >= 1 {
		return 1
	}
	p := da * db
	// 1 − (1−p)^k without float underflow for tiny p·k.
	if pk := p * float64(k); pk < 1e-6 {
		return pk
	}
	q := 1.0
	// Exponentiation by squaring on (1−p)^k.
	base, e := 1-p, k
	for e > 0 {
		if e&1 == 1 {
			q *= base
		}
		base *= base
		e >>= 1
	}
	return 1 - q
}
