package sparse

import (
	"fmt"

	"matopt/internal/tensor"
)

// MulDense returns the dense product a×b for CSR a and dense b. The
// output of a sparse-data × dense-model multiply is dense (§7 of the
// paper), so the result is materialized densely.
func (m *CSR) MulDense(b *tensor.Dense) *tensor.Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: MulDense %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := tensor.NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			av := m.Val[k]
			brow := b.Data[m.ColIdx[k]*b.Cols : (m.ColIdx[k]+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// TransposeMulDense returns aᵀ×b for CSR a and dense b, without
// materializing aᵀ — the access pattern scatter-adds each sparse row.
func (m *CSR) TransposeMulDense(b *tensor.Dense) *tensor.Dense {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("sparse: TransposeMulDense %dx%d ᵀ× %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := tensor.NewDense(m.Cols, b.Cols)
	for i := 0; i < m.Rows; i++ {
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			av := m.Val[k]
			orow := out.Data[m.ColIdx[k]*b.Cols : (m.ColIdx[k]+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Mul returns the sparse product a×b for two CSR matrices, using the
// classical Gustavson row-merge algorithm.
func (m *CSR) Mul(b *CSR) *CSR {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: Mul %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	acc := make(map[int]float64)
	rowPtr := make([]int, m.Rows+1)
	var colIdx []int
	var val []float64
	cols := make([]int, 0, 64)
	for i := 0; i < m.Rows; i++ {
		for k := range acc {
			delete(acc, k)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			av := m.Val[k]
			r := m.ColIdx[k]
			for kb := b.RowPtr[r]; kb < b.RowPtr[r+1]; kb++ {
				acc[b.ColIdx[kb]] += av * b.Val[kb]
			}
		}
		cols = cols[:0]
		for c, v := range acc {
			if v != 0 {
				cols = append(cols, c)
			}
		}
		insertionSort(cols)
		for _, c := range cols {
			colIdx = append(colIdx, c)
			val = append(val, acc[c])
		}
		rowPtr[i+1] = len(val)
	}
	return &CSR{Rows: m.Rows, Cols: b.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// EstimateMatMulDensity predicts the density of a×b from input densities
// and the inner dimension, under the standard independence assumption:
// P(out non-zero) = 1 − (1 − da·db)^k. This is the simple estimator the
// cost model uses in lieu of the MNC sketches the paper defers to future
// work.
func EstimateMatMulDensity(da, db float64, k int64) float64 {
	if da <= 0 || db <= 0 {
		return 0
	}
	if da >= 1 && db >= 1 {
		return 1
	}
	p := da * db
	// 1 − (1−p)^k without float underflow for tiny p·k.
	if pk := p * float64(k); pk < 1e-6 {
		return pk
	}
	q := 1.0
	// Exponentiation by squaring on (1−p)^k.
	base, e := 1-p, k
	for e > 0 {
		if e&1 == 1 {
			q *= base
		}
		base *= base
		e >>= 1
	}
	return 1 - q
}
