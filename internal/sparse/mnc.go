package sparse

import (
	"fmt"
	"math"

	"matopt/internal/tensor"
)

// Sketch is a simplified MNC (Matrix Non-zero Count) sketch in the
// spirit of Sommer et al. (SIGMOD 2019), which §7 of the paper proposes
// for estimating intermediate sparsity: the per-row and per-column
// non-zero counts of a matrix. The paper leaves integrating such a
// framework to future work; this implementation provides the structure-
// exploiting estimator and the adaptive executor in internal/engine uses
// it to detect when the simple independence-based estimates drift.
type Sketch struct {
	Rows, Cols int
	RowCounts  []int64 // non-zeros per row
	ColCounts  []int64 // non-zeros per column
}

// NNZ returns the total non-zero count.
func (s *Sketch) NNZ() int64 {
	var n int64
	for _, c := range s.RowCounts {
		n += c
	}
	return n
}

// Density returns the non-zero fraction.
func (s *Sketch) Density() float64 {
	return float64(s.NNZ()) / (float64(s.Rows) * float64(s.Cols))
}

// SketchDense extracts the sketch of a dense matrix.
func SketchDense(m *tensor.Dense) *Sketch {
	s := &Sketch{
		Rows:      m.Rows,
		Cols:      m.Cols,
		RowCounts: make([]int64, m.Rows),
		ColCounts: make([]int64, m.Cols),
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != 0 {
				s.RowCounts[i]++
				s.ColCounts[j]++
			}
		}
	}
	return s
}

// SketchCSR extracts the sketch of a CSR matrix.
func SketchCSR(m *CSR) *Sketch {
	s := &Sketch{
		Rows:      m.Rows,
		Cols:      m.Cols,
		RowCounts: make([]int64, m.Rows),
		ColCounts: make([]int64, m.Cols),
	}
	for i := 0; i < m.Rows; i++ {
		s.RowCounts[i] = int64(m.RowPtr[i+1] - m.RowPtr[i])
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s.ColCounts[m.ColIdx[k]]++
		}
	}
	return s
}

// UniformSketch builds the sketch of a hypothetical matrix with the
// given density spread uniformly (used for matrices known only by their
// summary density).
func UniformSketch(rows, cols int, density float64) *Sketch {
	s := &Sketch{Rows: rows, Cols: cols,
		RowCounts: make([]int64, rows), ColCounts: make([]int64, cols)}
	perRow := int64(math.Round(density * float64(cols)))
	perCol := int64(math.Round(density * float64(rows)))
	for i := range s.RowCounts {
		s.RowCounts[i] = perRow
	}
	for j := range s.ColCounts {
		s.ColCounts[j] = perCol
	}
	return s
}

// EstimateMatMul estimates the sketch of a×b from the operand sketches.
// For each inner index k, the expected number of (i, j) pairs receiving
// a contribution is ColCounts_a[k]·RowCounts_b[k]; collisions between
// contributions are corrected with the standard Poisson approximation
// nnz ≈ m·n·(1 − e^{−λ}) with λ the expected contributions per output
// cell. Row and column counts of the product are estimated by
// distributing the output non-zeros proportionally to each row's
// (column's) expected contribution mass — the structure-exploiting step
// that plain density products miss.
func EstimateMatMul(a, b *Sketch) (*Sketch, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sparse: sketch matmul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	m, n := a.Rows, b.Cols
	out := &Sketch{Rows: m, Cols: n,
		RowCounts: make([]int64, m), ColCounts: make([]int64, n)}

	// Total expected contributions Σ_k ca[k]·rb[k].
	var total float64
	// Per-row mass: row i of a contributes RowCounts_a[i] terms, each
	// hitting an expected rb[k]/… — without per-entry positions, spread
	// row i's non-zeros over the inner index proportionally to b's row
	// counts: mass_i = RowCounts_a[i] · (Σ_k rb[k]) / K̄ … simplified to
	// mass_i ∝ RowCounts_a[i] · avgRB.
	var sumRB, sumCA float64
	for k := 0; k < a.Cols; k++ {
		total += float64(a.ColCounts[k]) * float64(b.RowCounts[k])
		sumRB += float64(b.RowCounts[k])
		sumCA += float64(a.ColCounts[k])
	}
	if total == 0 {
		return out, nil
	}
	cells := float64(m) * float64(n)
	lambda := total / cells
	nnz := cells * (1 - math.Exp(-lambda))

	avgRB := sumRB / float64(a.Cols)
	avgCA := sumCA / float64(b.Rows)
	var rowMassTotal, colMassTotal float64
	rowMass := make([]float64, m)
	colMass := make([]float64, n)
	for i := 0; i < m; i++ {
		rowMass[i] = float64(a.RowCounts[i]) * avgRB
		rowMassTotal += rowMass[i]
	}
	for j := 0; j < n; j++ {
		colMass[j] = float64(b.ColCounts[j]) * avgCA
		colMassTotal += colMass[j]
	}
	for i := 0; i < m; i++ {
		if rowMassTotal > 0 {
			// Saturate at a full row.
			c := nnz * rowMass[i] / rowMassTotal
			if c > float64(n) {
				c = float64(n)
			}
			out.RowCounts[i] = int64(math.Round(c))
		}
	}
	for j := 0; j < n; j++ {
		if colMassTotal > 0 {
			c := nnz * colMass[j] / colMassTotal
			if c > float64(m) {
				c = float64(m)
			}
			out.ColCounts[j] = int64(math.Round(c))
		}
	}
	return out, nil
}

// EstimateAdd estimates the sketch of a+b (union of supports with
// independence-corrected overlap).
func EstimateAdd(a, b *Sketch) (*Sketch, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("sparse: sketch add %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := &Sketch{Rows: a.Rows, Cols: a.Cols,
		RowCounts: make([]int64, a.Rows), ColCounts: make([]int64, a.Cols)}
	for i := range out.RowCounts {
		pa := float64(a.RowCounts[i]) / float64(a.Cols)
		pb := float64(b.RowCounts[i]) / float64(b.Cols)
		out.RowCounts[i] = int64(math.Round(float64(a.Cols) * (pa + pb - pa*pb)))
	}
	for j := range out.ColCounts {
		pa := float64(a.ColCounts[j]) / float64(a.Rows)
		pb := float64(b.ColCounts[j]) / float64(b.Rows)
		out.ColCounts[j] = int64(math.Round(float64(a.Rows) * (pa + pb - pa*pb)))
	}
	return out, nil
}

// EstimateHadamard estimates the sketch of a∘b (intersection of
// supports under independence).
func EstimateHadamard(a, b *Sketch) (*Sketch, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("sparse: sketch hadamard %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := &Sketch{Rows: a.Rows, Cols: a.Cols,
		RowCounts: make([]int64, a.Rows), ColCounts: make([]int64, a.Cols)}
	for i := range out.RowCounts {
		out.RowCounts[i] = int64(math.Round(float64(a.RowCounts[i]) * float64(b.RowCounts[i]) / float64(a.Cols)))
	}
	for j := range out.ColCounts {
		out.ColCounts[j] = int64(math.Round(float64(a.ColCounts[j]) * float64(b.ColCounts[j]) / float64(a.Rows)))
	}
	return out, nil
}

// Transpose returns the transposed sketch.
func (s *Sketch) Transpose() *Sketch {
	return &Sketch{
		Rows:      s.Cols,
		Cols:      s.Rows,
		RowCounts: append([]int64(nil), s.ColCounts...),
		ColCounts: append([]int64(nil), s.RowCounts...),
	}
}

// RelativeError is Sommer's accuracy measure used in §7 of the paper:
// max(est, actual)/min(est, actual), with 1.0 meaning a perfect
// estimate. Zero-vs-nonzero disagreements return +Inf.
func RelativeError(estimated, actual float64) float64 {
	if estimated == actual {
		return 1
	}
	if estimated <= 0 || actual <= 0 {
		return math.Inf(1)
	}
	return math.Max(estimated, actual) / math.Min(estimated, actual)
}
