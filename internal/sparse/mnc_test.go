package sparse

import (
	"math"
	"math/rand"
	"testing"

	"matopt/internal/tensor"
)

func TestSketchExtraction(t *testing.T) {
	m := tensor.FromRows([][]float64{
		{1, 0, 2},
		{0, 0, 0},
		{3, 4, 0},
	})
	s := SketchDense(m)
	if s.NNZ() != 4 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	wantRows := []int64{2, 0, 2}
	wantCols := []int64{2, 1, 1}
	for i, w := range wantRows {
		if s.RowCounts[i] != w {
			t.Errorf("RowCounts[%d] = %d, want %d", i, s.RowCounts[i], w)
		}
	}
	for j, w := range wantCols {
		if s.ColCounts[j] != w {
			t.Errorf("ColCounts[%d] = %d, want %d", j, s.ColCounts[j], w)
		}
	}
	// CSR extraction must agree with dense extraction.
	sc := SketchCSR(FromDense(m))
	for i := range s.RowCounts {
		if sc.RowCounts[i] != s.RowCounts[i] {
			t.Errorf("CSR row sketch disagrees at %d", i)
		}
	}
	if math.Abs(s.Density()-4.0/9) > 1e-12 {
		t.Errorf("Density = %v", s.Density())
	}
}

func TestSketchTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandSparse(rng, 13, 29, 0.2)
	s := SketchDense(m).Transpose()
	want := SketchDense(tensor.Transpose(m))
	for i := range want.RowCounts {
		if s.RowCounts[i] != want.RowCounts[i] {
			t.Fatalf("transposed row counts disagree at %d", i)
		}
	}
}

// The headline accuracy claim from §7 / Sommer: relative error on a
// product of uniform sparse matrices should be close to 1.
func TestEstimateMatMulAccuracyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.RandSparse(rng, 150, 120, 0.05)
	b := tensor.RandSparse(rng, 120, 140, 0.08)
	est, err := EstimateMatMul(SketchDense(a), SketchDense(b))
	if err != nil {
		t.Fatal(err)
	}
	actual := SketchDense(tensor.MatMul(a, b))
	re := RelativeError(float64(est.NNZ()), float64(actual.NNZ()))
	if re > 1.15 {
		t.Errorf("uniform product relative error %.3f, want ≤ 1.15 (est %d, actual %d)",
			re, est.NNZ(), actual.NNZ())
	}
}

// Structure exploitation: a matrix whose non-zeros concentrate in a few
// rows must yield a product estimate far better than the plain density
// product, and the row sketch must reflect the concentration.
func TestEstimateMatMulExploitsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.NewDense(100, 100)
	// All of a's mass in its first 10 rows.
	for i := 0; i < 10; i++ {
		for j := 0; j < 100; j++ {
			if rng.Float64() < 0.5 {
				a.Set(i, j, 1)
			}
		}
	}
	b := tensor.RandSparse(rng, 100, 100, 0.1)
	est, err := EstimateMatMul(SketchDense(a), SketchDense(b))
	if err != nil {
		t.Fatal(err)
	}
	actual := SketchDense(tensor.MatMul(a, b))
	// The product's non-zeros also live in the first 10 rows; the
	// estimated row counts must be (near) zero elsewhere.
	var estTail, actTail int64
	for i := 10; i < 100; i++ {
		estTail += est.RowCounts[i]
		actTail += actual.RowCounts[i]
	}
	if actTail != 0 {
		t.Fatalf("test setup broken: actual tail %d", actTail)
	}
	if estTail != 0 {
		t.Errorf("estimate puts %d non-zeros in empty rows", estTail)
	}
	re := RelativeError(float64(est.NNZ()), float64(actual.NNZ()))
	if re > 1.3 {
		t.Errorf("structured product relative error %.3f (est %d, actual %d)", re, est.NNZ(), actual.NNZ())
	}
}

func TestEstimateAddAndHadamard(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := tensor.RandSparse(rng, 200, 150, 0.1)
	b := tensor.RandSparse(rng, 200, 150, 0.2)
	add, err := EstimateAdd(SketchDense(a), SketchDense(b))
	if err != nil {
		t.Fatal(err)
	}
	actualAdd := SketchDense(tensor.Add(a, b))
	if re := RelativeError(float64(add.NNZ()), float64(actualAdd.NNZ())); re > 1.1 {
		t.Errorf("add relative error %.3f", re)
	}
	had, err := EstimateHadamard(SketchDense(a), SketchDense(b))
	if err != nil {
		t.Fatal(err)
	}
	actualHad := SketchDense(tensor.Hadamard(a, b))
	if re := RelativeError(float64(had.NNZ()), float64(actualHad.NNZ())); re > 1.3 {
		t.Errorf("hadamard relative error %.3f (est %d, actual %d)", re, had.NNZ(), actualHad.NNZ())
	}
}

func TestEstimatorsRejectShapeMismatch(t *testing.T) {
	a := UniformSketch(3, 4, 0.5)
	b := UniformSketch(5, 6, 0.5)
	if _, err := EstimateMatMul(a, b); err == nil {
		t.Error("matmul sketch mismatch accepted")
	}
	if _, err := EstimateAdd(a, b); err == nil {
		t.Error("add sketch mismatch accepted")
	}
	if _, err := EstimateHadamard(a, b); err == nil {
		t.Error("hadamard sketch mismatch accepted")
	}
}

func TestUniformSketch(t *testing.T) {
	s := UniformSketch(10, 20, 0.1)
	if s.RowCounts[0] != 2 || s.ColCounts[0] != 1 {
		t.Errorf("uniform sketch counts = %d, %d", s.RowCounts[0], s.ColCounts[0])
	}
	if math.Abs(s.Density()-0.1) > 0.01 {
		t.Errorf("uniform sketch density %v", s.Density())
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(10, 10) != 1 {
		t.Error("perfect estimate must be 1.0")
	}
	if RelativeError(20, 10) != 2 || RelativeError(10, 20) != 2 {
		t.Error("relative error must be symmetric")
	}
	if !math.IsInf(RelativeError(0, 5), 1) {
		t.Error("zero-vs-nonzero must be +Inf")
	}
	if RelativeError(0, 0) != 1 {
		t.Error("zero-vs-zero is perfect")
	}
}

func TestEstimateMatMulEmptyOperand(t *testing.T) {
	a := UniformSketch(10, 10, 0)
	b := UniformSketch(10, 10, 0.5)
	out, err := EstimateMatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != 0 {
		t.Errorf("empty × anything = %d nnz", out.NNZ())
	}
}
