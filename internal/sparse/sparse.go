// Package sparse provides the sparse matrix substrates: COO (relational
// (rowIndex, colIndex, value) triples, the paper's "relational" storage)
// and CSR, with conversions and the sparse kernels the engine's
// sparse-aware implementations execute.
package sparse

import (
	"fmt"
	"sort"

	"matopt/internal/tensor"
)

// Triple is one COO entry.
type Triple struct {
	Row, Col int
	Val      float64
}

// COO is a coordinate-format sparse matrix. Triples are kept sorted by
// (Row, Col) and duplicate coordinates are coalesced by the constructors.
type COO struct {
	Rows, Cols int
	Triples    []Triple
}

// NewCOO builds a COO matrix from triples, sorting and coalescing
// duplicates (values at equal coordinates are summed) and dropping zeros.
func NewCOO(rows, cols int, ts []Triple) (*COO, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: invalid dims %dx%d", rows, cols)
	}
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: triple (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	sorted := make([]Triple, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	out := sorted[:0]
	for _, t := range sorted {
		if n := len(out); n > 0 && out[n-1].Row == t.Row && out[n-1].Col == t.Col {
			out[n-1].Val += t.Val
			continue
		}
		out = append(out, t)
	}
	kept := out[:0]
	for _, t := range out {
		if t.Val != 0 {
			kept = append(kept, t)
		}
	}
	return &COO{Rows: rows, Cols: cols, Triples: kept}, nil
}

// NNZ returns the number of stored non-zeros.
func (m *COO) NNZ() int { return len(m.Triples) }

// Density returns the non-zero fraction (the paper's "sparsity").
func (m *COO) Density() float64 {
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// Bytes returns the relational storage size: 2 int32 keys + 1 float64 per
// triple, matching the engine's tuple accounting for triple relations.
func (m *COO) Bytes() int64 { return int64(m.NNZ()) * 16 }

// ToDense materializes the matrix densely.
func (m *COO) ToDense() *tensor.Dense {
	d := tensor.NewDense(m.Rows, m.Cols)
	for _, t := range m.Triples {
		d.Data[t.Row*m.Cols+t.Col] = t.Val
	}
	return d
}

// FromDenseCOO extracts the non-zeros of d.
func FromDenseCOO(d *tensor.Dense) *COO {
	var ts []Triple
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if v := d.At(i, j); v != 0 {
				ts = append(ts, Triple{Row: i, Col: j, Val: v})
			}
		}
	}
	m, err := NewCOO(d.Rows, d.Cols, ts)
	if err != nil {
		panic(err) // dims come from a valid Dense
	}
	return m
}
