package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"matopt/internal/tensor"
)

func TestNewCOOValidatesSortsCoalesces(t *testing.T) {
	m, err := NewCOO(3, 3, []Triple{
		{2, 2, 1}, {0, 1, 2}, {0, 1, 3}, {1, 0, 0}, // dup (0,1), explicit zero
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (coalesced, zero dropped): %v", m.NNZ(), m.Triples)
	}
	if m.Triples[0] != (Triple{0, 1, 5}) || m.Triples[1] != (Triple{2, 2, 1}) {
		t.Fatalf("triples = %v", m.Triples)
	}
	if _, err := NewCOO(2, 2, []Triple{{2, 0, 1}}); err == nil {
		t.Fatal("out-of-range triple accepted")
	}
	if _, err := NewCOO(0, 2, nil); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestCOODenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := tensor.RandSparse(rng, 30, 40, 0.2)
	c := FromDenseCOO(d)
	if !tensor.Equal(c.ToDense(), d, 0) {
		t.Fatal("COO round trip mismatch")
	}
	if math.Abs(c.Density()-d.Density()) > 1e-12 {
		t.Fatalf("Density %v vs dense %v", c.Density(), d.Density())
	}
	if c.Bytes() != int64(c.NNZ())*16 {
		t.Fatalf("Bytes = %d", c.Bytes())
	}
}

func TestCSRRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := tensor.RandSparse(rng, 25, 35, 0.15)
	m := FromDense(d)
	if !tensor.Equal(m.ToDense(), d, 0) {
		t.Fatal("CSR↔dense round trip mismatch")
	}
	if !tensor.Equal(m.ToCOO().ToDense(), d, 0) {
		t.Fatal("CSR→COO round trip mismatch")
	}
	if !tensor.Equal(FromCOO(m.ToCOO()).ToDense(), d, 0) {
		t.Fatal("COO→CSR round trip mismatch")
	}
}

func TestNewCSRValidation(t *testing.T) {
	cases := []struct {
		name   string
		rows   int
		rowPtr []int
		colIdx []int
		val    []float64
	}{
		{"short rowptr", 2, []int{0, 1}, []int{0}, []float64{1}},
		{"nonzero start", 2, []int{1, 1, 1}, nil, nil},
		{"non-monotone", 2, []int{0, 2, 1}, []int{0}, []float64{1}},
		{"bad col", 2, []int{0, 1, 1}, []int{5}, []float64{1}},
		{"descending cols", 1, []int{0, 2}, []int{1, 0}, []float64{1, 2}},
		{"len mismatch", 1, []int{0, 2}, []int{0, 1}, []float64{1}},
	}
	for _, c := range cases {
		if _, err := NewCSR(c.rows, 2, c.rowPtr, c.colIdx, c.val); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewCSR(2, 2, []int{0, 1, 2}, []int{0, 1}, []float64{1, 2}); err != nil {
		t.Errorf("valid CSR rejected: %v", err)
	}
}

func TestCSRMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.RandSparse(rng, 20, 30, 0.1)
	b := tensor.RandNormal(rng, 30, 12)
	got := FromDense(a).MulDense(b)
	want := tensor.MatMul(a, b)
	if diff := tensor.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("MulDense diff %g", diff)
	}
}

func TestCSRTransposeMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := tensor.RandSparse(rng, 20, 30, 0.1)
	b := tensor.RandNormal(rng, 20, 9)
	got := FromDense(a).TransposeMulDense(b)
	want := tensor.MatMul(tensor.Transpose(a), b)
	if diff := tensor.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("TransposeMulDense diff %g", diff)
	}
}

func TestCSRMulSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := tensor.RandSparse(rng, 15, 25, 0.15)
	b := tensor.RandSparse(rng, 25, 18, 0.15)
	got := FromDense(a).Mul(FromDense(b)).ToDense()
	want := tensor.MatMul(a, b)
	if diff := tensor.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("sparse Mul diff %g", diff)
	}
}

func TestCSRRowSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := tensor.RandSparse(rng, 12, 9, 0.3)
	m := FromDense(d)
	s := m.RowSlice(3, 8)
	if !tensor.Equal(s.ToDense(), d.Slice(3, 8, 0, 9), 0) {
		t.Fatal("RowSlice mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad RowSlice should panic")
		}
	}()
	m.RowSlice(8, 3)
}

func TestEstimateMatMulDensity(t *testing.T) {
	if d := EstimateMatMulDensity(1, 1, 100); d != 1 {
		t.Errorf("dense×dense = %v", d)
	}
	if d := EstimateMatMulDensity(0, 0.5, 100); d != 0 {
		t.Errorf("empty input = %v", d)
	}
	// Tiny densities: ≈ da·db·k.
	if d := EstimateMatMulDensity(1e-5, 1e-5, 1000); math.Abs(d-1e-7) > 1e-12 {
		t.Errorf("tiny-density linearization = %v", d)
	}
	// Exact check against direct formula for moderate values.
	da, db, k := 0.3, 0.2, int64(7)
	want := 1 - math.Pow(1-da*db, float64(k))
	if d := EstimateMatMulDensity(da, db, k); math.Abs(d-want) > 1e-12 {
		t.Errorf("moderate density = %v, want %v", d, want)
	}
}

func TestEstimateDensityMonotoneProperty(t *testing.T) {
	f := func(a8, b8 uint8, k8 uint8) bool {
		da := float64(a8) / 512 // in [0, ~0.5)
		db := float64(b8) / 512
		k := int64(k8) + 1
		d1 := EstimateMatMulDensity(da, db, k)
		d2 := EstimateMatMulDensity(da, db, k+5)
		return d1 >= 0 && d1 <= 1 && d2 >= d1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseDensityEstimateTracksEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := tensor.RandSparse(rng, 120, 100, 0.05)
	b := tensor.RandSparse(rng, 100, 120, 0.05)
	prod := FromDense(a).Mul(FromDense(b))
	got := prod.Density()
	want := EstimateMatMulDensity(0.05, 0.05, 100)
	if math.Abs(got-want) > 0.1*want+0.02 {
		t.Errorf("empirical density %v vs estimate %v", got, want)
	}
}
