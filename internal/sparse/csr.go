package sparse

import (
	"fmt"

	"matopt/internal/tensor"
)

// CSR is a compressed-sparse-row matrix: RowPtr has Rows+1 entries, and
// ColIdx/Val hold the column indices and values of each row's non-zeros
// in ascending column order.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NewCSR validates and wraps raw CSR arrays.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: invalid dims %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: RowPtr length %d, want %d", len(rowPtr), rows+1)
	}
	if len(colIdx) != len(val) || rowPtr[rows] != len(val) {
		return nil, fmt.Errorf("sparse: inconsistent CSR arrays")
	}
	if rowPtr[0] != 0 {
		return nil, fmt.Errorf("sparse: RowPtr[0] must be 0")
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
	}
	for i := 0; i < rows; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= cols {
				return nil, fmt.Errorf("sparse: column %d outside %d cols", colIdx[k], cols)
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				return nil, fmt.Errorf("sparse: columns not strictly ascending in row %d", i)
			}
		}
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, nil
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Density returns the non-zero fraction.
func (m *CSR) Density() float64 {
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// Bytes returns the CSR storage size: 8 bytes per row pointer, 4 per
// column index, 8 per value — the sizes the cost model charges.
func (m *CSR) Bytes() int64 { return int64(len(m.RowPtr))*8 + int64(m.NNZ())*12 }

// FromCOO converts a COO matrix (already sorted/coalesced) to CSR.
func FromCOO(c *COO) *CSR {
	rowPtr := make([]int, c.Rows+1)
	for _, t := range c.Triples {
		rowPtr[t.Row+1]++
	}
	for i := 0; i < c.Rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int, c.NNZ())
	val := make([]float64, c.NNZ())
	for i, t := range c.Triples { // triples are (row, col)-sorted
		colIdx[i] = t.Col
		val[i] = t.Val
	}
	return &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// ToCOO converts back to triples.
func (m *CSR) ToCOO() *COO {
	ts := make([]Triple, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			ts = append(ts, Triple{Row: i, Col: m.ColIdx[k], Val: m.Val[k]})
		}
	}
	out, err := NewCOO(m.Rows, m.Cols, ts)
	if err != nil {
		panic(err)
	}
	return out
}

// FromDense extracts the non-zeros of d into CSR form.
func FromDense(d *tensor.Dense) *CSR { return FromCOO(FromDenseCOO(d)) }

// ToDense materializes the matrix densely.
func (m *CSR) ToDense() *tensor.Dense {
	d := tensor.NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Data[i*m.Cols+m.ColIdx[k]] = m.Val[k]
		}
	}
	return d
}

// RowSlice returns the CSR sub-matrix of rows [r0, r1).
func (m *CSR) RowSlice(r0, r1 int) *CSR {
	if r0 < 0 || r1 > m.Rows || r0 >= r1 {
		panic(fmt.Sprintf("sparse: bad row slice [%d:%d) of %d rows", r0, r1, m.Rows))
	}
	base := m.RowPtr[r0]
	rowPtr := make([]int, r1-r0+1)
	for i := range rowPtr {
		rowPtr[i] = m.RowPtr[r0+i] - base
	}
	return &CSR{
		Rows:   r1 - r0,
		Cols:   m.Cols,
		RowPtr: rowPtr,
		ColIdx: m.ColIdx[base:m.RowPtr[r1]],
		Val:    m.Val[base:m.RowPtr[r1]],
	}
}
