package engine

import (
	"context"
	"fmt"

	"matopt/internal/core"
	"matopt/internal/plan"
	"matopt/internal/sparse"
	"matopt/internal/tensor"
)

// MeasuredDensity returns the relation's true non-zero fraction from its
// materialized payloads.
func (r *Relation) MeasuredDensity() float64 {
	var nnz int64
	for _, p := range r.Parts {
		for _, t := range p {
			switch {
			case t.Dense != nil:
				for _, v := range t.Dense.Data {
					if v != 0 {
						nnz++
					}
				}
			case t.CSR != nil:
				nnz += int64(t.CSR.NNZ())
			case t.IsVal && t.Val != 0:
				nnz++
			}
		}
	}
	return float64(nnz) / float64(r.Shape.Elems())
}

// DensityCorrection records one place the adaptive executor found the
// optimizer's density estimate off by more than the threshold.
type DensityCorrection struct {
	Vertex    int
	Estimated float64
	Measured  float64
	RelErr    float64
}

// AdaptiveResult is the outcome of RunAdaptive.
type AdaptiveResult struct {
	Relations   map[int]*Relation
	Reoptimized int
	Corrections []DensityCorrection
}

// RunAdaptive implements the re-optimization scheme §7 sketches as
// future work: execute the optimal plan vertex by vertex, measure the
// true density of every intermediate, and when the estimate's relative
// error (Sommer's measure, 1.0 = perfect) exceeds threshold — the paper
// suggests 1.2 — halt, re-optimize the remaining computation with the
// measured densities substituted in, and continue under the new plan.
func (e *Engine) RunAdaptive(g *core.Graph, env *core.Env, inputs map[string]*tensor.Dense, threshold float64) (*AdaptiveResult, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("engine: relative-error threshold %v must be ≥ 1", threshold)
	}
	res := &AdaptiveResult{Relations: make(map[int]*Relation)}

	// measured densities override the graph's estimates after a drift.
	measured := make(map[int]float64)

	for {
		sub, idmap, err := remainderGraph(g, res.Relations, measured)
		if err != nil {
			return nil, err
		}
		if sub.NumOps() == 0 {
			return res, nil
		}
		ann, err := core.Optimize(sub, env)
		if err != nil {
			return nil, fmt.Errorf("engine: adaptive re-optimization: %w", err)
		}
		drifted, err := e.runUntilDrift(sub, idmap, env, ann, inputs, threshold, res)
		if err != nil {
			return nil, err
		}
		if !drifted {
			return res, nil
		}
		res.Reoptimized++
	}
}

// remainderGraph rebuilds the not-yet-computed portion of g: computed
// vertices whose results are still needed become sources carrying their
// materialized format and measured density. idmap maps original vertex
// IDs to the new graph's vertices.
func remainderGraph(g *core.Graph, done map[int]*Relation, measured map[int]float64) (*core.Graph, map[int]*core.Vertex, error) {
	sub := core.NewGraph()
	idmap := make(map[int]*core.Vertex)
	for _, v := range g.Vertices {
		if r, ok := done[v.ID]; ok {
			// Only re-declare it if some remaining vertex consumes it.
			needed := false
			for _, out := range v.Outs {
				if _, did := done[out.ID]; !did {
					needed = true
					break
				}
			}
			if !needed {
				continue
			}
			d := r.Density
			if md, ok := measured[v.ID]; ok {
				d = md
			}
			idmap[v.ID] = sub.Input(fmt.Sprintf("done-%d", v.ID), v.Shape, d, r.Format)
			continue
		}
		if v.IsSource {
			idmap[v.ID] = sub.Input(v.Name, v.Shape, v.Density, v.SrcFormat)
			continue
		}
		ins := make([]*core.Vertex, len(v.Ins))
		for j, in := range v.Ins {
			m, ok := idmap[in.ID]
			if !ok {
				return nil, nil, fmt.Errorf("engine: vertex %d consumed before being scheduled", in.ID)
			}
			ins[j] = m
		}
		nv, err := sub.Apply(v.Op, ins...)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: rebuilding vertex %d: %w", v.ID, err)
		}
		idmap[v.ID] = nv
	}
	return sub, idmap, nil
}

// runUntilDrift lowers the sub-plan to the physical IR and steps its
// nodes in plan order, publishing each computed relation into res under
// the ORIGINAL vertex IDs, until either the plan finishes (false) or a
// density estimate drifts beyond threshold (true). Free nodes are
// skipped: the adaptive executor keeps every intermediate resident so a
// re-optimization can resume from any of them.
func (e *Engine) runUntilDrift(sub *core.Graph, idmap map[int]*core.Vertex, env *core.Env, ann *core.Annotation,
	inputs map[string]*tensor.Dense, threshold float64, res *AdaptiveResult) (bool, error) {
	// Reverse map: sub vertex ID → original vertex ID.
	back := make(map[int]int, len(idmap))
	for orig, nv := range idmap {
		back[nv.ID] = orig
	}
	p, err := plan.Lower(sub, env, ann)
	if err != nil {
		return false, err
	}
	if err := p.Validate(); err != nil {
		return false, err
	}
	// Already-computed intermediates re-enter the sub-plan as sources:
	// preload their scans with the materialized relations.
	preload := make(map[int]*Relation)
	for _, v := range sub.Vertices {
		if !v.IsSource {
			continue
		}
		if r, ok := res.Relations[back[v.ID]]; ok {
			preload[v.ID] = r
		}
	}
	pi := &planInterp{e: e, ctx: context.Background(), inputs: inputs, preload: preload}
	vals := make([]*Relation, len(p.Nodes))
	for _, n := range p.Nodes {
		switch n.Kind {
		case plan.KindScan:
			r, err := pi.Scan(n)
			if err != nil {
				return false, err
			}
			vals[n.ID] = r
		case plan.KindRelayout:
			r, err := pi.Relayout(n, vals[n.Inputs[0]])
			if err != nil {
				return false, err
			}
			vals[n.ID] = r
		case plan.KindCompute:
			ins := make([]*Relation, len(n.Inputs))
			for j, in := range n.Inputs {
				ins[j] = vals[in]
			}
			out, err := pi.Compute(n, ins)
			if err != nil {
				return false, err
			}
			vals[n.ID] = out
			orig := back[n.Vertex]
			res.Relations[orig] = out

			est := sub.Vertices[n.Vertex].Density
			got := out.MeasuredDensity()
			if re := sparse.RelativeError(est, got); re > threshold {
				res.Corrections = append(res.Corrections, DensityCorrection{
					Vertex: orig, Estimated: est, Measured: got, RelErr: re,
				})
				// Record the truth for the re-optimization and halt.
				out.Density = got
				return true, nil
			}
			out.Density = got
		case plan.KindFree:
			// Keep everything resident; see the doc comment.
		}
	}
	return false, nil
}
