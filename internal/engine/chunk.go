package engine

import (
	"fmt"
	"sort"

	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/sparse"
	"matopt/internal/tensor"
)

// Chunk splits a dense matrix into the tuples of the given physical
// format, validating the layout against the per-tuple size bound.
// Sparse target formats extract the non-zeros. It is the layout half of
// Load, shared with the dist runtime's sharded loader; placement (which
// worker or shard each tuple lives on) is the caller's concern.
func Chunk(m *tensor.Dense, f format.Format, maxTupleBytes int64) ([]Tuple, shape.Shape, float64, error) {
	s := shape.New(int64(m.Rows), int64(m.Cols))
	density := m.Density()
	if !f.Valid(s, density, maxTupleBytes) {
		return nil, s, density, fmt.Errorf("engine: %v cannot store a %v matrix", f, s)
	}
	var tuples []Tuple
	switch f.Kind {
	case format.Single:
		tuples = []Tuple{{Key: Key{0, 0}, Dense: m.Clone()}}
	case format.Tile:
		b := int(f.Block)
		for i := 0; i < m.Rows; i += b {
			for j := 0; j < m.Cols; j += b {
				tuples = append(tuples, Tuple{
					Key:   Key{int64(i / b), int64(j / b)},
					Dense: m.Slice(i, minInt(i+b, m.Rows), j, minInt(j+b, m.Cols)),
				})
			}
		}
	case format.RowStrip:
		h := int(f.Block)
		for i := 0; i < m.Rows; i += h {
			tuples = append(tuples, Tuple{
				Key:   Key{int64(i / h), 0},
				Dense: m.Slice(i, minInt(i+h, m.Rows), 0, m.Cols),
			})
		}
	case format.ColStrip:
		w := int(f.Block)
		for j := 0; j < m.Cols; j += w {
			tuples = append(tuples, Tuple{
				Key:   Key{0, int64(j / w)},
				Dense: m.Slice(0, m.Rows, j, minInt(j+w, m.Cols)),
			})
		}
	case format.COO:
		for _, tr := range sparse.FromDenseCOO(m).Triples {
			tuples = append(tuples, Tuple{Key: Key{int64(tr.Row), int64(tr.Col)}, Val: tr.Val, IsVal: true})
		}
		if len(tuples) == 0 { // an all-zero matrix still needs presence
			tuples = []Tuple{{Key: Key{0, 0}, Val: 0, IsVal: true}}
		}
	case format.CSRSingle:
		tuples = []Tuple{{Key: Key{0, 0}, CSR: sparse.FromDense(m)}}
	case format.CSRRowStrip:
		h := int(f.Block)
		whole := sparse.FromDense(m)
		for i := 0; i < m.Rows; i += h {
			tuples = append(tuples, Tuple{
				Key: Key{int64(i / h), 0},
				CSR: whole.RowSlice(i, minInt(i+h, m.Rows)),
			})
		}
	default:
		return nil, s, density, fmt.Errorf("engine: unknown format %v", f)
	}
	return tuples, s, density, nil
}

// Load chunks a dense matrix into the given physical format and
// distributes the tuples across workers.
func (e *Engine) Load(m *tensor.Dense, f format.Format) (*Relation, error) {
	tuples, s, density, err := Chunk(m, f, e.Cluster.MaxTupleBytes)
	if err != nil {
		return nil, err
	}
	return e.place(f, s, density, tuples), nil
}

// Assemble reconstructs the dense matrix a relation stores, validating
// that its tuples tile the shape exactly. It is the layout half of
// Collect, shared with the dist runtime's gather path; tuple order does
// not matter because every tuple writes a disjoint region (or, for COO,
// a distinct element).
func Assemble(r *Relation) (*tensor.Dense, error) {
	m := tensor.NewDense(int(r.Shape.Rows), int(r.Shape.Cols))
	var tuples []Tuple
	for _, p := range r.Parts {
		tuples = append(tuples, p...)
	}
	switch r.Format.Kind {
	case format.Single:
		if len(tuples) != 1 || tuples[0].Dense == nil {
			return nil, fmt.Errorf("engine: malformed single relation (%d tuples)", len(tuples))
		}
		return tuples[0].Dense.Clone(), nil
	case format.Tile:
		b := int(r.Format.Block)
		for _, t := range tuples {
			if t.Dense == nil {
				return nil, fmt.Errorf("engine: tile tuple without dense payload")
			}
			m.SetSlice(int(t.Key.I)*b, int(t.Key.J)*b, t.Dense)
		}
	case format.RowStrip:
		h := int(r.Format.Block)
		for _, t := range tuples {
			m.SetSlice(int(t.Key.I)*h, 0, t.Dense)
		}
	case format.ColStrip:
		w := int(r.Format.Block)
		for _, t := range tuples {
			m.SetSlice(0, int(t.Key.J)*w, t.Dense)
		}
	case format.COO:
		for _, t := range tuples {
			if !t.IsVal {
				return nil, fmt.Errorf("engine: COO tuple without value payload")
			}
			m.Set(int(t.Key.I), int(t.Key.J), t.Val)
		}
	case format.CSRSingle:
		if len(tuples) != 1 || tuples[0].CSR == nil {
			return nil, fmt.Errorf("engine: malformed csr-single relation")
		}
		return tuples[0].CSR.ToDense(), nil
	case format.CSRRowStrip:
		h := int(r.Format.Block)
		for _, t := range tuples {
			m.SetSlice(int(t.Key.I)*h, 0, t.CSR.ToDense())
		}
	default:
		return nil, fmt.Errorf("engine: unknown format %v", r.Format)
	}
	return m, nil
}

// Collect assembles a relation back into a dense matrix, validating that
// its tuples tile the shape exactly.
func (e *Engine) Collect(r *Relation) (*tensor.Dense, error) {
	return Assemble(r)
}

// Transform re-lays-out a relation into the target format: each source
// tuple is sliced into fragments aligned to the target grid, fragments
// are shuffled to the target chunks' home workers, and a group-by stitch
// assembles each target tuple — the engine-level realization of the
// ROWMATRIX/COLMATRIX-style re-layouts.
func (e *Engine) Transform(r *Relation, target format.Format) (*Relation, error) {
	if target == r.Format {
		return r, nil
	}
	// The generic re-chunker goes through the dense (or sparse)
	// assembly; network accounting reflects the repartition pattern.
	moved := r.Bytes()
	switch {
	case target.Kind == format.Single || target.Kind == format.CSRSingle:
		e.chargeNet(moved) // gather onto one worker
		e.chargeInter(moved)
	case r.Format.Kind == format.Single || r.Format.Kind == format.CSRSingle:
		e.chargeNet(moved) // scatter from the holder
	default:
		e.chargeNet(moved / int64(e.workers())) // parallel shuffle per link
		e.chargeInter(moved / int64(e.workers()))
	}
	m, err := e.Collect(r)
	if err != nil {
		return nil, fmt.Errorf("engine: transform assemble: %w", err)
	}
	e.chargeFlops(int64(m.Rows) * int64(m.Cols))
	return e.Load(m, target)
}

// SortTuples orders tuples by key for deterministic iteration; both
// engines rely on this order to make floating-point accumulation
// reproducible.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Key.I != ts[j].Key.I {
			return ts[i].Key.I < ts[j].Key.I
		}
		return ts[i].Key.J < ts[j].Key.J
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
