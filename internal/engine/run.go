package engine

import (
	"context"
	"fmt"

	"matopt/internal/core"
	"matopt/internal/format"
	"matopt/internal/plan"
	"matopt/internal/tensor"
)

// Run executes an annotated compute graph end to end on real data; see
// RunCtx.
func (e *Engine) Run(ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*Relation, error) {
	return e.RunCtx(context.Background(), ann, inputs)
}

// RunCtx lowers an annotated compute graph to the shared physical-plan
// IR and executes it end to end on real data: inputs maps source-vertex
// names to dense matrices, which are loaded in each source's declared
// format; every re-layout and compute node then runs through the
// relational executors.
//
// The plan's free nodes ref-count relations by consumer: once a vertex's
// last consumer has executed, its relation is dropped, bounding peak
// memory on deep graphs. The returned map therefore holds only the
// sinks' relations; callers that need a specific intermediate should use
// RunKeep / RunKeepCtx. The context is checked between nodes, so a
// cancelled context aborts the run at the next vertex boundary with the
// context's error.
func (e *Engine) RunCtx(ctx context.Context, ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*Relation, error) {
	return e.RunKeepCtx(ctx, ann, inputs, nil)
}

// RunKeep is RunKeepCtx without cancellation.
func (e *Engine) RunKeep(ann *core.Annotation, inputs map[string]*tensor.Dense, keep []int) (map[int]*Relation, error) {
	return e.RunKeepCtx(context.Background(), ann, inputs, keep)
}

// RunKeepCtx is RunCtx that additionally retains the relations of the
// vertex IDs listed in keep (on top of the sinks, which are always
// retained), so callers can Collect chosen intermediates after the run.
func (e *Engine) RunKeepCtx(ctx context.Context, ann *core.Annotation, inputs map[string]*tensor.Dense, keep []int) (map[int]*Relation, error) {
	env := core.NewEnv(e.Cluster, format.All())
	p, err := plan.LowerKeep(ann.Graph, env, ann, keep)
	if err != nil {
		return nil, err
	}
	return e.RunPlanCtx(ctx, p, inputs)
}

// RunPlan is RunPlanCtx without cancellation.
func (e *Engine) RunPlan(p *plan.Plan, inputs map[string]*tensor.Dense) (map[int]*Relation, error) {
	return e.RunPlanCtx(context.Background(), p, inputs)
}

// RunPlanCtx validates and executes an already-lowered physical plan,
// returning the retained vertices' relations keyed by vertex ID. This is
// the engine's single execution entry point: Run/RunCtx/RunKeep lower
// and delegate here.
func (e *Engine) RunPlanCtx(ctx context.Context, p *plan.Plan, inputs map[string]*tensor.Dense) (map[int]*Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return plan.Execute[*Relation](p, &planInterp{e: e, ctx: ctx, inputs: inputs})
}

// planInterp is the sequential engine's implementation of the shared
// plan.Interpreter operator interface over materialized relations.
type planInterp struct {
	e      *Engine
	ctx    context.Context
	inputs map[string]*tensor.Dense
	// preload overrides scan nodes by vertex ID with already-materialized
	// relations; the adaptive executor uses it to resume from
	// intermediate results without re-loading them.
	preload map[int]*Relation
}

func (pi *planInterp) Scan(n *plan.Node) (*Relation, error) {
	if err := pi.ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: execution aborted before vertex %d: %w", n.Vertex, err)
	}
	if r, ok := pi.preload[n.Vertex]; ok {
		return r, nil
	}
	m, ok := pi.inputs[n.Source]
	if !ok {
		return nil, fmt.Errorf("engine: no input matrix for source %q", n.Source)
	}
	if int64(m.Rows) != n.OutShape.Rows || int64(m.Cols) != n.OutShape.Cols {
		return nil, fmt.Errorf("engine: input %q is %dx%d, graph declares %v",
			n.Source, m.Rows, m.Cols, n.OutShape)
	}
	r, err := pi.e.Load(m, n.OutFormat)
	if err != nil {
		return nil, fmt.Errorf("engine: loading %q: %w", n.Source, err)
	}
	return r, nil
}

func (pi *planInterp) Relayout(n *plan.Node, in *Relation) (*Relation, error) {
	out, err := pi.e.Transform(in, n.OutFormat)
	if err != nil {
		return nil, fmt.Errorf("engine: transforming input %d of vertex %d: %w", n.Arg, n.Vertex, err)
	}
	return out, nil
}

func (pi *planInterp) Compute(n *plan.Node, ins []*Relation) (*Relation, error) {
	if err := pi.ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: execution aborted before vertex %d: %w", n.Vertex, err)
	}
	exec, ok := executors[n.Name]
	if !ok {
		return nil, fmt.Errorf("engine: no executor for implementation %q", n.Name)
	}
	out, err := exec(pi.e, n.Op, n.OutShape, ins)
	if err != nil {
		return nil, fmt.Errorf("engine: executing vertex %d (%s): %w", n.Vertex, n.Name, err)
	}
	if out.Format != n.OutFormat {
		return nil, fmt.Errorf("engine: vertex %d produced %v, plan says %v",
			n.Vertex, out.Format, n.OutFormat)
	}
	return out, nil
}

func (pi *planInterp) Free(*plan.Node, *Relation) error { return nil }

// RunCollect is Run followed by Collect on every sink, keyed by vertex ID.
func (e *Engine) RunCollect(ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, error) {
	return e.RunCollectCtx(context.Background(), ann, inputs)
}

// RunCollectCtx is RunCtx followed by Collect on every sink.
func (e *Engine) RunCollectCtx(ctx context.Context, ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, error) {
	rels, err := e.RunCtx(ctx, ann, inputs)
	if err != nil {
		return nil, err
	}
	return e.collectAll(rels)
}

// RunPlanCollectCtx is RunPlanCtx followed by Collect on every retained
// vertex — the plan-native equivalent of RunCollectCtx, used by callers
// that already hold a lowered plan (the public Executor, the CLI).
func (e *Engine) RunPlanCollectCtx(ctx context.Context, p *plan.Plan, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, error) {
	rels, err := e.RunPlanCtx(ctx, p, inputs)
	if err != nil {
		return nil, err
	}
	return e.collectAll(rels)
}

// collectAll assembles every retained relation back into a dense matrix.
func (e *Engine) collectAll(rels map[int]*Relation) (map[int]*tensor.Dense, error) {
	out := make(map[int]*tensor.Dense, len(rels))
	for id, r := range rels {
		m, err := e.Collect(r)
		if err != nil {
			return nil, fmt.Errorf("engine: collecting sink %d: %w", id, err)
		}
		out[id] = m
	}
	return out, nil
}
