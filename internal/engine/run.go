package engine

import (
	"context"
	"fmt"

	"matopt/internal/core"
	"matopt/internal/tensor"
)

// Run executes an annotated compute graph end to end on real data; see
// RunCtx.
func (e *Engine) Run(ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*Relation, error) {
	return e.RunCtx(context.Background(), ann, inputs)
}

// RunCtx executes an annotated compute graph end to end on real data:
// inputs maps source-vertex names to dense matrices, which are loaded in
// each source's declared format; every edge transformation and every
// vertex implementation then runs through the relational executors.
//
// Relations are ref-counted by consumer edge: once a vertex's last
// consumer has executed, its relation is dropped, bounding peak memory
// on deep graphs. The returned map therefore holds only the sinks'
// relations; callers that need a specific intermediate should use
// RunKeep / RunKeepCtx. The context is checked between vertices, so a
// cancelled context aborts the run at the next vertex boundary with the
// context's error.
func (e *Engine) RunCtx(ctx context.Context, ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*Relation, error) {
	return e.RunKeepCtx(ctx, ann, inputs, nil)
}

// RunKeep is RunKeepCtx without cancellation.
func (e *Engine) RunKeep(ann *core.Annotation, inputs map[string]*tensor.Dense, keep []int) (map[int]*Relation, error) {
	return e.RunKeepCtx(context.Background(), ann, inputs, keep)
}

// RunKeepCtx is RunCtx that additionally retains the relations of the
// vertex IDs listed in keep (on top of the sinks, which are always
// retained), so callers can Collect chosen intermediates after the run.
func (e *Engine) RunKeepCtx(ctx context.Context, ann *core.Annotation, inputs map[string]*tensor.Dense, keep []int) (map[int]*Relation, error) {
	g := ann.Graph
	// refs[id] counts the consumer edges of vertex id that have not yet
	// executed; a relation is dropped when its count reaches zero unless
	// the vertex is retained (a sink or explicitly kept).
	refs := make(map[int]int, len(g.Vertices))
	retain := make(map[int]bool, len(keep))
	for _, v := range g.Vertices {
		for _, in := range v.Ins {
			refs[in.ID]++
		}
	}
	for _, v := range g.Sinks() {
		retain[v.ID] = true
	}
	for _, id := range keep {
		retain[id] = true
	}
	rels := make(map[int]*Relation, len(g.Vertices))
	for _, v := range g.Vertices {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: execution aborted before vertex %d: %w", v.ID, err)
		}
		if v.IsSource {
			m, ok := inputs[v.Name]
			if !ok {
				return nil, fmt.Errorf("engine: no input matrix for source %q", v.Name)
			}
			if int64(m.Rows) != v.Shape.Rows || int64(m.Cols) != v.Shape.Cols {
				return nil, fmt.Errorf("engine: input %q is %dx%d, graph declares %v",
					v.Name, m.Rows, m.Cols, v.Shape)
			}
			r, err := e.Load(m, v.SrcFormat)
			if err != nil {
				return nil, fmt.Errorf("engine: loading %q: %w", v.Name, err)
			}
			rels[v.ID] = r
			continue
		}
		im := ann.VertexImpl[v.ID]
		if im == nil {
			return nil, fmt.Errorf("engine: vertex %d has no implementation", v.ID)
		}
		exec, ok := executors[im.Name]
		if !ok {
			return nil, fmt.Errorf("engine: no executor for implementation %q", im.Name)
		}
		ins := make([]*Relation, len(v.Ins))
		for j, in := range v.Ins {
			tr := ann.EdgeTrans[core.EdgeKey{To: v.ID, Arg: j}]
			if tr == nil {
				return nil, fmt.Errorf("engine: edge into vertex %d arg %d has no transformation", v.ID, j)
			}
			r := rels[in.ID]
			if r == nil {
				return nil, fmt.Errorf("engine: vertex %d input %d (vertex %d) was freed early", v.ID, j, in.ID)
			}
			if !tr.Identity() {
				var err error
				r, err = e.Transform(r, tr.Target())
				if err != nil {
					return nil, fmt.Errorf("engine: transforming input %d of vertex %d: %w", j, v.ID, err)
				}
			}
			ins[j] = r
		}
		out, err := exec(e, v.Op, v.Shape, ins)
		if err != nil {
			return nil, fmt.Errorf("engine: executing vertex %d (%s): %w", v.ID, im.Name, err)
		}
		if out.Format != ann.VertexFormat[v.ID] {
			return nil, fmt.Errorf("engine: vertex %d produced %v, annotation says %v",
				v.ID, out.Format, ann.VertexFormat[v.ID])
		}
		rels[v.ID] = out
		// This vertex has consumed its inputs: release producers whose
		// last consumer just ran.
		for _, in := range v.Ins {
			refs[in.ID]--
			if refs[in.ID] == 0 && !retain[in.ID] {
				delete(rels, in.ID)
			}
		}
	}
	return rels, nil
}

// RunCollect is Run followed by Collect on every sink, keyed by vertex ID.
func (e *Engine) RunCollect(ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, error) {
	return e.RunCollectCtx(context.Background(), ann, inputs)
}

// RunCollectCtx is RunCtx followed by Collect on every sink.
func (e *Engine) RunCollectCtx(ctx context.Context, ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, error) {
	rels, err := e.RunCtx(ctx, ann, inputs)
	if err != nil {
		return nil, err
	}
	out := make(map[int]*tensor.Dense)
	for _, v := range ann.Graph.Sinks() {
		m, err := e.Collect(rels[v.ID])
		if err != nil {
			return nil, fmt.Errorf("engine: collecting sink %d: %w", v.ID, err)
		}
		out[v.ID] = m
	}
	return out, nil
}
