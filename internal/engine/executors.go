package engine

import (
	"fmt"

	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/sparse"
	"matopt/internal/tensor"
)

// execFn executes one atomic computation implementation over input
// relations that are already in the implementation's required formats.
type execFn func(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error)

// executors dispatches on implementation name; the names are the stable
// identifiers shared with internal/impl.
var executors = map[string]execFn{}

func init() {
	executors["mm-single-single"] = execMMSingleSingle
	executors["mm-bcast-single-colstrip"] = execMMBcastSingleColStrip
	executors["mm-rowstrip-bcast-single"] = execMMRowStripBcastSingle
	executors["mm-rowstrip-colstrip"] = execMMRowStripColStrip
	executors["mm-colstrip-rowstrip-agg"] = execMMColStripRowStripAgg
	executors["mm-tile-tile-shuffle"] = execMMTileTile
	executors["mm-tile-tile-bcast"] = execMMTileTile
	executors["mm-bcast-single-tile"] = execMMBcastSingleTile
	executors["mm-tile-bcast-single"] = execMMTileBcastSingle
	executors["mm-csr-single-single"] = execMMCSRSingleSingle
	executors["mm-bcast-csr-rowstrip-agg"] = execMMBcastCSRRowStripAgg
	executors["mm-csr-rowstrip-bcast-single"] = execMMCSRRowStripBcastSingle
	executors["mm-bcast-coo-single"] = execMMBcastCOOSingle

	for _, name := range []string{"add-single", "sub-single", "hadamard-single"} {
		executors[name] = execEWSingle
	}
	for _, name := range []string{"add-copart", "sub-copart", "hadamard-copart"} {
		executors[name] = execEWCoPart
	}
	for _, name := range []string{"relu-map", "relugrad-map", "sigmoid-map", "exp-map", "neg-map", "scalarmul-map"} {
		executors[name] = execMap
	}
	executors["softmax-single"] = execMap
	executors["softmax-rowstrip"] = execMap
	executors["addbias-single"] = execAddBias
	executors["addbias-rowstrip-bcast"] = execAddBias
	executors["rowsums-single"] = execRowSums
	executors["rowsums-rowstrip"] = execRowSums
	executors["colsums-single"] = execColSums
	executors["colsums-colstrip"] = execColSums
	executors["transpose-single"] = execTransposeDense
	executors["transpose-tile"] = execTransposeDense
	executors["transpose-strip"] = execTransposeDense
	executors["transpose-csr-single"] = execTransposeCSR
	executors["inverse-single"] = execInverse
}

func singleDense(r *Relation) (*tensor.Dense, error) {
	ts := allOf(r)
	if len(ts) != 1 || ts[0].Dense == nil {
		return nil, fmt.Errorf("engine: relation %v is not a dense single", r)
	}
	return ts[0].Dense, nil
}

func allOf(r *Relation) []Tuple {
	var out []Tuple
	for _, p := range r.Parts {
		out = append(out, p...)
	}
	SortTuples(out)
	return out
}

func mmFlops(a, b *tensor.Dense) int64 { return 2 * int64(a.Rows) * int64(a.Cols) * int64(b.Cols) }

func execMMSingleSingle(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	a, err := singleDense(ins[0])
	if err != nil {
		return nil, err
	}
	b, err := singleDense(ins[1])
	if err != nil {
		return nil, err
	}
	e.chargeNet(min64(a.Bytes(), b.Bytes()))
	e.chargeFlops(mmFlops(a, b))
	out := e.kern().MatMul(a, b)
	return e.place(format.NewSingle(), outShape, out.Density(), []Tuple{{Key: Key{0, 0}, Dense: out}}), nil
}

func execMMBcastSingleColStrip(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	a, err := singleDense(ins[0])
	if err != nil {
		return nil, err
	}
	e.chargeNet(a.Bytes() * int64(e.workers()-1))
	var out []Tuple
	for _, t := range allOf(ins[1]) {
		e.chargeFlops(mmFlops(a, t.Dense))
		out = append(out, Tuple{Key: t.Key, Dense: e.kern().MatMul(a, t.Dense)})
	}
	return e.place(ins[1].Format, outShape, 1, out), nil
}

func execMMRowStripBcastSingle(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	b, err := singleDense(ins[1])
	if err != nil {
		return nil, err
	}
	e.chargeNet(b.Bytes() * int64(e.workers()-1))
	var out []Tuple
	for _, t := range allOf(ins[0]) {
		e.chargeFlops(mmFlops(t.Dense, b))
		out = append(out, Tuple{Key: t.Key, Dense: e.kern().MatMul(t.Dense, b)})
	}
	return e.place(ins[0].Format, outShape, 1, out), nil
}

func execMMRowStripColStrip(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	as, bs := allOf(ins[0]), allOf(ins[1])
	small := ins[0].Bytes()
	if b := ins[1].Bytes(); b < small {
		small = b
	}
	e.chargeNet(small * int64(e.workers()-1))
	var out []Tuple
	for _, ta := range as {
		for _, tb := range bs {
			e.chargeFlops(mmFlops(ta.Dense, tb.Dense))
			out = append(out, Tuple{Key: Key{ta.Key.I, tb.Key.J}, Dense: e.kern().MatMul(ta.Dense, tb.Dense)})
		}
	}
	e.chargeInter(outShape.Bytes() / int64(e.workers()))
	return e.place(format.NewTile(ins[0].Format.Block), outShape, 1, out), nil
}

func execMMColStripRowStripAgg(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	kc := e.kern()
	as, bs := allOf(ins[0]), allOf(ins[1])
	bByKey := make(map[int64]*tensor.Dense, len(bs))
	for _, t := range bs {
		bByKey[t.Key.I] = t.Dense
	}
	e.chargeNet((ins[0].Bytes() + ins[1].Bytes()) / int64(e.workers()))
	acc := tensor.NewDense(int(outShape.Rows), int(outShape.Cols))
	for _, ta := range as {
		tb, ok := bByKey[ta.Key.J]
		if !ok {
			return nil, fmt.Errorf("engine: co-partition join missed strip %d", ta.Key.J)
		}
		e.chargeFlops(mmFlops(ta.Dense, tb))
		// Materialize the partial product and fold it with AddInPlace —
		// the same operation sequence the dist runtime's group-by-SUM
		// reduce replays, keeping the two engines bit-identical.
		kc.AddInPlace(acc, kc.MatMul(ta.Dense, tb))
	}
	e.chargeInter(acc.Bytes())
	e.chargeNet(acc.Bytes()) // tree reduction of partials
	return e.place(format.NewSingle(), outShape, acc.Density(), []Tuple{{Key: Key{0, 0}, Dense: acc}}), nil
}

// execMMTileTile covers both the shuffle-join and broadcast-join tile
// strategies: the arithmetic is identical, the strategies differ only in
// movement, which is charged per variant below.
func execMMTileTile(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	kc := e.kern()
	bSize := ins[0].Format.Block
	as, bs := allOf(ins[0]), allOf(ins[1])
	bByRow := make(map[int64][]Tuple)
	for _, t := range bs {
		bByRow[t.Key.I] = append(bByRow[t.Key.I], t)
	}
	e.chargeNet((ins[0].Bytes() + ins[1].Bytes()) / int64(e.workers()))
	acc := make(map[Key]*tensor.Dense)
	for _, ta := range as {
		for _, tb := range bByRow[ta.Key.J] {
			k := Key{ta.Key.I, tb.Key.J}
			e.chargeFlops(mmFlops(ta.Dense, tb.Dense))
			prod := kc.MatMul(ta.Dense, tb.Dense)
			e.chargeInter(prod.Bytes())
			if cur, ok := acc[k]; ok {
				kc.AddInPlace(cur, prod)
			} else {
				acc[k] = prod
			}
		}
	}
	var out []Tuple
	for k, m := range acc {
		out = append(out, Tuple{Key: k, Dense: m})
	}
	return e.place(format.NewTile(bSize), outShape, 1, out), nil
}

func execMMBcastSingleTile(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	kc := e.kern()
	a, err := singleDense(ins[0])
	if err != nil {
		return nil, err
	}
	e.chargeNet(a.Bytes() * int64(e.workers()-1))
	b := int(ins[1].Format.Block)
	acc := make(map[int64]*tensor.Dense) // by tile column
	for _, tb := range allOf(ins[1]) {
		c0 := int(tb.Key.I) * b
		aSlice := a.Slice(0, a.Rows, c0, c0+tb.Dense.Rows)
		e.chargeFlops(mmFlops(aSlice, tb.Dense))
		prod := kc.MatMul(aSlice, tb.Dense)
		if cur, ok := acc[tb.Key.J]; ok {
			kc.AddInPlace(cur, prod)
		} else {
			acc[tb.Key.J] = prod
		}
	}
	var out []Tuple
	for j, m := range acc {
		out = append(out, Tuple{Key: Key{0, j}, Dense: m})
	}
	return e.place(format.NewColStrip(ins[1].Format.Block), outShape, 1, out), nil
}

func execMMTileBcastSingle(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	kc := e.kern()
	b, err := singleDense(ins[1])
	if err != nil {
		return nil, err
	}
	e.chargeNet(b.Bytes() * int64(e.workers()-1))
	bk := int(ins[0].Format.Block)
	acc := make(map[int64]*tensor.Dense) // by tile row
	for _, ta := range allOf(ins[0]) {
		r0 := int(ta.Key.J) * bk
		bSlice := b.Slice(r0, r0+ta.Dense.Cols, 0, b.Cols)
		e.chargeFlops(mmFlops(ta.Dense, bSlice))
		prod := kc.MatMul(ta.Dense, bSlice)
		if cur, ok := acc[ta.Key.I]; ok {
			kc.AddInPlace(cur, prod)
		} else {
			acc[ta.Key.I] = prod
		}
	}
	var out []Tuple
	for i, m := range acc {
		out = append(out, Tuple{Key: Key{i, 0}, Dense: m})
	}
	return e.place(format.NewRowStrip(ins[0].Format.Block), outShape, 1, out), nil
}

func singleCSR(r *Relation) (*sparse.CSR, error) {
	ts := allOf(r)
	if len(ts) != 1 || ts[0].CSR == nil {
		return nil, fmt.Errorf("engine: relation %v is not a csr single", r)
	}
	return ts[0].CSR, nil
}

func execMMCSRSingleSingle(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	a, err := singleCSR(ins[0])
	if err != nil {
		return nil, err
	}
	b, err := singleDense(ins[1])
	if err != nil {
		return nil, err
	}
	e.chargeNet(min64(a.Bytes(), b.Bytes()))
	e.chargeFlops(2 * int64(a.NNZ()) * int64(b.Cols))
	out := a.MulDenseK(e.kern(), b)
	return e.place(format.NewSingle(), outShape, out.Density(), []Tuple{{Key: Key{0, 0}, Dense: out}}), nil
}

// CSRColSlice extracts columns [c0, c1) of a CSR matrix, renumbering
// column indices to the slice; shared with the dist runtime's sparse
// aggregation operator.
func CSRColSlice(m *sparse.CSR, c0, c1 int) *sparse.CSR {
	rowPtr := make([]int, m.Rows+1)
	var colIdx []int
	var val []float64
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if c := m.ColIdx[k]; c >= c0 && c < c1 {
				colIdx = append(colIdx, c-c0)
				val = append(val, m.Val[k])
			}
		}
		rowPtr[i+1] = len(val)
	}
	out, err := sparse.NewCSR(m.Rows, c1-c0, rowPtr, colIdx, val)
	if err != nil {
		panic(err) // slice of a valid CSR is valid
	}
	return out
}

func execMMBcastCSRRowStripAgg(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	kc := e.kern()
	a, err := singleCSR(ins[0])
	if err != nil {
		return nil, err
	}
	e.chargeNet(a.Bytes() * int64(e.workers()-1))
	h := int(ins[1].Format.Block)
	acc := tensor.NewDense(int(outShape.Rows), int(outShape.Cols))
	for _, tb := range allOf(ins[1]) {
		r0 := int(tb.Key.I) * h
		aSlice := CSRColSlice(a, r0, r0+tb.Dense.Rows)
		e.chargeFlops(2 * int64(aSlice.NNZ()) * int64(tb.Dense.Cols))
		kc.AddInPlace(acc, aSlice.MulDenseK(kc, tb.Dense))
	}
	e.chargeNet(acc.Bytes()) // reduce partials
	return e.place(format.NewSingle(), outShape, acc.Density(), []Tuple{{Key: Key{0, 0}, Dense: acc}}), nil
}

func execMMCSRRowStripBcastSingle(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	b, err := singleDense(ins[1])
	if err != nil {
		return nil, err
	}
	e.chargeNet(b.Bytes() * int64(e.workers()-1))
	var out []Tuple
	for _, ta := range allOf(ins[0]) {
		e.chargeFlops(2 * int64(ta.CSR.NNZ()) * int64(b.Cols))
		out = append(out, Tuple{Key: ta.Key, Dense: ta.CSR.MulDenseK(e.kern(), b)})
	}
	return e.place(format.NewRowStrip(ins[0].Format.Block), outShape, 1, out), nil
}

func execMMBcastCOOSingle(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	b, err := singleDense(ins[1])
	if err != nil {
		return nil, err
	}
	e.chargeNet(b.Bytes() * int64(e.workers()-1))
	acc := tensor.NewDense(int(outShape.Rows), int(outShape.Cols))
	for _, t := range allOf(ins[0]) {
		if !t.IsVal {
			return nil, fmt.Errorf("engine: COO relation holds a non-triple tuple")
		}
		if t.Val == 0 {
			continue
		}
		e.chargeFlops(2 * int64(b.Cols))
		row := acc.Data[int(t.Key.I)*acc.Cols : (int(t.Key.I)+1)*acc.Cols]
		brow := b.Data[int(t.Key.J)*b.Cols : (int(t.Key.J)+1)*b.Cols]
		for j, bv := range brow {
			row[j] += t.Val * bv
		}
	}
	e.chargeNet(acc.Bytes())
	return e.place(format.NewSingle(), outShape, acc.Density(), []Tuple{{Key: Key{0, 0}, Dense: acc}}), nil
}

func ewKernel(kc tensor.K, k op.Kind) func(a, b *tensor.Dense) *tensor.Dense {
	switch k {
	case op.Add:
		return kc.Add
	case op.Sub:
		return kc.Sub
	case op.Hadamard:
		return kc.Hadamard
	}
	panic(fmt.Sprintf("engine: %v is not an elementwise op", k))
}

func execEWSingle(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	a, err := singleDense(ins[0])
	if err != nil {
		return nil, err
	}
	b, err := singleDense(ins[1])
	if err != nil {
		return nil, err
	}
	e.chargeNet(min64(a.Bytes(), b.Bytes()))
	e.chargeFlops(int64(outShape.Elems()))
	out := ewKernel(e.kern(), o.Kind)(a, b)
	return e.place(format.NewSingle(), outShape, out.Density(), []Tuple{{Key: Key{0, 0}, Dense: out}}), nil
}

func execEWCoPart(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	bByKey := make(map[Key]*tensor.Dense)
	for _, t := range allOf(ins[1]) {
		bByKey[t.Key] = t.Dense
	}
	e.chargeNet(min64(ins[0].Bytes(), ins[1].Bytes()) / int64(e.workers()))
	e.chargeFlops(int64(outShape.Elems()))
	kern := ewKernel(e.kern(), o.Kind)
	var out []Tuple
	for _, ta := range allOf(ins[0]) {
		tb, ok := bByKey[ta.Key]
		if !ok {
			return nil, fmt.Errorf("engine: co-partition join missed key %v", ta.Key)
		}
		out = append(out, Tuple{Key: ta.Key, Dense: kern(ta.Dense, tb)})
	}
	return e.place(ins[0].Format, outShape, 1, out), nil
}

func mapKernel(kc tensor.K, o op.Op) func(*tensor.Dense) *tensor.Dense {
	switch o.Kind {
	case op.ReLU:
		return kc.ReLU
	case op.ReLUGrad:
		return kc.ReLUGrad
	case op.Sigmoid:
		return kc.Sigmoid
	case op.Exp:
		return kc.Exp
	case op.Neg:
		return kc.Neg
	case op.Softmax:
		return kc.Softmax
	case op.ScalarMul:
		s := o.Scalar
		return func(m *tensor.Dense) *tensor.Dense { return kc.Scale(m, s) }
	}
	panic(fmt.Sprintf("engine: %v is not a map op", o.Kind))
}

func execMap(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	kern := mapKernel(e.kern(), o)
	var out []Tuple
	for _, t := range allOf(ins[0]) {
		switch {
		case t.Dense != nil:
			e.chargeFlops(int64(len(t.Dense.Data)))
			out = append(out, Tuple{Key: t.Key, Dense: kern(t.Dense)})
		case t.CSR != nil:
			e.chargeFlops(int64(t.CSR.NNZ()))
			out = append(out, Tuple{Key: t.Key, CSR: sparse.FromDense(kern(t.CSR.ToDense()))})
		case t.IsVal:
			d := tensor.FromRows([][]float64{{t.Val}})
			out = append(out, Tuple{Key: t.Key, Val: kern(d).At(0, 0), IsVal: true})
		}
	}
	return e.place(ins[0].Format, outShape, ins[0].Density, out), nil
}

func execAddBias(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	bias, err := singleDense(ins[1])
	if err != nil {
		return nil, err
	}
	e.chargeNet(bias.Bytes() * int64(e.workers()-1))
	var out []Tuple
	for _, t := range allOf(ins[0]) {
		e.chargeFlops(int64(len(t.Dense.Data)))
		out = append(out, Tuple{Key: t.Key, Dense: e.kern().AddBias(t.Dense, bias)})
	}
	return e.place(ins[0].Format, outShape, 1, out), nil
}

func execRowSums(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	var out []Tuple
	for _, t := range allOf(ins[0]) {
		e.chargeFlops(int64(len(t.Dense.Data)))
		out = append(out, Tuple{Key: t.Key, Dense: e.kern().RowSums(t.Dense)})
	}
	return e.place(ins[0].Format, outShape, 1, out), nil
}

func execColSums(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	var out []Tuple
	for _, t := range allOf(ins[0]) {
		e.chargeFlops(int64(len(t.Dense.Data)))
		out = append(out, Tuple{Key: t.Key, Dense: e.kern().ColSums(t.Dense)})
	}
	return e.place(ins[0].Format, outShape, 1, out), nil
}

func execTransposeDense(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	in := ins[0]
	var outFmt format.Format
	switch in.Format.Kind {
	case format.Single:
		outFmt = format.NewSingle()
	case format.Tile:
		outFmt = in.Format
		e.chargeNet(in.Bytes() / int64(e.workers()))
	case format.RowStrip:
		outFmt = format.NewColStrip(in.Format.Block)
	case format.ColStrip:
		outFmt = format.NewRowStrip(in.Format.Block)
	default:
		return nil, fmt.Errorf("engine: transpose executor got %v", in.Format)
	}
	var out []Tuple
	for _, t := range allOf(in) {
		e.chargeFlops(int64(len(t.Dense.Data)))
		out = append(out, Tuple{Key: Key{t.Key.J, t.Key.I}, Dense: e.kern().Transpose(t.Dense)})
	}
	return e.place(outFmt, outShape, in.Density, out), nil
}

func execTransposeCSR(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	a, err := singleCSR(ins[0])
	if err != nil {
		return nil, err
	}
	e.chargeFlops(2 * int64(a.NNZ()))
	out := sparse.FromDense(e.kern().Transpose(a.ToDense()))
	return e.place(format.NewCSRSingle(), outShape, ins[0].Density, []Tuple{{Key: Key{0, 0}, CSR: out}}), nil
}

func execInverse(e *Engine, o op.Op, outShape shape.Shape, ins []*Relation) (*Relation, error) {
	a, err := singleDense(ins[0])
	if err != nil {
		return nil, err
	}
	n := int64(a.Rows)
	e.chargeFlops(2 * n * n * n)
	inv, err := tensor.Inverse(a)
	if err != nil {
		return nil, err
	}
	return e.place(format.NewSingle(), outShape, 1, []Tuple{{Key: Key{0, 0}, Dense: inv}}), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
