package engine

import (
	"math/rand"
	"testing"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
)

// runExec loads inputs in the given formats, runs one named executor and
// collects the result.
func runExec(t *testing.T, name string, o op.Op, outShape shape.Shape, mats []*tensor.Dense, fmts []format.Format) *tensor.Dense {
	t.Helper()
	e := New(costmodel.LocalTest(4))
	rels := make([]*Relation, len(mats))
	for i := range mats {
		r, err := e.Load(mats[i], fmts[i])
		if err != nil {
			t.Fatalf("%s: load %d: %v", name, i, err)
		}
		rels[i] = r
	}
	exec, ok := executors[name]
	if !ok {
		t.Fatalf("no executor %q", name)
	}
	out, err := exec(e, o, outShape, rels)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	got, err := e.Collect(out)
	if err != nil {
		t.Fatalf("%s: collect: %v", name, err)
	}
	return got
}

func TestUnaryAndBiasExecutors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandNormal(rng, 250, 120)
	bias := tensor.RandNormal(rng, 1, 120)
	s := shape.New(250, 120)

	cases := []struct {
		name string
		o    op.Op
		out  shape.Shape
		ins  []*tensor.Dense
		fmts []format.Format
		want *tensor.Dense
	}{
		{"relu-map", op.Op{Kind: op.ReLU}, s, []*tensor.Dense{m},
			[]format.Format{format.NewTile(100)}, tensor.ReLU(m)},
		{"relugrad-map", op.Op{Kind: op.ReLUGrad}, s, []*tensor.Dense{m},
			[]format.Format{format.NewRowStrip(100)}, tensor.ReLUGrad(m)},
		{"sigmoid-map", op.Op{Kind: op.Sigmoid}, s, []*tensor.Dense{m},
			[]format.Format{format.NewColStrip(100)}, tensor.Sigmoid(m)},
		{"exp-map", op.Op{Kind: op.Exp}, s, []*tensor.Dense{m},
			[]format.Format{format.NewSingle()}, tensor.Exp(m)},
		{"neg-map", op.Op{Kind: op.Neg}, s, []*tensor.Dense{m},
			[]format.Format{format.NewTile(100)}, tensor.Neg(m)},
		{"scalarmul-map", op.Op{Kind: op.ScalarMul, Scalar: -2.5}, s, []*tensor.Dense{m},
			[]format.Format{format.NewTile(100)}, tensor.Scale(m, -2.5)},
		{"softmax-single", op.Op{Kind: op.Softmax}, s, []*tensor.Dense{m},
			[]format.Format{format.NewSingle()}, tensor.Softmax(m)},
		{"softmax-rowstrip", op.Op{Kind: op.Softmax}, s, []*tensor.Dense{m},
			[]format.Format{format.NewRowStrip(100)}, tensor.Softmax(m)},
		{"addbias-single", op.Op{Kind: op.AddBias}, s, []*tensor.Dense{m, bias},
			[]format.Format{format.NewSingle(), format.NewSingle()}, tensor.AddBias(m, bias)},
		{"addbias-rowstrip-bcast", op.Op{Kind: op.AddBias}, s, []*tensor.Dense{m, bias},
			[]format.Format{format.NewRowStrip(100), format.NewSingle()}, tensor.AddBias(m, bias)},
		{"rowsums-single", op.Op{Kind: op.RowSums}, shape.New(250, 1), []*tensor.Dense{m},
			[]format.Format{format.NewSingle()}, tensor.RowSums(m)},
		{"rowsums-rowstrip", op.Op{Kind: op.RowSums}, shape.New(250, 1), []*tensor.Dense{m},
			[]format.Format{format.NewRowStrip(100)}, tensor.RowSums(m)},
		{"colsums-single", op.Op{Kind: op.ColSums}, shape.New(1, 120), []*tensor.Dense{m},
			[]format.Format{format.NewSingle()}, tensor.ColSums(m)},
		{"colsums-colstrip", op.Op{Kind: op.ColSums}, shape.New(1, 120), []*tensor.Dense{m},
			[]format.Format{format.NewColStrip(100)}, tensor.ColSums(m)},
		{"sub-single", op.Op{Kind: op.Sub}, s, []*tensor.Dense{m, tensor.Scale(m, 0.5)},
			[]format.Format{format.NewSingle(), format.NewSingle()}, tensor.Scale(m, 0.5)},
		{"hadamard-copart", op.Op{Kind: op.Hadamard}, s, []*tensor.Dense{m, m},
			[]format.Format{format.NewTile(100), format.NewTile(100)}, tensor.Hadamard(m, m)},
	}
	for _, c := range cases {
		got := runExec(t, c.name, c.o, c.out, c.ins, c.fmts)
		if diff := tensor.MaxAbsDiff(got, c.want); diff > 1e-9 {
			t.Errorf("%s deviates by %g", c.name, diff)
		}
	}
}

func TestTransposeExecutors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := tensor.RandNormal(rng, 240, 130)
	want := tensor.Transpose(m)
	out := shape.New(130, 240)
	for _, c := range []struct {
		name string
		f    format.Format
	}{
		{"transpose-single", format.NewSingle()},
		{"transpose-tile", format.NewTile(100)},
		{"transpose-strip", format.NewRowStrip(100)},
		{"transpose-strip", format.NewColStrip(100)},
	} {
		got := runExec(t, c.name, op.Op{Kind: op.Transpose}, out, []*tensor.Dense{m}, []format.Format{c.f})
		if diff := tensor.MaxAbsDiff(got, want); diff > 1e-12 {
			t.Errorf("%s from %v deviates by %g", c.name, c.f, diff)
		}
	}
	sp := tensor.RandSparse(rng, 240, 130, 0.1)
	got := runExec(t, "transpose-csr-single", op.Op{Kind: op.Transpose}, out,
		[]*tensor.Dense{sp}, []format.Format{format.NewCSRSingle()})
	if diff := tensor.MaxAbsDiff(got, tensor.Transpose(sp)); diff > 1e-12 {
		t.Errorf("transpose-csr-single deviates by %g", diff)
	}
}

func TestReluOnSparseRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.RandSparse(rng, 300, 200, 0.05)
	// Make some entries negative so relu has work to do.
	for i := range m.Data {
		if m.Data[i] != 0 && i%3 == 0 {
			m.Data[i] = -m.Data[i]
		}
	}
	got := runExec(t, "relu-map", op.Op{Kind: op.ReLU}, shape.New(300, 200),
		[]*tensor.Dense{m}, []format.Format{format.NewCSRSingle()})
	if diff := tensor.MaxAbsDiff(got, tensor.ReLU(m)); diff > 1e-12 {
		t.Errorf("relu on CSR deviates by %g", diff)
	}
}

func TestInverseExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := tensor.RandNormal(rng, 80, 80)
	for i := 0; i < 80; i++ {
		m.Set(i, i, m.At(i, i)+80)
	}
	got := runExec(t, "inverse-single", op.Op{Kind: op.Inverse}, shape.New(80, 80),
		[]*tensor.Dense{m}, []format.Format{format.NewSingle()})
	if diff := tensor.MaxAbsDiff(tensor.MatMul(m, got), tensor.Identity(80)); diff > 1e-8 {
		t.Errorf("inverse executor off by %g", diff)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := New(costmodel.LocalTest(4))
	m := tensor.RandNormal(rng, 200, 200)
	ra, err := e.Load(m, format.NewSingle())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := e.Load(m, format.NewColStrip(100))
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if _, err := executors["mm-bcast-single-colstrip"](e, op.Op{Kind: op.MatMul}, shape.New(200, 200), []*Relation{ra, rb}); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.NetBytes <= before.NetBytes {
		t.Error("broadcast moved no bytes")
	}
	if after.FLOPs-before.FLOPs != 2*200*200*200 {
		t.Errorf("FLOPs delta = %d", after.FLOPs-before.FLOPs)
	}
	e.ResetStats()
	if e.Stats() != (Stats{}) {
		t.Error("ResetStats left residue")
	}
}
