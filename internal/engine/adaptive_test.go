package engine

import (
	"math/rand"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
)

func TestMeasuredDensity(t *testing.T) {
	e := New(costmodel.LocalTest(3))
	m := tensor.FromRows([][]float64{{1, 0}, {0, 2}})
	for _, f := range []format.Format{format.NewSingle(), format.NewCSRSingle(), format.NewCOO()} {
		r, err := e.Load(m, f)
		if err != nil {
			t.Fatal(err)
		}
		if d := r.MeasuredDensity(); d != 0.5 {
			t.Errorf("%v: MeasuredDensity = %v, want 0.5", f, d)
		}
	}
}

// A Hadamard chain over sparse inputs: the independence assumption
// under-estimates density when the operands share their support, so the
// adaptive executor must detect the drift, re-optimize, and still
// produce the right numbers.
func TestRunAdaptiveDetectsDensityDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := core.NewGraph()
	s := shape.New(200, 200)
	// Declared density 0.2 ⇒ the optimizer estimates 0.2·0.2 = 0.04 for
	// the product; the actual inputs share an identical support, so the
	// true product density is 0.2 — a relative error of 5.
	a := g.Input("a", s, 0.2, format.NewCSRSingle())
	b := g.Input("b", s, 0.2, format.NewCSRSingle())
	had := g.MustApply(op.Op{Kind: op.Hadamard}, a, b)
	g.MustApply(op.Op{Kind: op.ScalarMul, Scalar: 2}, had)

	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	base := tensor.RandSparse(rng, 200, 200, 0.2)
	inputs := map[string]*tensor.Dense{"a": base, "b": base.Clone()}

	e := New(env.Cluster)
	res, err := e.RunAdaptive(g, env, inputs, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reoptimized == 0 || len(res.Corrections) == 0 {
		t.Fatalf("drift not detected: %+v", res)
	}
	c := res.Corrections[0]
	if c.RelErr <= 1.2 {
		t.Errorf("recorded relative error %v should exceed the threshold", c.RelErr)
	}
	// Numerics must survive the re-planning.
	sink := g.Sinks()[0]
	got, err := e.Collect(res.Relations[sink.ID])
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Scale(tensor.Hadamard(base, base), 2)
	if diff := tensor.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Errorf("adaptive result deviates by %g", diff)
	}
}

// With accurate estimates the adaptive executor must not re-optimize.
func TestRunAdaptiveNoDriftNoReplan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := core.NewGraph()
	s := shape.New(150, 150)
	a := g.Input("a", s, 1, format.NewTile(100))
	b := g.Input("b", s, 1, format.NewTile(100))
	mm := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	g.MustApply(op.Op{Kind: op.ReLU}, mm)

	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	inputs := map[string]*tensor.Dense{
		// Strictly positive inputs keep every intermediate fully dense,
		// matching the declared density exactly (relu keeps density 1).
		"a": tensor.Apply(tensor.RandNormal(rng, 150, 150), abs1),
		"b": tensor.Apply(tensor.RandNormal(rng, 150, 150), abs1),
	}
	e := New(env.Cluster)
	res, err := e.RunAdaptive(g, env, inputs, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reoptimized != 0 {
		t.Fatalf("spurious re-optimization: %+v", res.Corrections)
	}
	sink := g.Sinks()[0]
	got, err := e.Collect(res.Relations[sink.ID])
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.ReLU(tensor.MatMul(inputs["a"], inputs["b"]))
	if diff := tensor.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Errorf("result deviates by %g", diff)
	}
}

func TestRunAdaptiveRejectsBadThreshold(t *testing.T) {
	e := New(costmodel.LocalTest(2))
	if _, err := e.RunAdaptive(core.NewGraph(), nil, nil, 0.5); err == nil {
		t.Fatal("threshold < 1 accepted")
	}
}

func abs1(x float64) float64 {
	if x < 0 {
		return -x + 0.1
	}
	return x + 0.1
}
