package engine

import (
	"fmt"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/plan"
)

// Report is the outcome of a simulated (metadata-only) execution of an
// annotated plan at full scale.
type Report struct {
	// Seconds is the virtual wall time: the model-predicted cost of
	// every implementation and transformation in the plan.
	Seconds float64
	// OptSeconds is the optimizer time recorded on the annotation.
	OptSeconds float64
	// Features aggregates the plan's analytic features.
	Features costmodel.Features
	// PeakWorkerBytes is the largest per-worker working set any single
	// operator needs.
	PeakWorkerBytes float64
	// ScratchBytes is the largest per-worker intermediate spill any
	// single operator produces (intermediates are reclaimed once
	// consumed, so the bound is per operator, not plan-wide).
	ScratchBytes float64
}

// Simulate lowers the annotated plan to the shared physical IR and folds
// the lowered nodes' model-predicted costs — same edges, same
// transformations, same implementations as a real run, but no data
// moves. An annotation that is infeasible on the environment's cluster
// (an implementation or transformation returning ⊥, typically from the
// RAM bound) yields an error — the paper's "Fail" outcome.
func Simulate(ann *core.Annotation, env *core.Env) (Report, error) {
	p, err := plan.Lower(ann.Graph, env, ann)
	if err != nil {
		return Report{OptSeconds: ann.OptSeconds}, err
	}
	return SimulatePlan(p, env)
}

// SimulatePlan advances the virtual clock over an already-lowered plan:
// re-layout and compute nodes contribute their predicted seconds and
// features in plan order (the same fold order Simulate has always used,
// so predictions stay bit-identical), and the paper's "too much
// intermediate data" crash fires when one compute node spills more than
// the cluster's per-worker scratch bound.
func SimulatePlan(p *plan.Plan, env *core.Env) (Report, error) {
	rep := Report{OptSeconds: p.OptSeconds}
	for _, n := range p.Nodes {
		if n.Kind != plan.KindRelayout && n.Kind != plan.KindCompute {
			continue
		}
		rep.Seconds += n.Cost
		rep.Features = rep.Features.Add(n.Features)
		if n.PeakWorkerBytes > rep.PeakWorkerBytes {
			rep.PeakWorkerBytes = n.PeakWorkerBytes
		}
		if n.Kind == plan.KindCompute {
			if n.Features.InterBytes > rep.ScratchBytes {
				rep.ScratchBytes = n.Features.InterBytes
			}
			if n.Features.InterBytes > float64(env.Cluster.ScratchPerWorker) {
				return rep, fmt.Errorf("engine: %s on vertex %d spills %.0f GB per worker, scratch is %d GB (Fail)",
					n.Name, n.Vertex, n.Features.InterBytes/(1<<30), env.Cluster.ScratchPerWorker>>30)
			}
		}
	}
	return rep, nil
}
