package engine

import (
	"fmt"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/impl"
)

// Report is the outcome of a simulated (metadata-only) execution of an
// annotated plan at full scale.
type Report struct {
	// Seconds is the virtual wall time: the model-predicted cost of
	// every implementation and transformation in the plan.
	Seconds float64
	// OptSeconds is the optimizer time recorded on the annotation.
	OptSeconds float64
	// Features aggregates the plan's analytic features.
	Features costmodel.Features
	// PeakWorkerBytes is the largest per-worker working set any single
	// operator needs.
	PeakWorkerBytes float64
	// ScratchBytes is the largest per-worker intermediate spill any
	// single operator produces (intermediates are reclaimed once
	// consumed, so the bound is per operator, not plan-wide).
	ScratchBytes float64
}

// Simulate walks the annotated plan exactly as Run does — same edges,
// same transformations, same implementations — but materializes no data:
// it re-derives each operator's features and advances the virtual clock
// by the model-predicted seconds. An annotation that is infeasible on
// the environment's cluster (an implementation or transformation
// returning ⊥, typically from the RAM bound) yields an error — the
// paper's "Fail" outcome.
func Simulate(ann *core.Annotation, env *core.Env) (Report, error) {
	var rep Report
	rep.OptSeconds = ann.OptSeconds
	for _, v := range ann.Graph.Vertices {
		if v.IsSource {
			continue
		}
		im := ann.VertexImpl[v.ID]
		if im == nil {
			return rep, fmt.Errorf("engine: vertex %d has no implementation", v.ID)
		}
		ins := make([]impl.Input, len(v.Ins))
		for j, in := range v.Ins {
			tr := ann.EdgeTrans[core.EdgeKey{To: v.ID, Arg: j}]
			if tr == nil {
				return rep, fmt.Errorf("engine: edge into vertex %d arg %d has no transformation", v.ID, j)
			}
			tout, ok := tr.Apply(in.Shape, in.Density, ann.VertexFormat[in.ID], env.Cluster)
			if !ok {
				return rep, fmt.Errorf("engine: transformation %s fails on vertex %d arg %d (Fail)",
					tr.Name, v.ID, j)
			}
			if !tr.Identity() {
				rep.Seconds += tr.Cost(env.Model, tout)
				rep.Features = rep.Features.Add(tout.Features)
				if tout.PeakWorkerBytes > rep.PeakWorkerBytes {
					rep.PeakWorkerBytes = tout.PeakWorkerBytes
				}
			}
			ins[j] = impl.Input{Shape: in.Shape, Density: in.Density, Format: tout.Format}
		}
		out, ok := im.Apply(v.Op, ins, v.Shape, v.Density, env.Cluster)
		if !ok {
			return rep, fmt.Errorf("engine: implementation %s fails on vertex %d (Fail)", im.Name, v.ID)
		}
		rep.Seconds += im.Cost(env.Model, out)
		rep.Features = rep.Features.Add(out.Features)
		if out.PeakWorkerBytes > rep.PeakWorkerBytes {
			rep.PeakWorkerBytes = out.PeakWorkerBytes
		}
		// The paper's "too much intermediate data" crash: one operator
		// spilling more than the per-worker scratch bound.
		if out.Features.InterBytes > rep.ScratchBytes {
			rep.ScratchBytes = out.Features.InterBytes
		}
		if out.Features.InterBytes > float64(env.Cluster.ScratchPerWorker) {
			return rep, fmt.Errorf("engine: %s on vertex %d spills %.0f GB per worker, scratch is %d GB (Fail)",
				im.Name, v.ID, out.Features.InterBytes/(1<<30), env.Cluster.ScratchPerWorker>>30)
		}
	}
	return rep, nil
}
