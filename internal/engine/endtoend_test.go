package engine

import (
	"math/rand"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
)

// TestRandomGraphsEndToEnd is the repository's strongest integration
// property: generate random compute DAGs, optimize them, execute the
// chosen physical plans on real data, and compare every sink against a
// plain-kernel reference evaluation. Any bug in the optimizer's
// type-correctness, a transformation kernel, or an executor shows up as
// a numeric mismatch.
func TestRandomGraphsEndToEnd(t *testing.T) {
	env := core.NewEnv(costmodel.LocalTest(4), format.All())
	kinds := []op.Kind{op.MatMul, op.Add, op.Sub, op.Hadamard, op.Transpose,
		op.ReLU, op.ReLUGrad, op.Neg, op.ScalarMul, op.Softmax, op.RowSums, op.ColSums}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := core.NewGraph()
		const n = 120
		s := shape.New(n, n)
		srcFormats := []format.Format{
			format.NewSingle(), format.NewTile(100), format.NewRowStrip(100), format.NewColStrip(100),
		}
		inputs := make(map[string]*tensor.Dense)
		nIn := 2 + rng.Intn(2)
		for i := 0; i < nIn; i++ {
			name := string(rune('A' + i))
			g.Input(name, s, 1, srcFormats[rng.Intn(len(srcFormats))])
			inputs[name] = tensor.RandNormal(rng, n, n)
		}
		// Square ops only, so any operand combination type-checks; ops
		// producing vectors (sums) are terminal picks only.
		for i := 0; i < 4+rng.Intn(4); i++ {
			k := kinds[rng.Intn(len(kinds))]
			o := op.Op{Kind: k}
			if k == op.ScalarMul {
				o.Scalar = rng.Float64()*2 - 1
			}
			pickSquare := func() *core.Vertex {
				for {
					v := g.Vertices[rng.Intn(len(g.Vertices))]
					if v.Shape == s {
						return v
					}
				}
			}
			var err error
			if o.Arity() == 2 {
				_, err = g.Apply(o, pickSquare(), pickSquare())
			} else {
				_, err = g.Apply(o, pickSquare())
			}
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		ann, err := core.Optimize(g, env)
		if err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		if err := ann.Verify(env); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		e := New(env.Cluster)
		got, err := e.RunCollect(ann, inputs)
		if err != nil {
			t.Fatalf("seed %d: execute: %v", seed, err)
		}
		want := referenceEval(t, g, inputs)
		for _, sink := range g.Sinks() {
			if diff := tensor.MaxAbsDiff(got[sink.ID], want[sink.ID]); diff > 1e-7 {
				t.Errorf("seed %d sink v%d: engine deviates from reference by %g\nplan:\n%s",
					seed, sink.ID, diff, ann.Describe())
			}
		}
	}
}

func referenceEval(t *testing.T, g *core.Graph, inputs map[string]*tensor.Dense) map[int]*tensor.Dense {
	t.Helper()
	vals := make(map[int]*tensor.Dense)
	for _, v := range g.Vertices {
		if v.IsSource {
			vals[v.ID] = inputs[v.Name]
			continue
		}
		in := func(j int) *tensor.Dense { return vals[v.Ins[j].ID] }
		switch v.Op.Kind {
		case op.MatMul:
			vals[v.ID] = tensor.MatMul(in(0), in(1))
		case op.Add:
			vals[v.ID] = tensor.Add(in(0), in(1))
		case op.Sub:
			vals[v.ID] = tensor.Sub(in(0), in(1))
		case op.Hadamard:
			vals[v.ID] = tensor.Hadamard(in(0), in(1))
		case op.Transpose:
			vals[v.ID] = tensor.Transpose(in(0))
		case op.ScalarMul:
			vals[v.ID] = tensor.Scale(in(0), v.Op.Scalar)
		case op.Neg:
			vals[v.ID] = tensor.Neg(in(0))
		case op.ReLU:
			vals[v.ID] = tensor.ReLU(in(0))
		case op.ReLUGrad:
			vals[v.ID] = tensor.ReLUGrad(in(0))
		case op.Softmax:
			vals[v.ID] = tensor.Softmax(in(0))
		case op.RowSums:
			vals[v.ID] = tensor.RowSums(in(0))
		case op.ColSums:
			vals[v.ID] = tensor.ColSums(in(0))
		default:
			t.Fatalf("reference evaluator missing %v", v.Op.Kind)
		}
	}
	return vals
}
