package engine

import (
	"math"
	"math/rand"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
)

func testEnv(workers int) *core.Env {
	return core.NewEnv(costmodel.LocalTest(workers), format.All())
}

// evalReference computes every vertex of a graph with the plain local
// kernels, ignoring formats entirely — the ground truth the distributed
// executor must match.
func evalReference(t *testing.T, g *core.Graph, inputs map[string]*tensor.Dense) map[int]*tensor.Dense {
	t.Helper()
	vals := make(map[int]*tensor.Dense)
	for _, v := range g.Vertices {
		if v.IsSource {
			vals[v.ID] = inputs[v.Name]
			continue
		}
		in := func(j int) *tensor.Dense { return vals[v.Ins[j].ID] }
		switch v.Op.Kind {
		case op.MatMul:
			vals[v.ID] = tensor.MatMul(in(0), in(1))
		case op.Add:
			vals[v.ID] = tensor.Add(in(0), in(1))
		case op.Sub:
			vals[v.ID] = tensor.Sub(in(0), in(1))
		case op.Hadamard:
			vals[v.ID] = tensor.Hadamard(in(0), in(1))
		case op.Transpose:
			vals[v.ID] = tensor.Transpose(in(0))
		case op.ScalarMul:
			vals[v.ID] = tensor.Scale(in(0), v.Op.Scalar)
		case op.Neg:
			vals[v.ID] = tensor.Neg(in(0))
		case op.ReLU:
			vals[v.ID] = tensor.ReLU(in(0))
		case op.ReLUGrad:
			vals[v.ID] = tensor.ReLUGrad(in(0))
		case op.Sigmoid:
			vals[v.ID] = tensor.Sigmoid(in(0))
		case op.Exp:
			vals[v.ID] = tensor.Exp(in(0))
		case op.Softmax:
			vals[v.ID] = tensor.Softmax(in(0))
		case op.RowSums:
			vals[v.ID] = tensor.RowSums(in(0))
		case op.ColSums:
			vals[v.ID] = tensor.ColSums(in(0))
		case op.AddBias:
			vals[v.ID] = tensor.AddBias(in(0), in(1))
		case op.Inverse:
			inv, err := tensor.Inverse(in(0))
			if err != nil {
				t.Fatalf("reference inverse: %v", err)
			}
			vals[v.ID] = inv
		default:
			t.Fatalf("reference evaluator missing op %v", v.Op.Kind)
		}
	}
	return vals
}

// checkPlan optimizes (or greedily annotates) g, runs it on the engine,
// and compares every sink against the reference evaluation.
func checkPlan(t *testing.T, g *core.Graph, env *core.Env, ann *core.Annotation, inputs map[string]*tensor.Dense) {
	t.Helper()
	if err := ann.Verify(env); err != nil {
		t.Fatalf("annotation invalid: %v", err)
	}
	e := New(env.Cluster)
	got, err := e.RunCollect(ann, inputs)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	want := evalReference(t, g, inputs)
	for _, sink := range g.Sinks() {
		if diff := tensor.MaxAbsDiff(got[sink.ID], want[sink.ID]); diff > 1e-8 {
			t.Errorf("sink v%d: engine result deviates from reference by %g", sink.ID, diff)
		}
	}
	if e.Stats().FLOPs == 0 {
		t.Error("execution recorded no floating point work")
	}
}

func TestLoadCollectRoundTripAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := New(costmodel.LocalTest(4))
	m := tensor.RandSparse(rng, 137, 211, 0.3) // ragged vs all block sizes
	for _, f := range []format.Format{
		format.NewSingle(), format.NewTile(100), format.NewRowStrip(100),
		format.NewColStrip(100), format.NewCOO(), format.NewCSRSingle(),
		format.NewCSRRowStrip(100),
	} {
		r, err := e.Load(m, f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got, err := e.Collect(r)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !tensor.Equal(got, m, 0) {
			t.Errorf("%v: round trip mismatch", f)
		}
	}
}

func TestLoadRejectsInvalidFormat(t *testing.T) {
	e := New(costmodel.LocalTest(4))
	m := tensor.NewDense(10, 10)
	if _, err := e.Load(m, format.NewTile(1000)); err == nil {
		t.Error("tile[1000] on a 10x10 matrix must fail to load")
	}
}

func TestTransformBetweenFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := New(costmodel.LocalTest(4))
	m := tensor.RandNormal(rng, 300, 500)
	r, err := e.Load(m, format.NewTile(100))
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []format.Format{
		format.NewRowStrip(100), format.NewColStrip(100), format.NewSingle(),
		format.NewCSRSingle(), format.NewTile(100),
	} {
		out, err := e.Transform(r, target)
		if err != nil {
			t.Fatalf("to %v: %v", target, err)
		}
		got, err := e.Collect(out)
		if err != nil {
			t.Fatalf("to %v: %v", target, err)
		}
		if !tensor.Equal(got, m, 0) {
			t.Errorf("transform to %v corrupted data", target)
		}
	}
	if e.Stats().NetBytes == 0 {
		t.Error("transformations moved no bytes")
	}
}

func TestOptimizedChainExecutesCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := core.NewGraph()
	a := g.Input("a", shape.New(160, 300), 1, format.NewRowStrip(100))
	b := g.Input("b", shape.New(300, 160), 1, format.NewColStrip(100))
	c := g.Input("c", shape.New(160, 500), 1, format.NewColStrip(100))
	ab := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	g.MustApply(op.Op{Kind: op.MatMul}, ab, c)
	env := testEnv(4)
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*tensor.Dense{
		"a": tensor.RandNormal(rng, 160, 300),
		"b": tensor.RandNormal(rng, 300, 160),
		"c": tensor.RandNormal(rng, 160, 500),
	}
	checkPlan(t, g, env, ann, inputs)
}

func TestEveryMatMulExecutorAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	env := testEnv(4)
	aMat := tensor.RandNormal(rng, 200, 300)
	bMat := tensor.RandNormal(rng, 300, 200)
	aSparse := tensor.RandSparse(rng, 200, 300, 0.05)
	want := tensor.MatMul(aMat, bMat)
	wantSparse := tensor.MatMul(aSparse, bMat)

	cases := []struct {
		impl   string
		fa, fb format.Format
		spA    bool
	}{
		{"mm-single-single", format.NewSingle(), format.NewSingle(), false},
		{"mm-bcast-single-colstrip", format.NewSingle(), format.NewColStrip(100), false},
		{"mm-rowstrip-bcast-single", format.NewRowStrip(100), format.NewSingle(), false},
		{"mm-rowstrip-colstrip", format.NewRowStrip(100), format.NewColStrip(100), false},
		{"mm-colstrip-rowstrip-agg", format.NewColStrip(100), format.NewRowStrip(100), false},
		{"mm-tile-tile-shuffle", format.NewTile(100), format.NewTile(100), false},
		{"mm-tile-tile-bcast", format.NewTile(100), format.NewTile(100), false},
		{"mm-bcast-single-tile", format.NewSingle(), format.NewTile(100), false},
		{"mm-tile-bcast-single", format.NewTile(100), format.NewSingle(), false},
		{"mm-csr-single-single", format.NewCSRSingle(), format.NewSingle(), true},
		{"mm-bcast-csr-rowstrip-agg", format.NewCSRSingle(), format.NewRowStrip(100), true},
		{"mm-csr-rowstrip-bcast-single", format.NewCSRRowStrip(100), format.NewSingle(), true},
		{"mm-bcast-coo-single", format.NewCOO(), format.NewSingle(), true},
	}
	for _, c := range cases {
		e := New(env.Cluster)
		am := aMat
		ref := want
		if c.spA {
			am = aSparse
			ref = wantSparse
		}
		ra, err := e.Load(am, c.fa)
		if err != nil {
			t.Fatalf("%s: load a: %v", c.impl, err)
		}
		rb, err := e.Load(bMat, c.fb)
		if err != nil {
			t.Fatalf("%s: load b: %v", c.impl, err)
		}
		exec, ok := executors[c.impl]
		if !ok {
			t.Fatalf("%s: no executor", c.impl)
		}
		out, err := exec(e, op.Op{Kind: op.MatMul}, shape.New(200, 200), []*Relation{ra, rb})
		if err != nil {
			t.Fatalf("%s: %v", c.impl, err)
		}
		got, err := e.Collect(out)
		if err != nil {
			t.Fatalf("%s: collect: %v", c.impl, err)
		}
		if diff := tensor.MaxAbsDiff(got, ref); diff > 1e-8 {
			t.Errorf("%s: result deviates by %g", c.impl, diff)
		}
	}
}

func TestFFNNStyleDAGExecutes(t *testing.T) {
	// A miniature forward+backward pass exercising sharing, transpose,
	// relu/relugrad, hadamard and softmax together.
	rng := rand.New(rand.NewSource(5))
	g := core.NewGraph()
	x := g.Input("x", shape.New(200, 120), 1, format.NewRowStrip(100))
	w1 := g.Input("w1", shape.New(120, 90), 1, format.NewSingle())
	w2 := g.Input("w2", shape.New(90, 10), 1, format.NewSingle())
	y := g.Input("y", shape.New(200, 10), 1, format.NewSingle())

	a1 := g.MustApply(op.Op{Kind: op.MatMul}, x, w1)
	h1 := g.MustApply(op.Op{Kind: op.ReLU}, a1)
	a2 := g.MustApply(op.Op{Kind: op.MatMul}, h1, w2)
	p := g.MustApply(op.Op{Kind: op.Softmax}, a2)
	d2 := g.MustApply(op.Op{Kind: op.Sub}, p, y)
	h1t := g.MustApply(op.Op{Kind: op.Transpose}, h1)
	gw2 := g.MustApply(op.Op{Kind: op.MatMul}, h1t, d2)
	g.MustApply(op.Op{Kind: op.ScalarMul, Scalar: 0.01}, gw2)

	env := testEnv(4)
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*tensor.Dense{
		"x":  tensor.RandNormal(rng, 200, 120),
		"w1": tensor.RandNormal(rng, 120, 90),
		"w2": tensor.RandNormal(rng, 90, 10),
		"y":  tensor.RandNormal(rng, 200, 10),
	}
	checkPlan(t, g, env, ann, inputs)
}

func TestBlockInverseStyleGraphExecutes(t *testing.T) {
	// ((D − C·A⁻¹·B))⁻¹ — the core of the Graybill two-level inverse.
	rng := rand.New(rand.NewSource(6))
	g := core.NewGraph()
	aIn := g.Input("A", shape.New(60, 60), 1, format.NewSingle())
	bIn := g.Input("B", shape.New(60, 80), 1, format.NewSingle())
	cIn := g.Input("C", shape.New(80, 60), 1, format.NewSingle())
	dIn := g.Input("D", shape.New(80, 80), 1, format.NewSingle())
	ainv := g.MustApply(op.Op{Kind: op.Inverse}, aIn)
	cainv := g.MustApply(op.Op{Kind: op.MatMul}, cIn, ainv)
	cainvb := g.MustApply(op.Op{Kind: op.MatMul}, cainv, bIn)
	schur := g.MustApply(op.Op{Kind: op.Sub}, dIn, cainvb)
	g.MustApply(op.Op{Kind: op.Inverse}, schur)

	env := testEnv(4)
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(r, c int, diag float64) *tensor.Dense {
		m := tensor.RandNormal(rng, r, c)
		for i := 0; i < r && i < c; i++ {
			m.Set(i, i, m.At(i, i)+diag)
		}
		return m
	}
	inputs := map[string]*tensor.Dense{
		"A": mk(60, 60, 60), "B": mk(60, 80, 0), "C": mk(80, 60, 0), "D": mk(80, 80, 200),
	}
	checkPlan(t, g, env, ann, inputs)
}

func TestGreedyAllTilePlanMatchesOptimalNumerically(t *testing.T) {
	// Two different physical plans for the same logical computation must
	// agree on the answer.
	rng := rand.New(rand.NewSource(7))
	g := core.NewGraph()
	a := g.Input("a", shape.New(250, 250), 1, format.NewTile(100))
	b := g.Input("b", shape.New(250, 250), 1, format.NewTile(100))
	ab := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	g.MustApply(op.Op{Kind: op.Add}, ab, a)

	env := testEnv(4)
	inputs := map[string]*tensor.Dense{
		"a": tensor.RandNormal(rng, 250, 250),
		"b": tensor.RandNormal(rng, 250, 250),
	}
	auto, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]format.Format{}
	for _, v := range g.Vertices {
		if !v.IsSource {
			want[v.ID] = format.NewTile(100)
		}
	}
	tiled, err := core.GreedyAnnotate(g, env, want)
	if err != nil {
		t.Fatal(err)
	}
	e := New(env.Cluster)
	got1, err := e.RunCollect(auto, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := e.RunCollect(tiled, inputs)
	if err != nil {
		t.Fatal(err)
	}
	sink := g.Sinks()[0].ID
	if diff := tensor.MaxAbsDiff(got1[sink], got2[sink]); diff > 1e-8 {
		t.Errorf("plans disagree by %g", diff)
	}
}

func TestSimulateMatchesAnnotationTotal(t *testing.T) {
	g := core.NewGraph()
	a := g.Input("a", shape.New(10000, 30000), 1, format.NewTile(1000))
	b := g.Input("b", shape.New(30000, 50000), 1, format.NewTile(1000))
	c := g.Input("c", shape.New(50000, 1), 1, format.NewSingle())
	abv := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	g.MustApply(op.Op{Kind: op.MatMul}, abv, c)
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(ann, env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Seconds-ann.Total()) > 1e-9*ann.Total() {
		t.Errorf("simulate %.6f vs annotation total %.6f", rep.Seconds, ann.Total())
	}
	if rep.PeakWorkerBytes <= 0 || rep.Features.FLOPs <= 0 {
		t.Errorf("report not populated: %+v", rep)
	}
}

func TestSimulateDetectsInfeasiblePlanAsFail(t *testing.T) {
	// A shuffle-join tile multiply over a huge inner dimension spills
	// more intermediate data than a small cluster's scratch: annotate on
	// a big cluster, simulate on a small one, expect the paper's Fail.
	g := core.NewGraph()
	a := g.Input("a", shape.New(40000, 60000), 1, format.NewTile(1000))
	b := g.Input("b", shape.New(60000, 200000), 1, format.NewTile(1000))
	g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	envBig := core.NewEnv(costmodel.EC2R5D(64), format.All())
	envBig.Impls[op.MatMul] = []*impl.Impl{impl.MMTileTileShuffle}
	want := map[int]format.Format{2: format.NewTile(1000)}
	ann, err := core.GreedyAnnotate(g, envBig, want)
	if err != nil {
		t.Fatal(err)
	}
	envSmall := core.NewEnv(costmodel.EC2R5D(2), format.All())
	if _, err := Simulate(ann, envSmall); err == nil {
		t.Error("a scratch-overflowing plan must Fail in simulation")
	}
	// On the big cluster the same plan fits.
	if _, err := Simulate(ann, envBig); err != nil {
		t.Errorf("the plan should fit on 64 workers: %v", err)
	}
}
