// Package engine is the distributed relational substrate the optimizer's
// plans run on — the stand-in for the paper's SimSQL and PlinyCompute
// deployments. Matrices are relations of (key…, matrix-block) tuples hash
// partitioned across workers; physical operators are per-tuple maps,
// broadcast joins, co-partitioned joins, shuffle joins and group-by SUM
// aggregation.
//
// The engine has two modes. Execute (Run) materializes real data and
// computes real results, validating every implementation's semantics at
// laptop scale and producing the measurements the cost model is
// calibrated on. Simulate walks the identical annotated plan at paper
// scale without materializing data, advancing a virtual clock from the
// calibrated cost model — the substitution (documented in DESIGN.md) for
// the paper's EC2 clusters.
package engine

import (
	"fmt"
	"sync/atomic"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/sparse"
	"matopt/internal/tensor"
)

// Key is a tuple's chunk coordinate: (tileRow, tileCol) for tiles,
// (tileRow, 0) for row strips, (0, tileCol) for column strips, the
// element coordinate for COO triples, and (0, 0) for single layouts.
type Key struct {
	I, J int64
}

// Tuple is one relation row: a key plus exactly one payload variant.
type Tuple struct {
	Key   Key
	Dense *tensor.Dense
	CSR   *sparse.CSR
	Val   float64 // COO payload (with Key as the coordinate)
	IsVal bool
}

// Bytes returns the payload size used for network accounting.
func (t Tuple) Bytes() int64 {
	switch {
	case t.Dense != nil:
		return t.Dense.Bytes()
	case t.CSR != nil:
		return t.CSR.Bytes()
	case t.IsVal:
		return 16
	}
	return 0
}

// Relation is a matrix stored in a physical format, hash partitioned
// across workers.
type Relation struct {
	Format  format.Format
	Shape   shape.Shape
	Density float64
	Parts   [][]Tuple // Parts[w] = tuples resident on worker w
}

// NumTuples returns the total tuple count.
func (r *Relation) NumTuples() int64 {
	var n int64
	for _, p := range r.Parts {
		n += int64(len(p))
	}
	return n
}

// Bytes returns the total payload bytes.
func (r *Relation) Bytes() int64 {
	var n int64
	for _, p := range r.Parts {
		for _, t := range p {
			n += t.Bytes()
		}
	}
	return n
}

// Stats aggregates what an execution actually did; the calibration
// pipeline compares these against the analytic features.
type Stats struct {
	NetBytes   int64 // bytes that crossed worker boundaries
	Tuples     int64 // tuples produced by operators
	FLOPs      int64 // floating-point operations executed
	InterBytes int64 // bytes of intermediate tuples materialized
}

// Engine executes annotated plans over a fixed worker count.
type Engine struct {
	Cluster costmodel.Cluster

	// KernelThreads bounds the threads each local compute kernel may
	// use (they run on the shared pool in internal/pool, so the process
	// never exceeds GOMAXPROCS kernel threads in total). ≤ 0 means
	// auto: use the whole machine. 1 forces serial kernels. Results are
	// bit-identical at every setting.
	KernelThreads int

	netBytes   atomic.Int64
	tuples     atomic.Int64
	flops      atomic.Int64
	interBytes atomic.Int64
}

// New returns an engine with the given cluster profile.
func New(cl costmodel.Cluster) *Engine { return &Engine{Cluster: cl} }

// kern returns the kernel context executors run local compute under.
func (e *Engine) kern() tensor.K {
	if e.KernelThreads > 0 {
		return tensor.K{Threads: e.KernelThreads}
	}
	return tensor.Auto()
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		NetBytes:   e.netBytes.Load(),
		Tuples:     e.tuples.Load(),
		FLOPs:      e.flops.Load(),
		InterBytes: e.interBytes.Load(),
	}
}

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() {
	e.netBytes.Store(0)
	e.tuples.Store(0)
	e.flops.Store(0)
	e.interBytes.Store(0)
}

func (e *Engine) workers() int { return e.Cluster.Workers }

// home returns the worker a key hashes to.
func (e *Engine) home(k Key) int {
	h := uint64(k.I)*0x9e3779b97f4a7c15 ^ uint64(k.J)*0xff51afd7ed558ccd
	return int(h % uint64(e.workers()))
}

// place builds a relation from tuples, hash partitioning them by key.
func (e *Engine) place(f format.Format, s shape.Shape, density float64, tuples []Tuple) *Relation {
	r := &Relation{Format: f, Shape: s, Density: density, Parts: make([][]Tuple, e.workers())}
	for _, t := range tuples {
		w := e.home(t.Key)
		r.Parts[w] = append(r.Parts[w], t)
	}
	e.tuples.Add(int64(len(tuples)))
	return r
}

// chargeNet records logical cross-worker movement of b bytes.
func (e *Engine) chargeNet(b int64) { e.netBytes.Add(b) }

// chargeFlops records floating point work.
func (e *Engine) chargeFlops(n int64) { e.flops.Add(n) }

// chargeInter records intermediate materialization.
func (e *Engine) chargeInter(b int64) { e.interBytes.Add(b) }

// all returns every tuple of r (in worker order), charging broadcast
// traffic for the copies that cross workers when bcast is true.
func (e *Engine) all(r *Relation, bcast bool) []Tuple {
	var out []Tuple
	for w, p := range r.Parts {
		out = append(out, p...)
		if bcast {
			var b int64
			for _, t := range p {
				b += t.Bytes()
			}
			_ = w
			b *= int64(e.workers() - 1)
			e.chargeNet(b)
		}
	}
	return out
}

func (r *Relation) String() string {
	return fmt.Sprintf("Relation(%v, %v, %d tuples)", r.Shape, r.Format, r.NumTuples())
}
