package trans

import (
	"testing"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/shape"
)

var cl = costmodel.EC2R5D(10)

func TestTwentyTransformations(t *testing.T) {
	if n := len(All()); n != 20 {
		t.Fatalf("registry has %d transformations, want 20 (paper §8.1)", n)
	}
	seen := map[string]bool{}
	for _, tr := range All() {
		if seen[tr.Name] {
			t.Errorf("duplicate transformation %q", tr.Name)
		}
		seen[tr.Name] = true
		if ByID(tr.ID) != tr {
			t.Errorf("%s: ByID broken", tr.Name)
		}
	}
	if !All()[0].Identity() {
		t.Error("first transformation must be the identity")
	}
}

func TestIdentityIsFree(t *testing.T) {
	s := shape.New(5000, 5000)
	out, ok := IdentityTransform.Apply(s, 1, format.NewTile(1000), cl)
	if !ok || out.Format != format.NewTile(1000) {
		t.Fatalf("identity apply = %+v, %v", out, ok)
	}
	if out.Features != (costmodel.Features{}) {
		t.Errorf("identity features = %+v", out.Features)
	}
	m := costmodel.NewModel(cl)
	if IdentityTransform.Cost(m, out) != 0 {
		t.Error("identity cost must be zero")
	}
}

func TestNoOpRelayoutRejected(t *testing.T) {
	tr := ToFormat(format.NewTile(1000))
	if tr == nil {
		t.Fatal("to-tile[1000] missing")
	}
	if _, ok := tr.Apply(shape.New(5000, 5000), 1, format.NewTile(1000), cl); ok {
		t.Error("re-layout to the current format must be ⊥ (use identity)")
	}
}

func TestGatherToSingleHasROWMATRIXShape(t *testing.T) {
	// A 1000×1000 matrix in 100 tiles gathered into one tuple, the
	// motivating example's matAB re-layout scaled to our tile sizes.
	s := shape.New(1000, 1000)
	tr := ToFormat(format.NewSingle())
	out, ok := tr.Apply(s, 1, format.NewTile(100), cl)
	if !ok {
		t.Fatal("tile→single rejected")
	}
	if out.Format.Kind != format.Single {
		t.Fatalf("format = %v", out.Format)
	}
	if out.Features.NetBytes <= 0 || out.Features.InterBytes <= 0 {
		t.Errorf("gather must move data and materialize an intermediate pass: %+v", out.Features)
	}
}

func TestSingleTooBigRejected(t *testing.T) {
	big := shape.New(100000, 100000) // 80 GB
	tr := ToFormat(format.NewSingle())
	if _, ok := tr.Apply(big, 1, format.NewTile(1000), cl); ok {
		t.Error("gathering 80GB into one tuple must be ⊥")
	}
	// But the sparse single-tuple CSR of a very sparse matrix fits.
	trc := ToFormat(format.NewCSRSingle())
	if _, ok := trc.Apply(big, 1e-6, format.NewCOO(), cl); !ok {
		t.Error("COO→CSR-single of a very sparse matrix must be feasible")
	}
}

func TestScatterAndShuffleCosts(t *testing.T) {
	s := shape.New(10000, 10000) // 800 MB
	scatter, ok := ToFormat(format.NewTile(1000)).Apply(s, 1, format.NewSingle(), cl)
	if !ok {
		t.Fatal("single→tile rejected")
	}
	if scatter.Features.NetBytes != float64(s.Bytes()) {
		t.Errorf("scatter net bytes = %v, want full payload", scatter.Features.NetBytes)
	}
	shuffle, ok := ToFormat(format.NewRowStrip(1000)).Apply(s, 1, format.NewTile(1000), cl)
	if !ok {
		t.Fatal("tile→rowstrip rejected")
	}
	want := costmodel.ShuffleBytes(float64(s.Bytes()), cl.Workers)
	if shuffle.Features.NetBytes != want {
		t.Errorf("shuffle net bytes = %v, want %v", shuffle.Features.NetBytes, want)
	}
	if shuffle.Features.NetBytes >= scatter.Features.NetBytes {
		t.Error("a parallel shuffle must beat a single-node scatter per link")
	}
}

func TestDensifyAndSparsify(t *testing.T) {
	s := shape.New(20000, 20000)
	// Sparse→dense strips of a very sparse matrix: valid, and the cost
	// reflects the dense target size.
	out, ok := ToFormat(format.NewRowStrip(1000)).Apply(s, 1e-4, format.NewCSRSingle(), cl)
	if !ok {
		t.Fatal("csr→rowstrip rejected")
	}
	if out.Format != format.NewRowStrip(1000) {
		t.Errorf("format = %v", out.Format)
	}
	// Dense→COO explodes the tuple count.
	cooOut, ok := ToFormat(format.NewCOO()).Apply(s, 0.5, format.NewTile(1000), cl)
	if !ok {
		t.Fatal("tile→coo rejected")
	}
	if cooOut.Features.Tuples < 1e6 {
		t.Errorf("COO tuple feature = %v, want per-non-zero tuples", cooOut.Features.Tuples)
	}
}

func TestForFormatsRestriction(t *testing.T) {
	ts := ForFormats(format.SingleBlock())
	// identity + to-single + 9 tile targets.
	if len(ts) != 11 {
		t.Fatalf("ForFormats(SingleBlock) = %d transformations, want 11", len(ts))
	}
	for _, tr := range ts[1:] {
		if tr.Target().Kind != format.Single && tr.Target().Kind != format.Tile {
			t.Errorf("unexpected target %v", tr.Target())
		}
	}
}

func TestTransformCostPositive(t *testing.T) {
	m := costmodel.NewModel(cl)
	s := shape.New(10000, 10000)
	for _, tr := range All()[1:] {
		out, ok := tr.Apply(s, 0.01, format.NewTile(1000), cl)
		if !ok {
			continue
		}
		if c := tr.Cost(m, out); c <= 0 {
			t.Errorf("%s: cost = %v, want > 0", tr.Name, c)
		}
	}
}
