package trans

import (
	"testing"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/shape"
)

// TestEveryTargetReachableFromSomeFormat checks no transformation is
// dead: each non-identity re-layout must accept at least one (shape,
// source format) in a representative grid.
func TestEveryTargetReachableFromSomeFormat(t *testing.T) {
	cl := costmodel.EC2R5D(10)
	shapes := []shape.Shape{
		shape.New(100, 100),
		shape.New(5000, 5000),
		shape.New(20000, 20000),
		shape.New(10000, 17),
		shape.New(10000, 20000), // wide enough for the 10000-column strips
	}
	sources := format.All()
	for _, tr := range All() {
		if tr.Identity() {
			continue
		}
		ok := false
	outer:
		for _, s := range shapes {
			for _, d := range []float64{1, 1e-3} {
				for _, from := range sources {
					if !from.Valid(s, d, cl.MaxTupleBytes) {
						continue
					}
					if _, accepted := tr.Apply(s, d, from, cl); accepted {
						ok = true
						break outer
					}
				}
			}
		}
		if !ok {
			t.Errorf("%s: no source format in the grid can use it (dead transformation?)", tr.Name)
		}
	}
}

// TestApplyFeatureInvariants: any accepted transformation must report
// non-negative features and a positive peak.
func TestApplyFeatureInvariants(t *testing.T) {
	cl := costmodel.EC2R5D(10)
	s := shape.New(12000, 9000)
	for _, tr := range All() {
		if tr.Identity() {
			continue
		}
		for _, from := range format.All() {
			for _, d := range []float64{1, 0.01} {
				if !from.Valid(s, d, cl.MaxTupleBytes) {
					continue
				}
				out, ok := tr.Apply(s, d, from, cl)
				if !ok {
					continue
				}
				f := out.Features
				if f.FLOPs < 0 || f.NetBytes < 0 || f.InterBytes < 0 || f.Tuples < 0 {
					t.Errorf("%s from %v: negative features %+v", tr.Name, from, f)
				}
				if out.PeakWorkerBytes <= 0 {
					t.Errorf("%s from %v: peak %v", tr.Name, from, out.PeakWorkerBytes)
				}
				if out.Format != tr.Target() {
					t.Errorf("%s: produced %v, target %v", tr.Name, out.Format, tr.Target())
				}
			}
		}
	}
}
