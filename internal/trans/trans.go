// Package trans defines the set T of physical matrix transformations
// (§3): costed re-layout algorithms that move a matrix from one physical
// implementation to another, letting the optimizer chain atomic
// computation implementations whose output and input formats differ.
// The prototype ships the paper's 20 transformations: the identity plus
// one re-layout per target format (1 single + 9 tiles + 3 row strips +
// 3 column strips + 3 sparse layouts).
//
// A re-layout to the single format is the paper's two-phase
// ROWMATRIX/COLMATRIX aggregation (§2.1); chunked→chunked re-layouts are
// repartitioning shuffles with local slicing/stitching; single→chunked
// is a scatter from the holder.
package trans

import (
	"fmt"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/shape"
)

// ID identifies a transformation; the engine dispatches on it.
type ID uint8

// Transform is one physical matrix transformation.
type Transform struct {
	ID       ID
	Name     string
	identity bool
	target   format.Format
}

// Out is the result of a transformation's type specification function.
type Out struct {
	Format          format.Format
	Features        costmodel.Features
	PeakWorkerBytes float64
}

// Identity reports whether this is the no-op transformation.
func (t *Transform) Identity() bool { return t.identity }

// Target returns the target format of a non-identity transformation.
func (t *Transform) Target() format.Format { return t.target }

func (t *Transform) String() string { return t.Name }

// Apply is the type specification function f : M×P → P ∪ {⊥} plus cost
// features. ok is false (⊥) when the transformation cannot produce a
// valid layout for this matrix, when it would be a no-op better served by
// the identity, or when it exceeds per-worker RAM.
func (t *Transform) Apply(s shape.Shape, density float64, from format.Format, cl costmodel.Cluster) (Out, bool) {
	if t.identity {
		return Out{Format: from}, true
	}
	if from == t.target {
		return Out{}, false // use Identity instead
	}
	to := t.target
	if !to.Valid(s, density, cl.MaxTupleBytes) {
		return Out{}, false
	}
	fromBytes := float64(from.Bytes(s, density))
	toBytes := float64(to.Bytes(s, density))
	fromTuples := from.NumTuplesDensity(s, density)
	toTuples := to.NumTuplesDensity(s, density)
	moveFlops := float64(s.Elems())
	if from.IsSparse() && to.IsSparse() {
		moveFlops = density * float64(s.Elems()) * 2
	}
	w := cl.Workers

	var f costmodel.Features
	var peak float64
	switch {
	case toTuples == 1 && fromTuples == 1:
		// Single-holder re-encode (e.g. single ↔ csr-single): move the
		// payload to the target's holder and convert locally.
		f = costmodel.Features{FLOPs: moveFlops, NetBytes: 0, Tuples: 2}
		peak = fromBytes + toBytes
	case toTuples == 1:
		// Gather: the paper's ROWMATRIX/COLMATRIX two-phase aggregation.
		// All chunks converge on one worker; an intermediate strip pass
		// is materialized along the way.
		f = costmodel.Features{
			FLOPs:      moveFlops,
			NetBytes:   costmodel.GatherBytes(fromBytes, w),
			InterBytes: fromBytes,
			Tuples:     float64(fromTuples) + 1,
		}
		// The whole target tuple is assembled on its holder; source
		// chunks stream in.
		peak = toBytes + 2*float64(from.MaxTupleBytes(s, density))
	case fromTuples == 1:
		// Scatter: the holder slices and distributes; its outbound link
		// is the bottleneck.
		f = costmodel.Features{
			FLOPs:    moveFlops,
			NetBytes: toBytes,
			Tuples:   float64(toTuples) + 1,
		}
		peak = fromBytes + 2*float64(to.MaxTupleBytes(s, density))
	default:
		// Chunked → chunked repartition: shuffle plus local stitching.
		f = costmodel.Features{
			FLOPs:      costmodel.ParallelFLOPs(moveFlops, w, fromTuples+toTuples),
			NetBytes:   costmodel.ShuffleBytes(fromBytes, w),
			InterBytes: costmodel.ShuffleBytes(fromBytes, w),
			Tuples:     perWorker(float64(fromTuples+toTuples), w),
		}
		peak = 2 * float64(from.MaxTupleBytes(s, density)+to.MaxTupleBytes(s, density))
	}
	if peak > float64(cl.RAMPerWorker) {
		return Out{}, false
	}
	return Out{Format: to, Features: f, PeakWorkerBytes: peak}, true
}

// Cost returns the model-predicted seconds for an already-validated Out.
func (t *Transform) Cost(m *costmodel.Model, out Out) float64 {
	if t.identity {
		return 0
	}
	return m.Predict(t.Name, out.Features)
}

func perWorker(total float64, workers int) float64 { return total / float64(workers) }

// --- registry ---

var registry []*Transform

// IdentityTransform is the no-op transformation shared by all edges whose
// producer format already matches.
var IdentityTransform *Transform

func init() {
	IdentityTransform = &Transform{ID: 0, Name: "identity", identity: true}
	registry = append(registry, IdentityTransform)
	add := func(target format.Format) {
		registry = append(registry, &Transform{
			ID:     ID(len(registry)),
			Name:   "to-" + target.String(),
			target: target,
		})
	}
	add(format.NewSingle())
	for _, s := range format.TileSizes {
		add(format.NewTile(s))
	}
	for _, s := range format.StripSizes {
		add(format.NewRowStrip(s))
	}
	for _, s := range format.StripSizes {
		add(format.NewColStrip(s))
	}
	add(format.NewCOO())
	add(format.NewCSRSingle())
	add(format.NewCSRRowStrip(1000))
}

// All returns every registered transformation (20 with the identity).
func All() []*Transform { return registry }

// ByID returns the transformation with the given ID.
func ByID(id ID) *Transform {
	if int(id) >= len(registry) {
		panic(fmt.Sprintf("trans: unknown id %d", id))
	}
	return registry[id]
}

// ToFormat returns the non-identity transformation targeting f, or nil.
func ToFormat(f format.Format) *Transform {
	for _, t := range registry[1:] {
		if t.target == f {
			return t
		}
	}
	return nil
}

// ForFormats returns the transformations usable when the optimizer's
// format universe is restricted to fs: the identity plus every re-layout
// whose target is in fs.
func ForFormats(fs []format.Format) []*Transform {
	out := []*Transform{IdentityTransform}
	in := make(map[format.Format]bool, len(fs))
	for _, f := range fs {
		in[f] = true
	}
	for _, t := range registry[1:] {
		if in[t.target] {
			out = append(out, t)
		}
	}
	return out
}
