// Package dist is a sharded multi-worker execution runtime for
// annotated plans: the measured counterpart of the sequential reference
// engine in internal/engine. Each relation's tuples are hash partitioned
// across P worker shards — one goroutine pool per shard, standing in for
// the paper's cluster nodes (the same substitution DESIGN.md documents
// for the simulator, applied to real execution). A dataflow DAG
// scheduler runs independent vertices concurrently, ref-counts each
// relation's consumers so shards are freed as soon as the last consumer
// finishes, and accounts peak resident bytes.
//
// Operators never touch another shard's tuples directly: all data
// movement goes through channel-backed exchange primitives (broadcast,
// co-partitioned join, shuffle-by-key, group-by-SUM aggregation) that
// meter the actual bytes and message counts crossing shard boundaries.
// Every run meters into its own obs.Registry — exchange traffic by
// (vertex, kind, label), per-shard busy time, queue-wait and
// vertex-duration histograms, retries — and its Report is built as a
// view over that registry, including on failed and degraded runs, then
// merged into the process-wide registry (DESIGN.md §11). With a tracer
// attached (WithTracer) each run also records a span tree: dist.run →
// vertex → attempt → exchange, plus retry.backoff during recovery.
// Reports can be held against the cost model's predicted features.
//
// Determinism: the runtime produces byte-identical results to the
// sequential engine. Floating-point addition is not associative, so
// every aggregation ships tagged partial results (key, seq) to a
// deterministic owner shard, sorts them, and replays the exact reduction
// order — and the exact kernel sequence — of the sequential executors.
package dist

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/netfabric"
	"matopt/internal/obs"
	"matopt/internal/plan"
	"matopt/internal/tensor"
)

// Runtime executes annotated plans across a fixed number of shards.
type Runtime struct {
	cluster costmodel.Cluster
	shards  int

	faults          *FaultPlan
	maxRetries      int
	backoffBase     time.Duration
	backoffCap      time.Duration
	vertexDeadline  time.Duration
	exchangeTimeout time.Duration
	retrySeed       int64
	retrySeedSet    bool

	ckptOn       bool
	ckptMultiple float64
	ckptBudget   int64
	spec         *Speculation

	kernelThreads int

	transport netfabric.Transport

	tr   *obs.Tracer
	span *obs.Span
}

// Speculation configures straggler re-execution: once a run has at
// least MinObservations completed vertex durations, any attempt that
// runs longer than Multiplier × the observed p99 (but never less than
// Floor) gets a speculative duplicate launched on rotated owner shards;
// the first attempt to finish wins and the loser is cancelled. Both
// attempts replay the same deterministic kernels over the same
// immutable inputs, so the winner's result is bit-identical either way.
type Speculation struct {
	// MinObservations is how many completed vertices the run must have
	// timed before deadlines are derived; below it nothing speculates.
	// Zero or negative means speculate from the first vertex that has
	// any estimate at all.
	MinObservations int
	// Multiplier scales the observed p99 vertex duration into the
	// straggler deadline.
	Multiplier float64
	// Floor is the minimum deadline, guarding against spuriously tight
	// p99 estimates early in a run.
	Floor time.Duration
}

// DefaultSpeculation is a conservative profile: wait for 8 observations,
// call an attempt a straggler at 3× the p99, never under 10ms.
func DefaultSpeculation() Speculation {
	return Speculation{MinObservations: 8, Multiplier: 3, Floor: 10 * time.Millisecond}
}

// Recovery defaults: two retries with sub-millisecond-to-50ms capped
// exponential backoff keep recovery latency negligible next to any real
// vertex's compute, and the 30s guards only ever fire on genuinely
// wedged runs.
const (
	DefaultMaxRetries      = 2
	defaultBackoffBase     = 500 * time.Microsecond
	defaultBackoffCap      = 50 * time.Millisecond
	defaultVertexDeadline  = 30 * time.Second
	defaultExchangeTimeout = 30 * time.Second
)

// Option configures a Runtime.
type Option func(*Runtime)

// WithFaults installs a deterministic fault-injection schedule; nil
// (the default) injects nothing and costs one nil check per hook.
func WithFaults(p *FaultPlan) Option { return func(rt *Runtime) { rt.faults = p } }

// WithTracer attaches an obs tracer: every Run opens a "dist.run" span
// under parent, with per-vertex "vertex"/"attempt" children, one
// "exchange" span per fabric exchange, and "retry.backoff" spans during
// recovery (DESIGN.md §11). A nil tracer — the default — disables
// tracing at zero cost; the metrics registry backing each Report is
// unaffected by this option.
func WithTracer(t *obs.Tracer, parent *obs.Span) Option {
	return func(rt *Runtime) { rt.tr, rt.span = t, parent }
}

// WithMaxRetries sets how many times a vertex whose execution fails
// transiently (ErrShardFailed, ErrExchangeTimeout) is recomputed before
// the run gives up with ErrRetriesExhausted. Negative values are
// clamped to 0 (fail on first fault). Default DefaultMaxRetries.
func WithMaxRetries(n int) Option {
	return func(rt *Runtime) {
		if n < 0 {
			n = 0
		}
		rt.maxRetries = n
	}
}

// WithRetryBackoff sets the capped exponential backoff between retry
// attempts: attempt i waits min(base<<i, cap). Non-positive values keep
// the defaults.
func WithRetryBackoff(base, cap time.Duration) Option {
	return func(rt *Runtime) {
		if base > 0 {
			rt.backoffBase = base
		}
		if cap > 0 {
			rt.backoffCap = cap
		}
	}
}

// WithVertexDeadline bounds the total recovery window of one vertex:
// once a vertex has been failing for this long, the run stops retrying
// it. Zero disables the deadline.
func WithVertexDeadline(d time.Duration) Option {
	return func(rt *Runtime) { rt.vertexDeadline = d }
}

// WithExchangeTimeout bounds how long one exchange may take before the
// consuming vertex fails with ErrExchangeTimeout (and is retried). Zero
// disables the timeout.
func WithExchangeTimeout(d time.Duration) Option {
	return func(rt *Runtime) { rt.exchangeTimeout = d }
}

// WithRetrySeed seeds the deterministic retry-backoff jitter. Without
// this option the seed defaults to the fault plan's seed (when one is
// installed), so a chaos run's backoff schedule is reproducible from
// the same seed that drives its faults.
func WithRetrySeed(seed int64) Option {
	return func(rt *Runtime) { rt.retrySeed, rt.retrySeedSet = seed, true }
}

// WithCheckpointing enables cost-model-driven checkpoint placement: a
// compute vertex whose recompute-from-frontier cost exceeds multiple ×
// its materialization cost is pinned resident for recovery (exempt from
// ref-counted frees), truncating the cascades a later node loss can
// trigger. multiple <= 0 uses costmodel.DefaultCheckpointMultiple.
// budgetBytes caps the total bytes pinned — deepest vertices first,
// since a deep vertex fronts the longest recompute chain; <= 0 means
// unbounded.
func WithCheckpointing(multiple float64, budgetBytes int64) Option {
	return func(rt *Runtime) {
		rt.ckptOn = true
		rt.ckptMultiple = multiple
		rt.ckptBudget = budgetBytes
	}
}

// WithSpeculation enables speculative straggler re-execution with the
// given profile; see Speculation. Use DefaultSpeculation() for a
// conservative starting point.
func WithSpeculation(s Speculation) Option {
	return func(rt *Runtime) {
		if s.Multiplier <= 0 {
			s.Multiplier = 3
		}
		rt.spec = &s
	}
}

// WithKernelThreads bounds the threads each shard's local compute
// kernels may use. ≤ 0 (the default) sizes the budget to the machine
// divided by the shard count — pool.Budget(shards) = max(1,
// GOMAXPROCS/shards) — so shard parallelism and kernel parallelism
// compose without oversubscribing: the kernels run on the shared
// GOMAXPROCS-bounded pool in internal/pool, and a shard that cannot get
// a pool worker simply computes its chunk inline. Results are
// bit-identical at every setting.
func WithKernelThreads(n int) Option {
	return func(rt *Runtime) { rt.kernelThreads = n }
}

// WithTransport routes every exchange through t instead of the default
// in-process channel transport (netfabric.Chan). With a TCP transport
// the runtime's shards stay local goroutines but their exchange inboxes
// live on the mapped worker peers, so every cross-shard payload incurs
// real serialization, framing and socket costs — and wire failures
// (refused dials, severed connections, I/O deadlines) surface as
// ErrExchangeTimeout and ride the existing retry/cascade/fallback
// ladder. Outputs are bit-identical across transports: the fabric's
// (key, seq) sort erases arrival order. The caller owns t's lifecycle;
// the runtime never closes it.
func WithTransport(t netfabric.Transport) Option {
	return func(rt *Runtime) {
		if t != nil {
			rt.transport = t
		}
	}
}

// DefaultShards is the shard count used when the caller does not choose
// one: the process's GOMAXPROCS.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// New returns a runtime with the given cluster profile (for per-tuple
// size bounds) and shard count. The shard count must be positive; use
// DefaultShards to size it to the host.
func New(cl costmodel.Cluster, shards int, opts ...Option) (*Runtime, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("dist: shard count must be positive, got %d", shards)
	}
	rt := &Runtime{
		cluster:         cl,
		shards:          shards,
		maxRetries:      DefaultMaxRetries,
		backoffBase:     defaultBackoffBase,
		backoffCap:      defaultBackoffCap,
		vertexDeadline:  defaultVertexDeadline,
		exchangeTimeout: defaultExchangeTimeout,
		transport:       netfabric.Chan(),
	}
	for _, opt := range opts {
		opt(rt)
	}
	if !rt.retrySeedSet && rt.faults != nil {
		rt.retrySeed = rt.faults.Seed()
	}
	return rt, nil
}

// Shards returns the configured shard count.
func (rt *Runtime) Shards() int { return rt.shards }

// Run executes an annotated compute graph on real data and returns the
// assembled dense result of every sink vertex, keyed by vertex ID,
// together with a Report of what the run measured. Results are
// byte-identical to the sequential engine's — including runs that
// recovered from injected or transient faults, since every vertex
// recomputation replays the same deterministic kernels over immutable
// inputs. The context cancels the run at the next vertex, exchange or
// backoff boundary.
//
// On error the Report is still returned (with whatever the run metered
// before failing) so callers deciding whether to degrade to another
// engine can see the faults and retries that led here.
func (rt *Runtime) Run(ctx context.Context, ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, *Report, error) {
	env := core.NewEnv(rt.cluster, format.All())
	p, err := plan.Lower(ann.Graph, env, ann)
	if err != nil {
		return nil, &Report{Shards: rt.shards}, err
	}
	return rt.RunPlan(ctx, p, inputs)
}

// RunPlan executes an already-lowered physical plan; see Run. The plan
// is validated before any shard does work, so a corrupt or stale plan
// fails with plan.ErrInvalidPlan instead of executing garbage. This is
// the runtime's single execution entry point: Run lowers and delegates
// here, and callers that cache lowered plans (the public Executor, the
// CLI's -plan-in path) call it directly.
func (rt *Runtime) RunPlan(ctx context.Context, p *plan.Plan, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, *Report, error) {
	if err := p.Validate(); err != nil {
		return nil, &Report{Shards: rt.shards}, err
	}
	groups, err := buildGroups(p)
	if err != nil {
		return nil, &Report{Shards: rt.shards}, err
	}
	start := time.Now()
	r := newRun(rt, ctx, p, groups)
	defer r.stop()
	rels, peak, err := r.execute(inputs)
	if err != nil {
		return nil, r.report(peak, time.Since(start)), err
	}
	outs := make(map[int]*tensor.Dense)
	for _, id := range p.Retained {
		rel := rels[id]
		if rel == nil {
			return nil, r.report(peak, time.Since(start)), fmt.Errorf("dist: sink %d has no relation after the run: %w", id, core.ErrInternal)
		}
		m, err := engine.Assemble(rel.asEngine())
		if err != nil {
			return nil, r.report(peak, time.Since(start)), fmt.Errorf("dist: collecting sink %d: %w", id, err)
		}
		outs[id] = m
	}
	return outs, r.report(peak, time.Since(start)), nil
}
