// Package dist is a sharded multi-worker execution runtime for
// annotated plans: the measured counterpart of the sequential reference
// engine in internal/engine. Each relation's tuples are hash partitioned
// across P worker shards — one goroutine pool per shard, standing in for
// the paper's cluster nodes (the same substitution DESIGN.md documents
// for the simulator, applied to real execution). A dataflow DAG
// scheduler runs independent vertices concurrently, ref-counts each
// relation's consumers so shards are freed as soon as the last consumer
// finishes, and accounts peak resident bytes.
//
// Operators never touch another shard's tuples directly: all data
// movement goes through channel-backed exchange primitives (broadcast,
// co-partitioned join, shuffle-by-key, group-by-SUM aggregation) that
// meter the actual bytes and message counts crossing shard boundaries.
// Every run therefore produces a Report of measured shuffle traffic,
// per-shard compute time and peak memory that can be held against the
// cost model's predicted features.
//
// Determinism: the runtime produces byte-identical results to the
// sequential engine. Floating-point addition is not associative, so
// every aggregation ships tagged partial results (key, seq) to a
// deterministic owner shard, sorts them, and replays the exact reduction
// order — and the exact kernel sequence — of the sequential executors.
package dist

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/tensor"
)

// Runtime executes annotated plans across a fixed number of shards.
type Runtime struct {
	cluster costmodel.Cluster
	shards  int
}

// DefaultShards is the shard count used when the caller does not choose
// one: the process's GOMAXPROCS.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// New returns a runtime with the given cluster profile (for per-tuple
// size bounds) and shard count. The shard count must be positive; use
// DefaultShards to size it to the host.
func New(cl costmodel.Cluster, shards int) (*Runtime, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("dist: shard count must be positive, got %d", shards)
	}
	return &Runtime{cluster: cl, shards: shards}, nil
}

// Shards returns the configured shard count.
func (rt *Runtime) Shards() int { return rt.shards }

// Run executes an annotated compute graph on real data and returns the
// assembled dense result of every sink vertex, keyed by vertex ID,
// together with a Report of what the run measured. Results are
// byte-identical to the sequential engine's. The context cancels the
// run at the next vertex or exchange boundary.
func (rt *Runtime) Run(ctx context.Context, ann *core.Annotation, inputs map[string]*tensor.Dense) (map[int]*tensor.Dense, *Report, error) {
	start := time.Now()
	r := newRun(rt, ctx, ann)
	defer r.stop()
	rels, peak, err := r.execute(inputs)
	if err != nil {
		return nil, nil, err
	}
	outs := make(map[int]*tensor.Dense)
	for _, v := range ann.Graph.Sinks() {
		rel := rels[v.ID]
		if rel == nil {
			return nil, nil, fmt.Errorf("dist: sink %d has no relation after the run", v.ID)
		}
		m, err := engine.Assemble(rel.asEngine())
		if err != nil {
			return nil, nil, fmt.Errorf("dist: collecting sink %d: %w", v.ID, err)
		}
		outs[v.ID] = m
	}
	return outs, r.report(peak, time.Since(start)), nil
}
