package dist

import (
	"fmt"
	"sync/atomic"

	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/sparse"
	"matopt/internal/tensor"
)

// relation is a matrix stored in a physical format, hash partitioned
// across shards. Invariant: chunked-kind relations (tile, strips, COO)
// keep every tuple on shardOf(key); single-kind relations (single,
// csr-single) hold their one tuple on whichever shard produced it.
type relation struct {
	format  format.Format
	shape   shape.Shape
	density float64
	parts   [][]engine.Tuple // parts[s] = tuples resident on shard s

	// lost marks the relation's shard data as gone (an injected
	// node-loss fault): the scheduler must recompute it from lineage
	// before any further consumer runs. The payload is deliberately not
	// zeroed — a consumer that already snapshotted the relation before
	// the loss keeps reading intact data, exactly as a consumer that
	// had already fetched the shard's pages would on a real cluster.
	lost atomic.Bool
}

// markLost flags the relation's resident data as lost.
func (rel *relation) markLost() { rel.lost.Store(true) }

// isLost reports whether the relation's resident data was lost.
func (rel *relation) isLost() bool { return rel.lost.Load() }

// asEngine views the relation through the engine's type so the shared
// Assemble/Chunk helpers apply.
func (rel *relation) asEngine() *engine.Relation {
	return &engine.Relation{Format: rel.format, Shape: rel.shape, Density: rel.density, Parts: rel.parts}
}

// bytes returns the total payload bytes resident across shards.
func (rel *relation) bytes() int64 {
	var n int64
	for _, p := range rel.parts {
		for _, t := range p {
			n += t.Bytes()
		}
	}
	return n
}

// soleTuple returns the relation's only tuple and the shard holding it.
func (rel *relation) soleTuple() (engine.Tuple, int, error) {
	var out engine.Tuple
	shard, found := -1, false
	for s, p := range rel.parts {
		for _, t := range p {
			if found {
				return engine.Tuple{}, -1, fmt.Errorf("dist: relation %v/%v has multiple tuples, expected one", rel.format, rel.shape)
			}
			out, shard, found = t, s, true
		}
	}
	if !found {
		return engine.Tuple{}, -1, fmt.Errorf("dist: relation %v/%v is empty", rel.format, rel.shape)
	}
	return out, shard, nil
}

// singleDense returns the payload and home shard of a one-tuple dense
// relation.
func (rel *relation) singleDense() (*tensor.Dense, int, error) {
	t, s, err := rel.soleTuple()
	if err != nil {
		return nil, -1, err
	}
	if t.Dense == nil {
		return nil, -1, fmt.Errorf("dist: relation %v/%v is not a dense single", rel.format, rel.shape)
	}
	return t.Dense, s, nil
}

// singleCSR returns the payload and home shard of a one-tuple CSR
// relation.
func (rel *relation) singleCSR() (*sparse.CSR, int, error) {
	t, s, err := rel.soleTuple()
	if err != nil {
		return nil, -1, err
	}
	if t.CSR == nil {
		return nil, -1, fmt.Errorf("dist: relation %v/%v is not a csr single", rel.format, rel.shape)
	}
	return t.CSR, s, nil
}

// sortedShard returns shard s's tuples in key order; operators iterate
// local tuples in this order so per-shard output is deterministic.
func sortedShard(rel *relation, s int) []engine.Tuple {
	ts := append([]engine.Tuple(nil), rel.parts[s]...)
	engine.SortTuples(ts)
	return ts
}
