package dist_test

import (
	"context"
	"math/rand"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/trans"
)

// handAnn annotates a two-input matmul graph with one forced
// implementation and identity edges, so the bound test controls exactly
// which communication pattern runs.
func handAnn(t *testing.T, g *core.Graph, implName string, outFormat format.Format) *core.Annotation {
	t.Helper()
	im := impl.ByName(implName)
	if im == nil {
		t.Fatalf("no implementation %q", implName)
	}
	ann := &core.Annotation{
		Graph:        g,
		VertexImpl:   map[int]*impl.Impl{},
		VertexFormat: map[int]format.Format{},
		EdgeTrans:    map[core.EdgeKey]*trans.Transform{},
		VertexCost:   map[int]float64{},
		EdgeCost:     map[core.EdgeKey]float64{},
	}
	for _, v := range g.Vertices {
		if v.IsSource {
			ann.VertexFormat[v.ID] = v.SrcFormat
			continue
		}
		ann.VertexImpl[v.ID] = im
		ann.VertexFormat[v.ID] = outFormat
		for j := range v.Ins {
			ann.EdgeTrans[core.EdgeKey{To: v.ID, Arg: j}] = trans.IdentityTransform
		}
	}
	return ann
}

// measuredVsPredicted runs the annotated plan at several shard counts
// and checks the runtime's measured cross-shard bytes against the cost
// model's ceiling: the per-link worst-case NetBytes feature, scaled by
// the link count (no pattern can exceed the busiest link on every link
// at once).
func measuredVsPredicted(t *testing.T, name string, g *core.Graph, ann *core.Annotation, inputs map[string]*tensor.Dense) {
	t.Helper()
	mm := g.Sinks()[0]
	im := ann.VertexImpl[mm.ID]
	for _, shards := range []int{1, 2, 7} {
		cl := costmodel.LocalTest(shards)
		ins := make([]impl.Input, len(mm.Ins))
		for j, in := range mm.Ins {
			ins[j] = impl.Input{Shape: in.Shape, Density: in.Density, Format: ann.VertexFormat[in.ID]}
		}
		out, ok := im.Apply(op.Op{Kind: op.MatMul}, ins, mm.Shape, mm.Density, cl)
		if !ok {
			t.Fatalf("%s @%d shards: %s rejected the plan", name, shards, im.Name)
		}
		ceiling := costmodel.NetBytesCeiling(out.Features.NetBytes, shards)

		rt, err := dist.New(cl, shards)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := rt.Run(context.Background(), ann, inputs)
		if err != nil {
			t.Fatalf("%s @%d shards: %v", name, shards, err)
		}
		if float64(rep.NetBytes) > ceiling {
			t.Errorf("%s @%d shards: measured %d shuffle bytes exceed the model ceiling %.0f (per-link feature %.0f)\n%s",
				name, shards, rep.NetBytes, ceiling, out.Features.NetBytes, rep)
		}
		if shards == 1 && rep.NetBytes != 0 {
			t.Errorf("%s: single shard moved %d bytes; all delivery should be local", name, rep.NetBytes)
		}
	}
}

// TestBoundBroadcastPlan checks the broadcast-join matmul: dist's
// measured traffic (the broadcast matrix shipped to each peer) must stay
// under the model's binomial-tree broadcast feature times the link
// count.
func TestBoundBroadcastPlan(t *testing.T) {
	g := core.NewGraph()
	a := g.Input("A", shape.New(100, 300), 1, format.NewSingle())
	b := g.Input("B", shape.New(300, 500), 1, format.NewColStrip(100))
	g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	ann := handAnn(t, g, "mm-bcast-single-colstrip", format.NewColStrip(100))
	rng := rand.New(rand.NewSource(7))
	inputs := map[string]*tensor.Dense{
		"A": tensor.RandNormal(rng, 100, 300),
		"B": tensor.RandNormal(rng, 300, 500),
	}
	measuredVsPredicted(t, "broadcast-plan", g, ann, inputs)
}

// TestBoundShufflePlan checks the shuffle-join matmul: repartitioned
// inputs plus routed partial products must stay under the model's
// shuffle features times the link count.
func TestBoundShufflePlan(t *testing.T) {
	g := core.NewGraph()
	a := g.Input("A", shape.New(200, 200), 1, format.NewTile(100))
	b := g.Input("B", shape.New(200, 200), 1, format.NewTile(100))
	g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	ann := handAnn(t, g, "mm-tile-tile-shuffle", format.NewTile(100))
	rng := rand.New(rand.NewSource(8))
	inputs := map[string]*tensor.Dense{
		"A": tensor.RandNormal(rng, 200, 200),
		"B": tensor.RandNormal(rng, 200, 200),
	}
	measuredVsPredicted(t, "shuffle-plan", g, ann, inputs)
}
