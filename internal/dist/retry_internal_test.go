package dist

import (
	"testing"
	"time"
)

// TestJitterFracDeterministic: the jitter a (seed, vertex, attempt)
// draws is a pure function in [0, 1) — chaos runs replay the same
// backoffs under the same fault seed regardless of scheduling order.
func TestJitterFracDeterministic(t *testing.T) {
	seen := make(map[float64]int)
	for seed := int64(0); seed < 4; seed++ {
		for vertex := 0; vertex < 8; vertex++ {
			for attempt := 0; attempt < 4; attempt++ {
				f := jitterFrac(seed, vertex, attempt)
				if f < 0 || f >= 1 {
					t.Fatalf("jitterFrac(%d, %d, %d) = %v, want [0, 1)", seed, vertex, attempt, f)
				}
				if f != jitterFrac(seed, vertex, attempt) {
					t.Fatalf("jitterFrac(%d, %d, %d) is not deterministic", seed, vertex, attempt)
				}
				seen[f]++
			}
		}
	}
	// 128 draws over distinct inputs: a healthy mixer produces no
	// collisions in a 53-bit space.
	for f, n := range seen {
		if n > 1 {
			t.Fatalf("jitter fraction %v drawn %d times across distinct (seed, vertex, attempt)", f, n)
		}
	}
}

// TestBackoffDelayBounds: each attempt's delay doubles from the base,
// caps at the configured ceiling, and equal jitter keeps every wait in
// [d/2, d) of the nominal delay d.
func TestBackoffDelayBounds(t *testing.T) {
	rt := &Runtime{backoffBase: time.Millisecond, backoffCap: 8 * time.Millisecond, retrySeed: 42}
	for attempt := 0; attempt < 8; attempt++ {
		nominal := time.Millisecond << uint(attempt)
		if nominal > rt.backoffCap {
			nominal = rt.backoffCap
		}
		for vertex := 0; vertex < 16; vertex++ {
			d := rt.backoffDelay(vertex, attempt)
			if d < nominal/2 || d >= nominal {
				t.Fatalf("backoffDelay(v%d, attempt %d) = %v, want [%v, %v)", vertex, attempt, d, nominal/2, nominal)
			}
		}
	}
}

// TestBackoffDelaySeedSensitive: different retry seeds decorrelate the
// jitter while the same seed reproduces it exactly.
func TestBackoffDelaySeedSensitive(t *testing.T) {
	a := &Runtime{backoffBase: time.Second, backoffCap: time.Second, retrySeed: 1}
	b := &Runtime{backoffBase: time.Second, backoffCap: time.Second, retrySeed: 2}
	c := &Runtime{backoffBase: time.Second, backoffCap: time.Second, retrySeed: 1}
	var differs bool
	for vertex := 0; vertex < 8; vertex++ {
		if a.backoffDelay(vertex, 0) != c.backoffDelay(vertex, 0) {
			t.Fatalf("same seed drew different backoffs for vertex %d", vertex)
		}
		if a.backoffDelay(vertex, 0) != b.backoffDelay(vertex, 0) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 1 and 2 drew identical backoffs for every vertex")
	}
}

// TestBackoffDelayZeroCap: a zero cap disables the wait entirely rather
// than sleeping a garbage duration.
func TestBackoffDelayZeroCap(t *testing.T) {
	rt := &Runtime{backoffBase: 0, backoffCap: 0, retrySeed: 3}
	if d := rt.backoffDelay(0, 0); d != 0 {
		t.Fatalf("backoffDelay with zero base and cap = %v, want 0", d)
	}
}
