package dist

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"matopt/internal/obs"
	"matopt/internal/tensor"
)

// Typed failure surface of the dist runtime. Transient failures —
// a shard dying mid-task, an exchange that never completes — are
// retryable; everything else (type errors, missing inputs, internal
// inconsistencies wrapping core.ErrInternal, and the run context's own
// cancellation) aborts the run immediately.
var (
	// ErrShardFailed reports that a shard's task for a vertex died
	// mid-execution (in-process: an injected crash; on a real network
	// backend: a worker failure).
	ErrShardFailed = errors.New("dist: shard task failed")
	// ErrExchangeTimeout reports that an exchange did not complete in
	// time — messages were lost or a link stalled past the runtime's
	// exchange timeout.
	ErrExchangeTimeout = errors.New("dist: exchange timed out")
	// ErrRetriesExhausted reports that a vertex kept failing past the
	// runtime's retry budget or per-vertex deadline; it wraps the last
	// attempt's error.
	ErrRetriesExhausted = errors.New("dist: vertex retries exhausted")
)

// retryable reports whether an attempt error is transient: only shard
// failures and exchange timeouts are worth re-executing a vertex for.
func retryable(err error) bool {
	return errors.Is(err, ErrShardFailed) || errors.Is(err, ErrExchangeTimeout)
}

// lineage is the recovery record of one relation: which vertex produced
// it under which physical operator, and how many attempts that took. Because
// the scheduler ref-counts every relation until its last consumer has
// *completed* (not merely started), a failed consumer's inputs are
// always still resident — recomputing a vertex never requires rerunning
// its ancestors, exactly the property RDD lineage buys Spark.
type lineage struct {
	vertex   int    // producing vertex ID
	impl     string // physical operator name from the plan ("load" for sources)
	attempts int    // executions needed (1 = no faults)
}

// runGroup executes one recovery group (a vertex's fused plan nodes)
// with recovery: transient failures (ErrShardFailed,
// ErrExchangeTimeout) are retried with capped exponential backoff up to
// the runtime's retry budget and per-vertex deadline; deterministic
// inputs make every re-execution produce the same bits as a fault-free
// run. The input snapshot is re-copied per attempt so a retry re-derives
// the fused re-layouts from the original relations rather than a
// half-transformed attempt state.
func (r *run) runGroup(gr *planGroup, ins []*relation, inputs map[string]*tensor.Dense) (*relation, error) {
	start := time.Now()
	vspan := r.tr.Start(r.span, "vertex").
		SetInt("id", int64(gr.vertex)).SetStr("impl", gr.node.Name).
		SetInt("node", int64(gr.node.ID)).SetStr("strategy", gr.node.Strategy)
	defer func() {
		r.vspan[gr.vertex].Store(nil)
		r.vsec.Observe(time.Since(start).Seconds())
		vspan.End()
	}()
	for attempt := 0; ; attempt++ {
		r.setAttempt(gr.vertex, attempt)
		aspan := r.tr.Start(vspan, "attempt").SetInt("n", int64(attempt))
		if aspan != nil {
			r.vspan[gr.vertex].Store(aspan) // exchanges of this attempt nest here
		}
		attemptIns := append([]*relation(nil), ins...)
		rel, err := r.execGroup(gr, attemptIns, inputs)
		aspan.End()
		if err == nil {
			r.recordLineage(gr, attempt+1)
			vspan.SetInt("attempts", int64(attempt+1))
			return rel, nil
		}
		if cerr := r.ctx.Err(); cerr != nil {
			// The run was cancelled; report the context's cause rather
			// than whatever the teardown surfaced as.
			return nil, fmt.Errorf("dist: vertex %d aborted: %w", gr.vertex, cerr)
		}
		if !retryable(err) {
			return nil, err
		}
		if attempt >= r.rt.maxRetries {
			return nil, fmt.Errorf("%w: vertex %d failed %d times: %w",
				ErrRetriesExhausted, gr.vertex, attempt+1, err)
		}
		if dl := r.rt.vertexDeadline; dl > 0 && time.Since(start) >= dl {
			return nil, fmt.Errorf("%w: vertex %d exceeded its %v recovery deadline: %w",
				ErrRetriesExhausted, gr.vertex, dl, err)
		}
		r.recordRetry(gr.vertex)
		bspan := r.tr.Start(vspan, "retry.backoff").SetInt("attempt", int64(attempt))
		berr := r.sleepBackoff(attempt)
		bspan.End()
		if berr != nil {
			return nil, fmt.Errorf("dist: vertex %d aborted during retry backoff: %w", gr.vertex, berr)
		}
	}
}

// sleepBackoff waits the capped exponential backoff for the given
// attempt, returning early with the context's error on cancellation.
func (r *run) sleepBackoff(attempt int) error {
	d := r.rt.backoffBase << uint(attempt)
	if d > r.rt.backoffCap || d <= 0 {
		d = r.rt.backoffCap
	}
	if d <= 0 {
		return r.ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-r.ctx.Done():
		return r.ctx.Err()
	}
}

// setAttempt records which execution attempt of a vertex is in flight,
// so exchanges started on its behalf consult the fault plan with the
// right attempt number. One vertex runs one attempt at a time.
func (r *run) setAttempt(vertex, attempt int) {
	r.att[vertex].Store(int32(attempt))
}

// attemptOf returns the vertex's in-flight attempt number.
func (r *run) attemptOf(vertex int) int {
	if vertex < 0 || vertex >= len(r.att) {
		return 0
	}
	return int(r.att[vertex].Load())
}

// recordRetry meters one recomputation of a vertex into the run's
// registry; the Report's Retries/RetriesByVertex are views over these
// counters.
func (r *run) recordRetry(vertex int) {
	r.reg.Counter("dist.retries", obs.L("vertex", strconv.Itoa(vertex))).Inc()
}

// recordLineage notes the recovery record of a completed group.
func (r *run) recordLineage(gr *planGroup, attempts int) {
	r.recMu.Lock()
	if r.lineages == nil {
		r.lineages = make(map[int]lineage)
	}
	r.lineages[gr.vertex] = lineage{vertex: gr.vertex, impl: gr.node.Name, attempts: attempts}
	r.recMu.Unlock()
}
