package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"

	"matopt/internal/obs"
	"matopt/internal/tensor"
)

// Typed failure surface of the dist runtime. Transient failures —
// a shard dying mid-task, an exchange that never completes — are
// retryable; everything else (type errors, missing inputs, internal
// inconsistencies wrapping core.ErrInternal, and the run context's own
// cancellation) aborts the run immediately.
var (
	// ErrShardFailed reports that a shard's task for a vertex died
	// mid-execution (in-process: an injected crash; on a real network
	// backend: a worker failure).
	ErrShardFailed = errors.New("dist: shard task failed")
	// ErrExchangeTimeout reports that an exchange did not complete in
	// time — messages were lost or a link stalled past the runtime's
	// exchange timeout.
	ErrExchangeTimeout = errors.New("dist: exchange timed out")
	// ErrRetriesExhausted reports that a vertex kept failing past the
	// runtime's retry budget or per-vertex deadline. Every occurrence is
	// wrapped in a RetriesExhaustedError carrying the failing vertex,
	// the attempt count and the root-cause fault.
	ErrRetriesExhausted = errors.New("dist: vertex retries exhausted")

	// errInputsLost is the sentinel under every lostInputsError; it is
	// deliberately not retryable in place — re-running the vertex with
	// the same lost inputs cannot succeed, only a cascading lineage
	// recompute by the scheduler can.
	errInputsLost = errors.New("dist: vertex inputs lost")
)

// RetriesExhaustedError is the actionable form of ErrRetriesExhausted:
// which vertex gave up, after how many attempts (or cascades), and the
// last attempt's root-cause error. errors.Is matches both
// ErrRetriesExhausted and anything the cause wraps (e.g.
// ErrShardFailed), so existing callers keep working; Report and the
// serve layer surface the fields instead of a bare sentinel.
type RetriesExhaustedError struct {
	// Vertex is the failing vertex's ID.
	Vertex int
	// Attempts counts the executions (or cascading recomputes) taken.
	Attempts int
	// Deadline is the per-vertex recovery deadline that expired, zero
	// when the retry budget (not the deadline) was exhausted.
	Deadline time.Duration
	// Cause is the last attempt's error.
	Cause error
}

// Error renders the vertex, attempt count and root cause.
func (e *RetriesExhaustedError) Error() string {
	if e.Deadline > 0 {
		return fmt.Sprintf("%v: vertex %d exceeded its %v recovery deadline after %d attempts: %v",
			ErrRetriesExhausted, e.Vertex, e.Deadline, e.Attempts, e.Cause)
	}
	return fmt.Sprintf("%v: vertex %d failed %d times: %v",
		ErrRetriesExhausted, e.Vertex, e.Attempts, e.Cause)
}

// Unwrap exposes both the sentinel and the root cause to errors.Is/As.
func (e *RetriesExhaustedError) Unwrap() []error { return []error{ErrRetriesExhausted, e.Cause} }

// lostInputsError reports that a vertex attempt found one of its input
// relations marked lost. It is raised inside the attempt but handled by
// the scheduler, which walks lineage backwards and re-executes the
// missing chain.
type lostInputsError struct {
	vertex int // the consuming vertex
	arg    int // the first lost argument position
}

func (e *lostInputsError) Error() string {
	return fmt.Sprintf("dist: vertex %d input %d was lost with its shard; cascading recompute required",
		e.vertex, e.arg)
}

func (e *lostInputsError) Unwrap() error { return errInputsLost }

// retryable reports whether an attempt error is transient: only shard
// failures and exchange timeouts are worth re-executing a vertex for.
func retryable(err error) bool {
	return errors.Is(err, ErrShardFailed) || errors.Is(err, ErrExchangeTimeout)
}

// lineage is the recovery record of one relation: which vertex produced
// it under which physical operator, and how many attempts that took.
// The scheduler ref-counts every relation until its last consumer has
// *completed* (not merely started), so a failed consumer's direct
// inputs are normally still resident and a single-hop retry suffices —
// the property RDD lineage buys Spark. When a node loss takes the
// resident inputs with it, the same records drive the cascading
// recompute back to the nearest intact frontier.
type lineage struct {
	vertex   int    // producing vertex ID
	impl     string // physical operator name from the plan ("load" for sources)
	attempts int    // executions needed (1 = no faults)
}

// runGroup executes one recovery group (a vertex's fused plan nodes)
// with recovery: transient failures (ErrShardFailed,
// ErrExchangeTimeout) are retried with capped, jittered exponential
// backoff up to the runtime's retry budget and per-vertex deadline;
// deterministic inputs make every re-execution produce the same bits as
// a fault-free run. The input snapshot is re-copied per attempt so a
// retry re-derives the fused re-layouts from the original relations
// rather than a half-transformed attempt state. Lost inputs are not
// retried in place — the error escalates to the scheduler's cascade.
func (r *run) runGroup(gr *planGroup, ins []*relation, inputs map[string]*tensor.Dense) (*relation, error) {
	start := time.Now()
	vspan := r.tr.Start(r.span, "vertex").
		SetInt("id", int64(gr.vertex)).SetStr("impl", gr.node.Name).
		SetInt("node", int64(gr.node.ID)).SetStr("strategy", gr.node.Strategy)
	defer func() {
		r.vsec.Observe(time.Since(start).Seconds())
		vspan.End()
	}()
	for attempt := 0; ; attempt++ {
		rel, err := r.runAttempt(gr, ins, inputs, vspan, attempt)
		if err == nil {
			r.recordLineage(gr, attempt+1)
			vspan.SetInt("attempts", int64(attempt+1))
			return rel, nil
		}
		if cerr := r.ctx.Err(); cerr != nil {
			// The run was cancelled; report the context's cause rather
			// than whatever the teardown surfaced as.
			return nil, fmt.Errorf("dist: vertex %d aborted: %w", gr.vertex, cerr)
		}
		var lost *lostInputsError
		if errors.As(err, &lost) {
			return nil, err // only the scheduler's cascade can fix this
		}
		if !retryable(err) {
			return nil, err
		}
		if attempt >= r.rt.maxRetries {
			return nil, &RetriesExhaustedError{Vertex: gr.vertex, Attempts: attempt + 1, Cause: err}
		}
		if dl := r.rt.vertexDeadline; dl > 0 && time.Since(start) >= dl {
			return nil, &RetriesExhaustedError{Vertex: gr.vertex, Attempts: attempt + 1, Deadline: dl, Cause: err}
		}
		r.recordRetry(gr.vertex)
		bspan := r.tr.Start(vspan, "retry.backoff").SetInt("attempt", int64(attempt))
		berr := r.sleepBackoff(gr.vertex, attempt)
		bspan.End()
		if berr != nil {
			return nil, fmt.Errorf("dist: vertex %d aborted during retry backoff: %w", gr.vertex, berr)
		}
	}
}

// runAttempt runs one execution attempt of a group. When speculation is
// enabled and the run's vertex-duration histogram has enough
// observations to derive a deadline, the attempt is raced against a
// straggler timer: if the primary has not finished by the p99-derived
// deadline, a speculative duplicate launches with rotated owner shards
// and the first successful result wins — both attempts replay the same
// deterministic kernels over the same immutable inputs, so winner and
// loser are bit-identical and either result is correct. The loser is
// cancelled and drained on the run's attempt WaitGroup so shutdown
// never races a straggling task against queue close.
func (r *run) runAttempt(gr *planGroup, ins []*relation, inputs map[string]*tensor.Dense,
	vspan *obs.Span, attempt int) (*relation, error) {
	deadline := r.specDeadline()
	if deadline <= 0 {
		aspan := r.tr.Start(vspan, "attempt").SetInt("n", int64(attempt))
		defer aspan.End()
		x := &exec{run: r, ctx: r.ctx, attempt: attempt, span: aspan}
		return x.execGroup(gr, append([]*relation(nil), ins...), inputs)
	}

	type outcome struct {
		rel  *relation
		err  error
		spec bool
	}
	// Capacity 2 so neither attempt ever blocks sending its result: a
	// loser finishing after runAttempt returned must still exit.
	resc := make(chan outcome, 2)
	pctx, pcancel := context.WithCancel(r.ctx)
	defer pcancel()
	sctx, scancel := context.WithCancel(r.ctx)
	defer scancel()
	start := func(ctx context.Context, spec bool) {
		r.specWG.Add(1)
		go func() {
			defer r.specWG.Done()
			name, off := "attempt", 0
			if spec {
				name, off = "attempt.speculative", 1
			}
			aspan := r.tr.Start(vspan, name).SetInt("n", int64(attempt))
			x := &exec{run: r, ctx: ctx, attempt: attempt, ownerOff: off, span: aspan}
			rel, err := x.execGroup(gr, append([]*relation(nil), ins...), inputs)
			aspan.End()
			resc <- outcome{rel: rel, err: err, spec: spec}
		}()
	}
	start(pctx, false)
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	running, specLaunched := 1, false
	var primaryErr, specErr error
	for {
		select {
		case <-timer.C:
			if !specLaunched {
				specLaunched = true
				running++
				r.reg.Counter("dist.speculative.launches").Inc()
				vspan.SetInt("speculated", 1)
				start(sctx, true)
			}
		case out := <-resc:
			running--
			if out.err == nil {
				if out.spec {
					r.reg.Counter("dist.speculative.wins").Inc()
					pcancel()
				} else {
					scancel()
				}
				// A still-running loser drains through the buffered
				// channel and exits via specWG; its error is discarded.
				return out.rel, nil
			}
			if out.spec {
				specErr = out.err
			} else {
				primaryErr = out.err
			}
			if running > 0 {
				continue // the other attempt may still succeed
			}
			if primaryErr != nil {
				return nil, primaryErr
			}
			return nil, specErr
		}
	}
}

// specDeadline derives the straggler deadline for the next attempt from
// the run's own vertex-duration histogram: Multiplier × p99, floored at
// Floor. Zero means "do not speculate": speculation disabled, too few
// observations yet, or the p99 landed in the histogram's overflow
// bucket (no finite estimate).
func (r *run) specDeadline() time.Duration {
	sp := r.rt.spec
	if sp == nil {
		return 0
	}
	if r.vsec.Count() < int64(sp.MinObservations) {
		return 0
	}
	q := r.vsec.Quantile(0.99)
	if q <= 0 || math.IsInf(q, 1) {
		return 0
	}
	d := time.Duration(q * sp.Multiplier * float64(time.Second))
	if d < sp.Floor {
		d = sp.Floor
	}
	return d
}

// backoffDelay returns the jittered pause before retry `attempt` of a
// vertex: exponential growth from backoffBase capped at backoffCap,
// then equal jitter — half the nominal delay is kept fixed and the
// other half is scaled by a hash of (retry seed, vertex, attempt) — so
// every wait stays at least half the nominal backoff while concurrent
// retries decorrelate.
func (rt *Runtime) backoffDelay(vertex, attempt int) time.Duration {
	d := rt.backoffBase << uint(attempt)
	if d > rt.backoffCap || d <= 0 {
		d = rt.backoffCap
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(jitterFrac(rt.retrySeed, vertex, attempt)*float64(half))
}

// sleepBackoff waits the capped exponential backoff for the given
// attempt with equal jitter: the wait is d/2 plus a deterministic
// fraction of d/2 derived from (retry seed, vertex, attempt), so
// simultaneous shard failures fan out instead of retrying in lockstep
// while chaos runs stay reproducible under their fault seed. Returns
// early with the context's error on cancellation.
func (r *run) sleepBackoff(vertex, attempt int) error {
	d := r.rt.backoffDelay(vertex, attempt)
	if d <= 0 {
		return r.ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-r.ctx.Done():
		return r.ctx.Err()
	}
}

// jitterFrac hashes (seed, vertex, attempt) to a fraction in [0, 1)
// with a splitmix64 finalizer: pure, order-independent and
// schedule-independent, so the jitter a vertex's attempt draws never
// depends on which other vertices retried first.
func jitterFrac(seed int64, vertex, attempt int) float64 {
	z := uint64(seed) ^ uint64(vertex)*0x9e3779b97f4a7c15 ^ uint64(attempt)*0xbf58476d1ce4e5b9
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// recordRetry meters one recomputation of a vertex into the run's
// registry; the Report's Retries/RetriesByVertex are views over these
// counters.
func (r *run) recordRetry(vertex int) {
	r.reg.Counter("dist.retries", obs.L("vertex", strconv.Itoa(vertex))).Inc()
}

// recordLineage notes the recovery record of a completed group.
func (r *run) recordLineage(gr *planGroup, attempts int) {
	r.recMu.Lock()
	if r.lineages == nil {
		r.lineages = make(map[int]lineage)
	}
	r.lineages[gr.vertex] = lineage{vertex: gr.vertex, impl: gr.node.Name, attempts: attempts}
	r.recMu.Unlock()
}
