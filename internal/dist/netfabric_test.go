package dist_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/netfabric"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/testutil"
	"matopt/internal/workload"
)

// startWorker runs an in-process netfabric worker on an ephemeral
// loopback listener — the hermetic stand-in for a `matoptd -worker`
// process; the wire path (framing, pooling, socket I/O) is identical.
func startWorker(t *testing.T, opts ...netfabric.ServerOption) (*netfabric.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := netfabric.NewServer(opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("worker Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// tcpGoldenWorkload is the chain workload the TCP golden suite runs: it
// exercises broadcast, shuffle and aggregation exchanges.
func tcpGoldenWorkload(t *testing.T) (costmodel.Cluster, *core.Annotation, map[string]*tensor.Dense) {
	t.Helper()
	sz := workload.ChainSizes{
		Name: "tcp-golden",
		A:    shape.New(60, 150), B: shape.New(150, 250),
		C: shape.New(250, 1), D: shape.New(1, 250),
		E: shape.New(250, 60), F: shape.New(250, 60),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann := optimize(t, g, env)
	rng := rand.New(rand.NewSource(11))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	return env.Cluster, ann, inputs
}

// sequentialBaseline runs the serial sequential engine — the reference
// every transport must reproduce bit for bit.
func sequentialBaseline(t *testing.T, cl costmodel.Cluster, ann *core.Annotation, inputs map[string]*tensor.Dense) map[int]*tensor.Dense {
	t.Helper()
	serial := engine.New(cl)
	serial.KernelThreads = 1
	want, err := serial.RunCollect(ann, inputs)
	if err != nil {
		t.Fatalf("serial sequential run: %v", err)
	}
	return want
}

// TestGoldenTCPTransport is the tentpole's golden suite: at every
// golden shard count, dist results over loopback TCP — through one
// all-remote worker, through two workers (the multi-process topology),
// and through a mixed local/remote peer map — must be bit-identical to
// the in-process chan transport and the sequential engine.
func TestGoldenTCPTransport(t *testing.T) {
	cl, ann, inputs := tcpGoldenWorkload(t)
	want := sequentialBaseline(t, cl, ann, inputs)

	_, addr1 := startWorker(t)
	_, addr2 := startWorker(t)
	topologies := []struct {
		name  string
		peers []string
	}{
		{"one-worker", []string{addr1}},
		{"two-workers", []string{addr1, addr2}},
		{"mixed-local-remote", []string{netfabric.LocalPeer, addr1}},
	}
	for _, shards := range goldenShards {
		// The chan-transport run this PR must not perturb.
		rt, err := dist.New(cl, shards)
		if err != nil {
			t.Fatal(err)
		}
		chanGot, chanRep, err := rt.Run(context.Background(), ann, inputs)
		if err != nil {
			t.Fatalf("chan @%d shards: %v", shards, err)
		}
		if chanRep.Transport != "chan" {
			t.Fatalf("chan report says transport %q", chanRep.Transport)
		}
		compareSinks(t, fmt.Sprintf("chan @%d shards", shards), ann, want, chanGot)

		for _, topo := range topologies {
			label := fmt.Sprintf("tcp/%s @%d shards", topo.name, shards)
			tp, err := netfabric.NewTCP(topo.peers)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := dist.New(cl, shards, dist.WithTransport(tp))
			if err != nil {
				t.Fatal(err)
			}
			got, rep, err := rt.Run(context.Background(), ann, inputs)
			if cerr := tp.Close(); cerr != nil {
				t.Fatalf("%s: transport close: %v", label, cerr)
			}
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			compareSinks(t, label, ann, want, got)
			if rep.Transport != "tcp" {
				t.Fatalf("%s: report says transport %q", label, rep.Transport)
			}
			if topo.name == "one-worker" && shards > 1 {
				// Every shard is remote-hosted: all exchange traffic
				// crossed the wire, framed both directions. (A single
				// shard runs no exchanges at all, so there is no wire
				// traffic to assert on.)
				if rep.WireBytes == 0 || rep.WireMessages == 0 || rep.WireDials == 0 {
					t.Fatalf("%s: no wire traffic metered: %+v", label, rep)
				}
			}
			// The fabric's logical exchange accounting must not depend
			// on the transport underneath it.
			if rep.NetBytes != chanRep.NetBytes || rep.Messages != chanRep.Messages {
				t.Fatalf("%s: exchange meters diverge from chan transport: %d B/%d msgs vs %d B/%d msgs",
					label, rep.NetBytes, rep.Messages, chanRep.NetBytes, chanRep.Messages)
			}
		}
	}
}

// TestChaosNetSeveredConn severs one session's connection mid-exchange:
// the consuming vertex must fail with ErrExchangeTimeout, retry over a
// fresh dial, and finish bit-identical to the sequential engine.
func TestChaosNetSeveredConn(t *testing.T) {
	cl, ann, inputs := tcpGoldenWorkload(t)
	want := sequentialBaseline(t, cl, ann, inputs)
	for _, shards := range goldenShards {
		label := fmt.Sprintf("severed @%d shards", shards)
		_, addr := startWorker(t, netfabric.SeverSessions(2))
		tp, err := netfabric.NewTCP([]string{addr}, netfabric.WithIOTimeout(5*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := dist.New(cl, shards, dist.WithTransport(tp))
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := rt.Run(context.Background(), ann, inputs)
		if cerr := tp.Close(); cerr != nil {
			t.Fatalf("%s: transport close: %v", label, cerr)
		}
		if err != nil {
			t.Fatalf("%s: run failed despite retry budget: %v", label, err)
		}
		compareSinks(t, label, ann, want, got)
		if shards > 1 {
			// A single shard opens no sessions, so nothing severs; at
			// every other count the fault must have fired and healed.
			if rep.Retries == 0 {
				t.Fatalf("%s: severed connection triggered no retries: %+v", label, rep)
			}
			if rep.WireReconnects == 0 {
				t.Fatalf("%s: recovery did not re-dial: %+v", label, rep)
			}
		}
	}
}

// TestChaosNetDialRefusedSurfacesExchangeTimeout kills the worker
// mid-run (connections die, later dials are refused): every failure
// must surface through the typed ErrExchangeTimeout ladder — never a
// raw net error — and exhaust into RetriesExhaustedError.
func TestChaosNetDialRefusedSurfacesExchangeTimeout(t *testing.T) {
	cl, ann, inputs := tcpGoldenWorkload(t)
	for _, shards := range goldenShards {
		if shards == 1 {
			continue // a single shard opens no sessions — no wire to kill
		}
		label := fmt.Sprintf("refused @%d shards", shards)
		_, addr := startWorker(t, netfabric.CloseAfterSessions(1))
		tp, err := netfabric.NewTCP([]string{addr}, netfabric.WithIOTimeout(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := dist.New(cl, shards,
			dist.WithTransport(tp),
			dist.WithRetryBackoff(time.Millisecond, 2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = rt.Run(context.Background(), ann, inputs)
		if cerr := tp.Close(); cerr != nil {
			t.Fatalf("%s: transport close: %v", label, cerr)
		}
		if err == nil {
			t.Fatalf("%s: run succeeded with a dead worker", label)
		}
		if !errors.Is(err, dist.ErrExchangeTimeout) {
			t.Fatalf("%s: wire failure not mapped to ErrExchangeTimeout: %v", label, err)
		}
		if !errors.Is(err, dist.ErrRetriesExhausted) {
			t.Fatalf("%s: expected retries exhausted, got: %v", label, err)
		}
	}
}

// TestChaosNetShutdownLeakFree runs a full TCP-transport dist run —
// including a failing one against a departed worker — then requires
// the process back at its goroutine baseline once transport and worker
// are closed: no read loops, collectors, or handlers may survive.
func TestChaosNetShutdownLeakFree(t *testing.T) {
	cl, ann, inputs := tcpGoldenWorkload(t)
	testutil.CheckGoroutines(t, func() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := netfabric.NewServer()
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		tp, err := netfabric.NewTCP([]string{netfabric.LocalPeer, ln.Addr().String()})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := dist.New(cl, 4, dist.WithTransport(tp))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := rt.Run(context.Background(), ann, inputs); err != nil {
			t.Fatal(err)
		}
		if err := tp.Close(); err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("worker Serve: %v", err)
		}
	})
}
