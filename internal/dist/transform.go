package dist

import (
	"fmt"

	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/shape"
)

// transform executes one fused re-layout node: the consuming vertex's
// input relation is gathered onto a deterministic stitch shard, the
// matrix is assembled and re-chunked there with the exact code the
// sequential engine's Transform uses (so values stay bit-identical),
// and the new chunks are scattered to their home shards. Gather and
// scatter traffic is metered on one "transform" exchange.
func (r *exec) transform(vertex, arg int, rel *relation, target format.Format) (*relation, error) {
	if target == rel.format {
		return rel, nil
	}
	m := r.fab.meterFor(vertex, "transform", fmt.Sprintf("arg%d %v→%v", arg, rel.format, target))
	stitch := r.ownerShard(vertex + 31*arg)
	gathered, err := r.gatherAt(m, rel, stitch)
	if err != nil {
		return nil, err
	}
	var tuples []engine.Tuple
	var s shape.Shape
	var density float64
	err = r.on(stitch, func() error {
		whole := &engine.Relation{
			Format: rel.format, Shape: rel.shape, Density: rel.density,
			Parts: [][]engine.Tuple{gathered},
		}
		md, err := engine.Assemble(whole)
		if err != nil {
			return fmt.Errorf("dist: transform assemble: %w", err)
		}
		tuples, s, density, err = engine.Chunk(md, target, r.rt.cluster.MaxTupleBytes)
		return err
	})
	if err != nil {
		return nil, err
	}
	if target.Kind == format.Single || target.Kind == format.CSRSingle {
		return r.singleRelAt(target, s, density, tuples[0], stitch), nil
	}
	// Scatter the re-chunked tuples from the stitch shard to their home
	// shards.
	recv, err := r.exchange(m, func(sh int) ([]routed, error) {
		if sh != stitch {
			return nil, nil
		}
		var out []routed
		for _, t := range tuples {
			out = append(out, routed{dst: r.shardOf(t.Key), msg: message{Key: t.Key, Tuple: t}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: target, shape: s, density: density, parts: messageTuples(recv)}, nil
}
