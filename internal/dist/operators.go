package dist

import (
	"fmt"

	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/plan"
	"matopt/internal/shape"
	"matopt/internal/sparse"
	"matopt/internal/tensor"
)

// distExec executes one atomic computation implementation over sharded
// relations that are already in the implementation's required formats.
// Every executor mirrors its sequential counterpart in
// internal/engine/executors.go operation for operation: same kernels,
// same pairing, and — via (key, seq)-sorted exchanges — the same
// floating-point reduction order, so results are byte-identical.
// Executors take the per-attempt exec view so a speculative duplicate
// of a straggling attempt can run concurrently with the primary without
// sharing attempt state (context, span, owner-shard rotation).
type distExec func(r *exec, n *plan.Node, ins []*relation) (*relation, error)

var distExecutors = map[string]distExec{}

func init() {
	distExecutors["mm-single-single"] = dMMSingleSingle
	distExecutors["mm-bcast-single-colstrip"] = dMMBcastSingleColStrip
	distExecutors["mm-rowstrip-bcast-single"] = dMMRowStripBcastSingle
	distExecutors["mm-rowstrip-colstrip"] = dMMRowStripColStrip
	distExecutors["mm-colstrip-rowstrip-agg"] = dMMColStripRowStripAgg
	distExecutors["mm-tile-tile-shuffle"] = dMMTileTileShuffle
	distExecutors["mm-tile-tile-bcast"] = dMMTileTileBcast
	distExecutors["mm-bcast-single-tile"] = dMMBcastSingleTile
	distExecutors["mm-tile-bcast-single"] = dMMTileBcastSingle
	distExecutors["mm-csr-single-single"] = dMMCSRSingleSingle
	distExecutors["mm-bcast-csr-rowstrip-agg"] = dMMBcastCSRRowStripAgg
	distExecutors["mm-csr-rowstrip-bcast-single"] = dMMCSRRowStripBcastSingle
	distExecutors["mm-bcast-coo-single"] = dMMBcastCOOSingle

	for _, name := range []string{"add-single", "sub-single", "hadamard-single"} {
		distExecutors[name] = dEWSingle
	}
	for _, name := range []string{"add-copart", "sub-copart", "hadamard-copart"} {
		distExecutors[name] = dEWCoPart
	}
	for _, name := range []string{"relu-map", "relugrad-map", "sigmoid-map", "exp-map", "neg-map", "scalarmul-map"} {
		distExecutors[name] = dMap
	}
	distExecutors["softmax-single"] = dMap
	distExecutors["softmax-rowstrip"] = dMap
	distExecutors["addbias-single"] = dAddBias
	distExecutors["addbias-rowstrip-bcast"] = dAddBias
	distExecutors["rowsums-single"] = dRowSums
	distExecutors["rowsums-rowstrip"] = dRowSums
	distExecutors["colsums-single"] = dColSums
	distExecutors["colsums-colstrip"] = dColSums
	distExecutors["transpose-single"] = dTransposeDense
	distExecutors["transpose-tile"] = dTransposeDense
	distExecutors["transpose-strip"] = dTransposeDense
	distExecutors["transpose-csr-single"] = dTransposeCSR
	distExecutors["inverse-single"] = dInverse
}

// singleRelAt builds a one-tuple relation resident on the given shard.
func (r *run) singleRelAt(f format.Format, s shape.Shape, density float64, t engine.Tuple, shard int) *relation {
	parts := make([][]engine.Tuple, r.shards())
	parts[shard] = []engine.Tuple{t}
	return &relation{format: f, shape: s, density: density, parts: parts}
}

// colocate moves the smaller of two one-tuple relations to the shard
// holding the larger (the movement the cost model prices as min-bytes)
// and returns both tuples plus the compute site.
func (r *exec) colocate(n *plan.Node, a, b *relation) (engine.Tuple, engine.Tuple, int, error) {
	ta, sa, err := a.soleTuple()
	if err != nil {
		return engine.Tuple{}, engine.Tuple{}, -1, err
	}
	tb, sb, err := b.soleTuple()
	if err != nil {
		return engine.Tuple{}, engine.Tuple{}, -1, err
	}
	site := sa
	if tb.Bytes() > ta.Bytes() {
		site = sb
	}
	if sa != site || sb != site {
		m := r.fab.meterFor(n.Vertex, "move", "co-locate singles")
		if sa != site {
			ts, err := r.gatherAt(m, a, site)
			if err != nil {
				return engine.Tuple{}, engine.Tuple{}, -1, err
			}
			ta = ts[0]
		}
		if sb != site {
			ts, err := r.gatherAt(m, b, site)
			if err != nil {
				return engine.Tuple{}, engine.Tuple{}, -1, err
			}
			tb = ts[0]
		}
	}
	return ta, tb, site, nil
}

// broadcastSingleDense broadcasts a one-tuple dense relation and
// returns each shard's copy.
func (r *exec) broadcastSingleDense(n *plan.Node, rel *relation, label string) ([]*tensor.Dense, error) {
	if _, _, err := rel.singleDense(); err != nil {
		return nil, err
	}
	m := r.fab.meterFor(n.Vertex, "broadcast", label)
	copies, err := r.broadcastTuples(m, rel)
	if err != nil {
		return nil, err
	}
	out := make([]*tensor.Dense, r.shards())
	for s := range copies {
		if len(copies[s]) != 1 || copies[s][0].Dense == nil {
			return nil, fmt.Errorf("dist: broadcast of %v delivered %d tuples to shard %d", rel.format, len(copies[s]), s)
		}
		out[s] = copies[s][0].Dense
	}
	return out, nil
}

func dMMSingleSingle(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	if _, _, err := ins[0].singleDense(); err != nil {
		return nil, err
	}
	if _, _, err := ins[1].singleDense(); err != nil {
		return nil, err
	}
	ta, tb, site, err := r.colocate(n, ins[0], ins[1])
	if err != nil {
		return nil, err
	}
	var rel *relation
	err = r.on(site, func() error {
		out := r.kern().MatMul(ta.Dense, tb.Dense)
		rel = r.singleRelAt(format.NewSingle(), n.OutShape, out.Density(),
			engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: out}, site)
		return nil
	})
	return rel, err
}

func dMMBcastSingleColStrip(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	as, err := r.broadcastSingleDense(n, ins[0], "broadcast(a)")
	if err != nil {
		return nil, err
	}
	parts := make([][]engine.Tuple, r.shards())
	err = r.parallel(func(s int) error {
		for _, t := range sortedShard(ins[1], s) {
			parts[s] = append(parts[s], engine.Tuple{Key: t.Key, Dense: kc.MatMul(as[s], t.Dense)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: ins[1].format, shape: n.OutShape, density: 1, parts: parts}, nil
}

func dMMRowStripBcastSingle(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	bs, err := r.broadcastSingleDense(n, ins[1], "broadcast(b)")
	if err != nil {
		return nil, err
	}
	parts := make([][]engine.Tuple, r.shards())
	err = r.parallel(func(s int) error {
		for _, t := range sortedShard(ins[0], s) {
			parts[s] = append(parts[s], engine.Tuple{Key: t.Key, Dense: kc.MatMul(t.Dense, bs[s])})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: ins[0].format, shape: n.OutShape, density: 1, parts: parts}, nil
}

func dMMRowStripColStrip(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	// Broadcast the smaller side; every (rowstrip, colstrip) pair is
	// multiplied where the larger side's tuple lives, and each output
	// tile is shuffled to its home shard.
	bcast := 0
	if ins[1].bytes() < ins[0].bytes() {
		bcast = 1
	}
	m := r.fab.meterFor(n.Vertex, "broadcast", fmt.Sprintf("broadcast(arg%d)", bcast))
	copies, err := r.broadcastTuples(m, ins[bcast])
	if err != nil {
		return nil, err
	}
	sh := r.fab.meterFor(n.Vertex, "shuffle", "shuffle(out)")
	recv, err := r.exchange(sh, func(s int) ([]routed, error) {
		var out []routed
		for _, tl := range sortedShard(ins[1-bcast], s) {
			for _, tc := range copies[s] {
				ta, tb := tl, tc
				if bcast == 0 {
					ta, tb = tc, tl
				}
				key := engine.Key{I: ta.Key.I, J: tb.Key.J}
				out = append(out, routed{dst: r.shardOf(key), msg: message{
					Key:   key,
					Tuple: engine.Tuple{Key: key, Dense: kc.MatMul(ta.Dense, tb.Dense)},
				}})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: format.NewTile(ins[0].format.Block), shape: n.OutShape, density: 1,
		parts: messageTuples(recv)}, nil
}

func dMMColStripRowStripAgg(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	// Co-partition by contraction index: A's colstrip (0, k) joins B's
	// rowstrip (k, 0) on shardOf((k, 0)) — B is already home there, so
	// only A moves. Partial products then aggregate on the owner shard
	// in contraction order.
	sh := r.fab.meterFor(n.Vertex, "shuffle", "shuffle(a)")
	recvA, err := r.exchange(sh, func(s int) ([]routed, error) {
		var out []routed
		for _, t := range ins[0].parts[s] {
			dst := r.shardOf(engine.Key{I: t.Key.J, J: 0})
			out = append(out, routed{dst: dst, msg: message{Key: t.Key, Tuple: t}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	owner := r.ownerShard(n.Vertex)
	ag := r.fab.meterFor(n.Vertex, "aggregate", "partials→owner")
	recvP, err := r.exchange(ag, func(s int) ([]routed, error) {
		bByKey := make(map[int64]*tensor.Dense)
		for _, t := range ins[1].parts[s] {
			bByKey[t.Key.I] = t.Dense
		}
		var out []routed
		for _, ma := range recvA[s] { // sorted: contraction index ascending
			ta := ma.Tuple
			tb, ok := bByKey[ta.Key.J]
			if !ok {
				return nil, fmt.Errorf("dist: co-partition join missed strip %d", ta.Key.J)
			}
			prod := kc.MatMul(ta.Dense, tb)
			out = append(out, routed{dst: owner, msg: message{
				Key: engine.Key{I: 0, J: 0}, Seq: ta.Key.J,
				Tuple: engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: prod},
			}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var rel *relation
	err = r.on(owner, func() error {
		acc := tensor.NewDense(int(n.OutShape.Rows), int(n.OutShape.Cols))
		foldInto(acc, recvP[owner])
		rel = r.singleRelAt(format.NewSingle(), n.OutShape, acc.Density(),
			engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: acc}, owner)
		return nil
	})
	return rel, err
}

// tileTileProducts pairs A tiles (i, k) with B tiles (k, j), multiplies
// where pair() says the pair is resident, and group-by-SUM reduces the
// partial products onto each output tile's home shard in contraction
// order — shared by the shuffle and broadcast tile strategies.
func tileTileProducts(r *exec, n *plan.Node, blk int64,
	produce func(shard int, emit func(ta, tb engine.Tuple)) error) (*relation, error) {
	kc := r.kern()
	sh := r.fab.meterFor(n.Vertex, "shuffle", "shuffle(out)")
	recv, err := r.exchange(sh, func(s int) ([]routed, error) {
		var out []routed
		err := produce(s, func(ta, tb engine.Tuple) {
			key := engine.Key{I: ta.Key.I, J: tb.Key.J}
			prod := kc.MatMul(ta.Dense, tb.Dense)
			out = append(out, routed{dst: r.shardOf(key), msg: message{
				Key: key, Seq: ta.Key.J,
				Tuple: engine.Tuple{Key: key, Dense: prod},
			}})
		})
		return out, err
	})
	if err != nil {
		return nil, err
	}
	parts := make([][]engine.Tuple, r.shards())
	err = r.parallel(func(s int) error {
		parts[s] = foldMessages(recv[s])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: format.NewTile(blk), shape: n.OutShape, density: 1, parts: parts}, nil
}

func dMMTileTileShuffle(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	// Shuffle both sides by contraction index k so tile pairs meet on
	// shardOf((k, k)).
	cOf := func(k int64) int { return r.shardOf(engine.Key{I: k, J: k}) }
	shA := r.fab.meterFor(n.Vertex, "shuffle", "shuffle(a)")
	recvA, err := r.exchange(shA, func(s int) ([]routed, error) {
		var out []routed
		for _, t := range ins[0].parts[s] {
			out = append(out, routed{dst: cOf(t.Key.J), msg: message{Key: t.Key, Tuple: t}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	shB := r.fab.meterFor(n.Vertex, "shuffle", "shuffle(b)")
	recvB, err := r.exchange(shB, func(s int) ([]routed, error) {
		var out []routed
		for _, t := range ins[1].parts[s] {
			out = append(out, routed{dst: cOf(t.Key.I), msg: message{Key: t.Key, Tuple: t}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return tileTileProducts(r, n, ins[0].format.Block, func(s int, emit func(ta, tb engine.Tuple)) error {
		bByRow := make(map[int64][]engine.Tuple)
		for _, m := range recvB[s] { // sorted, so buckets stay key-ordered
			bByRow[m.Key.I] = append(bByRow[m.Key.I], m.Tuple)
		}
		for _, ma := range recvA[s] {
			for _, tb := range bByRow[ma.Key.J] {
				emit(ma.Tuple, tb)
			}
		}
		return nil
	})
}

func dMMTileTileBcast(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	// Broadcast the smaller side; each pair is multiplied where the
	// larger side's tile lives (exactly once, since that tile is unique
	// to one shard).
	bcast := 0
	if ins[1].bytes() < ins[0].bytes() {
		bcast = 1
	}
	m := r.fab.meterFor(n.Vertex, "broadcast", fmt.Sprintf("broadcast(arg%d)", bcast))
	copies, err := r.broadcastTuples(m, ins[bcast])
	if err != nil {
		return nil, err
	}
	return tileTileProducts(r, n, ins[0].format.Block, func(s int, emit func(ta, tb engine.Tuple)) error {
		if bcast == 1 {
			bByRow := make(map[int64][]engine.Tuple)
			for _, t := range copies[s] {
				bByRow[t.Key.I] = append(bByRow[t.Key.I], t)
			}
			for _, ta := range sortedShard(ins[0], s) {
				for _, tb := range bByRow[ta.Key.J] {
					emit(ta, tb)
				}
			}
			return nil
		}
		bByRow := make(map[int64][]engine.Tuple)
		for _, t := range sortedShard(ins[1], s) {
			bByRow[t.Key.I] = append(bByRow[t.Key.I], t)
		}
		for _, ta := range copies[s] {
			for _, tb := range bByRow[ta.Key.J] {
				emit(ta, tb)
			}
		}
		return nil
	})
}

func dMMBcastSingleTile(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	as, err := r.broadcastSingleDense(n, ins[0], "broadcast(a)")
	if err != nil {
		return nil, err
	}
	b := int(ins[1].format.Block)
	sh := r.fab.meterFor(n.Vertex, "shuffle", "partials")
	recv, err := r.exchange(sh, func(s int) ([]routed, error) {
		a := as[s]
		var out []routed
		for _, tb := range sortedShard(ins[1], s) {
			c0 := int(tb.Key.I) * b
			aSlice := a.Slice(0, a.Rows, c0, c0+tb.Dense.Rows)
			prod := kc.MatMul(aSlice, tb.Dense)
			key := engine.Key{I: 0, J: tb.Key.J}
			out = append(out, routed{dst: r.shardOf(key), msg: message{
				Key: key, Seq: tb.Key.I,
				Tuple: engine.Tuple{Key: key, Dense: prod},
			}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	parts := make([][]engine.Tuple, r.shards())
	err = r.parallel(func(s int) error {
		parts[s] = foldMessages(recv[s])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: format.NewColStrip(ins[1].format.Block), shape: n.OutShape, density: 1, parts: parts}, nil
}

func dMMTileBcastSingle(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	bs, err := r.broadcastSingleDense(n, ins[1], "broadcast(b)")
	if err != nil {
		return nil, err
	}
	bk := int(ins[0].format.Block)
	sh := r.fab.meterFor(n.Vertex, "shuffle", "partials")
	recv, err := r.exchange(sh, func(s int) ([]routed, error) {
		b := bs[s]
		var out []routed
		for _, ta := range sortedShard(ins[0], s) {
			r0 := int(ta.Key.J) * bk
			bSlice := b.Slice(r0, r0+ta.Dense.Cols, 0, b.Cols)
			prod := kc.MatMul(ta.Dense, bSlice)
			key := engine.Key{I: ta.Key.I, J: 0}
			out = append(out, routed{dst: r.shardOf(key), msg: message{
				Key: key, Seq: ta.Key.J,
				Tuple: engine.Tuple{Key: key, Dense: prod},
			}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	parts := make([][]engine.Tuple, r.shards())
	err = r.parallel(func(s int) error {
		parts[s] = foldMessages(recv[s])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: format.NewRowStrip(ins[0].format.Block), shape: n.OutShape, density: 1, parts: parts}, nil
}

func dMMCSRSingleSingle(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	if _, _, err := ins[0].singleCSR(); err != nil {
		return nil, err
	}
	if _, _, err := ins[1].singleDense(); err != nil {
		return nil, err
	}
	ta, tb, site, err := r.colocate(n, ins[0], ins[1])
	if err != nil {
		return nil, err
	}
	var rel *relation
	err = r.on(site, func() error {
		out := ta.CSR.MulDenseK(r.kern(), tb.Dense)
		rel = r.singleRelAt(format.NewSingle(), n.OutShape, out.Density(),
			engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: out}, site)
		return nil
	})
	return rel, err
}

func dMMBcastCSRRowStripAgg(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	if _, _, err := ins[0].singleCSR(); err != nil {
		return nil, err
	}
	m := r.fab.meterFor(n.Vertex, "broadcast", "broadcast(a)")
	copies, err := r.broadcastTuples(m, ins[0])
	if err != nil {
		return nil, err
	}
	h := int(ins[1].format.Block)
	owner := r.ownerShard(n.Vertex)
	ag := r.fab.meterFor(n.Vertex, "aggregate", "partials→owner")
	recv, err := r.exchange(ag, func(s int) ([]routed, error) {
		if len(copies[s]) != 1 || copies[s][0].CSR == nil {
			return nil, fmt.Errorf("dist: broadcast csr missing on shard %d", s)
		}
		a := copies[s][0].CSR
		var out []routed
		for _, tb := range sortedShard(ins[1], s) {
			r0 := int(tb.Key.I) * h
			aSlice := engine.CSRColSlice(a, r0, r0+tb.Dense.Rows)
			prod := aSlice.MulDenseK(kc, tb.Dense)
			out = append(out, routed{dst: owner, msg: message{
				Key: engine.Key{I: 0, J: 0}, Seq: tb.Key.I,
				Tuple: engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: prod},
			}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var rel *relation
	err = r.on(owner, func() error {
		acc := tensor.NewDense(int(n.OutShape.Rows), int(n.OutShape.Cols))
		foldInto(acc, recv[owner])
		rel = r.singleRelAt(format.NewSingle(), n.OutShape, acc.Density(),
			engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: acc}, owner)
		return nil
	})
	return rel, err
}

func dMMCSRRowStripBcastSingle(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	bs, err := r.broadcastSingleDense(n, ins[1], "broadcast(b)")
	if err != nil {
		return nil, err
	}
	parts := make([][]engine.Tuple, r.shards())
	err = r.parallel(func(s int) error {
		for _, ta := range sortedShard(ins[0], s) {
			parts[s] = append(parts[s], engine.Tuple{Key: ta.Key, Dense: ta.CSR.MulDenseK(kc, bs[s])})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: format.NewRowStrip(ins[0].format.Block), shape: n.OutShape, density: 1, parts: parts}, nil
}

func dMMBcastCOOSingle(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	bs, err := r.broadcastSingleDense(n, ins[1], "broadcast(b)")
	if err != nil {
		return nil, err
	}
	owner := r.ownerShard(n.Vertex)
	ag := r.fab.meterFor(n.Vertex, "aggregate", "scaled rows→owner")
	recv, err := r.exchange(ag, func(s int) ([]routed, error) {
		b := bs[s]
		var out []routed
		for _, t := range sortedShard(ins[0], s) {
			if !t.IsVal {
				return nil, fmt.Errorf("dist: COO relation holds a non-triple tuple")
			}
			if t.Val == 0 {
				continue
			}
			// Scale b's row t.Key.J by the triple's value; the owner adds
			// the products into the accumulator row — the identical
			// multiply-then-add the sequential executor performs.
			c := tensor.NewDense(1, b.Cols)
			brow := b.Data[int(t.Key.J)*b.Cols : (int(t.Key.J)+1)*b.Cols]
			for j, bv := range brow {
				c.Data[j] = t.Val * bv
			}
			out = append(out, routed{dst: owner, msg: message{
				Key:   t.Key,
				Tuple: engine.Tuple{Key: t.Key, Dense: c},
			}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var rel *relation
	err = r.on(owner, func() error {
		acc := tensor.NewDense(int(n.OutShape.Rows), int(n.OutShape.Cols))
		for _, g := range recv[owner] { // sorted by element coordinate
			row := acc.Data[int(g.Key.I)*acc.Cols : (int(g.Key.I)+1)*acc.Cols]
			for j, cv := range g.Tuple.Dense.Data {
				row[j] += cv
			}
		}
		rel = r.singleRelAt(format.NewSingle(), n.OutShape, acc.Density(),
			engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: acc}, owner)
		return nil
	})
	return rel, err
}

func ewKernel(kc tensor.K, k op.Kind) func(a, b *tensor.Dense) *tensor.Dense {
	switch k {
	case op.Add:
		return kc.Add
	case op.Sub:
		return kc.Sub
	case op.Hadamard:
		return kc.Hadamard
	}
	panic(fmt.Sprintf("dist: %v is not an elementwise op", k))
}

func dEWSingle(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	if _, _, err := ins[0].singleDense(); err != nil {
		return nil, err
	}
	if _, _, err := ins[1].singleDense(); err != nil {
		return nil, err
	}
	ta, tb, site, err := r.colocate(n, ins[0], ins[1])
	if err != nil {
		return nil, err
	}
	kern := ewKernel(r.kern(), n.Op.Kind)
	var rel *relation
	err = r.on(site, func() error {
		out := kern(ta.Dense, tb.Dense)
		rel = r.singleRelAt(format.NewSingle(), n.OutShape, out.Density(),
			engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: out}, site)
		return nil
	})
	return rel, err
}

func dEWCoPart(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	// Re-home both sides onto shardOf(key) — free for relations already
	// hash partitioned — then join locally per shard.
	cp := r.fab.meterFor(n.Vertex, "copart", "co-partition join")
	ra, err := r.routeByKey(cp, ins[0])
	if err != nil {
		return nil, err
	}
	rb, err := r.routeByKey(cp, ins[1])
	if err != nil {
		return nil, err
	}
	kern := ewKernel(r.kern(), n.Op.Kind)
	parts := make([][]engine.Tuple, r.shards())
	err = r.parallel(func(s int) error {
		bByKey := make(map[engine.Key]*tensor.Dense, len(rb[s]))
		for _, t := range rb[s] {
			bByKey[t.Key] = t.Dense
		}
		for _, ta := range ra[s] {
			tb, ok := bByKey[ta.Key]
			if !ok {
				return fmt.Errorf("dist: co-partition join missed key %v", ta.Key)
			}
			parts[s] = append(parts[s], engine.Tuple{Key: ta.Key, Dense: kern(ta.Dense, tb)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: ins[0].format, shape: n.OutShape, density: 1, parts: parts}, nil
}

func mapKernel(kc tensor.K, o op.Op) func(*tensor.Dense) *tensor.Dense {
	switch o.Kind {
	case op.ReLU:
		return kc.ReLU
	case op.ReLUGrad:
		return kc.ReLUGrad
	case op.Sigmoid:
		return kc.Sigmoid
	case op.Exp:
		return kc.Exp
	case op.Neg:
		return kc.Neg
	case op.Softmax:
		return kc.Softmax
	case op.ScalarMul:
		s := o.Scalar
		return func(m *tensor.Dense) *tensor.Dense { return kc.Scale(m, s) }
	}
	panic(fmt.Sprintf("dist: %v is not a map op", o.Kind))
}

func dMap(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kern := mapKernel(r.kern(), n.Op)
	parts := make([][]engine.Tuple, r.shards())
	err := r.parallel(func(s int) error {
		for _, t := range sortedShard(ins[0], s) {
			switch {
			case t.Dense != nil:
				parts[s] = append(parts[s], engine.Tuple{Key: t.Key, Dense: kern(t.Dense)})
			case t.CSR != nil:
				parts[s] = append(parts[s], engine.Tuple{Key: t.Key, CSR: sparse.FromDense(kern(t.CSR.ToDense()))})
			case t.IsVal:
				d := tensor.FromRows([][]float64{{t.Val}})
				parts[s] = append(parts[s], engine.Tuple{Key: t.Key, Val: kern(d).At(0, 0), IsVal: true})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: ins[0].format, shape: n.OutShape, density: ins[0].density, parts: parts}, nil
}

func dAddBias(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	kc := r.kern()
	bs, err := r.broadcastSingleDense(n, ins[1], "broadcast(bias)")
	if err != nil {
		return nil, err
	}
	parts := make([][]engine.Tuple, r.shards())
	err = r.parallel(func(s int) error {
		for _, t := range sortedShard(ins[0], s) {
			parts[s] = append(parts[s], engine.Tuple{Key: t.Key, Dense: kc.AddBias(t.Dense, bs[s])})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: ins[0].format, shape: n.OutShape, density: 1, parts: parts}, nil
}

func dRowSums(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	return dLocalMap(r, n, ins[0], r.kern().RowSums)
}

func dColSums(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	return dLocalMap(r, n, ins[0], r.kern().ColSums)
}

// dLocalMap applies a per-tuple dense kernel shard-locally, keeping
// keys and placement.
func dLocalMap(r *exec, n *plan.Node, in *relation, kern func(*tensor.Dense) *tensor.Dense) (*relation, error) {
	parts := make([][]engine.Tuple, r.shards())
	err := r.parallel(func(s int) error {
		for _, t := range sortedShard(in, s) {
			parts[s] = append(parts[s], engine.Tuple{Key: t.Key, Dense: kern(t.Dense)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: in.format, shape: n.OutShape, density: 1, parts: parts}, nil
}

func dTransposeDense(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	in := ins[0]
	kc := r.kern()
	var outFmt format.Format
	switch in.format.Kind {
	case format.Single:
		t, holder, err := in.soleTuple()
		if err != nil {
			return nil, err
		}
		var rel *relation
		err = r.on(holder, func() error {
			rel = r.singleRelAt(format.NewSingle(), n.OutShape, in.density,
				engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: r.kern().Transpose(t.Dense)}, holder)
			return nil
		})
		return rel, err
	case format.Tile:
		outFmt = in.format
	case format.RowStrip:
		outFmt = format.NewColStrip(in.format.Block)
	case format.ColStrip:
		outFmt = format.NewRowStrip(in.format.Block)
	default:
		return nil, fmt.Errorf("dist: transpose executor got %v", in.format)
	}
	// Transposing flips keys, so every chunk re-homes: a shuffle.
	sh := r.fab.meterFor(n.Vertex, "shuffle", "transposed chunks")
	recv, err := r.exchange(sh, func(s int) ([]routed, error) {
		var out []routed
		for _, t := range sortedShard(in, s) {
			nk := engine.Key{I: t.Key.J, J: t.Key.I}
			out = append(out, routed{dst: r.shardOf(nk), msg: message{
				Key:   nk,
				Tuple: engine.Tuple{Key: nk, Dense: kc.Transpose(t.Dense)},
			}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &relation{format: outFmt, shape: n.OutShape, density: in.density, parts: messageTuples(recv)}, nil
}

func dTransposeCSR(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	a, holder, err := ins[0].singleCSR()
	if err != nil {
		return nil, err
	}
	var rel *relation
	err = r.on(holder, func() error {
		out := sparse.FromDense(r.kern().Transpose(a.ToDense()))
		rel = r.singleRelAt(format.NewCSRSingle(), n.OutShape, ins[0].density,
			engine.Tuple{Key: engine.Key{I: 0, J: 0}, CSR: out}, holder)
		return nil
	})
	return rel, err
}

func dInverse(r *exec, n *plan.Node, ins []*relation) (*relation, error) {
	a, holder, err := ins[0].singleDense()
	if err != nil {
		return nil, err
	}
	var rel *relation
	err = r.on(holder, func() error {
		inv, err := tensor.Inverse(a)
		if err != nil {
			return err
		}
		rel = r.singleRelAt(format.NewSingle(), n.OutShape, 1,
			engine.Tuple{Key: engine.Key{I: 0, J: 0}, Dense: inv}, holder)
		return nil
	})
	return rel, err
}
