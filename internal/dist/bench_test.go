package dist_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/obs"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// benchResult is the record `make bench` writes to BENCH_dist.json.
// PhaseNs is a span-derived breakdown of one traced run: total
// nanoseconds per span name (dist.run, vertex, exchange, …), summed
// over a separate instrumented pass so the timed loop stays untraced.
type benchResult struct {
	Workload   string           `json:"workload"`
	Shards     int              `json:"shards"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"numcpu"`
	SeqNs      int64            `json:"seq_ns"`
	DistNs     int64            `json:"dist_ns"`
	Speedup    float64          `json:"speedup"`
	NetBytes   int64            `json:"net_bytes"`
	PeakBytes  int64            `json:"peak_bytes"`
	PhaseNs    map[string]int64 `json:"phase_ns"`
}

// BenchmarkDistVsSequential times the same optimized plan on the
// sequential reference engine and on the dist runtime at 8 shards. The
// speedup metric reflects the host: on a multi-core machine the shards
// run on separate cores; on a single-core container both engines do the
// same work and the ratio hovers around 1. When BENCH_DIST_JSON names a
// file, the measured comparison is written there as JSON.
func BenchmarkDistVsSequential(b *testing.B) {
	const shards = 8
	sz := workload.ChainSizes{
		Name: "bench",
		A:    shape.New(200, 600), B: shape.New(600, 1000),
		C: shape.New(1000, 1), D: shape.New(1, 1000),
		E: shape.New(1000, 200), F: shape.New(1000, 200),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		b.Fatal(err)
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	eng := engine.New(cl)
	rt, err := dist.New(cl, shards)
	if err != nil {
		b.Fatal(err)
	}

	var seqTotal, distTotal time.Duration
	var rep *dist.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := eng.RunCollect(ann, inputs); err != nil {
			b.Fatal(err)
		}
		seqTotal += time.Since(t0)

		t1 := time.Now()
		var err error
		if _, rep, err = rt.Run(context.Background(), ann, inputs); err != nil {
			b.Fatal(err)
		}
		distTotal += time.Since(t1)
	}
	b.StopTimer()

	seqNs := seqTotal.Nanoseconds() / int64(b.N)
	distNs := distTotal.Nanoseconds() / int64(b.N)
	speedup := float64(seqNs) / float64(distNs)
	b.ReportMetric(float64(seqNs), "seq-ns/op")
	b.ReportMetric(float64(distNs), "dist-ns/op")
	b.ReportMetric(speedup, "speedup")

	if path := os.Getenv("BENCH_DIST_JSON"); path != "" {
		// One traced pass, outside the timed loop, for the phase
		// breakdown.
		tr := obs.NewTracer()
		trt, err := dist.New(cl, shards, dist.WithTracer(tr, nil))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := trt.Run(context.Background(), ann, inputs); err != nil {
			b.Fatal(err)
		}
		phases := make(map[string]int64)
		for name, d := range tr.Snapshot().DurationsByName() {
			phases[name] = d.Nanoseconds()
		}
		out, err := json.MarshalIndent(benchResult{
			Workload:   "matmul-chain (scaled)",
			Shards:     shards,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			SeqNs:      seqNs,
			DistNs:     distNs,
			Speedup:    speedup,
			NetBytes:   rep.NetBytes,
			PeakBytes:  rep.PeakBytes,
			PhaseNs:    phases,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// obsBenchResult is the record `make bench` writes to BENCH_obs.json:
// the same workload with tracing off (the default every production run
// pays: nil-receiver span hooks plus the always-on metrics registry)
// and with a live tracer recording every span. untraced_ns is directly
// comparable with dist_ns in BENCH_dist.json.
type obsBenchResult struct {
	Workload    string  `json:"workload"`
	Shards      int     `json:"shards"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"numcpu"`
	UntracedNs  int64   `json:"untraced_ns"`
	TracedNs    int64   `json:"traced_ns"`
	Spans       int     `json:"spans_per_run"`
	OverheadPct float64 `json:"tracing_overhead_pct"` // (traced - untraced) / untraced
}

// BenchmarkDistTracingOverhead measures what the observability layer
// costs a dist run: disabled tracing must stay within noise of the
// pre-obs runtime (the per-op cost of a nil-span hook is benchmarked
// separately in internal/obs), and enabled tracing should stay cheap
// enough to leave on during debugging. When BENCH_OBS_JSON names a
// file, the comparison is written there as JSON.
func BenchmarkDistTracingOverhead(b *testing.B) {
	const shards = 8
	sz := workload.ChainSizes{
		Name: "bench",
		A:    shape.New(200, 600), B: shape.New(600, 1000),
		C: shape.New(1000, 1), D: shape.New(1, 1000),
		E: shape.New(1000, 200), F: shape.New(1000, 200),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		b.Fatal(err)
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	plain, err := dist.New(cl, shards)
	if err != nil {
		b.Fatal(err)
	}
	tr := obs.NewTracer()
	traced, err := dist.New(cl, shards, dist.WithTracer(tr, nil))
	if err != nil {
		b.Fatal(err)
	}

	var untracedTotal, tracedTotal time.Duration
	var spans int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, _, err := plain.Run(context.Background(), ann, inputs); err != nil {
			b.Fatal(err)
		}
		untracedTotal += time.Since(t0)

		tr.Reset()
		t1 := time.Now()
		if _, _, err := traced.Run(context.Background(), ann, inputs); err != nil {
			b.Fatal(err)
		}
		tracedTotal += time.Since(t1)
		spans = len(tr.Snapshot().Spans)
	}
	b.StopTimer()

	untracedNs := untracedTotal.Nanoseconds() / int64(b.N)
	tracedNs := tracedTotal.Nanoseconds() / int64(b.N)
	overhead := float64(tracedNs-untracedNs) / float64(untracedNs)
	b.ReportMetric(float64(untracedNs), "untraced-ns/op")
	b.ReportMetric(float64(tracedNs), "traced-ns/op")
	b.ReportMetric(float64(spans), "spans/run")

	if path := os.Getenv("BENCH_OBS_JSON"); path != "" {
		out, err := json.MarshalIndent(obsBenchResult{
			Workload:    "matmul-chain (scaled)",
			Shards:      shards,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			UntracedNs:  untracedNs,
			TracedNs:    tracedNs,
			Spans:       spans,
			OverheadPct: overhead * 100,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// faultBenchResult is the record `make bench` writes to
// BENCH_dist_faults.json: the cost of the fault-injection hooks when no
// plan is armed (which every fault-free run now pays) next to a run
// that crashes and recovers every vertex once.
type faultBenchResult struct {
	Workload        string  `json:"workload"`
	Shards          int     `json:"shards"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"numcpu"`
	NoFaultNs       int64   `json:"nofault_ns"`       // nil FaultPlan: the PR-2-comparable number
	EmptyPlanNs     int64   `json:"empty_plan_ns"`    // armed but empty plan: per-hook lookup cost
	CrashRecoverNs  int64   `json:"crash_recover_ns"` // crash every vertex once, recover
	RecoveryRetries int64   `json:"recovery_retries"`
	HookOverheadPct float64 `json:"hook_overhead_pct"` // (empty_plan - nofault) / nofault
}

// BenchmarkDistFaultOverhead measures what fault tolerance costs a run
// that never fails. The nofault_ns series is directly comparable with
// dist_ns in BENCH_dist.json (same workload, same shard count): the
// nil-plan hooks and per-vertex attempt counters must stay within noise
// of the pre-recovery runtime. When BENCH_DIST_FAULTS_JSON names a
// file, the comparison is written there as JSON.
func BenchmarkDistFaultOverhead(b *testing.B) {
	const shards = 8
	sz := workload.ChainSizes{
		Name: "bench",
		A:    shape.New(200, 600), B: shape.New(600, 1000),
		C: shape.New(1000, 1), D: shape.New(1, 1000),
		E: shape.New(1000, 200), F: shape.New(1000, 200),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		b.Fatal(err)
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	var crashAll []dist.Fault
	for _, v := range ann.Graph.Vertices {
		crashAll = append(crashAll, dist.Fault{Kind: dist.FaultCrash, Vertex: v.ID})
	}

	// A fresh runtime per variant: FaultPlan latches are once-only, so
	// the crash variant re-arms its plan every iteration.
	timeRun := func(opts ...dist.Option) (time.Duration, *dist.Report) {
		rt, err := dist.New(cl, shards, opts...)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		_, rep, err := rt.Run(context.Background(), ann, inputs)
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(t0), rep
	}

	var noFault, emptyPlan, crashRecover time.Duration
	var retries int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := timeRun()
		noFault += d
		d, _ = timeRun(dist.WithFaults(dist.NewFaultPlan()))
		emptyPlan += d
		var rep *dist.Report
		d, rep = timeRun(dist.WithFaults(dist.NewFaultPlan(crashAll...)))
		crashRecover += d
		retries = rep.Retries
	}
	b.StopTimer()

	noFaultNs := noFault.Nanoseconds() / int64(b.N)
	emptyNs := emptyPlan.Nanoseconds() / int64(b.N)
	crashNs := crashRecover.Nanoseconds() / int64(b.N)
	overhead := float64(emptyNs-noFaultNs) / float64(noFaultNs)
	b.ReportMetric(float64(noFaultNs), "nofault-ns/op")
	b.ReportMetric(float64(emptyNs), "emptyplan-ns/op")
	b.ReportMetric(float64(crashNs), "crashrecover-ns/op")

	if path := os.Getenv("BENCH_DIST_FAULTS_JSON"); path != "" {
		out, err := json.MarshalIndent(faultBenchResult{
			Workload:        "matmul-chain (scaled)",
			Shards:          shards,
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			NumCPU:          runtime.NumCPU(),
			NoFaultNs:       noFaultNs,
			EmptyPlanNs:     emptyNs,
			CrashRecoverNs:  crashNs,
			RecoveryRetries: retries,
			HookOverheadPct: overhead * 100,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// recoveryBenchResult is the record `make bench` writes to
// BENCH_recovery.json: what a node loss at the sink costs with lineage
// recompute alone next to the same loss with cost-model checkpoint
// placement, plus the memory the pins hold relative to the run's peak.
type recoveryBenchResult struct {
	Workload           string  `json:"workload"`
	Shards             int     `json:"shards"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	NumCPU             int     `json:"numcpu"`
	CleanNs            int64   `json:"clean_ns"`              // no fault: the recovery-free baseline
	CascadeNs          int64   `json:"cascade_ns"`            // sink node loss, lineage recompute only
	CheckpointNs       int64   `json:"checkpoint_ns"`         // sink node loss with checkpoint pins
	CascadeDepth       int     `json:"cascade_depth"`         // redo chain length without pins
	CheckpointDepth    int     `json:"checkpoint_depth"`      // redo chain length with pins
	CheckpointVertices int     `json:"checkpoint_vertices"`   // pins placed by the cost model
	CheckpointBytes    int64   `json:"checkpoint_bytes"`      // bytes the pins held at completion
	PeakBytes          int64   `json:"peak_bytes"`            // resident peak of the pinned run
	CkptMemOverheadPct float64 `json:"ckpt_mem_overhead_pct"` // checkpoint_bytes / peak_bytes
	RecoveryPenaltyPct float64 `json:"recovery_penalty_pct"`  // (cascade - clean) / clean
	CkptSavingsPct     float64 `json:"ckpt_recovery_savings"` // (cascade - checkpoint) / cascade
}

// BenchmarkRecovery measures the cascading-recompute path end to end: a
// node loss at the sink forces the runtime to rebuild the freed
// upstream chain, and checkpoint pins trade resident memory for a
// shorter redo chain. When BENCH_RECOVERY_JSON names a file, the
// comparison is written there as JSON.
func BenchmarkRecovery(b *testing.B) {
	const shards = 8
	sz := workload.ChainSizes{
		Name: "bench",
		A:    shape.New(200, 600), B: shape.New(600, 1000),
		C: shape.New(1000, 1), D: shape.New(1, 1000),
		E: shape.New(1000, 200), F: shape.New(1000, 200),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		b.Fatal(err)
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	sink := ann.Graph.Vertices[len(ann.Graph.Vertices)-1].ID
	lossPlan := func() *dist.FaultPlan {
		return dist.NewFaultPlan(dist.Fault{Kind: dist.FaultNodeLoss, Vertex: sink})
	}

	timeRun := func(opts ...dist.Option) (time.Duration, *dist.Report) {
		rt, err := dist.New(cl, shards, opts...)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		_, rep, err := rt.Run(context.Background(), ann, inputs)
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(t0), rep
	}

	var clean, cascade, checkpoint time.Duration
	var cascRep, ckptRep *dist.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := timeRun()
		clean += d
		d, cascRep = timeRun(dist.WithFaults(lossPlan()))
		cascade += d
		d, ckptRep = timeRun(dist.WithFaults(lossPlan()), dist.WithCheckpointing(0, 0))
		checkpoint += d
	}
	b.StopTimer()

	cleanNs := clean.Nanoseconds() / int64(b.N)
	cascadeNs := cascade.Nanoseconds() / int64(b.N)
	ckptNs := checkpoint.Nanoseconds() / int64(b.N)
	b.ReportMetric(float64(cleanNs), "clean-ns/op")
	b.ReportMetric(float64(cascadeNs), "cascade-ns/op")
	b.ReportMetric(float64(ckptNs), "checkpoint-ns/op")
	b.ReportMetric(float64(cascRep.MaxCascadeDepth), "cascade-depth")

	if path := os.Getenv("BENCH_RECOVERY_JSON"); path != "" {
		var memPct float64
		if ckptRep.PeakBytes > 0 {
			memPct = 100 * float64(ckptRep.CheckpointBytes) / float64(ckptRep.PeakBytes)
		}
		out, err := json.MarshalIndent(recoveryBenchResult{
			Workload:           "matmul-chain (scaled)",
			Shards:             shards,
			GOMAXPROCS:         runtime.GOMAXPROCS(0),
			NumCPU:             runtime.NumCPU(),
			CleanNs:            cleanNs,
			CascadeNs:          cascadeNs,
			CheckpointNs:       ckptNs,
			CascadeDepth:       cascRep.MaxCascadeDepth,
			CheckpointDepth:    ckptRep.MaxCascadeDepth,
			CheckpointVertices: ckptRep.CheckpointVertices,
			CheckpointBytes:    ckptRep.CheckpointBytes,
			PeakBytes:          ckptRep.PeakBytes,
			CkptMemOverheadPct: memPct,
			RecoveryPenaltyPct: 100 * float64(cascadeNs-cleanNs) / float64(cleanNs),
			CkptSavingsPct:     100 * float64(cascadeNs-ckptNs) / float64(cascadeNs),
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
