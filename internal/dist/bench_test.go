package dist_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// benchResult is the record `make bench` writes to BENCH_dist.json.
type benchResult struct {
	Workload   string  `json:"workload"`
	Shards     int     `json:"shards"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	SeqNs      int64   `json:"seq_ns"`
	DistNs     int64   `json:"dist_ns"`
	Speedup    float64 `json:"speedup"`
	NetBytes   int64   `json:"net_bytes"`
	PeakBytes  int64   `json:"peak_bytes"`
}

// BenchmarkDistVsSequential times the same optimized plan on the
// sequential reference engine and on the dist runtime at 8 shards. The
// speedup metric reflects the host: on a multi-core machine the shards
// run on separate cores; on a single-core container both engines do the
// same work and the ratio hovers around 1. When BENCH_DIST_JSON names a
// file, the measured comparison is written there as JSON.
func BenchmarkDistVsSequential(b *testing.B) {
	const shards = 8
	sz := workload.ChainSizes{
		Name: "bench",
		A:    shape.New(200, 600), B: shape.New(600, 1000),
		C: shape.New(1000, 1), D: shape.New(1, 1000),
		E: shape.New(1000, 200), F: shape.New(1000, 200),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		b.Fatal(err)
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	eng := engine.New(cl)
	rt, err := dist.New(cl, shards)
	if err != nil {
		b.Fatal(err)
	}

	var seqTotal, distTotal time.Duration
	var rep *dist.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := eng.RunCollect(ann, inputs); err != nil {
			b.Fatal(err)
		}
		seqTotal += time.Since(t0)

		t1 := time.Now()
		var err error
		if _, rep, err = rt.Run(context.Background(), ann, inputs); err != nil {
			b.Fatal(err)
		}
		distTotal += time.Since(t1)
	}
	b.StopTimer()

	seqNs := seqTotal.Nanoseconds() / int64(b.N)
	distNs := distTotal.Nanoseconds() / int64(b.N)
	speedup := float64(seqNs) / float64(distNs)
	b.ReportMetric(float64(seqNs), "seq-ns/op")
	b.ReportMetric(float64(distNs), "dist-ns/op")
	b.ReportMetric(speedup, "speedup")

	if path := os.Getenv("BENCH_DIST_JSON"); path != "" {
		out, err := json.MarshalIndent(benchResult{
			Workload:   "matmul-chain (scaled)",
			Shards:     shards,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			SeqNs:      seqNs,
			DistNs:     distNs,
			Speedup:    speedup,
			NetBytes:   rep.NetBytes,
			PeakBytes:  rep.PeakBytes,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
