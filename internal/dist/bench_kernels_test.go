package dist_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/format"
	"matopt/internal/pool"
	"matopt/internal/shape"
	"matopt/internal/sparse"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// gemmPoint is one GEMM shape's three-way comparison: the naive
// reference triple loop, the cache-blocked kernel forced serial, and
// the blocked kernel with the whole machine.
type gemmPoint struct {
	M             int     `json:"m"`
	K             int     `json:"k"`
	N             int     `json:"n"`
	NaiveNs       int64   `json:"naive_ns"`
	SerialNs      int64   `json:"serial_ns"`      // blocked, Threads=1
	ThreadedNs    int64   `json:"threaded_ns"`    // blocked, Threads=GOMAXPROCS
	BlockSpeedup  float64 `json:"block_speedup"`  // naive / serial: pure cache blocking
	ThreadSpeedup float64 `json:"thread_speedup"` // serial / threaded: pure parallelism
}

// kernelsBenchResult is the record `make bench` writes to
// BENCH_kernels.json: the GEMM sweep, a sparse×dense point, and the
// dist runtime end to end with kernels forced serial vs auto-budgeted.
type kernelsBenchResult struct {
	GOMAXPROCS     int         `json:"gomaxprocs"`
	NumCPU         int         `json:"numcpu"`
	AutoThreads    int         `json:"auto_threads"` // pool.MaxThreads()
	GEMM           []gemmPoint `json:"gemm"`
	SpMMSerialNs   int64       `json:"spmm_serial_ns"`   // CSR×dense, Threads=1
	SpMMThreadedNs int64       `json:"spmm_threaded_ns"` // CSR×dense, auto
	DistSerialNs   int64       `json:"dist_serial_ns"`   // end-to-end, kernel-threads 1
	DistAutoNs     int64       `json:"dist_auto_ns"`     // end-to-end, default budget
}

// naiveGEMM is the unblocked reference the blocked kernel is measured
// against (and bit-compared against in the golden tests).
func naiveGEMM(a, b *tensor.Dense) *tensor.Dense {
	out := tensor.NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.Data[k*b.Cols+j]
			}
		}
	}
	return out
}

// BenchmarkKernels measures the compute-kernel layer three ways per
// GEMM shape — naive reference, cache-blocked serial, blocked threaded
// — plus a sparse SpMM point and the dist runtime end to end with
// kernels forced serial vs auto-budgeted. When BENCH_KERNELS_JSON names
// a file, the sweep is written there as JSON.
//
// On a multi-core host the benchmark is also a regression gate: the
// threaded blocked GEMM must not run slower than the serial blocked
// GEMM at the largest shape. On a single-core host (GOMAXPROCS=1) the
// shared pool has no workers, every kernel is serial by construction,
// and the gate is vacuous.
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, k, n int }{
		{128, 128, 128},
		{256, 256, 256},
		{512, 512, 512},
	}
	timeIt := func(f func()) int64 {
		t0 := time.Now()
		f()
		return time.Since(t0).Nanoseconds()
	}
	res := kernelsBenchResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		AutoThreads: pool.MaxThreads(),
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		res.GEMM = res.GEMM[:0]
		for _, s := range shapes {
			a := tensor.RandNormal(rng, s.m, s.k)
			c := tensor.RandNormal(rng, s.k, s.n)
			p := gemmPoint{M: s.m, K: s.k, N: s.n}
			p.NaiveNs = timeIt(func() { naiveGEMM(a, c) })
			p.SerialNs = timeIt(func() { tensor.K{Threads: 1}.MatMul(a, c) })
			p.ThreadedNs = timeIt(func() { tensor.Auto().MatMul(a, c) })
			p.BlockSpeedup = float64(p.NaiveNs) / float64(p.SerialNs)
			p.ThreadSpeedup = float64(p.SerialNs) / float64(p.ThreadedNs)
			res.GEMM = append(res.GEMM, p)
		}

		sp := sparse.FromDense(tensor.RandSparse(rng, 2000, 2000, 0.01))
		d := tensor.RandNormal(rng, 2000, 256)
		res.SpMMSerialNs = timeIt(func() { sp.MulDenseK(tensor.K{Threads: 1}, d) })
		res.SpMMThreadedNs = timeIt(func() { sp.MulDenseK(tensor.Auto(), d) })
	}
	b.StopTimer()

	last := res.GEMM[len(res.GEMM)-1]
	b.ReportMetric(float64(last.NaiveNs), "naive-ns")
	b.ReportMetric(float64(last.SerialNs), "serial-ns")
	b.ReportMetric(float64(last.ThreadedNs), "threaded-ns")
	b.ReportMetric(last.BlockSpeedup, "block-speedup")
	b.ReportMetric(last.ThreadSpeedup, "thread-speedup")

	// The regression gate: with more than one core available, threading
	// the blocked GEMM must help, never hurt, at the largest shape. On a
	// single-CPU host there is no parallelism to measure — GOMAXPROCS
	// may still be >1 — so the gate is skipped loudly rather than failed
	// on scheduler noise.
	if runtime.NumCPU() == 1 {
		b.Logf("WARNING: single-CPU host (NumCPU=1): skipping the threaded>=serial GEMM gate; thread_speedup in BENCH_kernels.json is not meaningful")
	} else if runtime.GOMAXPROCS(0) > 1 && last.ThreadedNs > last.SerialNs {
		b.Fatalf("threaded GEMM regressed below serial at %dx%dx%d: %d ns threaded vs %d ns serial",
			last.M, last.K, last.N, last.ThreadedNs, last.SerialNs)
	}

	// End-to-end: the same dist workload the other benchmarks use, with
	// kernels forced serial and with the default per-shard budget.
	const shards = 4
	sz := workload.ChainSizes{
		Name: "bench",
		A:    shape.New(200, 600), B: shape.New(600, 1000),
		C: shape.New(1000, 1), D: shape.New(1, 1000),
		E: shape.New(1000, 200), F: shape.New(1000, 200),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		b.Fatal(err)
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	timeDist := func(opts ...dist.Option) int64 {
		rt, err := dist.New(cl, shards, opts...)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		if _, _, err := rt.Run(context.Background(), ann, inputs); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0).Nanoseconds()
	}
	res.DistSerialNs = timeDist(dist.WithKernelThreads(1))
	res.DistAutoNs = timeDist()

	if path := os.Getenv("BENCH_KERNELS_JSON"); path != "" {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
