package dist

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Fault injection: the paper's optimizer targets real clusters where
// workers crash, straggle and lose messages. The dist runtime injects
// those failures deterministically — a FaultPlan is a fixed schedule,
// not a random process at execution time — so every chaos test is
// reproducible bit for bit: the same plan against the same computation
// always fails at the same points and recovers along the same path.
//
// Injection points mirror where a real deployment fails:
//
//   - FaultCrash fires at the top of a vertex execution attempt — the
//     stand-in for a worker process dying mid-task. It surfaces as
//     ErrShardFailed and is retryable.
//   - FaultDropExchange discards one shard's (or every shard's)
//     outgoing messages of one exchange. The receiving side can only
//     notice missing data by timing out, so a drop surfaces as
//     ErrExchangeTimeout and is retryable.
//   - FaultDelayExchange stalls one producing shard of an exchange for
//     Delay before it emits — a slow link, so the stall holds the
//     transfer without occupying the shard's worker (that is
//     FaultSlowShard's job); a speculative duplicate can run past it.
//     If the delay exceeds the runtime's exchange timeout the exchange
//     fails (and is retried); otherwise the run is merely slower and
//     the output unchanged.
//   - FaultSlowShard makes every task on one shard sleep Delay before
//     running — a straggler node. Nothing fails; the schedule of the
//     DAG shifts and the output must still be bit-identical.

// FaultKind selects what a Fault breaks.
type FaultKind int

const (
	// FaultCrash fails a vertex execution attempt with ErrShardFailed.
	FaultCrash FaultKind = iota
	// FaultDropExchange loses an exchange's messages; surfaces as
	// ErrExchangeTimeout on the consuming vertex.
	FaultDropExchange
	// FaultDelayExchange stalls one producing shard of an exchange for
	// Delay before it sends.
	FaultDelayExchange
	// FaultSlowShard delays every task on Shard by Delay (a straggler).
	FaultSlowShard
	// FaultNodeLoss fails a vertex execution attempt like FaultCrash and
	// additionally marks the vertex's input relations as lost — the
	// stand-in for the worker node dying and taking its resident shard
	// data with it. The retried vertex then finds its inputs gone and
	// the scheduler recovers by cascading lineage recompute back to the
	// nearest resident (or checkpointed) frontier.
	FaultNodeLoss
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDropExchange:
		return "drop"
	case FaultDelayExchange:
		return "delay"
	case FaultSlowShard:
		return "slow"
	case FaultNodeLoss:
		return "node-loss"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled failure. Crash, drop and delay faults fire at
// most once, on the attempt they name; a slow-shard fault applies to
// every task on its shard for the whole run.
type Fault struct {
	Kind    FaultKind
	Vertex  int           // target vertex ID (crash/drop/delay); -1 matches any vertex
	Label   string        // exchange label filter (drop/delay); "" matches any exchange of the vertex
	Shard   int           // target shard (slow; drop/delay producer side); -1 matches all shards
	Attempt int           // the vertex execution attempt the fault fires on (0 = first)
	Delay   time.Duration // stall length (delay/slow)
}

func (f Fault) String() string {
	switch f.Kind {
	case FaultSlowShard:
		return fmt.Sprintf("slow(shard %d, %v/task)", f.Shard, f.Delay)
	case FaultDelayExchange:
		return fmt.Sprintf("delay(v%d %q attempt %d, %v)", f.Vertex, f.Label, f.Attempt, f.Delay)
	case FaultDropExchange:
		return fmt.Sprintf("drop(v%d %q attempt %d)", f.Vertex, f.Label, f.Attempt)
	case FaultNodeLoss:
		return fmt.Sprintf("node-loss(v%d attempt %d)", f.Vertex, f.Attempt)
	default:
		return fmt.Sprintf("crash(v%d attempt %d)", f.Vertex, f.Attempt)
	}
}

// faultState is one scheduled fault plus its once-only firing latch.
type faultState struct {
	Fault
	fired atomic.Bool
}

// FaultPlan is a deterministic schedule of failures for one or more
// runs. A plan is safe for concurrent use; each one-shot fault fires
// exactly once across all runs sharing the plan, so tests normally
// build a fresh plan per run.
type FaultPlan struct {
	faults []*faultState
	seed   int64 // the RandomFaults seed (0 for explicit plans)
}

// NewFaultPlan builds an explicit fault schedule.
func NewFaultPlan(faults ...Fault) *FaultPlan {
	p := &FaultPlan{}
	for _, f := range faults {
		p.faults = append(p.faults, &faultState{Fault: f})
	}
	return p
}

// RandomFaults derives a schedule of n faults from a seed: crashes,
// drops and delays over the given vertex IDs and a possible straggler
// shard. Every fault targets attempt 0, so a runtime with at least one
// retry always recovers. The same (seed, n, vertices, shards) always
// yields the same schedule — TestRandomFaultsGolden locks the output
// across releases, so the case distribution below must never change.
func RandomFaults(seed int64, n int, vertices []int, shards int) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	var fs []Fault
	for i := 0; i < n; i++ {
		var v int
		if len(vertices) > 0 {
			v = vertices[rng.Intn(len(vertices))]
		}
		switch rng.Intn(4) {
		case 0:
			fs = append(fs, Fault{Kind: FaultCrash, Vertex: v})
		case 1:
			fs = append(fs, Fault{Kind: FaultDropExchange, Vertex: v, Shard: -1})
		case 2:
			fs = append(fs, Fault{Kind: FaultDelayExchange, Vertex: v, Shard: -1,
				Delay: time.Duration(1+rng.Intn(3)) * time.Millisecond})
		default:
			fs = append(fs, Fault{Kind: FaultSlowShard, Shard: rng.Intn(shards),
				Delay: 50 * time.Microsecond})
		}
	}
	p := NewFaultPlan(fs...)
	p.seed = seed
	return p
}

// Seed returns the seed a RandomFaults schedule was derived from (0 for
// explicit plans); the runtime's jittered retry backoff defaults to it
// so chaos runs stay reproducible end to end.
func (p *FaultPlan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Faults returns the scheduled faults, fired or not.
func (p *FaultPlan) Faults() []Fault {
	if p == nil {
		return nil
	}
	out := make([]Fault, len(p.faults))
	for i, f := range p.faults {
		out[i] = f.Fault
	}
	return out
}

// Injected reports how many scheduled faults have fired so far.
func (p *FaultPlan) Injected() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for _, f := range p.faults {
		if f.fired.Load() {
			n++
		}
	}
	return n
}

// crash returns the matching crash fault for this vertex attempt,
// claiming it so it fires exactly once. All methods are nil-safe: a
// runtime with no plan pays one pointer comparison per injection point.
func (p *FaultPlan) crash(vertex, attempt int) *Fault {
	if p == nil {
		return nil
	}
	for _, f := range p.faults {
		if f.Kind != FaultCrash || f.Attempt != attempt {
			continue
		}
		if f.Vertex != -1 && f.Vertex != vertex {
			continue
		}
		if f.fired.CompareAndSwap(false, true) {
			return &f.Fault
		}
	}
	return nil
}

// loses returns the matching node-loss fault for this vertex attempt,
// claiming it so it fires exactly once.
func (p *FaultPlan) loses(vertex, attempt int) *Fault {
	if p == nil {
		return nil
	}
	for _, f := range p.faults {
		if f.Kind != FaultNodeLoss || f.Attempt != attempt {
			continue
		}
		if f.Vertex != -1 && f.Vertex != vertex {
			continue
		}
		if f.fired.CompareAndSwap(false, true) {
			return &f.Fault
		}
	}
	return nil
}

// exchangeFaults returns the drop and delay faults (if any) scheduled
// for this exchange of this vertex attempt, claiming each.
func (p *FaultPlan) exchangeFaults(vertex int, label string, attempt int) (drop, delay *Fault) {
	if p == nil {
		return nil, nil
	}
	for _, f := range p.faults {
		if f.Kind != FaultDropExchange && f.Kind != FaultDelayExchange {
			continue
		}
		if f.Attempt != attempt {
			continue
		}
		if f.Vertex != -1 && f.Vertex != vertex {
			continue
		}
		if f.Label != "" && f.Label != label {
			continue
		}
		switch {
		case f.Kind == FaultDropExchange && drop == nil:
			if f.fired.CompareAndSwap(false, true) {
				drop = &f.Fault
			}
		case f.Kind == FaultDelayExchange && delay == nil:
			if f.fired.CompareAndSwap(false, true) {
				delay = &f.Fault
			}
		}
	}
	return drop, delay
}

// slow returns the straggler delay for a shard's tasks (0 = none). A
// slow-shard fault is marked fired on first use but keeps applying for
// the whole run.
func (p *FaultPlan) slow(shard int) time.Duration {
	if p == nil {
		return 0
	}
	for _, f := range p.faults {
		if f.Kind == FaultSlowShard && (f.Shard == -1 || f.Shard == shard) {
			f.fired.Store(true)
			return f.Delay
		}
	}
	return 0
}
