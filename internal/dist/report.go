package dist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"matopt/internal/obs"
)

// ExchangeStat is the measured traffic of one exchange: all messages of
// one movement pattern at one vertex (or edge transform).
type ExchangeStat struct {
	Vertex   int    // consuming vertex ID
	Kind     string // broadcast | shuffle | aggregate | copart | move | gather | transform
	Label    string // human-readable detail, e.g. "shuffle(a)"
	Bytes    int64  // payload bytes that crossed shard boundaries
	Messages int64  // tuples that crossed shard boundaries
}

// Report is what one dist run actually did, the measured counterpart of
// the cost model's predicted features. Recovery is part of the
// measurement: traffic of failed attempts stays in the exchange meters
// (re-shipping data is a real cost of recovery), and every injected
// fault and vertex recomputation is counted.
type Report struct {
	Shards    int
	NetBytes  int64           // total payload bytes that crossed shard boundaries
	Messages  int64           // total tuples that crossed shard boundaries
	Exchanges []ExchangeStat  // per-edge breakdown, ordered by (vertex, label)
	PeakBytes int64           // peak resident relation bytes during the run
	ShardBusy []time.Duration // per-shard time spent inside tasks
	Wall      time.Duration   // end-to-end wall time of the run

	FaultsInjected  int64       // scheduled faults that fired during the run
	Retries         int64       // total vertex recomputations taken
	RetriesByVertex map[int]int // vertex ID → recomputations (nil when none)
	Degraded        bool        // run fell back to the sequential engine
	DegradedCause   string      // the dist failure that forced the fallback

	KernelThreads int           // kernel threads each shard's local compute could use
	KernelTime    time.Duration // summed wall time inside local compute kernels

	Transport      string // exchange transport that moved the run's data ("chan", "tcp")
	WireBytes      int64  // framed bytes put on (and read off) real sockets, both directions
	WireMessages   int64  // framed messages that crossed a socket, both directions
	WireDials      int64  // connections dialed to worker peers
	WireReconnects int64  // dials that replaced a connection discarded after a failure

	Cascades            int64       // cascading lineage recomputes triggered
	CascadesByVertex    map[int]int // failing vertex ID → cascades (nil when none)
	MaxCascadeDepth     int         // deepest ancestor chain re-executed by one cascade
	SpeculativeLaunches int64       // speculative duplicate attempts launched
	SpeculativeWins     int64       // speculative attempts that beat their primary
	CheckpointVertices  int         // vertices pinned resident for recovery
	CheckpointBytes     int64       // bytes held by checkpoint pins at run end
}

// BusiestShard returns the largest per-shard busy time.
func (r *Report) BusiestShard() time.Duration {
	var m time.Duration
	for _, d := range r.ShardBusy {
		if d > m {
			m = d
		}
	}
	return m
}

// TotalBusy returns the summed busy time across shards.
func (r *Report) TotalBusy() time.Duration {
	var t time.Duration
	for _, d := range r.ShardBusy {
		t += d
	}
	return t
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dist run: %d shards, wall %v, peak %d B resident\n", r.Shards, r.Wall.Round(time.Microsecond), r.PeakBytes)
	fmt.Fprintf(&b, "  fabric: %d B in %d messages across %d exchanges\n", r.NetBytes, r.Messages, len(r.Exchanges))
	if r.Transport != "" && r.Transport != "chan" {
		fmt.Fprintf(&b, "  wire (%s): %d B in %d frames, %d dials (%d reconnects)\n",
			r.Transport, r.WireBytes, r.WireMessages, r.WireDials, r.WireReconnects)
	}
	fmt.Fprintf(&b, "  busiest shard busy %v of %v total\n", r.BusiestShard().Round(time.Microsecond), r.TotalBusy().Round(time.Microsecond))
	if r.KernelTime > 0 {
		fmt.Fprintf(&b, "  kernels: %v inside compute kernels (%d threads/shard)\n",
			r.KernelTime.Round(time.Microsecond), r.KernelThreads)
	}
	if r.FaultsInjected > 0 || r.Retries > 0 {
		fmt.Fprintf(&b, "  recovery: %d faults injected, %d vertex retries", r.FaultsInjected, r.Retries)
		if len(r.RetriesByVertex) > 0 {
			ids := make([]int, 0, len(r.RetriesByVertex))
			for id := range r.RetriesByVertex {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			b.WriteString(" (")
			for i, id := range ids {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "v%d×%d", id, r.RetriesByVertex[id])
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	if r.Cascades > 0 {
		fmt.Fprintf(&b, "  cascades: %d lineage recomputes, deepest chain %d vertices\n",
			r.Cascades, r.MaxCascadeDepth)
	}
	if r.SpeculativeLaunches > 0 {
		fmt.Fprintf(&b, "  speculation: %d duplicates launched, %d won\n",
			r.SpeculativeLaunches, r.SpeculativeWins)
	}
	if r.CheckpointVertices > 0 {
		fmt.Fprintf(&b, "  checkpoints: %d vertices pinned, %d B held\n",
			r.CheckpointVertices, r.CheckpointBytes)
	}
	if r.Degraded {
		fmt.Fprintf(&b, "  DEGRADED to sequential engine: %s\n", r.DegradedCause)
	}
	for _, x := range r.Exchanges {
		if x.Bytes == 0 && x.Messages == 0 {
			continue
		}
		fmt.Fprintf(&b, "  v%-3d %-9s %-24s %12d B %8d msgs\n", x.Vertex, x.Kind, x.Label, x.Bytes, x.Messages)
	}
	return b.String()
}

// reportFromRegistry builds a Report as a view over a run registry's
// snapshot — the registry is the source of truth; the Report is the
// stable struct callers already consume. Metric names are the dist.*
// families DESIGN.md §11 documents: exchange counters keyed by
// (vertex, kind, label) become Exchanges rows, dist.shard.busy_ns
// counters become ShardBusy, dist.retries counters become
// Retries/RetriesByVertex, and the dist.shards / dist.peak_bytes /
// dist.wall_ns / dist.faults_injected gauges fill the scalars.
func reportFromRegistry(snap []obs.Metric) *Report {
	rep := &Report{}
	label := func(m obs.Metric, key string) string {
		for _, l := range m.Labels {
			if l.Key == key {
				return l.Value
			}
		}
		return ""
	}
	type xkey struct {
		vertex      int
		kind, label string
	}
	xidx := make(map[xkey]int)
	xrow := func(m obs.Metric) *ExchangeStat {
		v, _ := strconv.Atoi(label(m, "vertex"))
		k := xkey{vertex: v, kind: label(m, "kind"), label: label(m, "label")}
		i, ok := xidx[k]
		if !ok {
			i = len(rep.Exchanges)
			xidx[k] = i
			rep.Exchanges = append(rep.Exchanges, ExchangeStat{Vertex: k.vertex, Kind: k.kind, Label: k.label})
		}
		return &rep.Exchanges[i]
	}
	busy := make(map[int]int64)
	for _, m := range snap {
		switch m.Name {
		case "dist.shards":
			rep.Shards = int(m.Value)
		case "dist.peak_bytes":
			rep.PeakBytes = m.Value
		case "dist.wall_ns":
			rep.Wall = time.Duration(m.Value)
		case "dist.faults_injected":
			rep.FaultsInjected = m.Value
		case "dist.kernel.threads":
			rep.KernelThreads = int(m.Value)
		case "dist.kernel.ns":
			rep.KernelTime = time.Duration(m.Value)
		case "dist.exchange.bytes":
			x := xrow(m)
			x.Bytes += m.Value
			rep.NetBytes += m.Value
		case "dist.exchange.messages":
			x := xrow(m)
			x.Messages += m.Value
			rep.Messages += m.Value
		case "dist.wire.bytes":
			rep.WireBytes += m.Value
		case "dist.wire.messages":
			rep.WireMessages += m.Value
		case "dist.wire.dials":
			rep.WireDials += m.Value
		case "dist.wire.reconnects":
			rep.WireReconnects += m.Value
		case "dist.shard.busy_ns":
			s, err := strconv.Atoi(label(m, "shard"))
			if err == nil {
				busy[s] = m.Value
			}
		case "dist.retries":
			v, err := strconv.Atoi(label(m, "vertex"))
			if err == nil && m.Value > 0 {
				if rep.RetriesByVertex == nil {
					rep.RetriesByVertex = make(map[int]int)
				}
				rep.RetriesByVertex[v] += int(m.Value)
				rep.Retries += m.Value
			}
		case "dist.cascades":
			v, err := strconv.Atoi(label(m, "vertex"))
			if err == nil && m.Value > 0 {
				if rep.CascadesByVertex == nil {
					rep.CascadesByVertex = make(map[int]int)
				}
				rep.CascadesByVertex[v] += int(m.Value)
				rep.Cascades += m.Value
			}
		case "dist.cascade.depth":
			rep.MaxCascadeDepth = int(m.Value)
		case "dist.speculative.launches":
			rep.SpeculativeLaunches = m.Value
		case "dist.speculative.wins":
			rep.SpeculativeWins = m.Value
		case "dist.checkpoint.vertices":
			rep.CheckpointVertices = int(m.Value)
		case "dist.checkpoint.bytes":
			rep.CheckpointBytes = m.Value
		}
	}
	rep.ShardBusy = make([]time.Duration, rep.Shards)
	for s, ns := range busy {
		if s >= 0 && s < len(rep.ShardBusy) {
			rep.ShardBusy[s] = time.Duration(ns)
		}
	}
	sortExchanges(rep.Exchanges)
	return rep
}

// sortExchanges orders stats deterministically for the report.
func sortExchanges(xs []ExchangeStat) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Vertex != xs[j].Vertex {
			return xs[i].Vertex < xs[j].Vertex
		}
		if xs[i].Kind != xs[j].Kind {
			return xs[i].Kind < xs[j].Kind
		}
		return xs[i].Label < xs[j].Label
	})
}
