package dist_test

import (
	"reflect"
	"testing"
	"time"

	"matopt/internal/dist"
)

// TestNodeLossCascade kills the sink vertex's node after its upstream
// chain has been freed: the scheduler must walk the lineage back to a
// usable frontier, recompute the missing ancestors and still produce
// bit-identical outputs — the "crash after ancestor freed" case single-
// hop retry cannot recover.
func TestNodeLossCascade(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	want := seqGolden(t, cl, ann, inputs)
	sink := ann.Graph.Vertices[len(ann.Graph.Vertices)-1].ID

	for _, shards := range chaosShards {
		leakChecked(t, func() {
			plan := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultNodeLoss, Vertex: sink})
			rep := runFaulted(t, "node-loss", cl, shards, plan, ann, inputs, want)
			if rep.FaultsInjected != 1 {
				t.Fatalf("node loss @%d shards: %d faults injected, want 1", shards, rep.FaultsInjected)
			}
			if rep.Cascades < 1 || rep.CascadesByVertex[sink] < 1 {
				t.Fatalf("node loss @%d shards: no cascade recorded: %+v", shards, rep)
			}
			// The sink's upstream chain was freed when its consumers
			// completed, so recovery must recompute more than the sink's
			// immediate inputs.
			if rep.MaxCascadeDepth < 2 {
				t.Fatalf("node loss @%d shards: cascade depth %d, want ≥ 2 (freed ancestors recomputed)",
					shards, rep.MaxCascadeDepth)
			}
			if rep.Degraded {
				t.Fatalf("node loss @%d shards: run degraded instead of recovering", shards)
			}
		})
	}
}

// TestNodeLossEveryVertex sweeps a node loss over each vertex at each
// chaos shard count: wherever the node dies, lineage recovery must
// reconstruct the lost inputs and converge bit-identically.
func TestNodeLossEveryVertex(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	want := seqGolden(t, cl, ann, inputs)
	for _, shards := range chaosShards {
		for _, v := range ann.Graph.Vertices {
			plan := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultNodeLoss, Vertex: v.ID})
			rep := runFaulted(t, "node-loss-sweep", cl, shards, plan, ann, inputs, want)
			if rep.FaultsInjected != 1 {
				t.Fatalf("node loss v%d @%d shards: %d faults injected, want 1", v.ID, shards, rep.FaultsInjected)
			}
			// Source vertices have no inputs to lose, so only vertices
			// with dependencies must cascade.
			if len(ann.Graph.Vertices) > 0 && rep.Cascades < 1 && rep.Retries < 1 {
				t.Fatalf("node loss v%d @%d shards: neither cascade nor retry recorded: %+v", v.ID, shards, rep)
			}
		}
	}
}

// TestCheckpointShortensCascade re-runs the sink node loss with
// cost-model checkpoint placement: pinned ancestors form a nearer
// frontier, so the cascade must be strictly shallower than the
// unpinned run's, and the report must meter the pins. A 1-byte budget
// must pin nothing.
func TestCheckpointShortensCascade(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	want := seqGolden(t, cl, ann, inputs)
	sink := ann.Graph.Vertices[len(ann.Graph.Vertices)-1].ID
	plan := func() *dist.FaultPlan {
		return dist.NewFaultPlan(dist.Fault{Kind: dist.FaultNodeLoss, Vertex: sink})
	}

	for _, shards := range chaosShards {
		bare := runFaulted(t, "node-loss-bare", cl, shards, plan(), ann, inputs, want)

		// A multiple this small makes every non-retained compute pass
		// the recompute > multiple × materialize test, so the whole
		// interior of the chain is pinned.
		rep := runFaulted(t, "node-loss-ckpt", cl, shards, plan(), ann, inputs, want,
			dist.WithCheckpointing(1e-9, 0))
		if rep.CheckpointVertices < 1 {
			t.Fatalf("checkpointing @%d shards pinned nothing", shards)
		}
		if rep.CheckpointBytes < 1 {
			t.Fatalf("checkpointing @%d shards metered no pinned bytes: %+v", shards, rep)
		}
		if rep.Cascades < 1 {
			t.Fatalf("checkpointed node loss @%d shards did not cascade: %+v", shards, rep)
		}
		if rep.MaxCascadeDepth >= bare.MaxCascadeDepth {
			t.Fatalf("checkpointing @%d shards did not shorten the cascade: depth %d with pins, %d without",
				shards, rep.MaxCascadeDepth, bare.MaxCascadeDepth)
		}

		// A 1-byte budget rejects every candidate: placement must
		// degrade to no pins, not to a panic or a partial pin.
		rep = runFaulted(t, "node-loss-budget", cl, shards, plan(), ann, inputs, want,
			dist.WithCheckpointing(1e-9, 1))
		if rep.CheckpointVertices != 0 {
			t.Fatalf("1-byte checkpoint budget @%d shards still pinned %d vertices", shards, rep.CheckpointVertices)
		}
	}
}

// TestSpeculativeStragglerWin stalls one exchange of a late vertex far
// past the run's p99 vertex latency: the runtime must launch a
// speculative duplicate on rotated shards, take its result, and stay
// bit-identical to the sequential engine.
func TestSpeculativeStragglerWin(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	want := seqGolden(t, cl, ann, inputs)

	for _, shards := range chaosShards {
		leakChecked(t, func() {
			base := runFaulted(t, "spec-profile", cl, shards, nil, ann, inputs, want)
			if len(base.Exchanges) == 0 {
				t.Fatalf("@%d shards: workload has no exchanges to stall", shards)
			}
			// Stall the latest exchanging vertex: everything upstream has
			// completed by then, so the latency histogram the deadline is
			// derived from is well seeded.
			x := base.Exchanges[0]
			for _, e := range base.Exchanges {
				if e.Vertex > x.Vertex {
					x = e
				}
			}
			plan := dist.NewFaultPlan(dist.Fault{
				Kind: dist.FaultDelayExchange, Vertex: x.Vertex, Label: x.Label, Shard: -1,
				Delay: 750 * time.Millisecond,
			})
			// The floor sits far above any healthy vertex (even under the
			// race detector) and far below the stall: only the straggling
			// vertex is ever raced, its primary reaches the exchange — and
			// latches the once-only delay — long before the duplicate
			// launches, and the duplicate then wins by hundreds of
			// milliseconds. A hair-trigger floor would instead speculate
			// every vertex: an upstream win's rotated placement can make
			// the targeted exchange unnecessary, and the straggler's own
			// duplicate can reach the exchange first and absorb the delay
			// itself.
			rep := runFaulted(t, "spec-straggler", cl, shards, plan, ann, inputs, want,
				dist.WithSpeculation(dist.Speculation{MinObservations: 1, Multiplier: 1, Floor: 250 * time.Millisecond}))
			if rep.FaultsInjected != 1 {
				t.Fatalf("straggler @%d shards: %d faults injected, want 1", shards, rep.FaultsInjected)
			}
			if rep.SpeculativeLaunches < 1 {
				t.Fatalf("straggler @%d shards: no speculative duplicate launched: %+v", shards, rep)
			}
			if rep.SpeculativeWins < 1 {
				t.Fatalf("straggler @%d shards: the duplicate never won against a %v stall: %+v",
					shards, 750*time.Millisecond, rep)
			}
		})
	}
}

// TestSpeculationOffByDefault: with no WithSpeculation option a
// straggling exchange merely slows the run — no duplicates launch.
func TestSpeculationOffByDefault(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	want := seqGolden(t, cl, ann, inputs)
	plan := dist.NewFaultPlan(dist.Fault{
		Kind: dist.FaultDelayExchange, Vertex: -1, Shard: -1, Delay: 5 * time.Millisecond,
	})
	rep := runFaulted(t, "no-spec", cl, 2, plan, ann, inputs, want)
	if rep.SpeculativeLaunches != 0 || rep.SpeculativeWins != 0 {
		t.Fatalf("speculation ran without being enabled: %+v", rep)
	}
}

// TestRandomFaultsGolden locks the RandomFaults schedule for fixed
// seeds: the derived schedules are part of the reproducibility contract
// (chaos runs cite their seed), so the case distribution in
// RandomFaults must never change. If this test fails, restore the
// generator — do not update the golden values.
func TestRandomFaultsGolden(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	golden := map[int64][]dist.Fault{
		1: {
			{Kind: dist.FaultSlowShard, Shard: 3, Delay: 50 * time.Microsecond},
			{Kind: dist.FaultDropExchange, Vertex: 3, Shard: -1},
			{Kind: dist.FaultDropExchange, Vertex: 4, Shard: -1},
			{Kind: dist.FaultCrash, Vertex: 6},
			{Kind: dist.FaultDelayExchange, Vertex: 6, Shard: -1, Delay: 2 * time.Millisecond},
			{Kind: dist.FaultDropExchange, Vertex: 10, Shard: -1},
		},
		7: {
			{Kind: dist.FaultDelayExchange, Vertex: 2, Shard: -1, Delay: time.Millisecond},
			{Kind: dist.FaultCrash, Vertex: 1},
			{Kind: dist.FaultCrash, Vertex: 9},
			{Kind: dist.FaultCrash, Vertex: 10},
			{Kind: dist.FaultCrash, Vertex: 2},
			{Kind: dist.FaultDelayExchange, Vertex: 8, Shard: -1, Delay: 3 * time.Millisecond},
		},
	}
	for seed, want := range golden {
		p := dist.RandomFaults(seed, len(want), ids, 4)
		if got := p.Faults(); !reflect.DeepEqual(got, want) {
			t.Errorf("RandomFaults(seed %d) schedule drifted:\n got  %v\n want %v", seed, got, want)
		}
		if p.Seed() != seed {
			t.Errorf("RandomFaults(seed %d).Seed() = %d", seed, p.Seed())
		}
	}
	if dist.NewFaultPlan().Seed() != 0 {
		t.Error("explicit plans must report seed 0")
	}
	if (*dist.FaultPlan)(nil).Seed() != 0 {
		t.Error("nil plan must report seed 0")
	}
}
