package dist_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/netfabric"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// netfabricBenchResult is the record `make bench` writes to
// BENCH_netfabric.json: the same dist workload run over the in-process
// chan transport and over loopback TCP through a worker server, plus
// the wire accounting next to the cost model's traffic ceiling. TCPNs
// includes framing, socket I/O and the (key, seq) re-sort; the gap to
// ChanNs is the fabric's wire overhead at loopback latency.
type netfabricBenchResult struct {
	Workload   string `json:"workload"`
	Shards     int    `json:"shards"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	ChanNs     int64  `json:"chan_ns"`
	TCPNs      int64  `json:"tcp_ns"`
	// NetBytes is the logical exchange volume, identical on both
	// transports; WireBytes is the framed TCP volume (headers, keys,
	// checksums included) and upper-bounds it.
	NetBytes     int64 `json:"net_bytes"`
	WireBytes    int64 `json:"wire_bytes"`
	WireMessages int64 `json:"wire_messages"`
	WireDials    int64 `json:"wire_dials"`
	// NetBytesCeiling is the cost model's bound on total cross-link
	// traffic for this plan (per-link NetBytes feature × links); the
	// measured logical volume must sit under it (bound_test.go gates
	// this), and the wire volume shows the framing overhead above it.
	NetBytesCeiling float64 `json:"net_bytes_ceiling"`
}

// BenchmarkNetfabric times the dist runtime's exchanges over both
// transports on the bench chain workload. When BENCH_NETFABRIC_JSON
// names a file, the comparison is written there as JSON.
func BenchmarkNetfabric(b *testing.B) {
	const shards = 4
	sz := workload.ChainSizes{
		Name: "bench",
		A:    shape.New(200, 600), B: shape.New(600, 1000),
		C: shape.New(1000, 1), D: shape.New(1, 1000),
		E: shape.New(1000, 200), F: shape.New(1000, 200),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		b.Fatal(err)
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := engine.Simulate(ann, env)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := netfabric.NewServer()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			b.Errorf("worker Serve: %v", err)
		}
	}()

	timeRun := func(tp netfabric.Transport) (int64, *dist.Report) {
		rt, err := dist.New(cl, shards, dist.WithTransport(tp))
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		_, rep, err := rt.Run(context.Background(), ann, inputs)
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(t0).Nanoseconds(), rep
	}

	var chanTotal, tcpTotal int64
	var tcpRep *dist.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chanNs, _ := timeRun(netfabric.Chan())
		chanTotal += chanNs

		tp, err := netfabric.NewTCP([]string{ln.Addr().String()})
		if err != nil {
			b.Fatal(err)
		}
		var tcpNs int64
		tcpNs, tcpRep = timeRun(tp)
		if err := tp.Close(); err != nil {
			b.Fatal(err)
		}
		tcpTotal += tcpNs
	}
	b.StopTimer()

	chanNs := chanTotal / int64(b.N)
	tcpNs := tcpTotal / int64(b.N)
	b.ReportMetric(float64(chanNs), "chan-ns/op")
	b.ReportMetric(float64(tcpNs), "tcp-ns/op")
	b.ReportMetric(float64(tcpRep.WireBytes), "wire-bytes")

	if path := os.Getenv("BENCH_NETFABRIC_JSON"); path != "" {
		out, err := json.MarshalIndent(netfabricBenchResult{
			Workload:        "matmul-chain (scaled)",
			Shards:          shards,
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			NumCPU:          runtime.NumCPU(),
			ChanNs:          chanNs,
			TCPNs:           tcpNs,
			NetBytes:        tcpRep.NetBytes,
			WireBytes:       tcpRep.WireBytes,
			WireMessages:    tcpRep.WireMessages,
			WireDials:       tcpRep.WireDials,
			NetBytesCeiling: costmodel.NetBytesCeiling(sim.Features.NetBytes, shards),
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
