package dist_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/testutil"
	"matopt/internal/workload"
)

// chaosShards are the shard counts the fault sweep runs at: an even
// split and a prime count that misaligns with every tile grid.
var chaosShards = []int{2, 7}

// leakChecked runs fn under the shared goroutine-leak checker: a run
// that failed, recovered, timed out or was cancelled must not leave
// workers, collectors, producers or drainers behind.
func leakChecked(t *testing.T, fn func()) {
	t.Helper()
	testutil.CheckGoroutines(t, fn)
}

// chaosWorkload builds the scaled matmul chain the sweep uses — small
// enough that crash-each-vertex × drop-each-exchange × {2,7} shards
// stays fast, with a DAG deep enough to exercise every exchange kind.
func chaosWorkload(t *testing.T) (*core.Annotation, map[string]*tensor.Dense, costmodel.Cluster) {
	t.Helper()
	sz := workload.ChainSizes{
		Name: "chaos",
		A:    shape.New(60, 150), B: shape.New(150, 250),
		C: shape.New(250, 1), D: shape.New(1, 250),
		E: shape.New(250, 60), F: shape.New(250, 60),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	return ann, inputs, env.Cluster
}

// seqGolden runs the annotation on the sequential engine.
func seqGolden(t *testing.T, cl costmodel.Cluster, ann *core.Annotation, inputs map[string]*tensor.Dense) map[int]*tensor.Dense {
	t.Helper()
	want, err := engine.New(cl).RunCollect(ann, inputs)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return want
}

// runFaulted executes ann on a dist runtime with the given fault plan
// and requires every sink to match the sequential golden bit for bit.
func runFaulted(t *testing.T, name string, cl costmodel.Cluster, shards int, plan *dist.FaultPlan,
	ann *core.Annotation, inputs map[string]*tensor.Dense, want map[int]*tensor.Dense,
	opts ...dist.Option) *dist.Report {
	t.Helper()
	rt, err := dist.New(cl, shards, append([]dist.Option{dist.WithFaults(plan)}, opts...)...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	got, rep, err := rt.Run(context.Background(), ann, inputs)
	if err != nil {
		t.Fatalf("%s @%d shards: dist run did not recover: %v", name, shards, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s @%d shards: %d sinks, sequential produced %d", name, shards, len(got), len(want))
	}
	for id, w := range want {
		g := got[id]
		if g == nil || g.Rows != w.Rows || g.Cols != w.Cols {
			t.Fatalf("%s @%d shards: sink %d missing or misshapen", name, shards, id)
		}
		for i := range w.Data {
			if math.Float64bits(g.Data[i]) != math.Float64bits(w.Data[i]) {
				t.Fatalf("%s @%d shards: sink %d entry %d: dist bits %x != sequential bits %x",
					name, shards, id, i, math.Float64bits(g.Data[i]), math.Float64bits(w.Data[i]))
			}
		}
	}
	return rep
}

// TestChaosSweep is the seeded fault sweep: crash each vertex once,
// drop each exchange once, run with a straggler shard, and run a
// combined schedule — at shards {2, 7}. Every schedule must recover to
// bit-identical outputs, and the Report must count each injected fault
// and each retry taken.
func TestChaosSweep(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	want := seqGolden(t, cl, ann, inputs)

	for _, shards := range chaosShards {
		// Fault-free profiling run: the exchange list drives the
		// drop-each-exchange schedules below.
		base := runFaulted(t, "fault-free", cl, shards, nil, ann, inputs, want)
		if base.FaultsInjected != 0 || base.Retries != 0 {
			t.Fatalf("fault-free run reports recovery: %+v", base)
		}

		// Crash each vertex once on its first attempt.
		for _, v := range ann.Graph.Vertices {
			plan := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultCrash, Vertex: v.ID})
			rep := runFaulted(t, "crash", cl, shards, plan, ann, inputs, want)
			if rep.FaultsInjected != 1 {
				t.Fatalf("crash v%d @%d shards: %d faults injected, want 1", v.ID, shards, rep.FaultsInjected)
			}
			if rep.Retries != 1 || rep.RetriesByVertex[v.ID] != 1 {
				t.Fatalf("crash v%d @%d shards: retries=%d byVertex=%v, want exactly one retry of v%d",
					v.ID, shards, rep.Retries, rep.RetriesByVertex, v.ID)
			}
		}

		// Drop each exchange once: every (vertex, label) the fault-free
		// run metered loses its messages on the vertex's first attempt.
		for _, x := range base.Exchanges {
			plan := dist.NewFaultPlan(dist.Fault{
				Kind: dist.FaultDropExchange, Vertex: x.Vertex, Label: x.Label, Shard: -1,
			})
			rep := runFaulted(t, "drop "+x.Label, cl, shards, plan, ann, inputs, want)
			if rep.FaultsInjected != 1 {
				t.Fatalf("drop %s v%d @%d shards: %d faults injected, want 1", x.Label, x.Vertex, shards, rep.FaultsInjected)
			}
			if rep.RetriesByVertex[x.Vertex] < 1 {
				t.Fatalf("drop %s v%d @%d shards: vertex was not retried: %v", x.Label, x.Vertex, shards, rep.RetriesByVertex)
			}
		}

		// One straggler shard: nothing fails, the schedule just shifts.
		plan := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultSlowShard, Shard: shards - 1, Delay: 100 * time.Microsecond})
		rep := runFaulted(t, "straggler", cl, shards, plan, ann, inputs, want)
		if rep.FaultsInjected != 1 || rep.Retries != 0 {
			t.Fatalf("straggler @%d shards: injected=%d retries=%d, want 1/0", shards, rep.FaultsInjected, rep.Retries)
		}

		// Combined schedule: a crash, a dropped exchange and a straggler
		// in the same run. The dropped exchange must belong to a vertex
		// other than the crashed one — a crash preempts the vertex's
		// first attempt before its exchanges run, so a drop scheduled on
		// the same vertex's attempt 0 would never fire.
		mid := ann.Graph.Vertices[len(ann.Graph.Vertices)/2]
		dropX := base.Exchanges[0]
		for _, x := range base.Exchanges {
			if x.Vertex != mid.ID {
				dropX = x
				break
			}
		}
		combined := dist.NewFaultPlan(
			dist.Fault{Kind: dist.FaultCrash, Vertex: mid.ID},
			dist.Fault{Kind: dist.FaultDropExchange, Vertex: dropX.Vertex, Label: dropX.Label, Shard: -1},
			dist.Fault{Kind: dist.FaultSlowShard, Shard: 0, Delay: 50 * time.Microsecond},
		)
		rep = runFaulted(t, "combined", cl, shards, combined, ann, inputs, want)
		if rep.FaultsInjected != 3 {
			t.Fatalf("combined @%d shards: %d faults injected, want 3", shards, rep.FaultsInjected)
		}
		if rep.Retries < 2 {
			t.Fatalf("combined @%d shards: %d retries, want ≥ 2 (crash + drop)", shards, rep.Retries)
		}
	}
}

// TestChaosSeededRandomSchedules runs seeded RandomFaults schedules over
// an FFNN workload: every seed must recover to bit-identical outputs.
func TestChaosSeededRandomSchedules(t *testing.T) {
	cfg := workload.ScaledFFNN(workload.PaperFFNN(80000), 500)
	g, err := workload.FFNNW2Update(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	inputs := workload.FFNNInputs(rng, cfg)
	want := seqGolden(t, env.Cluster, ann, inputs)

	ids := make([]int, len(ann.Graph.Vertices))
	for i, v := range ann.Graph.Vertices {
		ids[i] = v.ID
	}
	for _, shards := range chaosShards {
		for seed := int64(1); seed <= 4; seed++ {
			plan := dist.RandomFaults(seed, 5, ids, shards)
			rep := runFaulted(t, "random-schedule", cl3(), shards, plan, ann, inputs, want)
			if rep.FaultsInjected > int64(len(plan.Faults())) {
				t.Fatalf("seed %d @%d shards: injected %d of %d scheduled", seed, shards, rep.FaultsInjected, len(plan.Faults()))
			}
		}
	}
}

func cl3() costmodel.Cluster { return costmodel.LocalTest(3) }

// TestDelayedExchangeRecovers covers both delay outcomes: a short delay
// under the timeout merely slows the run; a delay past the exchange
// timeout fails the vertex, which retries and recovers.
func TestDelayedExchangeRecovers(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	want := seqGolden(t, cl, ann, inputs)

	short := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultDelayExchange, Vertex: -1, Shard: -1, Delay: 2 * time.Millisecond})
	rep := runFaulted(t, "short-delay", cl, 4, short, ann, inputs, want)
	if rep.FaultsInjected != 1 || rep.Retries != 0 {
		t.Fatalf("short delay: injected=%d retries=%d, want 1/0", rep.FaultsInjected, rep.Retries)
	}

	// The abandoned producer keeps its shard worker asleep for the full
	// injected delay, so the first retries can themselves time out while
	// queued behind it; a generous retry budget lets the run outlast the
	// stall, as it would a real straggling link.
	leakChecked(t, func() {
		long := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultDelayExchange, Vertex: -1, Shard: -1, Delay: 300 * time.Millisecond})
		rep = runFaulted(t, "long-delay", cl, 4, long, ann, inputs, want,
			dist.WithExchangeTimeout(100*time.Millisecond), dist.WithMaxRetries(8))
		if rep.Retries < 1 {
			t.Fatalf("long delay: vertex was not retried: %+v", rep)
		}
	})
}

// TestRetriesExhausted crashes one vertex on every allowed attempt: the
// run must fail with ErrRetriesExhausted wrapping ErrShardFailed, still
// return its Report, and leak nothing.
func TestRetriesExhausted(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	v := ann.Graph.Vertices[0].ID
	leakChecked(t, func() {
		plan := dist.NewFaultPlan(
			dist.Fault{Kind: dist.FaultCrash, Vertex: v, Attempt: 0},
			dist.Fault{Kind: dist.FaultCrash, Vertex: v, Attempt: 1},
			dist.Fault{Kind: dist.FaultCrash, Vertex: v, Attempt: 2},
		)
		rt, err := dist.New(cl, 4, dist.WithFaults(plan), dist.WithMaxRetries(2),
			dist.WithRetryBackoff(time.Microsecond, time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := rt.Run(context.Background(), ann, inputs)
		if err == nil {
			t.Fatal("run succeeded with a vertex crashing on every attempt")
		}
		if !errors.Is(err, dist.ErrRetriesExhausted) {
			t.Fatalf("error does not wrap ErrRetriesExhausted: %v", err)
		}
		if !errors.Is(err, dist.ErrShardFailed) {
			t.Fatalf("error does not wrap the last attempt's ErrShardFailed: %v", err)
		}
		if rep == nil || rep.Retries != 2 || rep.FaultsInjected != 3 {
			t.Fatalf("failed run's report should still meter recovery, got %+v", rep)
		}
	})
}

// TestVertexDeadlineExhausts bounds a vertex's recovery window: with a
// tiny deadline and a long backoff, a second failure stops retrying.
func TestVertexDeadlineExhausts(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	v := ann.Graph.Vertices[0].ID
	plan := dist.NewFaultPlan(
		dist.Fault{Kind: dist.FaultCrash, Vertex: v, Attempt: 0},
		dist.Fault{Kind: dist.FaultCrash, Vertex: v, Attempt: 1},
	)
	rt, err := dist.New(cl, 2, dist.WithFaults(plan), dist.WithMaxRetries(10),
		dist.WithRetryBackoff(20*time.Millisecond, 20*time.Millisecond),
		dist.WithVertexDeadline(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rt.Run(context.Background(), ann, inputs)
	if !errors.Is(err, dist.ErrRetriesExhausted) {
		t.Fatalf("deadline exceeded should surface as ErrRetriesExhausted, got %v", err)
	}
}

// TestShutdownCleanOnFailure is the shutdown-gap check: runs that fail
// at different points — no retries allowed, a missing input, retries
// exhausted mid-DAG — must drain every worker, collector and producer
// goroutine before Run returns.
func TestShutdownCleanOnFailure(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)

	t.Run("first-fault-fatal", func(t *testing.T) {
		leakChecked(t, func() {
			for _, v := range ann.Graph.Vertices {
				plan := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultCrash, Vertex: v.ID})
				rt, err := dist.New(cl, 4, dist.WithFaults(plan), dist.WithMaxRetries(0))
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := rt.Run(context.Background(), ann, inputs); !errors.Is(err, dist.ErrShardFailed) {
					t.Fatalf("crash v%d with no retries: want ErrShardFailed, got %v", v.ID, err)
				}
			}
		})
	})

	t.Run("missing-input", func(t *testing.T) {
		leakChecked(t, func() {
			rt, err := dist.New(cl, 4)
			if err != nil {
				t.Fatal(err)
			}
			partial := map[string]*tensor.Dense{"A": inputs["A"]}
			if _, _, err := rt.Run(context.Background(), ann, partial); err == nil {
				t.Fatal("run with missing inputs succeeded")
			}
		})
	})

	t.Run("dropped-exchange-fatal", func(t *testing.T) {
		leakChecked(t, func() {
			plan := dist.NewFaultPlan(
				dist.Fault{Kind: dist.FaultDropExchange, Vertex: -1, Shard: -1, Attempt: 0},
				dist.Fault{Kind: dist.FaultDropExchange, Vertex: -1, Shard: -1, Attempt: 1},
				dist.Fault{Kind: dist.FaultDropExchange, Vertex: -1, Shard: -1, Attempt: 2},
			)
			rt, err := dist.New(cl, 7, dist.WithFaults(plan),
				dist.WithRetryBackoff(time.Microsecond, time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			_, _, err = rt.Run(context.Background(), ann, inputs)
			if !errors.Is(err, dist.ErrExchangeTimeout) {
				t.Fatalf("want ErrExchangeTimeout after drops exhaust retries, got %v", err)
			}
		})
	})
}

// TestCancelDuringBackoff cancels the run while a crashed vertex is
// waiting out its retry backoff: the run must return context.Canceled
// promptly — not after the backoff — and leak nothing.
func TestCancelDuringBackoff(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	v := ann.Graph.Vertices[0].ID
	leakChecked(t, func() {
		plan := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultCrash, Vertex: v})
		rt, err := dist.New(cl, 4, dist.WithFaults(plan),
			dist.WithRetryBackoff(time.Hour, time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, _, err := rt.Run(ctx, ann, inputs)
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		t0 := time.Now()
		cancel()
		select {
		case err = <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("cancelled run did not return")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not wrap context.Canceled: %v", err)
		}
		if waited := time.Since(t0); waited > 5*time.Second {
			t.Fatalf("cancellation took %v; the hour-long backoff was not interrupted", waited)
		}
	})
}

// TestCancelDuringInjectedDelay cancels the run while an exchange is
// stalled by an injected delay (mid-retryable-failure): the delay must
// not outlive the cancel.
func TestCancelDuringInjectedDelay(t *testing.T) {
	ann, inputs, cl := chaosWorkload(t)
	leakChecked(t, func() {
		plan := dist.NewFaultPlan(dist.Fault{Kind: dist.FaultDelayExchange, Vertex: -1, Shard: -1, Delay: time.Hour})
		rt, err := dist.New(cl, 4, dist.WithFaults(plan))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, _, err := rt.Run(ctx, ann, inputs)
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		t0 := time.Now()
		cancel()
		select {
		case err = <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("cancelled run did not return")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not wrap context.Canceled: %v", err)
		}
		if waited := time.Since(t0); waited > 5*time.Second {
			t.Fatalf("cancellation took %v; the injected delay was not interrupted", waited)
		}
	})
}
