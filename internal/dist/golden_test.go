package dist_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// goldenShards are the shard counts every workload is checked at: the
// degenerate single shard, an even split, and a prime count that
// misaligns with every tile grid.
var goldenShards = []int{1, 2, 7}

// goldenKernelThreads are the per-shard kernel budgets every workload is
// checked at on top of the default (machine-divided) budget: forced
// serial and an explicit multi-thread setting. Together with the serial
// and auto sequential baselines this is the
// serial-vs-blocked-vs-threaded matrix the kernel layer promises.
var goldenKernelThreads = []int{1, 3}

// compareSinks requires got to reproduce want bit for bit
// (math.Float64bits, not a tolerance).
func compareSinks(t *testing.T, name string, ann *core.Annotation, want, got map[int]*tensor.Dense) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d sinks, baseline produced %d", name, len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("%s: sink %d missing", name, id)
		}
		if g.Rows != w.Rows || g.Cols != w.Cols {
			t.Fatalf("%s: sink %d is %dx%d, want %dx%d", name, id, g.Rows, g.Cols, w.Rows, w.Cols)
		}
		for i := range w.Data {
			if math.Float64bits(g.Data[i]) != math.Float64bits(w.Data[i]) {
				t.Fatalf("%s: sink %d entry (%d,%d): got %v (bits %x) != want %v (bits %x)\nplan:\n%s",
					name, id, i/w.Cols, i%w.Cols,
					g.Data[i], math.Float64bits(g.Data[i]),
					w.Data[i], math.Float64bits(w.Data[i]), ann.Describe())
			}
		}
	}
}

// assertBitIdentical executes ann on the sequential engine (serial and
// threaded kernels) and on the dist runtime at every golden shard count
// and kernel-thread budget, requiring every sink to be bit-for-bit
// identical to the fully serial baseline.
func assertBitIdentical(t *testing.T, name string, cl costmodel.Cluster, ann *core.Annotation, inputs map[string]*tensor.Dense) {
	t.Helper()
	// The baseline: sequential engine, kernels forced serial — the
	// reference every blocked and threaded configuration must reproduce.
	serial := engine.New(cl)
	serial.KernelThreads = 1
	want, err := serial.RunCollect(ann, inputs)
	if err != nil {
		t.Fatalf("%s: serial sequential run: %v", name, err)
	}
	// Sequential engine with auto (whole-machine) kernel threads.
	auto := engine.New(cl)
	got, err := auto.RunCollect(ann, inputs)
	if err != nil {
		t.Fatalf("%s: threaded sequential run: %v", name, err)
	}
	compareSinks(t, name+" seq-auto-kernels", ann, want, got)
	for _, shards := range goldenShards {
		// -1 marks the default (machine-divided) kernel budget.
		for _, kthreads := range append([]int{-1}, goldenKernelThreads...) {
			var opts []dist.Option
			if kthreads > 0 {
				opts = append(opts, dist.WithKernelThreads(kthreads))
			}
			rt, err := dist.New(cl, shards, opts...)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			label := fmt.Sprintf("%s @%d shards kthreads=%d", name, shards, kthreads)
			got, rep, err := rt.Run(context.Background(), ann, inputs)
			if err != nil {
				t.Fatalf("%s: dist run: %v", label, err)
			}
			if rep == nil || rep.Shards != shards {
				t.Fatalf("%s: bad report %+v", label, rep)
			}
			if kthreads > 0 && rep.KernelThreads != kthreads {
				t.Fatalf("%s: report says %d kernel threads", label, rep.KernelThreads)
			}
			compareSinks(t, label, ann, want, got)
		}
	}
}

func optimize(t *testing.T, g *core.Graph, env *core.Env) *core.Annotation {
	t.Helper()
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	return ann
}

// TestGoldenMatMulChain covers the §8.2 chain workload generator at an
// executable scale.
func TestGoldenMatMulChain(t *testing.T) {
	sz := workload.ChainSizes{
		Name: "scaled",
		A:    shape.New(100, 300), B: shape.New(300, 500),
		C: shape.New(500, 1), D: shape.New(1, 500),
		E: shape.New(500, 100), F: shape.New(500, 100),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann := optimize(t, g, env)
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	assertBitIdentical(t, "matmul-chain", env.Cluster, ann, inputs)
}

// TestGoldenFFNN covers the three FFNN workload generators (W2 update,
// full backprop, three-pass) at a scaled size.
func TestGoldenFFNN(t *testing.T) {
	cfg := workload.ScaledFFNN(workload.PaperFFNN(80000), 500)
	gens := map[string]func(workload.FFNNConfig) (*core.Graph, error){
		"w2update": workload.FFNNW2Update,
		"backprop": workload.FFNNBackprop,
		"3pass":    workload.FFNNThreePass,
	}
	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	for name, gen := range gens {
		g, err := gen(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ann := optimize(t, g, env)
		rng := rand.New(rand.NewSource(3))
		assertBitIdentical(t, "ffnn-"+name, env.Cluster, ann, workload.FFNNInputs(rng, cfg))
	}
}

// TestGoldenBlockInverse covers the two-level block-inverse generator.
func TestGoldenBlockInverse(t *testing.T) {
	cfg := workload.BlockInverseConfig{Outer: 40, Inner1: 16, Inner2: 24, BlockFormat: format.NewSingle()}
	g, err := workload.BlockInverse2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann := optimize(t, g, env)
	rng := rand.New(rand.NewSource(1))
	n, n1 := int(cfg.Outer), int(cfg.Inner1)
	full := tensor.RandNormal(rng, 2*n, 2*n)
	for i := 0; i < 2*n; i++ {
		full.Set(i, i, full.At(i, i)+float64(2*n))
	}
	inputs := map[string]*tensor.Dense{
		"A11": full.Slice(0, n1, 0, n1), "A12": full.Slice(0, n1, n1, n),
		"A21": full.Slice(n1, n, 0, n1), "A22": full.Slice(n1, n, n1, n),
		"B1": full.Slice(0, n1, n, 2*n), "B2": full.Slice(n1, n, n, 2*n),
		"C1": full.Slice(n, 2*n, 0, n1), "C2": full.Slice(n, 2*n, n1, n),
		"D": full.Slice(n, 2*n, n, 2*n),
	}
	assertBitIdentical(t, "block-inverse", env.Cluster, ann, inputs)
}

// TestGoldenSparse covers sparse formats: a CSR-input FFNN forward
// layer and a COO-input multiply.
func TestGoldenSparse(t *testing.T) {
	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	{
		g := core.NewGraph()
		x := g.Input("X", shape.New(200, 3000), 0.01, format.NewCSRSingle())
		w1 := g.Input("W1", shape.New(3000, 80), 1, format.NewRowStrip(1000))
		z1 := g.MustApply(op.Op{Kind: op.MatMul}, x, w1)
		g.MustApply(op.Op{Kind: op.ReLU}, z1)
		ann := optimize(t, g, env)
		rng := rand.New(rand.NewSource(2))
		inputs := map[string]*tensor.Dense{
			"X":  tensor.RandSparse(rng, 200, 3000, 0.01),
			"W1": tensor.RandNormal(rng, 3000, 80),
		}
		assertBitIdentical(t, "sparse-csr-forward", env.Cluster, ann, inputs)
	}
	{
		g := core.NewGraph()
		x := g.Input("X", shape.New(150, 400), 0.005, format.NewCOO())
		w := g.Input("W", shape.New(400, 60), 1, format.NewSingle())
		g.MustApply(op.Op{Kind: op.MatMul}, x, w)
		ann := optimize(t, g, env)
		rng := rand.New(rand.NewSource(4))
		inputs := map[string]*tensor.Dense{
			"X": tensor.RandSparse(rng, 150, 400, 0.005),
			"W": tensor.RandNormal(rng, 400, 60),
		}
		assertBitIdentical(t, "sparse-coo-mm", env.Cluster, ann, inputs)
	}
}

// TestGoldenRandomGraphs mirrors the engine's strongest integration
// property across both engines: random DAGs over mixed formats must
// agree bit-for-bit at every shard count.
func TestGoldenRandomGraphs(t *testing.T) {
	env := core.NewEnv(costmodel.LocalTest(4), format.All())
	kinds := []op.Kind{op.MatMul, op.Add, op.Sub, op.Hadamard, op.Transpose,
		op.ReLU, op.ReLUGrad, op.Neg, op.ScalarMul, op.Softmax, op.RowSums, op.ColSums}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := core.NewGraph()
		const n = 120
		s := shape.New(n, n)
		srcFormats := []format.Format{
			format.NewSingle(), format.NewTile(100), format.NewRowStrip(100), format.NewColStrip(100),
		}
		inputs := make(map[string]*tensor.Dense)
		nIn := 2 + rng.Intn(2)
		for i := 0; i < nIn; i++ {
			name := string(rune('A' + i))
			g.Input(name, s, 1, srcFormats[rng.Intn(len(srcFormats))])
			inputs[name] = tensor.RandNormal(rng, n, n)
		}
		for i := 0; i < 4+rng.Intn(4); i++ {
			k := kinds[rng.Intn(len(kinds))]
			o := op.Op{Kind: k}
			if k == op.ScalarMul {
				o.Scalar = rng.Float64()*2 - 1
			}
			pickSquare := func() *core.Vertex {
				for {
					v := g.Vertices[rng.Intn(len(g.Vertices))]
					if v.Shape == s {
						return v
					}
				}
			}
			var err error
			if o.Arity() == 2 {
				_, err = g.Apply(o, pickSquare(), pickSquare())
			} else {
				_, err = g.Apply(o, pickSquare())
			}
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		ann := optimize(t, g, env)
		assertBitIdentical(t, "random-dag", env.Cluster, ann, inputs)
	}
}
