package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/obs"
	"matopt/internal/plan"
	"matopt/internal/pool"
	"matopt/internal/shape"
	"matopt/internal/tensor"
)

// planGroup is the dist runtime's unit of scheduling and recovery: one
// vertex's producing plan node (a scan or compute) fused with the
// re-layout nodes feeding it. Fusing keeps the fault surface per vertex
// — one attempt counter, one lineage record, one retry unit — exactly as
// the recovery semantics and chaos tests expect, while the work itself
// is described entirely by shared physical-plan IR nodes.
type planGroup struct {
	vertex    int
	node      *plan.Node   // the vertex's producing node (KindScan or KindCompute)
	relayouts []*plan.Node // per compute arg: the fused re-layout node, nil for identity edges
	deps      []int        // producer vertex IDs in argument order
}

// buildGroups fuses a lowered plan into per-vertex recovery groups.
// Free nodes are not scheduled — the scheduler ref-counts relations by
// consumer group instead, which releases values at the same points the
// plan's free nodes mark, but safely under concurrent completion order.
func buildGroups(p *plan.Plan) ([]*planGroup, error) {
	groups := make([]*planGroup, len(p.Graph.Vertices))
	for _, n := range p.Nodes {
		switch n.Kind {
		case plan.KindScan:
			groups[n.Vertex] = &planGroup{vertex: n.Vertex, node: n}
		case plan.KindCompute:
			gr := &planGroup{
				vertex:    n.Vertex,
				node:      n,
				relayouts: make([]*plan.Node, len(n.Inputs)),
				deps:      make([]int, len(n.Inputs)),
			}
			for j, id := range n.Inputs {
				in := p.Nodes[id]
				if in.Kind == plan.KindRelayout {
					gr.relayouts[j] = in
					in = p.Nodes[in.Inputs[0]]
				}
				if in.Kind != plan.KindScan && in.Kind != plan.KindCompute {
					return nil, fmt.Errorf("dist: node %d input %d is not a vertex value: %w",
						n.ID, id, core.ErrInternal)
				}
				gr.deps[j] = in.Vertex
			}
			groups[n.Vertex] = gr
		}
	}
	for id, gr := range groups {
		if gr == nil {
			return nil, fmt.Errorf("dist: vertex %d has no plan node: %w", id, core.ErrInternal)
		}
	}
	return groups, nil
}

// run is the per-execution state: one worker goroutine per shard fed by
// a task queue, the comms fabric, the lowered physical plan being
// executed, the run's metrics registry (every meter and timer lands
// there; the final Report is a view over it), the optional tracer, and
// the recovery bookkeeping (lineage records, cascade counters, in-flight
// speculative attempts).
type run struct {
	rt      *Runtime
	ctx     context.Context
	pl      *plan.Plan
	groups  []*planGroup
	fab     *fabric
	tasks   []chan func()
	workers sync.WaitGroup
	specWG  sync.WaitGroup // in-flight attempt goroutines (primary + speculative)

	reg   *obs.Registry  // per-run metrics; merged into obs.Default at report time
	tr    *obs.Tracer    // nil when tracing is disabled
	span  *obs.Span      // the run's "dist.run" root span
	qwait *obs.Histogram // dist.queue.wait.seconds
	vsec  *obs.Histogram // dist.vertex.seconds — feeds the speculation deadline

	kthreads int          // kernel threads per shard (resolved: explicit or pool.Budget)
	kernNS   *obs.Counter // dist.kernel.ns — wall time inside local compute kernels

	casc     map[int]int // vertex ID → cascading recomputes taken (scheduler goroutine only)
	recMu    sync.Mutex  // guards lineages
	lineages map[int]lineage
}

// exec is one attempt's view of the run: the embedded run carries all
// shared state (shards, fabric, registry), while the attempt-scoped
// fields shadow it — ctx so a speculative loser can be cancelled without
// touching the primary, span so exchanges nest under the right attempt,
// attempt so fault matchers see the right number, and ownerOff so a
// speculative duplicate computes on rotated owner shards (away from the
// straggler that triggered it). Every operator and exchange primitive
// takes *exec; promotion keeps the shared methods (on, parallel,
// shards, shardOf, submit) reachable unchanged.
type exec struct {
	*run
	ctx      context.Context
	attempt  int
	ownerOff int
	span     *obs.Span
	kernAcc  atomic.Int64 // kernel ns accumulated by this attempt, for its span
}

// kern returns the kernel context this attempt's local compute runs
// under: the run's per-shard thread budget (so shard × kernel
// parallelism never oversubscribes the machine), with a timer that
// meters kernel wall time into the run registry (dist.kernel.ns) and
// the attempt's kernel_ns span attribute — traces therefore show kernel
// time against the exchange spans directly.
func (x *exec) kern() tensor.K {
	return tensor.K{Threads: x.kthreads, Timer: func(ns int64) {
		x.kernNS.Add(ns)
		x.kernAcc.Add(ns)
	}}
}

func newRun(rt *Runtime, ctx context.Context, p *plan.Plan, groups []*planGroup) *run {
	reg := obs.NewRegistry()
	r := &run{
		rt:     rt,
		ctx:    ctx,
		pl:     p,
		groups: groups,
		reg:    reg,
		tr:     rt.tr,
		fab:    &fabric{shards: rt.shards, reg: reg},
		tasks:  make([]chan func(), rt.shards),
		qwait:  reg.Histogram("dist.queue.wait.seconds", obs.DefaultDurationBuckets()),
		vsec:   reg.Histogram("dist.vertex.seconds", obs.DefaultDurationBuckets()),
		casc:   make(map[int]int),
	}
	r.kthreads = rt.kernelThreads
	if r.kthreads <= 0 {
		r.kthreads = pool.Budget(rt.shards)
	}
	r.kernNS = reg.Counter("dist.kernel.ns")
	r.span = rt.tr.Start(rt.span, "dist.run").
		SetInt("shards", int64(rt.shards)).
		SetInt("kernel_threads", int64(r.kthreads))
	for s := 0; s < rt.shards; s++ {
		r.tasks[s] = make(chan func(), 16)
		straggle := rt.faults.slow(s)
		busy := reg.Counter("dist.shard.busy_ns", obs.L("shard", strconv.Itoa(s)))
		r.workers.Add(1)
		go func(s int) {
			defer r.workers.Done()
			for fn := range r.tasks[s] {
				if straggle > 0 {
					time.Sleep(straggle)
				}
				t0 := time.Now()
				fn()
				busy.Add(int64(time.Since(t0)))
			}
		}(s)
	}
	return r
}

// stop shuts the run down leak-free: first wait for every attempt
// goroutine — a cancelled speculative loser may still be submitting
// tasks — then close the shard queues and wait for the workers.
func (r *run) stop() {
	r.specWG.Wait()
	for _, ch := range r.tasks {
		close(ch)
	}
	r.workers.Wait()
	r.span.End()
}

func (r *run) shards() int { return r.rt.shards }

// shardOf hashes a tuple key to its home shard — the same mixing as the
// sequential engine's worker placement, over the shard count.
func (r *run) shardOf(k engine.Key) int {
	h := uint64(k.I)*0x9e3779b97f4a7c15 ^ uint64(k.J)*0xff51afd7ed558ccd
	return int(h % uint64(r.shards()))
}

// ownerShard is the deterministic home of a vertex's single-tuple
// output: spreading owners by vertex ID keeps independent single-chunk
// chains on different shards, which is where the DAG parallelism of
// single-format plans comes from. A speculative attempt's ownerOff
// rotates every owner so the duplicate's tasks land on different
// workers than the straggling primary's.
func (x *exec) ownerShard(id int) int {
	if id < 0 {
		id = -id
	}
	return (id + x.ownerOff) % x.shards()
}

// submit queues fn on one shard's worker, metering how long the task
// sat in the queue before the worker picked it up.
func (r *run) submit(shard int, fn func()) {
	enq := time.Now()
	r.tasks[shard] <- func() {
		r.qwait.Observe(time.Since(enq).Seconds())
		fn()
	}
}

// parallel runs fn(s) on every shard's worker and waits for all of
// them; the first error (by shard index) is returned.
func (r *run) parallel(fn func(shard int) error) error {
	errs := make([]error, r.shards())
	var wg sync.WaitGroup
	wg.Add(r.shards())
	for s := 0; s < r.shards(); s++ {
		s := s
		r.submit(s, func() {
			defer wg.Done()
			errs[s] = fn(s)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// on runs fn on one shard's worker and waits for it.
func (r *run) on(shard int, fn func() error) error {
	var wg sync.WaitGroup
	var err error
	wg.Add(1)
	r.submit(shard, func() {
		defer wg.Done()
		err = fn()
	})
	wg.Wait()
	return err
}

// place distributes freshly produced tuples: chunked-kind formats are
// hash partitioned by key; single-kind formats live on the producing
// vertex's owner shard.
func (x *exec) place(vertex int, f format.Format, s shape.Shape, density float64, tuples []engine.Tuple) *relation {
	parts := make([][]engine.Tuple, x.shards())
	if f.Kind == format.Single || f.Kind == format.CSRSingle {
		parts[x.ownerShard(vertex)] = tuples
	} else {
		for _, t := range tuples {
			d := x.shardOf(t.Key)
			parts[d] = append(parts[d], t)
		}
	}
	return &relation{format: f, shape: s, density: density, parts: parts}
}

// checkpointPins re-derives the pin-for-recovery set from the plan's
// pure per-node recompute/materialize costs under this runtime's
// configured checkpoint multiple and memory budget. The plan itself
// stores only knob-free per-node costs (Plan.Physical is memoized and
// shared across cache hits), so two executors with different knobs can
// pin differently off the same plan. Under a budget the greedy order is
// deepest-first: a deep vertex fronts the longest recompute chain, so
// pinning it truncates the worst cascades first.
func (r *run) checkpointPins() map[int]bool {
	rt := r.rt
	if !rt.ckptOn {
		return nil
	}
	retained := make(map[int]bool, len(r.pl.Retained))
	for _, id := range r.pl.Retained {
		retained[id] = true
	}
	var cands []*plan.Node
	for _, n := range r.pl.Nodes {
		if n.Kind != plan.KindCompute || retained[n.Vertex] {
			continue
		}
		if costmodel.ShouldCheckpoint(n.RecomputeSeconds, n.MaterializeSeconds, rt.ckptMultiple) {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	pins := make(map[int]bool, len(cands))
	if rt.ckptBudget <= 0 {
		for _, n := range cands {
			pins[n.Vertex] = true
		}
		return pins
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Depth != cands[j].Depth {
			return cands[i].Depth > cands[j].Depth
		}
		if cands[i].RecomputeSeconds != cands[j].RecomputeSeconds {
			return cands[i].RecomputeSeconds > cands[j].RecomputeSeconds
		}
		return cands[i].Vertex < cands[j].Vertex
	})
	var used int64
	for _, n := range cands {
		b := n.OutBytes()
		if used+b > rt.ckptBudget {
			continue
		}
		used += b
		pins[n.Vertex] = true
	}
	return pins
}

// execute schedules the dataflow DAG: every recovery group whose inputs
// are ready is launched concurrently; a completed group releases inputs
// whose last consumer has now run (retained and checkpoint-pinned
// vertices are kept). A group that fails because its inputs were lost
// triggers a cascading lineage recompute back to the nearest resident
// frontier. Returns the retained relations and the peak resident bytes.
func (r *run) execute(inputs map[string]*tensor.Dense) (map[int]*relation, int64, error) {
	refs := make(map[int]int, len(r.groups))
	retain := make(map[int]bool)
	for _, gr := range r.groups {
		for _, dep := range gr.deps {
			refs[dep]++
		}
	}
	for _, id := range r.pl.Retained {
		retain[id] = true
	}
	pins := r.checkpointPins()
	for id := range pins {
		retain[id] = true
	}
	if len(pins) > 0 {
		r.reg.Gauge("dist.checkpoint.vertices").Set(int64(len(pins)))
		r.span.SetInt("checkpoints", int64(len(pins)))
	}

	type result struct {
		id  int
		rel *relation
		err error
	}
	results := make(chan result)
	rels := make(map[int]*relation, len(r.groups))
	done := make(map[int]bool, len(r.groups))
	launched := make(map[int]bool, len(r.groups))
	var failed error
	var resident, peak int64
	inFlight, completed := 0, 0

	ready := func(gr *planGroup) bool {
		if launched[gr.vertex] {
			return false
		}
		for _, dep := range gr.deps {
			if !done[dep] {
				return false
			}
		}
		return true
	}
	launch := func(gr *planGroup) {
		launched[gr.vertex] = true
		// Snapshot input relations now: ref counts guarantee they stay
		// alive until this consumer completes.
		ins := make([]*relation, len(gr.deps))
		for j, dep := range gr.deps {
			ins[j] = rels[dep]
		}
		inFlight++
		go func(gr *planGroup) {
			rel, err := r.runGroup(gr, ins, inputs)
			results <- result{id: gr.vertex, rel: rel, err: err}
		}(gr)
	}

	for {
		if failed == nil {
			if err := r.ctx.Err(); err != nil {
				failed = fmt.Errorf("dist: execution aborted: %w", err)
			} else {
				for _, gr := range r.groups {
					if ready(gr) {
						launch(gr)
					}
				}
			}
		}
		if inFlight == 0 {
			break
		}
		res := <-results
		inFlight--
		if res.err != nil {
			var lie *lostInputsError
			if failed == nil && r.ctx.Err() == nil && errors.As(res.err, &lie) {
				if cerr := r.cascade(res.id, lie, refs, retain, rels, done, launched, &resident, &completed); cerr != nil {
					failed = cerr
				}
				continue
			}
			if failed == nil {
				failed = res.err
			}
			continue
		}
		rels[res.id] = res.rel
		done[res.id] = true
		completed++
		resident += res.rel.bytes()
		if resident > peak {
			peak = resident
		}
		for _, dep := range r.groups[res.id].deps {
			refs[dep]--
			if refs[dep] == 0 && !retain[dep] {
				if rel, ok := rels[dep]; ok {
					resident -= rel.bytes()
					delete(rels, dep)
				}
			}
		}
	}
	if len(pins) > 0 {
		var ckptBytes int64
		for id := range pins {
			if rel, ok := rels[id]; ok {
				ckptBytes += rel.bytes()
			}
		}
		r.reg.Gauge("dist.checkpoint.bytes").SetMax(ckptBytes)
	}
	if failed != nil {
		return nil, peak, failed
	}
	if completed != len(r.groups) {
		return nil, peak, fmt.Errorf("dist: scheduler stalled with %d of %d vertices executed: %w",
			completed, len(r.groups), core.ErrInternal)
	}
	return rels, peak, nil
}

// cascade recovers a vertex whose inputs were lost by walking the plan
// DAG backwards to the nearest usable frontier — a dependency that is
// done, still resident and not itself lost, or one still in flight —
// and resetting everything between that frontier and the failed vertex
// for re-execution. The normal ready/launch loop then re-runs the chain
// in dependency order, re-deriving fused re-layouts per attempt from
// the IR. Bookkeeping invariants: a reset vertex that had completed
// pre-increments each dependency's ref count (it will decrement again
// on re-completion), and the failed vertex itself still holds one
// pending ref on each of its inputs, so no relation recomputed for the
// cascade can be freed before the failed vertex consumes it. Cascades
// per vertex are bounded by the runtime's retry budget.
func (r *run) cascade(vertex int, cause *lostInputsError, refs map[int]int, retain map[int]bool,
	rels map[int]*relation, done, launched map[int]bool, resident *int64, completed *int) error {
	r.casc[vertex]++
	if r.casc[vertex] > r.rt.maxRetries {
		return &RetriesExhaustedError{Vertex: vertex, Attempts: r.casc[vertex], Cause: cause}
	}
	launched[vertex] = false
	visited := make(map[int]bool)
	var redo []int
	var visit func(u int)
	visit = func(u int) {
		if visited[u] {
			return
		}
		visited[u] = true
		if u != vertex {
			if rel, ok := rels[u]; ok && done[u] && !rel.isLost() {
				return // usable frontier: resident and intact
			}
			if launched[u] && !done[u] {
				return // in flight: its fresh value arrives through the normal path
			}
		}
		for _, dep := range r.groups[u].deps {
			visit(dep)
		}
		redo = append(redo, u)
	}
	visit(vertex)
	depth := len(redo) - 1
	cspan := r.tr.Start(r.span, "cascade.recompute").
		SetInt("vertex", int64(vertex)).SetInt("depth", int64(depth))
	r.reg.Counter("dist.cascades", obs.L("vertex", strconv.Itoa(vertex))).Inc()
	r.reg.Gauge("dist.cascade.depth").SetMax(int64(depth))
	for _, u := range redo {
		if done[u] {
			*completed--
			for _, dep := range r.groups[u].deps {
				refs[dep]++ // re-completion will decrement again
			}
		}
		if rel, ok := rels[u]; ok {
			*resident -= rel.bytes()
			delete(rels, u)
		}
		done[u], launched[u] = false, false
	}
	cspan.End()
	return nil
}

// execGroup runs one recovery group's plan nodes: the scan for sources,
// otherwise the fused re-layout nodes followed by the compute node's
// dist operator, verified against the plan's output format. An injected
// node-loss fault additionally marks the group's input relations lost,
// so the retry discovers the missing data and escalates to a cascade.
func (x *exec) execGroup(gr *planGroup, ins []*relation, inputs map[string]*tensor.Dense) (*relation, error) {
	defer func() {
		if ns := x.kernAcc.Load(); ns > 0 {
			x.span.SetInt("kernel_ns", ns)
		}
	}()
	if err := x.ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: execution aborted before vertex %d: %w", gr.vertex, err)
	}
	if f := x.rt.faults.loses(gr.vertex, x.attempt); f != nil {
		for _, in := range ins {
			if in != nil {
				in.markLost()
			}
		}
		return nil, fmt.Errorf("dist: injected %v on shard %d: %w", *f, x.ownerShard(gr.vertex), ErrShardFailed)
	}
	if f := x.rt.faults.crash(gr.vertex, x.attempt); f != nil {
		return nil, fmt.Errorf("dist: injected %v on shard %d: %w", *f, x.ownerShard(gr.vertex), ErrShardFailed)
	}
	n := gr.node
	if n.Kind == plan.KindScan {
		m, ok := inputs[n.Source]
		if !ok {
			return nil, fmt.Errorf("dist: no input matrix for source %q", n.Source)
		}
		if int64(m.Rows) != n.OutShape.Rows || int64(m.Cols) != n.OutShape.Cols {
			return nil, fmt.Errorf("dist: input %q is %dx%d, graph declares %v",
				n.Source, m.Rows, m.Cols, n.OutShape)
		}
		var rel *relation
		err := x.on(x.ownerShard(gr.vertex), func() error {
			tuples, s, density, err := engine.Chunk(m, n.OutFormat, x.rt.cluster.MaxTupleBytes)
			if err != nil {
				return fmt.Errorf("dist: loading %q: %w", n.Source, err)
			}
			rel = x.place(gr.vertex, n.OutFormat, s, density, tuples)
			return nil
		})
		return rel, err
	}
	ex, ok := distExecutors[n.Name]
	if !ok {
		return nil, fmt.Errorf("dist: no executor for implementation %q", n.Name)
	}
	for j := range ins {
		if ins[j] == nil {
			return nil, fmt.Errorf("dist: vertex %d input %d was freed early", gr.vertex, j)
		}
		if ins[j].isLost() {
			return nil, &lostInputsError{vertex: gr.vertex, arg: j}
		}
	}
	for j := range ins {
		if rn := gr.relayouts[j]; rn != nil {
			var err error
			ins[j], err = x.transform(gr.vertex, j, ins[j], rn.OutFormat)
			if err != nil {
				return nil, fmt.Errorf("dist: transforming input %d of vertex %d: %w", j, gr.vertex, err)
			}
		}
	}
	out, err := ex(x, n, ins)
	if err != nil {
		return nil, fmt.Errorf("dist: executing vertex %d (%s): %w", gr.vertex, n.Name, err)
	}
	if out.format != n.OutFormat {
		return nil, fmt.Errorf("dist: vertex %d produced %v, plan says %v",
			gr.vertex, out.format, n.OutFormat)
	}
	return out, nil
}

// report finalizes the run's registry (peak/wall/fault gauges), builds
// the Report as a view over it, and merges the per-run readings into
// the process-wide obs.Default registry. Called exactly once per Run,
// on both the success and the error path, so even a run that is about
// to degrade reports everything it metered.
func (r *run) report(peak int64, wall time.Duration) *Report {
	r.reg.Gauge("dist.shards").Set(int64(r.shards()))
	r.reg.Gauge("dist.kernel.threads").Set(int64(r.kthreads))
	r.reg.Gauge("dist.peak_bytes").SetMax(peak)
	r.reg.Gauge("dist.wall_ns").SetMax(int64(wall))
	r.reg.Gauge("dist.faults_injected").Set(r.rt.faults.Injected())
	rep := reportFromRegistry(r.reg.Snapshot())
	rep.Transport = r.rt.transport.Name()
	obs.Default().Merge(r.reg)
	return rep
}
