package dist

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"matopt/internal/core"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/obs"
	"matopt/internal/shape"
	"matopt/internal/tensor"
)

// run is the per-execution state: one worker goroutine per shard fed by
// a task queue, the comms fabric, the annotation being executed, the
// run's metrics registry (every meter and timer lands there; the final
// Report is a view over it), the optional tracer, and the recovery
// bookkeeping (per-vertex attempt counters and lineage records).
type run struct {
	rt      *Runtime
	ctx     context.Context
	ann     *core.Annotation
	fab     *fabric
	tasks   []chan func()
	workers sync.WaitGroup

	reg   *obs.Registry              // per-run metrics; merged into obs.Default at report time
	tr    *obs.Tracer                // nil when tracing is disabled
	span  *obs.Span                  // the run's "dist.run" root span
	vspan []atomic.Pointer[obs.Span] // per vertex: the in-flight attempt's span
	qwait *obs.Histogram             // dist.queue.wait.seconds
	vsec  *obs.Histogram             // dist.vertex.seconds

	att      []atomic.Int32  // in-flight execution attempt, per vertex
	recMu    sync.Mutex      // guards lineages
	lineages map[int]lineage // vertex ID → recovery record
}

func newRun(rt *Runtime, ctx context.Context, ann *core.Annotation) *run {
	reg := obs.NewRegistry()
	r := &run{
		rt:    rt,
		ctx:   ctx,
		ann:   ann,
		reg:   reg,
		tr:    rt.tr,
		fab:   &fabric{shards: rt.shards, reg: reg},
		tasks: make([]chan func(), rt.shards),
		vspan: make([]atomic.Pointer[obs.Span], len(ann.Graph.Vertices)),
		qwait: reg.Histogram("dist.queue.wait.seconds", obs.DefaultDurationBuckets()),
		vsec:  reg.Histogram("dist.vertex.seconds", obs.DefaultDurationBuckets()),
		att:   make([]atomic.Int32, len(ann.Graph.Vertices)),
	}
	r.span = rt.tr.Start(rt.span, "dist.run").SetInt("shards", int64(rt.shards))
	for s := 0; s < rt.shards; s++ {
		r.tasks[s] = make(chan func(), 16)
		straggle := rt.faults.slow(s)
		busy := reg.Counter("dist.shard.busy_ns", obs.L("shard", strconv.Itoa(s)))
		r.workers.Add(1)
		go func(s int) {
			defer r.workers.Done()
			for fn := range r.tasks[s] {
				if straggle > 0 {
					time.Sleep(straggle)
				}
				t0 := time.Now()
				fn()
				busy.Add(int64(time.Since(t0)))
			}
		}(s)
	}
	return r
}

// vspanOf returns the span of the vertex's in-flight attempt, under
// which its exchanges nest; nil when tracing is off or the vertex is
// out of range (a defensive case for meters registered outside a
// vertex's run).
func (r *run) vspanOf(vertex int) *obs.Span {
	if vertex < 0 || vertex >= len(r.vspan) {
		return nil
	}
	return r.vspan[vertex].Load()
}

// stop shuts the shard pools down and waits for every worker to exit,
// so a finished (or cancelled) run leaks no goroutines.
func (r *run) stop() {
	for _, ch := range r.tasks {
		close(ch)
	}
	r.workers.Wait()
	r.span.End()
}

func (r *run) shards() int { return r.rt.shards }

// shardOf hashes a tuple key to its home shard — the same mixing as the
// sequential engine's worker placement, over the shard count.
func (r *run) shardOf(k engine.Key) int {
	h := uint64(k.I)*0x9e3779b97f4a7c15 ^ uint64(k.J)*0xff51afd7ed558ccd
	return int(h % uint64(r.shards()))
}

// ownerShard is the deterministic home of a vertex's single-tuple
// output: spreading owners by vertex ID keeps independent single-chunk
// chains on different shards, which is where the DAG parallelism of
// single-format plans comes from.
func (r *run) ownerShard(id int) int {
	if id < 0 {
		id = -id
	}
	return id % r.shards()
}

// submit queues fn on one shard's worker, metering how long the task
// sat in the queue before the worker picked it up.
func (r *run) submit(shard int, fn func()) {
	enq := time.Now()
	r.tasks[shard] <- func() {
		r.qwait.Observe(time.Since(enq).Seconds())
		fn()
	}
}

// parallel runs fn(s) on every shard's worker and waits for all of
// them; the first error (by shard index) is returned.
func (r *run) parallel(fn func(shard int) error) error {
	errs := make([]error, r.shards())
	var wg sync.WaitGroup
	wg.Add(r.shards())
	for s := 0; s < r.shards(); s++ {
		s := s
		r.submit(s, func() {
			defer wg.Done()
			errs[s] = fn(s)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// on runs fn on one shard's worker and waits for it.
func (r *run) on(shard int, fn func() error) error {
	var wg sync.WaitGroup
	var err error
	wg.Add(1)
	r.submit(shard, func() {
		defer wg.Done()
		err = fn()
	})
	wg.Wait()
	return err
}

// place distributes freshly produced tuples: chunked-kind formats are
// hash partitioned by key; single-kind formats live on the producing
// vertex's owner shard.
func (r *run) place(v *core.Vertex, f format.Format, s shape.Shape, density float64, tuples []engine.Tuple) *relation {
	parts := make([][]engine.Tuple, r.shards())
	if f.Kind == format.Single || f.Kind == format.CSRSingle {
		parts[r.ownerShard(v.ID)] = tuples
	} else {
		for _, t := range tuples {
			d := r.shardOf(t.Key)
			parts[d] = append(parts[d], t)
		}
	}
	return &relation{format: f, shape: s, density: density, parts: parts}
}

// execute schedules the dataflow DAG: every vertex whose inputs are
// ready is launched concurrently; a completed vertex releases inputs
// whose last consumer has now run (sinks are retained). Returns the
// retained relations and the peak resident bytes.
func (r *run) execute(inputs map[string]*tensor.Dense) (map[int]*relation, int64, error) {
	g := r.ann.Graph
	byID := make(map[int]*core.Vertex, len(g.Vertices))
	refs := make(map[int]int, len(g.Vertices))
	retain := make(map[int]bool)
	for _, v := range g.Vertices {
		byID[v.ID] = v
		for _, in := range v.Ins {
			refs[in.ID]++
		}
	}
	for _, v := range g.Sinks() {
		retain[v.ID] = true
	}

	type result struct {
		id  int
		rel *relation
		err error
	}
	results := make(chan result)
	rels := make(map[int]*relation, len(g.Vertices))
	done := make(map[int]bool, len(g.Vertices))
	launched := make(map[int]bool, len(g.Vertices))
	var failed error
	var resident, peak int64
	inFlight, completed := 0, 0

	ready := func(v *core.Vertex) bool {
		if launched[v.ID] {
			return false
		}
		for _, in := range v.Ins {
			if !done[in.ID] {
				return false
			}
		}
		return true
	}
	launch := func(v *core.Vertex) {
		launched[v.ID] = true
		// Snapshot input relations now: ref counts guarantee they stay
		// alive until this consumer completes.
		ins := make([]*relation, len(v.Ins))
		for j, in := range v.Ins {
			ins[j] = rels[in.ID]
		}
		inFlight++
		go func(v *core.Vertex) {
			rel, err := r.runVertex(v, ins, inputs)
			results <- result{id: v.ID, rel: rel, err: err}
		}(v)
	}

	for {
		if failed == nil {
			if err := r.ctx.Err(); err != nil {
				failed = fmt.Errorf("dist: execution aborted: %w", err)
			} else {
				for _, v := range g.Vertices {
					if ready(v) {
						launch(v)
					}
				}
			}
		}
		if inFlight == 0 {
			break
		}
		res := <-results
		inFlight--
		if res.err != nil {
			if failed == nil {
				failed = res.err
			}
			continue
		}
		rels[res.id] = res.rel
		done[res.id] = true
		completed++
		resident += res.rel.bytes()
		if resident > peak {
			peak = resident
		}
		for _, in := range byID[res.id].Ins {
			refs[in.ID]--
			if refs[in.ID] == 0 && !retain[in.ID] {
				resident -= rels[in.ID].bytes()
				delete(rels, in.ID)
			}
		}
	}
	if failed != nil {
		return nil, peak, failed
	}
	if completed != len(g.Vertices) {
		return nil, peak, fmt.Errorf("dist: scheduler stalled with %d of %d vertices executed: %w",
			completed, len(g.Vertices), core.ErrInternal)
	}
	return rels, peak, nil
}

// execVertex runs one vertex: load for sources, otherwise edge
// transforms followed by the vertex's dist operator, verified against
// the annotated output format.
func (r *run) execVertex(v *core.Vertex, ins []*relation, inputs map[string]*tensor.Dense) (*relation, error) {
	if err := r.ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: execution aborted before vertex %d: %w", v.ID, err)
	}
	if f := r.rt.faults.crash(v.ID, r.attemptOf(v.ID)); f != nil {
		return nil, fmt.Errorf("dist: injected %v on shard %d: %w", *f, r.ownerShard(v.ID), ErrShardFailed)
	}
	if v.IsSource {
		m, ok := inputs[v.Name]
		if !ok {
			return nil, fmt.Errorf("dist: no input matrix for source %q", v.Name)
		}
		if int64(m.Rows) != v.Shape.Rows || int64(m.Cols) != v.Shape.Cols {
			return nil, fmt.Errorf("dist: input %q is %dx%d, graph declares %v",
				v.Name, m.Rows, m.Cols, v.Shape)
		}
		var rel *relation
		err := r.on(r.ownerShard(v.ID), func() error {
			tuples, s, density, err := engine.Chunk(m, v.SrcFormat, r.rt.cluster.MaxTupleBytes)
			if err != nil {
				return fmt.Errorf("dist: loading %q: %w", v.Name, err)
			}
			rel = r.place(v, v.SrcFormat, s, density, tuples)
			return nil
		})
		return rel, err
	}
	im := r.ann.VertexImpl[v.ID]
	if im == nil {
		return nil, fmt.Errorf("dist: vertex %d has no implementation", v.ID)
	}
	exec, ok := distExecutors[im.Name]
	if !ok {
		return nil, fmt.Errorf("dist: no executor for implementation %q", im.Name)
	}
	for j := range ins {
		tr := r.ann.EdgeTrans[core.EdgeKey{To: v.ID, Arg: j}]
		if tr == nil {
			return nil, fmt.Errorf("dist: edge into vertex %d arg %d has no transformation", v.ID, j)
		}
		if ins[j] == nil {
			return nil, fmt.Errorf("dist: vertex %d input %d was freed early", v.ID, j)
		}
		if !tr.Identity() {
			var err error
			ins[j], err = r.transform(v, j, ins[j], tr.Target())
			if err != nil {
				return nil, fmt.Errorf("dist: transforming input %d of vertex %d: %w", j, v.ID, err)
			}
		}
	}
	out, err := exec(r, v, ins)
	if err != nil {
		return nil, fmt.Errorf("dist: executing vertex %d (%s): %w", v.ID, im.Name, err)
	}
	if out.format != r.ann.VertexFormat[v.ID] {
		return nil, fmt.Errorf("dist: vertex %d produced %v, annotation says %v",
			v.ID, out.format, r.ann.VertexFormat[v.ID])
	}
	return out, nil
}

// report finalizes the run's registry (peak/wall/fault gauges), builds
// the Report as a view over it, and merges the per-run readings into
// the process-wide obs.Default registry. Called exactly once per Run,
// on both the success and the error path, so even a run that is about
// to degrade reports everything it metered.
func (r *run) report(peak int64, wall time.Duration) *Report {
	r.reg.Gauge("dist.shards").Set(int64(r.shards()))
	r.reg.Gauge("dist.peak_bytes").SetMax(peak)
	r.reg.Gauge("dist.wall_ns").SetMax(int64(wall))
	r.reg.Gauge("dist.faults_injected").Set(r.rt.faults.Injected())
	rep := reportFromRegistry(r.reg.Snapshot())
	obs.Default().Merge(r.reg)
	return rep
}
