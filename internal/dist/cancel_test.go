package dist_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/testutil"
)

// TestCancelMidRun cancels a run in flight and checks that it unwinds
// cleanly: the error reports the cancellation and every worker,
// collector, and vertex goroutine exits.
func TestCancelMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := core.NewGraph()
	const n = 400
	a := g.Input("A", shape.New(n, n), 1, format.NewSingle())
	cur := a
	for i := 0; i < 5; i++ {
		cur = g.MustApply(op.Op{Kind: op.MatMul}, cur, a)
	}
	env := core.NewEnv(costmodel.LocalTest(4), format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inputs := map[string]*tensor.Dense{"A": tensor.RandNormal(rng, n, n)}

	rt, err := dist.New(env.Cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := rt.Run(ctx, ann, inputs)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()

	select {
	case err = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("cancelled run did not return")
	}
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}

	// Every goroutine the run started must be gone; allow the runtime a
	// moment to reap them.
	testutil.WaitForGoroutines(t, baseline, 5*time.Second)
}
