package dist

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"matopt/internal/engine"
	"matopt/internal/netfabric"
	"matopt/internal/obs"
	"matopt/internal/tensor"
)

// message is one tuple in flight plus its deterministic reduce
// position: Seq is the contraction index of a partial result, so the
// receiving shard can sort contributions into the exact order the
// sequential engine folds them in. The type lives in netfabric so
// transports can frame it; the fabric's movement semantics are
// unchanged.
type message = netfabric.Message

// routed is a message with an explicit destination shard.
type routed struct {
	dst int
	msg message
}

// meter counts the traffic of one exchange; only payloads that cross a
// shard boundary are counted (local delivery is free, as on a cluster).
// Counts land in the run's metrics registry under
// dist.exchange.bytes/dist.exchange.messages, labelled by (vertex,
// kind, label) — the identity the Report's exchange rows are built
// from. A retried vertex asks for the same identity again and gets the
// same counters, so recovery traffic merges into the exchange it
// belongs to rather than appearing as a duplicate row.
type meter struct {
	vertex int
	kind   string
	label  string
	bytes  *obs.Counter
	msgs   *obs.Counter
}

func (m *meter) count(t engine.Tuple) {
	m.bytes.Add(t.Bytes())
	m.msgs.Inc()
}

// fabric hands out exchange meters backed by the run's registry.
type fabric struct {
	shards int
	reg    *obs.Registry
}

// meterFor returns the meter for one exchange identity at one vertex.
func (f *fabric) meterFor(vertex int, kind, label string) *meter {
	ls := []obs.Label{
		obs.L("vertex", strconv.Itoa(vertex)),
		obs.L("kind", kind),
		obs.L("label", label),
	}
	return &meter{
		vertex: vertex, kind: kind, label: label,
		bytes: f.reg.Counter("dist.exchange.bytes", ls...),
		msgs:  f.reg.Counter("dist.exchange.messages", ls...),
	}
}

// exchange is the fabric's one movement primitive: produce runs on every
// shard as a pool task (so its compute is attributed to the shard) and
// emits messages with explicit destinations; deliveries go through the
// run's Transport session — buffered channels in process by default, a
// framed TCP stream to worker peers under WithTransport — and land in
// per-shard inboxes. Returns the per-shard received messages sorted by
// (key, seq) — the deterministic order every reduce replays, which is
// what makes the output independent of the transport's arrival order.
//
// Failure semantics: a drop fault discards a producing shard's
// messages in flight; since receivers cannot distinguish lost data from
// slow data, the loss surfaces — like a genuine stall past the
// runtime's exchange timeout — as ErrExchangeTimeout on the consuming
// vertex, which the scheduler retries. Wire failures (a refused dial, a
// connection severed mid-exchange, an I/O deadline) are likewise
// transient network weather, so they map onto the same
// ErrExchangeTimeout and ride the retry → cascade → fallback ladder.
// On the timer-driven timeout path the producers may still be running,
// so session teardown is handed to a background drainer; the shard
// workers themselves stay healthy for the retry.
func (r *exec) exchange(m *meter, produce func(shard int) ([]routed, error)) ([][]message, error) {
	tp := r.rt.transport
	xspan := r.tr.Start(r.span, "exchange").
		SetStr("kind", m.kind).SetStr("label", m.label).SetInt("vertex", int64(m.vertex)).
		SetStr("transport", tp.Name())
	if pl, ok := tp.(interface{ PeerList() string }); ok {
		xspan.SetStr("peers", pl.PeerList())
	}
	defer xspan.End()
	n := r.shards()
	id := netfabric.ExchangeID{Vertex: m.vertex, Kind: m.kind, Label: m.label, Attempt: r.attempt}
	sess, err := tp.Open(r.ctx, r.reg, id, n)
	if err != nil {
		return nil, r.wireErr(m, "open", err)
	}
	drop, delay := r.rt.faults.exchangeFaults(m.vertex, m.label, r.attempt)
	var lost atomic.Bool
	work := func(s int) error {
		out, err := produce(s)
		if err != nil {
			return err
		}
		if drop != nil && (drop.Shard == -1 || drop.Shard == s) {
			lost.Store(true)
			return nil // the messages vanish in flight
		}
		for i, rm := range out {
			if i%256 == 0 {
				if err := r.ctx.Err(); err != nil {
					return err
				}
			}
			if rm.dst < 0 || rm.dst >= n {
				return fmt.Errorf("dist: message routed to shard %d of %d", rm.dst, n)
			}
			if rm.dst != s {
				m.count(rm.msg.Tuple)
			}
			if err := sess.Send(rm.dst, rm.msg); err != nil {
				return err
			}
		}
		return nil
	}
	delayed := func(s int) bool {
		return delay != nil && (delay.Shard == -1 || delay.Shard == s)
	}
	prodDone := make(chan error, 1)
	go func() {
		// A delayed exchange models a slow link, not a busy node: the
		// stall must hold up this transfer without occupying the shard's
		// worker, which stays free for other attempts' tasks — in
		// particular a speculative duplicate of this very vertex, whose
		// whole point is to dodge the stall. Delayed shards therefore
		// wait out the injected delay (and then produce) on their own
		// goroutine; healthy shards go through the worker as usual.
		var dwg sync.WaitGroup
		derrs := make([]error, n)
		for s := 0; s < n; s++ {
			if !delayed(s) {
				continue
			}
			dwg.Add(1)
			go func(s int) {
				defer dwg.Done()
				if err := r.sleepCtx(delay.Delay); err != nil {
					derrs[s] = err
					return
				}
				derrs[s] = work(s)
			}(s)
		}
		perr := r.parallel(func(s int) error {
			if delayed(s) {
				return nil
			}
			return work(s)
		})
		dwg.Wait()
		if perr == nil {
			for _, err := range derrs {
				if err != nil {
					perr = err
					break
				}
			}
		}
		prodDone <- perr
	}()

	var perr error
	var timeoutCh <-chan time.Time
	if d := r.rt.exchangeTimeout; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case perr = <-prodDone:
	case <-timeoutCh:
		// Producers are still running (a stalled link, a straggler
		// mid-delay). Hand teardown to a drainer that abandons the
		// session once every producer has returned; the recv buffers
		// are dropped.
		go func() {
			<-prodDone
			sess.Abandon()
		}()
		return nil, fmt.Errorf("dist: exchange %q at vertex %d exceeded its %v timeout: %w",
			m.label, m.vertex, r.rt.exchangeTimeout, ErrExchangeTimeout)
	}
	if perr != nil {
		// Abandon only after every producer has returned (they just
		// did); the session's buffers and connections are released even
		// on error or cancel.
		sess.Abandon()
		if errors.Is(perr, netfabric.ErrWire) {
			return nil, r.wireErr(m, "send", perr)
		}
		return nil, perr
	}
	recv, err := sess.Collect()
	if err != nil {
		return nil, r.wireErr(m, "collect", err)
	}
	if lost.Load() {
		return nil, fmt.Errorf("dist: exchange %q at vertex %d lost messages (injected %v): %w",
			m.label, m.vertex, *drop, ErrExchangeTimeout)
	}
	for s := range recv {
		sortMessages(recv[s])
	}
	return recv, nil
}

// wireErr maps a transport failure onto ErrExchangeTimeout: from the
// scheduler's point of view a dead wire and a silent one are the same
// transient event, so the existing retry/cascade/fallback ladder
// handles both without knowing transports exist.
func (r *exec) wireErr(m *meter, stage string, err error) error {
	return fmt.Errorf("dist: exchange %q at vertex %d %s failed on transport %q: %v: %w",
		m.label, m.vertex, stage, r.rt.transport.Name(), err, ErrExchangeTimeout)
}

// sleepCtx waits d, returning early with the context's error when the
// attempt is cancelled — injected delays must never outlive a cancel.
func (r *exec) sleepCtx(d time.Duration) error {
	if d <= 0 {
		return r.ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-r.ctx.Done():
		return r.ctx.Err()
	}
}

// sortMessages orders a shard's received messages by (key, seq): the
// reduce-replay order.
func sortMessages(ms []message) { netfabric.SortMessages(ms) }

// broadcastTuples ships every tuple of rel to every shard and returns
// each shard's copy in key order — the broadcast-join primitive.
func (r *exec) broadcastTuples(m *meter, rel *relation) ([][]engine.Tuple, error) {
	recv, err := r.exchange(m, func(s int) ([]routed, error) {
		var out []routed
		for _, t := range rel.parts[s] {
			for d := 0; d < r.shards(); d++ {
				out = append(out, routed{dst: d, msg: message{Key: t.Key, Tuple: t}})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return messageTuples(recv), nil
}

// gatherAt ships every tuple of rel to one shard and returns them in
// key order; used for single-tuple moves and the transform stitch.
func (r *exec) gatherAt(m *meter, rel *relation, dst int) ([]engine.Tuple, error) {
	recv, err := r.exchange(m, func(s int) ([]routed, error) {
		var out []routed
		for _, t := range rel.parts[s] {
			out = append(out, routed{dst: dst, msg: message{Key: t.Key, Tuple: t}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return messageTuples(recv)[dst], nil
}

// routeByKey re-homes every tuple of rel onto shardOf(key) — the
// co-partitioning primitive (a no-op, and free, for relations already
// hash partitioned).
func (r *exec) routeByKey(m *meter, rel *relation) ([][]engine.Tuple, error) {
	recv, err := r.exchange(m, func(s int) ([]routed, error) {
		var out []routed
		for _, t := range rel.parts[s] {
			out = append(out, routed{dst: r.shardOf(t.Key), msg: message{Key: t.Key, Tuple: t}})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return messageTuples(recv), nil
}

// messageTuples strips the routing envelope, preserving order.
func messageTuples(recv [][]message) [][]engine.Tuple {
	out := make([][]engine.Tuple, len(recv))
	for s, ms := range recv {
		if len(ms) == 0 {
			continue
		}
		ts := make([]engine.Tuple, len(ms))
		for i, g := range ms {
			ts[i] = g.Tuple
		}
		out[s] = ts
	}
	return out
}

// foldMessages is the group-by-SUM reduce: contributions arrive sorted
// by (key, seq); the first contribution of each key becomes the
// accumulator and later ones are folded with tensor.AddInPlace — the
// exact operation sequence of the sequential executors' accumulator
// maps, so sums are bit-identical.
func foldMessages(msgs []message) []engine.Tuple {
	var out []engine.Tuple
	for _, g := range msgs {
		if n := len(out); n > 0 && out[n-1].Key == g.Key {
			tensor.AddInPlace(out[n-1].Dense, g.Tuple.Dense)
		} else {
			out = append(out, engine.Tuple{Key: g.Key, Dense: g.Tuple.Dense})
		}
	}
	return out
}

// foldInto sums sorted contributions into a zeroed accumulator,
// mirroring the sequential executors that start from tensor.NewDense.
func foldInto(acc *tensor.Dense, msgs []message) {
	for _, g := range msgs {
		tensor.AddInPlace(acc, g.Tuple.Dense)
	}
}
