package plan_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/format"
	"matopt/internal/plan"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// planBenchResult is the record `make bench` writes to BENCH_plan.json:
// what the plan layer itself costs. lower_ns and explain_ns are the
// front-of-engine overhead every -explain run pays; dist_plan_ns is one
// dist execution of the pre-lowered plan, directly comparable with
// dist_ns in BENCH_dist.json (same workload, same shard count) — the
// lowering pass must stay within noise of the annotation-interpreting
// runtime it replaced.
type planBenchResult struct {
	Workload   string `json:"workload"`
	Shards     int    `json:"shards"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Nodes      int    `json:"nodes"`
	LowerNs    int64  `json:"lower_ns"`
	ExplainNs  int64  `json:"explain_ns"`
	EncodeNs   int64  `json:"encode_ns"`
	DecodeNs   int64  `json:"decode_ns"`
	DistPlanNs int64  `json:"dist_plan_ns"` // comparable with dist_ns in BENCH_dist.json
}

// BenchmarkPlanLowering times the plan layer on the same chain workload
// BenchmarkDistVsSequential executes: the Lower pass (paid once per
// optimized plan, then cached), the -explain rendering, the Encode /
// Decode serialization cycle, and one dist run of the pre-lowered plan.
// When BENCH_PLAN_JSON names a file, the measurements are written there
// as JSON.
func BenchmarkPlanLowering(b *testing.B) {
	const shards = 8
	sz := workload.ChainSizes{
		Name: "bench",
		A:    shape.New(200, 600), B: shape.New(600, 1000),
		C: shape.New(1000, 1), D: shape.New(1, 1000),
		E: shape.New(1000, 200), F: shape.New(1000, 200),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		b.Fatal(err)
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		b.Fatal(err)
	}

	var lowerTotal, explainTotal, encodeTotal, decodeTotal time.Duration
	var p *plan.Plan
	var data []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if p, err = plan.Lower(g, env, ann); err != nil {
			b.Fatal(err)
		}
		lowerTotal += time.Since(t0)

		t1 := time.Now()
		if s := p.Explain(); len(s) == 0 {
			b.Fatal("empty explain")
		}
		explainTotal += time.Since(t1)

		t2 := time.Now()
		if data, err = plan.Encode(p, env); err != nil {
			b.Fatal(err)
		}
		encodeTotal += time.Since(t2)

		t3 := time.Now()
		if _, err = plan.Decode(g, env, data); err != nil {
			b.Fatal(err)
		}
		decodeTotal += time.Since(t3)
	}
	b.StopTimer()

	lowerNs := lowerTotal.Nanoseconds() / int64(b.N)
	explainNs := explainTotal.Nanoseconds() / int64(b.N)
	encodeNs := encodeTotal.Nanoseconds() / int64(b.N)
	decodeNs := decodeTotal.Nanoseconds() / int64(b.N)
	b.ReportMetric(float64(lowerNs), "lower-ns/op")
	b.ReportMetric(float64(explainNs), "explain-ns/op")
	b.ReportMetric(float64(len(p.Nodes)), "nodes")

	if path := os.Getenv("BENCH_PLAN_JSON"); path != "" {
		// One dist execution of the pre-lowered plan, outside the timed
		// loop: the BENCH_dist.json-comparable number.
		rng := rand.New(rand.NewSource(1))
		mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
		inputs := map[string]*tensor.Dense{
			"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
			"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
		}
		rt, err := dist.New(cl, shards)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		if _, _, err := rt.RunPlan(context.Background(), p, inputs); err != nil {
			b.Fatal(err)
		}
		distPlanNs := time.Since(t0).Nanoseconds()

		out, err := json.MarshalIndent(planBenchResult{
			Workload:   "matmul-chain (scaled)",
			Shards:     shards,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Nodes:      len(p.Nodes),
			LowerNs:    lowerNs,
			ExplainNs:  explainNs,
			EncodeNs:   encodeNs,
			DecodeNs:   decodeNs,
			DistPlanNs: distPlanNs,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
