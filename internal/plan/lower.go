package plan

import (
	"fmt"
	"sort"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/impl"
)

// Lower turns an optimizer annotation into a physical plan: one scan
// node per source, one re-layout node per non-identity edge
// transformation (emitted in argument order, so predicted costs fold in
// the same order Simulate always summed them), one compute node per
// non-source vertex, and free nodes releasing values after their last
// consumer. Every cost and feature set is re-derived fresh from the
// environment's model — the annotation's cost maps are not consulted, so
// hand-built annotations with empty maps lower correctly.
//
// Lowering fails with the paper's ⊥ ("Fail") when a chosen
// transformation or implementation rejects its inputs on this cluster —
// the same feasibility checks core.Annotation.Verify applies.
func Lower(g *core.Graph, env *core.Env, ann *core.Annotation) (*Plan, error) {
	return LowerKeep(g, env, ann, nil)
}

// LowerKeep is Lower with additional vertex IDs to retain: their values
// are never freed, so callers can collect chosen intermediates after
// executing the plan.
func LowerKeep(g *core.Graph, env *core.Env, ann *core.Annotation, keep []int) (*Plan, error) {
	if g == nil || ann == nil {
		return nil, fmt.Errorf("plan: nil graph or annotation")
	}
	if ann.Graph != g {
		return nil, fmt.Errorf("plan: annotation was produced for a different graph")
	}
	p := &Plan{
		Graph:        g,
		Ann:          ann,
		NodeOfVertex: make([]int, len(g.Vertices)),
		OptSeconds:   ann.OptSeconds,
	}
	refs := make([]int, len(g.Vertices))
	retain := make([]bool, len(g.Vertices))
	for _, v := range g.Vertices {
		for _, in := range v.Ins {
			refs[in.ID]++
		}
	}
	for _, v := range g.Sinks() {
		retain[v.ID] = true
	}
	for _, id := range keep {
		if id < 0 || id >= len(retain) {
			return nil, fmt.Errorf("plan: keep vertex %d out of range", id)
		}
		retain[id] = true
	}

	push := func(n *Node) *Node {
		n.ID = len(p.Nodes)
		p.Nodes = append(p.Nodes, n)
		return n
	}
	for _, v := range g.Vertices {
		if v.IsSource {
			if f, ok := ann.VertexFormat[v.ID]; ok && f != v.SrcFormat {
				return nil, fmt.Errorf("plan: source %d annotated %v, graph declares %v",
					v.ID, f, v.SrcFormat)
			}
			n := push(&Node{
				Kind: KindScan, Vertex: v.ID, Name: "load", Source: v.Name,
				OutFormat: v.SrcFormat, OutShape: v.Shape, OutDensity: v.Density,
				Strategy: "scan",
			})
			p.NodeOfVertex[v.ID] = n.ID
			continue
		}
		im := ann.VertexImpl[v.ID]
		if im == nil {
			return nil, fmt.Errorf("plan: vertex %d has no implementation", v.ID)
		}
		ins := make([]impl.Input, len(v.Ins))
		inputNodes := make([]int, len(v.Ins))
		inFormats := make([]format.Format, len(v.Ins))
		for j, in := range v.Ins {
			tr := ann.EdgeTrans[core.EdgeKey{To: v.ID, Arg: j}]
			if tr == nil {
				return nil, fmt.Errorf("plan: edge into vertex %d arg %d has no transformation", v.ID, j)
			}
			src := p.Nodes[p.NodeOfVertex[in.ID]]
			tout, ok := tr.Apply(in.Shape, in.Density, src.OutFormat, env.Cluster)
			if !ok {
				return nil, fmt.Errorf("plan: transformation %s fails on vertex %d arg %d (Fail)",
					tr.Name, v.ID, j)
			}
			inputNodes[j] = src.ID
			if !tr.Identity() {
				rn := push(&Node{
					Kind: KindRelayout, Vertex: v.ID, Arg: j, Name: tr.Name,
					Inputs: []int{src.ID}, InFormats: []format.Format{src.OutFormat},
					OutFormat: tout.Format, OutShape: in.Shape, OutDensity: in.Density,
					Cost: tr.Cost(env.Model, tout), Features: tout.Features,
					PeakWorkerBytes: tout.PeakWorkerBytes, Strategy: "re-layout",
				})
				inputNodes[j] = rn.ID
			}
			inFormats[j] = tout.Format
			ins[j] = impl.Input{Shape: in.Shape, Density: in.Density, Format: tout.Format}
		}
		iout, ok := im.Apply(v.Op, ins, v.Shape, v.Density, env.Cluster)
		if !ok {
			return nil, fmt.Errorf("plan: implementation %s fails on vertex %d (Fail)", im.Name, v.ID)
		}
		if want, ok := ann.VertexFormat[v.ID]; ok && iout.Format != want {
			return nil, fmt.Errorf("plan: vertex %d derives %v, annotation says %v",
				v.ID, iout.Format, want)
		}
		cn := push(&Node{
			Kind: KindCompute, Vertex: v.ID, Name: im.Name, Op: v.Op,
			Inputs: inputNodes, InFormats: inFormats,
			OutFormat: iout.Format, OutShape: v.Shape, OutDensity: v.Density,
			Cost: im.Cost(env.Model, iout), Features: iout.Features,
			PeakWorkerBytes: iout.PeakWorkerBytes, Strategy: StrategyOf(im.Name),
		})
		p.NodeOfVertex[v.ID] = cn.ID
		// Re-layout temporaries have exactly one consumer — this vertex —
		// so they are released immediately after it runs.
		for _, id := range inputNodes {
			if t := p.Nodes[id]; t.Kind == KindRelayout {
				push(&Node{
					Kind: KindFree, Vertex: t.Vertex, Arg: t.Arg, Name: "free",
					Inputs: []int{t.ID}, Strategy: "free",
				})
			}
		}
		// Release producers whose last consumer just ran.
		for _, in := range v.Ins {
			refs[in.ID]--
			if refs[in.ID] == 0 && !retain[in.ID] {
				push(&Node{
					Kind: KindFree, Vertex: in.ID, Name: "free",
					Inputs: []int{p.NodeOfVertex[in.ID]}, Strategy: "free",
				})
			}
		}
	}
	for id, keep := range retain {
		if keep {
			p.Retained = append(p.Retained, id)
		}
	}
	sort.Ints(p.Retained)
	annotateRecovery(p, env, retain)
	return p, nil
}

// annotateRecovery computes each vertex-producing node's recovery costs
// and applies the default checkpoint placement: RecomputeSeconds is the
// regenerate-from-sources cost — the node's own predicted cost, its
// input re-layouts, and every ancestor cone member's, with shared
// ancestors counted once (diamond-shaped lineage must not double-bill
// the shared producer) — MaterializeSeconds is the cost-model price of
// persisting the output instead, and Depth is the longest producer
// chain. A non-retained compute node whose recompute cost exceeds
// DefaultCheckpointMultiple × its materialization cost gets the
// Checkpoint mark; vertices so marked are listed in Plan.Checkpoints.
func annotateRecovery(p *Plan, env *core.Env, retain []bool) {
	nv := len(p.Graph.Vertices)
	// ownCost[v]: the producing node's cost plus its feeding re-layouts.
	ownCost := make([]float64, nv)
	for _, n := range p.Nodes {
		switch n.Kind {
		case KindScan, KindCompute, KindRelayout:
			ownCost[n.Vertex] += n.Cost
		}
	}
	// cone[v]: ancestor vertex set including v, in graph (topological)
	// vertex order, so every dependency's cone is ready when needed.
	cone := make([]map[int]bool, nv)
	for _, v := range p.Graph.Vertices {
		c := map[int]bool{v.ID: true}
		depth := 0
		for _, in := range v.Ins {
			for u := range cone[in.ID] {
				c[u] = true
			}
			d := p.Nodes[p.NodeOfVertex[in.ID]].Depth + 1
			if d > depth {
				depth = d
			}
		}
		cone[v.ID] = c
		n := p.Nodes[p.NodeOfVertex[v.ID]]
		n.Depth = depth
		for u := range c {
			n.RecomputeSeconds += ownCost[u]
		}
		n.MaterializeSeconds = costmodel.MaterializeSeconds(env.Cluster, float64(n.OutBytes()))
		if n.Kind == KindCompute && !retain[v.ID] &&
			costmodel.ShouldCheckpoint(n.RecomputeSeconds, n.MaterializeSeconds, costmodel.DefaultCheckpointMultiple) {
			n.Checkpoint = true
			p.Checkpoints = append(p.Checkpoints, v.ID)
		}
	}
	sort.Ints(p.Checkpoints)
}
