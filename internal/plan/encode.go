package plan

import (
	"encoding/json"
	"fmt"

	"matopt/internal/core"
)

// encodeVersion is the physical-plan wire format version. Version 2
// added the per-node checkpoint mark; version-1 payloads (no checkpoint
// fields) are still accepted, with the marks re-derived by re-lowering.
const (
	encodeVersion    = 2
	minEncodeVersion = 1
)

// planDTO is the serialized physical plan: the annotation in
// core.EncodePlan's format (the authoritative decisions, from which the
// plan is re-lowered on load), a fingerprint binding it to one
// (graph, environment) pair, and the node listing for cross-checking
// and for human inspection of the dump.
type planDTO struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Annotation  json.RawMessage `json:"annotation"`
	Nodes       []nodeDTO       `json:"nodes"`
}

// nodeDTO is one serialized physical operator.
type nodeDTO struct {
	ID       int     `json:"id"`
	Kind     string  `json:"kind"`
	Vertex   int     `json:"vertex"`
	Arg      int     `json:"arg,omitempty"`
	Name     string  `json:"name"`
	Source   string  `json:"source,omitempty"`
	Inputs   []int   `json:"inputs,omitempty"`
	Format   string  `json:"format,omitempty"`
	Strategy string  `json:"strategy"`
	Cost     float64 `json:"cost"`
	// Checkpoint is the lowering-time default checkpoint mark (v2+).
	Checkpoint bool `json:"checkpoint,omitempty"`
}

// Encode serializes a lowered plan. The payload embeds core.EncodePlan's
// annotation encoding plus the fingerprint of (graph, env), so Decode
// can refuse to replay the plan against a different computation or
// cluster. The node listing is included for inspection and integrity
// checking; Decode re-lowers from the annotation and cross-checks it.
func Encode(p *Plan, env *core.Env) ([]byte, error) {
	if p == nil || p.Ann == nil {
		return nil, fmt.Errorf("plan: cannot encode a plan without its annotation")
	}
	ann, err := core.EncodePlan(p.Ann)
	if err != nil {
		return nil, err
	}
	dto := planDTO{
		Version:     encodeVersion,
		Fingerprint: core.Fingerprint(p.Graph, env),
		Annotation:  ann,
		Nodes:       make([]nodeDTO, len(p.Nodes)),
	}
	for i, n := range p.Nodes {
		d := nodeDTO{
			ID: n.ID, Kind: n.Kind.String(), Vertex: n.Vertex, Arg: n.Arg,
			Name: n.Name, Source: n.Source, Inputs: n.Inputs,
			Strategy: n.Strategy, Cost: n.Cost, Checkpoint: n.Checkpoint,
		}
		if n.Kind != KindFree {
			d.Format = n.OutFormat.String()
		}
		dto.Nodes[i] = d
	}
	return json.MarshalIndent(dto, "", "  ")
}

// Decode reconstructs a physical plan for graph g under env from Encode
// output: it verifies the fingerprint, decodes the embedded annotation
// via core.DecodePlan (which re-derives and re-verifies every format
// decision), re-lowers it, and cross-checks the result against the
// serialized node listing. A payload lowered for a different graph or
// environment, or with a tampered node listing, is rejected with
// ErrInvalidPlan.
func Decode(g *core.Graph, env *core.Env, data []byte) (*Plan, error) {
	var dto planDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("plan: decoding: %w", err)
	}
	if dto.Version < minEncodeVersion || dto.Version > encodeVersion {
		return nil, fmt.Errorf("%w: unsupported plan version %d", ErrInvalidPlan, dto.Version)
	}
	if fp := core.Fingerprint(g, env); dto.Fingerprint != fp {
		return nil, fmt.Errorf("%w: plan was lowered for a different computation or environment", ErrInvalidPlan)
	}
	ann, err := core.DecodePlan(g, env, dto.Annotation)
	if err != nil {
		return nil, err
	}
	p, err := Lower(g, env, ann)
	if err != nil {
		return nil, err
	}
	if len(p.Nodes) != len(dto.Nodes) {
		return nil, fmt.Errorf("%w: payload lists %d nodes, lowering produced %d",
			ErrInvalidPlan, len(dto.Nodes), len(p.Nodes))
	}
	for i, n := range p.Nodes {
		d := dto.Nodes[i]
		if d.ID != n.ID || d.Kind != n.Kind.String() || d.Vertex != n.Vertex ||
			d.Arg != n.Arg || d.Name != n.Name {
			return nil, fmt.Errorf("%w: node %d in the payload (%s %q on vertex %d) does not match the lowered plan",
				ErrInvalidPlan, i, d.Kind, d.Name, d.Vertex)
		}
		if n.Kind != KindFree && d.Format != n.OutFormat.String() {
			return nil, fmt.Errorf("%w: node %d format %q does not match lowered %v",
				ErrInvalidPlan, i, d.Format, n.OutFormat)
		}
		// v1 payloads predate the checkpoint mark; cross-check it only
		// when the payload's version carries one.
		if dto.Version >= 2 && d.Checkpoint != n.Checkpoint {
			return nil, fmt.Errorf("%w: node %d checkpoint mark %v does not match lowered %v",
				ErrInvalidPlan, i, d.Checkpoint, n.Checkpoint)
		}
	}
	return p, nil
}
