package plan

import (
	"errors"
	"fmt"

	"matopt/internal/impl"
	"matopt/internal/trans"
)

// ErrInvalidPlan reports a physical plan that fails pre-execution
// validation: a dangling node reference, a producer/consumer format
// mismatch, a use after free, or an unknown physical operator. Every
// engine runs Validate before executing a plan, so a corrupted or
// hand-edited serialized plan is rejected before any data moves.
var ErrInvalidPlan = errors.New("plan: invalid physical plan")

// Validate checks the structural and format soundness of the plan
// without touching data or the cost model: nodes are topologically
// ordered, every input reference points at an earlier live value, every
// producer's output format matches the consumer's required input format,
// frees target live values, retained vertices are never freed, and every
// compute and re-layout names a known physical operator. It returns nil
// or an error wrapping ErrInvalidPlan.
func (p *Plan) Validate() error {
	if p == nil || p.Graph == nil {
		return fmt.Errorf("%w: nil plan or graph", ErrInvalidPlan)
	}
	bad := func(f string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidPlan, fmt.Sprintf(f, args...))
	}
	transByName := make(map[string]bool)
	for _, t := range trans.All() {
		transByName[t.Name] = true
	}
	retained := make(map[int]bool, len(p.Retained))
	for _, id := range p.Retained {
		retained[id] = true
	}
	live := make([]bool, len(p.Nodes))
	produced := make(map[int]int, len(p.Graph.Vertices)) // vertex → producing node
	for i, n := range p.Nodes {
		if n == nil {
			return bad("node %d is nil", i)
		}
		if n.ID != i {
			return bad("node %d carries ID %d", i, n.ID)
		}
		if n.Vertex < 0 || n.Vertex >= len(p.Graph.Vertices) {
			return bad("node %d references vertex %d outside the graph", i, n.Vertex)
		}
		for _, in := range n.Inputs {
			if in < 0 || in >= i {
				return bad("node %d references node %d out of topological order", i, in)
			}
			if !live[in] {
				return bad("node %d uses node %d after it was freed", i, in)
			}
		}
		if n.Kind != KindFree && len(n.InFormats) != len(n.Inputs) {
			return bad("node %d has %d input formats for %d inputs", i, len(n.InFormats), len(n.Inputs))
		}
		switch n.Kind {
		case KindScan:
			v := p.Graph.Vertices[n.Vertex]
			if !v.IsSource {
				return bad("scan node %d targets non-source vertex %d", i, n.Vertex)
			}
			if n.OutFormat != v.SrcFormat {
				return bad("scan node %d loads %v, source %d declares %v", i, n.OutFormat, v.ID, v.SrcFormat)
			}
			produced[n.Vertex] = i
			live[i] = true
		case KindRelayout:
			if len(n.Inputs) != 1 {
				return bad("re-layout node %d has %d inputs, want 1", i, len(n.Inputs))
			}
			if !transByName[n.Name] {
				return bad("re-layout node %d names unknown transformation %q", i, n.Name)
			}
			if got := p.Nodes[n.Inputs[0]].OutFormat; got != n.InFormats[0] {
				return bad("re-layout node %d expects %v, producer node %d emits %v",
					i, n.InFormats[0], n.Inputs[0], got)
			}
			live[i] = true
		case KindCompute:
			if impl.ByName(n.Name) == nil {
				return bad("compute node %d names unknown implementation %q", i, n.Name)
			}
			for j, in := range n.Inputs {
				if got := p.Nodes[in].OutFormat; got != n.InFormats[j] {
					return bad("compute node %d (vertex %d) arg %d expects %v, producer node %d emits %v",
						i, n.Vertex, j, n.InFormats[j], in, got)
				}
			}
			if prev, dup := produced[n.Vertex]; dup {
				return bad("vertex %d produced by both node %d and node %d", n.Vertex, prev, i)
			}
			produced[n.Vertex] = i
			live[i] = true
		case KindFree:
			if len(n.Inputs) != 1 {
				return bad("free node %d has %d targets, want 1", i, len(n.Inputs))
			}
			t := p.Nodes[n.Inputs[0]]
			if t.Kind == KindFree {
				return bad("free node %d targets free node %d", i, t.ID)
			}
			if (t.Kind == KindScan || t.Kind == KindCompute) && retained[t.Vertex] {
				return bad("free node %d releases retained vertex %d", i, t.Vertex)
			}
			live[n.Inputs[0]] = false
		default:
			return bad("node %d has unknown kind %d", i, uint8(n.Kind))
		}
	}
	if len(p.NodeOfVertex) != len(p.Graph.Vertices) {
		return bad("NodeOfVertex maps %d vertices, graph has %d", len(p.NodeOfVertex), len(p.Graph.Vertices))
	}
	for _, v := range p.Graph.Vertices {
		nid, ok := produced[v.ID]
		if !ok {
			return bad("vertex %d is never produced", v.ID)
		}
		if p.NodeOfVertex[v.ID] != nid {
			return bad("NodeOfVertex[%d] = %d, producing node is %d", v.ID, p.NodeOfVertex[v.ID], nid)
		}
	}
	for _, id := range p.Retained {
		if id < 0 || id >= len(p.Graph.Vertices) {
			return bad("retained vertex %d outside the graph", id)
		}
		if !live[produced[id]] {
			return bad("retained vertex %d was freed", id)
		}
	}
	return nil
}
