package plan_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/plan"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// roundTripShards is the shard count the serialized-plan replay runs at
// on the dist runtime: prime, so it misaligns with every tile grid.
const roundTripShards = 7

// assertRoundTrip optimizes g, executes it directly on the sequential
// engine as the golden reference, then pushes the plan through the full
// serialization cycle — Lower → Encode → Decode — and executes the
// decoded plan on both the sequential engine and the dist runtime,
// requiring bit-identical outputs (math.Float64bits, no tolerance).
func assertRoundTrip(t *testing.T, name string, cl costmodel.Cluster, g *core.Graph, inputs map[string]*tensor.Dense) {
	t.Helper()
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatalf("%s: optimize: %v", name, err)
	}
	eng := engine.New(cl)
	want, err := eng.RunCollect(ann, inputs)
	if err != nil {
		t.Fatalf("%s: direct sequential run: %v", name, err)
	}

	p, err := plan.Lower(g, env, ann)
	if err != nil {
		t.Fatalf("%s: lower: %v", name, err)
	}
	data, err := plan.Encode(p, env)
	if err != nil {
		t.Fatalf("%s: encode: %v", name, err)
	}
	p2, err := plan.Decode(g, env, data)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if p.Explain() != p2.Explain() {
		t.Fatalf("%s: decoded plan renders differently:\n%s\nvs\n%s", name, p.Explain(), p2.Explain())
	}

	ctx := context.Background()
	seq, err := eng.RunPlanCollectCtx(ctx, p2, inputs)
	if err != nil {
		t.Fatalf("%s: decoded plan on sequential engine: %v", name, err)
	}
	assertSame(t, name+" (seq replay)", seq, want)

	rt, err := dist.New(cl, roundTripShards)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	got, _, err := rt.RunPlan(ctx, p2, inputs)
	if err != nil {
		t.Fatalf("%s: decoded plan on dist runtime: %v", name, err)
	}
	assertSame(t, name+" (dist replay)", got, want)
}

// assertSame requires two output sets to be bit-for-bit identical.
func assertSame(t *testing.T, name string, got, want map[int]*tensor.Dense) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", name, len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok || g.Rows != w.Rows || g.Cols != w.Cols {
			t.Fatalf("%s: output %d missing or misshapen", name, id)
		}
		for i := range w.Data {
			if math.Float64bits(g.Data[i]) != math.Float64bits(w.Data[i]) {
				t.Fatalf("%s: output %d entry %d: %v (bits %x) != %v (bits %x)",
					name, id, i, g.Data[i], math.Float64bits(g.Data[i]),
					w.Data[i], math.Float64bits(w.Data[i]))
			}
		}
	}
}

// TestRoundTripMatMulChain covers the §8.2 chain generator at an
// executable scale.
func TestRoundTripMatMulChain(t *testing.T) {
	sz := workload.ChainSizes{
		Name: "scaled",
		A:    shape.New(100, 300), B: shape.New(300, 500),
		C: shape.New(500, 1), D: shape.New(1, 500),
		E: shape.New(500, 100), F: shape.New(500, 100),
	}
	g, err := workload.MatMulChain(sz)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense { return tensor.RandNormal(rng, int(s.Rows), int(s.Cols)) }
	inputs := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	assertRoundTrip(t, "matmul-chain", costmodel.LocalTest(3), g, inputs)
}

// TestRoundTripFFNN covers the three FFNN generators (W2 update, full
// backprop, three-pass) at a scaled size.
func TestRoundTripFFNN(t *testing.T) {
	cfg := workload.ScaledFFNN(workload.PaperFFNN(80000), 500)
	gens := map[string]func(workload.FFNNConfig) (*core.Graph, error){
		"w2update": workload.FFNNW2Update,
		"backprop": workload.FFNNBackprop,
		"3pass":    workload.FFNNThreePass,
	}
	for name, gen := range gens {
		g, err := gen(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rng := rand.New(rand.NewSource(3))
		assertRoundTrip(t, "ffnn-"+name, costmodel.LocalTest(3), g, workload.FFNNInputs(rng, cfg))
	}
}

// TestRoundTripBlockInverse covers the two-level block-inverse generator.
func TestRoundTripBlockInverse(t *testing.T) {
	cfg := workload.BlockInverseConfig{Outer: 40, Inner1: 16, Inner2: 24, BlockFormat: format.NewSingle()}
	g, err := workload.BlockInverse2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n, n1 := int(cfg.Outer), int(cfg.Inner1)
	full := tensor.RandNormal(rng, 2*n, 2*n)
	for i := 0; i < 2*n; i++ {
		full.Set(i, i, full.At(i, i)+float64(2*n))
	}
	inputs := map[string]*tensor.Dense{
		"A11": full.Slice(0, n1, 0, n1), "A12": full.Slice(0, n1, n1, n),
		"A21": full.Slice(n1, n, 0, n1), "A22": full.Slice(n1, n, n1, n),
		"B1": full.Slice(0, n1, n, 2*n), "B2": full.Slice(n1, n, n, 2*n),
		"C1": full.Slice(n, 2*n, 0, n1), "C2": full.Slice(n, 2*n, n1, n),
		"D": full.Slice(n, 2*n, n, 2*n),
	}
	assertRoundTrip(t, "block-inverse", costmodel.LocalTest(3), g, inputs)
}

// TestRoundTripSparse covers the sparse-input path (CSR forward layer),
// whose plans exercise the CSR-consuming implementations.
func TestRoundTripSparse(t *testing.T) {
	g := core.NewGraph()
	x := g.Input("X", shape.New(200, 3000), 0.01, format.NewCSRSingle())
	w1 := g.Input("W1", shape.New(3000, 80), 1, format.NewRowStrip(1000))
	z1 := g.MustApply(op.Op{Kind: op.MatMul}, x, w1)
	g.MustApply(op.Op{Kind: op.ReLU}, z1)
	rng := rand.New(rand.NewSource(2))
	inputs := map[string]*tensor.Dense{
		"X":  tensor.RandSparse(rng, 200, 3000, 0.01),
		"W1": tensor.RandNormal(rng, 3000, 80),
	}
	assertRoundTrip(t, "sparse-csr-forward", costmodel.LocalTest(3), g, inputs)
}

// TestRoundTripPaperScale covers the generators whose paper-scale inputs
// cannot be materialized (the §2.1 motivating chain, the Figure 4 size
// sets, the §8.4 optimizer-scaling families): the round-tripped plan
// must simulate to the exact same report and render the same physical
// plan as the original lowering.
func TestRoundTripPaperScale(t *testing.T) {
	graphs := map[string]func() (*core.Graph, error){
		"motivating": workload.MotivatingChain,
		"sizeset1":   func() (*core.Graph, error) { return workload.MatMulChain(workload.ChainSizeSets()[0]) },
		"tree":       func() (*core.Graph, error) { return workload.ScaleGraph(workload.ScaleTree, 2) },
		"dag1":       func() (*core.Graph, error) { return workload.ScaleGraph(workload.ScaleDAG1, 2) },
		"dag2":       func() (*core.Graph, error) { return workload.ScaleGraph(workload.ScaleDAG2, 2) },
	}
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	for name, gen := range graphs {
		g, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ann, err := core.Optimize(g, env)
		if err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		p, err := plan.Lower(g, env, ann)
		if err != nil {
			t.Fatalf("%s: lower: %v", name, err)
		}
		want, err := engine.SimulatePlan(p, env)
		if err != nil {
			t.Fatalf("%s: simulate: %v", name, err)
		}
		data, err := plan.Encode(p, env)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		p2, err := plan.Decode(g, env, data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if p.Explain() != p2.Explain() {
			t.Fatalf("%s: decoded plan renders differently", name)
		}
		got, err := engine.SimulatePlan(p2, env)
		if err != nil {
			t.Fatalf("%s: simulate decoded: %v", name, err)
		}
		// Optimizer wall time is a property of the search, not of the
		// serialized decisions, so a decoded plan reports zero there.
		got.OptSeconds, want.OptSeconds = 0, 0
		if got != want {
			t.Fatalf("%s: decoded plan simulates to %+v, original %+v", name, got, want)
		}
	}
}
