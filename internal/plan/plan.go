// Package plan defines the serializable physical-plan IR shared by every
// execution engine. Lowering turns an optimizer annotation
// (core.Annotation) into an explicit DAG of physical operators — scan,
// re-layout transform, compute (broadcast/shuffle/co-partition join,
// group-by-SUM aggregate, map, local), and free — with every format,
// implementation, and transformation decision resolved up front. The
// sequential engine, the simulator, the adaptive executor, and the
// sharded dist runtime all execute this one IR instead of re-interpreting
// the annotation, so cross-engine bit-identical outputs are a property of
// a single lowering pass rather than of three interpreters agreeing.
//
// The IR is deliberately engine-invariant: Lower takes no engine kind and
// no shard count, so one lowered plan (and one plan-cache entry) is valid
// under any engine. Engines differ only in scheduling policy — the
// sequential engine interprets nodes in linear order, while the dist
// runtime fuses each compute node with its feeding re-layout nodes into a
// per-vertex recovery group that it can retry as a unit.
package plan

import (
	"fmt"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// Kind classifies a physical-plan node.
type Kind uint8

const (
	// KindScan loads a source matrix in its declared format.
	KindScan Kind = iota
	// KindRelayout re-lays-out one input edge's relation into the format
	// the consuming implementation requires (a paper §3 transformation).
	KindRelayout
	// KindCompute runs one atomic computation under a chosen physical
	// implementation.
	KindCompute
	// KindFree releases a value whose last consumer has executed.
	KindFree
)

// String returns the node kind's lower-case name.
func (k Kind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindRelayout:
		return "relayout"
	case KindCompute:
		return "compute"
	case KindFree:
		return "free"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is one physical operator in a lowered plan. Nodes are stored in
// execution order (a topological order of the DAG); Inputs reference
// earlier node IDs.
type Node struct {
	// ID is the node's index in Plan.Nodes.
	ID int
	// Kind classifies the operator.
	Kind Kind
	// Vertex is the logical graph vertex this node belongs to: the
	// producing vertex for scans and computes, the consuming vertex for
	// re-layouts (they live on an input edge), and the vertex whose
	// value is released for frees.
	Vertex int
	// Arg is the consumer's input position for re-layout nodes; zero
	// otherwise.
	Arg int
	// Name is the physical operator name: the implementation name for
	// computes, the transformation name for re-layouts, "load" for
	// scans, and "free" for frees.
	Name string
	// Source is the source matrix name for scan nodes.
	Source string
	// Op is the atomic computation for compute nodes.
	Op op.Op
	// Inputs are the IDs of the nodes whose values this node consumes
	// (for frees: the single node whose value is released).
	Inputs []int
	// InFormats are the physical formats the node requires of its
	// inputs, aligned with Inputs.
	InFormats []format.Format
	// OutFormat is the physical format of the node's output.
	OutFormat format.Format
	// OutShape is the shape of the node's output.
	OutShape shape.Shape
	// OutDensity is the estimated non-zero fraction of the output.
	OutDensity float64
	// Cost is the model-predicted seconds for this operator.
	Cost float64
	// Features are the analytic cost features the prediction used.
	Features costmodel.Features
	// PeakWorkerBytes is the operator's largest per-worker working set.
	PeakWorkerBytes float64
	// Strategy is the operator's physical strategy class: "scan",
	// "re-layout", "local", "map", "broadcast-join", "shuffle-join",
	// "co-partition-join", "group-by-sum", or "free".
	Strategy string

	// Recovery costs (scan and compute nodes only; see costmodel's
	// checkpoint inequality). These are engine- and knob-invariant —
	// pure functions of the plan and cluster — so one cached plan serves
	// executors with different checkpoint settings, which re-derive
	// their pin sets from these numbers at run time.

	// RecomputeSeconds is the model-predicted cost of regenerating this
	// node's value from the sources: its own cost plus every ancestor
	// cone member's (each shared ancestor counted once) plus the
	// re-layout transforms between them.
	RecomputeSeconds float64
	// MaterializeSeconds is the model-predicted cost of persisting this
	// node's output instead (job overhead + disk write of OutBytes).
	MaterializeSeconds float64
	// Depth is the longest producer chain below this node: 0 for scans,
	// 1 + max input depth for computes.
	Depth int
	// Checkpoint marks a compute node whose recompute cost exceeds
	// costmodel.DefaultCheckpointMultiple × its materialization cost —
	// the lowering-time default placement. Runtimes with a different
	// multiple or a memory budget re-derive their own set from
	// RecomputeSeconds/MaterializeSeconds.
	Checkpoint bool
}

// OutBytes estimates the node's output size in bytes: density-scaled
// 8-byte elements of its output shape.
func (n *Node) OutBytes() int64 {
	return int64(float64(n.OutShape.Rows*n.OutShape.Cols) * 8 * n.OutDensity)
}

// Plan is a lowered physical plan: the node DAG in execution order plus
// the bookkeeping engines need to run it and report on it.
type Plan struct {
	// Graph is the logical computation the plan was lowered from.
	Graph *core.Graph
	// Ann is the optimizer annotation the plan was lowered from; kept so
	// the plan can be serialized via core.EncodePlan and re-lowered.
	Ann *core.Annotation
	// Nodes holds every physical operator in execution order.
	Nodes []*Node
	// NodeOfVertex maps a graph vertex ID to the ID of the node that
	// produces its value (a scan or compute node).
	NodeOfVertex []int
	// Retained lists the vertex IDs whose values survive the run
	// (sinks plus any explicitly kept vertices), in increasing order.
	Retained []int
	// Checkpoints lists the vertex IDs whose compute nodes carry the
	// default checkpoint mark (see Node.Checkpoint), in increasing
	// order; empty when no intermediate clears the default inequality.
	Checkpoints []int
	// OptSeconds is the optimizer time recorded on the annotation.
	OptSeconds float64
}

// PredictedSeconds sums the model-predicted cost of every node — the
// plan's virtual wall time, identical to the annotation's Total.
func (p *Plan) PredictedSeconds() float64 {
	var s float64
	for _, n := range p.Nodes {
		s += n.Cost
	}
	return s
}

// Counts returns the number of scan, re-layout, compute, and free nodes.
func (p *Plan) Counts() (scans, relayouts, computes, frees int) {
	for _, n := range p.Nodes {
		switch n.Kind {
		case KindScan:
			scans++
		case KindRelayout:
			relayouts++
		case KindCompute:
			computes++
		case KindFree:
			frees++
		}
	}
	return
}

// strategyByImpl classifies each physical implementation by its dominant
// data-movement pattern — the ISSUE/paper taxonomy rendered by Explain
// and attached to execution spans.
var strategyByImpl = map[string]string{
	"mm-single-single":             "local",
	"mm-csr-single-single":         "local",
	"add-single":                   "local",
	"sub-single":                   "local",
	"hadamard-single":              "local",
	"softmax-single":               "local",
	"transpose-single":             "local",
	"transpose-csr-single":         "local",
	"inverse-single":               "local",
	"addbias-single":               "local",
	"rowsums-single":               "local",
	"colsums-single":               "local",
	"mm-bcast-single-colstrip":     "broadcast-join",
	"mm-rowstrip-bcast-single":     "broadcast-join",
	"mm-rowstrip-colstrip":         "broadcast-join",
	"mm-tile-tile-bcast":           "broadcast-join",
	"mm-bcast-single-tile":         "broadcast-join",
	"mm-tile-bcast-single":         "broadcast-join",
	"mm-csr-rowstrip-bcast-single": "broadcast-join",
	"addbias-rowstrip-bcast":       "broadcast-join",
	"mm-tile-tile-shuffle":         "shuffle-join",
	"transpose-tile":               "shuffle-join",
	"transpose-strip":              "shuffle-join",
	"mm-colstrip-rowstrip-agg":     "group-by-sum",
	"mm-bcast-csr-rowstrip-agg":    "group-by-sum",
	"mm-bcast-coo-single":          "group-by-sum",
	"add-copart":                   "co-partition-join",
	"sub-copart":                   "co-partition-join",
	"hadamard-copart":              "co-partition-join",
}

// StrategyOf returns the strategy class of an implementation name;
// element-wise and reduction kernels default to "map".
func StrategyOf(implName string) string {
	if s, ok := strategyByImpl[implName]; ok {
		return s
	}
	return "map"
}
