package plan

import (
	"fmt"
	"strings"
)

// Explain pretty-prints the physical plan: one line per operator with
// its strategy class, formats, and model-predicted cost. This is the
// CLI's -explain output, complementing core.Annotation.Describe (the
// logical plan listing) with the fully resolved physical view.
func (p *Plan) Explain() string {
	var b strings.Builder
	scans, relayouts, computes, frees := p.Counts()
	fmt.Fprintf(&b, "physical plan: %d nodes (%d scans, %d re-layouts, %d computes, %d frees), predicted %.2fs\n",
		len(p.Nodes), scans, relayouts, computes, frees, p.PredictedSeconds())
	for _, n := range p.Nodes {
		switch n.Kind {
		case KindScan:
			fmt.Fprintf(&b, "  n%-3d scan     v%-3d %-28s → %v\n",
				n.ID, n.Vertex, n.Source, n.OutFormat)
		case KindRelayout:
			fmt.Fprintf(&b, "  n%-3d relayout v%d#%d %-27s %v → %v [%.3fs]\n",
				n.ID, n.Vertex, n.Arg, n.Name, n.InFormats[0], n.OutFormat, n.Cost)
		case KindCompute:
			fmt.Fprintf(&b, "  n%-3d compute  v%-3d %-28s (%s) %v → %v [%.3fs]\n",
				n.ID, n.Vertex, n.Name, n.Strategy, joinFormats(n.InFormats), n.OutFormat, n.Cost)
		case KindFree:
			fmt.Fprintf(&b, "  n%-3d free     v%-3d n%d\n", n.ID, n.Vertex, n.Inputs[0])
		}
	}
	return b.String()
}

// joinFormats renders a format list as "[a b ...]".
func joinFormats[F fmt.Stringer](fs []F) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
