package plan

import "fmt"

// Interpreter is the shared operator interface an engine implements to
// execute a physical plan over its own value representation R (the
// sequential engine uses *engine.Relation; the simulator uses cost
// accumulators). The linear driver Execute calls exactly one method per
// node in plan order.
type Interpreter[R any] interface {
	// Scan materializes a source matrix in the node's output format.
	Scan(n *Node) (R, error)
	// Relayout re-lays-out one value into the node's output format.
	Relayout(n *Node, in R) (R, error)
	// Compute runs one physical implementation over its inputs.
	Compute(n *Node, ins []R) (R, error)
	// Free observes the release of a value; the driver clears its slot.
	Free(n *Node, val R) error
}

// Execute interprets the plan in linear node order, tracking value
// liveness, and returns the retained vertices' values keyed by vertex
// ID. Callers should Validate the plan first; Execute still guards
// against freed or missing inputs so a corrupt plan fails loudly rather
// than executing garbage.
func Execute[R any](p *Plan, ix Interpreter[R]) (map[int]R, error) {
	vals := make([]R, len(p.Nodes))
	live := make([]bool, len(p.Nodes))
	var zero R
	for _, n := range p.Nodes {
		for _, in := range n.Inputs {
			if in < 0 || in >= n.ID || !live[in] {
				return nil, fmt.Errorf("%w: node %d input %d is not live", ErrInvalidPlan, n.ID, in)
			}
		}
		switch n.Kind {
		case KindScan:
			v, err := ix.Scan(n)
			if err != nil {
				return nil, err
			}
			vals[n.ID], live[n.ID] = v, true
		case KindRelayout:
			v, err := ix.Relayout(n, vals[n.Inputs[0]])
			if err != nil {
				return nil, err
			}
			vals[n.ID], live[n.ID] = v, true
		case KindCompute:
			ins := make([]R, len(n.Inputs))
			for j, in := range n.Inputs {
				ins[j] = vals[in]
			}
			v, err := ix.Compute(n, ins)
			if err != nil {
				return nil, err
			}
			vals[n.ID], live[n.ID] = v, true
		case KindFree:
			t := n.Inputs[0]
			if err := ix.Free(n, vals[t]); err != nil {
				return nil, err
			}
			vals[t], live[t] = zero, false
		default:
			return nil, fmt.Errorf("%w: node %d has unknown kind %d", ErrInvalidPlan, n.ID, uint8(n.Kind))
		}
	}
	out := make(map[int]R, len(p.Retained))
	for _, vid := range p.Retained {
		nid := p.NodeOfVertex[vid]
		if !live[nid] {
			return nil, fmt.Errorf("%w: retained vertex %d was freed", ErrInvalidPlan, vid)
		}
		out[vid] = vals[nid]
	}
	return out, nil
}
