package plan_test

import (
	"bytes"
	"errors"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/plan"
	"matopt/internal/shape"
)

// lowered builds a small multi-op DAG — a matmul, a ReLU, and an
// inverse whose tiled input forces a re-layout (inverse-single only
// accepts Single) — and returns its graph, env and freshly lowered
// plan. Each corruption test calls it again so mutations never leak.
func lowered(t *testing.T) (*core.Graph, *core.Env, *plan.Plan) {
	t.Helper()
	g := core.NewGraph()
	x := g.Input("X", shape.New(120, 400), 1, format.NewRowStrip(100))
	w := g.Input("W", shape.New(400, 80), 1, format.NewSingle())
	tv := g.Input("T", shape.New(100, 100), 1, format.NewTile(50))
	mm := g.MustApply(op.Op{Kind: op.MatMul}, x, w)
	g.MustApply(op.Op{Kind: op.ReLU}, mm)
	g.MustApply(op.Op{Kind: op.Inverse}, tv)
	env := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Lower(g, env, ann)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("freshly lowered plan does not validate: %v", err)
	}
	return g, env, p
}

// firstOfKind returns the index of the first node of the given kind.
func firstOfKind(t *testing.T, p *plan.Plan, k plan.Kind) int {
	t.Helper()
	for _, n := range p.Nodes {
		if n.Kind == k {
			return n.ID
		}
	}
	t.Fatalf("plan has no %v node", k)
	return -1
}

// TestValidateCatchesCorruption mutates a valid lowered plan one defect
// at a time; every mutation must be rejected with ErrInvalidPlan before
// execution.
func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, p *plan.Plan)
	}{
		{"forward input reference", func(t *testing.T, p *plan.Plan) {
			c := firstOfKind(t, p, plan.KindCompute)
			p.Nodes[c].Inputs[0] = len(p.Nodes) - 1
		}},
		{"producer/consumer format mismatch", func(t *testing.T, p *plan.Plan) {
			c := p.Nodes[firstOfKind(t, p, plan.KindCompute)]
			c.InFormats[0] = format.NewCOO()
		}},
		{"unknown implementation", func(t *testing.T, p *plan.Plan) {
			p.Nodes[firstOfKind(t, p, plan.KindCompute)].Name = "mm-made-up"
		}},
		{"unknown transformation", func(t *testing.T, p *plan.Plan) {
			p.Nodes[firstOfKind(t, p, plan.KindRelayout)].Name = "teleport"
		}},
		{"double free", func(t *testing.T, p *plan.Plan) {
			f := p.Nodes[firstOfKind(t, p, plan.KindFree)]
			p.Nodes = append(p.Nodes, &plan.Node{
				ID: len(p.Nodes), Kind: plan.KindFree, Vertex: f.Vertex,
				Name: "free", Inputs: []int{f.Inputs[0]}, Strategy: "free",
			})
		}},
		{"free of a retained sink", func(t *testing.T, p *plan.Plan) {
			sink := p.Retained[len(p.Retained)-1]
			p.Nodes = append(p.Nodes, &plan.Node{
				ID: len(p.Nodes), Kind: plan.KindFree, Vertex: sink,
				Name: "free", Inputs: []int{p.NodeOfVertex[sink]}, Strategy: "free",
			})
		}},
		{"scan of a non-source vertex", func(t *testing.T, p *plan.Plan) {
			s := p.Nodes[firstOfKind(t, p, plan.KindScan)]
			c := p.Nodes[firstOfKind(t, p, plan.KindCompute)]
			s.Vertex = c.Vertex
		}},
		{"NodeOfVertex out of sync", func(t *testing.T, p *plan.Plan) {
			p.NodeOfVertex[0], p.NodeOfVertex[1] = p.NodeOfVertex[1], p.NodeOfVertex[0]
		}},
		{"node ID out of step", func(t *testing.T, p *plan.Plan) {
			p.Nodes[2].ID = 7
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, p := lowered(t)
			tc.corrupt(t, p)
			err := p.Validate()
			if err == nil {
				t.Fatal("corrupted plan validated cleanly")
			}
			if !errors.Is(err, plan.ErrInvalidPlan) {
				t.Fatalf("error %v does not wrap ErrInvalidPlan", err)
			}
		})
	}
	if err := (&plan.Plan{}).Validate(); !errors.Is(err, plan.ErrInvalidPlan) {
		t.Fatalf("empty plan: %v does not wrap ErrInvalidPlan", err)
	}
}

// TestEncodeDecodeRejectsTampering checks the serialized plan's
// integrity story: a clean payload round-trips, while a tampered node
// listing, a foreign environment, or an unknown wire version are all
// rejected with ErrInvalidPlan.
func TestEncodeDecodeRejectsTampering(t *testing.T) {
	g, env, p := lowered(t)
	data, err := plan.Encode(p, env)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plan.Decode(g, env, data)
	if err != nil {
		t.Fatalf("clean payload rejected: %v", err)
	}
	if p.Explain() != p2.Explain() {
		t.Fatalf("decoded plan renders differently:\n%s\nvs\n%s", p.Explain(), p2.Explain())
	}

	expectInvalid := func(name string, data []byte, g *core.Graph, env *core.Env) {
		t.Helper()
		if _, err := plan.Decode(g, env, data); !errors.Is(err, plan.ErrInvalidPlan) {
			t.Fatalf("%s: %v does not wrap ErrInvalidPlan", name, err)
		}
	}
	// A payload lowered for one cluster must not replay on another: the
	// fingerprint covers the environment, not just the graph.
	other := core.NewEnv(costmodel.LocalTest(5), format.All())
	expectInvalid("foreign environment", data, g, other)
	// Tampering with the node listing after serialization.
	expectInvalid("tampered operator name", bytes.Replace(data, []byte(`"name": "load"`), []byte(`"name": "leak"`), 1), g, env)
	// An unknown wire version.
	expectInvalid("unknown version", bytes.Replace(data, []byte(`"version": 2`), []byte(`"version": 99`), 1), g, env)
}

// TestLowerMatchesAnnotationCost pins the invariant Simulate has always
// relied on: the lowered plan's summed node costs equal the annotation's
// own total, because lowering re-derives every operator cost in the same
// fold order.
func TestLowerMatchesAnnotationCost(t *testing.T) {
	g, env, p := lowered(t)
	ann, err := core.Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.PredictedSeconds(), ann.Total(); got != want {
		t.Fatalf("lowered plan predicts %v seconds, annotation totals %v", got, want)
	}
	scans, relayouts, computes, frees := p.Counts()
	if scans != 3 || computes != 3 {
		t.Fatalf("expected 3 scans and 3 computes, got %d and %d", scans, computes)
	}
	if relayouts == 0 {
		t.Fatal("the tiled inverse input must lower to a re-layout node")
	}
	if frees == 0 {
		t.Fatal("plan frees nothing; intermediate values would never be released")
	}
}
