package costmodel

import "math"

// The network-pattern helpers below convert logical data volumes into the
// "worst-case bytes through the busiest link" feature. They encode the
// communication patterns of the relational engine's physical operators.

// BroadcastBytes returns the per-link bytes to replicate a relation of
// b total bytes to every worker via a binomial broadcast tree: the root
// forwards the payload ceil(log2(w)) times.
func BroadcastBytes(b float64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	return b * math.Ceil(math.Log2(float64(workers)))
}

// ShuffleBytes returns the per-link bytes to hash-repartition a relation
// of b total bytes across w workers: each worker sends and receives about
// b/w bytes (the (w−1)/w cross-worker fraction is folded into the learned
// coefficients).
func ShuffleBytes(b float64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	return b / float64(workers)
}

// GatherBytes returns the per-link bytes to collect a relation of b total
// bytes onto one worker, whose inbound link is the bottleneck.
func GatherBytes(b float64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	return b * float64(workers-1) / float64(workers)
}

// AggregateBytes returns the per-link bytes of a tree reduction that
// combines per-worker partial results of b bytes each.
func AggregateBytes(bPerPartial float64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	return bPerPartial * math.Ceil(math.Log2(float64(workers)))
}

// The Total* helpers below convert the same logical volumes into bytes
// summed over every link — the quantity a byte-metered runtime (such as
// internal/dist) measures when it counts every cross-shard payload. They
// upper-bound their per-link counterparts times the worker count, which
// is what NetBytesCeiling exposes for predicted-vs-measured checks.

// TotalBroadcastBytes returns the bytes crossing all links when a
// relation of b total bytes is replicated to every one of w workers:
// each of the other w-1 workers receives a full copy.
func TotalBroadcastBytes(b float64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	return b * float64(workers-1)
}

// TotalShuffleBytes returns the bytes crossing all links when a
// relation of b total bytes is hash-repartitioned across w workers: in
// expectation a (w−1)/w fraction of every byte changes worker.
func TotalShuffleBytes(b float64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	return b * float64(workers-1) / float64(workers)
}

// TotalGatherBytes returns the bytes crossing all links when a relation
// of b total bytes is collected onto one worker; identical to the
// per-link figure because the collector's inbound link carries it all.
func TotalGatherBytes(b float64, workers int) float64 {
	return GatherBytes(b, workers)
}

// TotalAggregateBytes returns the bytes crossing all links when w
// per-worker partials of bPerPartial bytes are combined at one site:
// w-1 partials move.
func TotalAggregateBytes(bPerPartial float64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	return bPerPartial * float64(workers-1)
}

// NetBytesCeiling converts a per-link NetBytes feature into an upper
// bound on total cross-link traffic: no pattern can push more than the
// busiest link's volume over every one of the w links at once.
func NetBytesCeiling(perLink float64, workers int) float64 {
	return perLink * float64(workers)
}

// ParallelFLOPs divides total floating-point work over the effective
// parallelism: the smaller of the worker count and the number of
// independent tasks.
func ParallelFLOPs(total float64, workers int, tasks int64) float64 {
	p := int64(workers)
	if tasks < p {
		p = tasks
	}
	if p < 1 {
		p = 1
	}
	return total / float64(p)
}
