package costmodel

import (
	"fmt"
	"math"
	"sort"
)

// Coeffs are the learned weights mapping features to seconds.
type Coeffs struct {
	Base         float64 // fixed start-up cost
	PerFLOP      float64
	PerNetByte   float64
	PerInterByte float64
	PerTuple     float64
}

// Predict returns the predicted seconds for a feature vector.
func (c Coeffs) Predict(f Features) float64 {
	return c.Base +
		c.PerFLOP*f.FLOPs +
		c.PerNetByte*f.NetBytes +
		c.PerInterByte*f.InterBytes +
		c.PerTuple*f.Tuples
}

// Model predicts the running time of implementations and transformations.
// Each operation key (an implementation or transformation name) may carry
// its own fitted coefficients, as in the paper's per-operation regression;
// keys without a fitted model fall back to the analytic default derived
// from the cluster profile.
type Model struct {
	Default Coeffs
	PerKey  map[string]Coeffs
}

// NewModel returns a model whose default coefficients are derived
// analytically from the cluster profile. Calibration (Fit) replaces or
// augments them with measured per-operation coefficients.
func NewModel(c Cluster) *Model {
	base := c.JobOverheadSec
	if base <= 0 {
		base = 2e-3
	}
	return &Model{
		Default: Coeffs{
			Base:         base,
			PerFLOP:      1 / c.FlopsPerSec,
			PerNetByte:   1 / c.NetBytesPerSec,
			PerInterByte: 1 / c.DiskBytesPerSec,
			PerTuple:     c.TupleOverheadSec,
		},
		PerKey: make(map[string]Coeffs),
	}
}

// Predict returns the predicted seconds for operation key with features f.
func (m *Model) Predict(key string, f Features) float64 {
	if co, ok := m.PerKey[key]; ok {
		return co.Predict(f)
	}
	return m.Default.Predict(f)
}

// Sample is one calibration observation: the features of an operation and
// the measured seconds it took in Execute mode.
type Sample struct {
	Key      string
	Features Features
	Seconds  float64
}

// Fit performs the paper's installation-time calibration: for every key
// with at least minSamples observations it fits per-key coefficients by
// ordinary least squares (clamped to be non-negative, since a negative
// unit cost is physically meaningless); all observations together refit
// the default coefficients. Keys with too few observations keep the
// default. Fit returns the list of keys that received their own model.
func (m *Model) Fit(samples []Sample, minSamples int) []string {
	if minSamples < 6 {
		minSamples = 6 // need more rows than the 5 regression columns
	}
	byKey := make(map[string][]Sample)
	for _, s := range samples {
		byKey[s.Key] = append(byKey[s.Key], s)
	}
	if co, ok := fitOLS(samples); ok {
		m.Default = co
	}
	var fitted []string
	for key, ss := range byKey {
		if len(ss) < minSamples {
			continue
		}
		if co, ok := fitOLS(ss); ok {
			m.PerKey[key] = co
			fitted = append(fitted, key)
		}
	}
	sort.Strings(fitted)
	return fitted
}

// fitOLS solves the normal equations XᵀX β = Xᵀy with ridge damping for
// stability, then clamps negative coefficients to zero.
func fitOLS(samples []Sample) (Coeffs, bool) {
	const dim = 5
	if len(samples) < dim+1 {
		return Coeffs{}, false
	}
	var xtx [dim][dim]float64
	var xty [dim]float64
	for _, s := range samples {
		v := s.Features.Vec()
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				xtx[i][j] += v[i] * v[j]
			}
			xty[i] += v[i] * s.Seconds
		}
	}
	// Ridge damping scaled to the diagonal keeps near-collinear feature
	// columns (e.g. net bytes ∝ intermediate bytes on some ops) solvable.
	for i := 0; i < dim; i++ {
		xtx[i][i] += 1e-9 * (xtx[i][i] + 1)
	}
	beta, ok := solveLinear(xtx, xty)
	if !ok {
		return Coeffs{}, false
	}
	clamp := func(x float64) float64 {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return x
	}
	return Coeffs{
		Base:         clamp(beta[0]),
		PerFLOP:      clamp(beta[1]),
		PerNetByte:   clamp(beta[2]),
		PerInterByte: clamp(beta[3]),
		PerTuple:     clamp(beta[4]),
	}, true
}

// solveLinear performs Gaussian elimination with partial pivoting on the
// fixed 5×5 system.
func solveLinear(a [5][5]float64, b [5]float64) ([5]float64, bool) {
	const n = 5
	for col := 0; col < n; col++ {
		p, best := col, math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				p, best = r, v
			}
		}
		if best < 1e-30 {
			return [5]float64{}, false
		}
		a[p], a[col] = a[col], a[p]
		b[p], b[col] = b[col], b[p]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	var x [5]float64
	for i := 0; i < n; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}

func (c Coeffs) String() string {
	return fmt.Sprintf("base=%.3g perFLOP=%.3g perNet=%.3g perInter=%.3g perTuple=%.3g",
		c.Base, c.PerFLOP, c.PerNetByte, c.PerInterByte, c.PerTuple)
}
