package costmodel

// Checkpoint placement weighs the two prices of fault tolerance, as in
// SystemML-style checkpoint injection: losing an unmaterialized
// intermediate costs its whole ancestor recompute chain on the next
// failure, while materializing it costs a write of its bytes up front
// on every run. A vertex is worth checkpointing when the recompute side
// of that inequality dominates by a configurable multiple (the multiple
// absorbs both the failure probability and the cost model's error bars
// — recompute time is only *paid* on failure, so a break-even placement
// would lose on every fault-free run).

// DefaultCheckpointMultiple is the recompute-to-materialize ratio above
// which a vertex is checkpointed when the caller does not choose one.
const DefaultCheckpointMultiple = 3.0

// MaterializeSeconds estimates the cost of persisting one intermediate
// of the given size: one job overhead (the write is a barrier) plus the
// sequential disk transfer.
func MaterializeSeconds(cl Cluster, bytes float64) float64 {
	return cl.JobOverheadSec + bytes/cl.DiskBytesPerSec
}

// ShouldCheckpoint reports whether an intermediate whose loss costs
// recomputeSec to regenerate is worth materializeSec to persist, under
// the given multiple (<= 0 selects DefaultCheckpointMultiple).
func ShouldCheckpoint(recomputeSec, materializeSec, multiple float64) bool {
	if multiple <= 0 {
		multiple = DefaultCheckpointMultiple
	}
	return recomputeSec > multiple*materializeSec
}
