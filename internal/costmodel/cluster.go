// Package costmodel holds the cluster profiles and the feature-based cost
// model of §7 of the paper: every atomic computation implementation and
// physical transformation describes itself with four analytic features —
// floating point operations, worst-case network bytes, worst-case
// intermediate bytes, and tuple count — and a regression model maps those
// features to predicted seconds. Models ship with analytically derived
// defaults and can be re-fitted from micro-benchmark measurements with
// ordinary least squares (see Fit).
package costmodel

import "fmt"

// Cluster describes the hardware profile plans are costed against. The
// defaults mirror the paper's EC2 r5d.2xlarge / r5dn.2xlarge nodes.
type Cluster struct {
	Name    string
	Workers int
	// FlopsPerSec is the effective per-worker dense floating-point
	// throughput of the engine (not the silicon peak: a relational
	// engine pays interpretation overhead, which is what calibration
	// measures).
	FlopsPerSec float64
	// NetBytesPerSec is the per-link network bandwidth.
	NetBytesPerSec float64
	// DiskBytesPerSec is the bandwidth at which intermediate tuples are
	// spilled and re-read.
	DiskBytesPerSec float64
	// TupleOverheadSec is the fixed per-tuple processing cost.
	TupleOverheadSec float64
	// JobOverheadSec is the fixed cost of launching one physical
	// operator (a MapReduce job on the SimSQL substrate; near zero on
	// PlinyCompute). It becomes the cost model's base term.
	JobOverheadSec float64
	// RAMPerWorker bounds any plan's per-worker working set; exceeding
	// it makes an implementation infeasible (the paper's "Fail").
	RAMPerWorker int64
	// ScratchPerWorker bounds the intermediate bytes any one operator
	// may spill per worker. The nodes have 300 GB of NVMe, but a
	// shuffle join holds both the map output and its reduce-side copy,
	// so the usable bound is half that; an operator exceeding it Fails
	// with "too much intermediate data".
	ScratchPerWorker int64
	// MaxTupleBytes bounds a single tuple (e.g. a "single" matrix).
	MaxTupleBytes int64
}

// EC2R5D returns the paper's experimental cluster profile with the given
// number of workers: 8 cores, 64 GB RAM, 10 Gb/s network, NVMe SSD.
func EC2R5D(workers int) Cluster {
	if workers <= 0 {
		panic(fmt.Sprintf("costmodel: invalid worker count %d", workers))
	}
	return Cluster{
		Name:             fmt.Sprintf("r5d-%dw", workers),
		Workers:          workers,
		FlopsPerSec:      6e10,   // per worker: 8 cores through JNI BLAS
		NetBytesPerSec:   1.1e9,  // ~10 Gb/s
		DiskBytesPerSec:  6e8,    // HDFS-style replicated intermediate writes
		TupleOverheadSec: 1.2e-4, // per-tuple fixed cost of a JVM engine
		JobOverheadSec:   8,      // Hadoop job launch per physical operator
		RAMPerWorker:     64 << 30,
		ScratchPerWorker: 150 << 30,
		MaxTupleBytes:    1 << 30,
	}
}

// EC2R5DN returns the profile of the paper's PlinyCompute / PyTorch /
// SystemDS experiments (§8.3): the same r5dn nodes, but a C++ engine
// running near-native BLAS rates with far lower per-tuple overhead.
func EC2R5DN(workers int) Cluster {
	c := EC2R5D(workers)
	c.Name = fmt.Sprintf("r5dn-%dw", workers)
	c.FlopsPerSec = 1.2e11
	c.DiskBytesPerSec = 1.5e9 // local NVMe, no replication
	c.TupleOverheadSec = 1e-5
	c.JobOverheadSec = 0.05
	return c
}

// LocalTest returns a tiny profile used by unit tests and Execute-mode
// calibration runs.
func LocalTest(workers int) Cluster {
	c := EC2R5D(workers)
	c.Name = fmt.Sprintf("local-%dw", workers)
	c.JobOverheadSec = 1e-3
	c.RAMPerWorker = 1 << 30
	c.ScratchPerWorker = 8 << 30
	c.MaxTupleBytes = 256 << 20
	return c
}

// Features is the analytic feature vector of §7.
type Features struct {
	FLOPs      float64 // critical-path floating point operations
	NetBytes   float64 // worst-case bytes through the busiest link
	InterBytes float64 // worst-case intermediate bytes materialized per worker
	Tuples     float64 // tuples processed per worker
}

// Add returns the component-wise sum, used when an implementation is a
// pipeline of phases.
func (f Features) Add(g Features) Features {
	return Features{
		FLOPs:      f.FLOPs + g.FLOPs,
		NetBytes:   f.NetBytes + g.NetBytes,
		InterBytes: f.InterBytes + g.InterBytes,
		Tuples:     f.Tuples + g.Tuples,
	}
}

// Vec returns the regression design vector (1, flops, net, inter, tuples).
func (f Features) Vec() []float64 {
	return []float64{1, f.FLOPs, f.NetBytes, f.InterBytes, f.Tuples}
}
