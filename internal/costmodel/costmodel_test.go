package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClusterProfiles(t *testing.T) {
	c := EC2R5D(10)
	if c.Workers != 10 || c.RAMPerWorker != 64<<30 {
		t.Fatalf("EC2R5D(10) = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("EC2R5D(0) should panic")
		}
	}()
	EC2R5D(0)
}

func TestFeaturesAddAndVec(t *testing.T) {
	f := Features{FLOPs: 1, NetBytes: 2, InterBytes: 3, Tuples: 4}
	g := f.Add(Features{FLOPs: 10, NetBytes: 20, InterBytes: 30, Tuples: 40})
	if g != (Features{11, 22, 33, 44}) {
		t.Fatalf("Add = %+v", g)
	}
	v := f.Vec()
	if len(v) != 5 || v[0] != 1 || v[4] != 4 {
		t.Fatalf("Vec = %v", v)
	}
}

func TestPredictUsesPerKeyThenDefault(t *testing.T) {
	m := NewModel(EC2R5D(4))
	f := Features{FLOPs: 1e9}
	def := m.Predict("whatever", f)
	if def <= 0 {
		t.Fatalf("default prediction = %v", def)
	}
	m.PerKey["special"] = Coeffs{Base: 42}
	if got := m.Predict("special", Features{}); got != 42 {
		t.Fatalf("per-key prediction = %v", got)
	}
	if got := m.Predict("other", f); got != def {
		t.Fatalf("fallback prediction changed: %v vs %v", got, def)
	}
}

func TestDefaultCoeffsMatchClusterRates(t *testing.T) {
	c := EC2R5D(4)
	m := NewModel(c)
	// 1 second of pure flops should predict ≈ 1s + base.
	got := m.Predict("x", Features{FLOPs: c.FlopsPerSec})
	if math.Abs(got-1-m.Default.Base) > 1e-9 {
		t.Errorf("flops second = %v", got)
	}
	got = m.Predict("x", Features{NetBytes: c.NetBytesPerSec})
	if math.Abs(got-1-m.Default.Base) > 1e-9 {
		t.Errorf("net second = %v", got)
	}
}

func TestFitRecoversPlantedCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := Coeffs{Base: 0.05, PerFLOP: 2e-9, PerNetByte: 1e-9, PerInterByte: 5e-10, PerTuple: 1e-4}
	var samples []Sample
	for i := 0; i < 200; i++ {
		f := Features{
			FLOPs:      rng.Float64() * 1e10,
			NetBytes:   rng.Float64() * 1e9,
			InterBytes: rng.Float64() * 1e9,
			Tuples:     rng.Float64() * 1e5,
		}
		noise := 1 + 0.01*rng.NormFloat64()
		samples = append(samples, Sample{Key: "mm", Features: f, Seconds: truth.Predict(f) * noise})
	}
	m := NewModel(EC2R5D(2))
	fitted := m.Fit(samples, 6)
	if len(fitted) != 1 || fitted[0] != "mm" {
		t.Fatalf("fitted keys = %v", fitted)
	}
	co := m.PerKey["mm"]
	rel := func(got, want float64) float64 { return math.Abs(got-want) / want }
	if rel(co.PerFLOP, truth.PerFLOP) > 0.1 || rel(co.PerNetByte, truth.PerNetByte) > 0.1 ||
		rel(co.PerInterByte, truth.PerInterByte) > 0.1 || rel(co.PerTuple, truth.PerTuple) > 0.1 {
		t.Fatalf("recovered %v, want %v", co, truth)
	}
}

func TestFitSkipsSmallKeysAndClampsNegatives(t *testing.T) {
	var samples []Sample
	for i := 0; i < 3; i++ {
		samples = append(samples, Sample{Key: "rare", Features: Features{FLOPs: float64(i)}, Seconds: 1})
	}
	// A key engineered so OLS would pick a negative weight: time falls
	// as flops grow.
	for i := 0; i < 50; i++ {
		f := Features{FLOPs: float64(i + 1)}
		samples = append(samples, Sample{Key: "neg", Features: f, Seconds: 100 - float64(i)})
	}
	m := NewModel(EC2R5D(2))
	m.Fit(samples, 6)
	if _, ok := m.PerKey["rare"]; ok {
		t.Error("key with 3 samples must not be fitted")
	}
	co, ok := m.PerKey["neg"]
	if !ok {
		t.Fatal("neg key should be fitted")
	}
	if co.PerFLOP < 0 || co.Base < 0 {
		t.Errorf("negative coefficients must be clamped: %v", co)
	}
}

func TestNetworkHelpers(t *testing.T) {
	if BroadcastBytes(100, 1) != 0 || ShuffleBytes(100, 1) != 0 ||
		GatherBytes(100, 1) != 0 || AggregateBytes(100, 1) != 0 {
		t.Error("single-worker network costs must be zero")
	}
	if got := BroadcastBytes(100, 2); got != 100 {
		t.Errorf("BroadcastBytes(100, 2) = %v", got)
	}
	if got := BroadcastBytes(100, 8); got != 300 {
		t.Errorf("BroadcastBytes(100, 8) = %v (log2(8)=3 hops)", got)
	}
	if got := ShuffleBytes(1000, 10); got != 100 {
		t.Errorf("ShuffleBytes = %v", got)
	}
	if got := GatherBytes(1000, 10); got != 900 {
		t.Errorf("GatherBytes = %v", got)
	}
	if got := ParallelFLOPs(1000, 10, 4); got != 250 {
		t.Errorf("ParallelFLOPs limited by tasks: %v", got)
	}
	if got := ParallelFLOPs(1000, 10, 100); got != 100 {
		t.Errorf("ParallelFLOPs limited by workers: %v", got)
	}
	if got := ParallelFLOPs(1000, 10, 0); got != 1000 {
		t.Errorf("ParallelFLOPs with zero tasks: %v", got)
	}
}

func TestBroadcastMonotoneInWorkers(t *testing.T) {
	f := func(w8 uint8) bool {
		w := int(w8%30) + 1
		return BroadcastBytes(1e6, w+1) >= BroadcastBytes(1e6, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictNonNegativeProperty(t *testing.T) {
	m := NewModel(EC2R5D(5))
	f := func(a, b, c, d uint32) bool {
		fe := Features{FLOPs: float64(a), NetBytes: float64(b), InterBytes: float64(c), Tuples: float64(d)}
		return m.Predict("k", fe) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
