// Package shape defines matrix types in the sense of the paper: a matrix
// type is a pair (d, b) where d is the dimensionality and b the extent
// along each dimension. The prototype, like the paper's, works with
// vectors (d = 1) and classical matrices (d = 2); vectors are carried as
// degenerate matrices with one row or one column.
package shape

import "fmt"

// Shape is a matrix type. Rows and Cols are the logical extents; a row
// vector has Rows == 1, a column vector has Cols == 1.
type Shape struct {
	Rows, Cols int64
}

// New returns the shape of an r-by-c matrix. It panics if either extent
// is not positive; shapes are constructed from validated workload
// descriptions, so a bad extent is a programming error.
func New(r, c int64) Shape {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("shape: invalid extents %dx%d", r, c))
	}
	return Shape{Rows: r, Cols: c}
}

// Elems returns the number of logical entries, Rows*Cols.
func (s Shape) Elems() int64 { return s.Rows * s.Cols }

// Bytes returns the dense storage size in bytes (float64 entries).
func (s Shape) Bytes() int64 { return s.Elems() * 8 }

// T returns the transposed shape.
func (s Shape) T() Shape { return Shape{Rows: s.Cols, Cols: s.Rows} }

// IsVector reports whether the shape is a row or column vector.
func (s Shape) IsVector() bool { return s.Rows == 1 || s.Cols == 1 }

// IsSquare reports whether the shape is square.
func (s Shape) IsSquare() bool { return s.Rows == s.Cols }

func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.Rows, s.Cols) }

// Zero is the absent shape, used as the ⊥ marker alongside ok flags.
var Zero Shape

// CanMatMul reports whether a×b is defined.
func CanMatMul(a, b Shape) bool { return a.Cols == b.Rows }

// MatMul returns the shape of a×b, or ⊥ (ok=false) if undefined.
func MatMul(a, b Shape) (Shape, bool) {
	if !CanMatMul(a, b) {
		return Zero, false
	}
	return Shape{Rows: a.Rows, Cols: b.Cols}, true
}

// Elementwise returns the common shape of an elementwise binary op, or
// ⊥ (ok=false) if the operand shapes differ.
func Elementwise(a, b Shape) (Shape, bool) {
	if a != b {
		return Zero, false
	}
	return a, true
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("shape: CeilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}
