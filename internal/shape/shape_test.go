package shape

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	s := New(3, 7)
	if s.Rows != 3 || s.Cols != 7 {
		t.Fatalf("New(3,7) = %v", s)
	}
	if s.Elems() != 21 {
		t.Errorf("Elems = %d, want 21", s.Elems())
	}
	if s.Bytes() != 168 {
		t.Errorf("Bytes = %d, want 168", s.Bytes())
	}
	if s.T() != New(7, 3) {
		t.Errorf("T = %v", s.T())
	}
	if s.IsVector() || s.IsSquare() {
		t.Errorf("3x7 should be neither vector nor square")
	}
	if !New(1, 9).IsVector() || !New(9, 1).IsVector() {
		t.Errorf("1x9 and 9x1 should be vectors")
	}
	if !New(4, 4).IsSquare() {
		t.Errorf("4x4 should be square")
	}
	if got := s.String(); got != "3x7" {
		t.Errorf("String = %q", got)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	for _, c := range [][2]int64{{0, 1}, {1, 0}, {-1, 5}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", c[0], c[1])
				}
			}()
			New(c[0], c[1])
		}()
	}
}

func TestMatMulShape(t *testing.T) {
	out, ok := MatMul(New(5, 10), New(10, 5))
	if !ok || out != New(5, 5) {
		t.Fatalf("MatMul(5x10, 10x5) = %v, %v", out, ok)
	}
	if _, ok := MatMul(New(5, 10), New(9, 5)); ok {
		t.Fatal("MatMul with mismatched inner dim should fail")
	}
}

func TestElementwiseShape(t *testing.T) {
	if out, ok := Elementwise(New(2, 3), New(2, 3)); !ok || out != New(2, 3) {
		t.Fatalf("Elementwise same shapes = %v, %v", out, ok)
	}
	if _, ok := Elementwise(New(2, 3), New(3, 2)); ok {
		t.Fatal("Elementwise mismatched shapes should fail")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 3, 4}, {9, 3, 3}, {1, 1000, 1}, {0, 5, 0}, {1000, 1000, 1},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CeilDiv by 0 should panic")
			}
		}()
		CeilDiv(1, 0)
	}()
}

func TestTransposeInvolution(t *testing.T) {
	f := func(r, c uint16) bool {
		s := New(int64(r)+1, int64(c)+1)
		return s.T().T() == s && s.T().Elems() == s.Elems()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatMulShapeAssociativityProperty(t *testing.T) {
	// (a×b)×c and a×(b×c) must agree on shape whenever both are defined.
	f := func(r1, r2, r3, r4 uint8) bool {
		a := New(int64(r1)+1, int64(r2)+1)
		b := New(int64(r2)+1, int64(r3)+1)
		c := New(int64(r3)+1, int64(r4)+1)
		ab, ok1 := MatMul(a, b)
		bc, ok2 := MatMul(b, c)
		if !ok1 || !ok2 {
			return false
		}
		l, ok3 := MatMul(ab, c)
		r, ok4 := MatMul(a, bc)
		return ok3 && ok4 && l == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
