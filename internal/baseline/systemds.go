package baseline

import (
	"matopt/internal/core"
	"matopt/internal/format"
)

// SystemDSLike annotates g the way the paper characterizes SystemDS
// (§9): each operation's layout is chosen locally — single-tuple for
// matrices that fit one block, 1000×1000 blocks otherwise, and a sparse
// layout when the matrix is sparse enough to pay off — with the locally
// cheapest implementation per operation. Crucially there is no global
// optimization and no accounting for the re-layout (transformation)
// chains the local choices induce; those costs are still paid at
// execution time, which is the gap the paper's optimizer closes.
func SystemDSLike(g *core.Graph, env *core.Env) (*core.Annotation, error) {
	const sparseThreshold = 0.05 // SystemDS-style sparse-block switch
	want := make(map[int]format.Format)
	for _, v := range g.Vertices {
		if v.IsSource {
			continue
		}
		if v.Density < sparseThreshold {
			if f := format.NewCSRSingle(); f.Valid(v.Shape, v.Density, env.Cluster.MaxTupleBytes) && env.HasFormat(f) {
				want[v.ID] = f
				continue
			}
		}
		if !tileable(v.Op.Kind) {
			continue
		}
		if f := format.NewSingle(); v.Shape.Bytes() <= 64<<20 && f.Valid(v.Shape, v.Density, env.Cluster.MaxTupleBytes) {
			want[v.ID] = f
			continue
		}
		if f, ok := largestValidTile(v.Shape, v.Density, env.Cluster.MaxTupleBytes); ok {
			want[v.ID] = f
		}
	}
	return core.GreedyAnnotate(g, env, want)
}
