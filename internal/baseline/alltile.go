// Package baseline implements the comparison plans and systems of §8:
// the all-tile heuristic, the hand-written expert plan, the three
// recruited-user policies of Experiment 4, a PyTorch-style data-parallel
// engine model, and a SystemDS-style local optimizer.
package baseline

import (
	"matopt/internal/core"
	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// tileTargets are tried largest-first when tiling a matrix.
var tileTargets = []int64{1000, 500, 200, 100}

// largestValidTile returns the biggest standard tile (≤ 1000) that can
// store the shape, or ok=false when none can (vectors, tiny matrices).
func largestValidTile(s shape.Shape, density float64, maxTuple int64) (format.Format, bool) {
	for _, b := range tileTargets {
		f := format.NewTile(b)
		if f.Valid(s, density, maxTuple) {
			return f, true
		}
	}
	return format.Format{}, false
}

// tileable lists the atomic computations whose output the all-tile
// heuristic forces into tiles; the rest (softmax, bias, reductions,
// inverse) have no tiled implementation and are left to the local greedy
// choice.
func tileable(k op.Kind) bool {
	switch k {
	case op.MatMul, op.Add, op.Sub, op.Hadamard, op.Transpose,
		op.ReLU, op.ReLUGrad, op.Sigmoid, op.Exp, op.Neg, op.ScalarMul:
		return true
	}
	return false
}

// naiveEnv restricts the environment to the "plain SQL" implementations
// the §1 example uses: matrix multiplies run only as the tile×tile
// shuffle join (single×single kept for unchunkable vector cases). All
// other operations keep their implementations.
func naiveEnv(env *core.Env) *core.Env {
	restricted := *env
	restricted.Impls = make(map[op.Kind][]*impl.Impl, len(env.Impls))
	for k, ims := range env.Impls {
		restricted.Impls[k] = ims
	}
	restricted.Impls[op.MatMul] = []*impl.Impl{impl.MMTileTileShuffle, impl.MMSingleSingle}
	return &restricted
}

// AllTile annotates g with the §8.2 heuristic of "simply tiling every
// matrix in 1K×1K chunks" and running the textbook shuffle-join multiply
// over them. The returned error is the plan's Fail outcome.
func AllTile(g *core.Graph, env *core.Env) (*core.Annotation, error) {
	want := make(map[int]format.Format)
	for _, v := range g.Vertices {
		if v.IsSource || !tileable(v.Op.Kind) {
			continue
		}
		// The shuffle join needs one tile grid across the operation, so
		// the tile size must be valid for the output and every input.
		for _, b := range tileTargets {
			f := format.NewTile(b)
			ok := f.Valid(v.Shape, v.Density, env.Cluster.MaxTupleBytes)
			for _, in := range v.Ins {
				ok = ok && f.Valid(in.Shape, in.Density, env.Cluster.MaxTupleBytes)
			}
			if ok {
				want[v.ID] = f
				break
			}
		}
	}
	return core.GreedyAnnotate(g, naiveEnv(env), want)
}
