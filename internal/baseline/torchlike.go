package baseline

import (
	"math"

	"matopt/internal/costmodel"
	"matopt/internal/workload"
)

// TorchResult reports a data-parallel run: the predicted seconds, or a
// Fail with the resource that overflowed.
type TorchResult struct {
	Seconds float64
	Failed  bool
	Reason  string
}

// TorchLike models the paper's PyTorch comparison (§8.3): the standard
// data-parallel recipe — shard the input by examples, replicate the
// entire model on every worker, run native-speed dense local kernels,
// and all-reduce dense gradients every step. Its two characteristic
// behaviours are reproduced from first principles:
//
//   - it fails when one worker cannot hold the model replica, its dense
//     gradients, the densified data shard and the activations ("PyTorch
//     is unable to multiply the matrix storing the input data with the
//     entire matrix connecting the inputs to the first input layer
//     without failing"), and
//   - its time grows with the cluster size at a fixed problem, because
//     the dense-model all-reduce dominates while per-worker compute
//     shrinks.
//
// Unlike the optimizer's sparse plans, the data-parallel path densifies
// the design matrix, so it cannot exploit AmazonCat's sparsity.
func TorchLike(c workload.FFNNConfig, cl costmodel.Cluster) TorchResult {
	w := float64(cl.Workers)
	f, h, l, b := float64(c.Features), float64(c.Hidden), float64(c.Labels), float64(c.Batch)

	modelBytes := (f*h + h*h + h*l + 2*h + l) * 8
	shardRows := b / w
	shardBytes := shardRows * f * 8
	activBytes := shardRows * (2*h + l) * 8 * 2 // activations + their gradients
	peak := 2*modelBytes + shardBytes + activBytes
	if peak > float64(cl.RAMPerWorker) {
		return TorchResult{Failed: true, Reason: "model replica + dense shard exceed worker RAM"}
	}

	// Dense forward + backward: ≈ 6 flops per weight per example.
	flops := 6 * shardRows * (f*h + h*h + h*l)
	computeSec := flops / cl.FlopsPerSec

	// Communication: one model broadcast plus a dense-gradient
	// all-reduce (2·bytes·(w−1)/w per link).
	bcastSec := modelBytes * math.Ceil(math.Log2(w)) / cl.NetBytesPerSec
	allreduceSec := 2 * modelBytes * (w - 1) / w / cl.NetBytesPerSec
	if cl.Workers == 1 {
		bcastSec, allreduceSec = 0, 0
	}
	return TorchResult{Seconds: computeSec + bcastSec + allreduceSec}
}
