package baseline

import (
	"matopt/internal/core"
	"matopt/internal/format"
)

// Expertise grades the recruited programmers of Experiment 4 by their
// distributed-ML experience.
type Expertise int

const (
	// ExpertiseLow is the ML-applications PhD student: strong ML, no
	// distributed-systems instincts.
	ExpertiseLow Expertise = iota
	// ExpertiseMedium is the federated-learning student.
	ExpertiseMedium
	// ExpertiseHigh is the high-performance distributed-ML student,
	// whose plan nearly matched the optimizer's.
	ExpertiseHigh
)

func (e Expertise) String() string {
	switch e {
	case ExpertiseLow:
		return "low"
	case ExpertiseMedium:
		return "medium"
	case ExpertiseHigh:
		return "high"
	}
	return "unknown"
}

// UserResult reports a recruited user's labeling outcome: the plan that
// eventually ran, and whether the first labeling crashed and had to be
// re-designed (the paper's asterisked entries).
type UserResult struct {
	Annotation   *core.Annotation
	FirstCrashed bool
}

// UserPlan reproduces the Experiment 4 labelings. Low and medium
// expertise users first produce an infeasible labeling (single-tuple
// layouts for matrices that cannot fit one tuple); after the crash they
// re-design: the low-expertise user falls back to tiling everything with
// the textbook multiply, the medium user to an all-tile plan with free
// implementation choice. The high-expertise user's labeling is the
// locally-optimal greedy plan and succeeds on the first attempt.
func UserPlan(g *core.Graph, env *core.Env, e Expertise) (UserResult, error) {
	switch e {
	case ExpertiseHigh:
		ann, err := core.GreedyAnnotate(g, env, nil)
		return UserResult{Annotation: ann}, err
	case ExpertiseMedium, ExpertiseLow:
		crashed := false
		// First attempt: whole-matrix layouts everywhere, as a
		// single-node ML mindset suggests.
		wantSingle := make(map[int]format.Format)
		for _, v := range g.Vertices {
			if !v.IsSource {
				wantSingle[v.ID] = format.NewSingle()
			}
		}
		if _, err := core.GreedyAnnotate(g, env, wantSingle); err != nil {
			crashed = true
		}
		var ann *core.Annotation
		var err error
		if e == ExpertiseLow {
			ann, err = AllTile(g, env) // textbook shuffle-join re-design
		} else {
			// The medium user keeps the tiled layouts but lets the
			// engine pick per-op implementations.
			want := make(map[int]format.Format)
			for _, v := range g.Vertices {
				if v.IsSource || !tileable(v.Op.Kind) {
					continue
				}
				if f, ok := largestValidTile(v.Shape, v.Density, env.Cluster.MaxTupleBytes); ok {
					want[v.ID] = f
				}
			}
			ann, err = core.GreedyAnnotate(g, env, want)
		}
		return UserResult{Annotation: ann, FirstCrashed: crashed}, err
	}
	return UserResult{}, nil
}
