package baseline

import (
	"matopt/internal/core"
	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// expertFormat is the static layout rule a competent distributed-ML
// programmer applies (derived, like the paper's hand-written plans, from
// the published FFNN code of Jankov et al.): matrices small enough to
// move freely are kept whole, transposed matrices ride the strip
// transpose, and everything else is tiled 1K×1K. The rule is applied per
// matrix in isolation — the expert does not weigh the re-layout chains
// the choices induce across operations, which is exactly the gap the
// global optimizer exploits.
func expertFormat(kind op.Kind, s shape.Shape, density float64, maxTuple int64) (format.Format, bool) {
	single := format.NewSingle()
	if s.Bytes() <= 64<<20 && single.Valid(s, density, maxTuple) {
		return single, true
	}
	if kind == op.Transpose {
		if s.Rows >= 4*s.Cols {
			if f := format.NewRowStrip(1000); f.Valid(s, density, maxTuple) {
				return f, true
			}
		}
		if s.Cols >= 4*s.Rows {
			if f := format.NewColStrip(1000); f.Valid(s, density, maxTuple) {
				return f, true
			}
		}
	}
	if f, ok := largestValidTile(s, density, maxTuple); ok {
		return f, true
	}
	if single.Valid(s, density, maxTuple) {
		return single, true
	}
	return format.Format{}, false
}

// expertMatMulTile picks the tile size the expert's strip-pipelined
// multiply can build: the largest block whose row strips of the left
// operand and column strips of the right operand still fit a tuple.
func expertMatMulTile(v *core.Vertex, maxTuple int64) (format.Format, bool) {
	// Only strip extents that actually exist can feed the pipelined
	// strip×strip multiply.
	for _, b := range []int64{1000, 100} {
		tile := format.NewTile(b)
		if !tile.Valid(v.Shape, v.Density, maxTuple) {
			continue
		}
		a, c := v.Ins[0], v.Ins[1]
		if format.NewRowStrip(b).Valid(a.Shape, a.Density, maxTuple) &&
			format.NewColStrip(b).Valid(c.Shape, c.Density, maxTuple) {
			return tile, true
		}
	}
	return format.Format{}, false
}

// HandWritten annotates g the way the paper's expert-written plans do:
// a fixed per-matrix layout rule plus the locally cheapest
// implementation for each operation. Operations with no layout under the
// rule fall back to the local greedy choice. The one strategy the
// published hand code never used is broadcasting a whole *chunked*
// matrix (tile×tile broadcast join) — the experts broadcast only
// unchunked singles — so that implementation is withheld here.
func HandWritten(g *core.Graph, env *core.Env) (*core.Annotation, error) {
	want := make(map[int]format.Format)
	for _, v := range g.Vertices {
		if v.IsSource || !tileable(v.Op.Kind) {
			continue
		}
		if v.Op.Kind == op.MatMul && v.Shape.Bytes() > 64<<20 {
			if f, ok := expertMatMulTile(v, env.Cluster.MaxTupleBytes); ok {
				want[v.ID] = f
				continue
			}
		}
		if f, ok := expertFormat(v.Op.Kind, v.Shape, v.Density, env.Cluster.MaxTupleBytes); ok {
			want[v.ID] = f
		}
	}
	restricted := *env
	restricted.Impls = make(map[op.Kind][]*impl.Impl, len(env.Impls))
	for k, ims := range env.Impls {
		restricted.Impls[k] = ims
	}
	var mm []*impl.Impl
	for _, im := range env.Impls[op.MatMul] {
		if im != impl.MMTileTileBcast {
			mm = append(mm, im)
		}
	}
	restricted.Impls[op.MatMul] = mm
	return core.GreedyAnnotate(g, &restricted, want)
}
