package baseline

import (
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/workload"
)

func env(workers int) *core.Env {
	return core.NewEnv(costmodel.EC2R5D(workers), format.All())
}

func TestOrderingOnMotivatingChain(t *testing.T) {
	g, err := workload.MotivatingChain()
	if err != nil {
		t.Fatal(err)
	}
	e := env(5)
	auto, err := core.Optimize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := HandWritten(g, e)
	if err != nil {
		t.Fatal(err)
	}
	tile, err := AllTile(g, e)
	if err != nil {
		t.Fatal(err)
	}
	// At this small scale the per-job overhead dominates, compressing
	// the baselines toward each other; the optimizer must still win.
	if auto.Total() > hand.Total()+1e-9 || auto.Total() > tile.Total()+1e-9 {
		t.Errorf("ordering violated: auto %.2f, hand %.2f, all-tile %.2f",
			auto.Total(), hand.Total(), tile.Total())
	}
}

func TestOrderingOnMatMulChain(t *testing.T) {
	for _, sz := range workload.ChainSizeSets() {
		g, err := workload.MatMulChain(sz)
		if err != nil {
			t.Fatalf("%s: %v", sz.Name, err)
		}
		e := env(10)
		auto, err := core.Optimize(g, e)
		if err != nil {
			t.Fatalf("%s: %v", sz.Name, err)
		}
		hand, err := HandWritten(g, e)
		if err != nil {
			t.Fatalf("%s hand: %v", sz.Name, err)
		}
		tile, err := AllTile(g, e)
		if err != nil {
			t.Fatalf("%s all-tile: %v", sz.Name, err)
		}
		if auto.Total() > hand.Total()+1e-9 {
			t.Errorf("%s: auto %.1f > hand %.1f", sz.Name, auto.Total(), hand.Total())
		}
		if auto.Total() > tile.Total()+1e-9 {
			t.Errorf("%s: auto %.1f > all-tile %.1f", sz.Name, auto.Total(), tile.Total())
		}
	}
}

func TestAllTileUsesShuffleJoin(t *testing.T) {
	g, err := workload.MatMulChain(workload.ChainSizeSets()[2]) // all 50K squares
	if err != nil {
		t.Fatal(err)
	}
	ann, err := AllTile(g, env(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Vertices {
		if v.IsSource {
			continue
		}
		if im := ann.VertexImpl[v.ID]; im.Name != "mm-tile-tile-shuffle" {
			t.Errorf("vertex %d uses %s, all-tile must use the shuffle join", v.ID, im.Name)
		}
	}
}

func TestUserPlansTrackExpertise(t *testing.T) {
	g, err := workload.FFNNW2Update(workload.PaperFFNN(80000))
	if err != nil {
		t.Fatal(err)
	}
	e := env(10)
	auto, err := core.Optimize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	var totals [3]float64
	for _, ex := range []Expertise{ExpertiseLow, ExpertiseMedium, ExpertiseHigh} {
		res, err := UserPlan(g, e, ex)
		if err != nil {
			t.Fatalf("%v: %v", ex, err)
		}
		totals[ex] = res.Annotation.Total()
		if ex != ExpertiseHigh && !res.FirstCrashed {
			t.Errorf("%v: first labeling should have crashed (paper's asterisks)", ex)
		}
		if ex == ExpertiseHigh && res.FirstCrashed {
			t.Errorf("high expertise should not crash")
		}
		if res.Annotation.Total() < auto.Total()-1e-9 {
			t.Errorf("%v beat the optimizer: %.1f < %.1f", ex, res.Annotation.Total(), auto.Total())
		}
	}
	if !(totals[ExpertiseHigh] <= totals[ExpertiseMedium] && totals[ExpertiseMedium] <= totals[ExpertiseLow]) {
		t.Errorf("runtimes do not track expertise: low %.1f, med %.1f, high %.1f",
			totals[ExpertiseLow], totals[ExpertiseMedium], totals[ExpertiseHigh])
	}
}

func TestTorchLikeFailsAtLargeHidden(t *testing.T) {
	for _, workers := range []int{2, 5, 10} {
		cl := costmodel.EC2R5DN(workers)
		small := TorchLike(workload.AmazonCatConfig(1000, 4000, false), cl)
		if small.Failed {
			t.Errorf("%d workers: h=4000 should run, failed: %s", workers, small.Reason)
		}
		big := TorchLike(workload.AmazonCatConfig(1000, 7000, false), cl)
		if !big.Failed {
			t.Errorf("%d workers: h=7000 should fail (model replica ≈ 69GB)", workers)
		}
	}
	// 10K batch: fails already at h=5000 on 2 workers, runs on 5.
	if r := TorchLike(workload.AmazonCatConfig(10000, 5000, false), costmodel.EC2R5DN(2)); !r.Failed {
		t.Error("10K batch h=5000 on 2 workers should fail")
	}
	if r := TorchLike(workload.AmazonCatConfig(10000, 5000, false), costmodel.EC2R5DN(5)); r.Failed {
		t.Errorf("10K batch h=5000 on 5 workers should run: %s", r.Reason)
	}
}

func TestTorchLikeGrowsWithClusterSize(t *testing.T) {
	c := workload.AmazonCatConfig(1000, 4000, false)
	t2 := TorchLike(c, costmodel.EC2R5DN(2)).Seconds
	t10 := TorchLike(c, costmodel.EC2R5DN(10)).Seconds
	if t10 <= t2*0.9 {
		t.Errorf("data-parallel time should not improve much with workers: 2w=%.1f, 10w=%.1f", t2, t10)
	}
}

func TestSystemDSLikeNeverBeatsOptimizer(t *testing.T) {
	g, err := workload.FFNNBackprop(workload.AmazonCatConfig(1000, 4000, false))
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEnv(costmodel.EC2R5DN(5), format.All())
	auto, err := core.Optimize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := SystemDSLike(g, e)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Total() > ds.Total()+1e-9 {
		t.Errorf("optimizer %.1f worse than SystemDS-like %.1f", auto.Total(), ds.Total())
	}
}

func TestLargestValidTile(t *testing.T) {
	f, ok := largestValidTile(shape.New(50000, 50000), 1, 1<<30)
	if !ok || f != format.NewTile(1000) {
		t.Errorf("50K square → %v, %v", f, ok)
	}
	f, ok = largestValidTile(shape.New(300, 300), 1, 1<<30)
	if !ok || f != format.NewTile(200) {
		t.Errorf("300 square → %v, %v", f, ok)
	}
	if _, ok := largestValidTile(shape.New(50, 50), 1, 1<<30); ok {
		t.Error("50×50 has no standard tile")
	}
}
