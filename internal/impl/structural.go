package impl

import (
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// Exported handles for the transpose / reduction / inverse implementations.
var (
	TransposeSingleImpl, TransposeTileImpl, TransposeStripImpl, TransposeCSRSingleImpl *Impl
	RowSumsSingleImpl, RowSumsRowStripImpl                                             *Impl
	ColSumsSingleImpl, ColSumsColStripImpl                                             *Impl
	InverseSingleImpl                                                                  *Impl
)

func init() {
	TransposeSingleImpl = register("transpose-single", op.Transpose,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a := ins[0]
			if a.Format.Kind != format.Single {
				return Out{}, false
			}
			return Out{
				Format: format.NewSingle(),
				Features: costmodel.Features{
					FLOPs:  float64(a.Shape.Elems()),
					Tuples: 1,
				},
				PeakWorkerBytes: bytesOf(a) * 2,
			}, true
		})

	// Transpose tiles locally and swap their (tileRow, tileCol) keys; a
	// shuffle re-establishes the hash partitioning on the new keys.
	TransposeTileImpl = register("transpose-tile", op.Transpose,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a := ins[0]
			if a.Format.Kind != format.Tile {
				return Out{}, false
			}
			t := tuplesOf(a)
			return Out{
				Format: a.Format,
				Features: costmodel.Features{
					FLOPs:    costmodel.ParallelFLOPs(float64(a.Shape.Elems()), cl.Workers, t),
					NetBytes: costmodel.ShuffleBytes(bytesOf(a), cl.Workers),
					Tuples:   perWorker(float64(t), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(0, tupleBytes(a)),
			}, true
		})

	// A transposed row strip is a column strip with the same key (and
	// vice versa), so only the per-tuple payload transpose is needed.
	TransposeStripImpl = register("transpose-strip", op.Transpose,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a := ins[0]
			var out format.Format
			switch a.Format.Kind {
			case format.RowStrip:
				out = format.NewColStrip(a.Format.Block)
			case format.ColStrip:
				out = format.NewRowStrip(a.Format.Block)
			default:
				return Out{}, false
			}
			t := tuplesOf(a)
			return Out{
				Format: out,
				Features: costmodel.Features{
					FLOPs:  costmodel.ParallelFLOPs(float64(a.Shape.Elems()), cl.Workers, t),
					Tuples: perWorker(float64(t), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(0, tupleBytes(a)),
			}, true
		})

	TransposeCSRSingleImpl = register("transpose-csr-single", op.Transpose,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a := ins[0]
			if a.Format.Kind != format.CSRSingle {
				return Out{}, false
			}
			nnz := a.Density * float64(a.Shape.Elems())
			return Out{
				Format: format.NewCSRSingle(),
				Features: costmodel.Features{
					FLOPs:  2 * nnz, // counting-sort re-encode
					Tuples: 1,
				},
				PeakWorkerBytes: bytesOf(a) * 2,
			}, true
		})

	RowSumsSingleImpl = register("rowsums-single", op.RowSums, reduceSingle)
	ColSumsSingleImpl = register("colsums-single", op.ColSums, reduceSingle)

	// Row sums of a row strip stay within the strip: a per-tuple map
	// producing (Block×1) strip pieces of the output vector.
	RowSumsRowStripImpl = register("rowsums-rowstrip", op.RowSums,
		reduceStrip(format.RowStrip))
	ColSumsColStripImpl = register("colsums-colstrip", op.ColSums,
		reduceStrip(format.ColStrip))

	InverseSingleImpl = register("inverse-single", op.Inverse,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a := ins[0]
			if a.Format.Kind != format.Single {
				return Out{}, false
			}
			n := float64(a.Shape.Rows)
			return Out{
				Format: format.NewSingle(),
				Features: costmodel.Features{
					FLOPs:  2 * n * n * n, // Gauss–Jordan
					Tuples: 1,
				},
				PeakWorkerBytes: bytesOf(a) * 3,
			}, true
		})
}

func reduceSingle(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
	a := ins[0]
	if a.Format.Kind != format.Single {
		return Out{}, false
	}
	return Out{
		Format: format.NewSingle(),
		Features: costmodel.Features{
			FLOPs:  float64(a.Shape.Elems()),
			Tuples: 1,
		},
		PeakWorkerBytes: bytesOf(a) + denseOutBytes(outShape),
	}, true
}

func reduceStrip(want format.Kind) func(op.Op, []Input, shape.Shape, float64, costmodel.Cluster) (Out, bool) {
	return func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
		a := ins[0]
		if a.Format.Kind != want {
			return Out{}, false
		}
		var out format.Format
		if want == format.RowStrip {
			out = format.NewRowStrip(a.Format.Block)
		} else {
			out = format.NewColStrip(a.Format.Block)
		}
		t := tuplesOf(a)
		return Out{
			Format: out,
			Features: costmodel.Features{
				FLOPs:  costmodel.ParallelFLOPs(float64(a.Shape.Elems()), cl.Workers, t),
				Tuples: perWorker(float64(t), cl.Workers),
			},
			PeakWorkerBytes: streamPeak(0, tupleBytes(a)),
		}, true
	}
}
