package impl

import (
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// Exported handles for the matrix-multiply implementations; the engine
// and tests refer to them by these variables.
var (
	MMSingleSingle           *Impl
	MMSingleColStripBcast    *Impl
	MMRowStripSingleBcast    *Impl
	MMRowStripColStrip       *Impl
	MMColStripRowStripAgg    *Impl
	MMTileTileShuffle        *Impl
	MMTileTileBcast          *Impl
	MMSingleTileBcast        *Impl
	MMTileSingleBcast        *Impl
	MMCSRSingleSingle        *Impl
	MMCSRBcastRowStripAgg    *Impl
	MMCSRRowStripSingleBcast *Impl
	MMCOOBcastSingle         *Impl
)

// mmFlopsDense is the dense multiply flop count 2·r·k·c.
func mmFlopsDense(a, b shape.Shape) float64 {
	return 2 * float64(a.Rows) * float64(a.Cols) * float64(b.Cols)
}

// mmFlopsSparseLeft is the flop count when the left operand stores only
// non-zeros: 2·nnz(A)·c.
func mmFlopsSparseLeft(a Input, b shape.Shape) float64 {
	nnz := a.Density * float64(a.Shape.Elems())
	return 2 * nnz * float64(b.Cols)
}

func init() {
	MMSingleSingle = register("mm-single-single", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.Single || b.Format.Kind != format.Single {
				return Out{}, false
			}
			moved := bytesOf(a)
			if bytesOf(b) < moved {
				moved = bytesOf(b)
			}
			return Out{
				Format: format.NewSingle(),
				Features: costmodel.Features{
					FLOPs:    mmFlopsDense(a.Shape, b.Shape), // one worker computes
					NetBytes: moved,
					Tuples:   2,
				},
				PeakWorkerBytes: bytesOf(a) + bytesOf(b) + denseOutBytes(outShape),
			}, true
		})

	MMSingleColStripBcast = register("mm-bcast-single-colstrip", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.Single || b.Format.Kind != format.ColStrip {
				return Out{}, false
			}
			tb := tuplesOf(b)
			return Out{
				Format: format.NewColStrip(b.Format.Block),
				Features: costmodel.Features{
					FLOPs:    costmodel.ParallelFLOPs(mmFlopsDense(a.Shape, b.Shape), cl.Workers, tb),
					NetBytes: costmodel.BroadcastBytes(bytesOf(a), cl.Workers),
					Tuples:   perWorker(float64(tb), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(bytesOf(a), tupleBytes(b)),
			}, true
		})

	MMRowStripSingleBcast = register("mm-rowstrip-bcast-single", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.RowStrip || b.Format.Kind != format.Single {
				return Out{}, false
			}
			ta := tuplesOf(a)
			return Out{
				Format: format.NewRowStrip(a.Format.Block),
				Features: costmodel.Features{
					FLOPs:    costmodel.ParallelFLOPs(mmFlopsDense(a.Shape, b.Shape), cl.Workers, ta),
					NetBytes: costmodel.BroadcastBytes(bytesOf(b), cl.Workers),
					Tuples:   perWorker(float64(ta), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(bytesOf(b), tupleBytes(a)),
			}, true
		})

	// Pipelined cross join of row strips with column strips of the same
	// extent; every (strip, strip) pair yields one finished output tile,
	// so no aggregation is needed (the §2.1 "implementation 1" multiply).
	MMRowStripColStrip = register("mm-rowstrip-colstrip", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.RowStrip || b.Format.Kind != format.ColStrip ||
				a.Format.Block != b.Format.Block {
				return Out{}, false
			}
			ta, tb := tuplesOf(a), tuplesOf(b)
			small, large := bytesOf(a), bytesOf(b)
			if small > large {
				small, large = large, small
			}
			pairs := ta * tb
			return Out{
				Format: format.NewTile(a.Format.Block),
				Features: costmodel.Features{
					FLOPs:      costmodel.ParallelFLOPs(mmFlopsDense(a.Shape, b.Shape), cl.Workers, pairs),
					NetBytes:   costmodel.BroadcastBytes(small, cl.Workers),
					InterBytes: perWorker(denseOutBytes(outShape), cl.Workers),
					Tuples:     perWorker(float64(pairs), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(small, tupleBytes(a), tupleBytes(b)),
			}, true
		})

	// Co-partitioned join of column strips with row strips on the strip
	// index; each matched pair yields a full-size partial product that a
	// global SUM reduces — the "inner-product" multiply producing an
	// unchunked result.
	MMColStripRowStripAgg = register("mm-colstrip-rowstrip-agg", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.ColStrip || b.Format.Kind != format.RowStrip ||
				a.Format.Block != b.Format.Block {
				return Out{}, false
			}
			strips := tuplesOf(a)
			outB := denseOutBytes(outShape)
			partials := float64(strips) * outB
			addFlops := partials / 8
			return Out{
				Format: format.NewSingle(),
				Features: costmodel.Features{
					FLOPs: costmodel.ParallelFLOPs(mmFlopsDense(a.Shape, b.Shape)+addFlops,
						cl.Workers, strips),
					NetBytes: costmodel.ShuffleBytes(bytesOf(a)+bytesOf(b), cl.Workers) +
						costmodel.AggregateBytes(outB, cl.Workers),
					InterBytes: perWorker(partials, cl.Workers),
					Tuples:     perWorker(float64(2*strips), cl.Workers),
				},
				// Partials are reduced eagerly per worker: two output
				// buffers resident; the co-partitioned inputs stream.
				PeakWorkerBytes: streamPeak(2*outB, tupleBytes(a), tupleBytes(b)),
			}, true
		})

	// Shuffle join of equal tile grids on lhs.tileCol = rhs.tileRow,
	// followed by a group-by (tileRow, tileCol) SUM — the §1 SQL multiply.
	MMTileTileShuffle = register("mm-tile-tile-shuffle", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.Tile || b.Format.Kind != format.Tile ||
				a.Format.Block != b.Format.Block {
				return Out{}, false
			}
			s := a.Format.Block
			kTiles := shape.CeilDiv(a.Shape.Cols, s)
			prodTiles := shape.CeilDiv(outShape.Rows, s) * shape.CeilDiv(outShape.Cols, s) * kTiles
			interTotal := float64(prodTiles) * float64(s*s) * 8
			addFlops := interTotal / 8
			return Out{
				Format: format.NewTile(s),
				Features: costmodel.Features{
					FLOPs: costmodel.ParallelFLOPs(mmFlopsDense(a.Shape, b.Shape)+addFlops,
						cl.Workers, prodTiles),
					NetBytes: costmodel.ShuffleBytes(bytesOf(a)+bytesOf(b), cl.Workers) +
						costmodel.ShuffleBytes(interTotal, cl.Workers),
					InterBytes: perWorker(interTotal, cl.Workers),
					Tuples:     perWorker(float64(tuplesOf(a)+tuplesOf(b)+2*prodTiles), cl.Workers),
				},
				// RAM holds the combiner's output share; the raw join
				// output spills to scratch and is charged plan-wide (the
				// "too much intermediate data" failure mode in Simulate).
				PeakWorkerBytes: streamPeak(perWorker(denseOutBytes(outShape), cl.Workers), tupleBytes(a), tupleBytes(b)),
			}, true
		})

	// Tile×tile with the smaller matrix broadcast whole and the larger
	// repartitioned by output column group, so aggregation stays local.
	MMTileTileBcast = register("mm-tile-tile-bcast", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.Tile || b.Format.Kind != format.Tile ||
				a.Format.Block != b.Format.Block {
				return Out{}, false
			}
			small, large := bytesOf(a), bytesOf(b)
			if small > large {
				small, large = large, small
			}
			tasks := tuplesOf(a) + tuplesOf(b)
			return Out{
				Format: format.NewTile(a.Format.Block),
				Features: costmodel.Features{
					FLOPs: costmodel.ParallelFLOPs(mmFlopsDense(a.Shape, b.Shape), cl.Workers, tasks),
					NetBytes: costmodel.BroadcastBytes(small, cl.Workers) +
						costmodel.ShuffleBytes(large, cl.Workers),
					Tuples: perWorker(float64(tasks), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(small+perWorker(denseOutBytes(outShape), cl.Workers), tupleBytes(a), tupleBytes(b)),
			}, true
		})

	// Broadcast single lhs against a tiled rhs repartitioned by tile
	// column; local sums produce column strips of the tile width.
	MMSingleTileBcast = register("mm-bcast-single-tile", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.Single || b.Format.Kind != format.Tile {
				return Out{}, false
			}
			tb := tuplesOf(b)
			return Out{
				Format: format.NewColStrip(b.Format.Block),
				Features: costmodel.Features{
					FLOPs: costmodel.ParallelFLOPs(mmFlopsDense(a.Shape, b.Shape), cl.Workers, tb),
					NetBytes: costmodel.BroadcastBytes(bytesOf(a), cl.Workers) +
						costmodel.ShuffleBytes(bytesOf(b), cl.Workers),
					Tuples: perWorker(float64(tb), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(bytesOf(a)+perWorker(denseOutBytes(outShape), cl.Workers), tupleBytes(b)),
			}, true
		})

	MMTileSingleBcast = register("mm-tile-bcast-single", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.Tile || b.Format.Kind != format.Single {
				return Out{}, false
			}
			ta := tuplesOf(a)
			return Out{
				Format: format.NewRowStrip(a.Format.Block),
				Features: costmodel.Features{
					FLOPs: costmodel.ParallelFLOPs(mmFlopsDense(a.Shape, b.Shape), cl.Workers, ta),
					NetBytes: costmodel.BroadcastBytes(bytesOf(b), cl.Workers) +
						costmodel.ShuffleBytes(bytesOf(a), cl.Workers),
					Tuples: perWorker(float64(ta), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(bytesOf(b)+perWorker(denseOutBytes(outShape), cl.Workers), tupleBytes(a)),
			}, true
		})

	MMCSRSingleSingle = register("mm-csr-single-single", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.CSRSingle || b.Format.Kind != format.Single {
				return Out{}, false
			}
			moved := bytesOf(a)
			if bytesOf(b) < moved {
				moved = bytesOf(b)
			}
			return Out{
				Format: format.NewSingle(),
				Features: costmodel.Features{
					FLOPs:    mmFlopsSparseLeft(a, b.Shape),
					NetBytes: moved,
					Tuples:   2,
				},
				PeakWorkerBytes: bytesOf(a) + bytesOf(b) + denseOutBytes(outShape),
			}, true
		})

	// Broadcast a sparse single-tuple lhs (cheap: only non-zeros move)
	// against row strips of the rhs; per-worker partial products are
	// tree-reduced into a single output. This is the plan that exploits
	// very sparse inputs in the Figure 12 experiments.
	MMCSRBcastRowStripAgg = register("mm-bcast-csr-rowstrip-agg", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.CSRSingle || b.Format.Kind != format.RowStrip {
				return Out{}, false
			}
			strips := tuplesOf(b)
			outB := denseOutBytes(outShape)
			return Out{
				Format: format.NewSingle(),
				Features: costmodel.Features{
					FLOPs: costmodel.ParallelFLOPs(mmFlopsSparseLeft(a, b.Shape)+outB/8,
						cl.Workers, strips),
					NetBytes: costmodel.BroadcastBytes(bytesOf(a), cl.Workers) +
						costmodel.AggregateBytes(outB, cl.Workers),
					InterBytes: perWorker(float64(minI64(strips, int64(cl.Workers)))*outB, cl.Workers),
					Tuples:     perWorker(float64(strips), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(bytesOf(a)+2*outB, tupleBytes(b)),
			}, true
		})

	MMCSRRowStripSingleBcast = register("mm-csr-rowstrip-bcast-single", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.CSRRowStrip || b.Format.Kind != format.Single {
				return Out{}, false
			}
			ta := tuplesOf(a)
			return Out{
				Format: format.NewRowStrip(a.Format.Block),
				Features: costmodel.Features{
					FLOPs:    costmodel.ParallelFLOPs(mmFlopsSparseLeft(a, b.Shape), cl.Workers, ta),
					NetBytes: costmodel.BroadcastBytes(bytesOf(b), cl.Workers),
					Tuples:   perWorker(float64(ta), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(bytesOf(b), tupleBytes(a)),
			}, true
		})

	// Relational-triple lhs broadcast against a single rhs; the per-triple
	// tuple overhead is what makes COO unattractive except as a load
	// format.
	MMCOOBcastSingle = register("mm-bcast-coo-single", op.MatMul,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.COO || b.Format.Kind != format.Single {
				return Out{}, false
			}
			ta := tuplesOf(a)
			return Out{
				Format: format.NewSingle(),
				Features: costmodel.Features{
					FLOPs: mmFlopsSparseLeft(a, b.Shape),
					NetBytes: costmodel.BroadcastBytes(bytesOf(b), cl.Workers) +
						costmodel.AggregateBytes(denseOutBytes(outShape), cl.Workers),
					Tuples: perWorker(float64(ta), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(bytesOf(b) + 2*denseOutBytes(outShape)),
			}, true
		})
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
