// Package impl defines the set I of atomic computation implementations
// (§3): concrete, costed strategies for executing an atomic computation
// over specific physical matrix implementations. The prototype ships the
// paper's 38 implementations (twelve distributed matrix-multiply
// strategies plus two extra sparse multiplies, three transposes, six
// elementwise-binary strategies, six format-preserving maps, and the
// softmax / bias / reduction / inverse family).
//
// Each implementation exposes the paper's type specification function
// f : (M×P)ⁿ → P ∪ {⊥} through Apply, which also returns the analytic
// cost features of §7 and the per-worker peak working set used for the
// memory-feasibility check (an implementation whose working set exceeds
// the cluster's RAM per worker returns ⊥, reproducing the paper's Fail
// entries).
package impl

import (
	"fmt"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// ID identifies an implementation; the engine dispatches physical
// operators on it.
type ID uint8

// Input is one (matrix type, physical implementation) argument.
type Input struct {
	Shape   shape.Shape
	Density float64 // non-zero fraction
	Format  format.Format
}

// Out is the result of applying an implementation's type specification
// function: the output physical format plus costing metadata.
type Out struct {
	Format          format.Format
	Features        costmodel.Features
	PeakWorkerBytes float64
}

// Impl is one atomic computation implementation.
type Impl struct {
	ID   ID
	Name string
	Op   op.Kind
	// apply implements f and the feature computation; it may assume the
	// arity and op kind were already checked.
	apply func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool)
}

func (im *Impl) String() string { return im.Name }

// Apply evaluates the implementation on the given inputs. ok is false
// (the paper's ⊥) when the implementation cannot process the input
// formats, when the output format cannot represent the output matrix, or
// when the per-worker working set exceeds the cluster's RAM.
func (im *Impl) Apply(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
	if o.Kind != im.Op || len(ins) != o.Arity() {
		return Out{}, false
	}
	for _, in := range ins {
		if !in.Format.Valid(in.Shape, in.Density, cl.MaxTupleBytes) {
			return Out{}, false
		}
	}
	out, ok := im.apply(o, ins, outShape, outDensity, cl)
	if !ok {
		return Out{}, false
	}
	if !out.Format.Valid(outShape, outDensity, cl.MaxTupleBytes) {
		return Out{}, false
	}
	if out.PeakWorkerBytes > float64(cl.RAMPerWorker) {
		return Out{}, false
	}
	return out, true
}

// Cost returns the model-predicted seconds for an already-validated Out.
func (im *Impl) Cost(m *costmodel.Model, out Out) float64 {
	return m.Predict(im.Name, out.Features)
}

// --- registry ---

var registry []*Impl
var byOp map[op.Kind][]*Impl

func register(name string, kind op.Kind,
	apply func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool)) *Impl {
	if byOp == nil {
		byOp = make(map[op.Kind][]*Impl)
	}
	im := &Impl{ID: ID(len(registry)), Name: name, Op: kind, apply: apply}
	registry = append(registry, im)
	byOp[kind] = append(byOp[kind], im)
	return im
}

// All returns every registered implementation.
func All() []*Impl { return registry }

// ForOp returns the implementations of one atomic computation.
func ForOp(k op.Kind) []*Impl { return byOp[k] }

// ByID returns the implementation with the given ID.
func ByID(id ID) *Impl {
	if int(id) >= len(registry) {
		panic(fmt.Sprintf("impl: unknown id %d", id))
	}
	return registry[id]
}

// ByName returns the implementation with the given name, or nil.
func ByName(name string) *Impl {
	for _, im := range registry {
		if im.Name == name {
			return im
		}
	}
	return nil
}

// --- shared feature helpers ---

func bytesOf(in Input) float64 {
	return float64(in.Format.Bytes(in.Shape, in.Density))
}

func tuplesOf(in Input) int64 {
	return in.Format.NumTuplesDensity(in.Shape, in.Density)
}

func perWorker(total float64, workers int) float64 { return total / float64(workers) }

// denseOutBytes is the dense materialized size of the output.
func denseOutBytes(s shape.Shape) float64 { return float64(s.Bytes()) }

// tupleBytes returns the largest tuple payload of an input.
func tupleBytes(in Input) float64 {
	return float64(in.Format.MaxTupleBytes(in.Shape, in.Density))
}

// streamPeak models the RAM footprint of a streaming (disk-backed,
// per-tuple) operator: resident structures (e.g. a broadcast matrix or
// an aggregation buffer) plus a handful of in-flight tuples.
func streamPeak(resident float64, tuples ...float64) float64 {
	peak := resident
	for _, t := range tuples {
		peak += 2 * t
	}
	return peak
}
