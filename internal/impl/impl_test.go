package impl

import (
	"testing"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

var cl10 = costmodel.EC2R5D(10)

func in(s shape.Shape, f format.Format) Input {
	return Input{Shape: s, Density: 1, Format: f}
}

func mustApply(t *testing.T, im *Impl, o op.Op, ins []Input) Out {
	t.Helper()
	outShape, ok := o.OutShape(shapesOf(ins))
	if !ok {
		t.Fatalf("%s: bad op shapes", im.Name)
	}
	outDen := o.OutDensity(shapesOf(ins), densOf(ins))
	out, ok := im.Apply(o, ins, outShape, outDen, cl10)
	if !ok {
		t.Fatalf("%s rejected inputs %v", im.Name, ins)
	}
	return out
}

func shapesOf(ins []Input) []shape.Shape {
	out := make([]shape.Shape, len(ins))
	for i, in := range ins {
		out[i] = in.Shape
	}
	return out
}

func densOf(ins []Input) []float64 {
	out := make([]float64, len(ins))
	for i, in := range ins {
		out[i] = in.Density
	}
	return out
}

func TestThirtyEightImplementations(t *testing.T) {
	if n := len(All()); n != 38 {
		t.Fatalf("registry has %d implementations, want 38 (paper §8.1)", n)
	}
	seen := map[string]bool{}
	for _, im := range All() {
		if seen[im.Name] {
			t.Errorf("duplicate implementation name %q", im.Name)
		}
		seen[im.Name] = true
		if ByID(im.ID) != im || ByName(im.Name) != im {
			t.Errorf("%s: registry lookup broken", im.Name)
		}
	}
	// Every atomic computation has at least one implementation.
	for _, k := range op.Kinds() {
		if len(ForOp(k)) == 0 {
			t.Errorf("no implementation for %v", k)
		}
	}
	if len(ForOp(op.MatMul)) != 13 {
		t.Errorf("matmul implementations = %d, want 13", len(ForOp(op.MatMul)))
	}
}

func TestApplyRejectsWrongOpAndArity(t *testing.T) {
	s := shape.New(100, 100)
	ins := []Input{in(s, format.NewSingle()), in(s, format.NewSingle())}
	if _, ok := MMSingleSingle.Apply(op.Op{Kind: op.Add}, ins, s, 1, cl10); ok {
		t.Error("matmul impl accepted an add op")
	}
	if _, ok := MMSingleSingle.Apply(op.Op{Kind: op.MatMul}, ins[:1], s, 1, cl10); ok {
		t.Error("binary impl accepted one input")
	}
}

func TestMMSingleSingle(t *testing.T) {
	a := in(shape.New(100, 200), format.NewSingle())
	b := in(shape.New(200, 50), format.NewSingle())
	out := mustApply(t, MMSingleSingle, op.Op{Kind: op.MatMul}, []Input{a, b})
	if out.Format.Kind != format.Single {
		t.Errorf("output format %v", out.Format)
	}
	if want := 2.0 * 100 * 200 * 50; out.Features.FLOPs != want {
		t.Errorf("FLOPs = %v, want %v", out.Features.FLOPs, want)
	}
	// The smaller operand (b: 80KB) moves.
	if out.Features.NetBytes != 200*50*8 {
		t.Errorf("NetBytes = %v", out.Features.NetBytes)
	}
}

func TestMMRejectsMismatchedFormats(t *testing.T) {
	a := in(shape.New(100, 200), format.NewTile(100))
	b := in(shape.New(200, 50), format.NewSingle())
	o := op.Op{Kind: op.MatMul}
	if _, ok := MMSingleSingle.Apply(o, []Input{a, b}, shape.New(100, 50), 1, cl10); ok {
		t.Error("mm-single-single accepted a tiled input")
	}
	// Tile sizes must match for the tile×tile strategies.
	c := in(shape.New(100, 200), format.NewTile(100))
	d := in(shape.New(200, 50), format.NewTile(50))
	if _, ok := MMTileTileShuffle.Apply(o, []Input{c, d}, shape.New(100, 50), 1, cl10); ok {
		t.Error("tile shuffle accepted mismatched tile sizes")
	}
	// Strip extents must match for rowstrip×colstrip.
	e := in(shape.New(1000, 200), format.NewRowStrip(100))
	f := in(shape.New(200, 1000), format.NewColStrip(1000))
	if _, ok := MMRowStripColStrip.Apply(o, []Input{e, f}, shape.New(1000, 1000), 1, cl10); ok {
		t.Error("rowstrip×colstrip accepted mismatched extents")
	}
}

func TestMMRowStripColStripOutputsTiles(t *testing.T) {
	a := in(shape.New(1000, 5000), format.NewRowStrip(100))
	b := in(shape.New(5000, 1000), format.NewColStrip(100))
	out := mustApply(t, MMRowStripColStrip, op.Op{Kind: op.MatMul}, []Input{a, b})
	if out.Format != format.NewTile(100) {
		t.Errorf("output format = %v, want tile[100]", out.Format)
	}
}

func TestMMColStripRowStripAggOutputsSingle(t *testing.T) {
	a := in(shape.New(100, 10000), format.NewColStrip(1000))
	b := in(shape.New(10000, 100), format.NewRowStrip(1000))
	out := mustApply(t, MMColStripRowStripAgg, op.Op{Kind: op.MatMul}, []Input{a, b})
	if out.Format.Kind != format.Single {
		t.Errorf("output format = %v, want single", out.Format)
	}
	if out.Features.InterBytes <= 0 {
		t.Error("partial-product intermediate bytes must be positive")
	}
}

func TestTileShuffleIntermediateGrowsWithInnerDim(t *testing.T) {
	o := op.Op{Kind: op.MatMul}
	mk := func(k int64) Out {
		a := in(shape.New(10000, k), format.NewTile(1000))
		b := in(shape.New(k, 10000), format.NewTile(1000))
		return mustApply(t, MMTileTileShuffle, o, []Input{a, b})
	}
	small, large := mk(10000), mk(60000)
	if large.Features.InterBytes <= small.Features.InterBytes {
		t.Error("intermediate bytes must grow with the inner dimension")
	}
}

// The paper's Fail entries: the all-tile FFNN at hidden=160K dies from
// the shuffle join's materialized product tiles on small clusters but
// fits on larger ones (Figure 7). The per-operator scratch bound that
// enforces this lives in the simulator; here we check the intermediate
// volume straddles the bound at the paper's cluster sizes.
func TestTileShuffleIntermediateStraddlesScratchBound(t *testing.T) {
	o := op.Op{Kind: op.MatMul}
	a1 := shape.New(10000, 160000)
	w2 := shape.New(160000, 160000)
	inter := func(workers int) float64 {
		cl := costmodel.EC2R5D(workers)
		a := Input{Shape: a1, Density: 1, Format: format.NewTile(1000)}
		b := Input{Shape: w2, Density: 1, Format: format.NewTile(1000)}
		outShape, _ := o.OutShape([]shape.Shape{a1, w2})
		out, ok := MMTileTileShuffle.Apply(o, []Input{a, b}, outShape, 1, cl)
		if !ok {
			t.Fatalf("tile shuffle rejected at %d workers", workers)
		}
		return out.Features.InterBytes
	}
	scratch := float64(costmodel.EC2R5D(10).ScratchPerWorker)
	if inter(10) <= scratch {
		t.Error("at 10 workers the Z2 shuffle must overflow scratch (paper: Fail)")
	}
	if inter(20) > scratch {
		t.Error("at 20 workers the Z2 shuffle must fit scratch (paper: runs)")
	}
}

func TestBroadcastImplsChargeBroadcast(t *testing.T) {
	small := in(shape.New(100, 100), format.NewSingle())
	strips := in(shape.New(100, 1000000), format.NewColStrip(10000))
	out := mustApply(t, MMSingleColStripBcast, op.Op{Kind: op.MatMul}, []Input{small, strips})
	if out.Format != format.NewColStrip(10000) {
		t.Errorf("format = %v", out.Format)
	}
	wantNet := costmodel.BroadcastBytes(100*100*8, cl10.Workers)
	if out.Features.NetBytes != wantNet {
		t.Errorf("NetBytes = %v, want %v", out.Features.NetBytes, wantNet)
	}
}

func TestSparseMultipliesUseNNZFlops(t *testing.T) {
	s := shape.New(10000, 597540)
	w := shape.New(597540, 4000)
	a := Input{Shape: s, Density: 1.7e-4, Format: format.NewCSRSingle()}
	b := Input{Shape: w, Density: 1, Format: format.NewRowStrip(1000)}
	o := op.Op{Kind: op.MatMul}
	outShape, _ := o.OutShape([]shape.Shape{s, w})
	out, ok := MMCSRBcastRowStripAgg.Apply(o, []Input{a, b}, outShape, 1, cl10)
	if !ok {
		t.Fatal("sparse broadcast multiply rejected")
	}
	denseFlops := 2.0 * 10000 * 597540 * 4000
	if out.Features.FLOPs > denseFlops/100 {
		t.Errorf("sparse FLOPs %v not ≪ dense %v", out.Features.FLOPs, denseFlops)
	}
	// The network cost (sparse broadcast + output reduction) must be far
	// below moving the dense input matrix (≈48 GB).
	if out.Features.NetBytes > 2e9 {
		t.Errorf("sparse plan moves %v bytes", out.Features.NetBytes)
	}
	bcast := costmodel.BroadcastBytes(float64(a.Format.Bytes(a.Shape, a.Density)), cl10.Workers)
	if bcast > 1e8 {
		t.Errorf("broadcasting the sparse matrix costs %v bytes, want tiny", bcast)
	}
}

func TestElementwiseImpls(t *testing.T) {
	s := shape.New(2000, 2000)
	o := op.Op{Kind: op.Add}
	single := []Input{in(s, format.NewSingle()), in(s, format.NewSingle())}
	out := mustApply(t, AddSingle, o, single)
	if out.Format.Kind != format.Single || out.Features.FLOPs != float64(s.Elems()) {
		t.Errorf("add-single out = %+v", out)
	}
	tiles := []Input{in(s, format.NewTile(1000)), in(s, format.NewTile(1000))}
	out = mustApply(t, AddCoPart, o, tiles)
	if out.Format != format.NewTile(1000) {
		t.Errorf("add-copart format = %v", out.Format)
	}
	mixed := []Input{in(s, format.NewTile(1000)), in(s, format.NewTile(500))}
	if _, ok := AddCoPart.Apply(o, mixed, s, 1, cl10); ok {
		t.Error("co-partition add accepted mismatched formats")
	}
	if _, ok := AddCoPart.Apply(o, single, s, 1, cl10); ok {
		t.Error("co-partition add accepted single formats (use add-single)")
	}
}

func TestMapImplsPreserveFormat(t *testing.T) {
	s := shape.New(3000, 3000)
	for _, f := range []format.Format{format.NewSingle(), format.NewTile(1000), format.NewRowStrip(1000), format.NewColStrip(1000)} {
		out := mustApply(t, ReLUMap, op.Op{Kind: op.ReLU}, []Input{in(s, f)})
		if out.Format != f {
			t.Errorf("relu on %v changed format to %v", f, out.Format)
		}
	}
	// Zero-preserving maps accept sparse inputs; sigmoid must not.
	sp := Input{Shape: s, Density: 0.01, Format: format.NewCSRSingle()}
	if _, ok := ReLUMap.Apply(op.Op{Kind: op.ReLU}, []Input{sp}, s, 0.01, cl10); !ok {
		t.Error("relu rejected a sparse input")
	}
	if _, ok := SigmoidMap.Apply(op.Op{Kind: op.Sigmoid}, []Input{sp}, s, 1, cl10); ok {
		t.Error("sigmoid accepted a sparse input (its output is dense)")
	}
}

func TestSoftmaxNeedsWholeRows(t *testing.T) {
	s := shape.New(10000, 17)
	o := op.Op{Kind: op.Softmax}
	if _, ok := SoftmaxSingle.Apply(o, []Input{in(s, format.NewSingle())}, s, 1, cl10); !ok {
		t.Error("softmax-single rejected")
	}
	if _, ok := SoftmaxRowStrip.Apply(o, []Input{in(s, format.NewRowStrip(1000))}, s, 1, cl10); !ok {
		t.Error("softmax-rowstrip rejected")
	}
	if _, ok := SoftmaxRowStrip.Apply(o, []Input{in(shape.New(10000, 10000), format.NewColStrip(1000))}, shape.New(10000, 10000), 1, cl10); ok {
		t.Error("softmax accepted column strips (rows are split)")
	}
}

func TestTransposeImpls(t *testing.T) {
	s := shape.New(4000, 2000)
	o := op.Op{Kind: op.Transpose}
	out := mustApply(t, TransposeStripImpl, o, []Input{in(s, format.NewRowStrip(1000))})
	if out.Format != format.NewColStrip(1000) {
		t.Errorf("transpose rowstrip → %v, want colstrip[1000]", out.Format)
	}
	out = mustApply(t, TransposeStripImpl, o, []Input{in(s, format.NewColStrip(1000))})
	if out.Format != format.NewRowStrip(1000) {
		t.Errorf("transpose colstrip → %v, want rowstrip[1000]", out.Format)
	}
	out = mustApply(t, TransposeTileImpl, o, []Input{in(s, format.NewTile(1000))})
	if out.Format != format.NewTile(1000) {
		t.Errorf("transpose tile → %v", out.Format)
	}
	if out.Features.NetBytes == 0 {
		t.Error("tile transpose must shuffle")
	}
}

func TestReductionsAndInverse(t *testing.T) {
	s := shape.New(8000, 4000)
	out := mustApply(t, RowSumsRowStripImpl, op.Op{Kind: op.RowSums}, []Input{in(s, format.NewRowStrip(1000))})
	if out.Format != format.NewRowStrip(1000) {
		t.Errorf("rowsums format = %v", out.Format)
	}
	out = mustApply(t, ColSumsColStripImpl, op.Op{Kind: op.ColSums}, []Input{in(s, format.NewColStrip(1000))})
	if out.Format != format.NewColStrip(1000) {
		t.Errorf("colsums format = %v", out.Format)
	}
	sq := shape.New(2000, 2000)
	out = mustApply(t, InverseSingleImpl, op.Op{Kind: op.Inverse}, []Input{in(sq, format.NewSingle())})
	if want := 2.0 * 2000 * 2000 * 2000; out.Features.FLOPs != want {
		t.Errorf("inverse FLOPs = %v, want %v", out.Features.FLOPs, want)
	}
}

func TestOutputFormatValidityEnforced(t *testing.T) {
	// A single×single multiply whose output exceeds the tuple bound must
	// be rejected even though the inputs fit.
	a := in(shape.New(20000, 100), format.NewSingle())   // 16 MB
	b := in(shape.New(100, 1000000), format.NewSingle()) // 800 MB
	o := op.Op{Kind: op.MatMul}
	outShape, _ := o.OutShape([]shape.Shape{a.Shape, b.Shape}) // 20000×1e6 = 160 GB
	if _, ok := MMSingleSingle.Apply(o, []Input{a, b}, outShape, 1, cl10); ok {
		t.Error("a 160GB single-tuple output must be rejected")
	}
}

func TestCostUsesModel(t *testing.T) {
	m := costmodel.NewModel(cl10)
	a := in(shape.New(100, 100), format.NewSingle())
	b := in(shape.New(100, 100), format.NewSingle())
	out := mustApply(t, MMSingleSingle, op.Op{Kind: op.MatMul}, []Input{a, b})
	got := MMSingleSingle.Cost(m, out)
	if got <= 0 {
		t.Fatalf("cost = %v", got)
	}
	m.PerKey[MMSingleSingle.Name] = costmodel.Coeffs{Base: 7}
	if got := MMSingleSingle.Cost(m, out); got != 7 {
		t.Fatalf("per-key cost = %v", got)
	}
}
