package impl

import (
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// Exported handles for the map / softmax / bias implementations.
var (
	ReLUMap, ReLUGradMap, SigmoidMap, ExpMap, NegMap, ScalarMulMap *Impl
	SoftmaxSingle, SoftmaxRowStrip                                 *Impl
	AddBiasSingle, AddBiasRowStripBcast                            *Impl
)

// mapApply builds a format-preserving per-tuple map. Zero-preserving maps
// also accept sparse formats (they keep the stored non-zero set).
func mapApply(flopsPerElem float64, zeroPreserving bool) func(op.Op, []Input, shape.Shape, float64, costmodel.Cluster) (Out, bool) {
	return func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
		a := ins[0]
		if a.Format.IsSparse() && !zeroPreserving {
			return Out{}, false
		}
		t := tuplesOf(a)
		elems := float64(a.Shape.Elems())
		if a.Format.IsSparse() {
			elems *= a.Density
		}
		return Out{
			Format: a.Format,
			Features: costmodel.Features{
				FLOPs:  costmodel.ParallelFLOPs(flopsPerElem*elems, cl.Workers, t),
				Tuples: perWorker(float64(t), cl.Workers),
			},
			PeakWorkerBytes: streamPeak(0, tupleBytes(a)),
		}, true
	}
}

// softmaxApply requires whole rows inside each tuple, so it is defined on
// the single and row-strip layouts.
func softmaxApply(want format.Kind) func(op.Op, []Input, shape.Shape, float64, costmodel.Cluster) (Out, bool) {
	return func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
		a := ins[0]
		if a.Format.Kind != want {
			return Out{}, false
		}
		t := tuplesOf(a)
		return Out{
			Format: a.Format,
			Features: costmodel.Features{
				// exp + shift + normalize ≈ 5 flops per entry.
				FLOPs:  costmodel.ParallelFLOPs(5*float64(a.Shape.Elems()), cl.Workers, t),
				Tuples: perWorker(float64(t), cl.Workers),
			},
			PeakWorkerBytes: streamPeak(0, tupleBytes(a)),
		}, true
	}
}

func init() {
	ReLUMap = register("relu-map", op.ReLU, mapApply(1, true))
	ReLUGradMap = register("relugrad-map", op.ReLUGrad, mapApply(1, true))
	SigmoidMap = register("sigmoid-map", op.Sigmoid, mapApply(4, false))
	ExpMap = register("exp-map", op.Exp, mapApply(3, false))
	NegMap = register("neg-map", op.Neg, mapApply(1, true))
	ScalarMulMap = register("scalarmul-map", op.ScalarMul, mapApply(1, true))

	SoftmaxSingle = register("softmax-single", op.Softmax, softmaxApply(format.Single))
	SoftmaxRowStrip = register("softmax-rowstrip", op.Softmax, softmaxApply(format.RowStrip))

	AddBiasSingle = register("addbias-single", op.AddBias,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.Single || b.Format.Kind != format.Single {
				return Out{}, false
			}
			return Out{
				Format: format.NewSingle(),
				Features: costmodel.Features{
					FLOPs:    float64(outShape.Elems()),
					NetBytes: bytesOf(b),
					Tuples:   2,
				},
				PeakWorkerBytes: bytesOf(a) + bytesOf(b) + denseOutBytes(outShape),
			}, true
		})

	// Row strips keep whole rows, so broadcasting the (single-tuple) bias
	// vector and mapping per strip needs no joins on matrix content.
	AddBiasRowStripBcast = register("addbias-rowstrip-bcast", op.AddBias,
		func(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
			a, b := ins[0], ins[1]
			if a.Format.Kind != format.RowStrip || b.Format.Kind != format.Single {
				return Out{}, false
			}
			t := tuplesOf(a)
			return Out{
				Format: a.Format,
				Features: costmodel.Features{
					FLOPs:    costmodel.ParallelFLOPs(float64(outShape.Elems()), cl.Workers, t),
					NetBytes: costmodel.BroadcastBytes(bytesOf(b), cl.Workers),
					Tuples:   perWorker(float64(t), cl.Workers),
				},
				PeakWorkerBytes: streamPeak(bytesOf(b), tupleBytes(a)),
			}, true
		})
}
