package impl

import (
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// Exported handles for the elementwise-binary implementations.
var (
	AddSingle, SubSingle, HadSingle *Impl
	AddCoPart, SubCoPart, HadCoPart *Impl
)

// ewSingle handles Single ∘ Single → Single for Add/Sub/Hadamard.
func ewSingle(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
	a, b := ins[0], ins[1]
	if a.Format.Kind != format.Single || b.Format.Kind != format.Single {
		return Out{}, false
	}
	moved := bytesOf(a)
	if bytesOf(b) < moved {
		moved = bytesOf(b)
	}
	return Out{
		Format: format.NewSingle(),
		Features: costmodel.Features{
			FLOPs:    float64(outShape.Elems()),
			NetBytes: moved,
			Tuples:   2,
		},
		PeakWorkerBytes: bytesOf(a) + bytesOf(b) + denseOutBytes(outShape),
	}, true
}

// ewCoPartition handles chunked dense formats: both inputs must share the
// same format, so the join on chunk keys is a co-partitioned (pipelined)
// join — at worst one side is re-shuffled to align partitions.
func ewCoPartition(o op.Op, ins []Input, outShape shape.Shape, outDensity float64, cl costmodel.Cluster) (Out, bool) {
	a, b := ins[0], ins[1]
	if a.Format != b.Format || a.Format.IsSparse() || a.Format.Kind == format.Single {
		return Out{}, false
	}
	t := tuplesOf(a)
	moved := bytesOf(a)
	if bytesOf(b) < moved {
		moved = bytesOf(b)
	}
	return Out{
		Format: a.Format,
		Features: costmodel.Features{
			FLOPs:    costmodel.ParallelFLOPs(float64(outShape.Elems()), cl.Workers, t),
			NetBytes: costmodel.ShuffleBytes(moved, cl.Workers),
			Tuples:   perWorker(float64(2*t), cl.Workers),
		},
		PeakWorkerBytes: streamPeak(0, tupleBytes(a), tupleBytes(b)),
	}, true
}

func init() {
	AddSingle = register("add-single", op.Add, ewSingle)
	SubSingle = register("sub-single", op.Sub, ewSingle)
	HadSingle = register("hadamard-single", op.Hadamard, ewSingle)
	AddCoPart = register("add-copart", op.Add, ewCoPartition)
	SubCoPart = register("sub-copart", op.Sub, ewCoPartition)
	HadCoPart = register("hadamard-copart", op.Hadamard, ewCoPartition)
}
