package impl

import (
	"testing"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// TestImplementationInvariantSweep drives every implementation over a
// grid of shapes and format combinations and checks the invariants any
// accepted application must satisfy: non-negative features, a positive
// peak working set, and an output format that can store the output
// matrix. This exercises the accept/reject logic of all 38
// implementations systematically.
func TestImplementationInvariantSweep(t *testing.T) {
	cl := costmodel.EC2R5D(7)
	formats := []format.Format{
		format.NewSingle(), format.NewTile(100), format.NewTile(1000),
		format.NewRowStrip(100), format.NewRowStrip(1000),
		format.NewColStrip(100), format.NewColStrip(1000),
		format.NewCOO(), format.NewCSRSingle(), format.NewCSRRowStrip(1000),
	}
	shapes := []struct{ r, k, c int64 }{
		{100, 100, 100},
		{2000, 3000, 1000},
		{10000, 17, 10000},
		{1, 5000, 1},
		{1000, 1, 4000},
	}
	densities := []float64{1, 0.01}

	accepted := 0
	for _, im := range All() {
		o := op.Op{Kind: im.Op}
		if im.Op == op.ScalarMul {
			o.Scalar = 0.5
		}
		for _, sh := range shapes {
			for _, d := range densities {
				var inShapes []shape.Shape
				switch {
				case im.Op == op.MatMul:
					inShapes = []shape.Shape{shape.New(sh.r, sh.k), shape.New(sh.k, sh.c)}
				case im.Op == op.AddBias:
					inShapes = []shape.Shape{shape.New(sh.r, sh.k), shape.New(1, sh.k)}
				case im.Op == op.Inverse:
					inShapes = []shape.Shape{shape.New(sh.r, sh.r)}
				case o.Arity() == 2:
					inShapes = []shape.Shape{shape.New(sh.r, sh.k), shape.New(sh.r, sh.k)}
				default:
					inShapes = []shape.Shape{shape.New(sh.r, sh.k)}
				}
				outShape, okShape := o.OutShape(inShapes)
				if !okShape {
					continue
				}
				dens := make([]float64, len(inShapes))
				for i := range dens {
					dens[i] = d
				}
				outDen := o.OutDensity(inShapes, dens)

				var tryCombos func(j int, ins []Input)
				tryCombos = func(j int, ins []Input) {
					if j == len(inShapes) {
						out, ok := im.Apply(o, ins, outShape, outDen, cl)
						if !ok {
							return
						}
						accepted++
						f := out.Features
						if f.FLOPs < 0 || f.NetBytes < 0 || f.InterBytes < 0 || f.Tuples < 0 {
							t.Errorf("%s on %v: negative features %+v", im.Name, ins, f)
						}
						if out.PeakWorkerBytes <= 0 {
							t.Errorf("%s on %v: non-positive peak %v", im.Name, ins, out.PeakWorkerBytes)
						}
						if !out.Format.Valid(outShape, outDen, cl.MaxTupleBytes) {
							t.Errorf("%s on %v: invalid output format %v for %v",
								im.Name, ins, out.Format, outShape)
						}
						if c := im.Cost(costmodel.NewModel(cl), out); c <= 0 {
							t.Errorf("%s: non-positive cost %v", im.Name, c)
						}
						return
					}
					for _, fm := range formats {
						ins[j] = Input{Shape: inShapes[j], Density: d, Format: fm}
						tryCombos(j+1, ins)
					}
				}
				tryCombos(0, make([]Input, len(inShapes)))
			}
		}
	}
	if accepted < 200 {
		t.Fatalf("sweep accepted only %d applications; the grid should exercise far more", accepted)
	}
}

// TestEveryImplAcceptsSomething guards against dead registry entries: an
// implementation nothing can ever invoke would silently rot.
func TestEveryImplAcceptsSomething(t *testing.T) {
	cl := costmodel.EC2R5D(7)
	formats := []format.Format{
		format.NewSingle(), format.NewTile(100), format.NewTile(1000),
		format.NewRowStrip(100), format.NewRowStrip(1000),
		format.NewColStrip(100), format.NewColStrip(1000),
		format.NewCOO(), format.NewCSRSingle(), format.NewCSRRowStrip(1000),
	}
	for _, im := range All() {
		o := op.Op{Kind: im.Op}
		if im.Op == op.ScalarMul {
			o.Scalar = 2
		}
		found := false
		shapesToTry := []struct{ r, k, c int64 }{
			{2000, 3000, 1000}, {100, 100, 100}, {10000, 2000, 500},
		}
	search:
		for _, sh := range shapesToTry {
			var inShapes []shape.Shape
			switch {
			case im.Op == op.MatMul:
				inShapes = []shape.Shape{shape.New(sh.r, sh.k), shape.New(sh.k, sh.c)}
			case im.Op == op.AddBias:
				inShapes = []shape.Shape{shape.New(sh.r, sh.k), shape.New(1, sh.k)}
			case im.Op == op.Inverse:
				inShapes = []shape.Shape{shape.New(sh.r, sh.r)}
			case o.Arity() == 2:
				inShapes = []shape.Shape{shape.New(sh.r, sh.k), shape.New(sh.r, sh.k)}
			default:
				inShapes = []shape.Shape{shape.New(sh.r, sh.k)}
			}
			outShape, okShape := o.OutShape(inShapes)
			if !okShape {
				continue
			}
			for _, d := range []float64{1, 0.001} {
				dens := make([]float64, len(inShapes))
				for i := range dens {
					dens[i] = d
				}
				outDen := o.OutDensity(inShapes, dens)
				var rec func(j int, ins []Input) bool
				rec = func(j int, ins []Input) bool {
					if j == len(inShapes) {
						_, ok := im.Apply(o, ins, outShape, outDen, cl)
						return ok
					}
					for _, fm := range formats {
						ins[j] = Input{Shape: inShapes[j], Density: d, Format: fm}
						if rec(j+1, ins) {
							return true
						}
					}
					return false
				}
				if rec(0, make([]Input, len(inShapes))) {
					found = true
					break search
				}
			}
		}
		if !found {
			t.Errorf("%s: no input combination in the grid is accepted (dead implementation?)", im.Name)
		}
	}
}
