package op

import (
	"testing"

	"matopt/internal/shape"
)

func TestSixteenKinds(t *testing.T) {
	if n := len(Kinds()); n != 16 {
		t.Fatalf("Kinds() has %d atomic computations, want 16 (paper §8.1)", n)
	}
	seen := map[string]bool{}
	for _, k := range Kinds() {
		if seen[k.String()] {
			t.Errorf("duplicate kind name %q", k)
		}
		seen[k.String()] = true
	}
}

func TestArity(t *testing.T) {
	binary := map[Kind]bool{MatMul: true, Add: true, Sub: true, Hadamard: true, AddBias: true}
	for _, k := range Kinds() {
		want := 1
		if binary[k] {
			want = 2
		}
		if got := (Op{Kind: k}).Arity(); got != want {
			t.Errorf("%v arity = %d, want %d", k, got, want)
		}
	}
}

func TestOutShape(t *testing.T) {
	s53 := shape.New(5, 3)
	s34 := shape.New(3, 4)
	cases := []struct {
		o    Op
		ins  []shape.Shape
		want shape.Shape
		ok   bool
	}{
		{Op{Kind: MatMul}, []shape.Shape{s53, s34}, shape.New(5, 4), true},
		{Op{Kind: MatMul}, []shape.Shape{s53, s53}, shape.Zero, false},
		{Op{Kind: Add}, []shape.Shape{s53, s53}, s53, true},
		{Op{Kind: Add}, []shape.Shape{s53, s34}, shape.Zero, false},
		{Op{Kind: Transpose}, []shape.Shape{s53}, shape.New(3, 5), true},
		{Op{Kind: ReLU}, []shape.Shape{s53}, s53, true},
		{Op{Kind: Softmax}, []shape.Shape{s53}, s53, true},
		{Op{Kind: RowSums}, []shape.Shape{s53}, shape.New(5, 1), true},
		{Op{Kind: ColSums}, []shape.Shape{s53}, shape.New(1, 3), true},
		{Op{Kind: AddBias}, []shape.Shape{s53, shape.New(1, 3)}, s53, true},
		{Op{Kind: AddBias}, []shape.Shape{s53, shape.New(1, 4)}, shape.Zero, false},
		{Op{Kind: AddBias}, []shape.Shape{s53, shape.New(3, 1)}, shape.Zero, false},
		{Op{Kind: Inverse}, []shape.Shape{shape.New(4, 4)}, shape.New(4, 4), true},
		{Op{Kind: Inverse}, []shape.Shape{s53}, shape.Zero, false},
		{Op{Kind: MatMul}, []shape.Shape{s53}, shape.Zero, false}, // wrong arity
	}
	for _, c := range cases {
		got, ok := c.o.OutShape(c.ins)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("%v.OutShape(%v) = %v,%v want %v,%v", c.o, c.ins, got, ok, c.want, c.ok)
		}
	}
}

func TestOutDensity(t *testing.T) {
	s := shape.New(100, 100)
	dense := []float64{1, 1}
	if d := (Op{Kind: MatMul}).OutDensity([]shape.Shape{s, s}, dense); d != 1 {
		t.Errorf("dense matmul density = %v", d)
	}
	sp := (Op{Kind: MatMul}).OutDensity([]shape.Shape{s, s}, []float64{1e-4, 1e-4})
	if sp <= 0 || sp > 1e-4*1e-4*100*2 {
		t.Errorf("sparse matmul density = %v, want ≈ da·db·k = 1e-6", sp)
	}
	if d := (Op{Kind: Add}).OutDensity([]shape.Shape{s, s}, []float64{0.7, 0.8}); d != 1 {
		t.Errorf("add density clamps to 1, got %v", d)
	}
	if d := (Op{Kind: Hadamard}).OutDensity([]shape.Shape{s, s}, []float64{0.5, 0.5}); d != 0.25 {
		t.Errorf("hadamard density = %v", d)
	}
	if d := (Op{Kind: ScalarMul, Scalar: 0}).OutDensity([]shape.Shape{s}, []float64{0.5}); d != 0 {
		t.Errorf("scalarmul by 0 density = %v", d)
	}
	if d := (Op{Kind: Sigmoid}).OutDensity([]shape.Shape{s}, []float64{0.1}); d != 1 {
		t.Errorf("sigmoid output must be dense, got %v", d)
	}
	if d := (Op{Kind: Transpose}).OutDensity([]shape.Shape{s}, []float64{0.3}); d != 0.3 {
		t.Errorf("transpose density = %v", d)
	}
}

func TestScalarMulString(t *testing.T) {
	if got := (Op{Kind: ScalarMul, Scalar: 2.5}).String(); got != "scalarmul(2.5)" {
		t.Errorf("String = %q", got)
	}
	if got := (Op{Kind: MatMul}).String(); got != "matmul" {
		t.Errorf("String = %q", got)
	}
}
