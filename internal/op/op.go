// Package op defines the set A of atomic computations (§3): abstract,
// implementation-free operations over matrices, each with an input arity
// and a type specification function f : Mⁿ → M ∪ {⊥}. The prototype
// ships the paper's 16 atomic computations.
package op

import (
	"fmt"

	"matopt/internal/shape"
	"matopt/internal/sparse"
)

// Kind identifies an atomic computation.
type Kind uint8

const (
	MatMul Kind = iota
	Add
	Sub
	Hadamard
	Transpose
	ScalarMul
	Neg
	ReLU
	ReLUGrad
	Sigmoid
	Exp
	Softmax
	RowSums
	ColSums
	AddBias
	Inverse
	numKinds
)

var kindNames = [numKinds]string{
	"matmul", "add", "sub", "hadamard", "transpose", "scalarmul", "neg",
	"relu", "relugrad", "sigmoid", "exp", "softmax", "rowsums", "colsums",
	"addbias", "inverse",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Kinds returns all 16 atomic computations.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Op is an atomic computation instance. ScalarMul carries its scalar;
// all other kinds ignore Scalar.
type Op struct {
	Kind   Kind
	Scalar float64
}

func (o Op) String() string {
	if o.Kind == ScalarMul {
		return fmt.Sprintf("scalarmul(%g)", o.Scalar)
	}
	return o.Kind.String()
}

// Arity returns the number of inputs.
func (o Op) Arity() int {
	switch o.Kind {
	case MatMul, Add, Sub, Hadamard, AddBias:
		return 2
	default:
		return 1
	}
}

// OutShape is the type specification function f : Mⁿ → M ∪ {⊥}; the
// second return is false for ⊥.
func (o Op) OutShape(ins []shape.Shape) (shape.Shape, bool) {
	if len(ins) != o.Arity() {
		return shape.Zero, false
	}
	switch o.Kind {
	case MatMul:
		return shape.MatMul(ins[0], ins[1])
	case Add, Sub, Hadamard:
		return shape.Elementwise(ins[0], ins[1])
	case Transpose:
		return ins[0].T(), true
	case ScalarMul, Neg, ReLU, ReLUGrad, Sigmoid, Exp, Softmax:
		return ins[0], true
	case RowSums:
		return shape.New(ins[0].Rows, 1), true
	case ColSums:
		return shape.New(1, ins[0].Cols), true
	case AddBias:
		if ins[1].Rows != 1 || ins[1].Cols != ins[0].Cols {
			return shape.Zero, false
		}
		return ins[0], true
	case Inverse:
		if !ins[0].IsSquare() {
			return shape.Zero, false
		}
		return ins[0], true
	}
	return shape.Zero, false
}

// OutDensity propagates the non-zero fraction through the computation
// under the standard independence assumptions (§7 notes the paper's
// prototype tracks density for cost prediction; intermediate-chain
// estimation via MNC sketches is future work there and here).
func (o Op) OutDensity(ins []shape.Shape, densities []float64) float64 {
	clamp := func(d float64) float64 {
		if d < 0 {
			return 0
		}
		if d > 1 {
			return 1
		}
		return d
	}
	switch o.Kind {
	case MatMul:
		return sparse.EstimateMatMulDensity(densities[0], densities[1], ins[0].Cols)
	case Add, Sub:
		return clamp(densities[0] + densities[1])
	case Hadamard:
		return clamp(densities[0] * densities[1])
	case Transpose, ReLU, ReLUGrad, Neg:
		return clamp(densities[0])
	case ScalarMul:
		if o.Scalar == 0 {
			return 0
		}
		return clamp(densities[0])
	case Sigmoid, Exp, Softmax, Inverse:
		return 1 // these produce (numerically) dense output
	case RowSums, ColSums:
		// A sum entry is non-zero unless its whole slab is zero.
		k := ins[0].Cols
		if o.Kind == ColSums {
			k = ins[0].Rows
		}
		return clamp(densities[0] * float64(k))
	case AddBias:
		return clamp(densities[0] + densities[1])
	}
	return 1
}
