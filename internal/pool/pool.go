// Package pool provides the process-wide, GOMAXPROCS-bounded worker
// pool that every local compute kernel shares. The kernels in
// internal/tensor and internal/sparse split their row (or element)
// ranges into contiguous chunks and run the chunks here; the dist
// runtime's shards, the serving layer's request workers and the
// optimizer's Frontier search all execute kernels concurrently, so one
// shared pool is what keeps the process's total kernel threads bounded
// by the hardware instead of multiplying across layers.
//
// Two properties make the pool safe to call from anywhere:
//
//   - Submission never blocks. A chunk is handed to a worker only if one
//     is idle at that instant; otherwise the caller runs the chunk
//     inline. Nested or concurrent parallel sections therefore cannot
//     deadlock and cannot oversubscribe the machine — at most Workers()
//     chunks run on pool goroutines, and every caller contributes its
//     own thread.
//
//   - Chunk boundaries are a pure function of (threads, n, grain). Which
//     goroutine runs a chunk varies run to run; what each chunk covers
//     never does. Combined with the kernels' row-partitioned
//     accumulation this is what keeps parallel kernels bit-identical to
//     their serial counterparts (see KERNELS.md).
package pool

import (
	"runtime"
	"sync"
)

// Pool is a fixed set of worker goroutines that execute chunks of
// parallel-for loops. The zero value is not usable; construct with New.
// A nil *Pool is valid and runs everything on the caller.
type Pool struct {
	tasks chan func()
	quit  chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	workers int
	closed  bool
}

// New starts a pool with the given number of worker goroutines.
// Negative counts are clamped to zero; a zero-worker pool is valid and
// runs every chunk on the caller.
func New(workers int) *Pool {
	if workers < 0 {
		workers = 0
	}
	p := &Pool{
		tasks:   make(chan func()),
		quit:    make(chan struct{}),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case fn := <-p.tasks:
					fn()
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

// Workers returns the number of worker goroutines the pool started
// with (0 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Close shuts the pool down and waits for every worker goroutine to
// exit. Close is idempotent and safe to call concurrently with For:
// in-flight chunks finish (their callers are waiting on them), and
// later For calls simply run everything inline.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	p.wg.Wait()
}

// Chunks returns how many chunks For will split [0, n) into for the
// given thread budget and grain: min(threads, n/grain), at least 1 for
// a non-empty range. A chunk is never smaller than grain rows, which is
// the kernels' serial-size cutoff — when n < 2·grain the range stays in
// one chunk and For degenerates to a plain serial call.
func Chunks(threads, n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	c := n / grain
	if c > threads {
		c = threads
	}
	if c < 1 {
		c = 1
	}
	return c
}

// chunkBounds returns the half-open bounds of chunk c of [0, n) split
// into chunks near-equal contiguous pieces.
func chunkBounds(c, chunks, n int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// For runs fn over [0, n) split into Chunks(threads, n, grain)
// contiguous chunks: fn(lo, hi) covers rows [lo, hi). Chunk 0 always
// runs on the calling goroutine; the rest run on idle pool workers, or
// inline on the caller when no worker is free. For returns when every
// chunk has finished. fn must be safe to call concurrently on disjoint
// ranges.
func (p *Pool) For(threads, n, grain int, fn func(lo, hi int)) {
	p.ForChunks(threads, n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// ForChunks is For with the deterministic chunk index passed through,
// for callers that accumulate per-chunk results into pre-sized slots
// (chunk c always covers the same rows for the same (threads, n,
// grain), regardless of where it ran).
func (p *Pool) ForChunks(threads, n, grain int, fn func(chunk, lo, hi int)) {
	chunks := Chunks(threads, n, grain)
	if chunks == 0 {
		return
	}
	if chunks == 1 || p.Workers() == 0 {
		for c := 0; c < chunks; c++ {
			lo, hi := chunkBounds(c, chunks, n)
			fn(c, lo, hi)
		}
		return
	}
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		c := c
		lo, hi := chunkBounds(c, chunks, n)
		task := func() {
			defer wg.Done()
			fn(c, lo, hi)
		}
		wg.Add(1)
		select {
		case p.tasks <- task:
			// An idle worker took the chunk.
		default:
			// Every worker is busy: run it here rather than queue —
			// queueing could deadlock nested sections and would not add
			// parallelism anyway.
			task()
		}
	}
	lo, hi := chunkBounds(0, chunks, n)
	fn(0, lo, hi)
	wg.Wait()
}

// shared is the process-wide pool the kernels use: GOMAXPROCS−1
// workers, because the caller of every parallel section contributes its
// own thread. On a single-CPU process the shared pool has no workers
// and every kernel stays serial.
var shared = New(runtime.GOMAXPROCS(0) - 1)

// Shared returns the process-wide kernel pool. It is never closed.
func Shared() *Pool { return shared }

// For runs fn over [0, n) on the shared pool; see Pool.For.
func For(threads, n, grain int, fn func(lo, hi int)) {
	shared.For(threads, n, grain, fn)
}

// ForChunks runs fn over [0, n) on the shared pool; see Pool.ForChunks.
func ForChunks(threads, n, grain int, fn func(chunk, lo, hi int)) {
	shared.ForChunks(threads, n, grain, fn)
}

// MaxThreads is the widest useful kernel thread budget: GOMAXPROCS.
func MaxThreads() int { return runtime.GOMAXPROCS(0) }

// MinParWork is the serial-size cutoff, in approximate scalar
// operations per chunk: a parallel section is only worth forking when
// every chunk carries at least this much work (≈tens of microseconds),
// comfortably above the ~1µs cost of handing a chunk to a worker.
// A kernel whose total work is below 2·MinParWork runs serially no
// matter how many threads its context allows.
const MinParWork = 1 << 15

// GrainFor converts estimated per-row (or per-element) work into the
// minimum rows a chunk must cover to clear the MinParWork cutoff.
func GrainFor(workPerUnit int) int {
	if workPerUnit < 1 {
		workPerUnit = 1
	}
	g := MinParWork / workPerUnit
	if g < 1 {
		g = 1
	}
	return g
}

// Budget divides the machine across active concurrent executors —
// GOMAXPROCS / active, floor 1. The dist runtime sizes per-shard kernel
// threads with it so shard parallelism and kernel parallelism compose
// without oversubscription: shards × Budget(shards) ≤ GOMAXPROCS (plus
// the remainder the non-blocking pool absorbs).
func Budget(active int) int {
	if active < 1 {
		active = 1
	}
	b := runtime.GOMAXPROCS(0) / active
	if b < 1 {
		b = 1
	}
	return b
}
