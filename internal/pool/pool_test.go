package pool

import (
	"sync"
	"sync/atomic"
	"testing"

	"matopt/internal/testutil"
)

// TestChunksBoundaries pins the chunk-count function at the serial-size
// cutoff: a range under 2·grain stays in one chunk (serial), exactly
// 2·grain forks into two, and the thread budget caps the count.
func TestChunksBoundaries(t *testing.T) {
	cases := []struct {
		name              string
		threads, n, grain int
		want              int
	}{
		{"empty range", 8, 0, 16, 0},
		{"negative range", 8, -5, 16, 0},
		{"below cutoff", 8, 31, 16, 1},
		{"one grain exactly", 8, 16, 16, 1},
		{"just under two grains", 8, 2*16 - 1, 16, 1},
		{"two grains exactly", 8, 32, 16, 2},
		{"thread capped", 4, 1000, 1, 4},
		{"grain capped", 64, 100, 25, 4},
		{"single thread", 1, 1000, 1, 1},
		{"zero threads clamps to one", 0, 1000, 1, 1},
		{"zero grain treated as one", 4, 8, 0, 4},
		{"tiny nonempty range", 8, 1, 16, 1},
	}
	for _, tc := range cases {
		if got := Chunks(tc.threads, tc.n, tc.grain); got != tc.want {
			t.Errorf("%s: Chunks(%d, %d, %d) = %d, want %d",
				tc.name, tc.threads, tc.n, tc.grain, got, tc.want)
		}
	}
}

// TestChunkBoundsPartition verifies chunk bounds tile [0, n) exactly:
// disjoint, contiguous, in order — the property every kernel's
// determinism argument rests on.
func TestChunkBoundsPartition(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 101, 1023} {
		for chunks := 1; chunks <= 9 && chunks <= n; chunks++ {
			prev := 0
			for c := 0; c < chunks; c++ {
				lo, hi := chunkBounds(c, chunks, n)
				if lo != prev {
					t.Fatalf("n=%d chunks=%d: chunk %d starts at %d, want %d", n, chunks, c, lo, prev)
				}
				if hi <= lo {
					t.Fatalf("n=%d chunks=%d: chunk %d empty [%d,%d)", n, chunks, c, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d chunks=%d: coverage ends at %d", n, chunks, prev)
			}
		}
	}
}

// TestForCoversRangeOnce runs For at several thread budgets and checks
// every index is visited exactly once.
func TestForCoversRangeOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, threads := range []int{1, 2, 3, 8} {
		const n = 1000
		var hits [n]int32
		p.For(threads, n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, h)
			}
		}
	}
}

// TestForChunksDeterministicBounds: chunk c covers the same rows no
// matter where it ran — recorded bounds must match chunkBounds exactly.
func TestForChunksDeterministicBounds(t *testing.T) {
	p := New(3)
	defer p.Close()
	const n, threads = 509, 4
	want := Chunks(threads, n, 1)
	bounds := make([][2]int, want)
	p.ForChunks(threads, n, 1, func(c, lo, hi int) {
		bounds[c] = [2]int{lo, hi}
	})
	for c := 0; c < want; c++ {
		lo, hi := chunkBounds(c, want, n)
		if bounds[c] != [2]int{lo, hi} {
			t.Fatalf("chunk %d ran [%d,%d), want [%d,%d)", c, bounds[c][0], bounds[c][1], lo, hi)
		}
	}
}

// TestNestedForDoesNotDeadlock: a chunk that itself opens a parallel
// section must complete — submission never blocks, so the inner section
// runs inline when no worker is free.
func TestNestedForDoesNotDeadlock(t *testing.T) {
	p := New(2)
	defer p.Close()
	var total atomic.Int64
	p.For(4, 64, 1, func(lo, hi int) {
		p.For(4, 64, 1, func(ilo, ihi int) {
			total.Add(int64(ihi - ilo))
		})
	})
	// Each of the outer chunks runs a full inner loop over 64 elements.
	outer := Chunks(4, 64, 1)
	if got := total.Load(); got != int64(64*outer) {
		t.Fatalf("nested For covered %d elements, want %d", got, 64*outer)
	}
}

// TestConcurrentFor hammers one pool from many goroutines; the race
// detector guards the pool's internals, the sums guard correctness.
func TestConcurrentFor(t *testing.T) {
	p := New(3)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			p.For(4, 500, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
			})
			if got := sum.Load(); got != 500*499/2 {
				t.Errorf("concurrent For sum = %d, want %d", got, 500*499/2)
			}
		}()
	}
	wg.Wait()
}

// TestCloseStopsWorkers: Close waits for every worker goroutine to exit
// (leak-checked), is idempotent, and later For calls still work inline.
func TestCloseStopsWorkers(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		p := New(5)
		var sum atomic.Int64
		p.For(4, 100, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(1)
			}
		})
		p.Close()
		p.Close() // idempotent
		if sum.Load() != 100 {
			t.Fatalf("For before Close covered %d rows, want 100", sum.Load())
		}
		// After Close every chunk runs on the caller; answers don't change.
		sum.Store(0)
		p.For(4, 100, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(1)
			}
		})
		if sum.Load() != 100 {
			t.Fatalf("For after Close covered %d rows, want 100", sum.Load())
		}
	})
}

// TestConcurrentClose: Close racing Close is safe and both return only
// after the workers exited.
func TestConcurrentClose(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		p := New(4)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); p.Close() }()
		}
		wg.Wait()
	})
}

// TestNilAndZeroWorkerPools: a nil *Pool and a zero-worker pool both run
// everything inline on the caller.
func TestNilAndZeroWorkerPools(t *testing.T) {
	var nilPool *Pool
	if nilPool.Workers() != 0 {
		t.Fatal("nil pool reports workers")
	}
	nilPool.Close() // must not panic
	count := 0
	nilPool.For(8, 10, 1, func(lo, hi int) { count += hi - lo })
	if count != 10 {
		t.Fatalf("nil pool For covered %d rows, want 10", count)
	}

	z := New(0)
	defer z.Close()
	count = 0
	z.For(8, 10, 1, func(lo, hi int) { count += hi - lo }) // no atomics: must be inline
	if count != 10 {
		t.Fatalf("zero-worker pool For covered %d rows, want 10", count)
	}
	if New(-3).Workers() != 0 {
		t.Fatal("negative worker count not clamped to zero")
	}
}

// TestGrainFor pins the work→grain conversion at the cutoff.
func TestGrainFor(t *testing.T) {
	if g := GrainFor(1); g != MinParWork {
		t.Fatalf("GrainFor(1) = %d, want %d", g, MinParWork)
	}
	if g := GrainFor(MinParWork); g != 1 {
		t.Fatalf("GrainFor(MinParWork) = %d, want 1", g)
	}
	if g := GrainFor(MinParWork * 10); g != 1 {
		t.Fatalf("huge per-unit work must floor the grain at 1, got %d", g)
	}
	if g := GrainFor(0); g != MinParWork {
		t.Fatalf("GrainFor(0) = %d, want %d", g, MinParWork)
	}
}

// TestBudget pins the machine-division rule for concurrent executors.
func TestBudget(t *testing.T) {
	max := MaxThreads()
	if b := Budget(1); b != max {
		t.Fatalf("Budget(1) = %d, want GOMAXPROCS=%d", b, max)
	}
	if b := Budget(max); b != 1 {
		t.Fatalf("Budget(GOMAXPROCS) = %d, want 1", b)
	}
	if b := Budget(10 * max); b != 1 {
		t.Fatalf("oversharded budget must floor at 1, got %d", b)
	}
	if b := Budget(0); b != max {
		t.Fatalf("Budget(0) clamps to one executor, got %d want %d", b, max)
	}
}
