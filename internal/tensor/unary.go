package tensor

import "math"

// Apply returns f mapped over every entry.
func Apply(a *Dense, f func(float64) float64) *Dense { return K{}.Apply(a, f) }

// Apply returns f mapped over every entry, element-partitioned across
// the context's threads (entries are independent, so any partition is
// bit-identical to serial).
func (k K) Apply(a *Dense, f func(float64) float64) *Dense {
	defer k.end(k.begin())
	out := NewDense(a.Rows, a.Cols)
	k.parRange(len(a.Data), grainFor(unaryWork), func(lo, hi int) {
		ad, od := a.Data[lo:hi], out.Data[lo:hi]
		for i, v := range ad {
			od[i] = f(v)
		}
	})
	return out
}

// unaryWork is the assumed per-element cost of a mapped function, in
// scalar-op equivalents: transcendental maps (Exp, Sigmoid) dominate
// the family, so chunks are sized for them — cheap maps just get
// slightly larger chunks than strictly necessary.
const unaryWork = 16

// ReLU returns max(x, 0) entrywise.
func ReLU(a *Dense) *Dense { return K{}.ReLU(a) }

// ReLU returns max(x, 0) entrywise under the context's thread budget.
func (k K) ReLU(a *Dense) *Dense {
	return k.Apply(a, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ReLUGrad returns the derivative of ReLU: 1 where x > 0, else 0.
func ReLUGrad(a *Dense) *Dense { return K{}.ReLUGrad(a) }

// ReLUGrad returns the ReLU derivative under the context's thread budget.
func (k K) ReLUGrad(a *Dense) *Dense {
	return k.Apply(a, func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	})
}

// Sigmoid returns 1/(1+e^{−x}) entrywise.
func Sigmoid(a *Dense) *Dense { return K{}.Sigmoid(a) }

// Sigmoid returns 1/(1+e^{−x}) entrywise under the context's thread
// budget.
func (k K) Sigmoid(a *Dense) *Dense {
	return k.Apply(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Exp returns e^x entrywise.
func Exp(a *Dense) *Dense { return K{}.Exp(a) }

// Exp returns e^x entrywise under the context's thread budget.
func (k K) Exp(a *Dense) *Dense { return k.Apply(a, math.Exp) }

// Neg returns −a.
func Neg(a *Dense) *Dense { return K{}.Neg(a) }

// Neg returns −a under the context's thread budget.
func (k K) Neg(a *Dense) *Dense {
	return k.Apply(a, func(x float64) float64 { return -x })
}

// Softmax returns the row-wise softmax with the usual max-shift for
// numerical stability.
func Softmax(a *Dense) *Dense { return K{}.Softmax(a) }

// Softmax returns the row-wise softmax, row-partitioned: each row is
// computed exactly as in the serial kernel (max scan, exp, normalize,
// all left to right), so thread count cannot change bits.
func (k K) Softmax(a *Dense) *Dense {
	defer k.end(k.begin())
	out := NewDense(a.Rows, a.Cols)
	k.parRange(a.Rows, grainFor(unaryWork*a.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*a.Cols : (i+1)*a.Cols]
			mx := math.Inf(-1)
			for _, v := range row {
				if v > mx {
					mx = v
				}
			}
			var sum float64
			for j, v := range row {
				e := math.Exp(v - mx)
				orow[j] = e
				sum += e
			}
			for j := range orow {
				orow[j] /= sum
			}
		}
	})
	return out
}
