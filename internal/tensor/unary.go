package tensor

import "math"

// Apply returns f mapped over every entry.
func Apply(a *Dense, f func(float64) float64) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ReLU returns max(x, 0) entrywise.
func ReLU(a *Dense) *Dense {
	return Apply(a, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ReLUGrad returns the derivative of ReLU: 1 where x > 0, else 0.
func ReLUGrad(a *Dense) *Dense {
	return Apply(a, func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	})
}

// Sigmoid returns 1/(1+e^{−x}) entrywise.
func Sigmoid(a *Dense) *Dense {
	return Apply(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Exp returns e^x entrywise.
func Exp(a *Dense) *Dense { return Apply(a, math.Exp) }

// Neg returns −a.
func Neg(a *Dense) *Dense { return Apply(a, func(x float64) float64 { return -x }) }

// Softmax returns the row-wise softmax with the usual max-shift for
// numerical stability.
func Softmax(a *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}
