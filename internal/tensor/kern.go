package tensor

import (
	"time"

	"matopt/internal/pool"
)

// K is the kernel context: how many threads a kernel may use and,
// optionally, where to report the time it spent. The zero value K{}
// runs every kernel serially, which is also what the package-level
// functions (MatMul, Add, …) use — existing callers keep exact serial
// semantics.
//
// Every kernel is bit-identical across thread counts: work is
// partitioned into contiguous row (or element) ranges with disjoint
// output regions, and the floating-point accumulation order for each
// output element — ascending k for GEMM, ascending row index for column
// sums — is the same no matter how the ranges are chunked. KERNELS.md
// carries the full argument.
type K struct {
	// Threads bounds how many chunks of a kernel may run concurrently
	// (the chunks execute on the shared pool in internal/pool, so the
	// process never exceeds GOMAXPROCS kernel threads regardless of how
	// many K values are active). Values ≤ 1 mean serial.
	Threads int
	// Timer, when non-nil, receives the wall nanoseconds of every kernel
	// invocation made through this context. The dist runtime uses it to
	// split vertex time into kernel vs. exchange in traces and reports.
	Timer func(ns int64)
}

// Auto returns a context that lets kernels use the whole machine
// (Threads = GOMAXPROCS). Layers that already run many executors
// concurrently should divide instead: see pool.Budget.
func Auto() K { return K{Threads: pool.MaxThreads()} }

// threads resolves the effective chunk budget: at least 1.
func (k K) threads() int {
	if k.Threads > 1 {
		return k.Threads
	}
	return 1
}

// begin starts the kernel timer; it returns the zero Time (and end does
// nothing) when no Timer is attached, so unmetered kernels pay only a
// nil check.
func (k K) begin() time.Time {
	if k.Timer == nil {
		return time.Time{}
	}
	return time.Now()
}

// end reports the elapsed time of a kernel started with begin.
func (k K) end(t0 time.Time) {
	if k.Timer != nil {
		k.Timer(time.Since(t0).Nanoseconds())
	}
}

// grainFor converts per-row (or per-element) work into the minimum
// rows a chunk must cover to clear the pool.MinParWork serial-size
// cutoff.
func grainFor(workPerUnit int) int { return pool.GrainFor(workPerUnit) }

// parRange splits [0, n) into deterministic contiguous chunks of at
// least g units and runs fn over them on the shared pool, honoring the
// context's thread budget. fn writes only inside its own range.
func (k K) parRange(n, g int, fn func(lo, hi int)) {
	pool.For(k.threads(), n, g, fn)
}

// Par splits [0, n) into deterministic contiguous chunks sized from the
// estimated scalar work per unit and runs fn over them under the
// context's thread budget. Exported for the sibling kernel package
// internal/sparse; dense kernels use it via their own wrappers.
func (k K) Par(n, workPerUnit int, fn func(lo, hi int)) {
	k.parRange(n, grainFor(workPerUnit), fn)
}

// NumChunks reports how many chunks Par and ParChunks will split
// [0, n) into for this context — callers that collect per-chunk results
// pre-size their slots with it.
func (k K) NumChunks(n, workPerUnit int) int {
	return pool.Chunks(k.threads(), n, grainFor(workPerUnit))
}

// ParChunks is Par with the deterministic chunk index passed to fn;
// chunk c always covers the same range for the same (context, n,
// workPerUnit), no matter which goroutine runs it.
func (k K) ParChunks(n, workPerUnit int, fn func(chunk, lo, hi int)) {
	pool.ForChunks(k.threads(), n, grainFor(workPerUnit), fn)
}
