package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by Inverse for (numerically) singular inputs.
var ErrSingular = errors.New("tensor: matrix is singular")

// Inverse returns a⁻¹ by Gauss–Jordan elimination with partial pivoting.
func Inverse(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("tensor: Inverse of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	// Augmented [a | I], eliminated in place.
	w := a.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if p != col {
			swapRows(w, p, col)
			swapRows(inv, p, col)
		}
		piv := w.At(col, col)
		scaleRow(w, col, 1/piv)
		scaleRow(inv, col, 1/piv)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(w, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

func swapRows(m *Dense, a, b int) {
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(m *Dense, r int, s float64) {
	row := m.Data[r*m.Cols : (r+1)*m.Cols]
	for i := range row {
		row[i] *= s
	}
}

// axpyRow adds f times row src to row dst.
func axpyRow(m *Dense, dst, src int, f float64) {
	rd := m.Data[dst*m.Cols : (dst+1)*m.Cols]
	rs := m.Data[src*m.Cols : (src+1)*m.Cols]
	for i := range rd {
		rd[i] += f * rs[i]
	}
}
