package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("NewDense(3,4) = %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("NewDense not zeroed")
		}
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense(0, 1) should panic")
		}
	}()
	NewDense(0, 1)
}

func TestAtSetClone(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(1, 0, 3.5)
	if m.At(1, 0) != 3.5 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	c := m.Clone()
	c.Set(1, 0, -1)
	if m.At(1, 0) != 3.5 {
		t.Fatal("Clone aliases original")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong layout: %v", m.Data)
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestSliceAndSetSlice(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Slice(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !Equal(s, want, 0) {
		t.Fatalf("Slice = %v", s.Data)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 4 {
		t.Fatal("Slice aliases parent")
	}
	m.SetSlice(0, 1, FromRows([][]float64{{-1, -2}}))
	if m.At(0, 1) != -1 || m.At(0, 2) != -2 {
		t.Fatalf("SetSlice wrong: %v", m.Data)
	}
}

func TestSliceBoundsPanic(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Slice should panic")
		}
	}()
	m.Slice(0, 3, 0, 1)
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v", got.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 17, 23)
	if !Equal(MatMul(a, Identity(23)), a, 1e-12) {
		t.Fatal("a×I != a")
	}
	if !Equal(MatMul(Identity(17), a), a, 1e-12) {
		t.Fatal("I×a != a")
	}
}

// naiveMatMul is an unblocked reference implementation.
func naiveMatMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaiveAcrossBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Sizes straddling the 64-wide blocking.
	for _, d := range [][3]int{{1, 1, 1}, {63, 64, 65}, {64, 64, 64}, {65, 1, 130}, {7, 129, 5}} {
		a := RandNormal(rng, d[0], d[1])
		b := RandNormal(rng, d[1], d[2])
		if diff := MaxAbsDiff(MatMul(a, b), naiveMatMul(a, b)); diff > 1e-9 {
			t.Errorf("dims %v: blocked vs naive diff %g", d, diff)
		}
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul dim mismatch should panic")
		}
	}()
	MatMul(NewDense(2, 3), NewDense(4, 2))
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, 0}})
	b := FromRows([][]float64{{4, 5}, {-6, 2}})
	if !Equal(Add(a, b), FromRows([][]float64{{5, 3}, {-3, 2}}), 0) {
		t.Error("Add wrong")
	}
	if !Equal(Sub(a, b), FromRows([][]float64{{-3, -7}, {9, -2}}), 0) {
		t.Error("Sub wrong")
	}
	if !Equal(Hadamard(a, b), FromRows([][]float64{{4, -10}, {-18, 0}}), 0) {
		t.Error("Hadamard wrong")
	}
	c := a.Clone()
	AddInPlace(c, b)
	if !Equal(c, Add(a, b), 0) {
		t.Error("AddInPlace wrong")
	}
}

func TestTransposeMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 45, 70) // straddles the 32-wide blocking
	at := Transpose(a)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Fatalf("Transpose wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestScaleRowColSums(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if !Equal(Scale(a, 2), FromRows([][]float64{{2, 4, 6}, {8, 10, 12}}), 0) {
		t.Error("Scale wrong")
	}
	if !Equal(RowSums(a), FromRows([][]float64{{6}, {15}}), 0) {
		t.Error("RowSums wrong")
	}
	if !Equal(ColSums(a), FromRows([][]float64{{5, 7, 9}}), 0) {
		t.Error("ColSums wrong")
	}
}

func TestAddBias(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	bias := FromRows([][]float64{{10, 20}})
	if !Equal(AddBias(a, bias), FromRows([][]float64{{11, 22}, {13, 24}}), 0) {
		t.Error("AddBias wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddBias shape mismatch should panic")
		}
	}()
	AddBias(a, FromRows([][]float64{{1, 2, 3}}))
}

func TestUnaryOps(t *testing.T) {
	a := FromRows([][]float64{{-1, 0}, {2, -3}})
	if !Equal(ReLU(a), FromRows([][]float64{{0, 0}, {2, 0}}), 0) {
		t.Error("ReLU wrong")
	}
	if !Equal(ReLUGrad(a), FromRows([][]float64{{0, 0}, {1, 0}}), 0) {
		t.Error("ReLUGrad wrong")
	}
	if !Equal(Neg(a), FromRows([][]float64{{1, 0}, {-2, 3}}), 0) {
		t.Error("Neg wrong")
	}
	s := Sigmoid(FromRows([][]float64{{0}}))
	if math.Abs(s.At(0, 0)-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", s.At(0, 0))
	}
	e := Exp(FromRows([][]float64{{0, 1}}))
	if math.Abs(e.At(0, 0)-1) > 1e-12 || math.Abs(e.At(0, 1)-math.E) > 1e-12 {
		t.Errorf("Exp wrong: %v", e.Data)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 10, 17)
	sm := Softmax(a)
	for i := 0; i < sm.Rows; i++ {
		var s float64
		for j := 0; j < sm.Cols; j++ {
			v := sm.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax entry out of [0,1]: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxStableForLargeInputs(t *testing.T) {
	a := FromRows([][]float64{{1000, 1000, 1000}})
	sm := Softmax(a)
	for j := 0; j < 3; j++ {
		if math.Abs(sm.At(0, j)-1.0/3) > 1e-9 {
			t.Fatalf("unstable softmax: %v", sm.Data)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := RandNormal(rng, n, n)
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if diff := MaxAbsDiff(MatMul(a, inv), Identity(n)); diff > 1e-8 {
			t.Errorf("n=%d: a×a⁻¹ deviates from I by %g", n, diff)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	if _, err := Inverse(FromRows([][]float64{{1, 2}, {2, 4}})); err != ErrSingular {
		t.Fatalf("singular input: err = %v", err)
	}
	if _, err := Inverse(NewDense(2, 3)); err == nil {
		t.Fatal("non-square Inverse should error")
	}
}

func TestDensityAndDiff(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {0, 2}})
	if a.Density() != 0.5 {
		t.Errorf("Density = %v", a.Density())
	}
	if !math.IsInf(MaxAbsDiff(a, NewDense(3, 3)), 1) {
		t.Error("MaxAbsDiff shape mismatch should be +Inf")
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 9, 13)
		b := RandNormal(rng, 13, 7)
		c := RandNormal(rng, 13, 7)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 8, 12)
		b := RandNormal(rng, 12, 6)
		return MaxAbsDiff(Transpose(MatMul(a, b)), MatMul(Transpose(b), Transpose(a))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRandSparseDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := RandSparse(rng, 200, 200, 0.1)
	d := m.Density()
	if d < 0.07 || d > 0.13 {
		t.Errorf("RandSparse density = %v, want ≈0.1", d)
	}
}
