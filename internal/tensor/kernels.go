package tensor

import "fmt"

// matmul block size; 64 doubles keeps three tiles well inside L1/L2.
const mmBlock = 64

// MatMul returns a×b using a blocked i-k-j kernel.
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	MatMulAdd(out, a, b)
	return out
}

// MatMulAdd computes dst += a×b. dst must be a.Rows × b.Cols.
func MatMulAdd(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulAdd dimension mismatch")
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < n; i0 += mmBlock {
		i1 := min(i0+mmBlock, n)
		for k0 := 0; k0 < k; k0 += mmBlock {
			k1 := min(k0+mmBlock, k)
			for j0 := 0; j0 < m; j0 += mmBlock {
				j1 := min(j0+mmBlock, m)
				for i := i0; i < i1; i++ {
					arow := a.Data[i*k : (i+1)*k]
					drow := dst.Data[i*m : (i+1)*m]
					for kk := k0; kk < k1; kk++ {
						av := arow[kk]
						if av == 0 {
							continue
						}
						brow := b.Data[kk*m : (kk+1)*m]
						for j := j0; j < j1; j++ {
							drow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// Add returns a+b.
func Add(a, b *Dense) *Dense { return zipNew(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a−b.
func Sub(a, b *Dense) *Dense { return zipNew(a, b, func(x, y float64) float64 { return x - y }) }

// Hadamard returns the entrywise product a∘b.
func Hadamard(a, b *Dense) *Dense {
	return zipNew(a, b, func(x, y float64) float64 { return x * y })
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: AddInPlace dimension mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

func zipNew(a, b *Dense, f func(x, y float64) float64) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: elementwise %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// Transpose returns aᵀ using a cache-blocked swap.
func Transpose(a *Dense) *Dense {
	out := NewDense(a.Cols, a.Rows)
	const bs = 32
	for i0 := 0; i0 < a.Rows; i0 += bs {
		i1 := min(i0+bs, a.Rows)
		for j0 := 0; j0 < a.Cols; j0 += bs {
			j1 := min(j0+bs, a.Cols)
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
				}
			}
		}
	}
	return out
}

// Scale returns s·a.
func Scale(a *Dense, s float64) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// RowSums returns the column vector of row sums (Rows×1).
func RowSums(a *Dense) *Dense {
	out := NewDense(a.Rows, 1)
	for i := 0; i < a.Rows; i++ {
		var s float64
		for _, v := range a.Data[i*a.Cols : (i+1)*a.Cols] {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// ColSums returns the row vector of column sums (1×Cols).
func ColSums(a *Dense) *Dense {
	out := NewDense(1, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// AddBias returns a with the 1×Cols row vector bias added to every row.
func AddBias(a, bias *Dense) *Dense {
	if bias.Rows != 1 || bias.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddBias bias %dx%d on %dx%d", bias.Rows, bias.Cols, a.Rows, a.Cols))
	}
	out := NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			orow[j] = v + bias.Data[j]
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
