package tensor

// GEMM blocking parameters. The kernel packs b into kc×nc panels: one
// panel (mmKC·mmNC doubles = 256 KiB) sits in L2 while it is reused
// across every output row of the chunk, and the four accumulator rows
// the micro-kernel holds (4·mmNC doubles = 4 KiB) stay in L1 across the
// whole k sweep of a panel.
const (
	mmKC = 256 // k extent of a packed b panel
	mmNC = 128 // j extent of a packed b panel
)

// MatMul returns a×b using the cache-blocked kernel, serially.
// Use K.MatMul to run the same kernel with a thread budget — the result
// is bit-identical either way.
func MatMul(a, b *Dense) *Dense { return K{}.MatMul(a, b) }

// MatMulAdd computes dst += a×b serially. dst must be a.Rows × b.Cols.
func MatMulAdd(dst, a, b *Dense) { K{}.MatMulAdd(dst, a, b) }

// MatMul returns a×b using the cache-blocked, panel-packed kernel,
// parallelized over contiguous output-row ranges.
func (k K) MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		shapePanic("MatMul", "inner dimensions must agree (a.Cols == b.Rows)",
			Dim("a", a.Rows, a.Cols), Dim("b", b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	k.MatMulAdd(out, a, b)
	return out
}

// MatMulAdd computes dst += a×b with the cache-blocked, panel-packed
// kernel. dst must be a.Rows × b.Cols. Output rows are partitioned into
// contiguous chunks; each chunk accumulates its own rows with ascending
// k order, so any thread count produces bits identical to the serial
// kernel.
func (k K) MatMulAdd(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		shapePanic("MatMulAdd", "dst must be a.Rows×b.Cols with a.Cols == b.Rows",
			Dim("dst", dst.Rows, dst.Cols), Dim("a", a.Rows, a.Cols), Dim("b", b.Rows, b.Cols))
	}
	defer k.end(k.begin())
	n, kd, m := a.Rows, a.Cols, b.Cols
	if n == 0 || kd == 0 || m == 0 {
		return
	}
	k.parRange(n, grainFor(2*kd*m), func(lo, hi int) {
		gemmRows(dst, a, b, lo, hi)
	})
}

// gemmRows computes dst[lo:hi) += a[lo:hi) × b. Panels of b are packed
// contiguously so the micro-kernel streams them with unit stride; rows
// are processed four at a time to amortize each packed-panel load
// across four accumulator rows.
//
// Determinism note: for every output element (i, j) the additions
// happen in ascending k order — j panels are independent elements, and
// within a j panel the k panels ascend — and there is deliberately no
// skip of zero a-elements: a skipped `+= 0·b` is not a no-op for signed
// zeros, so any data-dependent shortcut could make results depend on
// which code path (4-row group vs. remainder row) a row lands in, which
// shifts with the chunk boundary. Every path performs the identical
// per-element operation sequence, so chunking cannot change bits.
func gemmRows(dst, a, b *Dense, lo, hi int) {
	kd, m := a.Cols, b.Cols
	bp := make([]float64, mmKC*mmNC)
	for j0 := 0; j0 < m; j0 += mmNC {
		j1 := min(j0+mmNC, m)
		w := j1 - j0
		for k0 := 0; k0 < kd; k0 += mmKC {
			k1 := min(k0+mmKC, kd)
			for kk := k0; kk < k1; kk++ {
				copy(bp[(kk-k0)*w:(kk-k0+1)*w], b.Data[kk*m+j0:kk*m+j1])
			}
			i := lo
			for ; i+4 <= hi; i += 4 {
				a0 := a.Data[i*kd : (i+1)*kd]
				a1 := a.Data[(i+1)*kd : (i+2)*kd]
				a2 := a.Data[(i+2)*kd : (i+3)*kd]
				a3 := a.Data[(i+3)*kd : (i+4)*kd]
				d0 := dst.Data[i*m+j0 : i*m+j1]
				d1 := dst.Data[(i+1)*m+j0 : (i+1)*m+j1]
				d2 := dst.Data[(i+2)*m+j0 : (i+2)*m+j1]
				d3 := dst.Data[(i+3)*m+j0 : (i+3)*m+j1]
				for kk := k0; kk < k1; kk++ {
					prow := bp[(kk-k0)*w : (kk-k0+1)*w]
					av0, av1, av2, av3 := a0[kk], a1[kk], a2[kk], a3[kk]
					for j, bv := range prow {
						d0[j] += av0 * bv
						d1[j] += av1 * bv
						d2[j] += av2 * bv
						d3[j] += av3 * bv
					}
				}
			}
			for ; i < hi; i++ {
				arow := a.Data[i*kd : (i+1)*kd]
				drow := dst.Data[i*m+j0 : i*m+j1]
				for kk := k0; kk < k1; kk++ {
					prow := bp[(kk-k0)*w : (kk-k0+1)*w]
					av := arow[kk]
					for j, bv := range prow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// Add returns a+b.
func Add(a, b *Dense) *Dense { return K{}.Add(a, b) }

// Add returns a+b, element-partitioned across the context's threads.
func (k K) Add(a, b *Dense) *Dense {
	return k.zipNew("Add", a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a−b.
func Sub(a, b *Dense) *Dense { return K{}.Sub(a, b) }

// Sub returns a−b, element-partitioned across the context's threads.
func (k K) Sub(a, b *Dense) *Dense {
	return k.zipNew("Sub", a, b, func(x, y float64) float64 { return x - y })
}

// Hadamard returns the entrywise product a∘b.
func Hadamard(a, b *Dense) *Dense { return K{}.Hadamard(a, b) }

// Hadamard returns a∘b, element-partitioned across the context's threads.
func (k K) Hadamard(a, b *Dense) *Dense {
	return k.zipNew("Hadamard", a, b, func(x, y float64) float64 { return x * y })
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Dense) { K{}.AddInPlace(a, b) }

// AddInPlace computes a += b, element-partitioned across the context's
// threads.
func (k K) AddInPlace(a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		shapePanic("AddInPlace", "operands must have equal shapes",
			Dim("a", a.Rows, a.Cols), Dim("b", b.Rows, b.Cols))
	}
	defer k.end(k.begin())
	k.parRange(len(a.Data), grainFor(1), func(lo, hi int) {
		ad, bd := a.Data[lo:hi], b.Data[lo:hi]
		for i := range ad {
			ad[i] += bd[i]
		}
	})
}

// zipNew allocates the elementwise combination f(a, b). Elements are
// independent, so any flat partition is bit-identical to serial.
func (k K) zipNew(name string, a, b *Dense, f func(x, y float64) float64) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		shapePanic(name, "operands must have equal shapes",
			Dim("a", a.Rows, a.Cols), Dim("b", b.Rows, b.Cols))
	}
	defer k.end(k.begin())
	out := NewDense(a.Rows, a.Cols)
	k.parRange(len(a.Data), grainFor(1), func(lo, hi int) {
		ad, bd, od := a.Data[lo:hi], b.Data[lo:hi], out.Data[lo:hi]
		for i := range ad {
			od[i] = f(ad[i], bd[i])
		}
	})
	return out
}

// Transpose returns aᵀ using a cache-blocked swap.
func Transpose(a *Dense) *Dense { return K{}.Transpose(a) }

// Transpose returns aᵀ, partitioned over output rows (input columns);
// each chunk writes a disjoint slab of the output.
func (k K) Transpose(a *Dense) *Dense {
	defer k.end(k.begin())
	out := NewDense(a.Cols, a.Rows)
	const bs = 32
	k.parRange(a.Cols, grainFor(a.Rows), func(lo, hi int) {
		for i0 := 0; i0 < a.Rows; i0 += bs {
			i1 := min(i0+bs, a.Rows)
			for j0 := lo; j0 < hi; j0 += bs {
				j1 := min(j0+bs, hi)
				for i := i0; i < i1; i++ {
					for j := j0; j < j1; j++ {
						out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
					}
				}
			}
		}
	})
	return out
}

// Scale returns s·a.
func Scale(a *Dense, s float64) *Dense { return K{}.Scale(a, s) }

// Scale returns s·a, element-partitioned across the context's threads.
func (k K) Scale(a *Dense, s float64) *Dense {
	defer k.end(k.begin())
	out := NewDense(a.Rows, a.Cols)
	k.parRange(len(a.Data), grainFor(1), func(lo, hi int) {
		ad, od := a.Data[lo:hi], out.Data[lo:hi]
		for i, v := range ad {
			od[i] = s * v
		}
	})
	return out
}

// RowSums returns the column vector of row sums (Rows×1).
func RowSums(a *Dense) *Dense { return K{}.RowSums(a) }

// RowSums returns the Rows×1 vector of row sums, row-partitioned; each
// row's sum accumulates left to right exactly as in the serial kernel.
func (k K) RowSums(a *Dense) *Dense {
	defer k.end(k.begin())
	out := NewDense(a.Rows, 1)
	k.parRange(a.Rows, grainFor(a.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for _, v := range a.Data[i*a.Cols : (i+1)*a.Cols] {
				s += v
			}
			out.Data[i] = s
		}
	})
	return out
}

// ColSums returns the row vector of column sums (1×Cols).
func ColSums(a *Dense) *Dense { return K{}.ColSums(a) }

// ColSums returns the 1×Cols vector of column sums, partitioned over
// columns: every chunk owns a disjoint set of accumulators and adds
// rows in ascending order, matching the serial kernel bit for bit.
func (k K) ColSums(a *Dense) *Dense {
	defer k.end(k.begin())
	out := NewDense(1, a.Cols)
	k.parRange(a.Cols, grainFor(a.Rows), func(lo, hi int) {
		for i := 0; i < a.Rows; i++ {
			row := a.Data[i*a.Cols : (i+1)*a.Cols]
			for j := lo; j < hi; j++ {
				out.Data[j] += row[j]
			}
		}
	})
	return out
}

// AddBias returns a with the 1×Cols row vector bias added to every row.
func AddBias(a, bias *Dense) *Dense { return K{}.AddBias(a, bias) }

// AddBias returns a with the 1×Cols bias row added to every row,
// row-partitioned across the context's threads.
func (k K) AddBias(a, bias *Dense) *Dense {
	if bias.Rows != 1 || bias.Cols != a.Cols {
		shapePanic("AddBias", "bias must be 1×a.Cols",
			Dim("a", a.Rows, a.Cols), Dim("bias", bias.Rows, bias.Cols))
	}
	defer k.end(k.begin())
	out := NewDense(a.Rows, a.Cols)
	k.parRange(a.Rows, grainFor(a.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*a.Cols : (i+1)*a.Cols]
			for j, v := range row {
				orow[j] = v + bias.Data[j]
			}
		}
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
