package tensor

import "math/rand"

// RandNormal returns an r×c matrix with i.i.d. Normal(0, 1) entries drawn
// from rng, matching how the paper generates FFNN inputs and weights.
func RandNormal(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// RandSparse returns an r×c matrix where each entry is non-zero (uniform
// in (0, 1]) with probability density.
func RandSparse(rng *rand.Rand, r, c int, density float64) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.Float64() + 1e-9
		}
	}
	return m
}
