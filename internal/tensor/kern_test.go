package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"matopt/internal/pool"
)

// bitsEqual compares two matrices bit for bit — the golden standard
// every thread-count comparison in this file uses. Tolerance-based
// comparison would hide exactly the reassociation bugs these tests
// exist to catch.
func bitsEqual(a, b *Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// gemmShapes crosses every blocking boundary: the 4-row micro-kernel
// remainder (rows ≢ 0 mod 4), the kc=256 panel edge, the nc=128 panel
// edge, and tiny shapes that stay under the serial cutoff.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 2},
	{4, 7, 9},
	{17, 23, 31},
	{64, 64, 64},
	{65, 256, 128},
	{70, 257, 129},
	{130, 300, 270},
}

// TestMatMulMatchesNaiveBitExact: the cache-blocked GEMM reproduces the
// naive ascending-k accumulation bit for bit at every shape and thread
// count — this is the determinism contract KERNELS.md documents.
func TestMatMulMatchesNaiveBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range gemmShapes {
		a := RandNormal(rng, s.m, s.k)
		b := RandNormal(rng, s.k, s.n)
		want := naiveMatMul(a, b)
		for _, threads := range []int{1, 2, 3, 8} {
			got := K{Threads: threads}.MatMul(a, b)
			if !bitsEqual(got, want) {
				t.Fatalf("%dx%dx%d threads=%d: blocked GEMM differs from naive (max |Δ| %g)",
					s.m, s.k, s.n, threads, MaxAbsDiff(got, want))
			}
		}
	}
}

// TestMatMulAddAccumulates: MatMulAdd adds into a non-zero destination
// identically at every thread count.
func TestMatMulAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandNormal(rng, 33, 47)
	b := RandNormal(rng, 47, 29)
	base := RandNormal(rng, 33, 29)
	want := base.Clone()
	K{}.MatMulAdd(want, a, b)
	for _, threads := range []int{2, 8} {
		got := base.Clone()
		K{Threads: threads}.MatMulAdd(got, a, b)
		if !bitsEqual(got, want) {
			t.Fatalf("threads=%d: MatMulAdd differs from serial", threads)
		}
	}
}

// TestGEMMSignedZeros: rows of ±0 exercise the no-zero-skip rule — a
// skipped `+= 0·b` is not a no-op for signed zeros, so the kernel must
// multiply through. -0·x + 0 and 0·x + -0 land on different bit
// patterns than a skip would produce.
func TestGEMMSignedZeros(t *testing.T) {
	negZero := math.Copysign(0, -1)
	a := NewDense(6, 5)
	b := NewDense(5, 4)
	for i := range a.Data {
		if i%2 == 0 {
			a.Data[i] = negZero
		}
	}
	for i := range b.Data {
		switch i % 3 {
		case 0:
			b.Data[i] = negZero
		case 1:
			b.Data[i] = float64(i)
		}
	}
	want := naiveMatMul(a, b)
	for _, threads := range []int{1, 2, 4} {
		got := K{Threads: threads}.MatMul(a, b)
		if !bitsEqual(got, want) {
			t.Fatalf("threads=%d: signed-zero GEMM differs from naive", threads)
		}
	}
}

// TestKernelsBitIdenticalAcrossThreads sweeps every parallelized dense
// kernel: serial K{} and threaded contexts must agree bit for bit.
func TestKernelsBitIdenticalAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 63, 41)
	b := RandNormal(rng, 63, 41)
	bias := RandNormal(rng, 1, 41)
	kernels := []struct {
		name string
		run  func(k K) *Dense
	}{
		{"Add", func(k K) *Dense { return k.Add(a, b) }},
		{"Sub", func(k K) *Dense { return k.Sub(a, b) }},
		{"Hadamard", func(k K) *Dense { return k.Hadamard(a, b) }},
		{"AddInPlace", func(k K) *Dense { c := a.Clone(); k.AddInPlace(c, b); return c }},
		{"Transpose", func(k K) *Dense { return k.Transpose(a) }},
		{"Scale", func(k K) *Dense { return k.Scale(a, -1.75) }},
		{"RowSums", func(k K) *Dense { return k.RowSums(a) }},
		{"ColSums", func(k K) *Dense { return k.ColSums(a) }},
		{"AddBias", func(k K) *Dense { return k.AddBias(a, bias) }},
		{"ReLU", func(k K) *Dense { return k.ReLU(a) }},
		{"ReLUGrad", func(k K) *Dense { return k.ReLUGrad(a) }},
		{"Sigmoid", func(k K) *Dense { return k.Sigmoid(a) }},
		{"Exp", func(k K) *Dense { return k.Exp(a) }},
		{"Neg", func(k K) *Dense { return k.Neg(a) }},
		{"Softmax", func(k K) *Dense { return k.Softmax(a) }},
	}
	for _, kr := range kernels {
		t.Run(kr.name, func(t *testing.T) {
			want := kr.run(K{})
			for _, threads := range []int{2, 3, 8} {
				if got := kr.run(K{Threads: threads}); !bitsEqual(got, want) {
					t.Fatalf("threads=%d differs from serial", threads)
				}
			}
			// Package-level wrappers are the serial context.
			if got := kr.run(Auto()); !bitsEqual(got, want) {
				t.Fatal("Auto() differs from serial")
			}
		})
	}
}

// TestShapeErrors: every mis-shaped call panics with a typed
// *ShapeError naming the kernel and both operands.
func TestShapeErrors(t *testing.T) {
	m23 := NewDense(2, 3)
	m24 := NewDense(2, 4)
	m32 := NewDense(3, 2)
	cases := []struct {
		kernel string
		call   func()
	}{
		{"tensor.MatMul", func() { MatMul(m23, m23) }},
		{"tensor.MatMulAdd", func() { MatMulAdd(NewDense(2, 2), m23, m23) }},
		{"tensor.MatMulAdd", func() { MatMulAdd(NewDense(9, 9), m23, m32) }},
		{"tensor.Add", func() { Add(m23, m24) }},
		{"tensor.Sub", func() { Sub(m23, m32) }},
		{"tensor.Hadamard", func() { Hadamard(m23, m24) }},
		{"tensor.AddInPlace", func() { AddInPlace(m23, m24) }},
		{"tensor.AddBias", func() { AddBias(m23, NewDense(1, 4)) }},
		{"tensor.AddBias", func() { AddBias(m23, NewDense(2, 3)) }},
	}
	for _, tc := range cases {
		t.Run(tc.kernel, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic from mis-shaped call")
				}
				se, ok := r.(*ShapeError)
				if !ok {
					t.Fatalf("panic value is %T, want *ShapeError", r)
				}
				if se.Kernel != tc.kernel {
					t.Fatalf("ShapeError.Kernel = %q, want %q", se.Kernel, tc.kernel)
				}
				if len(se.Dims) == 0 || !strings.Contains(se.Error(), tc.kernel) {
					t.Fatalf("ShapeError lacks dims or kernel name: %v", se)
				}
			}()
			tc.call()
		})
	}
}

// TestCutoffBoundary pins where kernels go parallel: NumChunks stays 1
// below 2·MinParWork total work and forks above it (given threads).
func TestCutoffBoundary(t *testing.T) {
	k := K{Threads: 4}
	// workPerUnit = MinParWork ⇒ grain 1 ⇒ chunk per row up to threads.
	if c := k.NumChunks(10, pool.MinParWork); c != 4 {
		t.Fatalf("heavy rows: NumChunks = %d, want 4", c)
	}
	// workPerUnit 1 ⇒ grain MinParWork: below 2 grains stays serial.
	if c := k.NumChunks(2*pool.MinParWork-1, 1); c != 1 {
		t.Fatalf("just under cutoff: NumChunks = %d, want 1", c)
	}
	if c := k.NumChunks(2*pool.MinParWork, 1); c != 2 {
		t.Fatalf("at cutoff: NumChunks = %d, want 2", c)
	}
	// The zero context is always serial.
	if c := (K{}).NumChunks(1<<20, pool.MinParWork); c != 1 {
		t.Fatalf("serial context forked into %d chunks", c)
	}
}

// TestKernelTimer: an attached Timer sees every kernel invocation.
func TestKernelTimer(t *testing.T) {
	var calls int
	var total int64
	k := K{Threads: 2, Timer: func(ns int64) { calls++; total += ns }}
	rng := rand.New(rand.NewSource(5))
	a := RandNormal(rng, 40, 40)
	k.MatMul(a, a)
	k.Add(a, a)
	k.Softmax(a)
	if calls != 3 {
		t.Fatalf("timer saw %d kernels, want 3", calls)
	}
	if total < 0 {
		t.Fatalf("negative kernel time %d", total)
	}
}
