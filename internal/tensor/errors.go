package tensor

import (
	"fmt"
	"strings"
)

// ShapeError reports a kernel invoked with incompatible operand shapes.
// Kernels panic with *ShapeError rather than returning it: a shape
// mismatch inside a kernel means the planner emitted an inconsistent
// physical plan (shapes are decided at optimize time and validated by
// plan.Validate), so by the time execution reaches a kernel it is a
// programming error, not an input error. The typed panic value lets the
// engines' recover paths and the table tests distinguish a real shape
// bug from an arbitrary panic string.
type ShapeError struct {
	Kernel string   // qualified kernel name, e.g. "tensor.MatMulAdd" or "sparse.MulDense"
	Want   string   // the constraint that was violated
	Dims   []string // operand shapes as "rows×cols" strings, in argument order
}

// Error formats the kernel, the violated constraint and every operand
// shape, e.g. `tensor.MatMulAdd: inner dimensions must agree (a.Cols ==
// b.Rows): dst 3×4, a 3×5, b 6×4`.
func (e *ShapeError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Kernel, e.Want, strings.Join(e.Dims, ", "))
}

// Dim formats one named operand shape for a ShapeError.
func Dim(name string, rows, cols int) string {
	return fmt.Sprintf("%s %d×%d", name, rows, cols)
}

// shapePanic builds and panics with a *ShapeError.
func shapePanic(kernel, want string, dims ...string) {
	panic(&ShapeError{Kernel: "tensor." + kernel, Want: want, Dims: dims})
}
