// Package tensor provides the dense local linear-algebra kernels that the
// distributed engine executes inside each worker. Everything is float64
// and row-major; kernels are written cache-consciously (i-k-j loops,
// blocked multiply) but use only the standard library.
package tensor

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense returns a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("tensor: invalid dims %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("tensor: FromRows requires a non-empty ragged-free input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the (i, j) entry.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Bytes returns the payload size in bytes.
func (m *Dense) Bytes() int64 { return int64(len(m.Data)) * 8 }

// Slice returns a copy of the sub-matrix [r0, r1) × [c0, c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("tensor: bad slice [%d:%d, %d:%d) of %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Data[(i-r0)*out.Cols:(i-r0+1)*out.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// SetSlice copies src into m starting at (r0, c0).
func (m *Dense) SetSlice(r0, c0 int, src *Dense) {
	if r0+src.Rows > m.Rows || c0+src.Cols > m.Cols || r0 < 0 || c0 < 0 {
		panic(fmt.Sprintf("tensor: SetSlice %dx%d at (%d,%d) overflows %dx%d", src.Rows, src.Cols, r0, c0, m.Rows, m.Cols))
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Data[i*src.Cols:(i+1)*src.Cols])
	}
}

// Equal reports entrywise equality within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest entrywise absolute difference, or +Inf on
// a shape mismatch.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var d float64
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// Density returns the fraction of non-zero entries.
func (m *Dense) Density() float64 {
	nnz := 0
	for _, v := range m.Data {
		if v != 0 {
			nnz++
		}
	}
	return float64(nnz) / float64(len(m.Data))
}

func (m *Dense) String() string { return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols) }
