package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// goldenTrace builds a fixed-timestamp trace shaped like a real run:
// an optimize phase followed by a dist execution with two vertices.
func goldenTrace() *Trace {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	return &Trace{Spans: []SpanData{
		{ID: 1, Parent: 0, Name: "optimize", Start: at(0), End: at(1500),
			Attrs: []Attr{StrAttr("algorithm", "frontier")}},
		{ID: 2, Parent: 1, Name: "plancache.lookup", Start: at(10), End: at(20),
			Attrs: []Attr{BoolAttr("hit", false)}},
		{ID: 3, Parent: 1, Name: "frontier", Start: at(20), End: at(1400)},
		{ID: 4, Parent: 3, Name: "frontier.round", Start: at(30), End: at(700),
			Attrs: []Attr{IntAttr("vertex", 2)}},
		{ID: 5, Parent: 0, Name: "execute", Start: at(1500), End: at(3500)},
		{ID: 6, Parent: 5, Name: "dist.run", Start: at(1510), End: at(3490)},
		{ID: 7, Parent: 6, Name: "vertex", Start: at(1520), End: at(2500),
			Attrs: []Attr{IntAttr("id", 3), StrAttr("impl", "RowMatrix")}},
	}}
}

func sp(n int) string { return strings.Repeat(" ", n) }

func TestTreeGolden(t *testing.T) {
	want := "optimize" + sp(28) + "1.5ms  algorithm=frontier\n" +
		"  plancache.lookup" + sp(19) + "10µs  hit=false\n" +
		"  frontier" + sp(25) + "1.38ms\n" +
		"    frontier.round" + sp(18) + "670µs  vertex=2\n" +
		"execute" + sp(31) + "2ms\n" +
		"  dist.run" + sp(25) + "1.98ms\n" +
		"    vertex" + sp(26) + "980µs  id=3  impl=RowMatrix\n"
	got := goldenTrace().Tree()
	if got != want {
		t.Errorf("Tree golden mismatch.\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestTreeOpenSpanClampsToTraceEnd(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr := &Trace{Spans: []SpanData{
		{ID: 1, Name: "run", Start: base}, // never ended
		{ID: 2, Parent: 1, Name: "step", Start: base.Add(time.Millisecond), End: base.Add(3 * time.Millisecond)},
	}}
	want := "run" + sp(35) + "3ms  (open)\n" +
		"  step" + sp(32) + "2ms\n"
	if got := tr.Tree(); got != want {
		t.Errorf("open-span Tree mismatch.\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	tr := &Trace{Spans: []SpanData{
		{ID: 1, Name: "dist.run", Start: at(0), End: at(2000)},
		{ID: 2, Parent: 1, Name: "vertex", Start: at(100), End: at(900),
			Attrs: []Attr{IntAttr("id", 3)}},
		{ID: 3, Parent: 1, Name: "vertex", Start: at(100), End: at(1900)},
		{ID: 4, Parent: 3, Name: "exchange", Start: at(200), End: at(800),
			Attrs: []Attr{StrAttr("kind", "shuffle")}},
	}}
	want := `{
  "traceEvents": [
    {
      "name": "dist.run",
      "ph": "X",
      "ts": 0,
      "dur": 2000,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "vertex",
      "ph": "X",
      "ts": 100,
      "dur": 800,
      "pid": 1,
      "tid": 2,
      "args": {
        "id": 3
      }
    },
    {
      "name": "vertex",
      "ph": "X",
      "ts": 100,
      "dur": 1800,
      "pid": 1,
      "tid": 3
    },
    {
      "name": "exchange",
      "ph": "X",
      "ts": 200,
      "dur": 600,
      "pid": 1,
      "tid": 3,
      "args": {
        "kind": "shuffle"
      }
    }
  ],
  "displayTimeUnit": "ms"
}
`
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("Chrome trace golden mismatch.\nwant:\n%s\ngot:\n%s", want, got)
	}
	// The file must also be valid trace_event JSON when decoded back.
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("emitted file is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 4 {
		t.Errorf("decoded %d events, want 4", len(decoded.TraceEvents))
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []struct {
		ID     int64          `json:"id"`
		Parent int64          `json:"parent"`
		Name   string         `json:"name"`
		DurNs  int64          `json:"dur_ns"`
		Attrs  map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if len(spans) != 7 {
		t.Fatalf("decoded %d spans, want 7", len(spans))
	}
	if spans[0].Name != "optimize" || spans[0].DurNs != 1_500_000 {
		t.Errorf("span 0 wrong: %+v", spans[0])
	}
	if spans[6].Parent != 6 || spans[6].Attrs["impl"] != "RowMatrix" {
		t.Errorf("span 6 wrong: %+v", spans[6])
	}
}

func TestDurationsByName(t *testing.T) {
	d := goldenTrace().DurationsByName()
	if d["optimize"] != 1500*time.Microsecond {
		t.Errorf("optimize = %v", d["optimize"])
	}
	// Two vertex-free names but one repeated name would sum; here each
	// name appears once except none repeat — check a nested one.
	if d["frontier.round"] != 670*time.Microsecond {
		t.Errorf("frontier.round = %v", d["frontier.round"])
	}
}

func TestWallCoverage(t *testing.T) {
	if got := goldenTrace().WallCoverage(); got != 1 {
		t.Errorf("contiguous roots should cover 1.0, got %g", got)
	}
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	gap := &Trace{Spans: []SpanData{
		{ID: 1, Name: "a", Start: at(0), End: at(100)},
		{ID: 2, Name: "b", Start: at(300), End: at(400)},
	}}
	if got := gap.WallCoverage(); got != 0.5 {
		t.Errorf("gapped roots should cover 0.5, got %g", got)
	}
}
