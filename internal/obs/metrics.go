package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric. A metric's identity is
// its name plus its sorted label set.
type Label struct {
	// Key and Value name and qualify the dimension, e.g. {"kind",
	// "shuffle"}.
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. A nil *Counter
// (from a nil *Registry) accepts Add/Inc as no-ops and reads as 0.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge accepts writes
// as no-ops and reads as 0. Merging registries keeps the maximum, so
// gauges suit high-water marks (peak bytes, longest wall time).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed, registration-time bucket
// boundaries (cumulative style: bucket i counts observations ≤
// bounds[i], with one overflow bucket above the last bound). A nil
// *Histogram accepts Observe as a no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile returns a conservative estimate of the q-quantile (q in
// [0, 1]): the upper bound of the smallest bucket whose cumulative
// count reaches q × total. Observations that landed in the overflow
// bucket report +Inf — the caller learns the estimate is unbounded
// rather than getting a fabricated number. Returns 0 with no
// observations or on a nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= need {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// DefaultDurationBuckets returns the bucket boundaries, in seconds,
// used for the runtime's duration histograms: 1µs to 60s, roughly
// logarithmic.
func DefaultDurationBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30, 60}
}

// MetricKind discriminates a Metric snapshot.
type MetricKind uint8

// The metric kinds a Registry holds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; the overflow
	// bucket reports +Inf.
	UpperBound float64
	// Count is the number of observations in this bucket (not
	// cumulative).
	Count int64
}

// Metric is one snapshot entry of a Registry.
type Metric struct {
	// Name is the metric family name; Labels its sorted dimensions.
	Name   string
	Labels []Label
	// Kind tells which of the remaining fields are meaningful.
	Kind MetricKind
	// Value carries counter and gauge readings.
	Value int64
	// Count, Sum and Buckets carry histogram readings.
	Count   int64
	Sum     float64
	Buckets []Bucket
}

// metricID is a metric's parsed identity, kept alongside the canonical
// key so snapshots need no string parsing.
type metricID struct {
	name   string
	labels []Label
}

// Registry is a set of named, labelled metrics. Instruments are created
// on first use and shared by identity, so two calls with the same name
// and labels return the same counter — which is what lets retried work
// meter into the same exchange row. A nil *Registry is a valid,
// disabled registry: every getter returns nil, and nil instruments
// no-op. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ids      map[string]metricID
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ids:      make(map[string]metricID),
	}
}

// defaultRegistry is the process-wide registry; see Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Subsystems that keep a
// per-run registry (the dist runtime) merge it into Default when the
// run completes, so the process totals accumulate across runs.
func Default() *Registry { return defaultRegistry }

// key canonicalizes a metric identity: name plus labels sorted by key.
func key(name string, labels []Label) (string, metricID) {
	if len(labels) == 0 {
		return name, metricID{name: name}
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String(), metricID{name: name, labels: ls}
}

// Counter returns the counter with the given identity, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k, id := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
		r.ids[k] = id
	}
	return c
}

// Gauge returns the gauge with the given identity, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k, id := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
		r.ids[k] = id
	}
	return g
}

// Histogram returns the histogram with the given identity, creating it
// with the given bucket bounds (ascending) on first use; later calls
// reuse the first registration's bounds. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k, id := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[k] = h
		r.ids[k] = id
	}
	return h
}

// Snapshot returns every metric's current reading, sorted by name then
// canonical label set, so output is deterministic. Returns nil on a nil
// registry.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		id := r.ids[k]
		out = append(out, Metric{Name: id.name, Labels: id.labels, Kind: KindCounter, Value: c.Value()})
	}
	for k, g := range r.gauges {
		id := r.ids[k]
		out = append(out, Metric{Name: id.name, Labels: id.labels, Kind: KindGauge, Value: g.Value()})
	}
	for k, h := range r.hists {
		id := r.ids[k]
		m := Metric{Name: id.name, Labels: id.labels, Kind: KindHistogram, Count: h.Count(), Sum: h.Sum()}
		m.Buckets = make([]Bucket, len(h.buckets))
		for i := range h.buckets {
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			m.Buckets[i] = Bucket{UpperBound: ub, Count: h.buckets[i].Load()}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// Render returns the registry as readable text, one metric per line,
// deterministically ordered. Histograms render count, sum and non-empty
// buckets.
func (r *Registry) Render() string {
	var b strings.Builder
	for _, m := range r.Snapshot() {
		b.WriteString(m.Name)
		if len(m.Labels) > 0 {
			b.WriteByte('{')
			for i, l := range m.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%s=%s", l.Key, l.Value)
			}
			b.WriteByte('}')
		}
		switch m.Kind {
		case KindHistogram:
			fmt.Fprintf(&b, " count=%d sum=%.6g", m.Count, m.Sum)
			for _, bk := range m.Buckets {
				if bk.Count == 0 {
					continue
				}
				if math.IsInf(bk.UpperBound, 1) {
					fmt.Fprintf(&b, " le_inf=%d", bk.Count)
				} else {
					fmt.Fprintf(&b, " le_%.3g=%d", bk.UpperBound, bk.Count)
				}
			}
		default:
			fmt.Fprintf(&b, " %d", m.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Merge folds src's metrics into r: counters add, gauges keep the
// maximum (high-water semantics), histograms add bucket counts and
// sums (histograms created on the r side reuse src's bounds). Both
// sides may be nil; a nil side makes Merge a no-op.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	type vsnap struct {
		id metricID
		v  int64
	}
	type hsnap struct {
		id      metricID
		bounds  []float64
		buckets []int64
		count   int64
		sum     float64
	}
	src.mu.Lock()
	var counters, gauges []vsnap
	var hists []hsnap
	for k, c := range src.counters {
		counters = append(counters, vsnap{id: src.ids[k], v: c.Value()})
	}
	for k, g := range src.gauges {
		gauges = append(gauges, vsnap{id: src.ids[k], v: g.Value()})
	}
	for k, h := range src.hists {
		s := hsnap{id: src.ids[k], bounds: append([]float64(nil), h.bounds...), count: h.Count(), sum: h.Sum()}
		s.buckets = make([]int64, len(h.buckets))
		for i := range h.buckets {
			s.buckets[i] = h.buckets[i].Load()
		}
		hists = append(hists, s)
	}
	src.mu.Unlock()

	for _, s := range counters {
		r.Counter(s.id.name, s.id.labels...).Add(s.v)
	}
	for _, s := range gauges {
		r.Gauge(s.id.name, s.id.labels...).SetMax(s.v)
	}
	for _, s := range hists {
		h := r.Histogram(s.id.name, s.bounds, s.id.labels...)
		if h == nil || len(h.buckets) != len(s.buckets) {
			continue // bound mismatch with an existing family; skip
		}
		for i, n := range s.buckets {
			h.buckets[i].Add(n)
		}
		h.count.Add(s.count)
		for {
			old := h.sumBits.Load()
			if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+s.sum)) {
				break
			}
		}
	}
}
