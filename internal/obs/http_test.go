package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandlerText(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests", L("endpoint", "optimize")).Add(3)
	r.Gauge("serve.inflight").Set(2)
	r.Histogram("serve.queue.wait.seconds", DefaultDurationBuckets()).Observe(0.002)

	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"serve.requests{endpoint=optimize} 3",
		"serve.inflight 2",
		"serve.queue.wait.seconds count=1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("text body missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsHandlerJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests", L("endpoint", "execute")).Add(7)
	r.Histogram("serve.request.seconds", []float64{0.1, 1}).Observe(0.5)

	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got []struct {
		Name    string            `json:"name"`
		Labels  map[string]string `json:"labels"`
		Kind    string            `json:"kind"`
		Value   *int64            `json:"value"`
		Count   *int64            `json:"count"`
		Buckets []struct {
			LE    json.RawMessage `json:"le"`
			Count int64           `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d metrics, want 2", len(got))
	}
	byName := map[string]int{}
	for i, m := range got {
		byName[m.Name] = i
	}
	c := got[byName["serve.requests"]]
	if c.Kind != "counter" || c.Value == nil || *c.Value != 7 || c.Labels["endpoint"] != "execute" {
		t.Errorf("counter serialized wrong: %+v", c)
	}
	h := got[byName["serve.request.seconds"]]
	if h.Kind != "histogram" || h.Count == nil || *h.Count != 1 || len(h.Buckets) != 3 {
		t.Errorf("histogram serialized wrong: %+v", h)
	}
	if string(h.Buckets[2].LE) != `"inf"` {
		t.Errorf("overflow bucket le = %s, want \"inf\"", h.Buckets[2].LE)
	}
}

func TestMetricsHandlerNilRegistryAndMethod(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("nil registry: status %d body %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}
