// Package obs is the repository's zero-dependency observability layer:
// a span tracer and a metrics registry threaded through the optimizer
// (internal/core), the execution runtimes (internal/dist) and the public
// API, plus exporters that render a run as a human-readable trace tree,
// as JSON, or as a Chrome trace_event file loadable in chrome://tracing
// and Perfetto.
//
// The paper's optimizer picks plans from *predicted* operator and
// transformation costs (§7); this package supplies the measured
// counterpart — where the time of a real run actually went, span by
// span, and what the runtime's meters counted — so predicted and
// observed cost can be held against each other.
//
// Everything is nil-safe and allocation-free when disabled: a nil
// *Tracer returns nil *Spans whose methods no-op, and a nil *Registry
// hands out nil instruments whose methods no-op, so instrumented code
// carries no branches beyond a nil check and no allocations when
// observability is off. DESIGN.md §11 documents the span taxonomy and
// the metric names recorded by each subsystem.
package obs

import (
	"sync"
	"time"
)

// Tracer collects spans for one traced activity (an optimization, an
// execution, a whole CLI run). A nil *Tracer is a valid, disabled
// tracer: Start returns nil and Snapshot returns nil. All methods are
// safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	spans []*Span
	seq   int64
}

// NewTracer returns an empty, enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is one timed region of a traced run, with a parent link and
// typed attributes. Spans are created with Tracer.Start and closed with
// End; attribute setters may be called between the two and return the
// span so calls chain. All methods no-op on a nil *Span.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
	end    time.Time
	attrs  []Attr
}

// Start opens a span named name under parent (nil parent = a root
// span). On a nil tracer it returns nil, which every Span method
// accepts, so call sites need no enabled-check of their own.
func (t *Tracer) Start(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: time.Now()}
	if parent != nil {
		s.parent = parent.id
	}
	t.mu.Lock()
	t.seq++
	s.id = t.seq
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// End closes the span. Ending an already-ended span keeps the first end
// time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// SetInt attaches an integer attribute and returns the span.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.setAttr(Attr{Key: key, kind: attrInt, i: v})
	return s
}

// SetFloat attaches a float attribute and returns the span.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.setAttr(Attr{Key: key, kind: attrFloat, f: v})
	return s
}

// SetStr attaches a string attribute and returns the span.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.setAttr(Attr{Key: key, kind: attrStr, s: v})
	return s
}

// SetBool attaches a boolean attribute and returns the span.
func (s *Span) SetBool(key string, v bool) *Span {
	if s == nil {
		return nil
	}
	var i int64
	if v {
		i = 1
	}
	s.setAttr(Attr{Key: key, kind: attrBool, i: i})
	return s
}

func (s *Span) setAttr(a Attr) {
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, a)
	s.tr.mu.Unlock()
}

// attrKind discriminates an Attr's payload.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrStr
	attrBool
)

// Attr is one typed span attribute. Build them with IntAttr, FloatAttr,
// StrAttr and BoolAttr (or the Span setters).
type Attr struct {
	// Key names the attribute.
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// IntAttr builds an integer attribute.
func IntAttr(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// FloatAttr builds a float attribute.
func FloatAttr(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// StrAttr builds a string attribute.
func StrAttr(key, v string) Attr { return Attr{Key: key, kind: attrStr, s: v} }

// BoolAttr builds a boolean attribute.
func BoolAttr(key string, v bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if v {
		a.i = 1
	}
	return a
}

// Value returns the attribute's payload as an any (int64, float64,
// string or bool), for JSON-style exporters.
func (a Attr) Value() any {
	switch a.kind {
	case attrFloat:
		return a.f
	case attrStr:
		return a.s
	case attrBool:
		return a.i != 0
	default:
		return a.i
	}
}

// SpanData is the immutable snapshot of one span. A zero End means the
// span was still open when the snapshot was taken; exporters clamp open
// spans to the trace's end.
type SpanData struct {
	// ID is the span's tracer-unique identifier (1-based, in creation
	// order). Parent is the parent span's ID, or 0 for a root span.
	ID, Parent int64
	// Name is the span's taxonomy name (DESIGN.md §11).
	Name string
	// Start and End bound the span; End is zero while the span is open.
	Start, End time.Time
	// Attrs are the attributes in the order they were set.
	Attrs []Attr
}

// Duration returns End−Start, clamping open or inverted spans to 0.
func (d SpanData) Duration() time.Duration {
	if d.End.IsZero() || d.End.Before(d.Start) {
		return 0
	}
	return d.End.Sub(d.Start)
}

// Snapshot returns the tracer's spans as an immutable Trace, in
// creation order. On a nil tracer it returns nil.
func (t *Tracer) Snapshot() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &Trace{Spans: make([]SpanData, len(t.spans))}
	for i, s := range t.spans {
		tr.Spans[i] = SpanData{
			ID: s.id, Parent: s.parent, Name: s.name,
			Start: s.start, End: s.end,
			Attrs: append([]Attr(nil), s.attrs...),
		}
	}
	return tr
}

// Reset discards every collected span, keeping the tracer enabled; IDs
// continue from where they were (a Trace never mixes spans from before
// and after a Reset).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}
