package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace is an immutable snapshot of a tracer's spans, the unit every
// exporter consumes: Tree renders a human-readable span tree, WriteJSON
// a tooling-friendly JSON array, and WriteChromeTrace a Chrome
// trace_event file loadable in chrome://tracing or Perfetto.
type Trace struct {
	// Spans is the snapshot in span-creation order.
	Spans []SpanData
}

// endOf clamps an open span to the trace's last known instant, so
// exporters render aborted runs sensibly.
func (t *Trace) endOf(d SpanData) time.Time {
	if !d.End.IsZero() {
		return d.End
	}
	last := d.Start
	for _, s := range t.Spans {
		if s.Start.After(last) {
			last = s.Start
		}
		if !s.End.IsZero() && s.End.After(last) {
			last = s.End
		}
	}
	return last
}

// children maps each parent ID to its child indices, ordered by start
// time (creation order breaking ties), with roots under key 0.
// Orphans — spans whose parent is missing from the snapshot — are
// treated as roots so a partial snapshot still renders.
func (t *Trace) children() map[int64][]int {
	if t == nil {
		return nil
	}
	known := make(map[int64]bool, len(t.Spans))
	for _, s := range t.Spans {
		known[s.ID] = true
	}
	kids := make(map[int64][]int)
	for i, s := range t.Spans {
		p := s.Parent
		if !known[p] {
			p = 0
		}
		kids[p] = append(kids[p], i)
	}
	for _, c := range kids {
		c := c
		sort.SliceStable(c, func(a, b int) bool {
			sa, sb := t.Spans[c[a]], t.Spans[c[b]]
			if !sa.Start.Equal(sb.Start) {
				return sa.Start.Before(sb.Start)
			}
			return sa.ID < sb.ID
		})
	}
	return kids
}

// Tree renders the trace as an indented, human-readable span tree:
// one line per span with its duration and attributes, children indented
// under parents. An empty or nil trace renders as "(empty trace)".
func (t *Trace) Tree() string {
	if t == nil || len(t.Spans) == 0 {
		return "(empty trace)\n"
	}
	kids := t.children()
	var b strings.Builder
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		s := t.Spans[idx]
		d := t.endOf(s).Sub(s.Start)
		if d < 0 {
			d = 0
		}
		fmt.Fprintf(&b, "%s%-*s %12s", strings.Repeat("  ", depth), 28-2*depth, s.Name, d.Round(time.Microsecond))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, "  %s=%v", a.Key, a.Value())
		}
		if s.End.IsZero() {
			b.WriteString("  (open)")
		}
		b.WriteByte('\n')
		for _, c := range kids[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, root := range kids[0] {
		walk(root, 0)
	}
	return b.String()
}

// jsonSpan is the schema WriteJSON emits per span.
type jsonSpan struct {
	ID     int64          `json:"id"`
	Parent int64          `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  time.Time      `json:"start"`
	DurNs  int64          `json:"dur_ns"`
	Open   bool           `json:"open,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// WriteJSON writes the trace as a JSON array of spans — id, parent,
// name, RFC 3339 start, duration in nanoseconds and an attrs object —
// for downstream tooling.
func (t *Trace) WriteJSON(w io.Writer) error {
	spans := make([]jsonSpan, 0, len(t.Spans))
	for _, s := range t.Spans {
		js := jsonSpan{
			ID: s.ID, Parent: s.Parent, Name: s.Name, Start: s.Start,
			DurNs: t.endOf(s).Sub(s.Start).Nanoseconds(),
			Open:  s.End.IsZero(),
		}
		if js.DurNs < 0 {
			js.DurNs = 0
		}
		if len(s.Attrs) > 0 {
			js.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				js.Attrs[a.Key] = a.Value()
			}
		}
		spans = append(spans, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// chromeEvent is one trace_event entry: a "complete" (ph "X") event
// with microsecond timestamps relative to the trace start.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object form of the trace_event format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the trace in the Chrome trace_event format
// ("complete" events, JSON object form), loadable in chrome://tracing
// and Perfetto. Every span becomes one event; concurrent subtrees stay
// readable because each span is assigned to the track (tid) of its
// depth-1 ancestor — in this repo's taxonomy, one lane per dist vertex
// and one for the optimizer — and timestamps are microseconds relative
// to the earliest span start.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	var t0 time.Time
	for _, s := range t.Spans {
		if t0.IsZero() || s.Start.Before(t0) {
			t0 = s.Start
		}
	}
	kids := t.children()
	// lane assignment: roots and their direct children open lanes keyed
	// by their own ID; deeper spans inherit the parent's lane.
	lanes := make(map[int64]int64, len(t.Spans))
	var assign func(idx int, depth int, lane int64)
	assign = func(idx, depth int, lane int64) {
		s := t.Spans[idx]
		if depth <= 1 {
			lane = s.ID
		}
		lanes[s.ID] = lane
		for _, c := range kids[s.ID] {
			assign(c, depth+1, lane)
		}
	}
	for _, root := range kids[0] {
		assign(root, 0, t.Spans[root].ID)
	}
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(t.Spans))}
	for _, s := range t.Spans {
		dur := t.endOf(s).Sub(s.Start)
		if dur < 0 {
			dur = 0
		}
		ev := chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Start.Sub(t0).Nanoseconds()) / 1e3,
			Dur: float64(dur.Nanoseconds()) / 1e3,
			Pid: 1, Tid: lanes[s.ID],
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value()
			}
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// DurationsByName sums span durations per span name — the phase
// breakdown `make bench` records next to its timings. Open spans are
// clamped to the trace end.
func (t *Trace) DurationsByName() map[string]time.Duration {
	if t == nil {
		return nil
	}
	out := make(map[string]time.Duration)
	for _, s := range t.Spans {
		d := t.endOf(s).Sub(s.Start)
		if d < 0 {
			d = 0
		}
		out[s.Name] += d
	}
	return out
}

// WallCoverage reports the fraction of the window [earliest span start,
// latest span end] covered by the union of root spans — the acceptance
// metric for "the trace accounts for the run's wall time". An empty
// trace reports 0.
func (t *Trace) WallCoverage() float64 {
	if t == nil || len(t.Spans) == 0 {
		return 0
	}
	var t0, t1 time.Time
	for _, s := range t.Spans {
		end := t.endOf(s)
		if t0.IsZero() || s.Start.Before(t0) {
			t0 = s.Start
		}
		if t1.IsZero() || end.After(t1) {
			t1 = end
		}
	}
	total := t1.Sub(t0)
	if total <= 0 {
		return 1
	}
	// Union of root-span intervals.
	type iv struct{ a, b time.Time }
	var ivs []iv
	known := make(map[int64]bool, len(t.Spans))
	for _, s := range t.Spans {
		known[s.ID] = true
	}
	for _, s := range t.Spans {
		if s.Parent == 0 || !known[s.Parent] {
			ivs = append(ivs, iv{s.Start, t.endOf(s)})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a.Before(ivs[j].a) })
	var covered time.Duration
	var curA, curB time.Time
	for i, v := range ivs {
		if i == 0 || v.a.After(curB) {
			if i > 0 {
				covered += curB.Sub(curA)
			}
			curA, curB = v.a, v.b
			continue
		}
		if v.b.After(curB) {
			curB = v.b
		}
	}
	covered += curB.Sub(curA)
	return float64(covered) / float64(total)
}
