package obs

import (
	"testing"
	"time"
)

func TestTracerParentingAndSnapshot(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(nil, "optimize")
	child := tr.Start(root, "frontier").SetInt("vertices", 4)
	grand := tr.Start(child, "frontier.round").SetStr("vertex", "v2").SetBool("pruned", true)
	grand.End()
	child.End()
	root.SetFloat("cost", 1.5)
	root.End()

	snap := tr.Snapshot()
	if snap == nil || len(snap.Spans) != 3 {
		t.Fatalf("want 3 spans, got %+v", snap)
	}
	s := snap.Spans
	if s[0].ID != 1 || s[0].Parent != 0 || s[0].Name != "optimize" {
		t.Errorf("root span wrong: %+v", s[0])
	}
	if s[1].Parent != s[0].ID || s[2].Parent != s[1].ID {
		t.Errorf("parent links wrong: %+v", s)
	}
	if len(s[2].Attrs) != 2 || s[2].Attrs[0].Value() != "v2" || s[2].Attrs[1].Value() != true {
		t.Errorf("grandchild attrs wrong: %+v", s[2].Attrs)
	}
	if len(s[0].Attrs) != 1 || s[0].Attrs[0].Value() != 1.5 {
		t.Errorf("root attrs wrong: %+v", s[0].Attrs)
	}
	for i, sp := range s {
		if sp.End.IsZero() || sp.End.Before(sp.Start) {
			t.Errorf("span %d not properly ended: %+v", i, sp)
		}
		if sp.Duration() < 0 {
			t.Errorf("span %d negative duration", i)
		}
	}
}

func TestSpanEndKeepsFirstEndTime(t *testing.T) {
	tr := NewTracer()
	s := tr.Start(nil, "x")
	s.End()
	first := tr.Snapshot().Spans[0].End
	time.Sleep(time.Millisecond)
	s.End()
	if got := tr.Snapshot().Spans[0].End; !got.Equal(first) {
		t.Errorf("double End moved end time: %v -> %v", first, got)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer()
	tr.Start(nil, "a").End()
	tr.Reset()
	if n := len(tr.Snapshot().Spans); n != 0 {
		t.Fatalf("after Reset want 0 spans, got %d", n)
	}
	s := tr.Start(nil, "b")
	s.End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].ID != 2 {
		t.Errorf("IDs should continue after Reset: %+v", snap.Spans)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "anything")
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	// Every span method must accept a nil receiver.
	s.SetInt("a", 1).SetFloat("b", 2).SetStr("c", "d").SetBool("e", true).End()
	if tr.Snapshot() != nil {
		t.Error("nil tracer Snapshot must be nil")
	}
	tr.Reset()
	// Exporters must accept a nil trace.
	var trace *Trace
	if got := trace.Tree(); got != "(empty trace)\n" {
		t.Errorf("nil trace Tree = %q", got)
	}
	if trace.DurationsByName() != nil {
		t.Error("nil trace DurationsByName must be nil")
	}
	if trace.WallCoverage() != 0 {
		t.Error("nil trace WallCoverage must be 0")
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	tr := NewTracer()
	s := tr.Start(nil, "x").SetInt("n", 1)
	snap := tr.Snapshot()
	s.SetInt("m", 2)
	s.End()
	if len(snap.Spans[0].Attrs) != 1 {
		t.Error("snapshot must not see attrs set after it was taken")
	}
	if !snap.Spans[0].End.IsZero() {
		t.Error("snapshot must not see End called after it was taken")
	}
}

// TestDisabledHooksAllocationFree is the ISSUE's "allocation-free when
// disabled" gate in unit-test form (BenchmarkDisabledTracing measures
// the time side).
func TestDisabledHooksAllocationFree(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Start(nil, "vertex")
		s.SetInt("id", 3)
		s.End()
		reg.Counter("dist.retries").Inc()
		reg.Gauge("dist.peak_bytes").SetMax(10)
		reg.Histogram("dist.vertex.seconds", DefaultDurationBuckets()).Observe(0.5)
	})
	if allocs != 0 {
		t.Errorf("disabled hooks allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkDisabledTracing(b *testing.B) {
	var tr *Tracer
	var reg *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start(nil, "vertex")
		s.SetInt("id", int64(i))
		reg.Counter("dist.retries").Inc()
		s.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start(nil, "vertex")
		s.SetInt("id", int64(i))
		s.End()
		if i%1024 == 0 {
			tr.Reset() // keep memory bounded
		}
	}
}
