package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves a registry's current readings over HTTP — the
// serving layer's /metrics endpoint. The default rendering is the
// registry's deterministic text form (Render); ?format=json (or an
// Accept: application/json header) returns the Snapshot as a JSON
// array, one object per metric with its name, labels, kind, and
// counter/gauge value or histogram count, sum, and buckets. A nil
// registry serves an empty document of either form.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if req.URL.Query().Get("format") == "json" || req.Header.Get("Accept") == "application/json" {
			w.Header().Set("Content-Type", "application/json")
			snap := r.Snapshot()
			if snap == nil {
				snap = []Metric{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(jsonMetrics(snap))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r == nil {
			return
		}
		w.Write([]byte(r.Render()))
	})
}

// metricJSON is the wire form of one Metric: identical content, with
// the kind spelled out and histogram fields omitted from counters and
// gauges (and vice versa) so the document reads cleanly.
type metricJSON struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    string            `json:"kind"`
	Value   *int64            `json:"value,omitempty"`
	Count   *int64            `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []bucketJSON      `json:"buckets,omitempty"`
}

// bucketJSON is one cumulative-style histogram bucket; the overflow
// bucket's upper bound serializes as the string "inf" (JSON has no
// infinity).
type bucketJSON struct {
	LE    json.RawMessage `json:"le"`
	Count int64           `json:"count"`
}

func jsonMetrics(snap []Metric) []metricJSON {
	out := make([]metricJSON, len(snap))
	for i, m := range snap {
		j := metricJSON{Name: m.Name, Kind: m.Kind.String()}
		if len(m.Labels) > 0 {
			j.Labels = make(map[string]string, len(m.Labels))
			for _, l := range m.Labels {
				j.Labels[l.Key] = l.Value
			}
		}
		if m.Kind == KindHistogram {
			count, sum := m.Count, m.Sum
			j.Count, j.Sum = &count, &sum
			for _, b := range m.Buckets {
				le := json.RawMessage(`"inf"`)
				if !isInf(b.UpperBound) {
					raw, err := json.Marshal(b.UpperBound)
					if err == nil {
						le = raw
					}
				}
				j.Buckets = append(j.Buckets, bucketJSON{LE: le, Count: b.Count})
			}
		} else {
			v := m.Value
			j.Value = &v
		}
		out[i] = j
	}
	return out
}

func isInf(f float64) bool { return f > 1e308 }
