package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dist.exchange.bytes", L("kind", "shuffle"))
	c.Add(100)
	c.Inc()
	if c.Value() != 101 {
		t.Errorf("counter = %d, want 101", c.Value())
	}
	// Same identity, labels in any order → same instrument.
	if r.Counter("dist.exchange.bytes", L("kind", "shuffle")) != c {
		t.Error("same identity must return same counter")
	}
	c2 := r.Counter("dist.exchange.bytes", L("kind", "broadcast"))
	if c2 == c {
		t.Error("different labels must return different counter")
	}

	g := r.Gauge("dist.peak_bytes")
	g.Set(50)
	g.SetMax(30)
	if g.Value() != 50 {
		t.Errorf("SetMax lowered gauge to %d", g.Value())
	}
	g.SetMax(70)
	if g.Value() != 70 {
		t.Errorf("SetMax failed to raise gauge: %d", g.Value())
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("hist sum = %g, want 556.5", h.Sum())
	}
	var m Metric
	for _, s := range r.Snapshot() {
		if s.Name == "lat" {
			m = s
		}
	}
	wantBuckets := []int64{2, 1, 1, 1} // ≤1: {0.5, 1}; ≤10: {5}; ≤100: {50}; overflow: {500}
	for i, want := range wantBuckets {
		if m.Buckets[i].Count != want {
			t.Errorf("bucket %d = %d, want %d (%+v)", i, m.Buckets[i].Count, want, m.Buckets)
		}
	}
	if !math.IsInf(m.Buckets[3].UpperBound, 1) {
		t.Errorf("overflow bucket bound = %v, want +Inf", m.Buckets[3].UpperBound)
	}
}

func TestLabelIdentityIsOrderIndependent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Error("label order must not change identity")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz").Inc()
	r.Counter("aaa", L("k", "2")).Inc()
	r.Counter("aaa", L("k", "1")).Inc()
	r.Gauge("mmm").Set(1)
	snap := r.Snapshot()
	var got []string
	for _, m := range snap {
		got = append(got, m.Name+"|"+labelKey(m.Labels))
	}
	want := []string{"aaa|k=1,", "aaa|k=2,", "mmm|", "zzz|"}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("dist.retries", L("vertex", "3")).Add(2)
	r.Gauge("dist.peak_bytes").Set(1024)
	r.Histogram("dist.vertex.seconds", []float64{0.1, 1}).Observe(0.05)
	out := r.Render()
	for _, want := range []string{
		"dist.peak_bytes 1024\n",
		"dist.retries{vertex=3} 2\n",
		"dist.vertex.seconds count=1 sum=0.05 le_0.1=1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestMerge(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Counter("c", L("k", "a")).Add(5)
	src.Counter("c", L("k", "a")).Add(7)
	src.Counter("only.src").Add(3)
	dst.Gauge("peak").Set(100)
	src.Gauge("peak").Set(40)
	src.Gauge("peak2").Set(9)
	dst.Histogram("h", []float64{1, 10}).Observe(0.5)
	src.Histogram("h", []float64{1, 10}).Observe(5)
	src.Histogram("h", []float64{1, 10}).Observe(50)

	dst.Merge(src)

	if v := dst.Counter("c", L("k", "a")).Value(); v != 12 {
		t.Errorf("merged counter = %d, want 12", v)
	}
	if v := dst.Counter("only.src").Value(); v != 3 {
		t.Errorf("src-only counter = %d, want 3", v)
	}
	if v := dst.Gauge("peak").Value(); v != 100 {
		t.Errorf("gauge merge must keep max: %d", v)
	}
	if v := dst.Gauge("peak2").Value(); v != 9 {
		t.Errorf("src-only gauge = %d, want 9", v)
	}
	h := dst.Histogram("h", []float64{1, 10})
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Errorf("merged hist count=%d sum=%g, want 3/55.5", h.Count(), h.Sum())
	}
	// Merging a nil registry, or into a nil registry, is a no-op.
	dst.Merge(nil)
	var nilReg *Registry
	nilReg.Merge(src)
}

// TestRegistryConcurrent hammers one registry from many goroutines the
// way parallel dist shards do — same identities from every shard — and
// checks the totals. Run under -race (make check gates it).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const shards, perShard = 8, 500
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				r.Counter("dist.exchange.bytes", L("kind", "shuffle")).Add(10)
				r.Counter("dist.exchange.bytes", L("kind", "gather")).Add(1)
				r.Gauge("dist.peak_bytes").SetMax(int64(shard*perShard + i))
				r.Histogram("dist.vertex.seconds", DefaultDurationBuckets()).Observe(0.001)
				if i%100 == 0 {
					r.Snapshot() // readers race against writers
				}
			}
		}(s)
	}
	wg.Wait()
	if v := r.Counter("dist.exchange.bytes", L("kind", "shuffle")).Value(); v != shards*perShard*10 {
		t.Errorf("shuffle bytes = %d, want %d", v, shards*perShard*10)
	}
	if v := r.Counter("dist.exchange.bytes", L("kind", "gather")).Value(); v != shards*perShard {
		t.Errorf("gather bytes = %d, want %d", v, shards*perShard)
	}
	if v := r.Gauge("dist.peak_bytes").Value(); v != (shards-1)*perShard+perShard-1 {
		t.Errorf("peak gauge = %d", v)
	}
	h := r.Histogram("dist.vertex.seconds", DefaultDurationBuckets())
	if h.Count() != shards*perShard {
		t.Errorf("hist count = %d, want %d", h.Count(), shards*perShard)
	}
}

// TestTracerConcurrent races span creation/attrs/End from parallel
// goroutines against Snapshot; run under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(nil, "dist.run")
	var wg sync.WaitGroup
	for v := 0; v < 8; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Start(root, "vertex").SetInt("id", int64(v))
				tr.Start(s, "exchange").SetStr("kind", "shuffle").End()
				s.End()
				if i%50 == 0 {
					tr.Snapshot()
				}
			}
		}(v)
	}
	wg.Wait()
	root.End()
	if n := len(tr.Snapshot().Spans); n != 1+8*200*2 {
		t.Errorf("span count = %d, want %d", n, 1+8*200*2)
	}
}
