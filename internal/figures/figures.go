// Package figures regenerates every table and figure of the paper's
// evaluation (§8). Each FigN function runs the optimizer and the
// baselines on the corresponding workload at the paper's scale and
// returns the same rows the paper reports — simulated seconds on the
// calibrated cluster profiles in place of EC2 wall-clock (see DESIGN.md
// for the substitution argument). cmd/experiments prints them;
// bench_test.go wraps each in a benchmark.
package figures

import (
	"context"
	"fmt"
	"strings"
	"time"

	"matopt/internal/baseline"
	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/workload"
)

// Table is one reproduced figure/table.
type Table struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
}

func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", t.Name, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// FmtDur renders seconds the way the paper's tables do: H:MM:SS for long
// runs, M:SS otherwise.
func FmtDur(sec float64) string {
	if sec < 0 {
		return "Fail"
	}
	s := int(sec + 0.5)
	h, m := s/3600, (s%3600)/60
	if h > 0 {
		return fmt.Sprintf("%d:%02d:%02d", h, m, s%60)
	}
	return fmt.Sprintf("%d:%02d", m, s%60)
}

// simulate returns the simulated seconds of an annotation, or −1 (Fail)
// when the plan is infeasible.
func simulate(ann *core.Annotation, err error, env *core.Env) float64 {
	if err != nil || ann == nil {
		return -1
	}
	rep, err := engine.Simulate(ann, env)
	if err != nil {
		return -1
	}
	return rep.Seconds
}

func simEnv(workers int) *core.Env {
	return core.NewEnv(costmodel.EC2R5D(workers), format.All())
}

// Fig1 reproduces the §2.1 motivating comparison: the tile-based
// implementation 1 against the collapse-and-broadcast implementation 2
// that the optimizer discovers automatically.
func Fig1() Table {
	env := simEnv(5)
	g, err := workload.MotivatingChain()
	if err != nil {
		panic(err)
	}
	impl1, err1 := baseline.AllTile(g, env)
	auto, err2 := core.Optimize(g, env)
	return Table{
		Name:   "Figure 1",
		Title:  "matA×matB×matC on 5 workers: tile plan vs broadcast plan",
		Header: []string{"Plan", "Total time"},
		Rows: [][]string{
			{"Implementation 1 (all-tile shuffle)", FmtDur(simulate(impl1, err1, env))},
			{"Implementation 2 (auto: single + broadcast)", FmtDur(simulate(auto, err2, env))},
		},
	}
}

// Fig4 prints the chain input sizes (an input table in the paper).
func Fig4() Table {
	t := Table{
		Name:   "Figure 4",
		Title:  "Size combinations for the matrix multiplication chain",
		Header: []string{"Input", "Size Set 1", "Size Set 2", "Size Set 3"},
	}
	sets := workload.ChainSizeSets()
	get := func(s workload.ChainSizes, i int) string {
		sh := []fmt.Stringer{s.A, s.B, s.C, s.D, s.E, s.F}[i]
		return sh.String()
	}
	for i, name := range []string{"A", "B", "C", "D", "E", "F"} {
		t.Rows = append(t.Rows, []string{name, get(sets[0], i), get(sets[1], i), get(sets[2], i)})
	}
	return t
}

// Fig5 reproduces the FFNN forward+backprop+forward comparison (hidden
// 80K, 10 workers, 57-vertex graph).
func Fig5() Table {
	env := simEnv(10)
	g, err := workload.FFNNThreePass(workload.PaperFFNN(80000))
	if err != nil {
		panic(err)
	}
	auto, errA := core.Optimize(g, env)
	hand, errH := baseline.HandWritten(g, env)
	tile, errT := baseline.AllTile(g, env)
	autoCell := FmtDur(simulate(auto, errA, env))
	if errA == nil {
		autoCell += fmt.Sprintf(" (%s)", FmtDur(auto.OptSeconds))
	}
	return Table{
		Name:   "Figure 5",
		Title:  "FFNN fwd+backprop+fwd, hidden 80K, 10 workers (opt time in parens)",
		Header: []string{"Auto-gen", "Hand-written", "All-tile"},
		Rows: [][]string{{
			autoCell,
			FmtDur(simulate(hand, errH, env)),
			FmtDur(simulate(tile, errT, env)),
		}},
	}
}

// Fig6 reproduces the hidden-layer-size sweep of the W2-update task on
// 10 workers.
func Fig6() Table {
	t := Table{
		Name:   "Figure 6",
		Title:  "FFNN fwd + backprop to W2, 10 workers (opt time in parens)",
		Header: []string{"Dims", "Auto-gen", "Hand-written", "All-tile"},
	}
	env := simEnv(10)
	for _, hidden := range []int64{10000, 40000, 80000, 160000} {
		g, err := workload.FFNNW2Update(workload.PaperFFNN(hidden))
		if err != nil {
			panic(err)
		}
		auto, errA := core.Optimize(g, env)
		hand, errH := baseline.HandWritten(g, env)
		tile, errT := baseline.AllTile(g, env)
		autoCell := FmtDur(simulate(auto, errA, env))
		if errA == nil {
			autoCell += fmt.Sprintf(" (:%02.0f)", auto.OptSeconds)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", hidden/1000),
			autoCell,
			FmtDur(simulate(hand, errH, env)),
			FmtDur(simulate(tile, errT, env)),
		})
	}
	return t
}

// Fig7 reproduces the cluster-size sweep at hidden 160K.
func Fig7() Table {
	t := Table{
		Name:   "Figure 7",
		Title:  "FFNN fwd + backprop to W2, hidden 160K (opt time in parens)",
		Header: []string{"Num workers", "Auto-gen", "Hand-written", "All-tile"},
	}
	g, err := workload.FFNNW2Update(workload.PaperFFNN(160000))
	if err != nil {
		panic(err)
	}
	for _, workers := range []int{5, 10, 20, 25} {
		env := simEnv(workers)
		auto, errA := core.Optimize(g, env)
		hand, errH := baseline.HandWritten(g, env)
		tile, errT := baseline.AllTile(g, env)
		autoCell := FmtDur(simulate(auto, errA, env))
		if errA == nil {
			autoCell += fmt.Sprintf(" (:%02.0f)", auto.OptSeconds)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers),
			autoCell,
			FmtDur(simulate(hand, errH, env)),
			FmtDur(simulate(tile, errT, env)),
		})
	}
	return t
}

// Fig8 reproduces the expert-user study on the hidden-80K W2 update.
func Fig8() Table {
	env := simEnv(10)
	g, err := workload.FFNNW2Update(workload.PaperFFNN(80000))
	if err != nil {
		panic(err)
	}
	auto, errA := core.Optimize(g, env)
	row := []string{FmtDur(simulate(auto, errA, env))}
	header := []string{"Auto-gen"}
	for i, ex := range []baseline.Expertise{baseline.ExpertiseLow, baseline.ExpertiseMedium, baseline.ExpertiseHigh} {
		res, err := baseline.UserPlan(g, env, ex)
		cell := FmtDur(simulate(res.Annotation, err, env))
		if res.FirstCrashed {
			cell += "*"
		}
		header = append(header, fmt.Sprintf("User %d (dist-ML %s)", i+1, ex))
		row = append(row, cell)
	}
	return Table{
		Name:   "Figure 8",
		Title:  "FFNN fwd + backprop to W2, hidden 80K (*first attempt crashed, re-designed)",
		Header: header,
		Rows:   [][]string{row},
	}
}

// Fig9 reproduces the two-level block-wise inverse comparison.
func Fig9() Table {
	env := simEnv(10)
	g, err := workload.BlockInverse2(workload.PaperBlockInverse())
	if err != nil {
		panic(err)
	}
	auto, errA := core.Optimize(g, env)
	hand, errH := baseline.HandWritten(g, env)
	tile, errT := baseline.AllTile(g, env)
	autoCell := FmtDur(simulate(auto, errA, env))
	if errA == nil {
		autoCell += fmt.Sprintf(" (:%02.0f)", auto.OptSeconds)
	}
	return Table{
		Name:   "Figure 9",
		Title:  "Two-level block-wise matrix inverse, 10 workers (opt time in parens)",
		Header: []string{"Auto-gen", "Hand-written", "All-tile"},
		Rows: [][]string{{
			autoCell,
			FmtDur(simulate(hand, errH, env)),
			FmtDur(simulate(tile, errT, env)),
		}},
	}
}

// Fig10 reproduces the matrix-multiplication chain over the three size
// sets of Figure 4.
func Fig10() Table {
	t := Table{
		Name:   "Figure 10",
		Title:  "Matrix multiplication chain, 10 workers (opt time in parens)",
		Header: []string{"Input size", "Auto-gen", "Hand-written", "All-tile"},
	}
	env := simEnv(10)
	for _, sz := range workload.ChainSizeSets() {
		g, err := workload.MatMulChain(sz)
		if err != nil {
			panic(err)
		}
		auto, errA := core.Optimize(g, env)
		hand, errH := baseline.HandWritten(g, env)
		tile, errT := baseline.AllTile(g, env)
		autoCell := FmtDur(simulate(auto, errA, env))
		if errA == nil {
			autoCell += fmt.Sprintf(" (:%02.0f)", auto.OptSeconds)
		}
		t.Rows = append(t.Rows, []string{
			sz.Name,
			autoCell,
			FmtDur(simulate(hand, errH, env)),
			FmtDur(simulate(tile, errT, env)),
		})
	}
	return t
}

// Fig11 reproduces the 1K-batch AmazonCat comparison: the optimizer on
// the PlinyCompute-class profile (dense formats only) against the
// data-parallel TorchLike model and the SystemDS-style local optimizer.
func Fig11() Table {
	t := Table{
		Name:   "Figure 11",
		Title:  "FFNN fwd+backprop, AmazonCat dims, 1K batch, dense ops",
		Header: []string{"Workers", "Layer", "PC No Sparsity", "PyTorch", "SystemDS"},
	}
	for _, workers := range []int{2, 5, 10} {
		for _, hidden := range []int64{4000, 5000, 7000} {
			cfg := workload.AmazonCatConfig(1000, hidden, false)
			g, err := workload.FFNNBackprop(cfg)
			if err != nil {
				panic(err)
			}
			env := core.NewEnv(costmodel.EC2R5DN(workers), format.All()).DisableSparse()
			auto, errA := core.Optimize(g, env)
			torch := baseline.TorchLike(cfg, env.Cluster)
			torchCell := "Fail"
			if !torch.Failed {
				torchCell = FmtDur(torch.Seconds)
			}
			ds, errD := baseline.SystemDSLike(g, env)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%d", hidden),
				FmtDur(simulate(auto, errA, env)),
				torchCell,
				FmtDur(simulate(ds, errD, env)),
			})
		}
	}
	return t
}

// Fig12 reproduces the 10K-batch AmazonCat comparison with the three
// PlinyCompute configurations: sparsity disabled, sparse input, and
// dense input with sparse formats allowed.
func Fig12() Table {
	t := Table{
		Name:  "Figure 12",
		Title: "FFNN fwd+backprop, AmazonCat dims, 10K batch",
		Header: []string{"Workers", "Layer", "PC No Sparsity", "PC Sparse In",
			"PC Dense In", "PyTorch", "SystemDS"},
	}
	for _, workers := range []int{2, 5, 10} {
		for _, hidden := range []int64{4000, 5000, 7000} {
			dense := workload.AmazonCatConfig(10000, hidden, false)
			sparse := workload.AmazonCatConfig(10000, hidden, true)
			gDense, err := workload.FFNNBackprop(dense)
			if err != nil {
				panic(err)
			}
			gSparse, err := workload.FFNNBackprop(sparse)
			if err != nil {
				panic(err)
			}
			noSp := core.NewEnv(costmodel.EC2R5DN(workers), format.All()).DisableSparse()
			full := core.NewEnv(costmodel.EC2R5DN(workers), format.All())

			aNo, eNo := core.Optimize(gDense, noSp)
			aSp, eSp := core.Optimize(gSparse, full)
			aDn, eDn := core.Optimize(gDense, full)
			torch := baseline.TorchLike(dense, full.Cluster)
			torchCell := "Fail"
			if !torch.Failed {
				torchCell = FmtDur(torch.Seconds)
			}
			ds, errD := baseline.SystemDSLike(gSparse, full)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%d", hidden),
				FmtDur(simulate(aNo, eNo, noSp)),
				FmtDur(simulate(aSp, eSp, full)),
				FmtDur(simulate(aDn, eDn, full)),
				torchCell,
				FmtDur(simulate(ds, errD, full)),
			})
		}
	}
	return t
}

// Fig13 reproduces the optimizer-runtime study: the DP algorithms
// against the brute force on the Tree/DAG1/DAG2 families at scales 1–4
// under the three format universes. budget bounds each brute-force run
// (the paper used 30 minutes; benchmarks use less).
func Fig13(budget time.Duration) Table {
	t := Table{
		Name:  "Figure 13",
		Title: fmt.Sprintf("Optimization times (brute budget %s)", budget),
		Header: []string{"Formats", "Scale", "DP DAG2", "Brute DAG2",
			"DP DAG1", "Brute DAG1", "DP Tree", "Brute Tree"},
	}
	universes := []struct {
		name string
		fs   []format.Format
	}{
		{"All (19)", format.All()},
		{"Single/Strip/Block (16)", format.SingleStripBlock()},
		{"Single/Block (10)", format.SingleBlock()},
	}
	for _, u := range universes {
		for scale := 1; scale <= 4; scale++ {
			row := []string{u.name, fmt.Sprintf("%d", scale)}
			for _, kind := range []workload.ScaleKind{workload.ScaleDAG2, workload.ScaleDAG1, workload.ScaleTree} {
				g, err := workload.ScaleGraph(kind, scale)
				if err != nil {
					panic(err)
				}
				env := core.NewEnv(costmodel.EC2R5D(10), u.fs)
				dpStart := time.Now()
				if _, err := core.Optimize(g, env); err != nil {
					row = append(row, "err")
				} else {
					row = append(row, FmtDur(time.Since(dpStart).Seconds()))
				}
				bruteStart := time.Now()
				if _, err := core.Brute(g, env, budget); err != nil {
					row = append(row, "Fail")
				} else {
					row = append(row, FmtDur(time.Since(bruteStart).Seconds()))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// All regenerates every figure (Fig13 with the given brute budget).
func All(bruteBudget time.Duration) []Table {
	tables, _ := AllCtx(context.Background(), bruteBudget)
	return tables
}

// AllCtx regenerates every figure, checking ctx between figures; on
// cancellation it returns the tables completed so far together with the
// context's error.
func AllCtx(ctx context.Context, bruteBudget time.Duration) ([]Table, error) {
	gens := []func() Table{
		Fig1, Fig4, Fig5, Fig6, Fig7, Fig8, Fig9, Fig10,
		Fig11, Fig12, func() Table { return Fig13(bruteBudget) },
		func() Table { return DistValidation(dist.DefaultShards()) },
		func() Table { return FaultRecovery(dist.DefaultShards()) },
	}
	var tables []Table
	for _, gen := range gens {
		if err := ctx.Err(); err != nil {
			return tables, err
		}
		tables = append(tables, gen())
	}
	return tables, nil
}
