package figures

import (
	"strings"
	"testing"
)

// TestFaultRecoveryShape regenerates the fault-recovery table at 2
// shards and checks every schedule stayed bit-identical and ended in
// the expected outcome.
func TestFaultRecoveryShape(t *testing.T) {
	tab := FaultRecovery(2)
	if tab.Name != "faults" {
		t.Fatalf("table name = %q, want faults", tab.Name)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("want 9 schedules, got %d:\n%v", len(tab.Rows), tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tab.Header))
		}
		if strings.Contains(row[5], "FAIL") {
			t.Fatalf("schedule %q failed: %s", row[0], row[5])
		}
		if row[4] != "yes" {
			t.Fatalf("schedule %q not bit-identical", row[0])
		}
	}
	if got := tab.Rows[0][5]; got != "clean" {
		t.Fatalf("fault-free outcome = %q, want clean", got)
	}
	if got := tab.Rows[len(tab.Rows)-1][5]; got != "degraded to sequential" {
		t.Fatalf("exhausted-retries outcome = %q, want degraded to sequential", got)
	}
	// The crash-every-vertex schedule must account for each fault as a
	// retry, one per vertex.
	if tab.Rows[1][2] != tab.Rows[1][3] || tab.Rows[1][2] == "0" {
		t.Fatalf("crash-all row should count matching faults and retries, got %v", tab.Rows[1])
	}
	// Node loss recovers by cascading recompute, and the checkpointed
	// variant additionally reports its pinned vertices.
	if got := tab.Rows[4][5]; !strings.Contains(got, "cascades") {
		t.Fatalf("node-loss outcome = %q, want cascades", got)
	}
	if got := tab.Rows[6][5]; !strings.Contains(got, "cascades") || !strings.Contains(got, "checkpoints") {
		t.Fatalf("node-loss+checkpoint outcome = %q, want cascades and checkpoints", got)
	}
}
