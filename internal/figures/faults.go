package figures

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/tensor"
)

// FaultRecovery runs the scaled chain workload under a set of seeded
// fault schedules and shows that every recovered run stays bit-identical
// to the sequential engine, that the report accounts for each injected
// fault and retry, and that an unrecoverable schedule degrades to the
// sequential engine instead of failing.
func FaultRecovery(shards int) Table {
	t := Table{
		Name:  "faults",
		Title: fmt.Sprintf("fault injection and recovery on the dist runtime (%d shards, scaled chain)", shards),
		Header: []string{"schedule", "wall ms", "faults injected", "retries",
			"identical", "outcome"},
	}
	w := distWorkloads()[0]
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(w.graph, env)
	if err != nil {
		t.Rows = append(t.Rows, []string{"optimize", "-", "-", "-", "-", "FAIL: " + err.Error()})
		return t
	}
	want, err := engine.New(cl).RunCollect(ann, w.inputs)
	if err != nil {
		t.Rows = append(t.Rows, []string{"sequential golden", "-", "-", "-", "-", "FAIL: " + err.Error()})
		return t
	}

	var crashAll []dist.Fault
	for _, v := range ann.Graph.Vertices {
		crashAll = append(crashAll, dist.Fault{Kind: dist.FaultCrash, Vertex: v.ID})
	}
	mid := ann.Graph.Vertices[len(ann.Graph.Vertices)/2].ID
	for _, s := range []struct {
		name string
		plan *dist.FaultPlan
	}{
		{"fault-free", nil},
		{"crash every vertex once", dist.NewFaultPlan(crashAll...)},
		{fmt.Sprintf("drop one exchange at v%d", mid),
			dist.NewFaultPlan(dist.Fault{Kind: dist.FaultDropExchange, Vertex: mid})},
		{"straggler shard (+200µs/task)",
			dist.NewFaultPlan(dist.Fault{Kind: dist.FaultSlowShard, Shard: shards - 1, Delay: 200 * time.Microsecond})},
		{fmt.Sprintf("node loss at v%d (cascading recompute)", mid),
			dist.NewFaultPlan(dist.Fault{Kind: dist.FaultNodeLoss, Vertex: mid})},
		{"random schedule (seed 7, 5 faults)", randomPlan(7, 5, ann, shards)},
	} {
		t.Rows = append(t.Rows, faultRow(s.name, cl, shards, s.plan, ann, w.inputs, want))
	}
	t.Rows = append(t.Rows, faultRow(
		fmt.Sprintf("node loss at v%d + checkpointing", mid), cl, shards,
		dist.NewFaultPlan(dist.Fault{Kind: dist.FaultNodeLoss, Vertex: mid}),
		ann, w.inputs, want, dist.WithCheckpointing(0, 0)))
	t.Rows = append(t.Rows, faultRow(
		"straggler shard + speculation", cl, shards,
		dist.NewFaultPlan(dist.Fault{Kind: dist.FaultSlowShard, Shard: shards - 1, Delay: 200 * time.Microsecond}),
		ann, w.inputs, want, dist.WithSpeculation(dist.DefaultSpeculation())))
	t.Rows = append(t.Rows, fallbackRow(cl, shards, ann, w.inputs, want))
	return t
}

func randomPlan(seed int64, n int, ann *core.Annotation, shards int) *dist.FaultPlan {
	ids := make([]int, 0, len(ann.Graph.Vertices))
	for _, v := range ann.Graph.Vertices {
		ids = append(ids, v.ID)
	}
	return dist.RandomFaults(seed, n, ids, shards)
}

func faultRow(name string, cl costmodel.Cluster, shards int, plan *dist.FaultPlan,
	ann *core.Annotation, inputs map[string]*tensor.Dense, want map[int]*tensor.Dense,
	extra ...dist.Option) []string {
	rt, err := dist.New(cl, shards, append([]dist.Option{dist.WithFaults(plan)}, extra...)...)
	if err != nil {
		return []string{name, "-", "-", "-", "-", "FAIL: " + err.Error()}
	}
	got, rep, err := rt.Run(context.Background(), ann, inputs)
	if err != nil {
		return []string{name, "-", fmt.Sprint(rep.FaultsInjected), fmt.Sprint(rep.Retries),
			"-", "FAIL: " + err.Error()}
	}
	outcome := "recovered"
	if rep.FaultsInjected == 0 && rep.Retries == 0 && rep.Cascades == 0 {
		outcome = "clean"
	}
	if rep.Cascades > 0 {
		outcome += fmt.Sprintf(", %d cascades (depth %d)", rep.Cascades, rep.MaxCascadeDepth)
	}
	if rep.CheckpointVertices > 0 {
		outcome += fmt.Sprintf(", %d checkpoints", rep.CheckpointVertices)
	}
	if rep.SpeculativeLaunches > 0 {
		outcome += fmt.Sprintf(", %d/%d speculative wins", rep.SpeculativeWins, rep.SpeculativeLaunches)
	}
	return []string{name,
		fmt.Sprintf("%.1f", float64(rep.Wall)/1e6),
		fmt.Sprint(rep.FaultsInjected),
		fmt.Sprint(rep.Retries),
		identicalWord(got, want),
		outcome,
	}
}

// fallbackRow exhausts the retry budget on one vertex and serves the
// sequential result instead, the way Executor.WithFallback does.
func fallbackRow(cl costmodel.Cluster, shards int,
	ann *core.Annotation, inputs map[string]*tensor.Dense, want map[int]*tensor.Dense) []string {
	name := "crash v0 three times (budget 1) → fallback"
	v := ann.Graph.Vertices[0].ID
	plan := dist.NewFaultPlan(
		dist.Fault{Kind: dist.FaultCrash, Vertex: v, Attempt: 0},
		dist.Fault{Kind: dist.FaultCrash, Vertex: v, Attempt: 1},
	)
	rt, err := dist.New(cl, shards, dist.WithFaults(plan), dist.WithMaxRetries(1))
	if err != nil {
		return []string{name, "-", "-", "-", "-", "FAIL: " + err.Error()}
	}
	_, rep, err := rt.Run(context.Background(), ann, inputs)
	if !errors.Is(err, dist.ErrRetriesExhausted) {
		return []string{name, "-", "-", "-", "-", fmt.Sprintf("FAIL: want ErrRetriesExhausted, got %v", err)}
	}
	t0 := time.Now()
	got, err := engine.New(cl).RunCollect(ann, inputs)
	if err != nil {
		return []string{name, "-", "-", "-", "-", "FAIL: " + err.Error()}
	}
	return []string{name,
		fmt.Sprintf("%.1f", float64(time.Since(t0))/1e6),
		fmt.Sprint(rep.FaultsInjected),
		fmt.Sprint(rep.Retries),
		identicalWord(got, want),
		"degraded to sequential",
	}
}

func identicalWord(got, want map[int]*tensor.Dense) string {
	if len(got) != len(want) {
		return "NO"
	}
	for id, wm := range want {
		gm := got[id]
		if gm == nil || gm.Rows != wm.Rows || gm.Cols != wm.Cols {
			return "NO"
		}
		for i := range wm.Data {
			if math.Float64bits(gm.Data[i]) != math.Float64bits(wm.Data[i]) {
				return "NO"
			}
		}
	}
	return "yes"
}
