package figures

// Shape tests: each reproduced figure must exhibit the paper's headline
// qualitative result. These run the full paper-scale workloads, so they
// are skipped under -short.

import (
	"strings"
	"testing"
)

// parse interprets a rendered cell: Fail or M:SS / H:MM:SS → seconds.
func parse(t *testing.T, cell string) (seconds float64, failed bool) {
	t.Helper()
	cell = strings.TrimSpace(cell)
	if i := strings.IndexByte(cell, ' '); i >= 0 {
		cell = cell[:i] // drop "(opt time)" suffixes
	}
	cell = strings.TrimSuffix(cell, "*")
	if cell == "Fail" {
		return 0, true
	}
	parts := strings.Split(cell, ":")
	var s float64
	for _, p := range parts {
		var v float64
		for _, ch := range p {
			if ch < '0' || ch > '9' {
				t.Fatalf("unparseable cell %q", cell)
			}
			v = v*10 + float64(ch-'0')
		}
		s = s*60 + v
	}
	return s, false
}

func TestFig6Ordering(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	tb := Fig6()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		auto, aFail := parse(t, row[1])
		hand, hFail := parse(t, row[2])
		tile, tFail := parse(t, row[3])
		if aFail {
			t.Fatalf("auto must never fail: row %v", row)
		}
		if !hFail && auto > hand {
			t.Errorf("row %d: auto %v > hand %v", i, auto, hand)
		}
		if !tFail && auto > tile {
			t.Errorf("row %d: auto %v > all-tile %v", i, auto, tile)
		}
		// The paper's Fail cell: all-tile dies only at 160K.
		if i == 3 && !tFail {
			t.Error("all-tile at 160K must Fail")
		}
		if i < 3 && tFail {
			t.Errorf("all-tile at row %d must run", i)
		}
	}
}

func TestFig7FailPattern(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	tb := Fig7()
	wantTileFail := map[string]bool{"5": true, "10": true, "20": false, "25": false}
	var prevAuto float64
	for _, row := range tb.Rows {
		auto, aFail := parse(t, row[1])
		_, tFail := parse(t, row[3])
		if aFail {
			t.Fatalf("auto failed at %s workers", row[0])
		}
		if tFail != wantTileFail[row[0]] {
			t.Errorf("all-tile at %s workers: fail=%v, paper says %v", row[0], tFail, wantTileFail[row[0]])
		}
		if prevAuto > 0 && auto > prevAuto {
			t.Errorf("auto time must improve with workers: %v after %v", auto, prevAuto)
		}
		prevAuto = auto
	}
}

func TestFig8ExpertiseOrdering(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	tb := Fig8()
	row := tb.Rows[0]
	auto, _ := parse(t, row[0])
	u1, _ := parse(t, row[1])
	u2, _ := parse(t, row[2])
	u3, _ := parse(t, row[3])
	if !(auto <= u3 && u3 <= u2 && u2 <= u1) {
		t.Errorf("expertise ordering violated: auto %v, u3 %v, u2 %v, u1 %v", auto, u3, u2, u1)
	}
	if !strings.HasSuffix(strings.TrimSpace(row[1]), "*") || !strings.HasSuffix(strings.TrimSpace(row[2]), "*") {
		t.Error("users 1 and 2 must carry the crashed-first-attempt asterisk")
	}
}

func TestFig11TorchShape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	tb := Fig11()
	for _, row := range tb.Rows {
		pc, pcFail := parse(t, row[2])
		torch, torchFail := parse(t, row[3])
		if pcFail {
			t.Fatalf("PC failed at %v workers / %v", row[0], row[1])
		}
		if row[1] == "7000" && !torchFail {
			t.Errorf("PyTorch must fail at layer 7000 (%v workers)", row[0])
		}
		if row[1] != "7000" {
			if torchFail {
				t.Errorf("PyTorch must run at layer %v (%v workers)", row[1], row[0])
			}
			if pc > torch {
				t.Errorf("%v workers / %v: PC %v slower than PyTorch %v", row[0], row[1], pc, torch)
			}
		}
	}
}

func TestFig12SparsityShape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	tb := Fig12()
	wantTorchFail := map[[2]string]bool{
		{"2", "5000"}: true, {"2", "7000"}: true,
		{"5", "7000"}: true, {"10", "7000"}: true,
	}
	for _, row := range tb.Rows {
		noSp, f1 := parse(t, row[2])
		spIn, f2 := parse(t, row[3])
		dnIn, f3 := parse(t, row[4])
		_, torchFail := parse(t, row[5])
		if f1 || f2 || f3 {
			t.Fatalf("a PC configuration failed in row %v", row)
		}
		if !(spIn <= dnIn && dnIn <= noSp) {
			t.Errorf("row %v: want sparse-in ≤ dense-in ≤ no-sparsity, got %v / %v / %v",
				row[:2], spIn, dnIn, noSp)
		}
		// The paper: sparse plans drop to 20–50% of all-dense; ours land
		// in 10–50%.
		if spIn > 0.5*noSp {
			t.Errorf("row %v: sparsity saves too little (%v vs %v)", row[:2], spIn, noSp)
		}
		key := [2]string{row[0], row[1]}
		if torchFail != wantTorchFail[key] {
			t.Errorf("PyTorch fail at %v = %v, paper says %v", key, torchFail, wantTorchFail[key])
		}
	}
}
