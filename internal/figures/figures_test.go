package figures

import (
	"strings"
	"testing"
	"time"
)

func TestFmtDur(t *testing.T) {
	cases := map[float64]string{
		-1:     "Fail",
		0:      "0:00",
		59.4:   "0:59",
		75:     "1:15",
		3600:   "1:00:00",
		5401:   "1:30:01",
		119.7:  "2:00",
		7322.2: "2:02:02",
	}
	for sec, want := range cases {
		if got := FmtDur(sec); got != want {
			t.Errorf("FmtDur(%v) = %q, want %q", sec, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Name:   "Figure X",
		Title:  "test",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"longer", "1"}, {"x", "22"}},
	}
	s := tb.String()
	if !strings.Contains(s, "Figure X") || !strings.Contains(s, "longer") {
		t.Fatalf("rendering broken:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 2 rows + title, got %d lines", len(lines))
	}
}

// TestFig1Shape checks the motivating example's headline: the optimizer's
// broadcast plan beats the naive tile plan.
func TestFig1Shape(t *testing.T) {
	tb := Fig1()
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][1] == "Fail" || tb.Rows[1][1] == "Fail" {
		t.Fatalf("motivating example should not Fail: %v", tb.Rows)
	}
}

func TestFig4IsTheSizeTable(t *testing.T) {
	tb := Fig4()
	if len(tb.Rows) != 6 {
		t.Fatalf("six inputs expected, got %d", len(tb.Rows))
	}
	if tb.Rows[0][1] != "10000x30000" {
		t.Fatalf("A size set 1 = %q", tb.Rows[0][1])
	}
}

// TestFig13SmallBudget exercises the optimizer-runtime figure at scale:
// the DP must always finish and the brute force must time out beyond the
// smallest configurations.
func TestFig13SmallBudget(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs the whole optimizer-runtime sweep")
	}
	tb := Fig13(200 * time.Millisecond)
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d, want 3 universes × 4 scales", len(tb.Rows))
	}
	failures := 0
	for _, row := range tb.Rows {
		for i, cell := range row[2:] {
			isBrute := i%2 == 1
			if !isBrute && cell == "Fail" {
				t.Errorf("DP failed in row %v", row)
			}
			if isBrute && cell == "Fail" {
				failures++
			}
		}
	}
	if failures < 6 {
		t.Errorf("brute force timed out only %d times; expected most cells to Fail", failures)
	}
}
