package figures

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/dist"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// DistValidation executes scaled-down versions of the evaluation
// workloads on both runtimes: the sequential reference engine and the
// sharded dist runtime. Every row verifies bit-identical outputs and
// compares the dist runtime's measured cross-shard traffic with the
// cost model's worst-case ceiling (per-link NetBytes × link count) for
// the same plan on a cluster of the same size.
func DistValidation(shards int) Table {
	t := Table{
		Name:  "dist",
		Title: fmt.Sprintf("dist runtime vs sequential engine (%d shards, scaled workloads)", shards),
		Header: []string{"workload", "seq ms", "dist ms", "speedup",
			"measured net MB", "model ceiling MB", "peak MB", "identical"},
	}
	for _, w := range distWorkloads() {
		t.Rows = append(t.Rows, distRow(w, shards))
	}
	return t
}

type distWorkload struct {
	name   string
	graph  *core.Graph
	inputs map[string]*tensor.Dense
}

func distWorkloads() []distWorkload {
	rng := rand.New(rand.NewSource(42))
	var out []distWorkload

	sz := workload.ChainSizes{
		Name: "scaled",
		A:    shape.New(100, 300), B: shape.New(300, 500),
		C: shape.New(500, 1), D: shape.New(1, 500),
		E: shape.New(500, 100), F: shape.New(500, 100),
	}
	if g, err := workload.MatMulChain(sz); err == nil {
		out = append(out, distWorkload{name: "chain (scaled)", graph: g, inputs: map[string]*tensor.Dense{
			"A": tensor.RandNormal(rng, 100, 300), "B": tensor.RandNormal(rng, 300, 500),
			"C": tensor.RandNormal(rng, 500, 1), "D": tensor.RandNormal(rng, 1, 500),
			"E": tensor.RandNormal(rng, 500, 100), "F": tensor.RandNormal(rng, 500, 100),
		}})
	}

	cfg := workload.ScaledFFNN(workload.PaperFFNN(80000), 200)
	if g, err := workload.FFNNBackprop(cfg); err == nil {
		out = append(out, distWorkload{name: "ffnn backprop (scaled)", graph: g,
			inputs: workload.FFNNInputs(rng, cfg)})
	}
	if g, err := workload.FFNNThreePass(cfg); err == nil {
		out = append(out, distWorkload{name: "ffnn 3-pass (scaled)", graph: g,
			inputs: workload.FFNNInputs(rng, cfg)})
	}

	icfg := workload.BlockInverseConfig{Outer: 60, Inner1: 20, Inner2: 40, BlockFormat: format.NewSingle()}
	if g, err := workload.BlockInverse2(icfg); err == nil {
		n, n1 := 60, 20
		full := tensor.RandNormal(rng, 2*n, 2*n)
		for i := 0; i < 2*n; i++ {
			full.Set(i, i, full.At(i, i)+float64(2*n))
		}
		out = append(out, distWorkload{name: "block inverse (scaled)", graph: g, inputs: map[string]*tensor.Dense{
			"A11": full.Slice(0, n1, 0, n1), "A12": full.Slice(0, n1, n1, n),
			"A21": full.Slice(n1, n, 0, n1), "A22": full.Slice(n1, n, n1, n),
			"B1": full.Slice(0, n1, n, 2*n), "B2": full.Slice(n1, n, n, 2*n),
			"C1": full.Slice(n, 2*n, 0, n1), "C2": full.Slice(n, 2*n, n1, n),
			"D": full.Slice(n, 2*n, n, 2*n),
		}})
	}
	return out
}

func distRow(w distWorkload, shards int) []string {
	fail := func(err error) []string {
		return []string{w.name, "-", "-", "-", "-", "-", "-", "FAIL: " + err.Error()}
	}
	cl := costmodel.LocalTest(shards)
	env := core.NewEnv(cl, format.All())
	ann, err := core.Optimize(w.graph, env)
	if err != nil {
		return fail(err)
	}

	t0 := time.Now()
	want, err := engine.New(cl).RunCollect(ann, w.inputs)
	if err != nil {
		return fail(err)
	}
	seqWall := time.Since(t0)

	rt, err := dist.New(cl, shards)
	if err != nil {
		return fail(err)
	}
	got, rep, err := rt.Run(context.Background(), ann, w.inputs)
	if err != nil {
		return fail(err)
	}
	identical := len(got) == len(want)
	for id, wm := range want {
		gm := got[id]
		if gm == nil || gm.Rows != wm.Rows || gm.Cols != wm.Cols {
			identical = false
			break
		}
		for i := range wm.Data {
			if math.Float64bits(gm.Data[i]) != math.Float64bits(wm.Data[i]) {
				identical = false
				break
			}
		}
	}

	sim, err := engine.Simulate(ann, env)
	if err != nil {
		return fail(err)
	}
	ceiling := costmodel.NetBytesCeiling(sim.Features.NetBytes, shards)
	mb := func(b float64) string { return fmt.Sprintf("%.3f", b/(1<<20)) }
	ok := "yes"
	if !identical {
		ok = "NO"
	}
	return []string{
		w.name,
		fmt.Sprintf("%.1f", float64(seqWall)/1e6),
		fmt.Sprintf("%.1f", float64(rep.Wall)/1e6),
		fmt.Sprintf("%.2fx", float64(seqWall)/float64(rep.Wall)),
		mb(float64(rep.NetBytes)),
		mb(ceiling),
		mb(float64(rep.PeakBytes)),
		ok,
	}
}
