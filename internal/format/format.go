// Package format defines the set P of physical matrix implementations
// (§3 of the paper). The prototype ships the paper's 19 formats: a
// single-tuple layout, nine square tile sizes, three row-strip heights,
// three column-strip widths, and three sparse layouts (relational
// triples, single-tuple CSR, and row-strip CSR). §8.4's restricted sets
// — single/strip/block (16) and single/block (10) — are exposed for the
// Figure 13 experiments.
package format

import (
	"fmt"
	"strconv"
	"strings"

	"matopt/internal/shape"
)

// Kind is the structural family of a physical implementation.
type Kind uint8

const (
	// Single stores the whole matrix in one tuple.
	Single Kind = iota
	// Tile stores square Block×Block chunks keyed by (tileRow, tileCol).
	Tile
	// RowStrip stores Block×Cols horizontal strips keyed by tileRow.
	RowStrip
	// ColStrip stores Rows×Block vertical strips keyed by tileCol.
	ColStrip
	// COO stores relational (rowIndex, colIndex, value) triples.
	COO
	// CSRSingle stores the whole matrix as one CSR tuple.
	CSRSingle
	// CSRRowStrip stores CSR-encoded Block-row strips.
	CSRRowStrip
)

func (k Kind) String() string {
	switch k {
	case Single:
		return "single"
	case Tile:
		return "tile"
	case RowStrip:
		return "rowstrip"
	case ColStrip:
		return "colstrip"
	case COO:
		return "coo"
	case CSRSingle:
		return "csr-single"
	case CSRRowStrip:
		return "csr-rowstrip"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Format is one physical matrix implementation. Formats are small value
// types and are compared with ==.
type Format struct {
	Kind  Kind
	Block int64 // tile size / strip extent; 0 for Single, COO, CSRSingle
}

// NewSingle returns the whole-matrix-in-one-tuple format. Constructors
// panic on invalid parameters because format sets are fixed at
// configuration time.
func NewSingle() Format { return Format{Kind: Single} }

// NewTile returns the b×b square-tile format.
func NewTile(b int64) Format {
	if b <= 0 {
		panic("format: tile size must be positive")
	}
	return Format{Kind: Tile, Block: b}
}

// NewRowStrip returns the format of horizontal strips of height h.
func NewRowStrip(h int64) Format {
	if h <= 0 {
		panic("format: strip height must be positive")
	}
	return Format{Kind: RowStrip, Block: h}
}

// NewColStrip returns the format of vertical strips of width w.
func NewColStrip(w int64) Format {
	if w <= 0 {
		panic("format: strip width must be positive")
	}
	return Format{Kind: ColStrip, Block: w}
}

// NewCOO returns the relational (rowIndex, colIndex, value) format.
func NewCOO() Format { return Format{Kind: COO} }

// NewCSRSingle returns the whole-matrix CSR single-tuple format.
func NewCSRSingle() Format { return Format{Kind: CSRSingle} }

// NewCSRRowStrip returns the format of CSR-encoded strips of height h.
func NewCSRRowStrip(h int64) Format {
	if h <= 0 {
		panic("format: strip height must be positive")
	}
	return Format{Kind: CSRRowStrip, Block: h}
}

func (f Format) String() string {
	switch f.Kind {
	case Single, COO, CSRSingle:
		return f.Kind.String()
	default:
		return fmt.Sprintf("%s[%d]", f.Kind, f.Block)
	}
}

// IsSparse reports whether the format stores only non-zeros.
func (f Format) IsSparse() bool {
	return f.Kind == COO || f.Kind == CSRSingle || f.Kind == CSRRowStrip
}

// IsChunked reports whether the matrix is split across multiple tuples.
func (f Format) IsChunked(s shape.Shape) bool { return f.NumTuples(s) > 1 }

// NumTuples returns the tuple count of the relation storing a matrix of
// shape s in this format. For COO, which stores one tuple per non-zero,
// the count depends on density and is exposed via NumTuplesDensity.
func (f Format) NumTuples(s shape.Shape) int64 { return f.NumTuplesDensity(s, 1) }

// NumTuplesDensity is NumTuples with an explicit non-zero fraction.
func (f Format) NumTuplesDensity(s shape.Shape, density float64) int64 {
	switch f.Kind {
	case Single, CSRSingle:
		return 1
	case Tile:
		return shape.CeilDiv(s.Rows, f.Block) * shape.CeilDiv(s.Cols, f.Block)
	case RowStrip, CSRRowStrip:
		return shape.CeilDiv(s.Rows, f.Block)
	case ColStrip:
		return shape.CeilDiv(s.Cols, f.Block)
	case COO:
		n := int64(density * float64(s.Elems()))
		if n < 1 {
			n = 1
		}
		return n
	}
	panic("format: unknown kind")
}

// Bytes returns the total storage bytes for shape s at the given density.
// Dense formats always materialize every entry; sparse formats store only
// non-zeros (plus index overhead).
func (f Format) Bytes(s shape.Shape, density float64) int64 {
	switch f.Kind {
	case Single, Tile, RowStrip, ColStrip:
		return s.Bytes()
	case COO:
		return f.NumTuplesDensity(s, density) * 16 // 2×int32 keys + float64
	case CSRSingle, CSRRowStrip:
		nnz := int64(density * float64(s.Elems()))
		if nnz < 1 {
			nnz = 1
		}
		rows := s.Rows + f.NumTuplesDensity(s, density) // row pointers across strips
		return rows*8 + nnz*12
	}
	panic("format: unknown kind")
}

// MaxTupleBytes returns the size of the largest tuple payload.
func (f Format) MaxTupleBytes(s shape.Shape, density float64) int64 {
	n := f.NumTuplesDensity(s, density)
	switch f.Kind {
	case Single, CSRSingle:
		return f.Bytes(s, density)
	case COO:
		return 16
	case Tile:
		return f.Block * f.Block * 8
	case RowStrip:
		return f.Block * s.Cols * 8
	case ColStrip:
		return s.Rows * f.Block * 8
	case CSRRowStrip:
		return f.Bytes(s, density) / n
	}
	panic("format: unknown kind")
}

// Valid is the paper's matrix-type specification function p.f(m): it
// reports whether this format can physically store a matrix of shape s at
// the given density under the cluster's per-tuple size bound.
func (f Format) Valid(s shape.Shape, density float64, maxTupleBytes int64) bool {
	switch f.Kind {
	case Tile:
		// Tiles must not exceed the matrix in both extents (otherwise
		// the layout degenerates to Single and is redundant).
		if f.Block > s.Rows && f.Block > s.Cols {
			return false
		}
	case RowStrip, CSRRowStrip:
		if f.Block > s.Rows {
			return false
		}
	case ColStrip:
		if f.Block > s.Cols {
			return false
		}
	}
	return f.MaxTupleBytes(s, density) <= maxTupleBytes
}

// Parse is the inverse of String: it reconstructs a format from its
// textual form (e.g. "tile[1000]", "csr-single"), as used by plan
// serialization.
func Parse(s string) (Format, error) {
	var kindStr string
	var block int64
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return Format{}, fmt.Errorf("format: malformed %q", s)
		}
		kindStr = s[:i]
		v, err := strconv.ParseInt(s[i+1:len(s)-1], 10, 64)
		if err != nil || v <= 0 {
			return Format{}, fmt.Errorf("format: malformed block in %q", s)
		}
		block = v
	} else {
		kindStr = s
	}
	switch kindStr {
	case "single":
		if block != 0 {
			return Format{}, fmt.Errorf("format: %q takes no block", s)
		}
		return NewSingle(), nil
	case "coo":
		if block != 0 {
			return Format{}, fmt.Errorf("format: %q takes no block", s)
		}
		return NewCOO(), nil
	case "csr-single":
		if block != 0 {
			return Format{}, fmt.Errorf("format: %q takes no block", s)
		}
		return NewCSRSingle(), nil
	case "tile":
		if block == 0 {
			return Format{}, fmt.Errorf("format: %q needs a block", s)
		}
		return NewTile(block), nil
	case "rowstrip":
		if block == 0 {
			return Format{}, fmt.Errorf("format: %q needs a block", s)
		}
		return NewRowStrip(block), nil
	case "colstrip":
		if block == 0 {
			return Format{}, fmt.Errorf("format: %q needs a block", s)
		}
		return NewColStrip(block), nil
	case "csr-rowstrip":
		if block == 0 {
			return Format{}, fmt.Errorf("format: %q needs a block", s)
		}
		return NewCSRRowStrip(block), nil
	}
	return Format{}, fmt.Errorf("format: unknown kind in %q", s)
}
