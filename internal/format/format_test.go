package format

import (
	"testing"
	"testing/quick"

	"matopt/internal/shape"
)

func TestSetCardinalities(t *testing.T) {
	// §8.4 of the paper fixes these counts: 19 total, 16 without the
	// sparse layouts, 10 with only single and block formats.
	if n := len(All()); n != 19 {
		t.Errorf("All() has %d formats, want 19", n)
	}
	if n := len(SingleStripBlock()); n != 16 {
		t.Errorf("SingleStripBlock() has %d formats, want 16", n)
	}
	if n := len(SingleBlock()); n != 10 {
		t.Errorf("SingleBlock() has %d formats, want 10", n)
	}
	seen := map[Format]bool{}
	for _, f := range All() {
		if seen[f] {
			t.Errorf("duplicate format %v", f)
		}
		seen[f] = true
	}
}

func TestConstructorsPanicOnBadBlock(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTile(0) },
		func() { NewRowStrip(-1) },
		func() { NewColStrip(0) },
		func() { NewCSRRowStrip(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted non-positive block")
				}
			}()
			fn()
		}()
	}
}

func TestNumTuples(t *testing.T) {
	s := shape.New(2500, 3300)
	cases := []struct {
		f    Format
		want int64
	}{
		{NewSingle(), 1},
		{NewCSRSingle(), 1},
		{NewTile(1000), 3 * 4},
		{NewTile(100), 25 * 33},
		{NewRowStrip(1000), 3},
		{NewColStrip(1000), 4},
		{NewCSRRowStrip(1000), 3},
	}
	for _, c := range cases {
		if got := c.f.NumTuples(s); got != c.want {
			t.Errorf("%v.NumTuples(%v) = %d, want %d", c.f, s, got, c.want)
		}
	}
	// COO stores one tuple per non-zero.
	if got := NewCOO().NumTuplesDensity(s, 0.01); got != int64(0.01*2500*3300) {
		t.Errorf("COO tuples = %d", got)
	}
	if got := NewCOO().NumTuplesDensity(s, 0); got != 1 {
		t.Errorf("COO tuples at density 0 = %d, want 1 (floor)", got)
	}
}

func TestBytes(t *testing.T) {
	s := shape.New(1000, 1000)
	if got := NewSingle().Bytes(s, 1); got != 8e6 {
		t.Errorf("single bytes = %d", got)
	}
	if got := NewTile(100).Bytes(s, 1); got != 8e6 {
		t.Errorf("tile bytes = %d (dense formats materialize all entries)", got)
	}
	// Sparse formats shrink with density.
	dense := NewCSRSingle().Bytes(s, 1.0)
	sp := NewCSRSingle().Bytes(s, 0.01)
	if sp >= dense/10 {
		t.Errorf("CSR at 1%% density = %d bytes, dense = %d; want ≫10x smaller", sp, dense)
	}
	if got := NewCOO().Bytes(s, 0.5); got != 16*500000 {
		t.Errorf("COO bytes = %d", got)
	}
}

func TestMaxTupleBytes(t *testing.T) {
	s := shape.New(2500, 3300)
	if got := NewTile(1000).MaxTupleBytes(s, 1); got != 8e6 {
		t.Errorf("tile tuple = %d", got)
	}
	if got := NewRowStrip(1000).MaxTupleBytes(s, 1); got != 1000*3300*8 {
		t.Errorf("rowstrip tuple = %d", got)
	}
	if got := NewColStrip(1000).MaxTupleBytes(s, 1); got != 2500*1000*8 {
		t.Errorf("colstrip tuple = %d", got)
	}
	if got := NewCOO().MaxTupleBytes(s, 0.3); got != 16 {
		t.Errorf("COO tuple = %d", got)
	}
}

func TestValid(t *testing.T) {
	const maxTuple = 1 << 30
	big := shape.New(100000, 100000) // 80 GB dense
	if NewSingle().Valid(big, 1, maxTuple) {
		t.Error("an 80GB matrix must not fit a single tuple")
	}
	if !NewTile(1000).Valid(big, 1, maxTuple) {
		t.Error("tiling an 80GB matrix must be valid")
	}
	if !NewCSRSingle().Valid(big, 1e-6, maxTuple) {
		t.Error("a very sparse 100K×100K matrix fits a CSR single tuple")
	}
	// Strips can exceed the tuple bound even when tiles do not.
	if NewRowStrip(10000).Valid(big, 1, maxTuple) {
		t.Error("a 10000×100000 strip is 8GB and must be invalid")
	}
	// Block larger than the matrix in the relevant extent.
	small := shape.New(50, 500)
	if NewRowStrip(100).Valid(small, 1, maxTuple) {
		t.Error("row strip taller than the matrix must be invalid")
	}
	if !NewColStrip(100).Valid(small, 1, maxTuple) {
		t.Error("col strip of width 100 on 50x500 must be valid")
	}
	if NewTile(1000).Valid(small, 1, maxTuple) {
		t.Error("tile exceeding both extents must be invalid")
	}
	if !NewTile(100).Valid(small, 1, maxTuple) {
		t.Error("tile 100 on 50x500 must be valid (covers columns)")
	}
}

func TestStringForms(t *testing.T) {
	cases := map[string]Format{
		"single":             NewSingle(),
		"tile[1000]":         NewTile(1000),
		"rowstrip[100]":      NewRowStrip(100),
		"colstrip[10000]":    NewColStrip(10000),
		"coo":                NewCOO(),
		"csr-single":         NewCSRSingle(),
		"csr-rowstrip[1000]": NewCSRRowStrip(1000),
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestIsSparseIsChunked(t *testing.T) {
	s := shape.New(5000, 5000)
	if NewTile(1000).IsSparse() || !NewCOO().IsSparse() || !NewCSRRowStrip(1000).IsSparse() {
		t.Error("IsSparse misclassifies")
	}
	if NewSingle().IsChunked(s) || !NewTile(1000).IsChunked(s) {
		t.Error("IsChunked misclassifies")
	}
}

func TestTuplesTimesTupleBytesCoversTotal(t *testing.T) {
	// For dense formats, tuple count × max tuple size must be at least
	// the dense payload (chunk padding makes it an upper bound).
	f := func(r16, c16 uint16, pick uint8) bool {
		s := shape.New(int64(r16)+1, int64(c16)+1)
		fs := SingleStripBlock()
		fm := fs[int(pick)%len(fs)]
		return fm.NumTuples(s)*fm.MaxTupleBytes(s, 1) >= s.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
