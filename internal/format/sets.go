package format

// TileSizes are the nine tile edge lengths of the full format set.
var TileSizes = []int64{100, 200, 500, 1000, 2000, 4000, 5000, 8000, 10000}

// StripSizes are the three strip extents used for both row and column
// strips.
var StripSizes = []int64{100, 1000, 10000}

// All returns the complete set of 19 physical matrix implementations.
func All() []Format {
	fs := SingleStripBlock()
	fs = append(fs, NewCOO(), NewCSRSingle(), NewCSRRowStrip(1000))
	return fs
}

// SingleStripBlock returns the 16-format restriction of §8.4: the single
// format, the nine tile sizes and the six strips.
func SingleStripBlock() []Format {
	fs := SingleBlock()
	for _, s := range StripSizes {
		fs = append(fs, NewRowStrip(s))
	}
	for _, s := range StripSizes {
		fs = append(fs, NewColStrip(s))
	}
	return fs
}

// SingleBlock returns the 10-format restriction of §8.4: the single
// format and the nine tile sizes.
func SingleBlock() []Format {
	fs := make([]Format, 0, 10)
	fs = append(fs, NewSingle())
	for _, s := range TileSizes {
		fs = append(fs, NewTile(s))
	}
	return fs
}

// DenseOnly returns the 16 dense formats (All minus the sparse layouts);
// used by the Figure 12 "no sparsity" configuration.
func DenseOnly() []Format { return SingleStripBlock() }
