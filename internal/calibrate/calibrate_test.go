package calibrate

import (
	"math/rand"
	"testing"

	"matopt/internal/costmodel"
)

func TestCollectProducesSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cl := costmodel.LocalTest(3)
	samples, err := Collect(rng, cl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < len(cases()) {
		t.Fatalf("only %d samples from %d cases", len(samples), len(cases()))
	}
	for _, s := range samples {
		if s.Key == "" || s.Seconds < 0 {
			t.Fatalf("malformed sample %+v", s)
		}
	}
}

func TestFitProducesPerOpModels(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration executes real kernels")
	}
	rng := rand.New(rand.NewSource(2))
	cl := costmodel.LocalTest(3)
	m, fitted, err := Fit(rng, cl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fitted) == 0 {
		t.Fatal("no per-operation models fitted")
	}
	for _, key := range fitted {
		co := m.PerKey[key]
		if co.PerFLOP < 0 || co.PerTuple < 0 {
			t.Fatalf("%s: negative coefficients %v", key, co)
		}
	}
	pred, meas, err := SmokeWorkload(rng, cl, m)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || meas <= 0 {
		t.Fatalf("smoke check degenerate: pred=%v meas=%v", pred, meas)
	}
}
