// Package calibrate implements the paper's installation-time cost-model
// calibration (§7): it executes a battery of small single-operation
// plans for real through the engine, pairs each measured wall time with
// the operation's analytic feature vector, and fits per-operation
// regression coefficients by ordinary least squares.
//
// Because the in-process engine has no physical network, only the
// compute- and tuple-rate coefficients are measurable here; the
// network and disk coefficients retain the cluster profile's analytic
// values (the same split a single-node installation of the paper's
// system would face). Fitted models feed back into the optimizer via
// core.Env.Model.
package calibrate

import (
	"fmt"
	"math/rand"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// microCase is one calibration computation: a tiny graph with a pinned
// output format so a specific implementation is exercised.
type microCase struct {
	name   string
	rows   int64
	inner  int64
	cols   int64
	fa, fb format.Format
	kind   op.Kind
	target format.Format
}

// cases returns the calibration battery: each dense matmul strategy and
// elementwise/transpose path at a few sizes.
func cases() []microCase {
	var out []microCase
	sizes := [][3]int64{{200, 300, 200}, {400, 400, 400}, {600, 300, 500}, {800, 800, 200}}
	for _, s := range sizes {
		r, k, c := s[0], s[1], s[2]
		out = append(out,
			microCase{"mm single", r, k, c, format.NewSingle(), format.NewSingle(), op.MatMul, format.NewSingle()},
			microCase{"mm tiles", r, k, c, format.NewTile(100), format.NewTile(100), op.MatMul, format.NewTile(100)},
			microCase{"mm strips", r, k, c, format.NewRowStrip(100), format.NewColStrip(100), op.MatMul, format.NewTile(100)},
			microCase{"mm inner", r, k, c, format.NewColStrip(100), format.NewRowStrip(100), op.MatMul, format.NewSingle()},
			microCase{"add tiles", r, k, 0, format.NewTile(100), format.NewTile(100), op.Add, format.NewTile(100)},
			microCase{"transpose", r, k, 0, format.NewTile(100), format.Format{}, op.Transpose, format.NewTile(100)},
		)
	}
	return out
}

// Collect executes the calibration battery rounds times and returns the
// (implementation/transformation, features, measured seconds) samples.
func Collect(rng *rand.Rand, cl costmodel.Cluster, rounds int) ([]costmodel.Sample, error) {
	env := core.NewEnv(cl, format.All())
	var samples []costmodel.Sample
	for round := 0; round < rounds; round++ {
		for _, mc := range cases() {
			g := core.NewGraph()
			var vs []*core.Vertex
			a := g.Input("a", shape.New(mc.rows, mc.inner), 1, mc.fa)
			vs = append(vs, a)
			o := op.Op{Kind: mc.kind}
			if o.Arity() == 2 {
				var bs shape.Shape
				if mc.kind == op.MatMul {
					bs = shape.New(mc.inner, mc.cols)
				} else {
					bs = shape.New(mc.rows, mc.inner)
				}
				vs = append(vs, g.Input("b", bs, 1, mc.fb))
			}
			out, err := g.Apply(o, vs...)
			if err != nil {
				return nil, fmt.Errorf("calibrate %q: %w", mc.name, err)
			}
			ann, err := core.GreedyAnnotate(g, env, map[int]format.Format{out.ID: mc.target})
			if err != nil {
				return nil, fmt.Errorf("calibrate %q: %w", mc.name, err)
			}
			inputs := map[string]*tensor.Dense{
				"a": tensor.RandNormal(rng, int(mc.rows), int(mc.inner)),
			}
			if o.Arity() == 2 {
				if mc.kind == op.MatMul {
					inputs["b"] = tensor.RandNormal(rng, int(mc.inner), int(mc.cols))
				} else {
					inputs["b"] = tensor.RandNormal(rng, int(mc.rows), int(mc.inner))
				}
			}
			eng := engine.New(cl)
			start := time.Now()
			if _, err := eng.Run(ann, inputs); err != nil {
				return nil, fmt.Errorf("calibrate %q: %w", mc.name, err)
			}
			elapsed := time.Since(start).Seconds()
			samples = append(samples, planSamples(ann, env, elapsed)...)
		}
	}
	return samples, nil
}

// planSamples attributes a measured plan time to its operators in
// proportion to their modeled share, yielding one sample per operator.
// For the single-op calibration plans this is dominated by one
// implementation (plus any forced input transformations).
func planSamples(ann *core.Annotation, env *core.Env, measured float64) []costmodel.Sample {
	total := ann.Total()
	if total <= 0 {
		return nil
	}
	var out []costmodel.Sample
	rep := func(key string, feats costmodel.Features, share float64) {
		out = append(out, costmodel.Sample{
			Key:      key,
			Features: feats,
			Seconds:  measured * share / total,
		})
	}
	for _, v := range ann.Graph.Vertices {
		if v.IsSource {
			continue
		}
		im := ann.VertexImpl[v.ID]
		feats, ok := vertexFeatures(ann, env, v.ID)
		if !ok {
			continue
		}
		rep(im.Name, feats, ann.VertexCost[v.ID])
	}
	return out
}

// vertexFeatures re-derives the feature vector of one annotated vertex.
func vertexFeatures(ann *core.Annotation, env *core.Env, id int) (costmodel.Features, bool) {
	v := ann.Graph.Vertices[id]
	ins := make([]impl.Input, len(v.Ins))
	for j, in := range v.Ins {
		tr := ann.EdgeTrans[core.EdgeKey{To: id, Arg: j}]
		tout, ok := tr.Apply(in.Shape, in.Density, ann.VertexFormat[in.ID], env.Cluster)
		if !ok {
			return costmodel.Features{}, false
		}
		ins[j] = impl.Input{Shape: in.Shape, Density: in.Density, Format: tout.Format}
	}
	out, ok := ann.VertexImpl[id].Apply(v.Op, ins, v.Shape, v.Density, env.Cluster)
	if !ok {
		return costmodel.Features{}, false
	}
	return out.Features, true
}

// Fit runs the whole calibration: collect samples, fit the model, and
// return it with the keys that received per-operation coefficients.
func Fit(rng *rand.Rand, cl costmodel.Cluster, rounds int) (*costmodel.Model, []string, error) {
	samples, err := Collect(rng, cl, rounds)
	if err != nil {
		return nil, nil, err
	}
	m := costmodel.NewModel(cl)
	fitted := m.Fit(samples, 6)
	return m, fitted, nil
}

// SmokeWorkload optimizes and executes a scaled-down FFNN under the
// calibrated model, returning predicted and measured seconds — the
// post-calibration sanity check cmd/calibrate prints.
func SmokeWorkload(rng *rand.Rand, cl costmodel.Cluster, m *costmodel.Model) (predicted, measured float64, err error) {
	cfg := workload.ScaledFFNN(workload.PaperFFNN(80000), 400)
	g, err := workload.FFNNW2Update(cfg)
	if err != nil {
		return 0, 0, err
	}
	env := core.NewEnv(cl, format.All())
	env.Model = m
	ann, err := core.Optimize(g, env)
	if err != nil {
		return 0, 0, err
	}
	eng := engine.New(cl)
	start := time.Now()
	if _, err := eng.Run(ann, workload.FFNNInputs(rng, cfg)); err != nil {
		return 0, 0, err
	}
	return ann.Total(), time.Since(start).Seconds(), nil
}
