package core

import (
	"sort"
	"sync"
	"time"

	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/obs"
	"matopt/internal/trans"
)

// The Frontier algorithm (Algorithm 4) generalizes the tree DP to DAGs
// with shared sub-computations. The frontier cuts the graph into an
// optimized and an unoptimized portion; vertices along the frontier that
// share ancestors are grouped into equivalence classes, and F is
// maintained jointly per class: F(V, p) is the minimum cost to compute
// every vertex in class V with the output formats fixed to the vector p.

// fclass is one equivalence class along the frontier with its joint cost
// table.
type fclass struct {
	members []int // sorted vertex IDs still on the frontier
	entries map[string]*fentry
}

// fentry is one F(V, p) cell plus the back-pointers that reconstruct the
// annotation: the vertex whose processing created the entry, its chosen
// implementation and format, the per-argument transformations, and the
// consumed entries of the previous classes.
type fentry struct {
	cost    float64
	formats []format.Format // parallel to the class's members

	vertex   int
	vFormat  format.Format
	im       *impl.Impl // nil for source entries
	implCost float64
	pins     []format.Format
	trs      []*trans.Transform
	trCosts  []float64
	parents  []*fentry
}

// fmtIntern assigns dense byte IDs to the formats seen during one
// Frontier run, so that cost-table keys are cheap byte strings rather
// than formatted text (key construction sits on the DP's hot path).
// Every format the run can encounter is interned up front in a
// deterministic order, so during the parallel candidate evaluation id()
// only takes the read path; the mutex guards the (never expected)
// residual write path.
type fmtIntern struct {
	mu       sync.RWMutex
	ids      map[format.Format]byte
	overflow bool
}

func newFmtIntern() *fmtIntern { return &fmtIntern{ids: make(map[format.Format]byte)} }

func (in *fmtIntern) id(f format.Format) byte {
	in.mu.RLock()
	id, ok := in.ids[f]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[f]; ok {
		return id
	}
	if len(in.ids) >= 256 {
		// Key bytes would collide; record the overflow and let the run
		// abort with ErrInternal at the next checkpoint.
		in.overflow = true
		return 0
	}
	id = byte(len(in.ids))
	in.ids[f] = id
	return id
}

func (in *fmtIntern) failed() bool {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.overflow
}

func (in *fmtIntern) key(formats []format.Format) string {
	b := make([]byte, len(formats))
	for i, f := range formats {
		b[i] = in.id(f)
	}
	return string(b)
}

// pruneEntries beam-limits a class table to the cheapest max entries
// (see Env.MaxClassEntries) and reports how many were dropped. Ties at
// the cut are broken on the entry key, so pruning is deterministic.
func pruneEntries(entries map[string]*fentry, max int) int {
	if max <= 0 {
		max = 20000
	}
	if len(entries) <= max {
		return 0
	}
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ci, cj := entries[keys[i]].cost, entries[keys[j]].cost
		if ci != cj {
			return ci < cj
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys[max:] {
		delete(entries, k)
	}
	return len(keys) - max
}

// Frontier runs the Frontier DP with a fresh uncancellable session; see
// Session.Frontier.
func Frontier(g *Graph, env *Env) (*Annotation, error) {
	return NewSession(nil, env).Frontier(g)
}

// implEval is one memoized implementation evaluation for a delivered
// input-format combination.
type implEval struct {
	outF   format.Format
	outKey byte
	cost   float64
	ok     bool
}

// argOption is a pre-resolved transformation choice for one argument pin
// format: the transOption plus its interned output byte, computed once
// per (argument, pin) so the candidate evaluation loop does no map
// writes and can run on several goroutines.
type argOption struct {
	tr     *trans.Transform
	pout   format.Format
	poutID byte
	cost   float64
}

// Frontier computes the optimal annotation of a general compute DAG.
// Per-class candidate evaluation — the (implementation × format ×
// transformation) enumeration over the deduplicated parent combos — runs
// on a worker pool bounded by the session's parallelism; combos are
// processed in sorted key order and chunk results merged in chunk order
// with strict-improvement replacement, so parallel and serial runs
// produce byte-identical plans and costs.
func (s *Session) Frontier(g *Graph) (ann *Annotation, err error) {
	start := time.Now()
	fspan := s.tr.Start(s.span, "frontier")
	var rspan *obs.Span // current frontier.round; ended by the defer on error paths
	defer func() {
		s.finish(ann, start)
		rspan.End()
		fspan.SetInt("classes", int64(s.stats.ClassesExpanded)).
			SetInt("candidates", s.stats.CandidatesEvaluated).
			SetInt("pruned", int64(s.stats.EntriesPruned)).
			End()
	}()
	env := s.env
	cache := make(transCache)
	intern := newFmtIntern()
	// Deterministically pre-intern every format the run can touch:
	// the environment's universe, the input formats, and every
	// transformation target. ID assignment order is then independent of
	// map iteration and of the worker schedule.
	for _, f := range env.Formats {
		intern.id(f)
	}
	for _, v := range g.Vertices {
		if v.IsSource {
			intern.id(v.SrcFormat)
		}
	}
	for _, tr := range env.Transforms {
		if !tr.Identity() {
			intern.id(tr.Target())
		}
	}
	if intern.failed() {
		return nil, internalf("more than 256 distinct formats in one optimization")
	}

	visited := make([]bool, len(g.Vertices))
	classOf := make(map[int]*fclass) // frontier vertex → its class
	var front []*fclass

	addClass := func(c *fclass) {
		front = append(front, c)
		for _, id := range c.members {
			classOf[id] = c
		}
	}
	removeClass := func(c *fclass) {
		for i, x := range front {
			if x == c {
				front = append(front[:i], front[i+1:]...)
				break
			}
		}
		for _, id := range c.members {
			delete(classOf, id)
		}
	}

	for _, v := range g.Vertices {
		if !v.IsSource {
			continue
		}
		visited[v.ID] = true
		e := &fentry{formats: []format.Format{v.SrcFormat}, vertex: v.ID, vFormat: v.SrcFormat}
		addClass(&fclass{
			members: []int{v.ID},
			entries: map[string]*fentry{intern.key(e.formats): e},
		})
	}

	for _, v := range g.Vertices {
		if v.IsSource {
			continue
		}
		if err := s.ctxErr(); err != nil {
			return nil, err
		}
		visited[v.ID] = true
		s.stats.ClassesExpanded++
		rspan.End()
		rspan = s.tr.Start(fspan, "frontier.round").SetInt("vertex", int64(v.ID))

		// The classes feeding v (line 10 of Algorithm 4).
		var argClasses []*fclass
		seen := map[*fclass]bool{}
		for _, in := range v.Ins {
			c := classOf[in.ID]
			if c == nil {
				return nil, internalf("parent v%d left the frontier before its consumer v%d was optimized", in.ID, v.ID)
			}
			if !seen[c] {
				seen[c] = true
				argClasses = append(argClasses, c)
			}
		}

		// New class: merged members plus v, minus vertices whose
		// out-edges all lead to visited vertices (line 13).
		var merged []int
		for _, c := range argClasses {
			merged = append(merged, c.members...)
		}
		stillLive := func(id int) bool {
			for _, out := range g.Vertices[id].Outs {
				if !visited[out.ID] {
					return true
				}
			}
			return false
		}
		var newMembers []int
		for _, id := range merged {
			if stillLive(id) {
				newMembers = append(newMembers, id)
			}
		}
		if stillLive(v.ID) {
			newMembers = append(newMembers, v.ID)
		}
		sort.Ints(newMembers)

		// Locate every vertex the combo key needs inside its class, so
		// the cross product below can splice entry-key bytes directly
		// instead of re-hashing formats.
		type slot struct{ cls, idx int }
		locate := func(id int) (slot, bool) {
			for ci, c := range argClasses {
				for mi, m := range c.members {
					if m == id {
						return slot{cls: ci, idx: mi}, true
					}
				}
			}
			return slot{}, false
		}
		var retainedSlots []slot // newMembers minus v, in order
		for _, id := range newMembers {
			if id == v.ID {
				continue
			}
			sl, ok := locate(id)
			if !ok {
				return nil, internalf("retained vertex v%d not found in any consumed class at v%d", id, v.ID)
			}
			retainedSlots = append(retainedSlots, sl)
		}
		argSlots := make([]slot, len(v.Ins))
		for j, in := range v.Ins {
			sl, ok := locate(in.ID)
			if !ok {
				return nil, internalf("argument v%d not found in any consumed class at v%d", in.ID, v.ID)
			}
			argSlots[j] = sl
		}

		// Phase 1: cross product of the consumed classes' entries,
		// deduplicated on (retained formats, argument pins) keeping the
		// cheapest base cost. Keys splice the classes' own entry-key
		// bytes, so no format hashing happens on this hot path. Each
		// class's entries are walked in sorted key order so that
		// equal-cost ties resolve identically on every run.
		type comboInfo struct {
			baseCost float64
			parents  []*fentry
		}
		classKeys := make([][]string, len(argClasses))
		for i, c := range argClasses {
			ks := make([]string, 0, len(c.entries))
			for k := range c.entries {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			classKeys[i] = ks
		}
		combos := make(map[string]*comboInfo)
		chosenKeys := make([]string, len(argClasses))
		chosenEntries := make([]*fentry, len(argClasses))
		comboKey := make([]byte, len(retainedSlots)+len(v.Ins))
		var cross func(i int, cost float64)
		cross = func(i int, cost float64) {
			if i == len(argClasses) {
				for p, sl := range retainedSlots {
					comboKey[p] = chosenKeys[sl.cls][sl.idx]
				}
				for j, sl := range argSlots {
					comboKey[len(retainedSlots)+j] = chosenKeys[sl.cls][sl.idx]
				}
				k := string(comboKey)
				if cur, ok := combos[k]; !ok || cost < cur.baseCost {
					combos[k] = &comboInfo{
						baseCost: cost,
						parents:  append([]*fentry(nil), chosenEntries...),
					}
				}
				return
			}
			for _, k := range classKeys[i] {
				chosenKeys[i] = k
				chosenEntries[i] = argClasses[i].entries[k]
				cross(i+1, cost+argClasses[i].entries[k].cost)
			}
		}
		cross(0, 0)
		// fmtAt reads a combo's format for a located vertex from its
		// parent entry.
		fmtAt := func(combo *comboInfo, sl slot) format.Format {
			return combo.parents[sl.cls].formats[sl.idx]
		}

		// Pre-resolve the transformation options of every (argument,
		// pin) pair the combos can deliver, keyed by the pin's interned
		// byte. After this, phase 2 performs no shared-state writes and
		// is safe to fan out.
		argOpts := make([]map[byte][]argOption, len(v.Ins))
		for a, in := range v.Ins {
			argOpts[a] = make(map[byte][]argOption)
			sl := argSlots[a]
			c := argClasses[sl.cls]
			for _, e := range c.entries {
				pin := e.formats[sl.idx]
				pid := intern.id(pin)
				if _, ok := argOpts[a][pid]; ok {
					continue
				}
				opts := env.transOptions(cache, in, pin)
				aos := make([]argOption, len(opts))
				for k, to := range opts {
					aos[k] = argOption{tr: to.tr, pout: to.pout, poutID: intern.id(to.pout), cost: to.cost}
				}
				argOpts[a][pid] = aos
			}
		}
		if intern.failed() {
			return nil, internalf("more than 256 distinct formats in one optimization")
		}

		// Phase 2: Equation (2). For every deduplicated combo, choose
		// transformations per argument and an implementation; impl
		// evaluations are memoized per delivered-format combination.
		// Combos are evaluated in sorted key order — in parallel chunks
		// when the class is large enough — and ties always resolve to
		// the earliest combo, matching the serial walk exactly.
		impls := env.Impls[v.Op.Kind]
		vIdx := -1
		for i, id := range newMembers {
			if id == v.ID {
				vIdx = i
			}
		}
		comboKeys := make([]string, 0, len(combos))
		for k := range combos {
			comboKeys = append(comboKeys, k)
		}
		sort.Strings(comboKeys)

		evalCombos := func(keys []string) (map[string]*fentry, int64) {
			entries := make(map[string]*fentry)
			implCache := make(map[string][]implEval) // pout-combo key → per-impl results
			pouts := make([]format.Format, len(v.Ins))
			poutIDs := make([]byte, len(v.Ins))
			trsBuf := make([]*trans.Transform, len(v.Ins))
			trCostBuf := make([]float64, len(v.Ins))
			keyBytes := make([]byte, len(newMembers))
			var candidates int64
			var comboK string
			var combo *comboInfo
			var pins []format.Format
			opts := make([][]argOption, len(v.Ins))
			var rec func(j int, trCost float64)
			rec = func(j int, trCost float64) {
				if j == len(v.Ins) {
					poutKey := string(poutIDs)
					evs, ok := implCache[poutKey]
					if !ok {
						evs = make([]implEval, len(impls))
						for ii, im := range impls {
							var ev implEval
							ev.outF, ev.cost, ev.ok = env.applyImpl(v, im, pouts)
							if ev.ok {
								ev.outKey = intern.id(ev.outF)
							}
							evs[ii] = ev
						}
						implCache[poutKey] = evs
						candidates += int64(len(impls))
					}
					for ii := range evs {
						ev := &evs[ii]
						if !ev.ok {
							continue
						}
						total := combo.baseCost + trCost + ev.cost
						if vIdx >= 0 {
							keyBytes[vIdx] = ev.outKey
						}
						k := string(keyBytes)
						if cur, exists := entries[k]; !exists || total < cur.cost {
							formats := make([]format.Format, len(newMembers))
							ri := 0
							for i, id := range newMembers {
								if id == v.ID {
									formats[i] = ev.outF
								} else {
									formats[i] = fmtAt(combo, retainedSlots[ri])
									ri++
								}
							}
							entries[k] = &fentry{
								cost:     total,
								formats:  formats,
								vertex:   v.ID,
								vFormat:  ev.outF,
								im:       impls[ii],
								implCost: ev.cost,
								pins:     pins,
								trs:      append([]*trans.Transform(nil), trsBuf...),
								trCosts:  append([]float64(nil), trCostBuf...),
								parents:  combo.parents,
							}
						}
					}
					return
				}
				for k := range opts[j] {
					o := &opts[j][k]
					pouts[j] = o.pout
					poutIDs[j] = o.poutID
					trsBuf[j] = o.tr
					trCostBuf[j] = o.cost
					rec(j+1, trCost+o.cost)
				}
			}
			for ci, k := range keys {
				if ci&15 == 0 && s.ctx.Err() != nil {
					return entries, candidates
				}
				comboK = k
				combo = combos[k]
				// The retained-member portion of the new table key is
				// fixed for this combo (it is the combo key's prefix);
				// only v's slot, if retained, varies by implementation.
				p := 0
				for i := range newMembers {
					if i == vIdx {
						continue
					}
					keyBytes[i] = comboK[p]
					p++
				}
				pins = make([]format.Format, len(v.Ins))
				for a := range v.Ins {
					pins[a] = fmtAt(combo, argSlots[a])
					opts[a] = argOpts[a][comboK[len(retainedSlots)+a]]
				}
				rec(0, 0)
			}
			return entries, candidates
		}

		var entries map[string]*fentry
		workers := s.parallelism
		if workers > len(comboKeys) {
			workers = len(comboKeys)
		}
		if workers <= 1 || len(comboKeys) < 16 {
			var n int64
			entries, n = evalCombos(comboKeys)
			s.stats.CandidatesEvaluated += n
		} else {
			chunkEntries := make([]map[string]*fentry, workers)
			chunkCounts := make([]int64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo := w * len(comboKeys) / workers
				hi := (w + 1) * len(comboKeys) / workers
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					chunkEntries[w], chunkCounts[w] = evalCombos(comboKeys[lo:hi])
				}(w, lo, hi)
			}
			wg.Wait()
			// Deterministic merge: chunks cover contiguous sorted-key
			// ranges; folding them in chunk order with strict-improvement
			// replacement reproduces the serial walk's outcome exactly.
			entries = chunkEntries[0]
			for w := 1; w < workers; w++ {
				for k, e := range chunkEntries[w] {
					if cur, ok := entries[k]; !ok || e.cost < cur.cost {
						entries[k] = e
					}
				}
				s.stats.CandidatesEvaluated += chunkCounts[w]
			}
			s.stats.CandidatesEvaluated += chunkCounts[0]
		}
		if err := s.ctxErr(); err != nil {
			return nil, err
		}
		if intern.failed() {
			return nil, internalf("more than 256 distinct formats in one optimization")
		}
		if len(entries) == 0 {
			return nil, ErrInfeasible
		}
		s.stats.EntriesPruned += pruneEntries(entries, env.MaxClassEntries)
		rspan.SetInt("combos", int64(len(comboKeys))).SetInt("entries", int64(len(entries)))

		for _, c := range argClasses {
			removeClass(c)
		}
		addClass(&fclass{members: newMembers, entries: entries})
	}

	// Every class remaining on the frontier contributes its cheapest
	// entry; classes are ancestor-disjoint, so costs add. Entry keys are
	// walked in sorted order so equal-cost sinks pick the same entry on
	// every run.
	ann = newAnnotation(g)
	done := make(map[*fentry]bool)
	for _, c := range front {
		keys := make([]string, 0, len(c.entries))
		for k := range c.entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var best *fentry
		for _, k := range keys {
			if e := c.entries[k]; best == nil || e.cost < best.cost {
				best = e
			}
		}
		if best == nil {
			return nil, ErrInfeasible
		}
		backtrackFrontier(g, best, ann, done)
	}
	return ann, nil
}

func backtrackFrontier(g *Graph, e *fentry, ann *Annotation, done map[*fentry]bool) {
	if done[e] {
		return
	}
	done[e] = true
	v := g.Vertices[e.vertex]
	ann.VertexFormat[v.ID] = e.vFormat
	if e.im != nil {
		ann.VertexImpl[v.ID] = e.im
		ann.VertexCost[v.ID] = e.implCost
		for j := range v.Ins {
			ek := EdgeKey{To: v.ID, Arg: j}
			ann.EdgeTrans[ek] = e.trs[j]
			ann.EdgeCost[ek] = e.trCosts[j]
		}
	}
	for _, p := range e.parents {
		backtrackFrontier(g, p, ann, done)
	}
}
