package core

import (
	"sort"
	"time"

	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/trans"
)

// The Frontier algorithm (Algorithm 4) generalizes the tree DP to DAGs
// with shared sub-computations. The frontier cuts the graph into an
// optimized and an unoptimized portion; vertices along the frontier that
// share ancestors are grouped into equivalence classes, and F is
// maintained jointly per class: F(V, p) is the minimum cost to compute
// every vertex in class V with the output formats fixed to the vector p.

// fclass is one equivalence class along the frontier with its joint cost
// table.
type fclass struct {
	members []int // sorted vertex IDs still on the frontier
	entries map[string]*fentry
}

// fentry is one F(V, p) cell plus the back-pointers that reconstruct the
// annotation: the vertex whose processing created the entry, its chosen
// implementation and format, the per-argument transformations, and the
// consumed entries of the previous classes.
type fentry struct {
	cost    float64
	formats []format.Format // parallel to the class's members

	vertex   int
	vFormat  format.Format
	im       *impl.Impl // nil for source entries
	implCost float64
	pins     []format.Format
	trs      []*trans.Transform
	trCosts  []float64
	parents  []*fentry
}

// fmtIntern assigns dense byte IDs to the formats seen during one
// Frontier run, so that cost-table keys are cheap byte strings rather
// than formatted text (key construction sits on the DP's hot path).
type fmtIntern struct {
	ids map[format.Format]byte
}

func newFmtIntern() *fmtIntern { return &fmtIntern{ids: make(map[format.Format]byte)} }

func (in *fmtIntern) id(f format.Format) byte {
	if id, ok := in.ids[f]; ok {
		return id
	}
	id := byte(len(in.ids))
	if int(id) != len(in.ids) {
		panic("core: more than 255 distinct formats in one optimization")
	}
	in.ids[f] = id
	return id
}

func (in *fmtIntern) key(formats []format.Format) string {
	b := make([]byte, len(formats))
	for i, f := range formats {
		b[i] = in.id(f)
	}
	return string(b)
}

// pruneEntries beam-limits a class table to the cheapest max entries
// (see Env.MaxClassEntries).
func pruneEntries(entries map[string]*fentry, max int) {
	if max <= 0 {
		max = 20000
	}
	if len(entries) <= max {
		return
	}
	costs := make([]float64, 0, len(entries))
	for _, e := range entries {
		costs = append(costs, e.cost)
	}
	sort.Float64s(costs)
	cut := costs[max-1]
	kept := 0
	for k, e := range entries {
		if e.cost > cut || (e.cost == cut && kept >= max) {
			delete(entries, k)
			continue
		}
		kept++
	}
}

// Frontier computes the optimal annotation of a general compute DAG.
func Frontier(g *Graph, env *Env) (*Annotation, error) {
	start := time.Now()
	cache := make(transCache)
	intern := newFmtIntern()
	visited := make([]bool, len(g.Vertices))
	classOf := make(map[int]*fclass) // frontier vertex → its class
	var front []*fclass

	addClass := func(c *fclass) {
		front = append(front, c)
		for _, id := range c.members {
			classOf[id] = c
		}
	}
	removeClass := func(c *fclass) {
		for i, x := range front {
			if x == c {
				front = append(front[:i], front[i+1:]...)
				break
			}
		}
		for _, id := range c.members {
			delete(classOf, id)
		}
	}

	for _, v := range g.Vertices {
		if !v.IsSource {
			continue
		}
		visited[v.ID] = true
		e := &fentry{formats: []format.Format{v.SrcFormat}, vertex: v.ID, vFormat: v.SrcFormat}
		addClass(&fclass{
			members: []int{v.ID},
			entries: map[string]*fentry{intern.key(e.formats): e},
		})
	}

	for _, v := range g.Vertices {
		if v.IsSource {
			continue
		}
		visited[v.ID] = true

		// The classes feeding v (line 10 of Algorithm 4).
		var argClasses []*fclass
		seen := map[*fclass]bool{}
		for _, in := range v.Ins {
			c := classOf[in.ID]
			if c == nil {
				panic("core: parent left the frontier before its consumer was optimized")
			}
			if !seen[c] {
				seen[c] = true
				argClasses = append(argClasses, c)
			}
		}

		// New class: merged members plus v, minus vertices whose
		// out-edges all lead to visited vertices (line 13).
		var merged []int
		for _, c := range argClasses {
			merged = append(merged, c.members...)
		}
		stillLive := func(id int) bool {
			for _, out := range g.Vertices[id].Outs {
				if !visited[out.ID] {
					return true
				}
			}
			return false
		}
		var newMembers []int
		for _, id := range merged {
			if stillLive(id) {
				newMembers = append(newMembers, id)
			}
		}
		if stillLive(v.ID) {
			newMembers = append(newMembers, v.ID)
		}
		sort.Ints(newMembers)

		// Locate every vertex the combo key needs inside its class, so
		// the cross product below can splice entry-key bytes directly
		// instead of re-hashing formats.
		type slot struct{ cls, idx int }
		locate := func(id int) slot {
			for ci, c := range argClasses {
				for mi, m := range c.members {
					if m == id {
						return slot{cls: ci, idx: mi}
					}
				}
			}
			panic("core: combo vertex not found in any consumed class")
		}
		var retainedSlots []slot // newMembers minus v, in order
		for _, id := range newMembers {
			if id != v.ID {
				retainedSlots = append(retainedSlots, locate(id))
			}
		}
		argSlots := make([]slot, len(v.Ins))
		for j, in := range v.Ins {
			argSlots[j] = locate(in.ID)
		}

		// Phase 1: cross product of the consumed classes' entries,
		// deduplicated on (retained formats, argument pins) keeping the
		// cheapest base cost. Keys splice the classes' own entry-key
		// bytes, so no format hashing happens on this hot path.
		type comboInfo struct {
			baseCost float64
			parents  []*fentry
		}
		combos := make(map[string]*comboInfo)
		chosenKeys := make([]string, len(argClasses))
		chosenEntries := make([]*fentry, len(argClasses))
		comboKey := make([]byte, len(retainedSlots)+len(v.Ins))
		var cross func(i int, cost float64)
		cross = func(i int, cost float64) {
			if i == len(argClasses) {
				for p, sl := range retainedSlots {
					comboKey[p] = chosenKeys[sl.cls][sl.idx]
				}
				for j, sl := range argSlots {
					comboKey[len(retainedSlots)+j] = chosenKeys[sl.cls][sl.idx]
				}
				k := string(comboKey)
				if cur, ok := combos[k]; !ok || cost < cur.baseCost {
					combos[k] = &comboInfo{
						baseCost: cost,
						parents:  append([]*fentry(nil), chosenEntries...),
					}
				}
				return
			}
			for k, e := range argClasses[i].entries {
				chosenKeys[i] = k
				chosenEntries[i] = e
				cross(i+1, cost+e.cost)
			}
		}
		cross(0, 0)
		// fmtAt reads a combo's format for a located vertex from its
		// parent entry.
		fmtAt := func(combo *comboInfo, sl slot) format.Format {
			return combo.parents[sl.cls].formats[sl.idx]
		}

		// Phase 2: Equation (2). For every deduplicated combo, choose
		// transformations per argument and an implementation; impl
		// evaluations are memoized per delivered-format combination.
		type implEval struct {
			outF   format.Format
			outKey byte
			cost   float64
			ok     bool
		}
		impls := env.Impls[v.Op.Kind]
		implCache := make(map[string][]implEval) // pout-combo key → per-impl results
		entries := make(map[string]*fentry)

		pouts := make([]format.Format, len(v.Ins))
		poutIDs := make([]byte, len(v.Ins))
		trsBuf := make([]*trans.Transform, len(v.Ins))
		trCostBuf := make([]float64, len(v.Ins))
		vIdx := -1
		for i, id := range newMembers {
			if id == v.ID {
				vIdx = i
			}
		}
		for comboK, combo := range combos {
			// The retained-member portion of the new table key is fixed
			// for this combo (it is the combo key's prefix); only v's
			// slot, if retained, varies by implementation.
			keyBytes := make([]byte, len(newMembers))
			p := 0
			for i := range newMembers {
				if i == vIdx {
					continue
				}
				keyBytes[i] = comboK[p]
				p++
			}
			pins := make([]format.Format, len(v.Ins))
			optsPerArg := make([][]transOption, len(v.Ins))
			optIDs := make([][]byte, len(v.Ins))
			for a, in := range v.Ins {
				pins[a] = fmtAt(combo, argSlots[a])
				optsPerArg[a] = env.transOptions(cache, in, pins[a])
				ids := make([]byte, len(optsPerArg[a]))
				for k, to := range optsPerArg[a] {
					ids[k] = intern.id(to.pout)
				}
				optIDs[a] = ids
			}
			var rec func(j int, trCost float64)
			rec = func(j int, trCost float64) {
				if j == len(v.Ins) {
					poutKey := string(poutIDs)
					evs, ok := implCache[poutKey]
					if !ok {
						evs = make([]implEval, len(impls))
						for ii, im := range impls {
							var ev implEval
							ev.outF, ev.cost, ev.ok = env.applyImpl(v, im, pouts)
							if ev.ok {
								ev.outKey = intern.id(ev.outF)
							}
							evs[ii] = ev
						}
						implCache[poutKey] = evs
					}
					for ii := range evs {
						ev := &evs[ii]
						if !ev.ok {
							continue
						}
						total := combo.baseCost + trCost + ev.cost
						if vIdx >= 0 {
							keyBytes[vIdx] = ev.outKey
						}
						k := string(keyBytes)
						if cur, exists := entries[k]; !exists || total < cur.cost {
							formats := make([]format.Format, len(newMembers))
							ri := 0
							for i, id := range newMembers {
								if id == v.ID {
									formats[i] = ev.outF
								} else {
									formats[i] = fmtAt(combo, retainedSlots[ri])
									ri++
								}
							}
							entries[k] = &fentry{
								cost:     total,
								formats:  formats,
								vertex:   v.ID,
								vFormat:  ev.outF,
								im:       impls[ii],
								implCost: ev.cost,
								pins:     pins,
								trs:      append([]*trans.Transform(nil), trsBuf...),
								trCosts:  append([]float64(nil), trCostBuf...),
								parents:  combo.parents,
							}
						}
					}
					return
				}
				for k, to := range optsPerArg[j] {
					pouts[j] = to.pout
					poutIDs[j] = optIDs[j][k]
					trsBuf[j] = to.tr
					trCostBuf[j] = to.cost
					rec(j+1, trCost+to.cost)
				}
			}
			rec(0, 0)
		}
		if len(entries) == 0 {
			return nil, ErrInfeasible
		}
		pruneEntries(entries, env.MaxClassEntries)

		for _, c := range argClasses {
			removeClass(c)
		}
		addClass(&fclass{members: newMembers, entries: entries})
	}

	// Every class remaining on the frontier contributes its cheapest
	// entry; classes are ancestor-disjoint, so costs add.
	ann := newAnnotation(g)
	done := make(map[*fentry]bool)
	for _, c := range front {
		var best *fentry
		for _, e := range c.entries {
			if best == nil || e.cost < best.cost {
				best = e
			}
		}
		if best == nil {
			return nil, ErrInfeasible
		}
		backtrackFrontier(g, best, ann, done)
	}
	ann.OptSeconds = time.Since(start).Seconds()
	return ann, nil
}

func backtrackFrontier(g *Graph, e *fentry, ann *Annotation, done map[*fentry]bool) {
	if done[e] {
		return
	}
	done[e] = true
	v := g.Vertices[e.vertex]
	ann.VertexFormat[v.ID] = e.vFormat
	if e.im != nil {
		ann.VertexImpl[v.ID] = e.im
		ann.VertexCost[v.ID] = e.implCost
		for j := range v.Ins {
			ek := EdgeKey{To: v.ID, Arg: j}
			ann.EdgeTrans[ek] = e.trs[j]
			ann.EdgeCost[ek] = e.trCosts[j]
		}
	}
	for _, p := range e.parents {
		backtrackFrontier(g, p, ann, done)
	}
}
