package core

import (
	"context"
	"errors"
	"time"

	"matopt/internal/format"
	"matopt/internal/trans"
)

// ErrTimeout is returned when the search's deadline expires before it
// completes (the paper's "Fail" at 30 minutes in Figure 13).
var ErrTimeout = errors.New("core: search exceeded its time budget")

// bruteChoice is the decision recorded for one vertex during the search.
type bruteChoice struct {
	im       int // index into env.Impls[v.Op.Kind]
	pins     []format.Format
	trs      []*trans.Transform
	trCosts  []float64
	outF     format.Format
	implCost float64
}

// Brute runs the exhaustive search with a fresh session bounded by
// budget; see Session.Brute.
func Brute(g *Graph, env *Env, budget time.Duration) (*Annotation, error) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	return NewSession(ctx, env).Brute(g)
}

// Brute exhaustively enumerates type-correct annotations (Algorithm 2):
// for every vertex in topological order it tries every implementation and
// every feasible transformation of each argument, recursing on the rest
// of the graph with branch-and-bound pruning against the best complete
// annotation found so far. Complexity is exponential in the number of
// vertices; the session context bounds the wall time — an expired
// deadline returns ErrTimeout, a cancelled parent context its own error.
func (s *Session) Brute(g *Graph) (ann *Annotation, err error) {
	start := time.Now()
	bspan := s.tr.Start(s.span, "brute.enumerate")
	defer func() {
		s.finish(ann, start)
		bspan.SetInt("candidates", s.stats.CandidatesEvaluated).End()
	}()
	env := s.env
	cache := make(transCache)

	var order []*Vertex
	curFormat := make([]format.Format, len(g.Vertices))
	for _, v := range g.Vertices {
		if v.IsSource {
			curFormat[v.ID] = v.SrcFormat
		} else {
			order = append(order, v)
		}
	}

	choices := make([]bruteChoice, len(order))
	var bestChoices []bruteChoice
	bestCost := -1.0
	aborted := false
	steps := 0

	var rec func(k int, costSoFar float64)
	rec = func(k int, costSoFar float64) {
		if aborted {
			return
		}
		steps++
		// Poll the session context rather than the clock, so a cancelled
		// parent aborts promptly; every 64 steps keeps a 1 ms deadline
		// honest without measurable overhead on the search itself.
		if steps&63 == 0 && s.ctx.Err() != nil {
			aborted = true
			return
		}
		if bestCost >= 0 && costSoFar >= bestCost {
			return // branch and bound
		}
		if k == len(order) {
			bestCost = costSoFar
			bestChoices = append(bestChoices[:0], choices...)
			return
		}
		v := order[k]
		pouts := make([]format.Format, len(v.Ins))
		trs := make([]*trans.Transform, len(v.Ins))
		trCosts := make([]float64, len(v.Ins))
		pins := make([]format.Format, len(v.Ins))
		var args func(j int, trCost float64)
		args = func(j int, trCost float64) {
			if aborted {
				return
			}
			if j == len(v.Ins) {
				for ii, im := range env.Impls[v.Op.Kind] {
					s.stats.CandidatesEvaluated++
					outF, implCost, ok := env.applyImpl(v, im, pouts)
					if !ok {
						continue
					}
					choices[k] = bruteChoice{
						im:       ii,
						pins:     append([]format.Format(nil), pins...),
						trs:      append([]*trans.Transform(nil), trs...),
						trCosts:  append([]float64(nil), trCosts...),
						outF:     outF,
						implCost: implCost,
					}
					saved := curFormat[v.ID]
					curFormat[v.ID] = outF
					rec(k+1, costSoFar+trCost+implCost)
					curFormat[v.ID] = saved
				}
				return
			}
			in := v.Ins[j]
			pins[j] = curFormat[in.ID]
			for _, to := range env.transOptions(cache, in, curFormat[in.ID]) {
				pouts[j] = to.pout
				trs[j] = to.tr
				trCosts[j] = to.cost
				args(j+1, trCost+to.cost)
			}
		}
		args(0, 0)
	}
	rec(0, 0)

	if aborted {
		return nil, s.ctxErr()
	}
	if bestCost < 0 {
		return nil, ErrInfeasible
	}
	ann = newAnnotation(g)
	for _, v := range g.Vertices {
		if v.IsSource {
			ann.VertexFormat[v.ID] = v.SrcFormat
		}
	}
	for k, v := range order {
		ch := bestChoices[k]
		ann.VertexImpl[v.ID] = env.Impls[v.Op.Kind][ch.im]
		ann.VertexFormat[v.ID] = ch.outF
		ann.VertexCost[v.ID] = ch.implCost
		for j := range v.Ins {
			ek := EdgeKey{To: v.ID, Arg: j}
			ann.EdgeTrans[ek] = ch.trs[j]
			ann.EdgeCost[ek] = ch.trCosts[j]
		}
	}
	return ann, nil
}
