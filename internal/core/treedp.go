package core

import (
	"errors"
	"time"

	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/trans"
)

// ErrInfeasible is returned when no type-correct annotation exists within
// the environment (for example, every implementation is memory-infeasible
// on the given cluster).
var ErrInfeasible = errors.New("core: no type-correct annotation exists")

// ErrNotTree is returned by TreeDP on graphs with shared sub-computations.
var ErrNotTree = errors.New("core: graph is not tree-shaped; use Frontier")

// treeEntry is one F(v, ρ) table cell with the back-pointers needed to
// reconstruct the optimal annotation.
type treeEntry struct {
	cost float64
	im   *impl.Impl
	// Per argument: the child's table format and the edge transformation.
	pins []format.Format
	trs  []*trans.Transform
}

// childChoice is the cheapest way to obtain format pout from a child:
// its own optimal sub-annotation ending in pin, plus one transformation.
type childChoice struct {
	cost float64
	pin  format.Format
	tr   *trans.Transform
}

// TreeDP runs the tree dynamic program with a fresh uncancellable
// session; see Session.TreeDP.
func TreeDP(g *Graph, env *Env) (*Annotation, error) {
	return NewSession(nil, env).TreeDP(g)
}

// TreeDP computes the optimal annotation of a tree-shaped compute graph
// with the Felsenstein-style dynamic program of Algorithm 3, in time
// O(n·|P|·|I|·|V|). The session context is polled per vertex and per
// implementation, so a cancelled or expired context aborts mid-search.
func (s *Session) TreeDP(g *Graph) (ann *Annotation, err error) {
	if !g.IsTree() {
		return nil, ErrNotTree
	}
	start := time.Now()
	tspan := s.tr.Start(s.span, "treedp")
	defer func() {
		s.finish(ann, start)
		tspan.SetInt("tables", int64(s.stats.ClassesExpanded)).
			SetInt("candidates", s.stats.CandidatesEvaluated).
			End()
	}()
	env := s.env
	cache := make(transCache)
	tables := make([]map[format.Format]*treeEntry, len(g.Vertices))

	for _, v := range g.Vertices { // construction order is topological
		if err := s.ctxErr(); err != nil {
			return nil, err
		}
		table := make(map[format.Format]*treeEntry)
		if v.IsSource {
			table[v.SrcFormat] = &treeEntry{}
			tables[v.ID] = table
			continue
		}
		s.stats.ClassesExpanded++
		// The cheapest way to hand each argument to this vertex in any
		// given format: min over the child's table and a transformation.
		best := make([]map[format.Format]childChoice, len(v.Ins))
		for j, in := range v.Ins {
			best[j] = make(map[format.Format]childChoice)
			for pin, e := range tables[in.ID] {
				for _, to := range env.transOptions(cache, in, pin) {
					cand := e.cost + to.cost
					if cur, ok := best[j][to.pout]; !ok || cand < cur.cost {
						best[j][to.pout] = childChoice{cost: cand, pin: pin, tr: to.tr}
					}
				}
			}
			if len(best[j]) == 0 {
				return nil, ErrInfeasible
			}
		}
		// Equation (1): minimize over implementations and delivered
		// input formats.
		pouts := make([]format.Format, len(v.Ins))
		for _, im := range env.Impls[v.Op.Kind] {
			if s.ctx.Err() != nil {
				return nil, s.ctxErr()
			}
			enumerateCombos(best, 0, pouts, func() {
				s.stats.CandidatesEvaluated++
				outF, implCost, ok := env.applyImpl(v, im, pouts)
				if !ok {
					return
				}
				total := implCost
				for j := range pouts {
					total += best[j][pouts[j]].cost
				}
				if cur, ok := table[outF]; !ok || total < cur.cost {
					pins := make([]format.Format, len(pouts))
					trs := make([]*trans.Transform, len(pouts))
					for j, p := range pouts {
						pins[j] = best[j][p].pin
						trs[j] = best[j][p].tr
					}
					table[outF] = &treeEntry{cost: total, im: im, pins: pins, trs: trs}
				}
			})
		}
		if len(table) == 0 {
			return nil, ErrInfeasible
		}
		tables[v.ID] = table
	}

	ann = newAnnotation(g)
	for _, sink := range g.Sinks() {
		var bestF format.Format
		bestCost := -1.0
		for f, e := range tables[sink.ID] {
			if bestCost < 0 || e.cost < bestCost {
				bestF, bestCost = f, e.cost
			}
		}
		if bestCost < 0 {
			return nil, ErrInfeasible
		}
		if err := backtrackTree(g, env, tables, sink, bestF, ann); err != nil {
			return nil, err
		}
	}
	return ann, nil
}

// enumerateCombos walks the cross product of the per-argument format
// domains, filling pouts and invoking fn for every combination.
func enumerateCombos(best []map[format.Format]childChoice, j int, pouts []format.Format, fn func()) {
	if j == len(best) {
		fn()
		return
	}
	for f := range best[j] {
		pouts[j] = f
		enumerateCombos(best, j+1, pouts, fn)
	}
}

// backtrackTree labels the annotation along the optimal sub-plan that
// leaves vertex v in format f. A recorded choice that no longer applies
// is an optimizer bug and surfaces as ErrInternal.
func backtrackTree(g *Graph, env *Env, tables []map[format.Format]*treeEntry, v *Vertex, f format.Format, ann *Annotation) error {
	ann.VertexFormat[v.ID] = f
	if v.IsSource {
		return nil
	}
	e := tables[v.ID][f]
	if e == nil {
		return internalf("backtracking reached vertex %d with unrecorded format %v", v.ID, f)
	}
	ann.VertexImpl[v.ID] = e.im
	// Re-derive the impl cost for the cost breakdown.
	pouts := make([]format.Format, len(v.Ins))
	for j, in := range v.Ins {
		tout, ok := e.trs[j].Apply(in.Shape, in.Density, e.pins[j], env.Cluster)
		if !ok {
			return internalf("recorded transformation %s became infeasible during backtracking at vertex %d", e.trs[j].Name, v.ID)
		}
		pouts[j] = tout.Format
		ek := EdgeKey{To: v.ID, Arg: j}
		ann.EdgeTrans[ek] = e.trs[j]
		ann.EdgeCost[ek] = e.trs[j].Cost(env.Model, tout)
	}
	_, implCost, ok := env.applyImpl(v, e.im, pouts)
	if !ok {
		return internalf("recorded implementation %s became infeasible during backtracking at vertex %d", e.im.Name, v.ID)
	}
	ann.VertexCost[v.ID] = implCost
	for j, in := range v.Ins {
		if err := backtrackTree(g, env, tables, in, e.pins[j], ann); err != nil {
			return err
		}
	}
	return nil
}
