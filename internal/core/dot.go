package core

import (
	"fmt"
	"strings"
)

// DOT renders the annotated compute graph in Graphviz format — the
// artifact the paper's Figure 2 draws: vertices labeled with their
// atomic computation, chosen implementation and resulting physical
// format, and edges labeled with their physical matrix transformations.
func (a *Annotation) DOT() string {
	var b strings.Builder
	b.WriteString("digraph annotated {\n")
	b.WriteString("  rankdir=BT;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, v := range a.Graph.Vertices {
		if v.IsSource {
			fmt.Fprintf(&b, "  v%d [label=\"%s\\n%v\\n%v\", style=filled, fillcolor=lightgray];\n",
				v.ID, escapeDOT(v.Name), v.Shape, a.VertexFormat[v.ID])
			continue
		}
		im := "?"
		if a.VertexImpl[v.ID] != nil {
			im = a.VertexImpl[v.ID].Name
		}
		fmt.Fprintf(&b, "  v%d [label=\"%v\\n%s\\n→ %v\"];\n",
			v.ID, v.Op, escapeDOT(im), a.VertexFormat[v.ID])
	}
	for _, v := range a.Graph.Vertices {
		for j, in := range v.Ins {
			tr := a.EdgeTrans[EdgeKey{To: v.ID, Arg: j}]
			label := ""
			if tr != nil && !tr.Identity() {
				label = fmt.Sprintf(" [label=\"%s\", color=blue]", escapeDOT(tr.Name))
			}
			fmt.Fprintf(&b, "  v%d -> v%d%s;\n", in.ID, v.ID, label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	return strings.NewReplacer(`"`, `\"`, `\`, `\\`).Replace(s)
}
