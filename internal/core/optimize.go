package core

import "context"

// Optimize computes the optimal annotation of g with a fresh
// uncancellable session; see Session.Optimize.
func Optimize(g *Graph, env *Env) (*Annotation, error) {
	return NewSession(nil, env).Optimize(g)
}

// OptimizeCtx is Optimize under a caller-supplied context: an expired
// deadline aborts the search with ErrTimeout, an explicit cancellation
// with the context's own error.
func OptimizeCtx(ctx context.Context, g *Graph, env *Env) (*Annotation, error) {
	return NewSession(ctx, env).Optimize(g)
}
