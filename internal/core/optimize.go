package core

// Optimize computes the optimal annotation of g, dispatching to the
// linear-time tree DP when the graph is tree-shaped and to the Frontier
// algorithm otherwise, exactly as the paper's prototype does (§8.2 notes
// the FFNN graph is not a tree, so the frontier algorithm is used).
func Optimize(g *Graph, env *Env) (*Annotation, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.IsTree() {
		return TreeDP(g, env)
	}
	return Frontier(g, env)
}
