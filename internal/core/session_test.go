package core_test

// Session-layer tests: context cancellation across all three algorithms,
// parallel-vs-serial determinism of the Frontier DP on every seed
// workload generator, and the per-run instrumentation. These live in an
// external test package so they can drive the real workload graphs
// (internal/workload imports core).

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/workload"
)

// seedCase is one workload graph plus the beam limit the determinism
// test optimizes it under (0 = the exact default; the pathological
// sharers get a beam both to bound test time and to exercise the
// deterministic pruning path).
type seedCase struct {
	name string
	g    *core.Graph
	beam int
}

// seedGraphs returns every workload generator's graph, named.
func seedGraphs(t *testing.T) []seedCase {
	t.Helper()
	var out []seedCase
	add := func(name string, beam int, g *core.Graph, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		out = append(out, seedCase{name, g, beam})
	}
	ffnn := workload.PaperFFNN(80000)
	g, err := workload.FFNNW2Update(ffnn)
	add("ffnn-w2", 0, g, err)
	g, err = workload.FFNNThreePass(ffnn)
	add("ffnn-threepass", 1500, g, err)
	g, err = workload.MotivatingChain()
	add("motivating", 0, g, err)
	for i, sz := range workload.ChainSizeSets() {
		g, err = workload.MatMulChain(sz)
		add(fmt.Sprintf("chain-%d", i+1), 0, g, err)
	}
	g, err = workload.BlockInverse2(workload.PaperBlockInverse())
	add("block-inverse", 1500, g, err)
	for _, k := range []workload.ScaleKind{workload.ScaleTree, workload.ScaleDAG1, workload.ScaleDAG2} {
		g, err = workload.ScaleGraph(k, 4)
		add(fmt.Sprintf("scale-%v", k), 0, g, err)
	}
	return out
}

// TestParallelFrontierMatchesSerial is the determinism property the
// worker pool must preserve: for every seed workload, the parallel
// Frontier returns the identical total cost and Describe() output as the
// serial path, and the plan verifies.
func TestParallelFrontierMatchesSerial(t *testing.T) {
	for _, tc := range seedGraphs(t) {
		t.Run(tc.name, func(t *testing.T) {
			env := core.NewEnv(costmodel.EC2R5D(10), format.All())
			env.MaxClassEntries = tc.beam
			serial, err := core.NewSession(nil, env, core.WithParallelism(1)).Frontier(tc.g)
			if err != nil {
				t.Fatalf("serial Frontier: %v", err)
			}
			parallel, err := core.NewSession(nil, env, core.WithParallelism(8)).Frontier(tc.g)
			if err != nil {
				t.Fatalf("parallel Frontier: %v", err)
			}
			if s, p := serial.Total(), parallel.Total(); s != p {
				t.Errorf("total cost diverged: serial %.12f, parallel %.12f", s, p)
			}
			if s, p := serial.Describe(), parallel.Describe(); s != p {
				t.Errorf("plans diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
			if err := parallel.Verify(env); err != nil {
				t.Errorf("parallel plan does not verify: %v", err)
			}
		})
	}
}

// TestBruteDeadlinePrompt is the regression test for the context-based
// deadline check: a 1 ms budget on an intractable search must return
// ErrTimeout promptly, not after a long polling interval.
func TestBruteDeadlinePrompt(t *testing.T) {
	g, err := workload.FFNNW2Update(workload.PaperFFNN(80000))
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	start := time.Now()
	_, err = core.Brute(g, env, time.Millisecond)
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout should also match context.DeadlineExceeded, got %v", err)
	}
	// ~10 ms is the target; 50 ms leaves slack for slow CI machines while
	// still catching a return to coarse polling.
	if elapsed > 50*time.Millisecond {
		t.Errorf("1 ms budget took %v to abort", elapsed)
	}
}

// TestCancelledContextAborts checks that an already-cancelled parent
// context aborts all three algorithms with context.Canceled — and that
// none of them panic.
func TestCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())

	dag, err := workload.FFNNW2Update(workload.PaperFFNN(80000))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := workload.MotivatingChain()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := core.NewSession(ctx, env).Brute(tree); !errors.Is(err, context.Canceled) {
		t.Errorf("Brute under cancelled context: got %v", err)
	}
	if _, err := core.NewSession(ctx, env).TreeDP(tree); !errors.Is(err, context.Canceled) {
		t.Errorf("TreeDP under cancelled context: got %v", err)
	}
	if _, err := core.NewSession(ctx, env).Frontier(dag); !errors.Is(err, context.Canceled) {
		t.Errorf("Frontier under cancelled context: got %v", err)
	}
	if _, err := core.OptimizeCtx(ctx, dag, env); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimizeCtx under cancelled context: got %v", err)
	}
}

// TestFrontierDeadline checks mid-search deadline expiry in the Frontier
// DP surfaces as ErrTimeout.
func TestFrontierDeadline(t *testing.T) {
	g, err := workload.FFNNThreePass(workload.PaperFFNN(80000))
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := core.NewSession(ctx, env).Frontier(g); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}

// TestSessionStats checks the per-run instrumentation is populated.
func TestSessionStats(t *testing.T) {
	g, err := workload.FFNNW2Update(workload.PaperFFNN(80000))
	if err != nil {
		t.Fatal(err)
	}
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	sess := core.NewSession(nil, env)
	if _, err := sess.Optimize(g); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.ClassesExpanded != g.NumOps() {
		t.Errorf("ClassesExpanded = %d, want one per non-source vertex (%d)", st.ClassesExpanded, g.NumOps())
	}
	if st.CandidatesEvaluated == 0 {
		t.Error("CandidatesEvaluated = 0 after a full search")
	}
	if st.WallSeconds <= 0 {
		t.Errorf("WallSeconds = %v, want > 0", st.WallSeconds)
	}
}

// TestAddInputErrors checks graph construction reports typed errors
// instead of panicking.
func TestAddInputErrors(t *testing.T) {
	g := core.NewGraph()
	s := shape.New(4, 4)
	if _, err := g.AddInput("a", s, 2.0, format.NewSingle()); err == nil {
		t.Error("density 2.0 accepted")
	}
	if _, err := g.AddInput("a", s, 1.0, format.NewSingle()); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if _, err := g.AddInput("a", s, 1.0, format.NewSingle()); err == nil {
		t.Error("duplicate name accepted")
	}
}
