package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/trans"
)

// planDTO is the wire form of an annotation: implementations and
// transformations by their stable names, formats by their textual form,
// keyed by vertex / edge. The compute graph itself is not serialized —
// a plan is only meaningful against the graph it annotates, which the
// caller re-builds (graph builders are deterministic).
type planDTO struct {
	Vertices []vertexDTO `json:"vertices"`
	Edges    []edgeDTO   `json:"edges"`
}

type vertexDTO struct {
	ID     int    `json:"id"`
	Impl   string `json:"impl,omitempty"` // empty for sources
	Format string `json:"format"`
}

type edgeDTO struct {
	To        int    `json:"to"`
	Arg       int    `json:"arg"`
	Transform string `json:"transform"`
}

// EncodePlan serializes an annotation to JSON for caching; decode it
// against the same graph with DecodePlan.
func EncodePlan(a *Annotation) ([]byte, error) {
	dto := planDTO{}
	for _, v := range a.Graph.Vertices {
		vd := vertexDTO{ID: v.ID, Format: a.VertexFormat[v.ID].String()}
		if !v.IsSource {
			im := a.VertexImpl[v.ID]
			if im == nil {
				return nil, fmt.Errorf("core: vertex %d has no implementation", v.ID)
			}
			vd.Impl = im.Name
		}
		dto.Vertices = append(dto.Vertices, vd)
		for j := range v.Ins {
			tr := a.EdgeTrans[EdgeKey{To: v.ID, Arg: j}]
			if tr == nil {
				return nil, fmt.Errorf("core: edge into %d arg %d has no transformation", v.ID, j)
			}
			dto.Edges = append(dto.Edges, edgeDTO{To: v.ID, Arg: j, Transform: tr.Name})
		}
	}
	return json.MarshalIndent(dto, "", "  ")
}

// DecodePlan reconstructs an annotation for graph g from EncodePlan
// output, re-deriving the per-vertex and per-edge costs under env and
// verifying type-correctness. It fails if the plan does not fit the
// graph (wrong vertex count, unknown implementation, mismatched shapes)
// or is no longer feasible under env's cluster.
func DecodePlan(g *Graph, env *Env, data []byte) (*Annotation, error) {
	var dto planDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("core: decoding plan: %w", err)
	}
	if len(dto.Vertices) != len(g.Vertices) {
		return nil, fmt.Errorf("core: plan has %d vertices, graph has %d", len(dto.Vertices), len(g.Vertices))
	}
	ann := newAnnotation(g)
	for _, vd := range dto.Vertices {
		if vd.ID < 0 || vd.ID >= len(g.Vertices) {
			return nil, fmt.Errorf("core: plan references vertex %d", vd.ID)
		}
		f, err := format.Parse(vd.Format)
		if err != nil {
			return nil, err
		}
		ann.VertexFormat[vd.ID] = f
		v := g.Vertices[vd.ID]
		if v.IsSource {
			if vd.Impl != "" {
				return nil, fmt.Errorf("core: source vertex %d carries an implementation", vd.ID)
			}
			continue
		}
		im := impl.ByName(vd.Impl)
		if im == nil {
			return nil, fmt.Errorf("core: unknown implementation %q", vd.Impl)
		}
		ann.VertexImpl[vd.ID] = im
	}
	transByName := make(map[string]*trans.Transform)
	for _, tr := range trans.All() {
		transByName[tr.Name] = tr
	}
	for _, ed := range dto.Edges {
		tr, ok := transByName[ed.Transform]
		if !ok {
			return nil, fmt.Errorf("core: unknown transformation %q", ed.Transform)
		}
		ann.EdgeTrans[EdgeKey{To: ed.To, Arg: ed.Arg}] = tr
	}
	// Re-derive costs and check type-correctness in one pass.
	for _, v := range g.Vertices {
		if v.IsSource {
			continue
		}
		pouts := make([]format.Format, len(v.Ins))
		for j, in := range v.Ins {
			ek := EdgeKey{To: v.ID, Arg: j}
			tr := ann.EdgeTrans[ek]
			if tr == nil {
				return nil, fmt.Errorf("core: plan misses edge into %d arg %d", v.ID, j)
			}
			tout, ok := tr.Apply(in.Shape, in.Density, ann.VertexFormat[in.ID], env.Cluster)
			if !ok {
				return nil, fmt.Errorf("core: transformation %s infeasible on edge into %d arg %d", tr.Name, v.ID, j)
			}
			pouts[j] = tout.Format
			ann.EdgeCost[ek] = tr.Cost(env.Model, tout)
		}
		outF, implCost, ok := env.applyImpl(v, ann.VertexImpl[v.ID], pouts)
		if !ok {
			return nil, fmt.Errorf("core: implementation %s infeasible on vertex %d", ann.VertexImpl[v.ID].Name, v.ID)
		}
		if outF != ann.VertexFormat[v.ID] {
			return nil, fmt.Errorf("core: vertex %d derives %v, plan says %v", v.ID, outF, ann.VertexFormat[v.ID])
		}
		ann.VertexCost[v.ID] = implCost
	}
	if err := ann.Verify(env); err != nil {
		return nil, err
	}
	return ann, nil
}

// Fingerprint returns a canonical digest of everything the optimizer's
// answer depends on: the graph's structure (vertex ops, argument wiring,
// shapes, densities, input names and formats) and the environment (the
// format universe, the cluster profile, the cost-model coefficients and
// the beam limit). Two Optimize calls with equal fingerprints are
// guaranteed the same optimal plan, which is what makes the plan cache
// in the root package sound. Densities are part of the key because the
// adaptive executor re-optimizes remainder graphs with measured
// densities substituted in — those must not collide with the original
// estimate's plan.
func Fingerprint(g *Graph, env *Env) string {
	h := sha256.New()
	fmt.Fprintf(h, "cluster|%+v\n", env.Cluster)
	fmt.Fprintf(h, "beam|%d\n", env.MaxClassEntries)
	for _, f := range env.Formats {
		fmt.Fprintf(h, "fmt|%v\n", f)
	}
	if env.Model != nil {
		fmt.Fprintf(h, "model|%+v\n", env.Model.Default)
		keys := make([]string, 0, len(env.Model.PerKey))
		for k := range env.Model.PerKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(h, "model|%s|%+v\n", k, env.Model.PerKey[k])
		}
	}
	for _, v := range g.Vertices {
		if v.IsSource {
			fmt.Fprintf(h, "src|%d|%s|%v|%v|%.17g\n", v.ID, v.Name, v.Shape, v.SrcFormat, v.Density)
			continue
		}
		fmt.Fprintf(h, "op|%d|%d|%.17g|%v|%.17g|", v.ID, v.Op.Kind, v.Op.Scalar, v.Shape, v.Density)
		for _, in := range v.Ins {
			fmt.Fprintf(h, "%d,", in.ID)
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}
