package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

func testEnv(workers int) *Env {
	return NewEnv(costmodel.EC2R5D(workers), format.All())
}

// chainGraph builds In0 × In1 × ... × Ink as a left-deep tree.
func chainGraph(t *testing.T, dims []int64, formats []format.Format) *Graph {
	t.Helper()
	g := NewGraph()
	cur := g.Input("m0", shape.New(dims[0], dims[1]), 1, formats[0])
	for i := 1; i+1 < len(dims); i++ {
		next := g.Input("m"+string(rune('0'+i)), shape.New(dims[i], dims[i+1]), 1, formats[i])
		v, err := g.Apply(op.Op{Kind: op.MatMul}, cur, next)
		if err != nil {
			t.Fatal(err)
		}
		cur = v
	}
	return g
}

func TestGraphConstruction(t *testing.T) {
	g := NewGraph()
	a := g.Input("a", shape.New(10, 20), 1, format.NewSingle())
	b := g.Input("b", shape.New(20, 30), 1, format.NewSingle())
	v, err := g.Apply(op.Op{Kind: op.MatMul}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Shape != shape.New(10, 30) {
		t.Errorf("inferred shape %v", v.Shape)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() || g.NumOps() != 1 {
		t.Error("graph shape misclassified")
	}
	if len(g.Sinks()) != 1 || g.Sinks()[0] != v {
		t.Error("Sinks wrong")
	}
	if g.ByName("a") != a || g.ByName("zzz") != nil {
		t.Error("ByName wrong")
	}
	// Shape mismatch is ⊥.
	if _, err := g.Apply(op.Op{Kind: op.MatMul}, a, a); err == nil {
		t.Error("10x20 × 10x20 accepted")
	}
	// Arity mismatch.
	if _, err := g.Apply(op.Op{Kind: op.MatMul}, a); err == nil {
		t.Error("unary matmul accepted")
	}
}

func TestGraphSharedVertexIsNotTree(t *testing.T) {
	g := NewGraph()
	a := g.Input("a", shape.New(100, 100), 1, format.NewSingle())
	b := g.Input("b", shape.New(100, 100), 1, format.NewSingle())
	t1 := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	g.MustApply(op.Op{Kind: op.Add}, t1, t1) // t1 used twice
	if g.IsTree() {
		t.Error("shared vertex should break tree-ness")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateInputPanics(t *testing.T) {
	g := NewGraph()
	g.Input("a", shape.New(2, 2), 1, format.NewSingle())
	defer func() {
		if recover() == nil {
			t.Error("duplicate input name accepted")
		}
	}()
	g.Input("a", shape.New(2, 2), 1, format.NewSingle())
}

func TestTreeDPSimpleChain(t *testing.T) {
	g := chainGraph(t, []int64{100, 10000, 100, 1000000},
		[]format.Format{format.NewRowStrip(1000), format.NewColStrip(1000), format.NewColStrip(10000)})
	env := testEnv(5)
	ann, err := TreeDP(g, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Verify(env); err != nil {
		t.Fatalf("optimal annotation fails verification: %v", err)
	}
	if ann.Total() <= 0 {
		t.Fatal("zero total cost")
	}
}

func TestTreeDPRejectsDAG(t *testing.T) {
	g := NewGraph()
	a := g.Input("a", shape.New(100, 100), 1, format.NewSingle())
	b := g.Input("b", shape.New(100, 100), 1, format.NewSingle())
	t1 := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	g.MustApply(op.Op{Kind: op.Add}, t1, t1)
	if _, err := TreeDP(g, testEnv(5)); !errors.Is(err, ErrNotTree) {
		t.Fatalf("err = %v, want ErrNotTree", err)
	}
}

func TestFrontierMatchesTreeDPOnTrees(t *testing.T) {
	for _, dims := range [][]int64{
		{100, 10000, 100, 1000000},
		{5000, 5000, 5000, 5000, 5000},
		{50000, 1, 100000, 30000},
	} {
		fs := make([]format.Format, len(dims)-1)
		for i := range fs {
			fs[i] = format.NewTile(1000)
		}
		// Vectors cannot be tiled 1000×1000 in one extent; use single.
		for i := range fs {
			s := shape.New(dims[i], dims[i+1])
			if !fs[i].Valid(s, 1, costmodel.EC2R5D(10).MaxTupleBytes) {
				fs[i] = format.NewSingle()
			}
		}
		g := chainGraph(t, dims, fs)
		env := testEnv(10)
		tree, err := TreeDP(g, env)
		if err != nil {
			t.Fatalf("dims %v: TreeDP: %v", dims, err)
		}
		fr, err := Frontier(g, env)
		if err != nil {
			t.Fatalf("dims %v: Frontier: %v", dims, err)
		}
		if d := math.Abs(tree.Total() - fr.Total()); d > 1e-9*tree.Total() {
			t.Errorf("dims %v: TreeDP %.6f vs Frontier %.6f", dims, tree.Total(), fr.Total())
		}
		if err := fr.Verify(env); err != nil {
			t.Errorf("dims %v: frontier annotation invalid: %v", dims, err)
		}
	}
}

func TestBruteMatchesDPOnSmallTree(t *testing.T) {
	g := chainGraph(t, []int64{2000, 4000, 2000},
		[]format.Format{format.NewTile(1000), format.NewTile(1000)})
	// Small format universe so brute finishes fast.
	env := NewEnv(costmodel.EC2R5D(5), format.SingleBlock())
	dp, err := TreeDP(g, env)
	if err != nil {
		t.Fatal(err)
	}
	br, err := Brute(g, env, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(dp.Total() - br.Total()); d > 1e-9*dp.Total() {
		t.Fatalf("TreeDP %.6f vs Brute %.6f", dp.Total(), br.Total())
	}
}

// smallDAG builds O = (T1×T2) + (T1×T2ᵀ... ) — a graph with sharing.
func smallDAG(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	a := g.Input("a", shape.New(2000, 2000), 1, format.NewTile(1000))
	b := g.Input("b", shape.New(2000, 2000), 1, format.NewTile(1000))
	t1 := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	t2 := g.MustApply(op.Op{Kind: op.MatMul}, t1, b) // t1 shared below too
	g.MustApply(op.Op{Kind: op.Add}, t1, t2)
	return g
}

func TestFrontierMatchesBruteOnSmallDAG(t *testing.T) {
	g := smallDAG(t)
	env := NewEnv(costmodel.EC2R5D(5), format.SingleBlock())
	fr, err := Frontier(g, env)
	if err != nil {
		t.Fatal(err)
	}
	br, err := Brute(g, env, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(fr.Total() - br.Total()); d > 1e-9*br.Total() {
		t.Fatalf("Frontier %.6f vs Brute %.6f", fr.Total(), br.Total())
	}
	if err := fr.Verify(env); err != nil {
		t.Fatal(err)
	}
}

func TestBruteTimeout(t *testing.T) {
	// A 12-op chain over the full 19-format universe cannot finish in 1ms.
	dims := make([]int64, 14)
	fs := make([]format.Format, 13)
	for i := range dims {
		dims[i] = 4000
	}
	for i := range fs {
		fs[i] = format.NewTile(1000)
	}
	g := chainGraph(t, dims, fs)
	if _, err := Brute(g, testEnv(10), time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestGreedyAllTile(t *testing.T) {
	g := chainGraph(t, []int64{10000, 30000, 50000, 10000},
		[]format.Format{format.NewTile(1000), format.NewTile(1000), format.NewTile(1000)})
	env := testEnv(10)
	want := map[int]format.Format{}
	for _, v := range g.Vertices {
		if !v.IsSource {
			want[v.ID] = format.NewTile(1000)
		}
	}
	greedy, err := GreedyAnnotate(g, env, want)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Verify(env); err != nil {
		t.Fatal(err)
	}
	auto, err := Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Total() > greedy.Total()+1e-9 {
		t.Fatalf("optimal %.3f worse than all-tile greedy %.3f", auto.Total(), greedy.Total())
	}
}

func TestOptimalNeverWorseThanGreedyAcrossShapes(t *testing.T) {
	// A property sweep: over assorted chain dimensions, the optimizer
	// must never be worse than the local greedy annotation.
	cases := [][]int64{
		{100, 10000, 100},
		{10000, 100, 10000},
		{50000, 1, 100000},
		{1, 100000, 30000},
		{30000, 30000, 30000},
		{2500, 7300, 991, 12345},
	}
	for _, dims := range cases {
		fs := make([]format.Format, len(dims)-1)
		for i := range fs {
			fs[i] = format.NewTile(1000)
			s := shape.New(dims[i], dims[i+1])
			if !fs[i].Valid(s, 1, costmodel.EC2R5D(10).MaxTupleBytes) {
				fs[i] = format.NewSingle()
			}
		}
		g := chainGraph(t, dims, fs)
		env := testEnv(10)
		auto, err := Optimize(g, env)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		greedy, err := GreedyAnnotate(g, env, nil)
		if err != nil {
			t.Fatalf("dims %v greedy: %v", dims, err)
		}
		if auto.Total() > greedy.Total()+1e-9 {
			t.Errorf("dims %v: optimal %.4f > greedy %.4f", dims, auto.Total(), greedy.Total())
		}
		if err := auto.Verify(env); err != nil {
			t.Errorf("dims %v: %v", dims, err)
		}
	}
}

// The §2.1 motivating example: matA(100×10⁴ row strips) × matB(10⁴×100
// col strips) × matC(100×10⁶ col strips). The optimizer should discover
// implementation 2 — collapse matAB to a single tuple and broadcast —
// and beat a forced all-tile plan by a wide margin (Figure 1: 56s vs
// 19min).
func TestMotivatingExampleChoosesBroadcastPlan(t *testing.T) {
	g := NewGraph()
	a := g.Input("matA", shape.New(100, 10000), 1, format.NewRowStrip(10))
	b := g.Input("matB", shape.New(10000, 100), 1, format.NewColStrip(10))
	c := g.Input("matC", shape.New(100, 1000000), 1, format.NewColStrip(10000))
	ab := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	abc := g.MustApply(op.Op{Kind: op.MatMul}, ab, c)
	env := testEnv(5)
	auto, err := Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := auto.Verify(env); err != nil {
		t.Fatal(err)
	}
	// The final multiply must be a broadcast of the small single-tuple
	// matAB against matC's column strips.
	if got := auto.VertexFormat[ab.ID]; got.Kind != format.Single {
		t.Errorf("matAB format = %v, want single (broadcastable)", got)
	}
	if got := auto.VertexImpl[abc.ID].Name; got != "mm-bcast-single-colstrip" {
		t.Errorf("final multiply impl = %v, want mm-bcast-single-colstrip", got)
	}
	// Forced all-tile plan for comparison: with only 100 rows, the
	// largest valid square tile for both intermediates is 100.
	want := map[int]format.Format{ab.ID: format.NewTile(100), abc.ID: format.NewTile(100)}
	tiled, err := GreedyAnnotate(g, env, want)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy still picks the best implementation per vertex, so the gap
	// here is smaller than the paper's naive-SQL all-tile baseline (that
	// one lives in internal/baseline); the ordering must still hold.
	if auto.Total() > tiled.Total()+1e-9 {
		t.Errorf("auto %.2fs not under all-tile %.2fs", auto.Total(), tiled.Total())
	}
}

func TestInfeasibleWhenOutputCannotExist(t *testing.T) {
	// ColSums of a 1×10¹⁰ row is representable, but a single×single
	// multiply yielding a 10¹⁰-element single... instead: restrict the
	// universe to Single only and demand a matmul whose output exceeds
	// the tuple bound — no annotation exists.
	g := chainGraph(t, []int64{100000, 100, 100000}, []format.Format{format.NewSingle(), format.NewSingle()})
	env := NewEnv(costmodel.EC2R5D(5), []format.Format{format.NewSingle()})
	if _, err := TreeDP(g, env); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestAnnotationDescribe(t *testing.T) {
	g := smallDAG(t)
	env := testEnv(5)
	ann, err := Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	d := ann.Describe()
	if len(d) == 0 || d[:5] != "plan:" {
		t.Errorf("Describe output malformed: %q", d)
	}
}

func TestOptimizeDispatch(t *testing.T) {
	tree := chainGraph(t, []int64{1000, 1000, 1000}, []format.Format{format.NewSingle(), format.NewSingle()})
	if _, err := Optimize(tree, testEnv(5)); err != nil {
		t.Fatal(err)
	}
	dag := smallDAG(t)
	if _, err := Optimize(dag, testEnv(5)); err != nil {
		t.Fatal(err)
	}
}

// Sharing must be paid for once: computing T1 and using it twice must be
// cheaper than a graph where the shared subtree is duplicated.
func TestFrontierSharesSubcomputations(t *testing.T) {
	env := testEnv(5)
	build := func(shared bool) *Graph {
		g := NewGraph()
		a := g.Input("a", shape.New(4000, 4000), 1, format.NewTile(1000))
		b := g.Input("b", shape.New(4000, 4000), 1, format.NewTile(1000))
		t1 := g.MustApply(op.Op{Kind: op.MatMul}, a, b)
		t1b := t1
		if !shared {
			t1b = g.MustApply(op.Op{Kind: op.MatMul}, a, b)
		}
		g.MustApply(op.Op{Kind: op.Add}, t1, t1b)
		return g
	}
	sharedAnn, err := Optimize(build(true), env)
	if err != nil {
		t.Fatal(err)
	}
	dupAnn, err := Optimize(build(false), env)
	if err != nil {
		t.Fatal(err)
	}
	if sharedAnn.Total() >= dupAnn.Total() {
		t.Errorf("shared plan %.4f not cheaper than duplicated %.4f", sharedAnn.Total(), dupAnn.Total())
	}
}
