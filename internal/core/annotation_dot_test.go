package core

import (
	"strings"
	"testing"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

func TestDOTExport(t *testing.T) {
	g := NewGraph()
	a := g.Input("a", shape.New(100, 10000), 1, format.NewRowStrip(10))
	b := g.Input("b", shape.New(10000, 100), 1, format.NewColStrip(10))
	g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	env := NewEnv(costmodel.EC2R5D(5), format.All())
	ann, err := Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	dot := ann.DOT()
	for _, want := range []string{"digraph annotated", "v0 -> v2", "v1 -> v2", "matmul", "fillcolor=lightgray"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Non-identity edge transformations must be labeled.
	if !strings.Contains(dot, "label=\"to-") {
		t.Errorf("expected a transformation label on some edge:\n%s", dot)
	}
}
