package core

import (
	"fmt"
	"time"

	"matopt/internal/format"
	"matopt/internal/trans"
)

// GreedyAnnotate builds a type-correct annotation from a per-vertex
// format policy without global optimization: each vertex in topological
// order is bound to the cheapest (implementation, transformations)
// combination that produces the format requested by want, given the
// formats its inputs already have. Vertices absent from want take the
// locally cheapest output format. This is how the baseline plans (the
// hand-written experts, the all-tile heuristic, and the SystemDS-style
// local optimizer) are expressed; a vertex with no feasible combination
// makes the whole plan Fail, reproducing the paper's crashed baselines.
func GreedyAnnotate(g *Graph, env *Env, want map[int]format.Format) (*Annotation, error) {
	start := time.Now()
	cache := make(transCache)
	ann := newAnnotation(g)
	for _, v := range g.Vertices {
		if v.IsSource {
			ann.VertexFormat[v.ID] = v.SrcFormat
			continue
		}
		type choice struct {
			cost     float64
			im       int
			outF     format.Format
			trs      []*trans.Transform
			trCosts  []float64
			implCost float64
		}
		var best *choice
		pouts := make([]format.Format, len(v.Ins))
		trs := make([]*trans.Transform, len(v.Ins))
		trCosts := make([]float64, len(v.Ins))
		target, constrained := want[v.ID]
		var args func(j int, trCost float64)
		args = func(j int, trCost float64) {
			if j == len(v.Ins) {
				for ii, im := range env.Impls[v.Op.Kind] {
					outF, implCost, ok := env.applyImpl(v, im, pouts)
					if !ok {
						continue
					}
					if constrained && outF != target {
						continue
					}
					total := trCost + implCost
					if best == nil || total < best.cost {
						best = &choice{
							cost:     total,
							im:       ii,
							outF:     outF,
							trs:      append([]*trans.Transform(nil), trs...),
							trCosts:  append([]float64(nil), trCosts...),
							implCost: implCost,
						}
					}
				}
				return
			}
			in := v.Ins[j]
			for _, to := range env.transOptions(cache, in, ann.VertexFormat[in.ID]) {
				pouts[j] = to.pout
				trs[j] = to.tr
				trCosts[j] = to.cost
				args(j+1, trCost+to.cost)
			}
		}
		args(0, 0)
		if best == nil {
			return nil, fmt.Errorf("%w: vertex %d (%v) has no feasible plan for target %v",
				ErrInfeasible, v.ID, v.Op, formatOrAny(target, constrained))
		}
		ann.VertexImpl[v.ID] = env.Impls[v.Op.Kind][best.im]
		ann.VertexFormat[v.ID] = best.outF
		ann.VertexCost[v.ID] = best.implCost
		for j := range v.Ins {
			ek := EdgeKey{To: v.ID, Arg: j}
			ann.EdgeTrans[ek] = best.trs[j]
			ann.EdgeCost[ek] = best.trCosts[j]
		}
	}
	ann.OptSeconds = time.Since(start).Seconds()
	return ann, nil
}

func formatOrAny(f format.Format, constrained bool) string {
	if !constrained {
		return "any"
	}
	return f.String()
}
