package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"matopt/internal/obs"
)

// ErrInternal reports an inconsistency inside the optimizer itself — a
// recorded back-pointer that no longer applies, a frontier invariant
// violated, or an interning overflow. It indicates a bug in the search,
// not in the caller's computation, and replaces the panics earlier
// versions raised on these paths.
var ErrInternal = errors.New("core: internal optimizer inconsistency")

// internalf wraps ErrInternal with a formatted detail message.
func internalf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInternal}, args...)...)
}

// Stats is the per-run instrumentation a Session collects: how much of
// the search space each algorithm actually touched, and how long the run
// took. Counters cover whichever algorithm the session ran.
type Stats struct {
	// ClassesExpanded counts frontier equivalence classes built (one per
	// non-source vertex in Frontier) or DP tables built (TreeDP).
	ClassesExpanded int
	// EntriesPruned counts cost-table entries dropped by the beam limit
	// (Env.MaxClassEntries); 0 means the search was exact.
	EntriesPruned int
	// CandidatesEvaluated counts (implementation × delivered-format)
	// combinations evaluated through the cost model.
	CandidatesEvaluated int64
	// WallSeconds is the wall time of the last algorithm run.
	WallSeconds float64
}

// Session is one optimization run's execution context: the cancellation
// context its algorithms poll, the environment they search over, the
// degree of parallelism the Frontier DP may use, and the instrumentation
// the run fills in. A Session is not safe for concurrent use; create one
// per Optimize call.
type Session struct {
	ctx         context.Context
	env         *Env
	parallelism int
	stats       Stats
	tr          *obs.Tracer
	span        *obs.Span
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithParallelism bounds the Frontier worker pool to n goroutines; n ≤ 1
// forces the serial path. The default is runtime.GOMAXPROCS(0). Parallel
// and serial runs produce byte-identical plans, so this only trades CPU
// for latency.
func WithParallelism(n int) SessionOption {
	return func(s *Session) { s.parallelism = n }
}

// WithTracer attaches an obs tracer to the session: each algorithm run
// opens a span ("frontier", "treedp", "brute.enumerate") under parent,
// and the Frontier DP adds one "frontier.round" child per vertex
// expansion. A nil tracer (the default) keeps tracing disabled with no
// overhead; see DESIGN.md §11 for the span taxonomy.
func WithTracer(t *obs.Tracer, parent *obs.Span) SessionOption {
	return func(s *Session) { s.tr, s.span = t, parent }
}

// NewSession returns a session that optimizes under ctx: algorithms poll
// the context and abort with ErrTimeout (deadline) or the context's own
// error (cancellation) mid-search. A nil ctx means context.Background().
func NewSession(ctx context.Context, env *Env, opts ...SessionOption) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{ctx: ctx, env: env, parallelism: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(s)
	}
	if s.parallelism < 1 {
		s.parallelism = 1
	}
	return s
}

// Stats returns the instrumentation of the session's last run.
func (s *Session) Stats() Stats { return s.stats }

// Env returns the session's optimization environment.
func (s *Session) Env() *Env { return s.env }

// ctxErr translates the session context's state into the optimizer's
// error vocabulary: an expired deadline becomes ErrTimeout (which also
// still matches context.DeadlineExceeded via errors.Is), an explicit
// cancellation surfaces as context.Canceled, and nil means keep going.
func (s *Session) ctxErr() error {
	err := s.ctx.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

// Optimize computes the optimal annotation of g under the session,
// dispatching to the linear-time tree DP on tree-shaped graphs and to
// the Frontier algorithm otherwise, exactly as the paper's prototype
// does (§8.2 notes the FFNN graph is not a tree, so the frontier
// algorithm is used).
func (s *Session) Optimize(g *Graph) (*Annotation, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.IsTree() {
		return s.TreeDP(g)
	}
	return s.Frontier(g)
}

// finish stamps the run's wall time into the stats and the annotation.
func (s *Session) finish(ann *Annotation, start time.Time) {
	s.stats.WallSeconds = time.Since(start).Seconds()
	if ann != nil {
		ann.OptSeconds = s.stats.WallSeconds
	}
}
