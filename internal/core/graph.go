// Package core implements the paper's primary contribution: compute
// graphs over abstract matrices (§4), type-correct annotations that bind
// an atomic computation implementation to every vertex and a physical
// matrix transformation to every edge, and the three optimization
// algorithms — exhaustive Brute (Alg. 2), the Felsenstein-style dynamic
// program for tree-shaped graphs (Alg. 3), and the Frontier dynamic
// program for general DAGs (Alg. 4).
//
// Searches run inside a Session, which threads a context.Context
// through all three algorithms (deadline → ErrTimeout, cancellation →
// context.Canceled), bounds the Frontier's candidate evaluation to a
// worker pool (WithParallelism; parallel and serial searches return
// byte-identical plans), collects per-run Stats, and — when a tracer is
// attached with WithTracer — wraps each phase in obs spans ("frontier"
// with one "frontier.round" per expanded vertex, "treedp",
// "brute.enumerate"; DESIGN.md §11).
package core

import (
	"errors"
	"fmt"

	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// Vertex is one node of a compute graph. Source vertices carry an input
// matrix (shape, density and a given physical format); non-source
// vertices carry an atomic computation whose shape and density are
// inferred from their inputs.
type Vertex struct {
	ID   int
	Name string

	// Source fields.
	IsSource  bool
	SrcFormat format.Format // physical format of an input matrix

	// Non-source fields.
	Op  op.Op
	Ins []*Vertex // ordered arguments

	// Inferred by the builder.
	Shape   shape.Shape
	Density float64
	Outs    []*Vertex // consumers (a consumer appears once per edge)
}

func (v *Vertex) String() string {
	if v.IsSource {
		return fmt.Sprintf("%s:%v@%v", v.Name, v.Shape, v.SrcFormat)
	}
	return fmt.Sprintf("v%d:%v→%v", v.ID, v.Op, v.Shape)
}

// Graph is a compute DAG. Vertices are stored in construction order,
// which is a valid topological order because arguments must exist before
// they are used.
type Graph struct {
	Vertices []*Vertex
	byName   map[string]*Vertex
}

// NewGraph returns an empty compute graph.
func NewGraph() *Graph {
	return &Graph{byName: make(map[string]*Vertex)}
}

// AddInput adds a source vertex: an input matrix with the given shape,
// density (non-zero fraction in [0, 1]) and physical format. It returns
// an error for an out-of-range density or a duplicate name.
func (g *Graph) AddInput(name string, s shape.Shape, density float64, f format.Format) (*Vertex, error) {
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("core: density %v outside [0,1]", density)
	}
	if _, dup := g.byName[name]; dup {
		return nil, fmt.Errorf("core: duplicate input name %q", name)
	}
	v := &Vertex{
		ID:        len(g.Vertices),
		Name:      name,
		IsSource:  true,
		SrcFormat: f,
		Shape:     s,
		Density:   density,
	}
	g.Vertices = append(g.Vertices, v)
	g.byName[name] = v
	return v, nil
}

// Input is AddInput for statically known-correct graph builders (the
// workload generators); it panics on the errors AddInput reports.
func (g *Graph) Input(name string, s shape.Shape, density float64, f format.Format) *Vertex {
	v, err := g.AddInput(name, s, density, f)
	if err != nil {
		panic(err)
	}
	return v
}

// Apply adds a non-source vertex computing o over the given arguments,
// inferring its shape and density. It returns an error for arity or
// shape mismatches (the op's type function returned ⊥).
func (g *Graph) Apply(o op.Op, ins ...*Vertex) (*Vertex, error) {
	if len(ins) != o.Arity() {
		return nil, fmt.Errorf("core: %v takes %d inputs, got %d", o, o.Arity(), len(ins))
	}
	shapes := make([]shape.Shape, len(ins))
	dens := make([]float64, len(ins))
	for i, in := range ins {
		if in == nil {
			return nil, errors.New("core: nil input vertex")
		}
		shapes[i] = in.Shape
		dens[i] = in.Density
	}
	outShape, ok := o.OutShape(shapes)
	if !ok {
		return nil, fmt.Errorf("core: %v rejects input shapes %v", o, shapes)
	}
	v := &Vertex{
		ID:      len(g.Vertices),
		Op:      o,
		Ins:     append([]*Vertex(nil), ins...),
		Shape:   outShape,
		Density: o.OutDensity(shapes, dens),
	}
	g.Vertices = append(g.Vertices, v)
	for _, in := range ins {
		in.Outs = append(in.Outs, v)
	}
	return v, nil
}

// MustApply is Apply for statically known-correct graph builders.
func (g *Graph) MustApply(o op.Op, ins ...*Vertex) *Vertex {
	v, err := g.Apply(o, ins...)
	if err != nil {
		panic(err)
	}
	return v
}

// ByName returns the input vertex with the given name, or nil.
func (g *Graph) ByName(name string) *Vertex { return g.byName[name] }

// Sources returns the source vertices.
func (g *Graph) Sources() []*Vertex {
	var out []*Vertex
	for _, v := range g.Vertices {
		if v.IsSource {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns the vertices with no consumers.
func (g *Graph) Sinks() []*Vertex {
	var out []*Vertex
	for _, v := range g.Vertices {
		if len(v.Outs) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// IsTree reports whether the graph is tree-shaped in the paper's sense:
// every vertex has at most one out-edge, so no sub-computation is shared.
func (g *Graph) IsTree() bool {
	for _, v := range g.Vertices {
		if len(v.Outs) > 1 {
			return false
		}
	}
	return true
}

// NumOps returns the number of non-source vertices.
func (g *Graph) NumOps() int {
	n := 0
	for _, v := range g.Vertices {
		if !v.IsSource {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: edge symmetry and that vertex
// IDs index the vertex slice (construction order ⇒ topological order).
func (g *Graph) Validate() error {
	for i, v := range g.Vertices {
		if v.ID != i {
			return fmt.Errorf("core: vertex %d has ID %d", i, v.ID)
		}
		for _, in := range v.Ins {
			if in.ID >= v.ID {
				return fmt.Errorf("core: vertex %d consumes later vertex %d", v.ID, in.ID)
			}
			found := 0
			for _, o := range in.Outs {
				if o == v {
					found++
				}
			}
			uses := 0
			for _, x := range v.Ins {
				if x == in {
					uses++
				}
			}
			if found != uses {
				return fmt.Errorf("core: edge bookkeeping broken between %d and %d", in.ID, v.ID)
			}
		}
	}
	return nil
}
