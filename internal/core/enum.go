package core

import (
	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/trans"
)

// transOption is one feasible way to re-layout a vertex's output from a
// given physical format: the transformation, the format it produces, and
// its predicted cost.
type transOption struct {
	tr   *trans.Transform
	pout format.Format
	cost float64
}

// transOptions enumerates the feasible transformations of v's matrix out
// of format pin, including the free identity. Results are memoized per
// (vertex, pin) in the cache owned by the calling optimizer run.
type transCache map[transCacheKey][]transOption

type transCacheKey struct {
	vertex int
	pin    format.Format
}

func (env *Env) transOptions(cache transCache, v *Vertex, pin format.Format) []transOption {
	key := transCacheKey{vertex: v.ID, pin: pin}
	if opts, ok := cache[key]; ok {
		return opts
	}
	opts := []transOption{{tr: trans.IdentityTransform, pout: pin}}
	for _, tr := range env.Transforms {
		if tr.Identity() {
			continue
		}
		out, ok := tr.Apply(v.Shape, v.Density, pin, env.Cluster)
		if !ok {
			continue
		}
		opts = append(opts, transOption{tr: tr, pout: out.Format, cost: tr.Cost(env.Model, out)})
	}
	cache[key] = opts
	return opts
}

// applyImpl evaluates implementation im on vertex v with the given
// (already transformed) input formats. It returns the output format and
// the implementation's predicted cost; ok is false when the
// implementation is ⊥ on these inputs or its output format falls outside
// the environment's format universe.
func (env *Env) applyImpl(v *Vertex, im *impl.Impl, pouts []format.Format) (format.Format, float64, bool) {
	ins := make([]impl.Input, len(v.Ins))
	for j, in := range v.Ins {
		ins[j] = impl.Input{Shape: in.Shape, Density: in.Density, Format: pouts[j]}
	}
	out, ok := im.Apply(v.Op, ins, v.Shape, v.Density, env.Cluster)
	if !ok {
		return format.Format{}, 0, false
	}
	if !env.HasFormat(out.Format) {
		return format.Format{}, 0, false
	}
	return out.Format, im.Cost(env.Model, out), true
}
