package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// randomDAG generates a small random compute DAG over square matrices:
// a few inputs, then ops drawn over random existing vertices, with
// sharing arising naturally from re-use. Square shapes keep every
// binary op type-correct so the generator never dead-ends.
func randomDAG(rng *rand.Rand, nInputs, nOps int) *Graph {
	g := NewGraph()
	const n = 3000
	s := shape.New(n, n)
	srcFormats := []format.Format{
		format.NewSingle(), format.NewTile(1000), format.NewRowStrip(1000), format.NewColStrip(1000),
	}
	for i := 0; i < nInputs; i++ {
		g.Input(string(rune('A'+i)), s, 1, srcFormats[rng.Intn(len(srcFormats))])
	}
	kinds := []op.Kind{op.MatMul, op.Add, op.Sub, op.Hadamard, op.Transpose, op.ReLU, op.ScalarMul, op.Neg}
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		o := op.Op{Kind: k}
		if k == op.ScalarMul {
			o.Scalar = rng.Float64()*4 - 2
		}
		pick := func() *Vertex { return g.Vertices[rng.Intn(len(g.Vertices))] }
		var err error
		if o.Arity() == 2 {
			_, err = g.Apply(o, pick(), pick())
		} else {
			_, err = g.Apply(o, pick())
		}
		if err != nil {
			panic(err) // square shapes make every op well-typed
		}
	}
	return g
}

// TestFrontierMatchesBruteOnRandomDAGs is the core exactness property:
// on every random DAG small enough to search exhaustively, the Frontier
// dynamic program must find a plan with exactly the brute-force optimum's
// cost, and that plan must be type-correct.
func TestFrontierMatchesBruteOnRandomDAGs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search cross-check")
	}
	// A small format universe keeps the brute force tractable.
	universe := []format.Format{format.NewSingle(), format.NewTile(1000), format.NewRowStrip(1000), format.NewColStrip(1000)}
	env := NewEnv(costmodel.EC2R5D(4), universe)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(2), 3+rng.Intn(2))
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fr, frErr := Frontier(g, env)
		br, brErr := Brute(g, env, 2*time.Minute)
		if (frErr == nil) != (brErr == nil) {
			t.Fatalf("seed %d: feasibility disagreement: frontier=%v brute=%v", seed, frErr, brErr)
		}
		if frErr != nil {
			continue
		}
		if d := math.Abs(fr.Total() - br.Total()); d > 1e-9*math.Max(1, br.Total()) {
			t.Errorf("seed %d: Frontier %.9f vs Brute %.9f\n%s\n--- brute ---\n%s",
				seed, fr.Total(), br.Total(), fr.Describe(), br.Describe())
		}
		if err := fr.Verify(env); err != nil {
			t.Errorf("seed %d: frontier annotation invalid: %v", seed, err)
		}
	}
}

// TestTreeDPMatchesBruteOnRandomChains checks the tree algorithm the
// same way on random-format chains.
func TestTreeDPMatchesBruteOnRandomChains(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search cross-check")
	}
	universe := []format.Format{format.NewSingle(), format.NewTile(1000), format.NewRowStrip(1000), format.NewColStrip(1000)}
	env := NewEnv(costmodel.EC2R5D(4), universe)
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		g := NewGraph()
		s := shape.New(3000, 3000)
		cur := g.Input("a", s, 1, universe[rng.Intn(len(universe))])
		nOps := 2 + rng.Intn(3)
		for i := 0; i < nOps; i++ {
			if rng.Intn(2) == 0 {
				nxt := g.Input(string(rune('b'+i)), s, 1, universe[rng.Intn(len(universe))])
				cur = g.MustApply(op.Op{Kind: op.MatMul}, cur, nxt)
			} else {
				cur = g.MustApply(op.Op{Kind: op.ReLU}, cur)
			}
		}
		dp, dpErr := TreeDP(g, env)
		br, brErr := Brute(g, env, 2*time.Minute)
		if (dpErr == nil) != (brErr == nil) {
			t.Fatalf("seed %d: feasibility disagreement: dp=%v brute=%v", seed, dpErr, brErr)
		}
		if dpErr != nil {
			continue
		}
		if d := math.Abs(dp.Total() - br.Total()); d > 1e-9*math.Max(1, br.Total()) {
			t.Errorf("seed %d: TreeDP %.9f vs Brute %.9f", seed, dp.Total(), br.Total())
		}
	}
}

// TestFrontierVerifyOnRandomDAGs runs larger random DAGs (beyond brute's
// reach) through the frontier algorithm and checks type-correctness and
// the greedy upper bound.
func TestFrontierVerifyOnRandomDAGs(t *testing.T) {
	env := NewEnv(costmodel.EC2R5D(8), format.All())
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		g := randomDAG(rng, 3, 8)
		fr, err := Frontier(g, env)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := fr.Verify(env); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		greedy, err := GreedyAnnotate(g, env, nil)
		if err != nil {
			t.Fatalf("seed %d greedy: %v", seed, err)
		}
		if fr.Total() > greedy.Total()+1e-9 {
			t.Errorf("seed %d: frontier %.4f worse than greedy %.4f", seed, fr.Total(), greedy.Total())
		}
	}
}
