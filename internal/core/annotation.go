package core

import (
	"fmt"
	"sort"
	"strings"

	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/trans"
)

// EdgeKey identifies an input edge of a vertex by (consumer, argument
// position); argument position rather than producer ID because the same
// producer may feed several arguments.
type EdgeKey struct {
	To  int
	Arg int
}

// Annotation is an annotated compute graph G′ (§4.2): an atomic
// computation implementation per non-source vertex, a physical matrix
// transformation per edge, and the induced physical format per vertex.
type Annotation struct {
	Graph        *Graph
	VertexImpl   map[int]*impl.Impl
	VertexFormat map[int]format.Format
	EdgeTrans    map[EdgeKey]*trans.Transform
	VertexCost   map[int]float64
	EdgeCost     map[EdgeKey]float64
	// OptSeconds is the wall time the optimizer itself spent.
	OptSeconds float64
}

func newAnnotation(g *Graph) *Annotation {
	return &Annotation{
		Graph:        g,
		VertexImpl:   make(map[int]*impl.Impl),
		VertexFormat: make(map[int]format.Format),
		EdgeTrans:    make(map[EdgeKey]*trans.Transform),
		VertexCost:   make(map[int]float64),
		EdgeCost:     make(map[EdgeKey]float64),
	}
}

// Total returns Cost(G′) = Σ_v v.c + Σ_e e.c. Terms are summed in
// topological vertex/edge order, not map order, so the result is
// bit-identical across runs of the same plan (the parallel-vs-serial
// determinism tests compare totals exactly).
func (a *Annotation) Total() float64 {
	var t float64
	for _, v := range a.Graph.Vertices {
		t += a.VertexCost[v.ID]
		for j := range v.Ins {
			t += a.EdgeCost[EdgeKey{To: v.ID, Arg: j}]
		}
	}
	return t
}

// Verify re-derives every vertex's physical format from the annotation
// and checks type-correctness (§4.2): each implementation must implement
// the vertex's atomic computation and accept its (transformed) input
// formats, and the derived formats must match the recorded ones.
func (a *Annotation) Verify(env *Env) error {
	for _, v := range a.Graph.Vertices {
		if v.IsSource {
			if a.VertexFormat[v.ID] != v.SrcFormat {
				return fmt.Errorf("source %s: annotated format %v differs from given %v",
					v.Name, a.VertexFormat[v.ID], v.SrcFormat)
			}
			continue
		}
		im := a.VertexImpl[v.ID]
		if im == nil {
			return fmt.Errorf("vertex %d: no implementation", v.ID)
		}
		if im.Op != v.Op.Kind {
			return fmt.Errorf("vertex %d: impl %s implements %v, vertex computes %v",
				v.ID, im.Name, im.Op, v.Op.Kind)
		}
		ins := make([]impl.Input, len(v.Ins))
		for j, in := range v.Ins {
			tr := a.EdgeTrans[EdgeKey{To: v.ID, Arg: j}]
			if tr == nil {
				return fmt.Errorf("vertex %d arg %d: no transformation", v.ID, j)
			}
			tout, ok := tr.Apply(in.Shape, in.Density, a.VertexFormat[in.ID], env.Cluster)
			if !ok {
				return fmt.Errorf("vertex %d arg %d: transformation %s is ⊥ on %v",
					v.ID, j, tr.Name, a.VertexFormat[in.ID])
			}
			ins[j] = impl.Input{Shape: in.Shape, Density: in.Density, Format: tout.Format}
		}
		out, ok := im.Apply(v.Op, ins, v.Shape, v.Density, env.Cluster)
		if !ok {
			return fmt.Errorf("vertex %d: impl %s is ⊥ on transformed inputs", v.ID, im.Name)
		}
		if out.Format != a.VertexFormat[v.ID] {
			return fmt.Errorf("vertex %d: derived format %v differs from annotated %v",
				v.ID, out.Format, a.VertexFormat[v.ID])
		}
	}
	return nil
}

// Describe renders the annotation as a human-readable plan listing, in
// topological order.
func (a *Annotation) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d vertices, predicted %.2fs\n", len(a.Graph.Vertices), a.Total())
	for _, v := range a.Graph.Vertices {
		if v.IsSource {
			fmt.Fprintf(&b, "  in   %-12s %v @ %v\n", v.Name, v.Shape, a.VertexFormat[v.ID])
			continue
		}
		var args []string
		for j, in := range v.Ins {
			tr := a.EdgeTrans[EdgeKey{To: v.ID, Arg: j}]
			arg := fmt.Sprintf("v%d", in.ID)
			if tr != nil && !tr.Identity() {
				arg += fmt.Sprintf("▷%v", tr.Target())
			}
			args = append(args, arg)
		}
		im := "?"
		if a.VertexImpl[v.ID] != nil {
			im = a.VertexImpl[v.ID].Name
		}
		fmt.Fprintf(&b, "  v%-3d %-10s %-28s (%s) → %v [%.3fs]\n",
			v.ID, v.Op.String(), im, strings.Join(args, ", "),
			a.VertexFormat[v.ID], a.VertexCost[v.ID])
	}
	var edges []EdgeKey
	for e, c := range a.EdgeCost {
		if c > 0 {
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Arg < edges[j].Arg
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  edge →v%d#%d %-20s [%.3fs]\n", e.To, e.Arg, a.EdgeTrans[e].Name, a.EdgeCost[e])
	}
	return b.String()
}
