package core

import (
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/impl"
	"matopt/internal/op"
	"matopt/internal/trans"
)

// Env is the optimization environment: the cluster profile, the cost
// model, and the universes of physical formats, transformations and
// implementations the optimizer may use. Restricting Formats (as in the
// §8.4 experiments) automatically restricts the transformations and the
// reachable implementations.
type Env struct {
	Cluster    costmodel.Cluster
	Model      *costmodel.Model
	Formats    []format.Format
	Transforms []*trans.Transform
	Impls      map[op.Kind][]*impl.Impl
	// MaxClassEntries bounds the joint cost table of one frontier
	// equivalence class. The paper's Algorithm 4 is exact but its
	// tables are Θ(|P|^c) for class size c; graphs with pathological
	// sharing (the two-level block inverse) can make c large. When a
	// table exceeds the bound, only the cheapest entries are kept — a
	// beam search over formats. 0 means the default (20,000); the
	// exactness tests against Brute stay far below any bound.
	MaxClassEntries int
}

// NewEnv returns an environment over the given format universe with every
// registered implementation available and the analytic default cost model.
func NewEnv(cl costmodel.Cluster, formats []format.Format) *Env {
	e := &Env{
		Cluster:    cl,
		Model:      costmodel.NewModel(cl),
		Formats:    formats,
		Transforms: trans.ForFormats(formats),
		Impls:      make(map[op.Kind][]*impl.Impl),
	}
	for _, k := range op.Kinds() {
		e.Impls[k] = impl.ForOp(k)
	}
	return e
}

// DisableSparse removes the sparse formats and the implementations that
// require them, reproducing the Figure 12 "no sparsity" configuration.
func (e *Env) DisableSparse() *Env {
	var dense []format.Format
	for _, f := range e.Formats {
		if !f.IsSparse() {
			dense = append(dense, f)
		}
	}
	e.Formats = dense
	e.Transforms = trans.ForFormats(dense)
	return e
}

// HasFormat reports whether f is in the environment's format universe.
func (e *Env) HasFormat(f format.Format) bool {
	for _, g := range e.Formats {
		if g == f {
			return true
		}
	}
	return false
}
