package core

import (
	"math"
	"strings"
	"testing"

	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

func TestPlanRoundTrip(t *testing.T) {
	g := smallDAG(t)
	env := testEnv(5)
	ann, err := Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(ann)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"impl\"") {
		t.Fatalf("encoded plan lacks implementations:\n%s", data)
	}
	got, err := DecodePlan(g, env, data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Total()-ann.Total()) > 1e-9 {
		t.Fatalf("round trip cost %v, want %v", got.Total(), ann.Total())
	}
	for id, im := range ann.VertexImpl {
		if got.VertexImpl[id] != im {
			t.Errorf("vertex %d: impl %v, want %v", id, got.VertexImpl[id], im)
		}
	}
	for id, f := range ann.VertexFormat {
		if got.VertexFormat[id] != f {
			t.Errorf("vertex %d: format %v, want %v", id, got.VertexFormat[id], f)
		}
	}
}

func TestDecodePlanRejectsWrongGraph(t *testing.T) {
	g := smallDAG(t)
	env := testEnv(5)
	ann, err := Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(ann)
	if err != nil {
		t.Fatal(err)
	}
	other := NewGraph()
	other.Input("x", shape.New(10, 10), 1, format.NewSingle())
	if _, err := DecodePlan(other, env, data); err == nil {
		t.Error("plan decoded against a mismatched graph")
	}
	if _, err := DecodePlan(g, env, []byte("not json")); err == nil {
		t.Error("garbage decoded")
	}
	// Tampered implementation name must be rejected.
	bad := strings.Replace(string(data), "mm-", "zz-", 1)
	if _, err := DecodePlan(g, env, []byte(bad)); err == nil {
		t.Error("unknown implementation accepted")
	}
}

func TestDecodePlanRejectsInfeasibleCluster(t *testing.T) {
	// Encode a plan on a big cluster, decode against one whose tuple
	// bound the plan violates.
	g := NewGraph()
	a := g.Input("a", shape.New(5000, 5000), 1, format.NewSingle())
	b := g.Input("b", shape.New(5000, 5000), 1, format.NewSingle())
	g.MustApply(op.Op{Kind: op.MatMul}, a, b)
	env := testEnv(5)
	ann, err := Optimize(g, env)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodePlan(ann)
	if err != nil {
		t.Fatal(err)
	}
	tiny := NewEnv(costmodel.EC2R5D(5), format.All())
	tiny.Cluster.MaxTupleBytes = 1 << 20 // 1 MB: 200 MB singles no longer fit
	if _, err := DecodePlan(g, tiny, data); err == nil {
		t.Error("infeasible plan decoded without error")
	}
}

func TestFormatParse(t *testing.T) {
	for _, f := range format.All() {
		got, err := format.Parse(f.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", f.String(), err)
			continue
		}
		if got != f {
			t.Errorf("Parse(%q) = %v", f.String(), got)
		}
	}
	for _, bad := range []string{"", "tile", "tile[]", "tile[0]", "tile[-3]", "single[5]", "wat[9]", "tile[9"} {
		if _, err := format.Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
