// Package testutil holds helpers shared by the repository's test
// suites: the goroutine-leak checker the dist runtime and the serving
// layer both gate their concurrency tests with.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// leakSlack is how many extra goroutines CheckGoroutines tolerates:
// the runtime occasionally keeps a reaped-but-unparked goroutine or a
// test-framework helper alive for a moment.
const leakSlack = 2

// Baseline snapshots the current goroutine count for a later
// WaitForGoroutines — for tests whose setup/teardown does not fit the
// CheckGoroutines closure shape.
func Baseline() int { return runtime.NumGoroutine() }

// CheckGoroutines runs fn and then requires the process goroutine count
// to return to its starting level (within a small slack): a run that
// failed, recovered, timed out, was cancelled, or was drained must not
// leave workers, collectors, producers, or drainers behind. The wait is
// bounded; on timeout the test fails with a full stack dump of every
// live goroutine.
func CheckGoroutines(t testing.TB, fn func()) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	fn()
	WaitForGoroutines(t, baseline, 15*time.Second)
}

// WaitForGoroutines polls until the process goroutine count drops back
// to baseline (within the checker's slack) or the deadline passes, in
// which case it fails the test with a stack dump.
func WaitForGoroutines(t testing.TB, baseline int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if runtime.NumGoroutine() <= baseline+leakSlack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
