package workload

import (
	"fmt"

	"matopt/internal/core"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// MotivatingChain builds the §2.1 example: matA (100×10⁴, ten row
// strips) × matB (10⁴×100, ten column strips) × matC (100×10⁶, one
// hundred column strips).
func MotivatingChain() (*core.Graph, error) {
	g := core.NewGraph()
	a := g.Input("matA", shape.New(100, 10000), 1, format.NewRowStrip(10))
	b := g.Input("matB", shape.New(10000, 100), 1, format.NewColStrip(10))
	c := g.Input("matC", shape.New(100, 1000000), 1, format.NewColStrip(10000))
	ab, err := g.Apply(op.Op{Kind: op.MatMul}, a, b)
	if err != nil {
		return nil, err
	}
	if _, err := g.Apply(op.Op{Kind: op.MatMul}, ab, c); err != nil {
		return nil, err
	}
	return g, g.Validate()
}

// ChainSizes is one row of Figure 4: the shapes of the six chain inputs.
type ChainSizes struct {
	Name             string
	A, B, C, D, E, F shape.Shape
}

// ChainSizeSets returns the three size combinations of Figure 4.
func ChainSizeSets() []ChainSizes {
	k := int64(1000)
	return []ChainSizes{
		{
			Name: "Size Set 1",
			A:    shape.New(10*k, 30*k), B: shape.New(30*k, 50*k),
			C: shape.New(50*k, 1), D: shape.New(1, 50*k),
			E: shape.New(50*k, 10*k), F: shape.New(50*k, 10*k),
		},
		{
			Name: "Size Set 2",
			A:    shape.New(50*k, 1), B: shape.New(1, 100*k),
			C: shape.New(100*k, 30*k), D: shape.New(30*k, 100*k),
			E: shape.New(100*k, 50*k), F: shape.New(100*k, 30*k),
		},
		{
			Name: "Size Set 3",
			A:    shape.New(50*k, 50*k), B: shape.New(50*k, 50*k),
			C: shape.New(50*k, 50*k), D: shape.New(50*k, 50*k),
			E: shape.New(50*k, 50*k), F: shape.New(50*k, 50*k),
		},
	}
}

// defaultChainFormat picks the storage for a chain input: vectors and
// small matrices whole, everything else 1000×1000 tiles.
func defaultChainFormat(s shape.Shape) format.Format {
	single := format.NewSingle()
	if s.IsVector() || single.Valid(s, 1, 256<<20) {
		return single
	}
	return format.NewTile(1000)
}

// MatMulChain builds the §8.2 chain over the given sizes:
//
//	T1 ← A×B; T2 ← C×D; O ← ((T1×E) × (T1×T2)) × (T2×F)
//
// T1 and T2 are shared, so the graph is a DAG.
func MatMulChain(sz ChainSizes) (*core.Graph, error) {
	g := core.NewGraph()
	in := func(name string, s shape.Shape) *core.Vertex {
		return g.Input(name, s, 1, defaultChainFormat(s))
	}
	a, b, c, d := in("A", sz.A), in("B", sz.B), in("C", sz.C), in("D", sz.D)
	e, f := in("E", sz.E), in("F", sz.F)
	mm := op.Op{Kind: op.MatMul}
	t1, err := g.Apply(mm, a, b)
	if err != nil {
		return nil, fmt.Errorf("T1: %w", err)
	}
	t2, err := g.Apply(mm, c, d)
	if err != nil {
		return nil, fmt.Errorf("T2: %w", err)
	}
	t1e, err := g.Apply(mm, t1, e)
	if err != nil {
		return nil, fmt.Errorf("T1×E: %w", err)
	}
	t1t2, err := g.Apply(mm, t1, t2)
	if err != nil {
		return nil, fmt.Errorf("T1×T2: %w", err)
	}
	left, err := g.Apply(mm, t1e, t1t2)
	if err != nil {
		return nil, fmt.Errorf("(T1×E)×(T1×T2): %w", err)
	}
	t2f, err := g.Apply(mm, t2, f)
	if err != nil {
		return nil, fmt.Errorf("T2×F: %w", err)
	}
	if _, err := g.Apply(mm, left, t2f); err != nil {
		return nil, fmt.Errorf("O: %w", err)
	}
	return g, g.Validate()
}

// ScaleKind selects one of the §8.4 optimizer-runtime graph families.
type ScaleKind int

const (
	// ScaleTree chains T1←A×B; T2←C×D; O1←(T1×T2)×E; O2←O1×F segments,
	// each segment's O2 feeding the next segment's A; no sharing.
	ScaleTree ScaleKind = iota
	// ScaleDAG1 shares T1×T2 inside each segment and links segments
	// through A only.
	ScaleDAG1
	// ScaleDAG2 additionally links each segment's C to the previous
	// segment's O1, creating the more complicated dependency.
	ScaleDAG2
)

func (k ScaleKind) String() string {
	switch k {
	case ScaleTree:
		return "Tree"
	case ScaleDAG1:
		return "DAG1"
	case ScaleDAG2:
		return "DAG2"
	}
	return fmt.Sprintf("ScaleKind(%d)", int(k))
}

// ScaleGraph builds the Figure 13 graph of the given family at the given
// scale. All input matrices are 20,000×20,000 singles, as in §8.4.
func ScaleGraph(kind ScaleKind, scale int) (*core.Graph, error) {
	if scale < 1 {
		return nil, fmt.Errorf("workload: scale must be ≥ 1, got %d", scale)
	}
	g := core.NewGraph()
	s := shape.New(20000, 20000)
	mm := op.Op{Kind: op.MatMul}
	in := func(name string) *core.Vertex { return g.Input(name, s, 1, format.NewSingle()) }

	var prevO1, prevO2 *core.Vertex
	for seg := 0; seg < scale; seg++ {
		a := prevO2
		if a == nil {
			a = in(fmt.Sprintf("A%d", seg))
		}
		b := in(fmt.Sprintf("B%d", seg))
		var c *core.Vertex
		if kind == ScaleDAG2 && prevO1 != nil {
			c = prevO1
		} else {
			c = in(fmt.Sprintf("C%d", seg))
		}
		d := in(fmt.Sprintf("D%d", seg))
		e := in(fmt.Sprintf("E%d", seg))

		t1, err := g.Apply(mm, a, b)
		if err != nil {
			return nil, err
		}
		t2, err := g.Apply(mm, c, d)
		if err != nil {
			return nil, err
		}
		var o1, o2 *core.Vertex
		switch kind {
		case ScaleTree:
			t1t2, err := g.Apply(mm, t1, t2)
			if err != nil {
				return nil, err
			}
			if o1, err = g.Apply(mm, t1t2, e); err != nil {
				return nil, err
			}
			f := in(fmt.Sprintf("F%d", seg))
			if o2, err = g.Apply(mm, o1, f); err != nil {
				return nil, err
			}
		default: // DAG1 and DAG2 share T1×T2 between O1 and O2
			t1t2, err := g.Apply(mm, t1, t2)
			if err != nil {
				return nil, err
			}
			if o1, err = g.Apply(mm, t1t2, e); err != nil {
				return nil, err
			}
			if o2, err = g.Apply(mm, t1t2, o1); err != nil {
				return nil, err
			}
		}
		prevO1, prevO2 = o1, o2
	}
	return g, g.Validate()
}
