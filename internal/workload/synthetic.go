package workload

import (
	"math/rand"

	"matopt/internal/tensor"
)

// AmazonCat14K holds the published statistics of the AmazonCat-14K
// extreme-classification dataset used by Figures 11/12. The dataset
// itself is not redistributable here, so SyntheticAmazonCat draws inputs
// with the same dimensions and density; only those two quantities enter
// the kernels and the cost model.
const (
	AmazonCatFeatures = 597540
	AmazonCatLabels   = 14588
	// AmazonCatDensity matches the dataset's ≈100 non-zero features per
	// example.
	AmazonCatDensity = 1.7e-4
)

// SyntheticAmazonCat generates a batch×features sparse design matrix and
// a batch×labels one-hot label matrix with AmazonCat-like density. The
// caller chooses (possibly scaled-down) dimensions; density is preserved.
func SyntheticAmazonCat(rng *rand.Rand, batch, features, labels int) (x, y *tensor.Dense) {
	x = tensor.NewDense(batch, features)
	nnzPerRow := int(AmazonCatDensity * float64(features))
	if nnzPerRow < 1 {
		nnzPerRow = 1
	}
	for i := 0; i < batch; i++ {
		for k := 0; k < nnzPerRow; k++ {
			x.Set(i, rng.Intn(features), rng.Float64()+0.01)
		}
	}
	y = tensor.NewDense(batch, labels)
	for i := 0; i < batch; i++ {
		y.Set(i, rng.Intn(labels), 1)
	}
	return x, y
}

// FFNNInputs draws the dense FFNN inputs the way the paper does —
// Normal(0, 1) entries — for a (typically scaled-down) configuration.
func FFNNInputs(rng *rand.Rand, c FFNNConfig) map[string]*tensor.Dense {
	ins := map[string]*tensor.Dense{
		"X":  tensor.RandNormal(rng, int(c.Batch), int(c.Features)),
		"Y":  tensor.RandNormal(rng, int(c.Batch), int(c.Labels)),
		"W1": tensor.RandNormal(rng, int(c.Features), int(c.Hidden)),
		"B1": tensor.RandNormal(rng, 1, int(c.Hidden)),
		"W2": tensor.RandNormal(rng, int(c.Hidden), int(c.Hidden)),
		"B2": tensor.RandNormal(rng, 1, int(c.Hidden)),
		"W3": tensor.RandNormal(rng, int(c.Hidden), int(c.Labels)),
		"B3": tensor.RandNormal(rng, 1, int(c.Labels)),
	}
	if c.InputDensity < 1 {
		x, _ := SyntheticAmazonCat(rng, int(c.Batch), int(c.Features), int(c.Labels))
		ins["X"] = x
	}
	return ins
}
