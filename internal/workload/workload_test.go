package workload

import (
	"math/rand"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/tensor"
)

func env(workers int) *core.Env {
	return core.NewEnv(costmodel.EC2R5D(workers), format.All())
}

func TestMotivatingChainBuilds(t *testing.T) {
	g, err := MotivatingChain()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 2 || len(g.Sources()) != 3 {
		t.Fatalf("ops=%d sources=%d", g.NumOps(), len(g.Sources()))
	}
	if _, err := core.Optimize(g, env(5)); err != nil {
		t.Fatal(err)
	}
}

func TestFFNNThreePassHas57Vertices(t *testing.T) {
	g, err := FFNNThreePass(PaperFFNN(80000))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(g.Vertices); n != 57 {
		t.Fatalf("three-pass FFNN has %d vertices, paper reports 57", n)
	}
	if g.IsTree() {
		t.Fatal("the FFNN graph must not be a tree (shared weights/activations)")
	}
}

func TestFFNNW2UpdateOptimizes(t *testing.T) {
	for _, hidden := range []int64{10000, 40000} {
		g, err := FFNNW2Update(PaperFFNN(hidden))
		if err != nil {
			t.Fatalf("hidden %d: %v", hidden, err)
		}
		ann, err := core.Optimize(g, env(10))
		if err != nil {
			t.Fatalf("hidden %d: %v", hidden, err)
		}
		if err := ann.Verify(env(10)); err != nil {
			t.Fatalf("hidden %d: %v", hidden, err)
		}
	}
}

func TestChainSizeSetsShapesCompose(t *testing.T) {
	sets := ChainSizeSets()
	if len(sets) != 3 {
		t.Fatalf("want 3 size sets, got %d", len(sets))
	}
	for _, sz := range sets {
		g, err := MatMulChain(sz)
		if err != nil {
			t.Fatalf("%s: %v", sz.Name, err)
		}
		if g.NumOps() != 7 {
			t.Errorf("%s: %d ops, want 7 (T1, T2, T1E, T1T2, left, T2F, O)", sz.Name, g.NumOps())
		}
		if g.IsTree() {
			t.Errorf("%s: chain must share T1 and T2", sz.Name)
		}
	}
}

func TestBlockInverseBuildsAndOptimizes(t *testing.T) {
	g, err := BlockInverse2(PaperBlockInverse())
	if err != nil {
		t.Fatal(err)
	}
	if g.IsTree() {
		t.Fatal("block inverse must share sub-expressions")
	}
	ann, err := core.Optimize(g, env(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Verify(env(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := BlockInverse2(BlockInverseConfig{Outer: 10, Inner1: 3, Inner2: 3}); err == nil {
		t.Error("mismatched inner split must be rejected")
	}
}

// The block-inverse graph must actually invert matrices: execute a
// scaled-down instance and check the reconstructed inverse blocks.
func TestBlockInverseNumerics(t *testing.T) {
	cfg := BlockInverseConfig{Outer: 40, Inner1: 16, Inner2: 24, BlockFormat: format.NewSingle()}
	g, err := BlockInverse2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := env(2)
	ann, err := core.Optimize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n, n1 := int(cfg.Outer), int(cfg.Inner1)
	// A full 2n×2n well-conditioned matrix, sliced into the inputs.
	full := tensor.RandNormal(rng, 2*n, 2*n)
	for i := 0; i < 2*n; i++ {
		full.Set(i, i, full.At(i, i)+float64(2*n))
	}
	inputs := map[string]*tensor.Dense{
		"A11": full.Slice(0, n1, 0, n1),
		"A12": full.Slice(0, n1, n1, n),
		"A21": full.Slice(n1, n, 0, n1),
		"A22": full.Slice(n1, n, n1, n),
		"B1":  full.Slice(0, n1, n, 2*n),
		"B2":  full.Slice(n1, n, n, 2*n),
		"C1":  full.Slice(n, 2*n, 0, n1),
		"C2":  full.Slice(n, 2*n, n1, n),
		"D":   full.Slice(n, 2*n, n, 2*n),
	}
	// D̄ = S⁻¹ is the bottom-right block of the true inverse. Find the
	// outer Schur inverse vertex: the last Inverse op in the graph. It is
	// not a sink, so ask the run to keep its relation alive.
	var sinvID = -1
	for _, v := range g.Vertices {
		if !v.IsSource && v.Op.Kind.String() == "inverse" {
			sinvID = v.ID
		}
	}
	eng := engine.New(e.Cluster)
	rels, err := eng.RunKeep(ann, inputs, []int{sinvID})
	if err != nil {
		t.Fatal(err)
	}
	wantInv, err := tensor.Inverse(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Collect(rels[sinvID])
	if err != nil {
		t.Fatal(err)
	}
	wantD := wantInv.Slice(n, 2*n, n, 2*n)
	if diff := tensor.MaxAbsDiff(got, wantD); diff > 1e-6 {
		t.Errorf("D̄ block deviates from the true inverse by %g", diff)
	}
}

func TestScaleGraphs(t *testing.T) {
	for _, kind := range []ScaleKind{ScaleTree, ScaleDAG1, ScaleDAG2} {
		prev := 0
		for scale := 1; scale <= 3; scale++ {
			g, err := ScaleGraph(kind, scale)
			if err != nil {
				t.Fatalf("%v scale %d: %v", kind, scale, err)
			}
			if n := len(g.Vertices); n <= prev {
				t.Errorf("%v: vertex count not growing (%d → %d)", kind, prev, n)
			} else {
				prev = n
			}
			if kind == ScaleTree && !g.IsTree() {
				t.Errorf("ScaleTree scale %d is not a tree", scale)
			}
			if kind != ScaleTree && g.IsTree() {
				t.Errorf("%v scale %d should share T1×T2", kind, scale)
			}
		}
	}
	if _, err := ScaleGraph(ScaleTree, 0); err == nil {
		t.Error("scale 0 must be rejected")
	}
}

func TestScaleGraphsOptimize(t *testing.T) {
	for _, kind := range []ScaleKind{ScaleTree, ScaleDAG1, ScaleDAG2} {
		g, err := ScaleGraph(kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		ann, err := core.Optimize(g, env(10))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := ann.Verify(env(10)); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestSyntheticAmazonCat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := SyntheticAmazonCat(rng, 50, 10000, 20)
	d := x.Density()
	if d < AmazonCatDensity/3 || d > AmazonCatDensity*3 {
		t.Errorf("synthetic density %g, want ≈ %g", d, AmazonCatDensity)
	}
	for i := 0; i < y.Rows; i++ {
		nnz := 0
		for j := 0; j < y.Cols; j++ {
			if y.At(i, j) != 0 {
				nnz++
			}
		}
		if nnz != 1 {
			t.Fatalf("label row %d has %d non-zeros, want one-hot", i, nnz)
		}
	}
}

func TestScaledFFNNExecutes(t *testing.T) {
	c := ScaledFFNN(PaperFFNN(80000), 400)
	g, err := FFNNW2Update(c)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann, err := core.Optimize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	eng := engine.New(e.Cluster)
	outs, err := eng.RunCollect(ann, FFNNInputs(rng, c))
	if err != nil {
		t.Fatal(err)
	}
	sink := g.Sinks()[0]
	got := outs[sink.ID]
	if int64(got.Rows) != c.Hidden || int64(got.Cols) != c.Hidden {
		t.Fatalf("updated W2 is %dx%d, want %dx%d", got.Rows, got.Cols, c.Hidden, c.Hidden)
	}
	if got.Density() == 0 {
		t.Fatal("updated W2 is all zeros")
	}
}

func TestAmazonCatConfigFormats(t *testing.T) {
	dense := AmazonCatConfig(10000, 4000, false)
	if dense.InputFormat != format.NewColStrip(1000) || dense.InputDensity != 1.7e-4 {
		t.Errorf("dense config = %+v", dense)
	}
	sp := AmazonCatConfig(10000, 4000, true)
	if sp.InputFormat != format.NewCSRSingle() {
		t.Errorf("sparse config input format = %v", sp.InputFormat)
	}
	// The sparse X fits a single CSR tuple: 10⁴×597540 at 1.7e-4.
	s := shape.New(10000, 597540)
	if !sp.InputFormat.Valid(s, sp.InputDensity, costmodel.EC2R5DN(2).MaxTupleBytes) {
		t.Error("sparse AmazonCat X should fit one CSR tuple")
	}
}
