package workload

import (
	"math/rand"
	"testing"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
	"matopt/internal/tensor"
)

// TestMatMulChainNumerics executes a scaled-down instance of the §8.2
// chain end to end and checks the result against plain kernels.
func TestMatMulChainNumerics(t *testing.T) {
	sz := ChainSizes{
		Name: "scaled",
		A:    shape.New(100, 300), B: shape.New(300, 500),
		C: shape.New(500, 1), D: shape.New(1, 500),
		E: shape.New(500, 100), F: shape.New(500, 100),
	}
	g, err := MatMulChain(sz)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann, err := core.Optimize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mk := func(s shape.Shape) *tensor.Dense {
		return tensor.RandNormal(rng, int(s.Rows), int(s.Cols))
	}
	ins := map[string]*tensor.Dense{
		"A": mk(sz.A), "B": mk(sz.B), "C": mk(sz.C),
		"D": mk(sz.D), "E": mk(sz.E), "F": mk(sz.F),
	}
	eng := engine.New(e.Cluster)
	outs, err := eng.RunCollect(ann, ins)
	if err != nil {
		t.Fatal(err)
	}
	t1 := tensor.MatMul(ins["A"], ins["B"])
	t2 := tensor.MatMul(ins["C"], ins["D"])
	want := tensor.MatMul(
		tensor.MatMul(tensor.MatMul(t1, ins["E"]), tensor.MatMul(t1, t2)),
		tensor.MatMul(t2, ins["F"]))
	sink := g.Sinks()[0]
	if diff := tensor.MaxAbsDiff(outs[sink.ID], want); diff > 1e-6 {
		t.Errorf("chain result deviates by %g", diff)
	}
}

// TestSparseFFNNForwardNumerics runs a scaled sparse-input FFNN forward
// layer through a sparse-aware plan and checks numerics.
func TestSparseFFNNForwardNumerics(t *testing.T) {
	const (
		batch    = 200
		features = 3000
		hidden   = 80
	)
	g := core.NewGraph()
	x := g.Input("X", shape.New(batch, features), 0.01, format.NewCSRSingle())
	w1 := g.Input("W1", shape.New(features, hidden), 1, format.NewRowStrip(1000))
	z1 := g.MustApply(op.Op{Kind: op.MatMul}, x, w1)
	g.MustApply(op.Op{Kind: op.ReLU}, z1)

	e := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann, err := core.Optimize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer should keep X sparse rather than densify 4.8 MB of
	// mostly-zeros: some vertex must use a CSR-consuming implementation.
	usesSparse := false
	for id, im := range ann.VertexImpl {
		_ = id
		if im != nil && (im.Name == "mm-bcast-csr-rowstrip-agg" || im.Name == "mm-csr-single-single" ||
			im.Name == "mm-csr-rowstrip-bcast-single") {
			usesSparse = true
		}
	}
	if !usesSparse {
		t.Log("plan:", ann.Describe())
		t.Error("optimizer did not exploit the sparse input")
	}
	rng := rand.New(rand.NewSource(2))
	xm := tensor.RandSparse(rng, batch, features, 0.01)
	wm := tensor.RandNormal(rng, features, hidden)
	eng := engine.New(e.Cluster)
	outs, err := eng.RunCollect(ann, map[string]*tensor.Dense{"X": xm, "W1": wm})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.ReLU(tensor.MatMul(xm, wm))
	sink := g.Sinks()[0]
	if diff := tensor.MaxAbsDiff(outs[sink.ID], want); diff > 1e-8 {
		t.Errorf("sparse forward deviates by %g", diff)
	}
}

// TestFFNNBackpropSmallScaleNumerics checks a whole scaled training step
// (forward + full backprop with updates) against the reference kernels.
func TestFFNNBackpropSmallScaleNumerics(t *testing.T) {
	cfg := ScaledFFNN(PaperFFNN(80000), 500)
	g, err := FFNNBackprop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEnv(costmodel.LocalTest(3), format.All())
	ann, err := core.Optimize(g, e)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ins := FFNNInputs(rng, cfg)
	eng := engine.New(e.Cluster)
	outs, err := eng.RunCollect(ann, ins)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: recompute the W3 update with plain kernels.
	z1 := tensor.AddBias(tensor.MatMul(ins["X"], ins["W1"]), ins["B1"])
	a1 := tensor.ReLU(z1)
	z2 := tensor.AddBias(tensor.MatMul(a1, ins["W2"]), ins["B2"])
	a2 := tensor.ReLU(z2)
	z3 := tensor.AddBias(tensor.MatMul(a2, ins["W3"]), ins["B3"])
	p := tensor.Softmax(z3)
	d3 := tensor.Sub(p, ins["Y"])
	gw3 := tensor.MatMul(tensor.Transpose(a2), d3)
	lr := cfg.LearningRate / float64(cfg.Batch)
	wantW3 := tensor.Sub(ins["W3"], tensor.Scale(gw3, lr))

	// Find the W3-update sink: the Sub vertex consuming source W3.
	w3v := g.ByName("W3")
	var w3New int = -1
	for _, out := range w3v.Outs {
		if out.Op.Kind.String() == "sub" {
			w3New = out.ID
		}
	}
	if w3New < 0 {
		t.Fatal("no W3 update vertex found")
	}
	got, err := eng.Collect(mustRel(t, outs, w3New, eng, ann))
	if err != nil {
		t.Fatal(err)
	}
	if diff := tensor.MaxAbsDiff(got, wantW3); diff > 1e-7 {
		t.Errorf("updated W3 deviates by %g", diff)
	}
}

// mustRel fetches a non-sink vertex's relation by re-running; sinks are
// already collected in outs.
func mustRel(t *testing.T, outs map[int]*tensor.Dense, id int, eng *engine.Engine, ann *core.Annotation) *engine.Relation {
	t.Helper()
	if _, ok := outs[id]; ok {
		// Already dense; wrap it back into a single relation for the
		// common Collect path.
		r, err := eng.Load(outs[id], format.NewSingle())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	t.Fatalf("vertex %d is not a sink", id)
	return nil
}
