// Package workload builds the compute graphs of the paper's evaluation
// (§8): the §2.1 motivating chain, the FFNN forward/backward graphs of
// Figures 5–8, the AmazonCat FFNN of Figures 11–12, the two-level
// block-wise inverse of Figure 9, the matrix-multiplication chain of
// Figures 4/10, and the Tree/DAG1/DAG2 scale-n graphs of Figure 13.
package workload

import (
	"matopt/internal/core"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// FFNNConfig describes the paper's three-hidden-layer feed-forward
// network: a Batch×Features input, weight matrices Features×Hidden,
// Hidden×Hidden and Hidden×Labels, biases, relu activations and a
// softmax output (§8.2).
type FFNNConfig struct {
	Batch    int64
	Features int64
	Hidden   int64
	Labels   int64
	// InputFormat stores X; InputDensity is its non-zero fraction.
	InputFormat  format.Format
	InputDensity float64
	// WeightFormat stores the large W1 and W2; matrices small enough
	// for one tuple (W3, biases, labels) are stored whole.
	WeightFormat format.Format
	LearningRate float64
}

// PaperFFNN returns the §8.2 configuration: 10⁴ dense input vectors with
// 6·10⁴ features, 17 labels, and the given hidden layer size.
func PaperFFNN(hidden int64) FFNNConfig {
	return FFNNConfig{
		Batch:        10000,
		Features:     60000,
		Hidden:       hidden,
		Labels:       17,
		InputFormat:  format.NewRowStrip(1000),
		InputDensity: 1,
		WeightFormat: format.NewTile(1000),
		LearningRate: 0.01,
	}
}

// AmazonCatConfig returns the Figures 11/12 configuration: the
// AmazonCat-14K dimensions (597,540 features, 14,588 labels) with a
// synthetic density matching the dataset's ≈100 non-zeros per example.
// sparseInput selects CSR storage for X (Figure 12's "sparse input").
func AmazonCatConfig(batch, hidden int64, sparseInput bool) FFNNConfig {
	c := FFNNConfig{
		Batch:        batch,
		Features:     597540,
		Hidden:       hidden,
		Labels:       14588,
		InputDensity: 1.7e-4,
		InputFormat:  format.NewColStrip(1000),
		WeightFormat: format.NewTile(1000),
		LearningRate: 0.01,
	}
	if sparseInput {
		c.InputFormat = format.NewCSRSingle()
	}
	return c
}

// ffnnSources bundles the network's input vertices.
type ffnnSources struct {
	x, y, w1, b1, w2, b2, w3, b3 *core.Vertex
}

func (c FFNNConfig) addSources(g *core.Graph) ffnnSources {
	single := format.NewSingle()
	smallOr := func(s shape.Shape) format.Format {
		if single.Valid(s, 1, 1<<30) {
			return single
		}
		return c.WeightFormat
	}
	w3s := shape.New(c.Hidden, c.Labels)
	return ffnnSources{
		x:  g.Input("X", shape.New(c.Batch, c.Features), c.InputDensity, c.InputFormat),
		y:  g.Input("Y", shape.New(c.Batch, c.Labels), 1, single),
		w1: g.Input("W1", shape.New(c.Features, c.Hidden), 1, c.WeightFormat),
		b1: g.Input("B1", shape.New(1, c.Hidden), 1, single),
		w2: g.Input("W2", shape.New(c.Hidden, c.Hidden), 1, c.WeightFormat),
		b2: g.Input("B2", shape.New(1, c.Hidden), 1, single),
		w3: g.Input("W3", w3s, 1, smallOr(w3s)),
		b3: g.Input("B3", shape.New(1, c.Labels), 1, single),
	}
}

// ffnnForward holds the activations a backward pass needs.
type ffnnForward struct {
	z1b, a1, z2b, a2, p *core.Vertex
}

// forward adds one forward pass: Zi = Ai₋₁·Wi + Bi, Ai = relu(Zi), and a
// softmax output.
func (c FFNNConfig) forward(g *core.Graph, s ffnnSources) ffnnForward {
	mm := op.Op{Kind: op.MatMul}
	z1 := g.MustApply(mm, s.x, s.w1)
	z1b := g.MustApply(op.Op{Kind: op.AddBias}, z1, s.b1)
	a1 := g.MustApply(op.Op{Kind: op.ReLU}, z1b)
	z2 := g.MustApply(mm, a1, s.w2)
	z2b := g.MustApply(op.Op{Kind: op.AddBias}, z2, s.b2)
	a2 := g.MustApply(op.Op{Kind: op.ReLU}, z2b)
	z3 := g.MustApply(mm, a2, s.w3)
	z3b := g.MustApply(op.Op{Kind: op.AddBias}, z3, s.b3)
	p := g.MustApply(op.Op{Kind: op.Softmax}, z3b)
	return ffnnForward{z1b: z1b, a1: a1, z2b: z2b, a2: a2, p: p}
}

// ffnnUpdated holds the post-gradient-step parameters.
type ffnnUpdated struct {
	w1, b1, w2, b2, w3, b3 *core.Vertex
}

// backward adds the full backpropagation with SGD updates of every
// weight and bias, returning the updated parameters.
func (c FFNNConfig) backward(g *core.Graph, s ffnnSources, f ffnnForward) ffnnUpdated {
	mm := op.Op{Kind: op.MatMul}
	scale := op.Op{Kind: op.ScalarMul, Scalar: c.LearningRate / float64(c.Batch)}

	d3raw := g.MustApply(op.Op{Kind: op.Sub}, f.p, s.y)
	d3 := g.MustApply(op.Op{Kind: op.ScalarMul, Scalar: 1}, d3raw) // loss normalization slot
	a2t := g.MustApply(op.Op{Kind: op.Transpose}, f.a2)
	gw3 := g.MustApply(mm, a2t, d3)
	gb3 := g.MustApply(op.Op{Kind: op.ColSums}, d3)

	w3t := g.MustApply(op.Op{Kind: op.Transpose}, s.w3)
	d3w3t := g.MustApply(mm, d3, w3t)
	r2 := g.MustApply(op.Op{Kind: op.ReLUGrad}, f.z2b)
	d2 := g.MustApply(op.Op{Kind: op.Hadamard}, d3w3t, r2)
	a1t := g.MustApply(op.Op{Kind: op.Transpose}, f.a1)
	gw2 := g.MustApply(mm, a1t, d2)
	gb2 := g.MustApply(op.Op{Kind: op.ColSums}, d2)

	w2t := g.MustApply(op.Op{Kind: op.Transpose}, s.w2)
	d2w2t := g.MustApply(mm, d2, w2t)
	r1 := g.MustApply(op.Op{Kind: op.ReLUGrad}, f.z1b)
	d1 := g.MustApply(op.Op{Kind: op.Hadamard}, d2w2t, r1)
	xt := g.MustApply(op.Op{Kind: op.Transpose}, s.x)
	gw1 := g.MustApply(mm, xt, d1)
	gb1 := g.MustApply(op.Op{Kind: op.ColSums}, d1)

	update := func(w, grad *core.Vertex) *core.Vertex {
		step := g.MustApply(scale, grad)
		return g.MustApply(op.Op{Kind: op.Sub}, w, step)
	}
	return ffnnUpdated{
		w1: update(s.w1, gw1), b1: update(s.b1, gb1),
		w2: update(s.w2, gw2), b2: update(s.b2, gb2),
		w3: update(s.w3, gw3), b3: update(s.b3, gb3),
	}
}

// FFNNW2Update builds the Figure 6/7 graph: one forward pass plus the
// backpropagation needed to update the second hidden layer's weights.
func FFNNW2Update(c FFNNConfig) (*core.Graph, error) {
	g := core.NewGraph()
	s := c.addSources(g)
	f := c.forward(g, s)
	mm := op.Op{Kind: op.MatMul}

	d3 := g.MustApply(op.Op{Kind: op.Sub}, f.p, s.y)
	w3t := g.MustApply(op.Op{Kind: op.Transpose}, s.w3)
	d3w3t := g.MustApply(mm, d3, w3t)
	r2 := g.MustApply(op.Op{Kind: op.ReLUGrad}, f.z2b)
	d2 := g.MustApply(op.Op{Kind: op.Hadamard}, d3w3t, r2)
	a1t := g.MustApply(op.Op{Kind: op.Transpose}, f.a1)
	gw2 := g.MustApply(mm, a1t, d2)
	step := g.MustApply(op.Op{Kind: op.ScalarMul, Scalar: c.LearningRate}, gw2)
	if _, err := g.Apply(op.Op{Kind: op.Sub}, s.w2, step); err != nil {
		return nil, err
	}
	return g, g.Validate()
}

// FFNNBackprop builds a forward pass plus a full backpropagation with
// weight updates (the Figures 11/12 task).
func FFNNBackprop(c FFNNConfig) (*core.Graph, error) {
	g := core.NewGraph()
	s := c.addSources(g)
	f := c.forward(g, s)
	c.backward(g, s, f)
	return g, g.Validate()
}

// FFNNThreePass builds the Figure 5 graph: a forward pass, a full
// backpropagation updating every weight and bias, and a second forward
// pass computing the output activations — 57 vertices with the paper's
// configuration.
func FFNNThreePass(c FFNNConfig) (*core.Graph, error) {
	g := core.NewGraph()
	s := c.addSources(g)
	f := c.forward(g, s)
	u := c.backward(g, s, f)
	c.forward(g, ffnnSources{x: s.x, y: s.y, w1: u.w1, b1: u.b1, w2: u.w2, b2: u.b2, w3: u.w3, b3: u.b3})
	return g, g.Validate()
}

// ScaledFFNN shrinks a configuration by factor for Execute-mode tests,
// with formats made valid for the small shapes.
func ScaledFFNN(c FFNNConfig, factor int64) FFNNConfig {
	div := func(x int64) int64 {
		if v := x / factor; v > 0 {
			return v
		}
		return 1
	}
	c.Batch, c.Features, c.Hidden = div(c.Batch), div(c.Features), div(c.Hidden)
	if c.Labels > 4 {
		c.Labels = div(c.Labels)
		if c.Labels < 2 {
			c.Labels = 2
		}
	}
	c.InputFormat = format.NewRowStrip(minI64(100, c.Batch))
	c.WeightFormat = format.NewSingle()
	return c
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
