package workload

import (
	"fmt"

	"matopt/internal/core"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// BlockInverseConfig sizes the Figure 9 two-level block-wise inverse:
// the outer matrix [[A, B], [C, D]] has Outer×Outer blocks, and A itself
// is inverted block-wise with an Inner1/Inner2 split (Inner1+Inner2 =
// Outer). The paper uses Outer = 10K, Inner1 = 2K, Inner2 = 8K.
type BlockInverseConfig struct {
	Outer, Inner1, Inner2 int64
	// BlockFormat stores the input blocks.
	BlockFormat format.Format
}

// PaperBlockInverse returns the §8.2 configuration.
func PaperBlockInverse() BlockInverseConfig {
	return BlockInverseConfig{Outer: 10000, Inner1: 2000, Inner2: 8000, BlockFormat: format.NewSingle()}
}

// blockInv adds the Graybill block-inverse identity over four blocks
//
//	[[a, b], [c, d]]⁻¹ = [[ā, b̄], [c̄, d̄]]
//
// with ā = a⁻¹ + a⁻¹ b S⁻¹ c a⁻¹, b̄ = −a⁻¹ b S⁻¹, c̄ = −S⁻¹ c a⁻¹,
// d̄ = S⁻¹ and S = d − c a⁻¹ b, where a's inverse is supplied by aInv
// applied to the block product helpers (so the identity can nest).
type blockParts struct {
	a11, a12, a21, a22 *core.Vertex // the four result blocks
}

func blockInv(g *core.Graph, a, b, c, d *core.Vertex,
	invA func(x *core.Vertex) *core.Vertex) blockParts {
	mm := op.Op{Kind: op.MatMul}
	ainv := invA(a)
	cainv := g.MustApply(mm, c, ainv)   // c·a⁻¹
	ainvb := g.MustApply(mm, ainv, b)   // a⁻¹·b
	cainvb := g.MustApply(mm, cainv, b) // c·a⁻¹·b
	s := g.MustApply(op.Op{Kind: op.Sub}, d, cainvb)
	sinv := g.MustApply(op.Op{Kind: op.Inverse}, s)
	ainvbSinv := g.MustApply(mm, ainvb, sinv)
	corr := g.MustApply(mm, ainvbSinv, cainv) // a⁻¹bS⁻¹ca⁻¹
	return blockParts{
		a11: g.MustApply(op.Op{Kind: op.Add}, ainv, corr),
		a12: g.MustApply(op.Op{Kind: op.Neg}, ainvbSinv),
		a21: g.MustApply(op.Op{Kind: op.Neg}, g.MustApply(mm, sinv, cainv)),
		a22: sinv,
	}
}

// BlockInverse2 builds the Figure 9 computation: the Graybill identity
// applied at the outer level over 10K blocks, with A⁻¹ computed by a
// nested application of the same identity over A's 2K/8K blocks. The
// nesting makes the products against A⁻¹ block-decomposed expressions,
// so the graph has heavy sharing (a DAG, not a tree). The four outer
// result blocks are the sinks.
func BlockInverse2(cfg BlockInverseConfig) (*core.Graph, error) {
	if cfg.Inner1+cfg.Inner2 != cfg.Outer {
		return nil, fmt.Errorf("workload: inner blocks %d+%d must sum to outer %d",
			cfg.Inner1, cfg.Inner2, cfg.Outer)
	}
	g := core.NewGraph()
	n, n1, n2 := cfg.Outer, cfg.Inner1, cfg.Inner2
	in := func(name string, r, c int64) *core.Vertex {
		return g.Input(name, shape.New(r, c), 1, cfg.BlockFormat)
	}
	// A's four inner blocks.
	a11 := in("A11", n1, n1)
	a12 := in("A12", n1, n2)
	a21 := in("A21", n2, n1)
	a22 := in("A22", n2, n2)
	// The outer B, C, D split along A's block boundary where they meet A.
	b1 := in("B1", n1, n) // top rows of B
	b2 := in("B2", n2, n)
	c1 := in("C1", n, n1) // left cols of C
	c2 := in("C2", n, n2)
	dd := in("D", n, n)

	mm := op.Op{Kind: op.MatMul}
	inv := func(x *core.Vertex) *core.Vertex { return g.MustApply(op.Op{Kind: op.Inverse}, x) }

	// Inner level: A⁻¹ as four blocks via the identity itself.
	ai := blockInv(g, a11, a12, a21, a22, inv)

	// Outer level with A⁻¹ in block form:
	//   C·A⁻¹ = [c1·ā11 + c2·ā21 , c1·ā12 + c2·ā22]   (n×n1, n×n2)
	//   A⁻¹·B = [ā11·b1 + ā12·b2 ; ā21·b1 + ā22·b2]   (n1×n, n2×n)
	add := op.Op{Kind: op.Add}
	ca1 := g.MustApply(add, g.MustApply(mm, c1, ai.a11), g.MustApply(mm, c2, ai.a21))
	ca2 := g.MustApply(add, g.MustApply(mm, c1, ai.a12), g.MustApply(mm, c2, ai.a22))
	ab1 := g.MustApply(add, g.MustApply(mm, ai.a11, b1), g.MustApply(mm, ai.a12, b2))
	ab2 := g.MustApply(add, g.MustApply(mm, ai.a21, b1), g.MustApply(mm, ai.a22, b2))

	// S = D − C·A⁻¹·B = D − (ca1·b1 + ca2·b2)
	cab := g.MustApply(add, g.MustApply(mm, ca1, b1), g.MustApply(mm, ca2, b2))
	s := g.MustApply(op.Op{Kind: op.Sub}, dd, cab)
	sinv := inv(s) // D̄

	// B̄ = −A⁻¹B·S⁻¹ (as two row blocks), C̄ = −S⁻¹·CA⁻¹ (two col blocks).
	bbar1 := g.MustApply(op.Op{Kind: op.Neg}, g.MustApply(mm, ab1, sinv))
	bbar2 := g.MustApply(op.Op{Kind: op.Neg}, g.MustApply(mm, ab2, sinv))
	cbar1 := g.MustApply(op.Op{Kind: op.Neg}, g.MustApply(mm, sinv, ca1))
	cbar2 := g.MustApply(op.Op{Kind: op.Neg}, g.MustApply(mm, sinv, ca2))

	// Ā = A⁻¹ + A⁻¹B·S⁻¹·CA⁻¹, block (i,j) = āij + abi·S⁻¹·caj.
	absinv1 := g.MustApply(mm, ab1, sinv)
	absinv2 := g.MustApply(mm, ab2, sinv)
	g.MustApply(add, ai.a11, g.MustApply(mm, absinv1, ca1))
	g.MustApply(add, ai.a12, g.MustApply(mm, absinv1, ca2))
	g.MustApply(add, ai.a21, g.MustApply(mm, absinv2, ca1))
	g.MustApply(add, ai.a22, g.MustApply(mm, absinv2, ca2))

	// B̄ and C̄ blocks are result sinks; D̄ = sinv is also consumed above.
	_ = []*core.Vertex{bbar1, bbar2, cbar1, cbar2}
	return g, g.Validate()
}
