package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"matopt"
	"matopt/internal/dist"
	"matopt/internal/obs"
	"matopt/internal/plan"
)

// maxBodyBytes bounds a request body; plan payloads are the largest
// legitimate bodies and stay far under this.
const maxBodyBytes = 32 << 20

// badRequestError marks client errors (malformed JSON, invalid specs)
// for the 400 mapping.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return badRequestError{fmt.Errorf(format, args...)}
}

// routes assembles the service's endpoint table.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/optimize", s.endpoint("optimize", s.handleOptimize))
	mux.Handle("/execute", s.endpoint("execute", s.handleExecute))
	mux.Handle("/plan", s.endpoint("plan", s.handlePlan))
	mux.Handle("/metrics", obs.MetricsHandler(s.reg))
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleHealthz reports liveness: 200 while serving, 503 once draining
// (load balancers stop routing here first, the drain finishes behind
// it).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "{\"status\":\"draining\"}\n")
		return
	}
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// endpoint wraps one POST JSON handler with the service plumbing:
// admission control, the per-request deadline, the root span, the
// request/latency metrics, and error → status mapping.
func (s *Server) endpoint(name string, fn func(ctx context.Context, body []byte, tr *obs.Tracer, root *obs.Span) (any, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			s.writeError(w, name, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			s.writeError(w, name, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
			return
		}
		var opts reqOptions
		if len(body) > 0 {
			if err := json.Unmarshal(body, &opts); err != nil {
				s.writeError(w, name, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
				return
			}
		}
		var tr *obs.Tracer
		var root *obs.Span
		if s.cfg.Tracing || opts.Trace {
			tr = obs.NewTracer()
			root = tr.Start(nil, "serve."+name)
		}
		qspan := tr.Start(root, "serve.queue")
		t0 := time.Now()
		var service time.Duration
		result, err := s.submit(r.Context(), opts.deadline(), func(ctx context.Context) (any, error) {
			qspan.End()
			hspan := tr.Start(root, "serve.handle")
			defer hspan.End()
			h0 := time.Now()
			res, herr := fn(ctx, body, tr, hspan)
			service = time.Since(h0)
			return res, herr
		})
		root.End()
		code := http.StatusOK
		if err != nil {
			code = statusOf(err)
			s.writeError(w, name, code, err)
			return
		}
		s.reg.Counter("serve.requests", obs.L("endpoint", name), obs.L("code", strconv.Itoa(code))).Inc()
		s.reg.Histogram("serve.request.seconds", obs.DefaultDurationBuckets(), obs.L("endpoint", name)).
			Observe(time.Since(t0).Seconds())
		s.reg.Histogram("serve.service.seconds", obs.DefaultDurationBuckets(), obs.L("endpoint", name)).
			Observe(service.Seconds())
		if ts, ok := result.(traceSetter); ok && tr != nil {
			ts.setTrace(tr.Snapshot().Tree())
		}
		s.writeJSON(w, code, result)
	})
}

// statusOf maps service errors to HTTP statuses: admission rejections
// to 429/503, deadlines to 504, client mistakes to 400, everything else
// to 500.
func statusOf(err error) int {
	var bad badRequestError
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests // 429
	case errors.Is(err, ErrQueueTimeout), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, matopt.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable // client went away or drain cancelled us
	case errors.As(err, &bad), errors.Is(err, matopt.ErrInfeasible):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, code int, err error) {
	s.reg.Counter("serve.requests", obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code))).Inc()
	s.writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// optimizeSpec runs the shared optimizer on a spec's graph and records
// the coalesce outcome — the core of /optimize, /execute, and /plan.
func (s *Server) optimizeSpec(ctx context.Context, b *matopt.Builder) (*matopt.Plan, string, error) {
	fp, err := s.opt.Fingerprint(b)
	if err != nil {
		return nil, "", badRequestError{err}
	}
	p, err := s.opt.OptimizeCtx(ctx, b)
	if err != nil {
		return nil, "", err
	}
	switch {
	case p.Cached():
		s.reg.Counter("serve.coalesce", obs.L("result", "hit")).Inc()
	case p.Coalesced():
		s.reg.Counter("serve.coalesce", obs.L("result", "waiter")).Inc()
	default:
		s.reg.Counter("serve.coalesce", obs.L("result", "leader")).Inc()
	}
	return p, fp, nil
}

func (s *Server) handleOptimize(ctx context.Context, body []byte, tr *obs.Tracer, span *obs.Span) (any, error) {
	var req OptimizeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequest("invalid JSON: %v", err)
	}
	spec := req.Spec.normalized()
	g, err := spec.buildGraph()
	if err != nil {
		return nil, badRequestError{err}
	}
	p, fp, err := s.optimizeSpec(ctx, matopt.NewBuilderFromGraph(g))
	if err != nil {
		return nil, err
	}
	span.SetBool("cached", p.Cached()).SetBool("coalesced", p.Coalesced())
	resp := &OptimizeResponse{
		Spec:             spec,
		Fingerprint:      fp,
		PredictedSeconds: p.PredictedSeconds(),
		OptimizerSeconds: p.OptimizerStats().WallSeconds,
		Cached:           p.Cached(),
		Coalesced:        p.Coalesced(),
		Plan:             p.Describe(),
	}
	if req.Explain {
		if resp.Explain, err = p.Explain(); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

func (s *Server) handleExecute(ctx context.Context, body []byte, tr *obs.Tracer, span *obs.Span) (any, error) {
	var req ExecuteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequest("invalid JSON: %v", err)
	}
	if err := req.validate(); err != nil {
		return nil, badRequestError{err}
	}
	engine := req.Engine
	if engine == "" {
		engine = "seq"
	}
	spec := req.Spec.normalized()
	g, inputs, err := spec.build()
	if err != nil {
		return nil, badRequestError{err}
	}
	b := matopt.NewBuilderFromGraph(g)
	p, fp, err := s.optimizeSpec(ctx, b)
	if err != nil {
		return nil, err
	}
	span.SetStr("engine", engine).SetBool("cached", p.Cached()).SetBool("coalesced", p.Coalesced())
	resp := &ExecuteResponse{
		Spec: spec, Engine: engine, Fingerprint: fp,
		Cached: p.Cached(), Coalesced: p.Coalesced(),
	}
	t0 := time.Now()
	switch engine {
	case "sim":
		rep, err := matopt.Simulate(p)
		if err != nil {
			return nil, err
		}
		resp.Sim = &SimSummary{
			Seconds: rep.Seconds,
			FLOPs:   rep.Features.FLOPs, NetBytes: rep.Features.NetBytes,
			InterBytes: rep.Features.InterBytes, Tuples: rep.Features.Tuples,
			PeakWorkerBytes: rep.PeakWorkerBytes,
		}
	case "seq", "dist":
		xopts := []matopt.ExecutorOption{matopt.WithTracing(tr)}
		if req.KernelThreads > 0 {
			xopts = append(xopts, matopt.WithKernelThreads(req.KernelThreads))
		}
		if engine == "dist" {
			xopts = append(xopts, matopt.WithEngineKind(matopt.DistEngine), matopt.WithShards(req.Shards))
			if len(req.Peers) > 0 {
				xopts = append(xopts, matopt.WithPeers(req.Peers...))
			}
			if req.MaxRetries > 0 {
				xopts = append(xopts, matopt.WithMaxRetries(req.MaxRetries))
			}
			if req.Fallback {
				xopts = append(xopts, matopt.WithFallback())
			}
			if req.Checkpoint {
				xopts = append(xopts, matopt.WithCheckpointing(0, req.CheckpointBudget))
			}
			if req.Speculate {
				xopts = append(xopts, matopt.WithSpeculation(matopt.DefaultSpeculation()))
			}
			if req.Faults > 0 {
				seed := req.FaultSeed
				if seed == 0 {
					seed = 1
				}
				var ids []int
				for _, v := range g.Vertices {
					ids = append(ids, v.ID)
				}
				shards := req.Shards
				if shards <= 0 {
					shards = dist.DefaultShards()
				}
				xopts = append(xopts, matopt.WithFaults(matopt.RandomFaults(seed, req.Faults, ids, shards)))
			}
		}
		x := matopt.NewExecutor(s.cfg.Cluster, xopts...)
		outs, err := x.RunCtx(ctx, p, inputs)
		if err != nil {
			return nil, err
		}
		ids := make([]int, 0, len(outs))
		for id := range outs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			resp.Outputs = append(resp.Outputs, encodeDense(id, outs[id]))
		}
		if rep := x.DistReport(); engine == "dist" && rep != nil {
			resp.Dist = &DistSummary{
				Shards: rep.Shards, NetBytes: rep.NetBytes, Messages: rep.Messages,
				PeakBytes: rep.PeakBytes, WallNS: rep.Wall.Nanoseconds(),
				FaultsInjected: rep.FaultsInjected, Retries: rep.Retries,
				Cascades:            rep.Cascades,
				SpeculativeLaunches: rep.SpeculativeLaunches,
				SpeculativeWins:     rep.SpeculativeWins,
				CheckpointVertices:  rep.CheckpointVertices,
				CheckpointBytes:     rep.CheckpointBytes,
				Transport:           rep.Transport,
				WireBytes:           rep.WireBytes, WireMessages: rep.WireMessages,
				WireDials: rep.WireDials, WireReconnects: rep.WireReconnects,
				Degraded: rep.Degraded, DegradedCause: rep.DegradedCause,
			}
		}
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	return resp, nil
}

func (s *Server) handlePlan(ctx context.Context, body []byte, tr *obs.Tracer, span *obs.Span) (any, error) {
	var req PlanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequest("invalid JSON: %v", err)
	}
	spec := req.Spec.normalized()
	g, err := spec.buildGraph()
	if err != nil {
		return nil, badRequestError{err}
	}
	resp := &PlanResponse{Spec: spec}
	if len(req.Plan) > 0 {
		// Decode mode: replay a serialized plan against this spec's
		// graph and environment. A payload lowered for a different
		// computation or cluster is rejected by its fingerprint.
		span.SetStr("mode", "decode")
		pp, err := plan.Decode(g, s.opt.Env(), req.Plan)
		if err != nil {
			if errors.Is(err, plan.ErrInvalidPlan) {
				return nil, badRequestError{err}
			}
			return nil, err
		}
		if resp.Fingerprint, err = s.opt.Fingerprint(matopt.NewBuilderFromGraph(g)); err != nil {
			return nil, err
		}
		resp.Nodes = len(pp.Nodes)
		resp.PredictedSeconds = pp.PredictedSeconds()
		resp.Explain = pp.Explain()
		resp.Valid = true
		return resp, nil
	}
	// Encode mode: optimize (through the cache and the coalescing
	// boundary) and serialize the lowered plan.
	span.SetStr("mode", "encode")
	p, fp, err := s.optimizeSpec(ctx, matopt.NewBuilderFromGraph(g))
	if err != nil {
		return nil, err
	}
	pp, err := p.Physical()
	if err != nil {
		return nil, err
	}
	data, err := plan.Encode(pp, s.opt.Env())
	if err != nil {
		return nil, err
	}
	resp.Fingerprint = fp
	resp.Nodes = len(pp.Nodes)
	resp.PredictedSeconds = pp.PredictedSeconds()
	resp.Explain = pp.Explain()
	resp.Plan = data
	return resp, nil
}
