package serve

import (
	"context"
	"net"
	"testing"

	"matopt/internal/netfabric"
)

// TestExecutePeersOverTCP drives /execute with a peer map pointing at an
// in-process netfabric worker: the dist run must shuffle over real TCP,
// report the transport and wire meters, and return outputs bit-identical
// to the sequential engine.
func TestExecutePeersOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := netfabric.NewServer()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("worker Serve: %v", err)
		}
	}()

	s := New(testConfig(2, 8))
	defer s.Drain(context.Background())

	const spec = `"workload":"chain","scale":400`
	var seq, dist ExecuteResponse
	if code := post(t, s, "/execute", `{`+spec+`}`, &seq); code != 200 {
		t.Fatalf("seq execute status %d", code)
	}
	body := `{` + spec + `,"engine":"dist","shards":3,"peers":["local","` + ln.Addr().String() + `"]}`
	if code := post(t, s, "/execute", body, &dist); code != 200 {
		t.Fatalf("dist-over-tcp execute status %d", code)
	}
	if dist.Dist == nil || dist.Dist.Transport != "tcp" {
		t.Fatalf("dist summary lacks tcp transport: %+v", dist.Dist)
	}
	if dist.Dist.WireBytes == 0 || dist.Dist.WireMessages == 0 || dist.Dist.WireDials == 0 {
		t.Fatalf("no wire traffic metered: %+v", dist.Dist)
	}
	if dist.Dist.Degraded {
		t.Fatalf("healthy run degraded: %+v", dist.Dist)
	}
	if len(dist.Outputs) != len(seq.Outputs) {
		t.Fatalf("engines disagree on output count: %d vs %d", len(dist.Outputs), len(seq.Outputs))
	}
	for i := range seq.Outputs {
		if dist.Outputs[i].SHA256 != seq.Outputs[i].SHA256 || dist.Outputs[i].DataB64 != seq.Outputs[i].DataB64 {
			t.Fatalf("vertex %d: tcp dist output differs from seq", seq.Outputs[i].Vertex)
		}
	}

	// Peer maps are a dist-engine feature; other engines reject them.
	if code := post(t, s, "/execute", `{`+spec+`,"peers":["local"]}`, nil); code != 400 {
		t.Fatalf("peers without dist = %d, want 400", code)
	}
	if code := post(t, s, "/execute", `{`+spec+`,"engine":"dist","peers":[""]}`, nil); code != 400 {
		t.Fatalf("empty peer entry = %d, want 400", code)
	}
}
