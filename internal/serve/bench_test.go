package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"matopt"
	"matopt/internal/obs"
)

// serveBenchResult is the record `make bench` writes to
// BENCH_serve.json: sustained throughput and latency percentiles for
// warm-cache /optimize requests, the direct in-process Optimizer call
// on the same warm cache, and the coalesce outcome mix. p50_ns minus
// direct_ns is the full service-layer overhead (HTTP, JSON, admission,
// metrics) — the acceptance bar is that it stays within noise of the
// direct call at these request sizes.
type serveBenchResult struct {
	Workload      string  `json:"workload"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"numcpu"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	DirectNs      int64   `json:"direct_ns"`
	OverheadNs    int64   `json:"overhead_ns"`
	CoalesceHits  int64   `json:"coalesce_hits"`
	CoalesceRate  float64 `json:"coalesce_hit_rate"`
}

// BenchmarkServeWarmOptimize drives concurrent warm-cache /optimize
// requests over a real listener and compares their latency against the
// direct Optimizer call the service wraps. When BENCH_SERVE_JSON names
// a file, the measured comparison is written there as JSON.
func BenchmarkServeWarmOptimize(b *testing.B) {
	const clients = 16
	body := []byte(`{"workload":"chain","scale":400}`)
	reg := obs.NewRegistry()
	s := New(Config{Workers: clients, MaxQueue: 4 * clients, Registry: reg})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	defer client.CloseIdleConnections()

	post := func() error {
		res, err := client.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", res.StatusCode)
		}
		return nil
	}
	if err := post(); err != nil { // warm the plan cache
		b.Fatal(err)
	}

	// Latency sample: b.N sequential warm requests.
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := post(); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := lat[len(lat)/2]
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p50.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")

	// The direct call the service wraps, on the same warm optimizer.
	spec := Spec{Workload: "chain", Scale: 400}.normalized()
	g, err := spec.buildGraph()
	if err != nil {
		b.Fatal(err)
	}
	bld := matopt.NewBuilderFromGraph(g)
	const directReps = 64
	t0 := time.Now()
	for i := 0; i < directReps; i++ {
		if _, err := s.Optimizer().OptimizeCtx(context.Background(), bld); err != nil {
			b.Fatal(err)
		}
	}
	direct := time.Since(t0) / directReps
	b.ReportMetric(float64(direct.Nanoseconds()), "direct-ns")

	// Throughput: a fixed burst of concurrent clients.
	const perClient = 16
	var wg sync.WaitGroup
	wg.Add(clients)
	burst0 := time.Now()
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				if err := post(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(burst0)
	rps := float64(clients*perClient) / elapsed.Seconds()
	b.ReportMetric(rps, "rps")

	if path := os.Getenv("BENCH_SERVE_JSON"); path != "" {
		hits := reg.Counter("serve.coalesce", obs.L("result", "hit")).Value()
		waiters := reg.Counter("serve.coalesce", obs.L("result", "waiter")).Value()
		leaders := reg.Counter("serve.coalesce", obs.L("result", "leader")).Value()
		total := hits + waiters + leaders
		out, err := json.MarshalIndent(serveBenchResult{
			Workload:      "chain (scaled)",
			Clients:       clients,
			Requests:      b.N + clients*perClient + 1,
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			NumCPU:        runtime.NumCPU(),
			ThroughputRPS: rps,
			P50Ns:         p50.Nanoseconds(),
			P99Ns:         p99.Nanoseconds(),
			DirectNs:      direct.Nanoseconds(),
			OverheadNs:    (p50 - direct).Nanoseconds(),
			CoalesceHits:  hits + waiters,
			CoalesceRate:  float64(hits+waiters) / float64(total),
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
