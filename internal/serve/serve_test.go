package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"matopt/internal/obs"
)

// post issues a JSON POST through the server's handler and decodes the
// response into out (when non-nil), returning the status code.
func post(t *testing.T, s *Server, path, body string, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(body)))
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("POST %s: invalid response JSON: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec.Code
}

func TestOptimizeEndpoint(t *testing.T) {
	s := New(testConfig(2, 8))
	defer s.Drain(context.Background())

	var first OptimizeResponse
	if code := post(t, s, "/optimize", `{"workload":"chain","scale":400,"explain":true,"trace":true}`, &first); code != 200 {
		t.Fatalf("optimize status %d", code)
	}
	if first.Fingerprint == "" || first.Plan == "" || first.PredictedSeconds <= 0 {
		t.Fatalf("optimize response incomplete: %+v", first)
	}
	if first.Cached || first.Coalesced {
		t.Fatalf("first request must be the leader: %+v", first)
	}
	if first.Explain == "" {
		t.Fatal("explain requested but absent")
	}
	if !strings.Contains(first.Trace, "serve.optimize") || !strings.Contains(first.Trace, "serve.handle") {
		t.Fatalf("trace missing request spans:\n%s", first.Trace)
	}

	// The same spec again is a plan-cache hit with an identical plan.
	var again OptimizeResponse
	post(t, s, "/optimize", `{"workload":"chain","scale":400}`, &again)
	if !again.Cached || again.Fingerprint != first.Fingerprint || again.Plan != first.Plan {
		t.Fatalf("repeat not served from cache: cached=%v", again.Cached)
	}

	// Spec defaults: sizeset 1 and scale 400 were normalized and echoed.
	if first.Spec.SizeSet != 1 || first.Spec.Scale != 400 || first.Spec.Seed != 1 {
		t.Fatalf("normalized spec not echoed: %+v", first.Spec)
	}
}

func TestExecuteEndpointEnginesAgree(t *testing.T) {
	s := New(testConfig(2, 8))
	defer s.Drain(context.Background())

	const spec = `"workload":"chain","scale":400`
	var seq, dist ExecuteResponse
	if code := post(t, s, "/execute", `{`+spec+`}`, &seq); code != 200 {
		t.Fatalf("seq execute status %d", code)
	}
	if seq.Engine != "seq" || len(seq.Outputs) == 0 {
		t.Fatalf("seq response incomplete: %+v", seq)
	}
	// Wire form round-trips bit-exactly.
	d, err := seq.Outputs[0].Dense()
	if err != nil {
		t.Fatal(err)
	}
	if re := encodeDense(seq.Outputs[0].Vertex, d); re.SHA256 != seq.Outputs[0].SHA256 {
		t.Fatal("output wire form does not round-trip")
	}

	// The dist engine under injected faults — with the full recovery
	// ladder armed (checkpoint pins, speculation) — returns bit-identical
	// outputs and a recovery report.
	if code := post(t, s, "/execute", `{`+spec+`,"engine":"dist","shards":3,"faults":2,"fallback":true,"checkpoint":true,"speculate":true,"kernel_threads":2}`, &dist); code != 200 {
		t.Fatalf("dist execute status %d", code)
	}
	if dist.Dist == nil || dist.Dist.Shards != 3 {
		t.Fatalf("dist summary missing: %+v", dist.Dist)
	}
	if len(dist.Outputs) != len(seq.Outputs) {
		t.Fatalf("engines disagree on output count: %d vs %d", len(dist.Outputs), len(seq.Outputs))
	}
	for i := range seq.Outputs {
		if dist.Outputs[i].SHA256 != seq.Outputs[i].SHA256 || dist.Outputs[i].DataB64 != seq.Outputs[i].DataB64 {
			t.Fatalf("vertex %d: dist output differs from seq", seq.Outputs[i].Vertex)
		}
	}

	// The simulator reports paper-scale resources instead of outputs.
	var sim ExecuteResponse
	if code := post(t, s, "/execute", `{"workload":"ffnn","engine":"sim"}`, &sim); code != 200 {
		t.Fatalf("sim execute status %d", code)
	}
	if sim.Sim == nil || sim.Sim.Seconds <= 0 || sim.Sim.FLOPs <= 0 || len(sim.Outputs) != 0 {
		t.Fatalf("sim response incomplete: %+v", sim.Sim)
	}
}

func TestPlanEndpointRoundTrip(t *testing.T) {
	s := New(testConfig(2, 8))
	defer s.Drain(context.Background())

	var enc PlanResponse
	if code := post(t, s, "/plan", `{"workload":"ffnn","scale":4000}`, &enc); code != 200 {
		t.Fatalf("plan encode status %d", code)
	}
	if len(enc.Plan) == 0 || enc.Nodes == 0 || enc.Explain == "" {
		t.Fatalf("plan encode incomplete: nodes=%d", enc.Nodes)
	}

	// POSTing the payload back validates it against the same spec.
	body, _ := json.Marshal(PlanRequest{Spec: Spec{Workload: "ffnn", Scale: 4000}, Plan: enc.Plan})
	var dec PlanResponse
	if code := post(t, s, "/plan", string(body), &dec); code != 200 {
		t.Fatalf("plan decode status %d", code)
	}
	if !dec.Valid || dec.Nodes != enc.Nodes || dec.Fingerprint != enc.Fingerprint {
		t.Fatalf("decode disagrees with encode: %+v vs %+v", dec, enc)
	}

	// The same payload against a different computation is rejected by
	// its fingerprint — a client cannot execute a stale plan.
	body, _ = json.Marshal(PlanRequest{Spec: Spec{Workload: "ffnn", Scale: 2000}, Plan: enc.Plan})
	if code := post(t, s, "/plan", string(body), nil); code != 400 {
		t.Fatalf("cross-spec decode status %d, want 400", code)
	}
}

func TestRequestValidation(t *testing.T) {
	s := New(testConfig(2, 8))
	defer s.Drain(context.Background())

	cases := []struct {
		path, body string
		want       int
	}{
		{"/optimize", `{"workload":"fft"}`, 400},
		{"/optimize", `{nope`, 400},
		{"/execute", `{"workload":"chain","engine":"gpu"}`, 400},
		{"/execute", `{"workload":"chain","faults":2}`, 400}, // faults need dist
		{"/execute", `{"workload":"chain","shards":-1}`, 400},
		{"/execute", `{"workload":"chain","checkpoint":true}`, 400}, // checkpoint needs dist
		{"/execute", `{"workload":"chain","speculate":true}`, 400},  // speculation needs dist
		{"/execute", `{"workload":"chain","engine":"dist","checkpoint":true,"checkpoint_budget":-1}`, 400},
		{"/execute", `{"workload":"chain","engine":"dist","checkpoint_budget":1024}`, 400}, // budget needs checkpoint
		{"/execute", `{"workload":"chain","kernel_threads":-1}`, 400},
		{"/plan", `{"workload":"chain","sizeset":9}`, 400},
	}
	for _, c := range cases {
		if code := post(t, s, c.path, c.body, nil); code != c.want {
			t.Errorf("POST %s %s = %d, want %d", c.path, c.body, code, c.want)
		}
	}

	// Wrong method and error bodies.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/optimize", nil))
	if rec.Code != 405 || rec.Header().Get("Allow") != "POST" {
		t.Fatalf("GET /optimize = %d, want 405 with Allow: POST", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/optimize", strings.NewReader(`{"workload":"fft"}`)))
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("error body not JSON: %q", rec.Body.String())
	}
}

func TestMetricsAndHealth(t *testing.T) {
	s := New(testConfig(2, 8))
	post(t, s, "/optimize", `{"workload":"chain","scale":400}`, nil)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"serve.requests{code=200,endpoint=optimize} 1",
		"serve.request.seconds",
		"serve.queue.wait.seconds",
		"serve.coalesce{result=leader} 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	// Draining flips healthz to 503 so load balancers stop routing.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining healthz = %d %q", rec.Code, rec.Body.String())
	}
	// And requests are shed with 503 + ErrDraining.
	if code := post(t, s, "/optimize", `{"workload":"chain"}`, nil); code != 503 {
		t.Fatalf("post-drain optimize = %d, want 503", code)
	}
}

// TestHTTPCoalesce drives N identical concurrent requests through the
// full HTTP stack and asserts the singleflight contract end to end:
// exactly one request led the optimization; every other one either
// waited on it or hit the cache it populated — never a second search.
func TestHTTPCoalesce(t *testing.T) {
	cfg := testConfig(16, 32)
	s := New(cfg)
	defer s.Drain(context.Background())

	const n = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	responses := make([]OptimizeResponse, n)
	codes := make([]int, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			<-start
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("POST", "/optimize",
				bytes.NewReader([]byte(`{"workload":"chain","sizeset":2,"scale":200}`))))
			codes[i] = rec.Code
			json.Unmarshal(rec.Body.Bytes(), &responses[i])
		}(i)
	}
	close(start)
	wg.Wait()

	leaders := 0
	for i, r := range responses {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !r.Cached && !r.Coalesced {
			leaders++
		}
		if r.Fingerprint != responses[0].Fingerprint || r.Plan != responses[0].Plan {
			t.Fatalf("request %d: plan differs from request 0", i)
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders for %d identical concurrent requests, want exactly 1", leaders, n)
	}
	reg := cfg.Registry
	lead := reg.Counter("serve.coalesce", obs.L("result", "leader")).Value()
	wait := reg.Counter("serve.coalesce", obs.L("result", "waiter")).Value()
	hit := reg.Counter("serve.coalesce", obs.L("result", "hit")).Value()
	if lead != 1 || lead+wait+hit != n {
		t.Fatalf("coalesce counters leader=%d waiter=%d hit=%d, want 1 leader summing to %d", lead, wait, hit, n)
	}
}
