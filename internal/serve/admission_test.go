package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"matopt/internal/obs"
	"matopt/internal/testutil"
)

// testConfig returns a config with a private registry so counter
// assertions never see another test's traffic.
func testConfig(workers, queue int) Config {
	return Config{
		Workers:  workers,
		MaxQueue: queue,
		Registry: obs.NewRegistry(),
	}
}

func rejected(s *Server, reason string) int64 {
	return s.reg.Counter("serve.rejected", obs.L("reason", reason)).Value()
}

// blockingJob submits a job that parks until release is closed,
// reporting on started once a worker picks it up.
func blockingJob(s *Server, started, release chan struct{}, result chan error) {
	_, err := s.submit(context.Background(), time.Minute, func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	result <- err
}

func TestSubmitRunsJobs(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		s := New(testConfig(2, 4))
		defer s.Drain(context.Background())
		got, err := s.submit(context.Background(), 0, func(ctx context.Context) (any, error) {
			return 41 + 1, nil
		})
		if err != nil || got != 42 {
			t.Fatalf("submit = %v, %v; want 42, nil", got, err)
		}
		wantErr := errors.New("boom")
		if _, err := s.submit(context.Background(), 0, func(ctx context.Context) (any, error) {
			return nil, wantErr
		}); !errors.Is(err, wantErr) {
			t.Fatalf("submit error = %v, want %v", err, wantErr)
		}
	})
}

// TestOverloadRejectsImmediately pins the load-shedding contract: with
// the single worker busy and the queue full, a new request is rejected
// with ErrOverloaded without waiting.
func TestOverloadRejectsImmediately(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		s := New(testConfig(1, 1))
		defer s.Drain(context.Background())

		started, release := make(chan struct{}), make(chan struct{})
		results := make(chan error, 2)
		go blockingJob(s, started, release, results)
		<-started // the worker is now busy

		// Fill the one queue slot.
		queued := make(chan error, 1)
		go func() {
			_, err := s.submit(context.Background(), time.Minute, func(ctx context.Context) (any, error) {
				return nil, nil
			})
			queued <- err
		}()
		waitFor(t, func() bool { return len(s.jobs) == 1 })

		begin := time.Now()
		_, err := s.submit(context.Background(), time.Minute, func(ctx context.Context) (any, error) {
			return nil, nil
		})
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("full-queue submit error = %v, want ErrOverloaded", err)
		}
		if d := time.Since(begin); d > time.Second {
			t.Fatalf("overload rejection took %v, want immediate", d)
		}
		if n := rejected(s, "overloaded"); n != 1 {
			t.Fatalf("serve.rejected{reason=overloaded} = %d, want 1", n)
		}

		close(release)
		if err := <-queued; err != nil {
			t.Fatalf("queued job failed: %v", err)
		}
		if err := <-results; err != nil {
			t.Fatalf("blocking job failed: %v", err)
		}
	})
}

// TestQueueTimeout pins the second admission bound: a request may sit
// in the queue only QueueTimeout before it is bounced with
// ErrQueueTimeout.
func TestQueueTimeout(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		cfg := testConfig(1, 4)
		cfg.QueueTimeout = 30 * time.Millisecond
		s := New(cfg)
		defer s.Drain(context.Background())

		started, release := make(chan struct{}), make(chan struct{})
		results := make(chan error, 1)
		go blockingJob(s, started, release, results)
		<-started

		_, err := s.submit(context.Background(), time.Minute, func(ctx context.Context) (any, error) {
			return nil, nil
		})
		if !errors.Is(err, ErrQueueTimeout) {
			t.Fatalf("queued submit error = %v, want ErrQueueTimeout", err)
		}
		if n := rejected(s, "queue_timeout"); n != 1 {
			t.Fatalf("serve.rejected{reason=queue_timeout} = %d, want 1", n)
		}

		close(release)
		if err := <-results; err != nil {
			t.Fatalf("blocking job failed: %v", err)
		}
	})
}

// TestRequestDeadline covers both deadline paths: a request that
// expires while queued is aborted before any worker touches it, and one
// that expires mid-execution has its context cancelled.
func TestRequestDeadline(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		cfg := testConfig(1, 4)
		cfg.QueueTimeout = time.Minute // only the deadline may fire
		s := New(cfg)
		defer s.Drain(context.Background())

		// Expire mid-execution: the job's context is cancelled.
		_, err := s.submit(context.Background(), 30*time.Millisecond, func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("running-job deadline error = %v, want DeadlineExceeded", err)
		}

		// Expire while queued: park the worker, then submit with a
		// deadline shorter than the park.
		started, release := make(chan struct{}), make(chan struct{})
		results := make(chan error, 1)
		go blockingJob(s, started, release, results)
		<-started
		_, err = s.submit(context.Background(), 30*time.Millisecond, func(ctx context.Context) (any, error) {
			return nil, nil
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("queued-job deadline error = %v, want DeadlineExceeded", err)
		}
		if n := rejected(s, "deadline"); n != 1 {
			t.Fatalf("serve.rejected{reason=deadline} = %d, want 1", n)
		}

		close(release)
		if err := <-results; err != nil {
			t.Fatalf("blocking job failed: %v", err)
		}
	})
}

// TestDrainCompletesInflight pins the drain contract: after Drain
// begins, new requests are rejected with ErrDraining while every
// already-admitted request — executing or queued — still returns its
// result.
func TestDrainCompletesInflight(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		s := New(testConfig(2, 8))

		const executing, queuedN = 2, 3
		release := make(chan struct{})
		var startedWG sync.WaitGroup
		results := make(chan any, executing+queuedN)
		runOne := func(i int) {
			v, err := s.submit(context.Background(), time.Minute, func(ctx context.Context) (any, error) {
				<-release
				return i, nil
			})
			if err != nil {
				results <- err
				return
			}
			results <- v
		}
		// Two jobs occupy the workers...
		startedWG.Add(executing)
		for i := 0; i < executing; i++ {
			go func(i int) { startedWG.Done(); runOne(i) }(i)
		}
		startedWG.Wait()
		waitFor(t, func() bool { return s.reg.Gauge("serve.inflight").Value() >= executing })
		// ...and three more wait in the queue.
		for i := executing; i < executing+queuedN; i++ {
			go runOne(i)
		}
		waitFor(t, func() bool { return len(s.jobs) == queuedN })

		drained := make(chan error, 1)
		go func() { drained <- s.Drain(context.Background()) }()
		waitFor(t, s.Draining)

		if _, err := s.submit(context.Background(), time.Minute, func(ctx context.Context) (any, error) {
			return nil, nil
		}); !errors.Is(err, ErrDraining) {
			t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
		}
		if n := rejected(s, "draining"); n != 1 {
			t.Fatalf("serve.rejected{reason=draining} = %d, want 1", n)
		}

		close(release)
		if err := <-drained; err != nil {
			t.Fatalf("Drain = %v, want nil", err)
		}
		seen := map[int]bool{}
		for i := 0; i < executing+queuedN; i++ {
			switch v := (<-results).(type) {
			case int:
				seen[v] = true
			default:
				t.Fatalf("in-flight request lost its result: %v", v)
			}
		}
		if len(seen) != executing+queuedN {
			t.Fatalf("got %d distinct results, want %d", len(seen), executing+queuedN)
		}
	})
}

// TestDrainDeadlineCancelsStragglers: when the drain context expires
// first, in-flight requests are cancelled (they get context errors, not
// silence) and Drain reports the deadline.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		cfg := testConfig(1, 2)
		cfg.DrainTimeout = 40 * time.Millisecond
		s := New(cfg)

		started := make(chan struct{})
		errs := make(chan error, 1)
		go func() {
			_, err := s.submit(context.Background(), time.Minute, func(ctx context.Context) (any, error) {
				close(started)
				<-ctx.Done() // never finishes voluntarily
				return nil, ctx.Err()
			})
			errs <- err
		}()
		<-started

		if err := s.Drain(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Drain = %v, want DeadlineExceeded", err)
		}
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("straggler error = %v, want Canceled", err)
		}
		// Idempotent: a second Drain returns the same verdict instantly.
		if err := s.Drain(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("second Drain = %v, want the recorded DeadlineExceeded", err)
		}
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
