package serve

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"matopt/internal/tensor"
)

// OptimizeRequest is the /optimize body: a workload Spec plus options.
type OptimizeRequest struct {
	Spec
	// Explain asks for the lowered physical plan's per-operator listing.
	Explain bool `json:"explain,omitempty"`
	// DeadlineMS shortens the server's default request timeout.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace asks for the request's span tree in the response.
	Trace bool `json:"trace,omitempty"`
}

// OptimizeResponse reports an optimized plan.
type OptimizeResponse struct {
	// Spec echoes the normalized computation served.
	Spec Spec `json:"spec"`
	// Fingerprint identifies (graph, environment) — the plan-cache and
	// coalescing key.
	Fingerprint string `json:"fingerprint"`
	// PredictedSeconds is the cost model's total predicted running time.
	PredictedSeconds float64 `json:"predicted_seconds"`
	// OptimizerSeconds is the search's wall time (0 when served from
	// the cache or coalesced onto another request's search).
	OptimizerSeconds float64 `json:"optimizer_seconds"`
	// Cached reports a plan-cache hit; Coalesced reports that the
	// request waited on an identical concurrent optimization.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
	// Plan is the annotated plan rendering (Plan.Describe).
	Plan string `json:"plan"`
	// Explain carries the physical-operator listing when requested.
	Explain string `json:"explain,omitempty"`
	TraceOut
}

// ExecuteRequest is the /execute body: a Spec plus engine selection.
type ExecuteRequest struct {
	Spec
	// Engine selects the runtime: seq | dist | sim (default seq).
	Engine string `json:"engine,omitempty"`
	// Shards is the dist engine's shard count (default GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// Faults injects a seeded schedule of that many failures into the
	// dist run; FaultSeed picks the schedule (default 1).
	Faults    int   `json:"faults,omitempty"`
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// MaxRetries overrides the dist engine's per-vertex retry budget
	// (0 = runtime default).
	MaxRetries int `json:"max_retries,omitempty"`
	// Fallback degrades a dist run to the sequential engine when its
	// retries are exhausted.
	Fallback bool `json:"fallback,omitempty"`
	// Checkpoint enables cost-model-driven checkpoint placement on the
	// dist engine; CheckpointBudget caps the pinned bytes (0 =
	// unbounded).
	Checkpoint       bool  `json:"checkpoint,omitempty"`
	CheckpointBudget int64 `json:"checkpoint_budget,omitempty"`
	// Speculate enables speculative straggler re-execution on the dist
	// engine (the runtime's default profile).
	Speculate bool `json:"speculate,omitempty"`
	// KernelThreads bounds the threads each local compute kernel may
	// use (0 = auto-size to the machine; 1 = serial kernels). Results
	// are bit-identical at every setting.
	KernelThreads int `json:"kernel_threads,omitempty"`
	// Peers maps dist shards onto worker processes: each entry is a
	// `matoptd -worker` address (host:port) or the literal "local" for
	// in-process hosting. Empty keeps the in-process chan transport.
	Peers []string `json:"peers,omitempty"`
	// DeadlineMS shortens the server's default request timeout.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace asks for the request's span tree in the response.
	Trace bool `json:"trace,omitempty"`
}

// validate rejects engine configurations the executor cannot run.
func (r ExecuteRequest) validate() error {
	switch r.Engine {
	case "", "seq", "dist", "sim":
	default:
		return fmt.Errorf("unknown engine %q (want seq, dist or sim)", r.Engine)
	}
	if r.Shards < 0 {
		return fmt.Errorf("shards must be non-negative, got %d", r.Shards)
	}
	if r.Faults < 0 {
		return fmt.Errorf("faults must be non-negative, got %d", r.Faults)
	}
	if r.Faults > 0 && r.Engine != "dist" {
		return fmt.Errorf("faults require engine dist, got %q", r.Engine)
	}
	if r.FaultSeed < 0 {
		return fmt.Errorf("fault_seed must be non-negative, got %d", r.FaultSeed)
	}
	if r.MaxRetries < 0 {
		return fmt.Errorf("max_retries must be non-negative, got %d", r.MaxRetries)
	}
	if r.Checkpoint && r.Engine != "dist" {
		return fmt.Errorf("checkpoint requires engine dist, got %q", r.Engine)
	}
	if r.CheckpointBudget < 0 {
		return fmt.Errorf("checkpoint_budget must be non-negative, got %d", r.CheckpointBudget)
	}
	if r.CheckpointBudget > 0 && !r.Checkpoint {
		return fmt.Errorf("checkpoint_budget requires checkpoint")
	}
	if r.Speculate && r.Engine != "dist" {
		return fmt.Errorf("speculate requires engine dist, got %q", r.Engine)
	}
	if r.KernelThreads < 0 {
		return fmt.Errorf("kernel_threads must be non-negative, got %d", r.KernelThreads)
	}
	if len(r.Peers) > 0 && r.Engine != "dist" {
		return fmt.Errorf("peers require engine dist, got %q", r.Engine)
	}
	for i, p := range r.Peers {
		if p == "" {
			return fmt.Errorf("peers[%d] is empty", i)
		}
	}
	return nil
}

// OutputMatrix is one result matrix: dimensions, the raw float64 bits
// base64-encoded little-endian (bit-exact across the wire — JSON float
// formatting never touches the data), and a SHA-256 of those bytes for
// cheap comparison.
type OutputMatrix struct {
	// Vertex is the producing sink vertex's ID.
	Vertex int `json:"vertex"`
	// Rows and Cols are the matrix dimensions.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// DataB64 is base64(little-endian float64 bits), row-major.
	DataB64 string `json:"data_b64"`
	// SHA256 is the hex digest of the encoded bytes.
	SHA256 string `json:"sha256"`
}

// encodeDense converts an output matrix to its wire form.
func encodeDense(vertex int, d *tensor.Dense) OutputMatrix {
	buf := make([]byte, 8*len(d.Data))
	for i, v := range d.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	sum := sha256.Sum256(buf)
	return OutputMatrix{
		Vertex: vertex, Rows: d.Rows, Cols: d.Cols,
		DataB64: base64.StdEncoding.EncodeToString(buf),
		SHA256:  hex.EncodeToString(sum[:]),
	}
}

// Dense decodes the wire form back to a matrix — what example clients
// and the bit-identical load tests use.
func (o OutputMatrix) Dense() (*tensor.Dense, error) {
	raw, err := base64.StdEncoding.DecodeString(o.DataB64)
	if err != nil {
		return nil, fmt.Errorf("serve: output %d: %w", o.Vertex, err)
	}
	if len(raw) != 8*o.Rows*o.Cols {
		return nil, fmt.Errorf("serve: output %d: %d data bytes for a %dx%d matrix",
			o.Vertex, len(raw), o.Rows, o.Cols)
	}
	d := tensor.NewDense(o.Rows, o.Cols)
	for i := range d.Data {
		d.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return d, nil
}

// DistSummary is the dist engine's per-run report in wire form.
type DistSummary struct {
	// Shards is the shard count the run used.
	Shards int `json:"shards"`
	// NetBytes and Messages meter the shuffle fabric.
	NetBytes int64 `json:"net_bytes"`
	Messages int64 `json:"messages"`
	// PeakBytes is the peak resident relation bytes.
	PeakBytes int64 `json:"peak_bytes"`
	// WallNS is the run's wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// FaultsInjected and Retries record the recovery path.
	FaultsInjected int64 `json:"faults_injected"`
	Retries        int64 `json:"retries"`
	// Cascades, SpeculativeLaunches/Wins and the checkpoint counters
	// record the deeper recovery machinery (see dist.Report).
	Cascades            int64 `json:"cascades,omitempty"`
	SpeculativeLaunches int64 `json:"speculative_launches,omitempty"`
	SpeculativeWins     int64 `json:"speculative_wins,omitempty"`
	CheckpointVertices  int   `json:"checkpoint_vertices,omitempty"`
	CheckpointBytes     int64 `json:"checkpoint_bytes,omitempty"`
	// Transport names the exchange transport the run used ("chan" or
	// "tcp"); the Wire* counters meter the physical network fabric —
	// framed bytes, frames, dials and reconnects — and stay zero on the
	// in-process chan transport.
	Transport      string `json:"transport,omitempty"`
	WireBytes      int64  `json:"wire_bytes,omitempty"`
	WireMessages   int64  `json:"wire_messages,omitempty"`
	WireDials      int64  `json:"wire_dials,omitempty"`
	WireReconnects int64  `json:"wire_reconnects,omitempty"`
	// Degraded reports a fallback to the sequential engine, with its
	// cause.
	Degraded      bool   `json:"degraded"`
	DegradedCause string `json:"degraded_cause,omitempty"`
}

// SimSummary is the simulator's paper-scale resource report in wire
// form.
type SimSummary struct {
	// Seconds is the virtual wall time on the configured cluster.
	Seconds float64 `json:"seconds"`
	// FLOPs, NetBytes, InterBytes and Tuples are the plan's analytic
	// features.
	FLOPs      float64 `json:"flops"`
	NetBytes   float64 `json:"net_bytes"`
	InterBytes float64 `json:"inter_bytes"`
	Tuples     float64 `json:"tuples"`
	// PeakWorkerBytes is the largest per-worker working set.
	PeakWorkerBytes float64 `json:"peak_worker_bytes"`
}

// ExecuteResponse reports an executed (or simulated) plan.
type ExecuteResponse struct {
	// Spec echoes the normalized computation served; Engine the runtime
	// that produced the outputs.
	Spec   Spec   `json:"spec"`
	Engine string `json:"engine"`
	// Fingerprint, Cached and Coalesced describe how the plan was
	// obtained (see OptimizeResponse).
	Fingerprint string `json:"fingerprint"`
	Cached      bool   `json:"cached"`
	Coalesced   bool   `json:"coalesced"`
	// Outputs holds every sink's matrix, ordered by vertex ID (absent
	// for engine sim).
	Outputs []OutputMatrix `json:"outputs,omitempty"`
	// Dist summarizes the dist run's report (engine dist only).
	Dist *DistSummary `json:"dist,omitempty"`
	// Sim carries the simulator's report (engine sim only).
	Sim *SimSummary `json:"sim,omitempty"`
	// ElapsedMS is service time (queue wait excluded) in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	TraceOut
}

// PlanRequest is the /plan body. Without Plan it optimizes the spec and
// returns the serialized physical plan; with Plan it decodes the
// payload against the spec's graph and environment — fingerprint
// checked, node listing cross-checked — and returns its summary.
type PlanRequest struct {
	Spec
	// Plan is an Encode payload to validate and summarize; omit it to
	// ask for a fresh one.
	Plan json.RawMessage `json:"plan,omitempty"`
	// DeadlineMS shortens the server's default request timeout.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace asks for the request's span tree in the response.
	Trace bool `json:"trace,omitempty"`
}

// PlanResponse reports a serialized or validated physical plan.
type PlanResponse struct {
	// Spec echoes the normalized computation served.
	Spec Spec `json:"spec"`
	// Fingerprint identifies (graph, environment).
	Fingerprint string `json:"fingerprint"`
	// Nodes counts the plan's physical operators.
	Nodes int `json:"nodes"`
	// PredictedSeconds is the plan's model-predicted running time.
	PredictedSeconds float64 `json:"predicted_seconds"`
	// Explain is the per-operator listing.
	Explain string `json:"explain"`
	// Plan carries the serialized physical plan (encode mode only);
	// POST it back to round-trip.
	Plan json.RawMessage `json:"plan,omitempty"`
	// Valid is true in decode mode when the payload passed the
	// fingerprint and node cross-checks.
	Valid bool `json:"valid,omitempty"`
	TraceOut
}

// TraceOut is the optional span-tree tail of a response; the endpoint
// wrapper fills it when the request asked for tracing.
type TraceOut struct {
	// Trace is the rendered span tree of this request.
	Trace string `json:"trace,omitempty"`
}

func (t *TraceOut) setTrace(tree string) { t.Trace = tree }

// traceSetter lets the endpoint wrapper attach the span tree to any
// response embedding TraceOut.
type traceSetter interface{ setTrace(string) }

// errorResponse is the JSON error body every endpoint returns on
// failure.
type errorResponse struct {
	Error string `json:"error"`
}

// reqOptions is the slice of every request body the endpoint wrapper
// reads before dispatch: the deadline and the trace flag.
type reqOptions struct {
	DeadlineMS int64 `json:"deadline_ms"`
	Trace      bool  `json:"trace"`
}

func (o reqOptions) deadline() time.Duration {
	return time.Duration(o.DeadlineMS) * time.Millisecond
}
