package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"matopt"
	"matopt/internal/costmodel"
	"matopt/internal/obs"
	"matopt/internal/testutil"
)

// loadMix is the sustained-load request mix: every workload generator,
// every engine, with and without fault injection.
func loadMix() []ExecuteRequest {
	return []ExecuteRequest{
		{Spec: Spec{Workload: "chain", SizeSet: 1, Scale: 400}},
		{Spec: Spec{Workload: "chain", SizeSet: 2, Scale: 400}, Engine: "dist", Shards: 2},
		{Spec: Spec{Workload: "chain", SizeSet: 3, Scale: 600, Seed: 7}},
		{Spec: Spec{Workload: "ffnn", Scale: 4000}},
		{Spec: Spec{Workload: "ffnn3", Scale: 4000}, Engine: "dist", Shards: 2, Faults: 1, Fallback: true},
		{Spec: Spec{Workload: "inverse", Scale: 100}},
		{Spec: Spec{Workload: "ffnn", Scale: 4000}, Engine: "sim"},
	}
}

// directExecute reproduces a request outside the service — its own
// optimizer, its own executor, the same cluster — and returns the wire
// form the service must match bit for bit.
func directExecute(t *testing.T, cl matopt.Cluster, req ExecuteRequest) *ExecuteResponse {
	t.Helper()
	spec := req.Spec.normalized()
	g, inputs, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	opt := matopt.NewOptimizer(cl)
	p, err := opt.Optimize(matopt.NewBuilderFromGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	resp := &ExecuteResponse{Spec: spec}
	if req.Engine == "sim" {
		rep, err := matopt.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Sim = &SimSummary{Seconds: rep.Seconds, FLOPs: rep.Features.FLOPs}
		return resp
	}
	var xopts []matopt.ExecutorOption
	if req.Engine == "dist" {
		xopts = append(xopts, matopt.WithEngineKind(matopt.DistEngine), matopt.WithShards(req.Shards))
		if req.Fallback {
			xopts = append(xopts, matopt.WithFallback())
		}
		if req.Faults > 0 {
			var ids []int
			for _, v := range g.Vertices {
				ids = append(ids, v.ID)
			}
			xopts = append(xopts, matopt.WithFaults(matopt.RandomFaults(1, req.Faults, ids, req.Shards)))
		}
	}
	outs, err := matopt.NewExecutor(cl, xopts...).RunCtx(context.Background(), p, inputs)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, len(outs))
	for id := range outs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		resp.Outputs = append(resp.Outputs, encodeDense(id, outs[id]))
	}
	return resp
}

// TestSustainedLoadBitIdentical is the acceptance load test: 64
// concurrent clients sustain a mixed workload over a real HTTP listener
// and every response must be bit-identical to a direct Executor run of
// the same spec — then the server drains to zero goroutines.
func TestSustainedLoadBitIdentical(t *testing.T) {
	const clients, perClient = 64, 3
	mix := loadMix()
	cfg := testConfig(4, clients*perClient)
	cfg.Cluster = costmodel.LocalTest(4)
	cfg.QueueTimeout = time.Minute
	s := New(cfg)

	// Direct reference runs, computed once per mix entry before any
	// service traffic.
	want := make([]*ExecuteResponse, len(mix))
	for i, req := range mix {
		want[i] = directExecute(t, cfg.Cluster, req)
	}

	baseline := testutil.Baseline()
	ts := httptest.NewServer(s.Handler())
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				i := (c + r) % len(mix)
				body, _ := json.Marshal(mix[i])
				res, err := client.Post(ts.URL+"/execute", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				raw, _ := io.ReadAll(res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s", c, res.StatusCode, raw)
					continue
				}
				var got ExecuteResponse
				if err := json.Unmarshal(raw, &got); err != nil {
					errs <- err
					continue
				}
				if err := compareToDirect(&got, want[i]); err != nil {
					errs <- fmt.Errorf("client %d mix %d: %w", c, i, err)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		if failed <= 5 {
			t.Error(err)
		}
	}
	if failed > 0 {
		t.Fatalf("%d of %d requests failed or diverged", failed, clients*perClient)
	}

	// Every request was served — none shed — and the coalescing layer
	// saw all of them.
	reg := cfg.Registry
	served := reg.Counter("serve.requests", obs.L("endpoint", "execute"), obs.L("code", "200")).Value()
	if served != clients*perClient {
		t.Fatalf("served %d requests, want %d", served, clients*perClient)
	}

	// Drain under no load, close the listener, and verify nothing leaked.
	client.CloseIdleConnections()
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	testutil.WaitForGoroutines(t, baseline, 15*time.Second)
}

// compareToDirect asserts the service response carries exactly the
// reference run's bytes.
func compareToDirect(got, want *ExecuteResponse) error {
	if want.Sim != nil {
		if got.Sim == nil || got.Sim.Seconds != want.Sim.Seconds || got.Sim.FLOPs != want.Sim.FLOPs {
			return fmt.Errorf("sim report differs: got %+v want %+v", got.Sim, want.Sim)
		}
		return nil
	}
	if len(got.Outputs) != len(want.Outputs) {
		return fmt.Errorf("output count %d, want %d", len(got.Outputs), len(want.Outputs))
	}
	for i := range want.Outputs {
		g, w := got.Outputs[i], want.Outputs[i]
		if g.Vertex != w.Vertex || g.SHA256 != w.SHA256 || g.DataB64 != w.DataB64 {
			return fmt.Errorf("vertex %d: output not bit-identical to direct run", w.Vertex)
		}
	}
	return nil
}

// TestDrainUnderLoad fires a burst, drains mid-flight, and checks
// conservation: every request ends as a served 200 or a typed 503
// rejection — none hang, none vanish — and the pool exits clean.
func TestDrainUnderLoad(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		cfg := testConfig(2, 64)
		cfg.QueueTimeout = time.Minute
		s := New(cfg)

		const burst = 16
		codes := make(chan int, burst)
		var wg sync.WaitGroup
		wg.Add(burst)
		for i := 0; i < burst; i++ {
			go func() {
				defer wg.Done()
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("POST", "/execute",
					bytes.NewReader([]byte(`{"workload":"chain","scale":400}`))))
				codes <- rec.Code
			}()
		}
		// Wait until the whole burst is in flight, then drain under it.
		waitFor(t, func() bool {
			return s.reg.Gauge("serve.inflight").Value() == burst || len(codes) == burst
		})
		if err := s.Drain(context.Background()); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		wg.Wait()
		close(codes)
		served, shed := 0, 0
		for code := range codes {
			switch code {
			case http.StatusOK:
				served++
			case http.StatusServiceUnavailable:
				shed++
			default:
				t.Fatalf("request ended with status %d, want 200 or 503", code)
			}
		}
		if served+shed != burst {
			t.Fatalf("conservation broken: %d served + %d shed != %d", served, shed, burst)
		}
		if served == 0 {
			t.Fatal("drain served nothing: every in-flight request was dropped")
		}
	})
}
