package serve

import (
	"fmt"
	"math/rand"

	"matopt/internal/core"
	"matopt/internal/format"
	"matopt/internal/shape"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

// Spec names a computation a request wants optimized or executed: one
// of the built-in workload generators plus its parameters. Every field
// with a zero value takes the documented default, so the minimal useful
// request body is {"workload":"chain"}. The same (normalized) spec
// always produces the same graph and — because input generation is
// seeded and ordered — bit-identical input matrices, which is what lets
// the load tests compare service responses against direct Executor runs
// and lets the coalescing layer treat equal specs as one computation.
type Spec struct {
	// Workload selects the generator: chain | ffnn | ffnn3 | inverse.
	Workload string `json:"workload"`
	// SizeSet picks the matmul chain's size combination (1-3; chain
	// only; default 1).
	SizeSet int `json:"sizeset,omitempty"`
	// Hidden is the FFNN hidden-layer width (ffnn/ffnn3 only; default
	// 80000, the paper's largest).
	Hidden int64 `json:"hidden,omitempty"`
	// Scale divides every workload dimension before real execution so
	// requests fit in one process (default 100).
	Scale int64 `json:"scale,omitempty"`
	// Seed drives the deterministic random input generator (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// normalized returns the spec with defaults filled in; responses echo
// it so a caller sees the computation actually served.
func (s Spec) normalized() Spec {
	if s.Workload == "" {
		s.Workload = "chain"
	}
	if s.SizeSet == 0 {
		s.SizeSet = 1
	}
	if s.Hidden == 0 {
		s.Hidden = 80000
	}
	if s.Scale == 0 {
		s.Scale = 100
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// validate rejects specs the generators cannot build.
func (s Spec) validate() error {
	switch s.Workload {
	case "chain", "ffnn", "ffnn3", "inverse":
	default:
		return fmt.Errorf("unknown workload %q (want chain, ffnn, ffnn3 or inverse)", s.Workload)
	}
	if sets := workload.ChainSizeSets(); s.Workload == "chain" && (s.SizeSet < 1 || s.SizeSet > len(sets)) {
		return fmt.Errorf("sizeset must be in 1..%d, got %d", len(sets), s.SizeSet)
	}
	if s.Hidden < 1 {
		return fmt.Errorf("hidden must be positive, got %d", s.Hidden)
	}
	if s.Scale < 1 {
		return fmt.Errorf("scale must be positive, got %d", s.Scale)
	}
	if s.Seed < 0 {
		return fmt.Errorf("seed must be non-negative, got %d", s.Seed)
	}
	return nil
}

// buildGraph materializes only the scaled compute graph — what
// /optimize and /plan need; no input matrices are generated.
func (s Spec) buildGraph() (*core.Graph, error) {
	g, _, err := s.materialize(false)
	return g, err
}

// build materializes the spec: the scaled compute graph plus seeded
// input matrices.
func (s Spec) build() (*core.Graph, map[string]*tensor.Dense, error) {
	return s.materialize(true)
}

// materialize builds the graph and, when asked, its seeded inputs.
// Inputs are generated in a fixed order (never map iteration order), so
// one spec maps to exactly one byte sequence.
func (s Spec) materialize(withInputs bool) (*core.Graph, map[string]*tensor.Dense, error) {
	if err := s.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	div := func(x int64) int64 {
		if v := x / s.Scale; v > 0 {
			return v
		}
		return 1
	}
	switch s.Workload {
	case "ffnn", "ffnn3":
		cfg := workload.ScaledFFNN(workload.PaperFFNN(s.Hidden), s.Scale)
		gen := workload.FFNNW2Update
		if s.Workload == "ffnn3" {
			gen = workload.FFNNThreePass
		}
		g, err := gen(cfg)
		if err != nil || !withInputs {
			return g, nil, err
		}
		return g, workload.FFNNInputs(rng, cfg), nil
	case "chain":
		sz := workload.ChainSizeSets()[s.SizeSet-1]
		shrink := func(sh shape.Shape) shape.Shape { return shape.New(div(sh.Rows), div(sh.Cols)) }
		sz.A, sz.B, sz.C = shrink(sz.A), shrink(sz.B), shrink(sz.C)
		sz.D, sz.E, sz.F = shrink(sz.D), shrink(sz.E), shrink(sz.F)
		g, err := workload.MatMulChain(sz)
		if err != nil || !withInputs {
			return g, nil, err
		}
		inputs := map[string]*tensor.Dense{}
		for _, in := range []struct {
			name string
			s    shape.Shape
		}{{"A", sz.A}, {"B", sz.B}, {"C", sz.C}, {"D", sz.D}, {"E", sz.E}, {"F", sz.F}} {
			inputs[in.name] = tensor.RandNormal(rng, int(in.s.Rows), int(in.s.Cols))
		}
		return g, inputs, nil
	case "inverse":
		paper := workload.PaperBlockInverse()
		outer := div(paper.Outer)
		if outer < 2 {
			outer = 2
		}
		inner1 := outer * paper.Inner1 / paper.Outer
		if inner1 < 1 {
			inner1 = 1
		}
		cfg := workload.BlockInverseConfig{
			Outer: outer, Inner1: inner1, Inner2: outer - inner1,
			BlockFormat: format.NewSingle(),
		}
		g, err := workload.BlockInverse2(cfg)
		if err != nil || !withInputs {
			return g, nil, err
		}
		// Diagonal dominance keeps every Schur complement the plan
		// inverts well conditioned.
		n, n1 := int(outer), int(inner1)
		full := tensor.RandNormal(rng, 2*n, 2*n)
		for i := 0; i < 2*n; i++ {
			full.Set(i, i, full.At(i, i)+float64(2*n))
		}
		inputs := map[string]*tensor.Dense{
			"A11": full.Slice(0, n1, 0, n1), "A12": full.Slice(0, n1, n1, n),
			"A21": full.Slice(n1, n, 0, n1), "A22": full.Slice(n1, n, n1, n),
			"B1": full.Slice(0, n1, n, 2*n), "B2": full.Slice(n1, n, n, 2*n),
			"C1": full.Slice(n, 2*n, 0, n1), "C2": full.Slice(n, 2*n, n1, n),
			"D": full.Slice(n, 2*n, n, 2*n),
		}
		return g, inputs, nil
	}
	return nil, nil, fmt.Errorf("unknown workload %q", s.Workload)
}
