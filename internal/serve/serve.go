// Package serve is the long-running service layer over the optimizer
// and the execution engines: a JSON-over-HTTP front end (/optimize,
// /execute, /plan, /metrics, /healthz) backed by a bounded worker pool
// with admission control, singleflight coalescing of identical
// concurrent computations (through the optimizer's plan cache), and
// graceful drain. It is the substrate a deployment of this system
// serves heavy traffic through: the optimize-once/execute-many split
// the paper assumes of its host system (SimSQL/PlinyCompute) becomes
// optimize-once-per-fingerprint across every connected client.
//
// Admission control is two bounds and two clocks: at most Workers
// requests execute concurrently, at most MaxQueue wait; a request that
// finds the queue full is rejected immediately with ErrOverloaded
// (HTTP 429), one that waits longer than QueueTimeout is rejected with
// ErrQueueTimeout (HTTP 503), and each admitted request runs under a
// deadline (per-request deadline_ms, default RequestTimeout). Drain
// stops admission (healthz flips to draining, new requests get
// ErrDraining), lets in-flight work finish, cancels whatever is still
// running when the drain context expires, and stops the pool — no
// goroutine outlives it.
package serve

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"matopt"
	"matopt/internal/costmodel"
	"matopt/internal/obs"
)

// Typed admission-control rejections; the HTTP layer maps them to
// status codes (ErrOverloaded → 429, ErrQueueTimeout and ErrDraining →
// 503) and every rejection increments serve.rejected{reason=...}.
var (
	// ErrOverloaded reports that the request queue was full at arrival:
	// the server sheds load immediately instead of queuing unboundedly.
	ErrOverloaded = errors.New("serve: overloaded — request queue full")
	// ErrQueueTimeout reports that the request waited in the admission
	// queue longer than the queue timeout without reaching a worker.
	ErrQueueTimeout = errors.New("serve: timed out waiting in the admission queue")
	// ErrDraining reports that the server has begun graceful shutdown
	// and no longer admits requests.
	ErrDraining = errors.New("serve: draining — not admitting requests")
)

// Config parameterizes a Server. The zero value of every field takes
// the documented default, so serve.New(serve.Config{Cluster: cl}) is a
// working server.
type Config struct {
	// Cluster is the hardware profile plans are optimized for (default
	// the local-test profile sized to Workers).
	Cluster matopt.Cluster
	// Formats restricts the optimizer's format universe (default
	// AllFormats).
	Formats matopt.FormatSet
	// Workers bounds how many requests execute concurrently (default
	// GOMAXPROCS).
	Workers int
	// MaxQueue bounds how many admitted requests may wait for a worker;
	// a request arriving at a full queue is rejected with ErrOverloaded
	// (default 64).
	MaxQueue int
	// QueueTimeout bounds how long a request may wait in the queue
	// before being rejected with ErrQueueTimeout (default 5s).
	QueueTimeout time.Duration
	// RequestTimeout is the default per-request deadline covering queue
	// wait and service; requests may shorten it with deadline_ms
	// (default 60s).
	RequestTimeout time.Duration
	// DrainTimeout bounds Drain when the caller's context carries no
	// deadline of its own (default 30s).
	DrainTimeout time.Duration
	// PlanCacheSize overrides the optimizer's plan-cache capacity
	// (default matopt.DefaultPlanCacheSize).
	PlanCacheSize int
	// Tracing attaches a per-request tracer with a root span to every
	// request; request bodies can also ask for one with "trace": true.
	Tracing bool
	// Registry receives the server's metrics (default obs.Default()).
	Registry *obs.Registry
}

// withDefaults fills in the zero-valued fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Cluster.Workers == 0 {
		c.Cluster = costmodel.LocalTest(c.Workers)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// Server is the concurrent optimize-and-execute service. Create one
// with New, expose Handler on an http.Server, and stop it with Drain.
type Server struct {
	cfg Config
	opt *matopt.Optimizer
	reg *obs.Registry
	mux *http.ServeMux

	jobs    chan *job
	quit    chan struct{}
	workers sync.WaitGroup

	// mu guards the admission gate: the in-flight count and the
	// draining flag flip together, so a request is either counted
	// (and drained properly) or rejected — never lost between the two.
	mu        sync.Mutex
	cond      *sync.Cond
	nInflight int64

	draining  atomic.Bool // mirror of the gate's flag for lock-free reads
	drainOnce sync.Once
	drainErr  error
	stopped   chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New returns a started server: the worker pool is running and the
// handler is ready to serve. Stop it with Drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	opts := []matopt.Option{matopt.WithFormats(cfg.Formats)}
	if cfg.PlanCacheSize > 0 {
		opts = append(opts, matopt.WithPlanCacheSize(cfg.PlanCacheSize))
	}
	s := &Server{
		cfg:     cfg,
		opt:     matopt.NewOptimizer(cfg.Cluster, opts...),
		reg:     cfg.Registry,
		jobs:    make(chan *job, cfg.MaxQueue),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = s.routes()
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Optimizer exposes the server's shared optimizer (its plan cache and
// coalescing boundary); the benchmark harness uses it to compare
// service latency against direct calls.
func (s *Server) Optimizer() *matopt.Optimizer { return s.opt }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// job is one admitted request travelling from the admission queue to a
// worker. state moves queued → running (worker claims it) or queued →
// aborted (the requester gave up first); exactly one side wins the CAS.
type job struct {
	ctx      context.Context
	fn       func(ctx context.Context) (any, error)
	state    atomic.Int32 // 0 queued, 1 running, 2 aborted
	admitted chan struct{}
	done     chan struct{}
	result   any
	err      error
	enqueued time.Time
}

func (j *job) claim() bool { return j.state.CompareAndSwap(0, 1) }
func (j *job) abort() bool { return j.state.CompareAndSwap(0, 2) }

// worker executes queued jobs until the server stops. A job whose
// requester aborted (queue timeout, dead context) is skipped — its
// admitted channel stays closed-by-nobody and the requester has already
// answered.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.jobs:
			if !j.claim() {
				continue
			}
			close(j.admitted)
			s.reg.Histogram("serve.queue.wait.seconds", obs.DefaultDurationBuckets()).
				Observe(time.Since(j.enqueued).Seconds())
			j.result, j.err = j.fn(j.ctx)
			close(j.done)
		case <-s.quit:
			return
		}
	}
}

// submit runs fn on the worker pool under admission control and the
// request's deadline. It blocks until the job completes, is rejected,
// or the request context dies.
func (s *Server) submit(ctx context.Context, deadline time.Duration, fn func(ctx context.Context) (any, error)) (any, error) {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		s.reject("draining")
		return nil, ErrDraining
	}
	s.nInflight++
	s.reg.Gauge("serve.inflight").Set(s.nInflight)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.nInflight--
		s.reg.Gauge("serve.inflight").Set(s.nInflight)
		if s.nInflight == 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}()

	if deadline <= 0 {
		deadline = s.cfg.RequestTimeout
	}
	jctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	// A drain deadline cancels whatever is still running.
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	j := &job{
		ctx:      jctx,
		fn:       fn,
		admitted: make(chan struct{}),
		done:     make(chan struct{}),
		enqueued: time.Now(),
	}
	select {
	case s.jobs <- j:
	default:
		s.reject("overloaded")
		return nil, ErrOverloaded
	}

	queueTimer := time.NewTimer(s.cfg.QueueTimeout)
	defer queueTimer.Stop()
	select {
	case <-j.admitted:
	case <-queueTimer.C:
		if j.abort() {
			s.reject("queue_timeout")
			return nil, ErrQueueTimeout
		}
		<-j.admitted // a worker won the race; the job is running
	case <-jctx.Done():
		if j.abort() {
			s.reject("deadline")
			return nil, jctx.Err()
		}
		<-j.admitted
	}
	<-j.done
	return j.result, j.err
}

func (s *Server) reject(reason string) {
	s.reg.Counter("serve.rejected", obs.L("reason", reason)).Inc()
}

// Drain gracefully stops the server: admission closes immediately
// (healthz flips to draining, new requests are rejected with
// ErrDraining), in-flight requests — queued or executing — run to
// completion, and when ctx expires first, whatever is still running is
// cancelled and its error returned to its requester. The worker pool
// exits before Drain returns, so a drained server leaves no goroutines
// behind; a zero-deadline ctx gets the configured DrainTimeout. Drain
// is idempotent — concurrent and repeated calls share one shutdown and
// one result.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		start := time.Now()
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
			defer cancel()
		}
		s.mu.Lock()
		s.draining.Store(true)
		s.mu.Unlock()
		idle := make(chan struct{})
		go func() {
			s.mu.Lock()
			for s.nInflight > 0 {
				s.cond.Wait()
			}
			s.mu.Unlock()
			close(idle)
		}()
		select {
		case <-idle:
		case <-ctx.Done():
			// Past the drain deadline: cancel every in-flight request's
			// context. The optimizer and both engines are context-aware,
			// so requesters get answers (errors) promptly.
			s.baseCancel()
			<-idle
			s.drainErr = ctx.Err()
		}
		close(s.quit)
		s.workers.Wait()
		s.baseCancel()
		// Flush: record the drain itself so a scraped /metrics endpoint
		// (or the daemon's exit log) carries the shutdown's shape.
		s.reg.Counter("serve.drains").Inc()
		s.reg.Histogram("serve.drain.seconds", obs.DefaultDurationBuckets()).
			Observe(time.Since(start).Seconds())
		close(s.stopped)
	})
	<-s.stopped
	return s.drainErr
}
