package netfabric

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the worker side of the TCP transport: it hosts the exchange
// inboxes of remote shards. Each accepted connection serves sessions
// back to back — OPEN, MSG frames buffered per shard, FIN, then the
// inboxes stream back as INBOX frames ending in EOF, after which the
// connection is idle again and the coordinator may pool it.
//
// cmd/matoptd runs one of these per worker process (-worker -listen);
// tests run it in-process on a loopback listener, which exercises the
// identical code path hermetically.
type Server struct {
	ioTimeout  time.Duration
	sever      map[int64]bool
	closeAfter int64
	sessions   atomic.Int64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerIOTimeout bounds the server's reply writes (reads stay
// unbounded: the gap between a session's frames is the coordinator's
// produce time, which the server must not second-guess).
func WithServerIOTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.ioTimeout = d
		}
	}
}

// SeverSessions injects a network fault for chaos testing: the n-th
// session (1-based, counted across all connections) has its connection
// severed right after OPEN — the coordinator sees a connection reset
// mid-exchange.
func SeverSessions(nums ...int) ServerOption {
	return func(s *Server) {
		for _, n := range nums {
			s.sever[int64(n)] = true
		}
	}
}

// CloseAfterSessions injects a network fault for chaos testing: after
// serving n sessions the server shuts down completely — every
// connection (pooled ones included) dies and further dials are refused,
// modelling a worker that leaves mid-run.
func CloseAfterSessions(n int) ServerOption {
	return func(s *Server) { s.closeAfter = int64(n) }
}

// NewServer builds a worker server; call Serve to run it.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		ioTimeout: DefaultIOTimeout,
		sever:     make(map[int64]bool),
		conns:     make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on ln until Close, handling each on its own
// goroutine. It owns ln and returns nil after a clean Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		// Close already ran (or runs concurrently with startup): a
		// clean shutdown, not an error.
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("netfabric: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("netfabric: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Addr reports the bound listen address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, severs every live connection, and waits for
// all handlers to exit — after it returns the server has no goroutines
// left, which the leak-checked shutdown test asserts.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) release(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handle serves sessions on one connection until it closes or breaks.
func (s *Server) handle(conn net.Conn) {
	defer s.release(conn)
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	for {
		if err := s.session(conn, br, bw); err != nil {
			return
		}
	}
}

// session serves one OPEN…FIN→INBOX…EOF round trip. Any error —
// including the coordinator closing an idle pooled connection, the
// normal end of life — tears the connection down.
func (s *Server) session(conn net.Conn, br io.Reader, bw *bufio.Writer) error {
	typ, payload, err := readFrame(br)
	if err != nil {
		return err // io.EOF: pooled connection closed while idle
	}
	if typ != frameOpen {
		return fmt.Errorf("%w: expected OPEN, got frame type %d", ErrBadFrame, typ)
	}
	_, shards, err := decodeOpen(payload)
	if err != nil {
		return err
	}
	num := s.sessions.Add(1)
	if s.sever[num] {
		conn.Close() // injected fault: reset mid-exchange
		return errors.New("netfabric: session severed by fault injection")
	}
	inboxes := make([][]Message, shards)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return err
		}
		if typ == frameFin {
			break
		}
		if typ != frameMsg {
			return fmt.Errorf("%w: expected MSG or FIN, got frame type %d", ErrBadFrame, typ)
		}
		shard, m, err := decodeShardMessage(payload)
		if err != nil {
			return err
		}
		if shard >= shards {
			return fmt.Errorf("%w: message for shard %d of %d", ErrBadFrame, shard, shards)
		}
		inboxes[shard] = append(inboxes[shard], m)
	}
	conn.SetWriteDeadline(time.Now().Add(s.ioTimeout))
	for shard, msgs := range inboxes {
		for _, m := range msgs {
			if _, err := writeFrame(bw, frameInbox, appendShardMessage(nil, shard, m)); err != nil {
				return err
			}
		}
	}
	if _, err := writeFrame(bw, frameEOF, nil); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	if s.closeAfter > 0 && num >= s.closeAfter {
		// Injected fault: the worker leaves the cluster. Close runs on
		// its own goroutine (it waits for this handler); dropping the
		// connection here makes the departure immediate.
		go s.Close()
		return errors.New("netfabric: worker departed by fault injection")
	}
	return nil
}
