package netfabric

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"matopt/internal/engine"
)

// seedFrames are the valid wire frames the fuzzer mutates from: one of
// every frame type, covering every payload kind the codec knows. The
// same bytes are checked in under testdata/fuzz/FuzzFrame so `go test
// -fuzz=FuzzFrame` starts from a meaningful corpus.
func seedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	add := func(typ byte, payload []byte) {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, typ, payload); err != nil {
			tb.Fatalf("seed frame: %v", err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	add(frameOpen, appendOpen(nil, ExchangeID{Vertex: 3, Kind: "shuffle", Label: "shuffle(a)", Attempt: 1}, 7))
	for i, m := range sampleMessages() {
		add(frameMsg, appendShardMessage(nil, i, m))
		add(frameInbox, appendShardMessage(nil, i, m))
	}
	add(frameFin, nil)
	add(frameEOF, nil)
	// And one deliberately corrupt frame so the reject path is seeded.
	bad := append([]byte(nil), seeds[0]...)
	bad[len(bad)-1] ^= 0xff
	seeds = append(seeds, bad)
	return seeds
}

// FuzzFrame feeds arbitrary bytes through the full wire read path:
// frame parsing, then payload decoding per frame type. The codec must
// never panic; failures must be the typed ErrBadFrame (or a plain io
// short-read error), and anything that decodes must re-encode to the
// exact bytes it came from — the codec is canonical, which is what lets
// the golden tests compare wire traffic bit for bit.
func FuzzFrame(f *testing.F) {
	for _, seed := range seedFrames(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && err != io.EOF && err != io.ErrUnexpectedEOF {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		switch typ {
		case frameOpen:
			id, shards, err := decodeOpen(payload)
			if err != nil {
				if !errors.Is(err, ErrBadFrame) {
					t.Fatalf("untyped open error: %v", err)
				}
				return
			}
			if got := appendOpen(nil, id, shards); !bytes.Equal(got, payload) {
				t.Fatalf("open did not round-trip canonically:\n got %x\nwant %x", got, payload)
			}
		case frameMsg, frameInbox:
			shard, m, err := decodeShardMessage(payload)
			if err != nil {
				if !errors.Is(err, ErrBadFrame) {
					t.Fatalf("untyped message error: %v", err)
				}
				return
			}
			if got := appendShardMessage(nil, shard, m); !bytes.Equal(got, payload) {
				t.Fatalf("message did not round-trip canonically:\n got %x\nwant %x", got, payload)
			}
		default:
			// Control frames carry no payload worth decoding; reading
			// them must simply not have panicked.
		}
	})
}

// FuzzMessageRoundTrip drives the message codec from the structured
// side: any (key, seq, dense payload) the fabric could legally ship
// must survive encode→decode bit-identically.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), 2, 2, 1.5)
	f.Add(int64(-9), int64(0), int64(-1), 1, 4, -0.0)
	f.Fuzz(func(t *testing.T, ki, kj, seq int64, rows, cols int, fill float64) {
		if rows <= 0 || cols <= 0 || rows > 64 || cols > 64 {
			t.Skip()
		}
		m := Message{
			Key:   engine.Key{I: ki, J: kj},
			Seq:   seq,
			Tuple: denseTuple(engine.Key{I: ki, J: kj}, rows, cols, fill),
		}
		got, err := decodeMessage(appendMessage(nil, m))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !messagesEqual(got, m) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, m)
		}
	})
}

// TestSeedCorpusInSync regenerates the checked-in seed corpus when
// NETFABRIC_WRITE_CORPUS=1 and otherwise verifies it matches what
// seedFrames produces, so the corpus under testdata/ can never rot.
func TestSeedCorpusInSync(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzFrame")
	seeds := seedFrames(t)
	if os.Getenv("NETFABRIC_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for i, seed := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		body, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("seed corpus missing (regenerate with NETFABRIC_WRITE_CORPUS=1): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		if string(body) != want {
			t.Fatalf("seed corpus %s out of sync; regenerate with NETFABRIC_WRITE_CORPUS=1", name)
		}
	}
}
