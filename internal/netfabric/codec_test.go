package netfabric

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"matopt/internal/engine"
	"matopt/internal/sparse"
	"matopt/internal/tensor"
)

func denseTuple(k engine.Key, rows, cols int, seed float64) engine.Tuple {
	d := tensor.NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = seed + float64(i)*0.5
	}
	return engine.Tuple{Key: k, Dense: d}
}

func csrTuple(k engine.Key) engine.Tuple {
	c, err := sparse.NewCSR(3, 4,
		[]int{0, 2, 2, 3},
		[]int{0, 3, 1},
		[]float64{1.5, -2.25, math.Inf(1)})
	if err != nil {
		panic(err)
	}
	return engine.Tuple{Key: k, CSR: c}
}

func sampleMessages() []Message {
	return []Message{
		{Key: engine.Key{I: 1, J: 2}, Seq: 7, Tuple: denseTuple(engine.Key{I: 1, J: 2}, 3, 2, 0.25)},
		{Key: engine.Key{I: -4, J: 0}, Seq: 0, Tuple: csrTuple(engine.Key{I: -4, J: 0})},
		{Key: engine.Key{I: 0, J: 9}, Seq: -3, Tuple: engine.Tuple{Key: engine.Key{I: 0, J: 9}, Val: math.NaN(), IsVal: true}},
		{Key: engine.Key{}, Seq: 0, Tuple: engine.Tuple{}},
	}
}

// messagesEqual compares bit-exactly (NaN payloads must survive).
func messagesEqual(a, b Message) bool {
	return bytes.Equal(appendMessage(nil, a), appendMessage(nil, b))
}

func TestMessageRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		got, err := decodeMessage(appendMessage(nil, m))
		if err != nil {
			t.Fatalf("message %d: decode: %v", i, err)
		}
		if !messagesEqual(got, m) {
			t.Fatalf("message %d: round trip mismatch:\n got %+v\nwant %+v", i, got, m)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for i, m := range msgs {
		if _, err := writeFrame(&buf, frameMsg, appendShardMessage(nil, i, m)); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	if _, err := writeFrame(&buf, frameEOF, nil); err != nil {
		t.Fatalf("writeFrame EOF: %v", err)
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range msgs {
		typ, payload, err := readFrame(r)
		if err != nil || typ != frameMsg {
			t.Fatalf("frame %d: type %d err %v", i, typ, err)
		}
		shard, got, err := decodeShardMessage(payload)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if shard != i || !messagesEqual(got, want) {
			t.Fatalf("frame %d: got shard %d msg %+v", i, shard, got)
		}
	}
	if typ, _, err := readFrame(r); err != nil || typ != frameEOF {
		t.Fatalf("expected EOF frame, got type %d err %v", typ, err)
	}
	if _, _, err := readFrame(r); err != io.EOF {
		t.Fatalf("expected io.EOF on drained stream, got %v", err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	id := ExchangeID{Vertex: 12, Kind: "aggregate", Label: "sum(ab)", Attempt: 3}
	gotID, shards, err := decodeOpen(appendOpen(nil, id, 7))
	if err != nil {
		t.Fatalf("decodeOpen: %v", err)
	}
	if gotID != id || shards != 7 {
		t.Fatalf("got %+v shards %d, want %+v shards 7", gotID, shards, id)
	}
}

// TestFrameRejectsCorruption flips, truncates, and rewrites a valid
// frame every way the wire can fail; each mutation must surface as a
// typed error, never a panic or a silent mis-parse.
func TestFrameRejectsCorruption(t *testing.T) {
	m := sampleMessages()[0]
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, frameMsg, appendShardMessage(nil, 2, m)); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	frame := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(frame); cut += 7 {
			_, _, err := readFrame(bytes.NewReader(frame[:len(frame)-cut]))
			if err == nil {
				t.Fatalf("cut %d: no error", cut)
			}
			if !errors.Is(err, ErrBadFrame) && err != io.ErrUnexpectedEOF && err != io.EOF {
				t.Fatalf("cut %d: untyped error %v", cut, err)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for i := 0; i < len(frame); i++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 0x40
			typ, payload, err := readFrame(bytes.NewReader(mut))
			if err != nil {
				if !errors.Is(err, ErrBadFrame) && err != io.ErrUnexpectedEOF {
					t.Fatalf("flip %d: untyped error %v", i, err)
				}
				continue
			}
			// A flip the CRC cannot see (type byte is outside the
			// checksum) must still decode cleanly or fail typed.
			if typ == frameMsg {
				if _, _, err := decodeShardMessage(payload); err != nil && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("flip %d: untyped decode error %v", i, err)
				}
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		mut[0] = 'x'
		if _, _, err := readFrame(bytes.NewReader(mut)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("want ErrBadFrame, got %v", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		mut[2] = frameVersion + 1
		if _, _, err := readFrame(bytes.NewReader(mut)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("want ErrBadFrame, got %v", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		mut[4], mut[5], mut[6], mut[7] = 0xff, 0xff, 0xff, 0xff
		if _, _, err := readFrame(bytes.NewReader(mut)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("want ErrBadFrame, got %v", err)
		}
	})
}

// TestDecodeRejectsHostilePayloads covers payloads that frame and
// checksum cleanly but lie about their contents.
func TestDecodeRejectsHostilePayloads(t *testing.T) {
	base := func() []byte {
		var b []byte
		for i := 0; i < 5; i++ {
			b = appendInt64(b, 0)
		}
		return b
	}
	cases := map[string][]byte{
		"unknown kind": append(base(), 0x7f),
		"dense dims lie": func() []byte {
			b := append(base(), payloadDense)
			b = appendInt64(b, 1<<20) // rows
			b = appendInt64(b, 1<<20) // cols: no such data follows
			return b
		}(),
		"dense zero dim": func() []byte {
			b := append(base(), payloadDense)
			b = appendInt64(b, 0)
			b = appendInt64(b, 3)
			return b
		}(),
		"csr non-monotone": func() []byte {
			b := append(base(), payloadCSR)
			b = appendInt64(b, 2) // rows
			b = appendInt64(b, 2) // cols
			b = appendInt64(b, 1) // nnz
			for _, p := range []int64{0, 2, 1} {
				b = appendInt64(b, p) // row ptr exceeds nnz then shrinks
			}
			b = appendInt64(b, 0)                            // colidx
			b = appendInt64(b, int64(math.Float64bits(1.0))) // val
			return b
		}(),
		"trailing garbage": append(append(base(), payloadEmpty), 0xAA),
		"truncated header": base()[:17],
	}
	for name, payload := range cases {
		if _, err := decodeMessage(payload); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", name, err)
		}
	}
}
