package netfabric

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"matopt/internal/obs"
)

// LocalPeer is the peer-map entry meaning "this shard lives on the
// coordinator": its messages never touch a socket (or the wire meters).
const LocalPeer = "local"

// DefaultIOTimeout bounds every socket operation — dial, frame write,
// frame read — so a severed or stalled link always surfaces as an error
// instead of wedging a shard's producer; the dist runtime then maps it
// onto its exchange-timeout retry ladder.
const DefaultIOTimeout = 30 * time.Second

// connBufSize is the bufio depth on each side of a connection: writes
// coalesce into it so an exchange of many small tuples reaches the
// kernel in few large writes, flushed only when full or at FIN.
const connBufSize = 64 << 10

// TCP is the socket transport: shard s is hosted by peers[s % len(peers)],
// where each entry is either a worker address ("127.0.0.1:7070") or
// LocalPeer. Messages routed to a remote-hosted shard are framed to
// that worker, buffered there, and streamed back at Collect into the
// same per-shard inboxes the channel transport fills — the fabric's
// (key, seq) sort then erases any arrival-order difference, keeping
// outputs bit-identical across transports.
//
// Connections are pooled per peer and dialed lazily: a session checks
// one out per peer at Open (dialing only when the pool is dry), and
// returns it at a clean Collect. Failed or abandoned connections are
// discarded; the next checkout's dial is counted as a reconnect.
type TCP struct {
	peers     []string
	ioTimeout time.Duration

	mu     sync.Mutex
	idle   map[string][]*wireConn
	broken map[string]int // discarded conns per peer, pending re-dial
	closed bool
}

// TCPOption configures a TCP transport.
type TCPOption func(*TCP)

// WithIOTimeout overrides DefaultIOTimeout for every socket operation.
func WithIOTimeout(d time.Duration) TCPOption {
	return func(t *TCP) {
		if d > 0 {
			t.ioTimeout = d
		}
	}
}

// NewTCP builds the socket transport over the given peer map. At least
// one peer is required; an all-LocalPeer map is legal (and pointless).
func NewTCP(peers []string, opts ...TCPOption) (*TCP, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("netfabric: NewTCP requires at least one peer")
	}
	for _, p := range peers {
		if strings.TrimSpace(p) == "" {
			return nil, fmt.Errorf("netfabric: empty peer address")
		}
	}
	t := &TCP{
		peers:     append([]string(nil), peers...),
		ioTimeout: DefaultIOTimeout,
		idle:      make(map[string][]*wireConn),
		broken:    make(map[string]int),
	}
	for _, o := range opts {
		o(t)
	}
	return t, nil
}

// Name identifies the transport in reports and span tags.
func (t *TCP) Name() string { return "tcp" }

// PeerList renders the shard→peer map for span tags and reports.
func (t *TCP) PeerList() string { return strings.Join(t.peers, ",") }

func (t *TCP) peerOf(shard int) string { return t.peers[shard%len(t.peers)] }

// Close discards every pooled connection and refuses further sessions.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, conns := range t.idle {
		for _, c := range conns {
			c.nc.Close()
		}
	}
	t.idle = nil
	return nil
}

// wireConn is one pooled connection with its coalescing buffers.
type wireConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// checkout returns a pooled connection to addr, dialing when the pool
// is dry. Dials (and re-dials replacing a discarded connection) are
// metered per peer.
func (t *TCP) checkout(ctx context.Context, reg *obs.Registry, addr string) (*wireConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if conns := t.idle[addr]; len(conns) > 0 {
		c := conns[len(conns)-1]
		t.idle[addr] = conns[:len(conns)-1]
		t.mu.Unlock()
		return c, nil
	}
	redial := t.broken[addr] > 0
	if redial {
		t.broken[addr]--
	}
	t.mu.Unlock()
	d := net.Dialer{Timeout: t.ioTimeout}
	reg.Counter("dist.wire.dials", obs.L("peer", addr)).Inc()
	if redial {
		reg.Counter("dist.wire.reconnects", obs.L("peer", addr)).Inc()
	}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrWire, addr, err)
	}
	return &wireConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, connBufSize),
		bw: bufio.NewWriterSize(nc, connBufSize),
	}, nil
}

// checkin returns a connection to the pool after a clean session.
func (t *TCP) checkin(addr string, c *wireConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.nc.Close()
		return
	}
	t.idle[addr] = append(t.idle[addr], c)
}

// discard closes a connection whose session failed or was abandoned;
// the replacement dial will be counted as a reconnect.
func (t *TCP) discard(addr string, c *wireConn) {
	c.nc.Close()
	t.mu.Lock()
	t.broken[addr]++
	t.mu.Unlock()
}

// Open checks out one connection per remote peer hosting a shard of
// this exchange and announces the session with an OPEN frame. A refused
// dial fails the open with an ErrWire-wrapped error — the dist runtime
// retries the vertex like any exchange timeout.
func (t *TCP) Open(ctx context.Context, reg *obs.Registry, id ExchangeID, shards int) (Session, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &tcpSession{
		t:      t,
		shards: shards,
		local:  make([][]Message, shards),
		links:  make(map[string]*peerLink),
	}
	for sh := 0; sh < shards; sh++ {
		addr := t.peerOf(sh)
		if addr == LocalPeer || s.links[addr] != nil {
			continue
		}
		c, err := t.checkout(ctx, reg, addr)
		if err != nil {
			s.Abandon()
			return nil, err
		}
		l := &peerLink{
			addr:  addr,
			conn:  c,
			bytes: reg.Counter("dist.wire.bytes", obs.L("peer", addr)),
			msgs:  reg.Counter("dist.wire.messages", obs.L("peer", addr)),
		}
		s.links[addr] = l
		if err := l.write(t.ioTimeout, frameOpen, appendOpen(nil, id, shards)); err != nil {
			s.Abandon()
			return nil, err
		}
	}
	return s, nil
}

// peerLink is one session's connection to one worker. Sends from
// concurrent producers serialize on mu; the first wire error latches
// and fails every later use of the link.
type peerLink struct {
	addr  string
	bytes *obs.Counter
	msgs  *obs.Counter

	mu   sync.Mutex
	conn *wireConn
	err  error
}

// write frames and sends one frame under the link lock, metering the
// wire bytes. The deadline covers the implicit bufio flush, so a
// stalled socket surfaces here rather than wedging the producer.
func (l *peerLink) write(ioTimeout time.Duration, typ byte, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeLocked(ioTimeout, typ, payload)
}

func (l *peerLink) writeLocked(ioTimeout time.Duration, typ byte, payload []byte) error {
	if l.err != nil {
		return l.err
	}
	l.conn.nc.SetWriteDeadline(time.Now().Add(ioTimeout))
	n, err := writeFrame(l.conn.bw, typ, payload)
	l.bytes.Add(n)
	if err != nil {
		return l.failLocked(fmt.Errorf("%w: write to %s: %v", ErrWire, l.addr, err))
	}
	return nil
}

// failLocked latches the link's first error and discards its connection.
func (l *peerLink) failLocked(err error) error {
	if l.err == nil {
		l.err = err
	}
	return l.err
}

type tcpSession struct {
	t      *TCP
	shards int

	localMu sync.Mutex
	local   [][]Message

	links map[string]*peerLink
}

// Send routes one message: coordinator-hosted shards append to an
// in-memory inbox, remote-hosted shards get a MSG frame on their
// peer's link.
func (s *tcpSession) Send(dst int, m Message) error {
	addr := s.t.peerOf(dst)
	if addr == LocalPeer {
		s.localMu.Lock()
		s.local[dst] = append(s.local[dst], m)
		s.localMu.Unlock()
		return nil
	}
	l := s.links[addr]
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writeLocked(s.t.ioTimeout, frameMsg, appendShardMessage(nil, dst, m)); err != nil {
		return err
	}
	l.msgs.Inc()
	return nil
}

// Collect finishes every link concurrently — FIN, flush, then stream
// the worker's buffered inboxes back into recv. Distinct peers host
// disjoint shards, so the per-link readers write disjoint recv slots.
func (s *tcpSession) Collect() ([][]Message, error) {
	recv := s.local
	s.local = nil
	var wg sync.WaitGroup
	for _, l := range s.links {
		wg.Add(1)
		go func(l *peerLink) {
			defer wg.Done()
			s.collectLink(l, recv)
		}(l)
	}
	wg.Wait()
	var firstErr error
	for _, l := range s.links {
		l.mu.Lock()
		err, conn := l.err, l.conn
		l.conn = nil
		l.mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.t.checkin(l.addr, conn)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return recv, nil
}

func (s *tcpSession) collectLink(l *peerLink, recv [][]Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		if l.conn != nil {
			s.t.discard(l.addr, l.conn)
			l.conn = nil
		}
		return
	}
	fail := func(err error) {
		s.t.discard(l.addr, l.conn)
		l.conn = nil
		l.failLocked(err)
	}
	if err := l.writeLocked(s.t.ioTimeout, frameFin, nil); err != nil {
		fail(err)
		return
	}
	l.conn.nc.SetWriteDeadline(time.Now().Add(s.t.ioTimeout))
	if err := l.conn.bw.Flush(); err != nil {
		fail(fmt.Errorf("%w: flush to %s: %v", ErrWire, l.addr, err))
		return
	}
	for {
		l.conn.nc.SetReadDeadline(time.Now().Add(s.t.ioTimeout))
		typ, payload, err := readFrame(l.conn.br)
		if err != nil {
			fail(fmt.Errorf("%w: read from %s: %v", ErrWire, l.addr, err))
			return
		}
		l.bytes.Add(int64(frameHeaderLen + len(payload) + frameTrailerLen))
		switch typ {
		case frameInbox:
			shard, m, err := decodeShardMessage(payload)
			if err != nil {
				fail(fmt.Errorf("%w: from %s: %v", ErrWire, l.addr, err))
				return
			}
			if shard >= s.shards || s.t.peerOf(shard) != l.addr {
				fail(fmt.Errorf("%w: peer %s returned inbox for shard %d it does not host", ErrWire, l.addr, shard))
				return
			}
			l.msgs.Inc()
			recv[shard] = append(recv[shard], m)
		case frameEOF:
			l.conn.nc.SetReadDeadline(time.Time{})
			return
		default:
			fail(fmt.Errorf("%w: peer %s sent unexpected frame type %d", ErrWire, l.addr, typ))
			return
		}
	}
}

// Abandon discards every link's connection: mid-session state is
// unknowable after a timeout, so nothing returns to the pool.
func (s *tcpSession) Abandon() {
	for _, l := range s.links {
		l.mu.Lock()
		if l.conn != nil {
			s.t.discard(l.addr, l.conn)
			l.conn = nil
		}
		l.failLocked(fmt.Errorf("%w: session abandoned", ErrWire))
		l.mu.Unlock()
	}
	s.localMu.Lock()
	s.local = nil
	s.localMu.Unlock()
}
