package netfabric

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"matopt/internal/sparse"
	"matopt/internal/tensor"
)

// Wire framing. Every frame on a netfabric connection is
//
//	magic(2) | version(1) | type(1) | length(uint32 LE) | payload | crc32(uint32 LE)
//
// with the CRC (IEEE) taken over the payload bytes, so a truncated,
// bit-flipped, or mis-framed stream is detected before any payload is
// interpreted. The codec is versioned like the internal/plan plan
// codec: writers stamp frameVersion, readers accept the
// [minFrameVersion, frameVersion] range and reject anything else with
// ErrBadFrame so an old coordinator talking to a new worker fails
// loudly instead of misparsing.
const (
	frameVersion    = 1
	minFrameVersion = 1

	frameHeaderLen  = 8
	frameTrailerLen = 4

	// maxFramePayload bounds a single frame; a length field beyond it is
	// rejected before any allocation, so a corrupt or hostile stream
	// cannot ask the reader to allocate gigabytes.
	maxFramePayload = 1 << 28
)

var frameMagic = [2]byte{'m', 'f'}

// Frame types of the coordinator↔worker exchange protocol (tcp.go).
const (
	// frameOpen starts an exchange session: payload is the ExchangeID
	// header plus the total shard count.
	frameOpen = byte(iota + 1)
	// frameMsg carries one routed message: payload is the destination
	// shard plus an encoded Message.
	frameMsg
	// frameFin ends the send side of a session; the worker replies with
	// the buffered inboxes.
	frameFin
	// frameInbox carries one buffered message back: payload is the
	// owning shard plus an encoded Message.
	frameInbox
	// frameEOF ends the worker's inbox stream; the connection is then
	// idle and reusable.
	frameEOF
)

// writeFrame frames payload as typ and writes it to w in one Write call
// (the caller coalesces via bufio). Returns the bytes put on the wire.
func writeFrame(w io.Writer, typ byte, payload []byte) (int64, error) {
	if len(payload) > maxFramePayload {
		return 0, fmt.Errorf("%w: frame payload %d exceeds %d", ErrBadFrame, len(payload), maxFramePayload)
	}
	buf := make([]byte, frameHeaderLen+len(payload)+frameTrailerLen)
	buf[0], buf[1] = frameMagic[0], frameMagic[1]
	buf[2] = frameVersion
	buf[3] = typ
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[frameHeaderLen:], payload)
	crc := crc32.ChecksumIEEE(payload)
	binary.LittleEndian.PutUint32(buf[frameHeaderLen+len(payload):], crc)
	n, err := w.Write(buf)
	return int64(n), err
}

// readFrame reads one frame from r. Malformed frames — bad magic, a
// version outside the accepted range, an oversized length, a checksum
// mismatch — return an error wrapping ErrBadFrame; a cleanly closed
// stream returns io.EOF; a stream cut mid-frame returns
// io.ErrUnexpectedEOF.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != frameMagic[0] || hdr[1] != frameMagic[1] {
		return 0, nil, fmt.Errorf("%w: bad magic %02x%02x", ErrBadFrame, hdr[0], hdr[1])
	}
	if hdr[2] < minFrameVersion || hdr[2] > frameVersion {
		return 0, nil, fmt.Errorf("%w: version %d outside [%d, %d]", ErrBadFrame, hdr[2], minFrameVersion, frameVersion)
	}
	typ = hdr[3]
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d exceeds %d", ErrBadFrame, n, maxFramePayload)
	}
	body := make([]byte, int(n)+frameTrailerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	payload = body[:n]
	want := binary.LittleEndian.Uint32(body[n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrBadFrame, got, want)
	}
	return typ, payload, nil
}

// Message payload layout (all integers int64 LE, floats as IEEE-754
// bits LE):
//
//	msg key I, J | seq | tuple key I, J | payload kind(1) | payload
//
// with payload one of: nothing (payloadEmpty); rows, cols, rows*cols
// floats (payloadDense); rows, cols, nnz, rows+1 row pointers, nnz
// column indices, nnz floats (payloadCSR); one float (payloadVal).
const (
	payloadEmpty = byte(iota)
	payloadDense
	payloadCSR
	payloadVal
)

// appendMessage serializes m onto buf and returns the extended slice.
func appendMessage(buf []byte, m Message) []byte {
	buf = appendInt64(buf, m.Key.I)
	buf = appendInt64(buf, m.Key.J)
	buf = appendInt64(buf, m.Seq)
	buf = appendInt64(buf, m.Tuple.Key.I)
	buf = appendInt64(buf, m.Tuple.Key.J)
	switch {
	case m.Tuple.Dense != nil:
		d := m.Tuple.Dense
		buf = append(buf, payloadDense)
		buf = appendInt64(buf, int64(d.Rows))
		buf = appendInt64(buf, int64(d.Cols))
		for _, v := range d.Data {
			buf = appendInt64(buf, int64(math.Float64bits(v)))
		}
	case m.Tuple.CSR != nil:
		c := m.Tuple.CSR
		buf = append(buf, payloadCSR)
		buf = appendInt64(buf, int64(c.Rows))
		buf = appendInt64(buf, int64(c.Cols))
		buf = appendInt64(buf, int64(len(c.Val)))
		for _, p := range c.RowPtr {
			buf = appendInt64(buf, int64(p))
		}
		for _, ci := range c.ColIdx {
			buf = appendInt64(buf, int64(ci))
		}
		for _, v := range c.Val {
			buf = appendInt64(buf, int64(math.Float64bits(v)))
		}
	case m.Tuple.IsVal:
		buf = append(buf, payloadVal)
		buf = appendInt64(buf, int64(math.Float64bits(m.Tuple.Val)))
	default:
		buf = append(buf, payloadEmpty)
	}
	return buf
}

// decodeMessage parses one serialized Message, validating every
// declared size against the remaining bytes before allocating, and the
// CSR structure via sparse.NewCSR — a frame that passed the checksum
// can still be semantically hostile, and must fail with ErrBadFrame
// rather than panic. The whole payload must be consumed.
func decodeMessage(b []byte) (Message, error) {
	var m Message
	c := cursor{b: b}
	m.Key.I = c.int64()
	m.Key.J = c.int64()
	m.Seq = c.int64()
	m.Tuple.Key.I = c.int64()
	m.Tuple.Key.J = c.int64()
	kind := c.byte()
	if c.err != nil {
		return Message{}, c.err
	}
	switch kind {
	case payloadEmpty:
	case payloadDense:
		rows := c.dim()
		cols := c.dim()
		if c.err != nil {
			return Message{}, c.err
		}
		n, err := c.need(rows * cols)
		if err != nil {
			return Message{}, err
		}
		d := &tensor.Dense{Rows: rows, Cols: cols, Data: make([]float64, n)}
		for i := range d.Data {
			d.Data[i] = math.Float64frombits(uint64(c.int64()))
		}
		m.Tuple.Dense = d
	case payloadCSR:
		rows := c.dim()
		cols := c.dim()
		nnz64 := c.int64()
		if c.err != nil {
			return Message{}, c.err
		}
		if nnz64 < 0 || nnz64 > maxFramePayload {
			return Message{}, fmt.Errorf("%w: nnz %d outside [0, %d]", ErrBadFrame, nnz64, maxFramePayload)
		}
		nnz := int(nnz64)
		if _, err := c.need(rows + 1 + 2*nnz); err != nil {
			return Message{}, err
		}
		rowPtr := make([]int, rows+1)
		for i := range rowPtr {
			rowPtr[i] = int(c.int64())
		}
		colIdx := make([]int, nnz)
		for i := range colIdx {
			colIdx[i] = int(c.int64())
		}
		val := make([]float64, nnz)
		for i := range val {
			val[i] = math.Float64frombits(uint64(c.int64()))
		}
		if c.err != nil {
			return Message{}, c.err
		}
		csr, err := sparse.NewCSR(rows, cols, rowPtr, colIdx, val)
		if err != nil {
			return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		m.Tuple.CSR = csr
	case payloadVal:
		m.Tuple.Val = math.Float64frombits(uint64(c.int64()))
		m.Tuple.IsVal = true
	default:
		return Message{}, fmt.Errorf("%w: unknown payload kind %d", ErrBadFrame, kind)
	}
	if c.err != nil {
		return Message{}, c.err
	}
	if len(c.b) != c.off {
		return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(c.b)-c.off)
	}
	return m, nil
}

func appendInt64(buf []byte, v int64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(v))
	return append(buf, w[:]...)
}

// cursor walks a payload, latching the first error so decode code reads
// straight through without per-field checks.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) int64() int64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.err = fmt.Errorf("%w: truncated payload at offset %d", ErrBadFrame, c.off)
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.err = fmt.Errorf("%w: truncated payload at offset %d", ErrBadFrame, c.off)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

// dim reads a matrix dimension: positive and small enough that a
// product of two cannot overflow int.
func (c *cursor) dim() int {
	v := c.int64()
	if c.err != nil {
		return 0
	}
	if v <= 0 || v > maxFramePayload {
		c.err = fmt.Errorf("%w: invalid dimension %d", ErrBadFrame, v)
		return 0
	}
	return int(v)
}

// need checks that words 8-byte values actually remain in the payload —
// the declared sizes are validated against the bytes on the wire before
// any allocation is sized from them.
func (c *cursor) need(words int) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	if words < 0 || c.off+8*words > len(c.b) {
		return 0, fmt.Errorf("%w: declared size %d exceeds payload", ErrBadFrame, words)
	}
	return words, nil
}

// Header payloads of the session-control frames.

// appendOpen serializes the OPEN header: exchange identity + shard count.
func appendOpen(buf []byte, id ExchangeID, shards int) []byte {
	buf = appendInt64(buf, int64(id.Vertex))
	buf = appendInt64(buf, int64(id.Attempt))
	buf = appendInt64(buf, int64(shards))
	buf = appendString(buf, id.Kind)
	buf = appendString(buf, id.Label)
	return buf
}

func decodeOpen(b []byte) (id ExchangeID, shards int, err error) {
	c := cursor{b: b}
	id.Vertex = int(c.int64())
	id.Attempt = int(c.int64())
	n := c.int64()
	id.Kind = c.string()
	id.Label = c.string()
	if c.err != nil {
		return ExchangeID{}, 0, c.err
	}
	if n <= 0 || n > maxShards {
		return ExchangeID{}, 0, fmt.Errorf("%w: shard count %d outside (0, %d]", ErrBadFrame, n, maxShards)
	}
	if len(c.b) != c.off {
		return ExchangeID{}, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(c.b)-c.off)
	}
	return id, int(n), nil
}

// maxShards bounds the shard count a frame may declare; far above any
// real topology, low enough that per-shard allocations stay sane.
const maxShards = 1 << 16

// appendShardMessage serializes a (shard, Message) pair — the payload
// of both MSG (shard = destination) and INBOX (shard = owner) frames.
func appendShardMessage(buf []byte, shard int, m Message) []byte {
	buf = appendInt64(buf, int64(shard))
	return appendMessage(buf, m)
}

func decodeShardMessage(b []byte) (int, Message, error) {
	c := cursor{b: b}
	shard := c.int64()
	if c.err != nil {
		return 0, Message{}, c.err
	}
	if shard < 0 || shard >= maxShards {
		return 0, Message{}, fmt.Errorf("%w: shard %d outside [0, %d)", ErrBadFrame, shard, maxShards)
	}
	m, err := decodeMessage(b[c.off:])
	if err != nil {
		return 0, Message{}, err
	}
	return int(shard), m, nil
}

func appendString(buf []byte, s string) []byte {
	buf = appendInt64(buf, int64(len(s)))
	return append(buf, s...)
}

func (c *cursor) string() string {
	n := c.int64()
	if c.err != nil {
		return ""
	}
	if n < 0 || n > 1<<16 || c.off+int(n) > len(c.b) {
		c.err = fmt.Errorf("%w: invalid string length %d", ErrBadFrame, n)
		return ""
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}
