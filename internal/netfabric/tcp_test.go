package netfabric

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"matopt/internal/engine"
	"matopt/internal/obs"
	"matopt/internal/testutil"
)

// startServer runs a worker server on an ephemeral loopback listener
// and returns its address; cleanup closes it.
func startServer(t *testing.T, opts ...ServerOption) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func testID(attempt int) ExchangeID {
	return ExchangeID{Vertex: 1, Kind: "shuffle", Label: "shuffle(t)", Attempt: attempt}
}

// TestTCPExchangeRoundTrip pushes messages for every shard through a
// mixed local/remote peer map and checks each inbox holds exactly the
// messages routed to it, bit-identical after the (key, seq) sort.
func TestTCPExchangeRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	tp, err := NewTCP([]string{LocalPeer, addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	reg := obs.NewRegistry()
	const shards = 5
	sess, err := tp.Open(context.Background(), reg, testID(0), shards)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := make([][]Message, shards)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for src := 0; src < shards; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				dst := (src + i) % shards
				k := engine.Key{I: int64(src), J: int64(i)}
				m := Message{Key: k, Seq: int64(i), Tuple: denseTuple(k, 2, 3, float64(src*100+i))}
				if err := sess.Send(dst, m); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
				mu.Lock()
				want[dst] = append(want[dst], m)
				mu.Unlock()
			}
		}(src)
	}
	wg.Wait()
	got, err := sess.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	for s := 0; s < shards; s++ {
		SortMessages(got[s])
		SortMessages(want[s])
		if len(got[s]) != len(want[s]) {
			t.Fatalf("shard %d: got %d messages, want %d", s, len(got[s]), len(want[s]))
		}
		for i := range got[s] {
			if !messagesEqual(got[s][i], want[s][i]) {
				t.Fatalf("shard %d message %d differs", s, i)
			}
		}
	}
	if v := counterValue(reg, "dist.wire.dials"); v != 1 {
		t.Fatalf("dials = %d, want 1", v)
	}
	if v := counterValue(reg, "dist.wire.bytes"); v == 0 {
		t.Fatal("no wire bytes metered")
	}
}

// TestTCPConnectionPooling runs sessions back to back and checks the
// second reuses the first's connection instead of dialing again.
func TestTCPConnectionPooling(t *testing.T) {
	_, addr := startServer(t)
	tp, err := NewTCP([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	reg := obs.NewRegistry()
	for attempt := 0; attempt < 3; attempt++ {
		sess, err := tp.Open(context.Background(), reg, testID(attempt), 2)
		if err != nil {
			t.Fatalf("Open %d: %v", attempt, err)
		}
		k := engine.Key{I: int64(attempt)}
		if err := sess.Send(1, Message{Key: k, Tuple: denseTuple(k, 1, 1, 1)}); err != nil {
			t.Fatalf("Send %d: %v", attempt, err)
		}
		recv, err := sess.Collect()
		if err != nil {
			t.Fatalf("Collect %d: %v", attempt, err)
		}
		if len(recv[1]) != 1 {
			t.Fatalf("attempt %d: shard 1 got %d messages", attempt, len(recv[1]))
		}
	}
	if v := counterValue(reg, "dist.wire.dials"); v != 1 {
		t.Fatalf("dials = %d after 3 pooled sessions, want 1", v)
	}
	if v := counterValue(reg, "dist.wire.reconnects"); v != 0 {
		t.Fatalf("reconnects = %d, want 0", v)
	}
}

// TestTCPDialRefused opens against a peer that is not listening: the
// session must fail with ErrWire, not hang or panic.
func TestTCPDialRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here any more
	tp, err := NewTCP([]string{addr}, WithIOTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	_, err = tp.Open(context.Background(), obs.NewRegistry(), testID(0), 2)
	if !errors.Is(err, ErrWire) {
		t.Fatalf("Open against dead peer: got %v, want ErrWire", err)
	}
}

// TestTCPSeveredMidExchange has the server cut the connection right
// after OPEN; the failure must surface as ErrWire from Collect (or an
// earlier Send), and the next session must recover over a fresh dial,
// counted as a reconnect.
func TestTCPSeveredMidExchange(t *testing.T) {
	_, addr := startServer(t, SeverSessions(1))
	tp, err := NewTCP([]string{addr}, WithIOTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	reg := obs.NewRegistry()
	sess, err := tp.Open(context.Background(), reg, testID(0), 2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := engine.Key{I: 1}
	var sendErr error
	for i := 0; i < 10_000 && sendErr == nil; i++ {
		sendErr = sess.Send(1, Message{Key: k, Seq: int64(i), Tuple: denseTuple(k, 8, 8, 1)})
	}
	if sendErr != nil {
		if !errors.Is(sendErr, ErrWire) {
			t.Fatalf("Send on severed conn: got %v, want ErrWire", sendErr)
		}
		sess.Abandon()
	} else if _, err := sess.Collect(); !errors.Is(err, ErrWire) {
		t.Fatalf("Collect on severed conn: got %v, want ErrWire", err)
	}

	// Recovery: session 2 is not severed and must work over a new dial.
	sess, err = tp.Open(context.Background(), reg, testID(1), 2)
	if err != nil {
		t.Fatalf("Open after sever: %v", err)
	}
	if err := sess.Send(1, Message{Key: k, Tuple: denseTuple(k, 1, 1, 2)}); err != nil {
		t.Fatalf("Send after sever: %v", err)
	}
	recv, err := sess.Collect()
	if err != nil {
		t.Fatalf("Collect after sever: %v", err)
	}
	if len(recv[1]) != 1 {
		t.Fatalf("shard 1 got %d messages after recovery", len(recv[1]))
	}
	if v := counterValue(reg, "dist.wire.reconnects"); v != 1 {
		t.Fatalf("reconnects = %d, want 1", v)
	}
}

// TestTCPAbandonDiscardsConnections abandons a healthy session and
// checks the transport does not pool its connection (the next session
// dials afresh).
func TestTCPAbandonDiscardsConnections(t *testing.T) {
	_, addr := startServer(t)
	tp, err := NewTCP([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	reg := obs.NewRegistry()
	sess, err := tp.Open(context.Background(), reg, testID(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	sess.Abandon()
	sess, err = tp.Open(context.Background(), reg, testID(1), 2)
	if err != nil {
		t.Fatalf("Open after abandon: %v", err)
	}
	if _, err := sess.Collect(); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if v := counterValue(reg, "dist.wire.dials"); v != 2 {
		t.Fatalf("dials = %d, want 2 (abandoned conns must not be pooled)", v)
	}
}

// TestServerShutdownLeakFree drives sessions, closes everything, and
// requires the process back at its goroutine baseline: Server.Close
// must tear down the accept loop and every connection handler, and
// TCP.Close every pooled connection.
func TestServerShutdownLeakFree(t *testing.T) {
	testutil.CheckGoroutines(t, func() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer()
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		tp, err := NewTCP([]string{LocalPeer, ln.Addr().String()})
		if err != nil {
			t.Fatal(err)
		}
		for attempt := 0; attempt < 2; attempt++ {
			sess, err := tp.Open(context.Background(), obs.NewRegistry(), testID(attempt), 4)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < 4; d++ {
				k := engine.Key{I: int64(d)}
				if err := sess.Send(d, Message{Key: k, Tuple: denseTuple(k, 2, 2, 1)}); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sess.Collect(); err != nil {
				t.Fatal(err)
			}
		}
		if err := tp.Close(); err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("Serve: %v", err)
		}
	})
}

// TestTCPClosedTransport checks use after Close fails typed.
func TestTCPClosedTransport(t *testing.T) {
	_, addr := startServer(t)
	tp, err := NewTCP([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	tp.Close()
	if _, err := tp.Open(context.Background(), nil, testID(0), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Open after Close: got %v, want ErrClosed", err)
	}
}

// TestTCPConcurrentSessions exchanges on several sessions at once —
// independent DAG vertices do this — each getting its own connection.
func TestTCPConcurrentSessions(t *testing.T) {
	_, addr := startServer(t)
	tp, err := NewTCP([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	reg := obs.NewRegistry()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := tp.Open(context.Background(), reg, testID(i), 3)
			if err != nil {
				errs[i] = err
				return
			}
			for d := 0; d < 3; d++ {
				k := engine.Key{I: int64(i), J: int64(d)}
				if err := sess.Send(d, Message{Key: k, Tuple: denseTuple(k, 2, 2, float64(i))}); err != nil {
					errs[i] = err
					return
				}
			}
			recv, err := sess.Collect()
			if err != nil {
				errs[i] = err
				return
			}
			for d := 0; d < 3; d++ {
				if len(recv[d]) != 1 {
					errs[i] = fmt.Errorf("session %d shard %d: %d messages", i, d, len(recv[d]))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
}

func counterValue(reg *obs.Registry, name string) int64 {
	var total int64
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			total += m.Value
		}
	}
	return total
}
