package netfabric

import (
	"context"
	"sync"

	"matopt/internal/obs"
)

// chanTransport is the default in-process transport: every shard's inbox
// is a buffered channel drained by a dedicated collector goroutine,
// which makes the pattern deadlock-free regardless of fan-in. This is
// the exact mechanism the dist fabric used before the Transport
// interface was extracted — same buffer depth, same collector shape,
// same close/drain shutdown — so behavior is unchanged byte for byte.
type chanTransport struct{}

// Chan returns the in-process channel transport, the dist runtime's
// default. It holds no resources; Close is a no-op and one instance may
// serve any number of runs concurrently.
func Chan() Transport { return chanTransport{} }

func (chanTransport) Name() string { return "chan" }

func (chanTransport) Close() error { return nil }

func (chanTransport) Open(_ context.Context, _ *obs.Registry, _ ExchangeID, shards int) (Session, error) {
	s := &chanSession{
		chans: make([]chan Message, shards),
		recv:  make([][]Message, shards),
	}
	for i := 0; i < shards; i++ {
		ch := make(chan Message, 128)
		s.chans[i] = ch
		s.collectors.Add(1)
		go func(i int, ch <-chan Message) {
			defer s.collectors.Done()
			for m := range ch {
				s.recv[i] = append(s.recv[i], m)
			}
		}(i, ch)
	}
	return s, nil
}

type chanSession struct {
	chans      []chan Message
	recv       [][]Message
	collectors sync.WaitGroup
}

// Send blocks when dst's buffer is full (back-pressure) and never fails:
// in-process delivery has no wire to break.
func (s *chanSession) Send(dst int, m Message) error {
	s.chans[dst] <- m
	return nil
}

// Collect closes every inbox — producers must have returned — and waits
// for the collectors to drain what remains, even on an error or cancel
// path upstream.
func (s *chanSession) Collect() ([][]Message, error) {
	s.drain()
	return s.recv, nil
}

// Abandon is Collect for the timed-out path: the buffers are drained so
// the collectors terminate, then dropped.
func (s *chanSession) Abandon() { s.drain() }

func (s *chanSession) drain() {
	for _, ch := range s.chans {
		close(ch)
	}
	s.collectors.Wait()
}
