// Package netfabric is the pluggable exchange transport under the dist
// runtime's shuffle fabric. The fabric in internal/dist decides *what*
// moves (which tuples, to which shard, metered how); a Transport decides
// *how* the bytes get there. Two implementations ship:
//
//   - Chan keeps every delivery in-process over buffered channels — the
//     exact mechanism the fabric used before the interface was extracted,
//     byte-for-byte unchanged behavior, and the default.
//   - TCP maps shards onto peer worker processes (cmd/matoptd -worker)
//     and moves every message to a remote-hosted shard over a real
//     socket: length-prefixed binary frames (codec.go), per-peer
//     connection pooling with lazy dial, coalesced writes, and read
//     loops that feed the same collector path the channel transport
//     fills. Wire traffic is metered into the run's registry
//     (dist.wire.*) next to the fabric's dist.exchange.* meters.
//
// Determinism carries across transports because the fabric sorts every
// shard's inbox by (Key, Seq) before any reduce replays it — arrival
// order over a socket is as irrelevant as arrival order over a channel,
// and the dist runtime's outputs stay bit-identical to the sequential
// engine. Transport failures (dial refused, connection reset, I/O
// deadline) surface as errors wrapping ErrWire; the dist runtime maps
// them onto its ErrExchangeTimeout retry/cascade/fallback ladder, so
// fault tolerance carries over to the wire for free (DESIGN.md §16).
package netfabric

import (
	"context"
	"errors"
	"sort"

	"matopt/internal/engine"
	"matopt/internal/obs"
)

// Message is one tuple in flight plus its deterministic reduce
// position: Seq is the contraction index of a partial result, so the
// receiving shard can sort contributions into the exact order the
// sequential engine folds them in. Within one exchange (Key, Seq) is
// unique, which is what makes arrival order irrelevant.
type Message struct {
	// Key is the tuple's chunk coordinate.
	Key engine.Key
	// Seq orders same-key contributions for the deterministic reduce.
	Seq int64
	// Tuple is the payload.
	Tuple engine.Tuple
}

// ExchangeID names one exchange session for framing, tracing and
// failure messages: the consuming vertex, the movement kind and label
// the fabric meters under, and the attempt number (retries reopen the
// same logical exchange with a fresh session).
type ExchangeID struct {
	// Vertex is the consuming vertex's ID.
	Vertex int
	// Kind is the movement pattern (broadcast, shuffle, aggregate, ...).
	Kind string
	// Label is the fabric's human-readable exchange label.
	Label string
	// Attempt is the consuming vertex's attempt number.
	Attempt int
}

// Typed failure surface of the transport layer.
var (
	// ErrWire reports a transport-level failure: a refused dial, a
	// connection reset or severed mid-exchange, an I/O deadline, or a
	// corrupt frame from a peer. Wire failures are transient from the
	// dist runtime's point of view — it maps them onto its
	// ErrExchangeTimeout retry ladder.
	ErrWire = errors.New("netfabric: wire failure")
	// ErrBadFrame reports a malformed wire frame: short read, bad magic,
	// unsupported version, checksum mismatch, or a payload whose
	// declared sizes do not add up. The codec returns it (wrapped with
	// detail) instead of ever panicking on hostile input.
	ErrBadFrame = errors.New("netfabric: bad frame")
	// ErrClosed reports use of a transport after Close.
	ErrClosed = errors.New("netfabric: transport closed")
)

// Session is one exchange in flight: producers Send messages to
// destination shards, then exactly one of Collect or Abandon finishes
// the session. Send is safe for concurrent use; Collect and Abandon are
// not, and must be called only after every producer has returned.
type Session interface {
	// Send delivers one message to shard dst's inbox. It may block for
	// back-pressure (a full channel buffer, a busy socket) and returns
	// an error wrapping ErrWire when the transport fails.
	Send(dst int, m Message) error
	// Collect closes the send side, waits for every inbox to settle,
	// and returns each shard's received messages in arrival order (the
	// fabric sorts). The session must not be used afterwards.
	Collect() ([][]Message, error)
	// Abandon releases the session's resources without collecting —
	// the timed-out and failed paths. Buffered messages are dropped; a
	// TCP session's connections are discarded rather than pooled.
	Abandon()
}

// Transport moves exchange messages between shards. Implementations
// must allow concurrent sessions (independent DAG vertices exchange
// concurrently) and keep Open cheap — it runs once per exchange.
type Transport interface {
	// Name tags spans and reports: "chan" or "tcp".
	Name() string
	// Open starts a session for one exchange across shards inboxes.
	// reg is the executing run's metrics registry; transports meter
	// wire traffic (dist.wire.*) into it. A nil reg disables metering.
	Open(ctx context.Context, reg *obs.Registry, id ExchangeID, shards int) (Session, error)
	// Close releases long-lived resources (pooled connections). The
	// transport must not be used afterwards.
	Close() error
}

// SortMessages orders a shard's received messages by (Key, Seq) — the
// deterministic reduce-replay order every transport's inbox is sorted
// into before the dist runtime folds it.
func SortMessages(ms []Message) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Key.I != ms[j].Key.I {
			return ms[i].Key.I < ms[j].Key.I
		}
		if ms[i].Key.J != ms[j].Key.J {
			return ms[i].Key.J < ms[j].Key.J
		}
		return ms[i].Seq < ms[j].Seq
	})
}
