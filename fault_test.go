package matopt

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"matopt/internal/costmodel"
	"matopt/internal/tensor"
)

// faultGolden builds a small multi-op computation, optimizes it, and
// returns the plan plus inputs and the sequential-engine golden output.
func faultGolden(t *testing.T) (*Plan, map[string]*Dense, map[int]*Dense) {
	t.Helper()
	b := NewBuilder()
	x := b.Input("X", 120, 400, RowStrips(100))
	w := b.Input("W", 400, 80, Single())
	h := b.ReLU(b.MatMul(x, w))
	b.MatMul(b.Transpose(h), h)
	cl := costmodel.LocalTest(3)
	plan, err := NewOptimizer(cl).Optimize(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	inputs := map[string]*Dense{
		"X": tensor.RandNormal(rng, 120, 400),
		"W": tensor.RandNormal(rng, 400, 80),
	}
	want, err := NewExecutor(cl).Run(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return plan, inputs, want
}

func requireBitIdentical(t *testing.T, name string, got, want map[int]*Dense) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", name, len(got), len(want))
	}
	for id, w := range want {
		g := got[id]
		if g == nil || g.Rows != w.Rows || g.Cols != w.Cols {
			t.Fatalf("%s: output %d missing or misshapen", name, id)
		}
		for i := range w.Data {
			if math.Float64bits(g.Data[i]) != math.Float64bits(w.Data[i]) {
				t.Fatalf("%s: output %d entry %d differs: bits %x != %x",
					name, id, i, math.Float64bits(g.Data[i]), math.Float64bits(w.Data[i]))
			}
		}
	}
}

// TestExecutorFaultPaths is the three-way golden comparison the fault
// model promises: fault-free dist, faulted-and-recovered dist, and the
// retries-exhausted fallback path must all produce bit-identical
// outputs to the sequential engine.
func TestExecutorFaultPaths(t *testing.T) {
	plan, inputs, want := faultGolden(t)
	cl := costmodel.LocalTest(3)

	// Fault-free dist run.
	clean := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4))
	got, err := clean.Run(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "fault-free dist", got, want)
	if rep := clean.DistReport(); rep == nil || rep.Retries != 0 || rep.Degraded {
		t.Fatalf("fault-free report should be quiet, got %+v", rep)
	}

	// Faulted and recovered: crash every vertex's first attempt.
	var faults []Fault
	for _, v := range plan.Annotation().Graph.Vertices {
		faults = append(faults, Fault{Kind: FaultCrash, Vertex: v.ID})
	}
	recov := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4),
		WithFaults(NewFaultPlan(faults...)))
	got, err = recov.Run(plan, inputs)
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	requireBitIdentical(t, "faulted-and-recovered dist", got, want)
	rep := recov.DistReport()
	if rep == nil || rep.Retries != int64(len(faults)) || rep.FaultsInjected != int64(len(faults)) {
		t.Fatalf("recovery report should count %d faults and retries, got %+v", len(faults), rep)
	}
	if rep.Degraded {
		t.Fatal("recovered run must not report a downgrade")
	}

	// Retries exhausted → graceful degradation to the sequential engine.
	v := plan.Annotation().Graph.Vertices[0].ID
	always := NewFaultPlan(
		Fault{Kind: FaultCrash, Vertex: v, Attempt: 0},
		Fault{Kind: FaultCrash, Vertex: v, Attempt: 1},
	)
	degraded := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4),
		WithFaults(always), WithMaxRetries(1), WithFallback())
	got, err = degraded.Run(plan, inputs)
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	requireBitIdentical(t, "sequential fallback", got, want)
	rep = degraded.DistReport()
	if rep == nil || !rep.Degraded {
		t.Fatalf("fallback must be reported on DistReport, got %+v", rep)
	}
	if rep.DegradedCause == "" {
		t.Fatal("downgrade cause missing from report")
	}

	// The same schedule without WithFallback must surface the typed error.
	strict := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4),
		WithFaults(NewFaultPlan(
			Fault{Kind: FaultCrash, Vertex: v, Attempt: 0},
			Fault{Kind: FaultCrash, Vertex: v, Attempt: 1},
		)), WithMaxRetries(1))
	if _, err := strict.Run(plan, inputs); !errors.Is(err, ErrRetriesExhausted) || !errors.Is(err, ErrShardFailed) {
		t.Fatalf("want ErrRetriesExhausted wrapping ErrShardFailed, got %v", err)
	}
}

// TestFallbackNeverMasksCancellation: a cancelled context aborts the
// run with context.Canceled even when fallback is enabled — degrading
// to the sequential engine must not swallow the caller's cancel.
func TestFallbackNeverMasksCancellation(t *testing.T) {
	plan, inputs, _ := faultGolden(t)
	cl := costmodel.LocalTest(3)
	exec := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(4), WithFallback())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := exec.RunCtx(ctx, plan, inputs); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRandomFaultsDeterministic: the same seed yields the same
// schedule; different seeds differ.
func TestRandomFaultsDeterministic(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4}
	a := RandomFaults(42, 8, ids, 4).Faults()
	b := RandomFaults(42, 8, ids, 4).Faults()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("want 8 faults, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := RandomFaults(43, 8, ids, 4).Faults()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestExecutorDistReportRaces exercises the lastReport mutex under
// concurrent runs and reads.
func TestExecutorDistReportRaces(t *testing.T) {
	plan, inputs, want := faultGolden(t)
	cl := costmodel.LocalTest(3)
	exec := NewExecutor(cl, WithEngineKind(DistEngine), WithShards(2))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			exec.DistReport()
			time.Sleep(time.Millisecond)
		}
	}()
	got, err := exec.Run(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "concurrent-report dist", got, want)
	<-done
}
