// Command matchain reproduces the matrix-multiplication-chain study of
// §8.2 (Figures 4 and 10) in miniature: for each of the three input size
// sets it optimizes T1←A×B; T2←C×D; O←((T1×E)×(T1×T2))×(T2×F) and prints
// the auto-generated plan's predicted time against the hand-written and
// all-tile baselines, plus the physical design the optimizer picked.
package main

import (
	"fmt"
	"log"

	"matopt/internal/baseline"
	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/workload"
)

func main() {
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	for _, sz := range workload.ChainSizeSets() {
		g, err := workload.MatMulChain(sz)
		if err != nil {
			log.Fatal(err)
		}
		auto, err := core.Optimize(g, env)
		if err != nil {
			log.Fatal(err)
		}
		autoRep, err := engine.Simulate(auto, env)
		if err != nil {
			log.Fatal(err)
		}
		sim := func(ann *core.Annotation, err error) string {
			if err != nil {
				return "Fail"
			}
			rep, err := engine.Simulate(ann, env)
			if err != nil {
				return "Fail"
			}
			return fmt.Sprintf("%8.0fs", rep.Seconds)
		}
		fmt.Printf("%s: auto %8.0fs (opt %.1fs)   hand %s   all-tile %s\n",
			sz.Name, autoRep.Seconds, auto.OptSeconds,
			sim(baseline.HandWritten(g, env)),
			sim(baseline.AllTile(g, env)))
	}

	// Show the full physical design for Size Set 1.
	g, err := workload.MatMulChain(workload.ChainSizeSets()[0])
	if err != nil {
		log.Fatal(err)
	}
	ann, err := core.Optimize(g, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOptimizer's physical design for Size Set 1:")
	fmt.Print(ann.Describe())
}
