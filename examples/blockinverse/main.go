// Command blockinverse runs the two-level block-wise matrix inverse of
// §8.2 (Figure 9): a Graybill block-inverse identity applied at two
// nesting levels, optimized by the frontier algorithm, then executed at
// a reduced scale and checked against a direct inverse.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"matopt/internal/baseline"
	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/tensor"
	"matopt/internal/workload"
)

func main() {
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())

	// Paper-scale plan quality (simulated).
	g, err := workload.BlockInverse2(workload.PaperBlockInverse())
	if err != nil {
		log.Fatal(err)
	}
	auto, err := core.Optimize(g, env)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := engine.Simulate(auto, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-level 20K×20K block inverse on 10 workers (%d vertices):\n", len(g.Vertices))
	fmt.Printf("  %-9s %6.0fs (optimizer %.1fs)\n", "auto:", rep.Seconds, auto.OptSeconds)
	show := func(name string, ann *core.Annotation, err error) {
		if err != nil {
			fmt.Printf("  %-9s Fail (%v)\n", name+":", err)
			return
		}
		r, err := engine.Simulate(ann, env)
		if err != nil {
			fmt.Printf("  %-9s Fail\n", name+":")
			return
		}
		fmt.Printf("  %-9s %6.0fs\n", name+":", r.Seconds)
	}
	hw, err := baseline.HandWritten(g, env)
	show("hand", hw, err)
	at, err := baseline.AllTile(g, env)
	show("all-tile", at, err)

	// Execute a reduced instance and validate against a direct inverse.
	cfg := workload.BlockInverseConfig{Outer: 60, Inner1: 20, Inner2: 40, BlockFormat: format.NewSingle()}
	sg, err := workload.BlockInverse2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	small := core.NewEnv(costmodel.LocalTest(3), format.All())
	sann, err := core.Optimize(sg, small)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n, n1 := int(cfg.Outer), int(cfg.Inner1)
	full := tensor.RandNormal(rng, 2*n, 2*n)
	for i := 0; i < 2*n; i++ {
		full.Set(i, i, full.At(i, i)+float64(2*n))
	}
	inputs := map[string]*tensor.Dense{
		"A11": full.Slice(0, n1, 0, n1), "A12": full.Slice(0, n1, n1, n),
		"A21": full.Slice(n1, n, 0, n1), "A22": full.Slice(n1, n, n1, n),
		"B1": full.Slice(0, n1, n, 2*n), "B2": full.Slice(n1, n, n, 2*n),
		"C1": full.Slice(n, 2*n, 0, n1), "C2": full.Slice(n, 2*n, n1, n),
		"D": full.Slice(n, 2*n, n, 2*n),
	}
	// The outer Schur-complement inverse is D̄, the bottom-right block.
	// It is an intermediate (not a sink), so the run must keep it.
	sinvID := -1
	for _, v := range sg.Vertices {
		if !v.IsSource && v.Op.Kind.String() == "inverse" {
			sinvID = v.ID
		}
	}
	eng := engine.New(small.Cluster)
	rels, err := eng.RunKeep(sann, inputs, []int{sinvID})
	if err != nil {
		log.Fatal(err)
	}
	wantInv, err := tensor.Inverse(full)
	if err != nil {
		log.Fatal(err)
	}
	got, err := eng.Collect(rels[sinvID])
	if err != nil {
		log.Fatal(err)
	}
	diff := tensor.MaxAbsDiff(got, wantInv.Slice(n, 2*n, n, 2*n))
	fmt.Printf("\nreduced-scale execution: D̄ block max deviation from direct inverse = %.2e\n", diff)
}
