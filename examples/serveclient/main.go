// Command serveclient demonstrates the serving layer end to end in one
// process: it starts a serve.Server on a loopback listener, plays the
// part of several HTTP clients against it — optimize, coalesced
// concurrent optimizes, execute on two engines, a plan round-trip —
// prints a transcript, and drains the server gracefully. It is the
// programmatic twin of running `matoptd` and poking it with curl.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"

	"matopt"
	"matopt/internal/serve"
)

func main() {
	srv := serve.New(serve.Config{
		Cluster: matopt.ClusterR5D(5),
		Workers: 4,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving on %s\n\n", ts.URL)

	post := func(path, body string) map[string]any {
		res, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			log.Fatalf("POST %s: %v", path, err)
		}
		raw, _ := io.ReadAll(res.Body)
		res.Body.Close()
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			log.Fatalf("POST %s: %s", path, raw)
		}
		if res.StatusCode != http.StatusOK {
			log.Fatalf("POST %s: %d: %s", path, res.StatusCode, raw)
		}
		return m
	}

	// One optimization: the paper's FFNN update at in-process scale.
	fmt.Println("== POST /optimize {\"workload\":\"ffnn\"}")
	opt := post("/optimize", `{"workload":"ffnn"}`)
	fmt.Printf("fingerprint %.16s…  predicted %.3gs  cached=%v\n\n",
		opt["fingerprint"], opt["predicted_seconds"], opt["cached"])

	// Eight clients ask for the same (new) computation at once; the
	// coalescing layer runs one search and fans the plan out.
	fmt.Println("== 8 concurrent POST /optimize {\"workload\":\"ffnn3\"}")
	var wg sync.WaitGroup
	var mu sync.Mutex
	tally := map[string]int{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := post("/optimize", `{"workload":"ffnn3"}`)
			key := "leader"
			if m["cached"] == true {
				key = "cache hit"
			} else if m["coalesced"] == true {
				key = "coalesced"
			}
			mu.Lock()
			tally[key]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Printf("outcome: %v — one search served all eight\n\n", tally)

	// Execute on the sequential engine and on the fault-injected dist
	// engine; the SHA-256 digests prove the outputs are bit-identical.
	fmt.Println("== POST /execute  seq vs dist+faults")
	seq := post("/execute", `{"workload":"chain","scale":400}`)
	dist := post("/execute", `{"workload":"chain","scale":400,"engine":"dist","shards":3,"faults":2,"fallback":true}`)
	sha := func(m map[string]any) string {
		return m["outputs"].([]any)[0].(map[string]any)["sha256"].(string)
	}
	seqSHA, distSHA := sha(seq), sha(dist)
	fmt.Printf("seq  sha256 %.16s…\ndist sha256 %.16s…  (match=%v)\n\n", seqSHA, distSHA, seqSHA == distSHA)

	// Round-trip a serialized physical plan.
	fmt.Println("== POST /plan  encode, then validate the payload")
	enc := post("/plan", `{"workload":"inverse"}`)
	payload, _ := json.Marshal(map[string]any{"workload": "inverse", "plan": enc["plan"]})
	dec := post("/plan", string(payload))
	fmt.Printf("%v physical operators; round-trip valid=%v\n\n", enc["nodes"], dec["valid"])

	if err := srv.Drain(context.Background()); err != nil {
		log.Fatalf("drain: %v", err)
	}
	fmt.Println("drained cleanly")
}
