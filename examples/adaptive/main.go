// Command adaptive demonstrates the re-optimization scheme §7 of the
// paper sketches as future work: when chains of sparse operations make
// the optimizer's density estimates drift (the paper's analogy is
// compounding cardinality errors in relational optimizers), execution
// halts, the remaining computation is re-optimized with the measured
// densities, and the run continues under the corrected plan.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"matopt"
	"matopt/internal/tensor"
)

func main() {
	// Two sparse matrices declared at density 0.2. The optimizer's
	// independence assumption predicts their Hadamard product at
	// 0.2×0.2 = 0.04 — but the actual inputs share one support, so the
	// true density is 0.2: a relative error of 5 (threshold: 1.2).
	b := matopt.NewBuilder()
	x := b.SparseInput("x", 2000, 2000, 0.2, matopt.SparseCSR())
	y := b.SparseInput("y", 2000, 2000, 0.2, matopt.SparseCSR())
	had := b.Hadamard(x, y)
	w := b.Input("w", 2000, 500, matopt.Single())
	out := b.MatMul(had, w)
	_ = out

	opt := matopt.NewOptimizer(matopt.ClusterR5D(4))
	rng := rand.New(rand.NewSource(1))
	base := tensor.RandSparse(rng, 2000, 2000, 0.2)
	inputs := map[string]*matopt.Dense{
		"x": base,
		"y": base.Clone(), // identical support — worst case for independence
		"w": tensor.RandNormal(rng, 2000, 500),
	}

	exec := matopt.NewExecutor(matopt.ClusterR5D(4))
	res, err := exec.RunAdaptive(opt, b, inputs, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-optimizations triggered: %d\n", res.Reoptimized)
	for _, c := range res.Corrections {
		fmt.Printf("  vertex %d: estimated density %.4f, measured %.4f (relative error %.1f)\n",
			c.Vertex, c.Estimated, c.Measured, c.RelErr)
	}
	if res.Reoptimized == 0 {
		fmt.Println("no drift detected — estimates were accurate")
	}
}
