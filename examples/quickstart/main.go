// Command quickstart shows the core loop of the library: express a
// computation over abstract matrices, let the optimizer pick the physical
// design (the §2.1 motivating example of the paper), inspect the chosen
// plan, and execute it on real (scaled-down) data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"matopt"
	"matopt/internal/tensor"
)

func main() {
	// The paper's motivating example: matA × matB × matC with
	// matA : 100×10⁴ stored as ten row strips,
	// matB : 10⁴×100 stored as ten column strips,
	// matC : 100×10⁶ stored as one hundred column strips.
	b := matopt.NewBuilder()
	matA := b.Input("matA", 100, 10000, matopt.RowStrips(10))
	matB := b.Input("matB", 10000, 100, matopt.ColStrips(10))
	matC := b.Input("matC", 100, 1000000, matopt.ColStrips(10000))
	out := b.MatMul(b.MatMul(matA, matB), matC)

	opt := matopt.NewOptimizer(matopt.ClusterR5D(5))
	plan, err := opt.Optimize(b, out)
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	fmt.Println("The optimizer re-discovers the paper's implementation 2:")
	fmt.Println("matAB collapses to a single tuple and is broadcast against matC.")
	fmt.Println()
	fmt.Print(plan.Describe())
	fmt.Printf("\npredicted time on 5 workers: %.2fs (optimizer took %.0fms)\n",
		plan.PredictedSeconds(), plan.OptimizerSeconds()*1000)

	// Execute a scaled-down instance for real to check the plan computes
	// the right thing.
	bs := matopt.NewBuilder()
	sa := bs.Input("matA", 100, 1000, matopt.RowStrips(10))
	sb := bs.Input("matB", 1000, 100, matopt.ColStrips(10))
	sc := bs.Input("matC", 100, 10000, matopt.ColStrips(1000))
	sout := bs.MatMul(bs.MatMul(sa, sb), sc)
	splan, err := opt.Optimize(bs, sout)
	if err != nil {
		log.Fatalf("optimize (small): %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	inputs := map[string]*matopt.Dense{
		"matA": tensor.RandNormal(rng, 100, 1000),
		"matB": tensor.RandNormal(rng, 1000, 100),
		"matC": tensor.RandNormal(rng, 100, 10000),
	}
	exec := matopt.NewExecutor(matopt.ClusterR5D(5))
	got, err := exec.RunSingle(splan, inputs)
	if err != nil {
		log.Fatalf("execute: %v", err)
	}
	want := tensor.MatMul(tensor.MatMul(inputs["matA"], inputs["matB"]), inputs["matC"])
	fmt.Printf("\nscaled-down execution: result %dx%d, max |engine − reference| = %.2e\n",
		got.Rows, got.Cols, tensor.MaxAbsDiff(got, want))
}
