// Command distrun executes one optimized plan on the sharded dist
// runtime through the public API: the same computation runs on the
// sequential reference engine and on the dist engine, the outputs are
// compared bit for bit, and the dist run's measured shuffle traffic and
// per-shard busy times are printed. Goroutine shards stand in for
// cluster nodes, so the byte meters report what a real deployment would
// put on the wire.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"matopt"
	"matopt/internal/tensor"
)

func main() {
	// A two-layer dense network forward pass, scaled to run in-process.
	b := matopt.NewBuilder()
	x := b.Input("X", 256, 2000, matopt.RowStrips(64))
	w1 := b.Input("W1", 2000, 400, matopt.Tiles(200))
	w2 := b.Input("W2", 400, 10, matopt.Single())
	h := b.ReLU(b.MatMul(x, w1))
	out := b.MatMul(h, w2)

	opt := matopt.NewOptimizer(matopt.ClusterR5D(4))
	plan, err := opt.Optimize(b, out)
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	fmt.Print(plan.Describe())

	rng := rand.New(rand.NewSource(1))
	inputs := map[string]*matopt.Dense{
		"X":  tensor.RandNormal(rng, 256, 2000),
		"W1": tensor.RandNormal(rng, 2000, 400),
		"W2": tensor.RandNormal(rng, 400, 10),
	}

	// Reference: the sequential engine.
	seq := matopt.NewExecutor(matopt.ClusterR5D(4))
	want, err := seq.RunSingle(plan, inputs)
	if err != nil {
		log.Fatalf("sequential run: %v", err)
	}

	// The dist engine: shards every relation across 4 worker shards and
	// meters every byte that crosses a shard boundary.
	ex := matopt.NewExecutor(matopt.ClusterR5D(4),
		matopt.WithEngineKind(matopt.DistEngine), matopt.WithShards(4))
	got, err := ex.RunSingle(plan, inputs)
	if err != nil {
		log.Fatalf("dist run: %v", err)
	}

	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			log.Fatalf("dist output differs from the sequential engine at entry %d", i)
		}
	}
	fmt.Printf("\ndist output (%dx%d) is bit-identical to the sequential engine ✓\n\n",
		got.Rows, got.Cols)
	fmt.Print(ex.DistReport())
}
