// Command ffnn optimizes the paper's feed-forward neural network
// training step (§8.2) at several hidden-layer sizes, comparing the
// auto-generated physical plan against the all-tile heuristic and a
// hand-written expert plan — a miniature of Figures 6 and 7. It then
// trains a scaled-down network for a few steps on real data to show the
// plans are executable end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"matopt/internal/baseline"
	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/engine"
	"matopt/internal/format"
	"matopt/internal/workload"
)

func main() {
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	fmt.Println("FFNN forward + backprop to W2 on 10 workers (simulated seconds):")
	fmt.Printf("%10s %12s %12s %12s\n", "hidden", "auto", "hand", "all-tile")
	for _, hidden := range []int64{10000, 40000, 80000} {
		g, err := workload.FFNNW2Update(workload.PaperFFNN(hidden))
		if err != nil {
			log.Fatal(err)
		}
		auto, err := core.Optimize(g, env)
		if err != nil {
			log.Fatal(err)
		}
		show := func(ann *core.Annotation, err error) string {
			if err != nil {
				return "Fail"
			}
			rep, err := engine.Simulate(ann, env)
			if err != nil {
				return "Fail"
			}
			return fmt.Sprintf("%.0fs", rep.Seconds)
		}
		fmt.Printf("%10d %12s %12s %12s\n", hidden,
			show(auto, nil),
			show(baseline.HandWritten(g, env)),
			show(baseline.AllTile(g, env)))
	}

	// Train a scaled-down instance for real: three optimizer-planned
	// update steps of W2.
	fmt.Println("\nExecuting three scaled-down W2 update steps for real:")
	cfg := workload.ScaledFFNN(workload.PaperFFNN(80000), 400)
	g, err := workload.FFNNW2Update(cfg)
	if err != nil {
		log.Fatal(err)
	}
	small := core.NewEnv(costmodel.LocalTest(4), format.All())
	ann, err := core.Optimize(g, small)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	inputs := workload.FFNNInputs(rng, cfg)
	eng := engine.New(small.Cluster)
	sink := g.Sinks()[0]
	for step := 1; step <= 3; step++ {
		outs, err := eng.RunCollect(ann, inputs)
		if err != nil {
			log.Fatal(err)
		}
		w2 := outs[sink.ID]
		var norm float64
		for _, v := range w2.Data {
			norm += v * v
		}
		fmt.Printf("  step %d: updated W2 is %dx%d, ‖W2‖² = %.1f\n", step, w2.Rows, w2.Cols, norm)
		inputs["W2"] = w2 // feed the updated weights back in
	}
}
