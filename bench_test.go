package matopt

// One benchmark per table and figure of the paper's evaluation (§8).
// Each benchmark regenerates its figure through internal/figures — the
// same code path as cmd/experiments — reporting the optimizer's own
// runtime where the paper reports it, and printing the reproduced rows
// once (use -v to see them). Simulated plan seconds stand in for the
// paper's EC2 wall-clock; see DESIGN.md §2 and EXPERIMENTS.md for the
// paper-vs-measured record.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/figures"
	"matopt/internal/format"
	"matopt/internal/workload"
)

// printOnce renders each figure at most once per process so -bench runs
// stay readable across b.N iterations.
var printOnce sync.Map

func report(b *testing.B, t figures.Table) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(t.Name, true); !done {
		b.Log("\n" + t.String())
	}
}

func BenchmarkFig01_Motivating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig1())
	}
}

func BenchmarkFig04_ChainSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig4())
	}
}

func BenchmarkFig05_FFNNThreePass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig5())
	}
}

func BenchmarkFig06_FFNNLayerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig6())
	}
}

func BenchmarkFig07_FFNNClusterSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig7())
	}
}

func BenchmarkFig08_UserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig8())
	}
}

func BenchmarkFig09_BlockInverse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig9())
	}
}

func BenchmarkFig10_MatMulChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig10())
	}
}

func BenchmarkFig11_AmazonCat1K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig11())
	}
}

func BenchmarkFig12_AmazonCat10K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig12())
	}
}

func BenchmarkFig13_OptimizerRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, figures.Fig13(2*time.Second))
	}
}

// --- optimizer micro-benchmarks: the quantities Figure 13 plots ---

func benchOptimizer(b *testing.B, kind workload.ScaleKind, scale int, fs []format.Format) {
	g, err := workload.ScaleGraph(kind, scale)
	if err != nil {
		b.Fatal(err)
	}
	env := core.NewEnv(costmodel.EC2R5D(10), fs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(g, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizerTreeScale4AllFormats(b *testing.B) {
	benchOptimizer(b, workload.ScaleTree, 4, format.All())
}

func BenchmarkOptimizerDAG1Scale4AllFormats(b *testing.B) {
	benchOptimizer(b, workload.ScaleDAG1, 4, format.All())
}

func BenchmarkOptimizerDAG2Scale4AllFormats(b *testing.B) {
	benchOptimizer(b, workload.ScaleDAG2, 4, format.All())
}

func BenchmarkOptimizerDAG2Scale4SingleBlock(b *testing.B) {
	benchOptimizer(b, workload.ScaleDAG2, 4, format.SingleBlock())
}

func BenchmarkOptimizerFFNNW2Update80K(b *testing.B) {
	g, err := workload.FFNNW2Update(workload.PaperFFNN(80000))
	if err != nil {
		b.Fatal(err)
	}
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(g, env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- plan-cache benches: repeated Optimize of the Fig. 5 FFNN graph ---

// fig5Builder wraps the Figure 5 three-pass FFNN graph (80 000 labels)
// in a public-API Builder so the cache benchmarks exercise the same
// Optimize entry point users call.
func fig5Builder(b *testing.B) *Builder {
	b.Helper()
	g, err := workload.FFNNThreePass(workload.PaperFFNN(80000))
	if err != nil {
		b.Fatal(err)
	}
	return &Builder{g: g}
}

// BenchmarkOptimizeCacheHit measures a repeated Optimize served from the
// plan cache; compare against BenchmarkOptimizeCacheCold — the hit path
// must be ≥100× faster than the cold search.
func BenchmarkOptimizeCacheHit(b *testing.B) {
	o := NewOptimizer(ClusterR5D(10))
	bld := fig5Builder(b)
	if _, err := o.Optimize(bld); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := o.Optimize(bld)
		if err != nil {
			b.Fatal(err)
		}
		if !p.Cached() {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkOptimizeCacheCold is the same computation with the cache
// bypassed (WithoutPlanCache), i.e. today's pre-cache behavior.
func BenchmarkOptimizeCacheCold(b *testing.B) {
	o := NewOptimizer(ClusterR5D(10), WithoutPlanCache())
	bld := fig5Builder(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := o.Optimize(bld)
		if err != nil {
			b.Fatal(err)
		}
		if p.Cached() {
			b.Fatal("cache should be disabled")
		}
	}
}

// --- parallel-vs-serial Frontier benches ---

func benchFrontier(b *testing.B, parallelism int) {
	g, err := workload.FFNNThreePass(workload.PaperFFNN(80000))
	if err != nil {
		b.Fatal(err)
	}
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := core.NewSession(nil, env, core.WithParallelism(parallelism))
		if _, err := sess.Frontier(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrontierSerial(b *testing.B) { benchFrontier(b, 1) }

func BenchmarkFrontierParallel(b *testing.B) { benchFrontier(b, runtime.GOMAXPROCS(0)) }

// --- ablation benches for the design choices DESIGN.md calls out ---

// Ablation: how much the global optimizer buys over SystemDS-style local
// choice on the FFNN (the transformation-cost integration is the paper's
// key idea).
func BenchmarkAblationGlobalVsLocal(b *testing.B) {
	g, err := workload.FFNNW2Update(workload.PaperFFNN(80000))
	if err != nil {
		b.Fatal(err)
	}
	env := core.NewEnv(costmodel.EC2R5D(10), format.All())
	for i := 0; i < b.N; i++ {
		auto, err := core.Optimize(g, env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(auto.Total(), "auto-sim-sec")
	}
}

// Ablation: format-universe restriction (the §8.4 sets) on plan quality.
func BenchmarkAblationFormatUniverse(b *testing.B) {
	g, err := workload.MatMulChain(workload.ChainSizeSets()[0])
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, fs := range [][]format.Format{format.All(), format.SingleStripBlock(), format.SingleBlock()} {
			env := core.NewEnv(costmodel.EC2R5D(10), fs)
			ann, err := core.Optimize(g, env)
			if err != nil {
				b.Fatal(err)
			}
			_ = ann.Total()
		}
	}
}
