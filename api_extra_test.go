package matopt

import (
	"math/rand"
	"testing"

	"matopt/internal/calibrate"
	"matopt/internal/costmodel"
	"matopt/internal/tensor"
)

func TestWithCalibratedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the calibration battery")
	}
	cl := costmodel.LocalTest(3)
	rng := rand.New(rand.NewSource(9))
	m, fitted, err := calibrate.Fit(rng, cl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fitted) == 0 {
		t.Fatal("nothing fitted")
	}
	b := NewBuilder()
	x := b.Input("x", 2000, 2000, Tiles(1000))
	y := b.Input("y", 2000, 2000, Tiles(1000))
	out := b.MatMul(x, y)
	plan, err := NewOptimizer(cl, WithModel(m)).Optimize(b, out)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedSeconds() <= 0 {
		t.Fatal("calibrated prediction degenerate")
	}
}

func TestRunAdaptiveAPI(t *testing.T) {
	b := NewBuilder()
	x := b.SparseInput("x", 300, 300, 0.2, SparseCSR())
	y := b.SparseInput("y", 300, 300, 0.2, SparseCSR())
	had := b.Hadamard(x, y)
	b.Scale(3, had)

	cl := costmodel.LocalTest(3)
	opt := NewOptimizer(cl)
	exec := NewExecutor(cl)
	rng := rand.New(rand.NewSource(4))
	base := tensor.RandSparse(rng, 300, 300, 0.2)
	res, err := exec.RunAdaptive(opt, b, map[string]*Dense{"x": base, "y": base.Clone()}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reoptimized == 0 {
		t.Fatal("correlated supports must trigger a re-optimization")
	}
}

func TestFormatStringsAndAccessors(t *testing.T) {
	cases := map[string]Format{
		"single":             Single(),
		"tile[500]":          Tiles(500),
		"rowstrip[100]":      RowStrips(100),
		"colstrip[1000]":     ColStrips(1000),
		"coo":                Triples(),
		"csr-single":         SparseCSR(),
		"csr-rowstrip[1000]": SparseCSRStrips(1000),
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	b := NewBuilder()
	m := b.Input("m", 7, 9, Single())
	if m.Rows() != 7 || m.Cols() != 9 {
		t.Errorf("accessors: %dx%d", m.Rows(), m.Cols())
	}
	tr := b.Transpose(m)
	if tr.Rows() != 9 || tr.Cols() != 7 {
		t.Errorf("transpose accessors: %dx%d", tr.Rows(), tr.Cols())
	}
}

func TestAllUnaryBuilders(t *testing.T) {
	b := NewBuilder()
	m := b.Input("m", 50, 50, Single())
	bias := b.Input("bias", 1, 50, Single())
	vs := []Matrix{
		b.Neg(m), b.ReLU(m), b.ReLUGrad(m), b.Sigmoid(m), b.Exp(m),
		b.Softmax(m), b.RowSums(m), b.ColSums(m), b.AddBias(m, bias),
		b.Inverse(m), b.Sub(m, m), b.Hadamard(m, m), b.Scale(0.5, m),
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if v.v == nil {
			t.Errorf("builder %d returned invalid matrix", i)
		}
	}
	plan, err := NewOptimizer(ClusterR5D(2)).Optimize(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.OptimizerSeconds() < 0 {
		t.Fatal("negative optimizer time")
	}
	if plan.Annotation() == nil {
		t.Fatal("no annotation exposed")
	}
}
