// Package matopt automatically optimizes the physical implementation of
// distributed machine-learning and linear-algebra computations, as
// described in "Automatic Optimization of Matrix Implementations for
// Distributed Machine Learning and Linear Algebra" (SIGMOD 2021).
//
// A computation is expressed over abstract matrices with a Builder; the
// Optimizer then chooses a physical storage format for every input and
// intermediate matrix, an implementation for every operation, and the
// re-layout transformations between them, minimizing the predicted total
// running time on a cluster profile. The resulting Plan can be executed
// on real data with an Executor or walked at paper scale with Simulate.
//
// An Executor runs plans on one of two runtimes: the sequential
// reference engine (the default), or — with WithEngineKind(DistEngine) —
// a sharded multi-worker runtime that hash-partitions every relation
// across WithShards worker shards, executes independent DAG vertices
// concurrently, and meters every byte crossing a shard boundary
// (DistReport). The two produce bit-identical results.
//
//	b := matopt.NewBuilder()
//	a := b.Input("A", 100, 10000, matopt.RowStrips(10))
//	m := b.Input("B", 10000, 100, matopt.ColStrips(10))
//	c := b.Input("C", 100, 1000000, matopt.ColStrips(10000))
//	out := b.MatMul(b.MatMul(a, m), c)
//	plan, err := matopt.NewOptimizer(matopt.ClusterR5D(5)).Optimize(b, out)
package matopt

import (
	"fmt"

	"matopt/internal/core"
	"matopt/internal/costmodel"
	"matopt/internal/format"
	"matopt/internal/op"
	"matopt/internal/shape"
)

// Matrix is a handle to an abstract matrix in a computation being built.
type Matrix struct {
	v *core.Vertex
	b *Builder
}

// Rows returns the matrix's logical row count.
func (m Matrix) Rows() int64 { return m.v.Shape.Rows }

// Cols returns the matrix's logical column count.
func (m Matrix) Cols() int64 { return m.v.Shape.Cols }

// Format is a physical matrix implementation for an input matrix.
type Format struct{ f format.Format }

// String names the format the way the optimizer's reports do, e.g.
// "single", "rowstrip[100]" or "tile[64]".
func (f Format) String() string { return f.f.String() }

// Single stores the matrix in one tuple.
func Single() Format { return Format{format.NewSingle()} }

// Tiles stores the matrix in b×b square tiles.
func Tiles(b int64) Format { return Format{format.NewTile(b)} }

// RowStrips stores the matrix in horizontal strips of height h.
func RowStrips(h int64) Format { return Format{format.NewRowStrip(h)} }

// ColStrips stores the matrix in vertical strips of width w.
func ColStrips(w int64) Format { return Format{format.NewColStrip(w)} }

// Triples stores the matrix as relational (row, col, value) triples.
func Triples() Format { return Format{format.NewCOO()} }

// SparseCSR stores the matrix as one CSR tuple.
func SparseCSR() Format { return Format{format.NewCSRSingle()} }

// SparseCSRStrips stores the matrix as CSR row strips of height h.
func SparseCSRStrips(h int64) Format { return Format{format.NewCSRRowStrip(h)} }

// Builder assembles a compute graph. Errors during construction are
// deferred to the Optimize call, so expressions compose fluently.
type Builder struct {
	g   *core.Graph
	err error
}

// NewBuilder returns an empty computation.
func NewBuilder() *Builder { return &Builder{g: core.NewGraph()} }

// NewBuilderFromGraph wraps an already-built compute graph in a Builder
// so pre-assembled computations (the internal workload generators, the
// serving layer's decoded request specs) can flow through
// Optimizer.Optimize. The graph must not be mutated afterwards; outputs
// are the graph's sinks. Like Builder.Graph and Optimizer.Env, this is
// an advanced hook — ordinary callers assemble computations with the
// Builder methods.
func NewBuilderFromGraph(g *core.Graph) *Builder { return &Builder{g: g} }

// Err returns the first error recorded while building, if any.
func (b *Builder) Err() error { return b.err }

// Graph exposes the underlying compute graph (read-only use intended).
func (b *Builder) Graph() *core.Graph { return b.g }

// Input declares a dense input matrix stored in format f.
func (b *Builder) Input(name string, rows, cols int64, f Format) Matrix {
	return b.SparseInput(name, rows, cols, 1, f)
}

// SparseInput declares an input with the given non-zero fraction.
func (b *Builder) SparseInput(name string, rows, cols int64, density float64, f Format) Matrix {
	if b.err != nil {
		return Matrix{b: b}
	}
	// shape.New still panics on non-positive extents; fold that into the
	// builder's deferred-error discipline alongside AddInput's errors.
	defer func() {
		if r := recover(); r != nil {
			b.err = fmt.Errorf("matopt: input %q: %v", name, r)
		}
	}()
	v, err := b.g.AddInput(name, shape.New(rows, cols), density, f.f)
	if err != nil {
		b.err = fmt.Errorf("matopt: input %q: %w", name, err)
		return Matrix{b: b}
	}
	return Matrix{v: v, b: b}
}

func (b *Builder) apply(o op.Op, ins ...Matrix) Matrix {
	if b.err != nil {
		return Matrix{b: b}
	}
	vs := make([]*core.Vertex, len(ins))
	for i, in := range ins {
		if in.v == nil {
			if b.err == nil {
				b.err = fmt.Errorf("matopt: %v applied to an invalid matrix", o)
			}
			return Matrix{b: b}
		}
		if in.b != b {
			b.err = fmt.Errorf("matopt: %v mixes matrices from different builders", o)
			return Matrix{b: b}
		}
		vs[i] = in.v
	}
	v, err := b.g.Apply(o, vs...)
	if err != nil {
		b.err = err
		return Matrix{b: b}
	}
	return Matrix{v: v, b: b}
}

// MatMul returns x×y.
func (b *Builder) MatMul(x, y Matrix) Matrix { return b.apply(op.Op{Kind: op.MatMul}, x, y) }

// Add returns x+y.
func (b *Builder) Add(x, y Matrix) Matrix { return b.apply(op.Op{Kind: op.Add}, x, y) }

// Sub returns x−y.
func (b *Builder) Sub(x, y Matrix) Matrix { return b.apply(op.Op{Kind: op.Sub}, x, y) }

// Hadamard returns the entrywise product x∘y.
func (b *Builder) Hadamard(x, y Matrix) Matrix { return b.apply(op.Op{Kind: op.Hadamard}, x, y) }

// Transpose returns xᵀ.
func (b *Builder) Transpose(x Matrix) Matrix { return b.apply(op.Op{Kind: op.Transpose}, x) }

// Scale returns s·x.
func (b *Builder) Scale(s float64, x Matrix) Matrix {
	return b.apply(op.Op{Kind: op.ScalarMul, Scalar: s}, x)
}

// Neg returns −x.
func (b *Builder) Neg(x Matrix) Matrix { return b.apply(op.Op{Kind: op.Neg}, x) }

// ReLU returns max(x, 0) entrywise.
func (b *Builder) ReLU(x Matrix) Matrix { return b.apply(op.Op{Kind: op.ReLU}, x) }

// ReLUGrad returns the ReLU derivative entrywise.
func (b *Builder) ReLUGrad(x Matrix) Matrix { return b.apply(op.Op{Kind: op.ReLUGrad}, x) }

// Sigmoid returns the logistic function entrywise.
func (b *Builder) Sigmoid(x Matrix) Matrix { return b.apply(op.Op{Kind: op.Sigmoid}, x) }

// Exp returns e^x entrywise.
func (b *Builder) Exp(x Matrix) Matrix { return b.apply(op.Op{Kind: op.Exp}, x) }

// Softmax returns the row-wise softmax.
func (b *Builder) Softmax(x Matrix) Matrix { return b.apply(op.Op{Kind: op.Softmax}, x) }

// RowSums returns the column vector of row sums.
func (b *Builder) RowSums(x Matrix) Matrix { return b.apply(op.Op{Kind: op.RowSums}, x) }

// ColSums returns the row vector of column sums.
func (b *Builder) ColSums(x Matrix) Matrix { return b.apply(op.Op{Kind: op.ColSums}, x) }

// AddBias adds a 1×cols bias row vector to every row of x.
func (b *Builder) AddBias(x, bias Matrix) Matrix { return b.apply(op.Op{Kind: op.AddBias}, x, bias) }

// Inverse returns x⁻¹ for square x.
func (b *Builder) Inverse(x Matrix) Matrix { return b.apply(op.Op{Kind: op.Inverse}, x) }

// Cluster is a hardware profile plans are optimized for.
type Cluster = costmodel.Cluster

// ClusterR5D returns the paper's SimSQL experimental cluster (§8.2).
func ClusterR5D(workers int) Cluster { return costmodel.EC2R5D(workers) }

// ClusterR5DN returns the paper's PlinyCompute cluster (§8.3).
func ClusterR5DN(workers int) Cluster { return costmodel.EC2R5DN(workers) }
