// Command calibrate runs the installation-time cost-model calibration
// (§7): it executes a battery of small computations through the engine,
// fits per-operation regression coefficients from the measurements, and
// prints the fitted model plus a predicted-vs-measured sanity check on a
// scaled-down FFNN.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"matopt/internal/calibrate"
	"matopt/internal/costmodel"
)

func main() {
	rounds := flag.Int("rounds", 3, "repetitions of the micro-benchmark battery")
	workers := flag.Int("workers", 4, "simulated worker count for the calibration engine")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cl := costmodel.LocalTest(*workers)
	rng := rand.New(rand.NewSource(*seed))
	m, fitted, err := calibrate.Fit(rng, cl, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default coefficients: %v\n", m.Default)
	fmt.Printf("fitted %d per-operation models:\n", len(fitted))
	for _, key := range fitted {
		fmt.Printf("  %-28s %v\n", key, m.PerKey[key])
	}

	pred, meas, err := calibrate.SmokeWorkload(rng, cl, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsanity check (scaled-down FFNN W2 update):\n")
	fmt.Printf("  predicted %.3fs, measured %.3fs\n", pred, meas)
}
