// Command experiments regenerates every table and figure of the paper's
// evaluation section (§8) and prints the same rows. See EXPERIMENTS.md
// for the recorded paper-vs-measured comparison. Ctrl-C (SIGINT) or
// SIGTERM stops the run after the figure in flight.
//
//	experiments [-fig N] [-brute-budget 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	"matopt/internal/dist"
	"matopt/internal/figures"
)

func main() {
	fig := flag.String("fig", "", "regenerate one figure (1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, dist, faults); default all")
	budget := flag.Duration("brute-budget", 30*time.Second,
		"time budget per brute-force run in Figure 13 (the paper used 30m)")
	shards := flag.Int("shards", dist.DefaultShards(),
		"shard count for the dist-runtime validation table")
	flag.Parse()

	if *shards <= 0 {
		log.Fatalf("-shards must be positive, got %d", *shards)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	run := map[string]func() figures.Table{
		"1": figures.Fig1, "4": figures.Fig4, "5": figures.Fig5,
		"6": figures.Fig6, "7": figures.Fig7, "8": figures.Fig8,
		"9": figures.Fig9, "10": figures.Fig10, "11": figures.Fig11,
		"12":     figures.Fig12,
		"13":     func() figures.Table { return figures.Fig13(*budget) },
		"dist":   func() figures.Table { return figures.DistValidation(*shards) },
		"faults": func() figures.Table { return figures.FaultRecovery(*shards) },
	}
	if *fig != "" {
		f, ok := run[*fig]
		if !ok {
			log.Fatalf("unknown figure %q", *fig)
		}
		fmt.Println(f())
		return
	}
	tables, err := figures.AllCtx(ctx, *budget)
	for _, t := range tables {
		fmt.Println(t)
	}
	if err != nil {
		log.Fatalf("interrupted after %d figures: %v", len(tables), err)
	}
}
